// Package repro's root benchmark harness: one testing.B benchmark per
// table/figure in the paper's evaluation, plus the ablations DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The printed-table equivalents (closer to the paper's figures) live in
// cmd/sfi-bench and cmd/ckpt-bench; both are wrappers over
// internal/experiments, as are these benchmarks.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/domain"
	"repro/internal/domain/faultinject"
	"repro/internal/dpdk"
	"repro/internal/experiments"
	"repro/internal/firewall"
	"repro/internal/ifc"
	"repro/internal/linear"
	"repro/internal/maglev"
	"repro/internal/minirust"
	"repro/internal/netbricks"
	"repro/internal/packet"
	"repro/internal/session"
	"repro/internal/sfi"
)

// --- Figure 2: remote-invocation overhead vs. batch size ---------------

// benchPipeline measures cycles/batch through a 5-stage null-filter
// pipeline, direct or isolated, at one batch size.
func benchPipeline(b *testing.B, batchSize int, isolated bool) {
	b.Helper()
	port := dpdk.NewPort(dpdk.Config{PoolSize: batchSize + 64})
	pkts := make([]*packet.Packet, batchSize)
	n := port.RxBurst(pkts)
	batch := &netbricks.Batch{Pkts: pkts[:n]}
	ops := []netbricks.Operator{
		netbricks.NullFilter{}, netbricks.NullFilter{}, netbricks.NullFilter{},
		netbricks.NullFilter{}, netbricks.NullFilter{},
	}
	ctx := sfi.NewContext()
	var direct *netbricks.Pipeline
	var iso *netbricks.IsolatedPipeline
	if isolated {
		var err error
		iso, err = netbricks.NewIsolatedPipeline(sfi.NewManager(), ops, nil)
		if err != nil {
			b.Fatal(err)
		}
	} else {
		direct = netbricks.NewPipeline(ops...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		owned := linear.New(batch)
		var out linear.Owned[*netbricks.Batch]
		var err error
		if isolated {
			out, err = iso.Process(ctx, owned)
		} else {
			out, err = direct.Process(owned)
		}
		if err != nil {
			b.Fatal(err)
		}
		if _, err := out.Into(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Direct is the unprotected baseline at every paper batch
// size (function calls between stages).
func BenchmarkFigure2Direct(b *testing.B) {
	for _, bs := range experiments.PaperBatchSizes {
		b.Run(fmt.Sprintf("batch=%d", bs), func(b *testing.B) {
			benchPipeline(b, bs, false)
		})
	}
}

// BenchmarkFigure2Isolated is the same pipeline with one protection
// domain per stage (remote invocations). (Isolated − Direct)/5 is the
// per-invocation overhead Figure 2 plots.
func BenchmarkFigure2Isolated(b *testing.B) {
	for _, bs := range experiments.PaperBatchSizes {
		b.Run(fmt.Sprintf("batch=%d", bs), func(b *testing.B) {
			benchPipeline(b, bs, true)
		})
	}
}

// BenchmarkFigure2Maglev is the Maglev reference line of Figure 2: the
// per-batch cost of a realistic, lightweight NF.
func BenchmarkFigure2Maglev(b *testing.B) {
	for _, bs := range experiments.PaperBatchSizes {
		b.Run(fmt.Sprintf("batch=%d", bs), func(b *testing.B) {
			port := dpdk.NewPort(dpdk.Config{
				PoolSize: bs + 64,
				Gen:      &dpdk.UniformFlows{Base: dpdk.DefaultSpec(), Flows: 1024},
			})
			pkts := make([]*packet.Packet, bs)
			n := port.RxBurst(pkts)
			batch := &netbricks.Batch{Pkts: pkts[:n]}
			backends := make([]maglev.Backend, 16)
			for i := range backends {
				backends[i] = maglev.Backend{Name: fmt.Sprintf("be-%d", i), IP: packet.Addr(10, 1, 0, byte(i+1))}
			}
			lb, err := maglev.NewBalancer(backends, maglev.DefaultTableSize)
			if err != nil {
				b.Fatal(err)
			}
			op := maglev.Operator{LB: lb}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := op.ProcessBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Sharded runtime: multi-worker throughput scaling -------------------

// benchSharded measures aggregate packet throughput through the sharded
// runtime at a given worker count. The port runs in RSS-partitioned mode
// (each queue's generator only emits flows that hash to that queue, like
// hardware RSS) so packet generation adds no cross-worker contention and
// the measurement isolates the runtime itself: per-worker pipelines,
// per-queue mempool caches, and linear batch handoff. Scaling beyond one
// worker requires GOMAXPROCS >= workers.
func benchSharded(b *testing.B, workers int, isolated bool) {
	b.Helper()
	const batchSize = 32
	const batchesPerWorker = 64
	port := dpdk.NewPort(dpdk.Config{
		PoolSize: workers * 512,
		RxQueues: workers,
		QueueGen: dpdk.NewRSSPartition(dpdk.DefaultSpec(), 4096, workers),
	})
	ops := func() []netbricks.Operator {
		return []netbricks.Operator{netbricks.Parse{}, netbricks.NullFilter{}, netbricks.NullFilter{}}
	}
	r := &netbricks.ShardedRunner{Port: port, Workers: workers, BatchSize: batchSize}
	if isolated {
		r.NewIsolated = func(int) (*netbricks.IsolatedPipeline, error) {
			return netbricks.NewIsolatedPipeline(sfi.NewManager(), ops(), nil)
		}
	} else {
		r.NewDirect = func(int) *netbricks.Pipeline {
			return netbricks.NewPipeline(ops()...)
		}
	}
	var total uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := r.Run(batchesPerWorker)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Packets == 0 {
			b.Fatal("no packets processed")
		}
		total += stats.Packets
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "pkts/s")
}

// BenchmarkShardedDirect is throughput scaling for unprotected per-worker
// pipelines: the paper's §3 experiment extended across cores.
func BenchmarkShardedDirect(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchSharded(b, w, false)
		})
	}
}

// BenchmarkShardedIsolated is the same scaling sweep with every stage of
// every worker in its own protection domain — isolation overhead must not
// grow with worker count, since domains share nothing across workers.
func BenchmarkShardedIsolated(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchSharded(b, w, true)
		})
	}
}

// --- Supervised runtime: steady-state vs. faulting throughput -----------

// crashOp injects seeded probabilistic panics into the hot path, driving
// the supervised runtime's full fault loop: panic → teardown → backoff →
// recovery → rref re-bind. A nil injector makes it a null stage.
type crashOp struct{ inj *faultinject.Injector }

func (crashOp) Name() string { return "crash" }

func (c crashOp) ProcessBatch(*netbricks.Batch) error {
	if c.inj != nil {
		c.inj.Point("bench")
	}
	return nil
}

// benchSupervised measures aggregate throughput with every worker running
// as a supervised protection domain, at a given per-batch crash
// probability. The deltas against crashProb=0 (and against
// BenchmarkShardedIsolated, the same pipeline without supervision) price
// the supervision machinery and the fault path respectively.
func benchSupervised(b *testing.B, crashProb float64) {
	b.Helper()
	const workers = 4
	const batchSize = 32
	const batchesPerWorker = 64
	port := dpdk.NewPort(dpdk.Config{
		PoolSize: workers * 512,
		RxQueues: workers,
		QueueGen: dpdk.NewRSSPartition(dpdk.DefaultSpec(), 4096, workers),
	})
	var inj *faultinject.Injector
	if crashProb > 0 {
		inj = faultinject.New(1)
		inj.PanicProb = crashProb
	}
	r := &netbricks.ShardedRunner{
		Port: port, Workers: workers, BatchSize: batchSize,
		Supervise: true,
		Policy: domain.Policy{
			Backoff:     20 * time.Microsecond,
			MaxBackoff:  time.Millisecond,
			MaxRestarts: -1,
		},
		NewIsolated: func(int) (*netbricks.IsolatedPipeline, error) {
			return netbricks.NewIsolatedPipeline(sfi.NewManager(),
				[]netbricks.Operator{netbricks.Parse{}, crashOp{inj: inj}, netbricks.NullFilter{}},
				[]func() netbricks.Operator{nil, func() netbricks.Operator { return crashOp{inj: inj} }, nil})
		},
	}
	var total uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := r.Run(batchesPerWorker)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Packets == 0 {
			b.Fatal("no packets processed")
		}
		total += stats.Packets
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "pkts/s")
	if sn, ok := r.SupervisorSnapshot(); crashProb > 0 && (!ok || sn.Restarts == 0) {
		b.Fatal("faulting bench drove no restarts")
	}
}

// BenchmarkSupervisedPipeline is the steady/faulting sweep the perf
// trajectory tracks in BENCH_pipeline.json: supervision overhead at zero
// faults, then throughput under 1% and 5% injected crash rates.
func BenchmarkSupervisedPipeline(b *testing.B) {
	cases := []struct {
		name string
		prob float64
	}{
		{"steady", 0},
		{"crash=1pct", 0.01},
		{"crash=5pct", 0.05},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) { benchSupervised(b, c.prob) })
	}
}

// --- §3 scalar: recovery cost ------------------------------------------

// BenchmarkRecovery measures catching an injected panic, clearing the
// failed domain's reference table, and re-creating the domain from clean
// state (paper: 4389 cycles).
func BenchmarkRecovery(b *testing.B) {
	mgr := sfi.NewManager()
	d := mgr.NewDomain("null-filter")
	rref, err := sfi.Export[netbricks.Operator](d, netbricks.NullFilter{})
	if err != nil {
		b.Fatal(err)
	}
	slot := rref.Slot()
	d.SetRecovery(func(d *sfi.Domain) error {
		return sfi.ExportAt[netbricks.Operator](d, slot, netbricks.NullFilter{})
	})
	ctx := sfi.NewContext()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rref.Call(ctx, "p", func(netbricks.Operator) error { panic("injected") }); err == nil {
			b.Fatal("panic not caught")
		}
		if err := mgr.Recover(d); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §4: verification cost ----------------------------------------------

// BenchmarkIFCVerifyPaperListing measures the full static pipeline
// (parse → types → borrowck → abstract interpretation) on the paper's
// Buffer listing.
func BenchmarkIFCVerifyPaperListing(b *testing.B) {
	src := minirust.PaperBufferProgram(true, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog, err := minirust.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		checked, err := minirust.Check(prog)
		if err != nil {
			b.Fatal(err)
		}
		if err := minirust.BorrowCheck(checked); err != nil {
			b.Fatal(err)
		}
		lat, err := ifc.ForProgram(prog)
		if err != nil {
			b.Fatal(err)
		}
		res, err := ifc.Analyze(checked, lat)
		if err != nil {
			b.Fatal(err)
		}
		if res.OK() {
			b.Fatal("leak not found")
		}
	}
}

// --- Figure 3: checkpointing --------------------------------------------

// BenchmarkFigure3Checkpoint measures checkpointing a 1000-rule firewall
// database (sharing factor 3) under each aliasing mode.
func BenchmarkFigure3Checkpoint(b *testing.B) {
	for _, mode := range []checkpoint.Mode{checkpoint.RcAware, checkpoint.Naive, checkpoint.VisitedSet} {
		b.Run(mode.String(), func(b *testing.B) {
			db, err := experiments.BuildFirewallDB(1000, 3)
			if err != nil {
				b.Fatal(err)
			}
			eng := checkpoint.NewEngine(mode)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Checkpoint(eng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure3Restore measures restoring the database from a
// snapshot.
func BenchmarkFigure3Restore(b *testing.B) {
	db, err := experiments.BuildFirewallDB(1000, 3)
	if err != nil {
		b.Fatal(err)
	}
	snap, err := db.Checkpoint(checkpoint.NewEngine(checkpoint.RcAware))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out *firewall.DB
		if err := snap.Restore(&out); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §5→§3: checkpointed stateful recovery ------------------------------

// benchCheckpointed measures aggregate supervised-pipeline throughput
// (parse → firewall → maglev → session) with per-worker NF state
// snapshotted at the given epoch; epoch 0 is the no-checkpointing
// baseline. The 10ms/off delta prices the steady-state checkpoint tax
// (acceptance: ≤ 15%); 100ms shows the epoch-length lever.
func benchCheckpointed(b *testing.B, epoch time.Duration) {
	b.Helper()
	const workers = 4
	const batchSize = 32
	// Long enough per Run (tens of ms) that a 10ms epoch fires many
	// times inside it — domains are fresh per Run, so shorter runs would
	// never checkpoint at all and the bench would price nothing.
	const batchesPerWorker = 1000
	// 1024 flows ≈ 256 session entries per worker: capture cost scales
	// with state size, so the epoch tax below is per-256-flows-worker;
	// BenchmarkCheckpointRestoreSession prices the big-graph traversal
	// separately.
	port := dpdk.NewPort(dpdk.Config{
		PoolSize: workers * 512,
		RxQueues: workers,
		QueueGen: dpdk.NewRSSPartition(dpdk.DefaultSpec(), 1024, workers),
	})
	db := firewall.NewDB(firewall.Deny)
	if _, err := db.AddRule(packet.Addr(10, 99, 0, 0), 16, firewall.Rule{ID: 1, Action: firewall.Allow}); err != nil {
		b.Fatal(err)
	}
	backends := []maglev.Backend{
		{Name: "be-0", IP: packet.Addr(10, 1, 0, 1)},
		{Name: "be-1", IP: packet.Addr(10, 1, 0, 2)},
	}
	tables := make([]*session.Table, workers)
	balancers := make([]*maglev.Balancer, workers)
	for w := 0; w < workers; w++ {
		tables[w] = session.NewTable()
		lb, err := maglev.NewBalancer(backends, maglev.DefaultTableSize)
		if err != nil {
			b.Fatal(err)
		}
		balancers[w] = lb
	}
	r := &netbricks.ShardedRunner{
		Port: port, Workers: workers, BatchSize: batchSize,
		Supervise: true,
		Policy: domain.Policy{
			Backoff:         20 * time.Microsecond,
			MaxBackoff:      time.Millisecond,
			MaxRestarts:     -1,
			CheckpointEvery: epoch,
		},
		NewIsolated: func(w int) (*netbricks.IsolatedPipeline, error) {
			return netbricks.NewIsolatedPipeline(sfi.NewManager(),
				[]netbricks.Operator{
					netbricks.Parse{},
					firewall.Operator{DB: db},
					maglev.Operator{LB: balancers[w]},
					session.Operator{T: tables[w]},
				},
				[]func() netbricks.Operator{nil, nil, nil, nil})
		},
		NewState: func(w int) domain.Stateful {
			return domain.NewStateSet().
				Add("maglev", balancers[w]).
				Add("session", tables[w])
		},
	}
	var total uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := r.Run(batchesPerWorker)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Packets == 0 {
			b.Fatal("no packets processed")
		}
		total += stats.Packets
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "pkts/s")
	sn, ok := r.SupervisorSnapshot()
	if !ok {
		b.Fatal("no supervisor snapshot")
	}
	if epoch > 0 && epoch < 50*time.Millisecond && sn.Checkpoints == 0 {
		b.Fatal("checkpointing bench took no checkpoints; nothing was priced")
	}
	// The snapshot covers the final Run only (each Run boots fresh
	// domains), so this is checkpoint epochs per run, all workers.
	b.ReportMetric(float64(sn.Checkpoints), "ckpts/run")
}

// BenchmarkCheckpointedPipeline is the epoch sweep recorded in
// BENCH_checkpoint.json: checkpointing off, the 10ms acceptance point,
// and the relaxed 100ms epoch.
func BenchmarkCheckpointedPipeline(b *testing.B) {
	cases := []struct {
		name  string
		epoch time.Duration
	}{
		{"epoch=off", 0},
		{"epoch=10ms", 10 * time.Millisecond},
		{"epoch=100ms", 100 * time.Millisecond},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) { benchCheckpointed(b, c.epoch) })
	}
}

// BenchmarkCheckpointRestoreSession measures restoring a live session
// table — 4096 flows interned over 32 shared backend handles, the
// Figure-3a aliasing shape on runtime state — from a checkpoint taken
// under each sharing-preserving mode. RcAware pays one flag check per
// Rc handle; VisitedSet pays a global address-table probe per node.
func BenchmarkCheckpointRestoreSession(b *testing.B) {
	for _, mode := range []checkpoint.Mode{checkpoint.RcAware, checkpoint.VisitedSet} {
		b.Run("mode="+mode.String(), func(b *testing.B) {
			tbl := session.NewTable()
			base := dpdk.DefaultSpec().Tuple
			for i := 0; i < 4096; i++ {
				tu := base
				tu.SrcIP += packet.IPv4(i)
				tu.SrcPort += uint16(i % 50000)
				tbl.Track(tu, packet.Addr(10, 1, 0, byte(i%32)), 64)
			}
			tok, err := tbl.Checkpoint(checkpoint.NewEngine(mode))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tbl.Restore(tok); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations ------------------------------------------------------------

// BenchmarkAblationRRefCall isolates the cost of one remote invocation
// (weak upgrade + policy + context switch + fault guard) against a plain
// interface call on the same operator.
func BenchmarkAblationRRefCall(b *testing.B) {
	mgr := sfi.NewManager()
	d := mgr.NewDomain("svc")
	rref, err := sfi.Export[netbricks.Operator](d, netbricks.NullFilter{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := sfi.NewContext()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := rref.Call(ctx, "p", func(netbricks.Operator) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDirectCall is the function-call baseline for
// BenchmarkAblationRRefCall.
func BenchmarkAblationDirectCall(b *testing.B) {
	var op netbricks.Operator = netbricks.NullFilter{}
	batch := &netbricks.Batch{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := op.ProcessBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCopySFI is the traditional copy-based SFI boundary the
// paper contrasts against: the batch's packet payloads are deep-copied on
// every crossing. Cost scales with bytes moved, unlike CallMove.
func BenchmarkAblationCopySFI(b *testing.B) {
	for _, bs := range []int{1, 32, 256} {
		b.Run(fmt.Sprintf("batch=%d", bs), func(b *testing.B) {
			port := dpdk.NewPort(dpdk.Config{PoolSize: bs + 64})
			pkts := make([]*packet.Packet, bs)
			n := port.RxBurst(pkts)
			batch := &netbricks.Batch{Pkts: pkts[:n]}
			boundary := sfi.CopyBoundary[*netbricks.Batch]{Copy: deepCopyBatch}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := boundary.Cross(batch, func(in *netbricks.Batch) (*netbricks.Batch, error) {
					return in, nil
				})
				if err != nil {
					b.Fatal(err)
				}
				_ = out
			}
		})
	}
}

// BenchmarkAblationMoveSFI is the zero-copy CallMove crossing at the same
// batch sizes, for direct comparison with BenchmarkAblationCopySFI.
func BenchmarkAblationMoveSFI(b *testing.B) {
	for _, bs := range []int{1, 32, 256} {
		b.Run(fmt.Sprintf("batch=%d", bs), func(b *testing.B) {
			port := dpdk.NewPort(dpdk.Config{PoolSize: bs + 64})
			pkts := make([]*packet.Packet, bs)
			n := port.RxBurst(pkts)
			batch := &netbricks.Batch{Pkts: pkts[:n]}
			mgr := sfi.NewManager()
			d := mgr.NewDomain("stage")
			rref, err := sfi.Export[netbricks.Operator](d, netbricks.NullFilter{})
			if err != nil {
				b.Fatal(err)
			}
			ctx := sfi.NewContext()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				owned := linear.New(batch)
				out, err := sfi.CallMove(ctx, rref, "p", owned,
					func(op netbricks.Operator, a linear.Owned[*netbricks.Batch]) (linear.Owned[*netbricks.Batch], error) {
						return a, nil
					})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := out.Into(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTaggedHeap is the shared-heap-with-ownership-tags
// architecture (Mao et al. [27]): every packet access pays a tag
// validation. The paper cites >100% overhead for this design.
func BenchmarkAblationTaggedHeap(b *testing.B) {
	for _, bs := range []int{1, 32, 256} {
		b.Run(fmt.Sprintf("batch=%d", bs), func(b *testing.B) {
			heap := sfi.NewTaggedHeap[packet.Packet]()
			const owner sfi.DomainID = 1
			handles := make([]sfi.Handle, bs)
			for i := range handles {
				handles[i] = heap.Alloc(owner, packet.Packet{Data: make([]byte, 64)})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, h := range handles {
					if err := heap.Access(owner, h, func(p *packet.Packet) {
						p.UserTag++
					}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationUntaggedAccess is the baseline for the tagged heap:
// the same per-packet work without tag validation.
func BenchmarkAblationUntaggedAccess(b *testing.B) {
	for _, bs := range []int{1, 32, 256} {
		b.Run(fmt.Sprintf("batch=%d", bs), func(b *testing.B) {
			pkts := make([]*packet.Packet, bs)
			for i := range pkts {
				pkts[i] = &packet.Packet{Data: make([]byte, 64)}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, p := range pkts {
					p.UserTag++
				}
			}
		})
	}
}

// BenchmarkAblationVisitedSet compares the three checkpoint traversal
// strategies on a structure that is ALL unique pointers (no sharing):
// the visited-set approach pays its table probes even when there is
// nothing to deduplicate — the paper's "obvious downside".
func BenchmarkAblationVisitedSet(b *testing.B) {
	type node struct {
		Val  int
		Next *node
	}
	build := func(n int) *node {
		var head *node
		for i := 0; i < n; i++ {
			head = &node{Val: i, Next: head}
		}
		return head
	}
	list := build(1000)
	for _, mode := range []checkpoint.Mode{checkpoint.RcAware, checkpoint.VisitedSet} {
		b.Run(mode.String(), func(b *testing.B) {
			eng := checkpoint.NewEngine(mode)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Checkpoint(list); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// deepCopyBatch clones a batch and all packet payloads (the copy-based
// SFI crossing).
func deepCopyBatch(in *netbricks.Batch) *netbricks.Batch {
	out := &netbricks.Batch{Pkts: make([]*packet.Packet, len(in.Pkts))}
	for i, p := range in.Pkts {
		cp := *p
		cp.Data = append([]byte(nil), p.Data...)
		out.Pkts[i] = &cp
	}
	return out
}
