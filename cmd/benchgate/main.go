// Command benchgate fails a build when a benchmark metric regresses
// past a bound. It closes the loop the JSON bench records open: the
// numbers in BENCH_*.json show the perf trajectory, and benchgate turns
// one of them into a hard gate —
//
//	go test -run='^$' -bench='NetportLoopback$' ./internal/netport \
//	    | benchgate -bench BenchmarkNetportLoopback -metric pps -min 320000
//
// reads `go test -bench` output on stdin (echoed unchanged, like
// benchjson), or with -file reads a benchjson-written JSON record
// instead, and exits nonzero if the named benchmark's metric is missing
// or out of bounds. Three gate shapes compose:
//
//   - -min: an absolute floor (throughput must not regress). Floors are
//     set ~20% under the recorded number so scheduler noise does not
//     flap the gate but a real regression trips it.
//   - -max: an absolute ceiling (allocs/op must stay 0; overheads must
//     not grow). -max 0 with -metric allocs/op is the zero-allocation
//     gate.
//   - -baseline B -min-frac F: a relative floor against another
//     benchmark from the same input — the gated bench's metric must be
//     at least F times B's. This is how the traced loopback proves it
//     sustains >= 98% of the untraced run's pps.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// gomaxprocsSuffix is the "-8" style suffix go test appends to benchmark
// names; stripping it keeps names stable across machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	bench := flag.String("bench", "", "benchmark name to gate (required)")
	metric := flag.String("metric", "pps", "metric unit to compare")
	min := flag.Float64("min", math.Inf(-1), "floor: fail if the metric is below this")
	max := flag.Float64("max", math.Inf(1), "ceiling: fail if the metric is above this")
	baseline := flag.String("baseline", "", "benchmark to compare against (relative gate)")
	minFrac := flag.Float64("min-frac", 0, "relative floor: fail if metric < min-frac * baseline's metric")
	file := flag.String("file", "", "read a benchjson JSON record instead of bench output on stdin")
	flag.Parse()
	if *bench == "" {
		log.Fatal("-bench is required")
	}
	if (*baseline == "") != (*minFrac == 0) {
		log.Fatal("-baseline and -min-frac must be used together")
	}

	var results map[string]map[string]float64
	if *file != "" {
		results = fromJSON(*file)
	} else {
		results = fromStdin()
	}

	value, found := results[*bench][*metric]
	if !found {
		log.Fatalf("benchmark %s has no %q metric", *bench, *metric)
	}
	if value < *min {
		log.Fatalf("REGRESSION: %s %s = %.0f, below the floor %.0f", *bench, *metric, value, *min)
	}
	if value > *max {
		log.Fatalf("REGRESSION: %s %s = %g, above the ceiling %g", *bench, *metric, value, *max)
	}
	if *baseline != "" {
		base, ok := results[*baseline][*metric]
		if !ok {
			log.Fatalf("baseline benchmark %s has no %q metric", *baseline, *metric)
		}
		if floor := *minFrac * base; value < floor {
			log.Fatalf("REGRESSION: %s %s = %.0f, below %.0f%% of %s's %.0f (floor %.0f)",
				*bench, *metric, value, *minFrac*100, *baseline, base, floor)
		}
		log.Printf("ok: %s %s = %.0f >= %.0f%% of %s's %.0f",
			*bench, *metric, value, *minFrac*100, *baseline, base)
		return
	}
	switch {
	case !math.IsInf(*max, 1):
		log.Printf("ok: %s %s = %g (ceiling %g)", *bench, *metric, value, *max)
	default:
		log.Printf("ok: %s %s = %.0f (floor %.0f)", *bench, *metric, value, *min)
	}
}

// fromJSON reads a benchjson record (benchmark name → unit → value).
func fromJSON(path string) map[string]map[string]float64 {
	buf, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	results := map[string]map[string]float64{}
	if err := json.Unmarshal(buf, &results); err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return results
}

// fromStdin scans `go test -bench` output, echoing it unchanged, and
// collects every benchmark's metrics (so relative gates can compare two
// benches from one run). A run that never prints PASS (build failure,
// bench panic) fails the gate regardless of the metrics.
func fromStdin() map[string]map[string]float64 {
	results := map[string]map[string]float64{}
	var pass bool
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if line == "PASS" || strings.HasPrefix(line, "ok ") {
			pass = true
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(f[0], "")
		m := results[name]
		if m == nil {
			m = map[string]float64{}
			results[name] = m
		}
		for i := 2; i+1 < len(f); i += 2 {
			if v, err := strconv.ParseFloat(f[i], 64); err == nil {
				m[f[i+1]] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if !pass {
		log.Fatal("benchmark run did not report PASS")
	}
	return results
}
