// Command benchgate fails a build when a benchmark metric regresses
// below a floor. It closes the loop the JSON bench records open: the
// numbers in BENCH_*.json show the perf trajectory, and benchgate turns
// one of them into a hard gate —
//
//	go test -run='^$' -bench='NetportLoopback$' ./internal/netport \
//	    | benchgate -bench BenchmarkNetportLoopback -metric pps -min 320000
//
// reads `go test -bench` output on stdin (echoed unchanged, like
// benchjson), or with -file reads a benchjson-written JSON record
// instead, and exits nonzero if the named benchmark's metric is missing
// or below -min. Floors are set ~20% under the recorded number so
// scheduler noise does not flap the gate but a real regression trips it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// gomaxprocsSuffix is the "-8" style suffix go test appends to benchmark
// names; stripping it keeps names stable across machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	bench := flag.String("bench", "", "benchmark name to gate (required)")
	metric := flag.String("metric", "pps", "metric unit to compare")
	min := flag.Float64("min", 0, "floor: fail if the metric is below this")
	file := flag.String("file", "", "read a benchjson JSON record instead of bench output on stdin")
	flag.Parse()
	if *bench == "" {
		log.Fatal("-bench is required")
	}

	var value float64
	var found bool
	if *file != "" {
		value, found = fromJSON(*file, *bench, *metric)
	} else {
		value, found = fromStdin(*bench, *metric)
	}
	if !found {
		log.Fatalf("benchmark %s has no %q metric", *bench, *metric)
	}
	if value < *min {
		log.Fatalf("REGRESSION: %s %s = %.0f, below the floor %.0f", *bench, *metric, value, *min)
	}
	log.Printf("ok: %s %s = %.0f (floor %.0f)", *bench, *metric, value, *min)
}

// fromJSON reads a benchjson record (benchmark name → unit → value).
func fromJSON(path, bench, metric string) (float64, bool) {
	buf, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	results := map[string]map[string]float64{}
	if err := json.Unmarshal(buf, &results); err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	v, ok := results[bench][metric]
	return v, ok
}

// fromStdin scans `go test -bench` output, echoing it unchanged, and
// returns the gated benchmark's metric. A run that never prints PASS
// (build failure, bench panic) fails the gate regardless of the metric.
func fromStdin(bench, metric string) (float64, bool) {
	var value float64
	var found, pass bool
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if line == "PASS" || strings.HasPrefix(line, "ok ") {
			pass = true
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 || gomaxprocsSuffix.ReplaceAllString(f[0], "") != bench {
			continue
		}
		for i := 2; i+1 < len(f); i += 2 {
			if f[i+1] != metric {
				continue
			}
			if v, err := strconv.ParseFloat(f[i], 64); err == nil {
				value, found = v, true
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if !pass {
		log.Fatal("benchmark run did not report PASS")
	}
	return value, found
}
