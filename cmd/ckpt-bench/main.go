// Command ckpt-bench regenerates the §5 checkpointing experiment
// (Figure 3): a firewall rule database whose trie leaves share rules is
// checkpointed under the paper's Rc-aware engine, the naive engine that
// duplicates shared rules (Figure 3b), and the conventional-language
// visited-set workaround, reporting copy counts and cycle costs.
//
// Usage:
//
//	ckpt-bench                     # paper-scale defaults
//	ckpt-bench -rules 5000 -share 4 -iters 20
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ckpt-bench: ")
	var (
		rules = flag.Int("rules", 1000, "distinct firewall rules")
		share = flag.Int("share", 3, "trie leaves per rule (sharing factor, Figure 3a)")
		iters = flag.Int("iters", 25, "measurement iterations per mode")
	)
	flag.Parse()
	if *rules <= 0 || *share <= 0 {
		log.Fatal("rules and share must be positive")
	}
	rows, err := experiments.Figure3(*rules, *share, *iters)
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintFigure3(os.Stdout, rows)
	fmt.Println("(paper: Rc-aware checkpoint copies each shared rule exactly once;")
	fmt.Println(" naive traversal produces duplicate copies; conventional languages")
	fmt.Println(" pay a visited-set probe per pointer to avoid them)")
}
