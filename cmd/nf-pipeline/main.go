// Command nf-pipeline runs a realistic isolated network-function pipeline
// end to end: simulated DPDK port → parse → firewall → Maglev load
// balancer → session table, with every stage in its own protection
// domain, optional fault injection, and automatic recovery — the full §3
// scenario, with §5 checkpointed state recovery on top.
//
// Usage:
//
//	nf-pipeline                          # 10k batches of 32 packets
//	nf-pipeline -batches 1000 -size 64
//	nf-pipeline -inject 500              # panic the firewall on batch 500
//	nf-pipeline -direct                  # baseline without isolation
//	nf-pipeline -workers 4               # sharded: 4 workers, RSS steering
//	nf-pipeline -workers 4 -supervise    # workers as supervised domains
//	nf-pipeline -workers 4 -supervise -crashrate 0.05
//	                                     # chaos: 5% of batches panic
//	nf-pipeline -workers 4 -supervise -crashrate 0.05 -checkpoint-every 10ms
//	                                     # §5: restarted workers restore
//	                                     # their NF state from checkpoints
//	nf-pipeline -metrics-addr :9090 -supervise -crashrate 0.05
//	                                     # live /metrics + flight recorder
//
// Real traffic over loopback (two terminals):
//
//	nf-pipeline -listen 127.0.0.1:9000 -workers 4 -supervise
//	                                     # socket-backed port instead of the
//	                                     # simulated NIC; -egress to forward
//	nf-pipeline -listen 127.0.0.1:9000 -workers 4 -reuseport
//	                                     # SO_REUSEPORT: one receive socket
//	                                     # per worker, kernel fan-out
//	nf-pipeline -target 127.0.0.1:9000 -pps 100000 -duration 10s
//	                                     # pktgen: drive the listener
//	                                     # (-sockets spreads source ports so
//	                                     # a -reuseport listener fans out)
//
// Contradictory flag sets (e.g. -listen with -target, or
// -checkpoint-every without -supervise) are rejected up front with a
// usage error rather than letting one mode win silently.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"time"

	"repro/internal/cycles"
	"repro/internal/domain"
	"repro/internal/domain/faultinject"
	"repro/internal/dpdk"
	"repro/internal/firewall"
	"repro/internal/maglev"
	"repro/internal/netbricks"
	"repro/internal/netport"
	"repro/internal/packet"
	"repro/internal/session"
	"repro/internal/sfi"
	"repro/internal/statestore"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// osExit is swappable so flag-validation tests can observe the exit.
var osExit = os.Exit

// faultyStage wraps an operator with §3-style fault injection: a
// deterministic one-shot panic (-inject) and/or a seeded probabilistic
// injector (-crashrate).
type faultyStage struct {
	inner   netbricks.Operator
	panicOn int
	seen    int
	inj     *faultinject.Injector
}

func (f *faultyStage) Name() string { return f.inner.Name() }

func (f *faultyStage) ProcessBatch(b *netbricks.Batch) error {
	f.seen++
	if f.panicOn != 0 && f.seen == f.panicOn {
		panic(fmt.Sprintf("injected %s fault on batch %d", f.inner.Name(), f.seen))
	}
	if f.inj != nil {
		f.inj.Point(f.inner.Name())
	}
	return f.inner.ProcessBatch(b)
}

// validateFlags rejects contradictory flag combinations up front, so the
// process exits with a usage error instead of silently letting one mode
// win. set holds the names of flags the user passed explicitly.
func validateFlags(set map[string]bool, supervise bool, checkpointEvery time.Duration, traceSample int, stateDir, fsync string) error {
	if set["target"] {
		// Pktgen mode: only pktgen knobs make sense alongside it.
		for _, name := range []string{
			"listen", "egress", "reuseport", "direct", "supervise", "inject",
			"crashrate", "checkpoint-every", "workers", "batches", "size",
			"metrics-addr", "stats-interval", "trace-sample", "state-dir", "fsync",
		} {
			if set[name] {
				return fmt.Errorf("-target (pktgen mode) conflicts with -%s", name)
			}
		}
		return nil
	}
	if set["state-dir"] {
		if checkpointEvery == 0 {
			return fmt.Errorf("-state-dir persists checkpoint epochs; it contradicts -checkpoint-every=0 (pass -checkpoint-every > 0)")
		}
		if stateDir == "" {
			return fmt.Errorf("-state-dir needs a directory path")
		}
		// Probe writability now: an unusable state directory is a usage
		// error at startup, not a persist failure minutes into a run.
		if err := os.MkdirAll(stateDir, 0o755); err != nil {
			return fmt.Errorf("-state-dir %s is not usable: %v", stateDir, err)
		}
		probe, err := os.CreateTemp(stateDir, ".probe-*")
		if err != nil {
			return fmt.Errorf("-state-dir %s is not writable: %v", stateDir, err)
		}
		probe.Close()
		os.Remove(probe.Name())
	}
	if set["fsync"] {
		if !set["state-dir"] {
			return fmt.Errorf("-fsync selects the state-store durability mode; it needs -state-dir")
		}
		if _, err := statestore.ParseFsyncMode(fsync); err != nil {
			return err
		}
	}
	if set["egress"] && !set["listen"] {
		return fmt.Errorf("-egress forwards received traffic; it needs -listen")
	}
	if set["reuseport"] && !set["listen"] {
		return fmt.Errorf("-reuseport opens per-worker receive sockets; it needs -listen")
	}
	if set["sockets"] {
		return fmt.Errorf("-sockets spreads pktgen load over source sockets; it needs -target")
	}
	if checkpointEvery < 0 {
		return fmt.Errorf("-checkpoint-every must be >= 0")
	}
	if checkpointEvery > 0 && !supervise {
		return fmt.Errorf("-checkpoint-every snapshots supervised worker domains; it needs -supervise")
	}
	if set["pps"] || set["count"] || set["duration"] {
		return fmt.Errorf("-pps/-count/-duration are pktgen knobs; they need -target")
	}
	if set["trace-sample"] {
		if !set["listen"] {
			return fmt.Errorf("-trace-sample arms traces at netport ingress; it needs -listen")
		}
		if traceSample < 1 {
			return fmt.Errorf("-trace-sample must be >= 1 (1 traces every packet)")
		}
		if traceSample&(traceSample-1) != 0 {
			return fmt.Errorf("-trace-sample must be a power of two (the sampler is a mask, not a modulus); got %d", traceSample)
		}
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("nf-pipeline: ")
	var (
		batches   = flag.Int("batches", 10000, "number of batches to process")
		size      = flag.Int("size", 32, "packets per batch")
		inject    = flag.Int("inject", 0, "panic the firewall stage on this batch (0 = never)")
		direct    = flag.Bool("direct", false, "run without isolation (baseline)")
		flows     = flag.Int("flows", 4096, "distinct synthetic flows")
		workers   = flag.Int("workers", 1, "parallel pipeline workers (RSS-sharded when > 1)")
		supervise = flag.Bool("supervise", false, "run sharded workers as supervised protection domains")
		crashrate = flag.Float64("crashrate", 0, "probability [0,1) that the firewall panics on a batch")

		metricsAddr   = flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/flightrecorder on this address (e.g. :9090)")
		statsInterval = flag.Duration("stats-interval", 0, "log a JSON metrics snapshot at this interval (0 = off)")

		listen    = flag.String("listen", "", "receive real overlay traffic on this UDP address (socket-backed port instead of the simulated NIC)")
		egress    = flag.String("egress", "", "with -listen: forward transmitted frames to this UDP address (default: count and recycle)")
		reuseport = flag.Bool("reuseport", false, "with -listen: SO_REUSEPORT kernel fan-out — one receive socket per worker instead of the software distributor (Linux; falls back silently elsewhere)")

		target   = flag.String("target", "", "pktgen mode: send synthetic overlay traffic to this UDP address and exit")
		pps      = flag.Int("pps", 100000, "pktgen: offered load in packets per second (0 = unpaced)")
		count    = flag.Int("count", 0, "pktgen: datagrams to send (0 = send for -duration)")
		duration = flag.Duration("duration", 10*time.Second, "pktgen: how long to send when -count is 0")
		sockets  = flag.Int("sockets", 16, "pktgen: source sockets to spread flows over (REUSEPORT receivers need the source-port entropy)")

		checkpointEvery = flag.Duration("checkpoint-every", 0, "with -supervise: snapshot each worker's NF state at this epoch length; restarts restore the last good snapshot (0 = off)")

		stateDir  = flag.String("state-dir", "", "with -checkpoint-every: persist completed epochs to a WAL in this directory; a restart with the same directory restores the last durable epoch")
		fsyncMode = flag.String("fsync", "group", "with -state-dir: WAL durability mode — group (fsync once per commit wave), always (fsync every epoch), none (page cache only)")

		traceSample = flag.Int("trace-sample", 0, "with -listen: arm a sampled packet trace on one in N ingress frames per receive loop (power of two; 0 = off); completed traces serve at /debug/traces")
	)
	flag.Parse()
	setFlags := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	if err := validateFlags(setFlags, *supervise, *checkpointEvery, *traceSample, *stateDir, *fsyncMode); err != nil {
		fmt.Fprintf(flag.CommandLine.Output(), "nf-pipeline: %v\n\n", err)
		flag.Usage()
		osExit(2)
	}
	if *target != "" {
		runPktgen(*target, *pps, *count, *duration, *flows, *sockets, *size)
		return
	}
	if *workers < 1 {
		log.Fatal("-workers must be >= 1")
	}
	if *supervise && *workers < 2 {
		// Supervision is a sharded-runner mode; run the minimal shard count
		// rather than refusing.
		log.Print("-supervise implies sharded workers; raising -workers to 2")
		*workers = 2
	}
	if *crashrate < 0 || *crashrate >= 1 {
		log.Fatal("-crashrate must be in [0,1)")
	}
	if *crashrate > 0 && *direct {
		log.Fatal("-crashrate needs an isolated pipeline to recover; drop -direct")
	}
	var inj *faultinject.Injector
	if *crashrate > 0 {
		inj = faultinject.New(42)
		inj.PanicProb = *crashrate
	}

	// Telemetry: one shared registry for every layer's counters and a
	// flight recorder capturing the last 256 domain events. Both are
	// nil-safe, but the pipeline always runs with them on — the record
	// path is pure atomics, so there is nothing to turn off.
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(256)
	var store *statestore.Store
	if *stateDir != "" {
		mode, merr := statestore.ParseFsyncMode(*fsyncMode)
		if merr != nil {
			log.Fatal(merr)
		}
		var serr error
		store, serr = statestore.Open(statestore.Config{Dir: *stateDir, Fsync: mode})
		if serr != nil {
			log.Fatal(serr)
		}
		defer store.Close()
		store.RegisterMetrics(reg, nil)
		log.Printf("durable state: %s (fsync=%s), %d domains with a prior epoch", *stateDir, mode, store.EpochCount())
	}
	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.New(trace.Config{SampleEvery: *traceSample, Ring: 256, Recorder: rec})
		tracer.RegisterMetrics(reg, nil)
		log.Printf("tracing one in %d ingress frames per receive loop", tracer.SampleEvery())
	}
	if *metricsAddr != "" {
		// Sane default profile rates for the admin surface: mutex events
		// sampled 1-in-100, block events at 1ms granularity — cheap enough
		// to leave on, detailed enough that /debug/pprof/{mutex,block}
		// return something useful. CPU and heap profiles need no arming.
		runtime.SetMutexProfileFraction(100)
		runtime.SetBlockProfileRate(int(time.Millisecond))
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/debug/flightrecorder", rec.Handler())
		// Nil-safe without -trace-sample: both report {"enabled":false}.
		mux.Handle("/debug/traces", tracer.Handler())
		mux.Handle("/debug/alloc", tracer.AllocHandler())
		// The mux is custom, so net/http/pprof's DefaultServeMux
		// registrations never see traffic; mount its handlers explicitly.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
		log.Printf("serving http://%s/metrics, /debug/flightrecorder, /debug/traces, /debug/alloc, /debug/pprof/", *metricsAddr)
	}
	if *statsInterval > 0 {
		go func() {
			t := time.NewTicker(*statsInterval)
			defer t.Stop()
			for range t.C {
				var buf bytes.Buffer
				if err := reg.WriteJSON(&buf); err == nil {
					log.Printf("stats: %s", bytes.TrimSpace(buf.Bytes()))
				}
			}
		}()
	}

	// Substrate: traffic source, firewall rules, Maglev backends. With
	// multiple workers the port runs in steered mode: one shared flow
	// generator fanned out to per-queue rings by the RSS hash. The pool
	// must cover every ring, every per-queue cache, and in-flight batches,
	// or the distributor starves queues whose rings sit full while the
	// pool is empty (the classic DPDK pool-vs-lcore-cache sizing caveat).
	ringSize := 4 * *size
	if ringSize < 128 {
		ringSize = 128
	}
	cacheSize := *size
	var port netbricks.BurstPort
	var simPort *dpdk.Port
	var sockPort *netport.Port
	if *listen != "" {
		var nerr error
		sockPort, nerr = netport.Open(netport.Config{
			Listen:    *listen,
			Queues:    *workers,
			RingSize:  ringSize,
			BatchSize: *size, // one recvmmsg fills one worker batch
			CacheSize: cacheSize,
			ReusePort: *reuseport,
			// A generous poll grace: the run ends 8 idle polls (~800ms)
			// after the wire goes quiet, not mid-burst.
			PollWait: 100 * time.Millisecond,
			TxTarget: *egress,
			Recorder: rec,
			Tracer:   tracer,
		})
		if nerr != nil {
			log.Fatal(nerr)
		}
		defer sockPort.Close()
		sockPort.RegisterMetrics(reg, telemetry.Labels{"port": "net0"})
		fanout := "software distributor"
		if sockPort.ReusePortActive() {
			fanout = "SO_REUSEPORT kernel fan-out"
		}
		log.Printf("listening for overlay traffic on %s (%d rx queues, %s)", sockPort.Addr(), *workers, fanout)
		port = sockPort
	} else {
		simPort = dpdk.NewPort(dpdk.Config{
			PoolSize:   *workers*(ringSize+cacheSize+*size) + 256,
			RxQueues:   *workers,
			RxRingSize: ringSize,
			CacheSize:  cacheSize,
			Gen:        dpdk.NewZipfFlows(dpdk.DefaultSpec(), *flows, 1.3, 42),
		})
		simPort.RegisterMetrics(reg, telemetry.Labels{"port": "0"})
		port = simPort
	}
	newRuleDB := func() *firewall.DB {
		db := firewall.NewDB(firewall.Deny)
		// Admit the synthetic service prefix; everything else drops.
		if _, err := db.AddRule(packet.Addr(10, 99, 0, 0), 16, firewall.Rule{ID: 1, Action: firewall.Allow, Comment: "service"}); err != nil {
			log.Fatal(err)
		}
		return db
	}
	db := newRuleDB()
	backends := make([]maglev.Backend, 8)
	for i := range backends {
		backends[i] = maglev.Backend{Name: fmt.Sprintf("be-%d", i), IP: packet.Addr(10, 1, 0, byte(i+1))}
	}

	// Each worker owns a private balancer and session table: RSS flow
	// affinity guarantees a flow's packets all reach the same worker, so
	// per-worker connection/flow tables are exact, not approximate. The
	// rule DB is read-only after setup and safely shared — except under
	// -checkpoint-every, where each worker gets a private DB behind a
	// firewall.Stateful so workers snapshot disjoint graphs (concurrent
	// checkpoints over one shared graph would fight over the Rc epoch
	// flags and lose sharing).
	balancers := make([]*maglev.Balancer, *workers)
	tables := make([]*session.Table, *workers)
	var fwStates []*firewall.Stateful
	if *checkpointEvery > 0 {
		fwStates = make([]*firewall.Stateful, *workers)
	}
	for w := range balancers {
		lb, err := maglev.NewBalancer(backends, maglev.DefaultTableSize)
		if err != nil {
			log.Fatal(err)
		}
		balancers[w] = lb
		tables[w] = session.NewTable()
		if store != nil {
			// The RAM session table becomes a cache over the on-disk flow
			// index: evictions spill, misses promote back.
			ix, ierr := store.FlowIndex(fmt.Sprintf("worker-%d", w))
			if ierr != nil {
				log.Fatal(ierr)
			}
			tables[w].SetSpill(ix, 1<<17)
		}
		if fwStates != nil {
			fws, err := firewall.NewStateful(newRuleDB())
			if err != nil {
				log.Fatal(err)
			}
			fwStates[w] = fws
		}
	}

	firewallOp := func(w int) netbricks.Operator {
		if fwStates != nil {
			return firewall.StatefulOperator{S: fwStates[w]}
		}
		return firewall.Operator{DB: db}
	}

	// stagesFor builds worker w's private pipeline stages. Fault injection
	// targets worker 0's firewall so a sharded run demonstrates that one
	// worker's crash leaves the others untouched.
	stagesFor := func(w int) []netbricks.Operator {
		panicOn := 0
		if w == 0 {
			panicOn = *inject
		}
		fw := &faultyStage{inner: firewallOp(w), panicOn: panicOn, inj: inj}
		return []netbricks.Operator{
			netbricks.Parse{}, fw,
			maglev.Operator{LB: balancers[w]},
			session.Operator{T: tables[w]},
		}
	}
	recoveryFor := func(w int) []func() netbricks.Operator {
		return []func() netbricks.Operator{
			nil,
			func() netbricks.Operator {
				// Recovery reinitializes the firewall from clean state; the
				// injector stays attached, so a chaos run keeps crashing at
				// the configured rate after every recovery.
				return &faultyStage{inner: firewallOp(w), inj: inj}
			},
			nil,
			nil,
		}
	}

	var stats netbricks.RunStats
	var err error
	c := cycles.Start()
	if *workers == 1 {
		runner := netbricks.Runner{Port: port, BatchSize: *size, Tracer: tracer}
		if *direct {
			runner.Direct = netbricks.NewPipeline(stagesFor(0)...)
		} else {
			mgr := sfi.NewManager()
			mgr.SetRegistry(reg, nil)
			iso, ierr := netbricks.NewIsolatedPipeline(mgr, stagesFor(0), recoveryFor(0))
			if ierr != nil {
				log.Fatal(ierr)
			}
			runner.Isolated = iso
			runner.AutoRecover = true
		}
		stats, err = runner.Run(sfi.NewContext(), *batches)
	} else {
		runner := &netbricks.ShardedRunner{
			Port: port, Workers: *workers, BatchSize: *size,
			Supervise: *supervise,
			Registry:  reg,
			Tracer:    tracer,
			Policy: domain.Policy{
				Recorder:        rec,
				CheckpointEvery: *checkpointEvery,
				OnDegrade: func(name string, events []telemetry.Event) {
					log.Printf("flight-recorder dump: %s exhausted its restart budget; last %d events:", name, len(events))
					for _, ev := range events {
						log.Printf("  %s", ev)
					}
				},
			},
		}
		if *checkpointEvery > 0 {
			runner.NewState = func(w int) domain.Stateful {
				return domain.NewStateSet().
					Add("firewall", fwStates[w]).
					Add("maglev", balancers[w]).
					Add("session", tables[w])
			}
		}
		if store != nil {
			// Guarded assignment: a nil *Store inside the interface would
			// read as non-nil to the domain layer.
			runner.Policy.Persist = store
		}
		if *direct {
			runner.NewDirect = func(w int) *netbricks.Pipeline {
				return netbricks.NewPipeline(stagesFor(w)...)
			}
		} else {
			runner.NewIsolated = func(w int) (*netbricks.IsolatedPipeline, error) {
				// Each worker's stage domains live in a private manager;
				// the worker label keeps their series apart on the shared
				// registry.
				mgr := sfi.NewManager()
				mgr.SetRegistry(reg, telemetry.Labels{"worker": strconv.Itoa(w)})
				return netbricks.NewIsolatedPipeline(mgr, stagesFor(w), recoveryFor(w))
			}
			runner.AutoRecover = true
		}
		stats, err = runner.Run(*batches)
		if sn, ok := runner.SupervisorSnapshot(); ok {
			defer fmt.Printf("supervisor: %d restarts (%d errors, %d crashes, %d hangs), degraded=%v\n",
				sn.Restarts, sn.Errors, sn.Crashes, sn.Hangs, sn.Degraded)
			if *checkpointEvery > 0 {
				defer fmt.Printf("checkpoint: %s epochs: %d taken (%d failed), %d restores, %d cold starts\n",
					*checkpointEvery, sn.Checkpoints, sn.CheckpointFailures, sn.Restores, sn.ColdStarts)
			}
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	elapsed := c.Elapsed()

	mode := "isolated (one protection domain per stage)"
	if *direct {
		mode = "direct (no isolation)"
	}
	if *supervise {
		mode += ", supervised workers"
	}
	fmt.Printf("pipeline:   parse -> firewall -> maglev -> session, %s\n", mode)
	if *workers > 1 {
		fmt.Printf("sharding:   %d workers, RSS flow steering (%d-entry RETA)\n", *workers, packet.DefaultRETASize)
	}
	fmt.Printf("batches:    %d processed (%d packets, %d filtered)\n", stats.Batches, stats.Packets, stats.Drops)
	if stats.Faults > 0 {
		fmt.Printf("faults:     %d injected, %d recovered; pipeline kept running\n", stats.Faults, stats.Recovered)
	}
	if stats.Batches > 0 {
		fmt.Printf("cost:       %.0f cycles/batch, %.1f cycles/packet (at %.2f GHz)\n",
			elapsed/float64(stats.Batches),
			elapsed/float64(stats.Packets),
			cycles.Frequency())
	}
	var conns int
	var hits, misses uint64
	for _, lb := range balancers {
		h, m := lb.Stats()
		hits += h
		misses += m
		conns += lb.ConnCount()
	}
	fmt.Printf("maglev:     %d tracked connections, %d table hits, %d new flows\n", conns, hits, misses)
	flowCount, backendCount := 0, 0
	for _, t := range tables {
		flowCount += t.Len()
		backendCount += t.Backends()
	}
	fmt.Printf("session:    %d tracked flows over %d backend handles\n", flowCount, backendCount)
	if store != nil {
		ss := store.StatsSnapshot()
		fmt.Printf("statestore: %d epochs persisted (%d bytes, %d fsyncs, %d compactions), %d flows spilled, %d promoted, wal=%dB\n",
			ss.Persisted, ss.PersistBytes, ss.Fsyncs, ss.Compactions, ss.Spilled, ss.Promotions, ss.WALBytes)
	}
	if sockPort != nil {
		s := &sockPort.Stats
		fmt.Printf("port:       rx_datagrams=%d delivered=%d tx=%d tx_errors=%d\n",
			s.RxDatagrams.Load(), s.RxPackets.Load(), s.TxPackets.Load(), s.TxErrors.Load())
		fmt.Printf("shed:       ring_full=%d parse_error=%d pool_empty=%d\n",
			s.RingFull.Load(), s.ParseError.Load(), s.PoolEmpty.Load())
	} else {
		fmt.Printf("port:       rx=%d tx=%d missed=%d\n",
			simPort.Stats.RxPackets.Load(), simPort.Stats.TxPackets.Load(), simPort.Stats.RxMissed.Load())
	}
	if tracer != nil {
		armed, completed, aborted := tracer.Counts()
		fmt.Printf("trace:      1/%d sampled: %d armed, %d completed, %d aborted\n",
			tracer.SampleEvery(), armed, completed, aborted)
	}
}

// runPktgen is the -target mode: drive a listening nf-pipeline (or any
// netport) with paced synthetic overlay traffic, then report the offered
// rate.
func runPktgen(target string, pps, count int, duration time.Duration, flows, sockets, batch int) {
	gen := &netport.Pktgen{
		Target:  target,
		Base:    dpdk.DefaultSpec(),
		Flows:   flows,
		PPS:     pps,
		Count:   count,
		Sockets: sockets,
		Batch:   batch,
	}
	var stop chan struct{}
	if count == 0 {
		stop = make(chan struct{})
		go func() {
			time.Sleep(duration)
			close(stop)
		}()
		log.Printf("pktgen: %s for %s at %d pps (%d flows over %d sockets)", target, duration, pps, flows, sockets)
	} else {
		log.Printf("pktgen: %s, %d datagrams at %d pps (%d flows over %d sockets)", target, count, pps, flows, sockets)
	}
	start := time.Now()
	sent, err := gen.Run(stop)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("pktgen:     sent=%d in %s (%.0f pps offered)\n",
		sent, elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds())
}
