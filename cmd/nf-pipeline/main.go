// Command nf-pipeline runs a realistic isolated network-function pipeline
// end to end: simulated DPDK port → parse → firewall → Maglev load
// balancer, with every stage in its own protection domain, optional fault
// injection, and automatic recovery — the full §3 scenario.
//
// Usage:
//
//	nf-pipeline                          # 10k batches of 32 packets
//	nf-pipeline -batches 1000 -size 64
//	nf-pipeline -inject 500              # panic the firewall on batch 500
//	nf-pipeline -direct                  # baseline without isolation
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cycles"
	"repro/internal/dpdk"
	"repro/internal/firewall"
	"repro/internal/maglev"
	"repro/internal/netbricks"
	"repro/internal/packet"
	"repro/internal/sfi"
)

// faultyFirewall wraps the firewall operator with §3-style fault
// injection.
type faultyFirewall struct {
	firewall.Operator
	panicOn int
	seen    int
}

func (f *faultyFirewall) Name() string { return "firewall" }

func (f *faultyFirewall) ProcessBatch(b *netbricks.Batch) error {
	f.seen++
	if f.panicOn != 0 && f.seen == f.panicOn {
		panic(fmt.Sprintf("injected firewall fault on batch %d", f.seen))
	}
	return f.Operator.ProcessBatch(b)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("nf-pipeline: ")
	var (
		batches = flag.Int("batches", 10000, "number of batches to process")
		size    = flag.Int("size", 32, "packets per batch")
		inject  = flag.Int("inject", 0, "panic the firewall stage on this batch (0 = never)")
		direct  = flag.Bool("direct", false, "run without isolation (baseline)")
		flows   = flag.Int("flows", 4096, "distinct synthetic flows")
	)
	flag.Parse()

	// Substrate: traffic source, firewall rules, Maglev backends.
	port := dpdk.NewPort(dpdk.Config{
		PoolSize: *size + 128,
		Gen:      dpdk.NewZipfFlows(dpdk.DefaultSpec(), *flows, 1.3, 42),
	})
	db := firewall.NewDB(firewall.Deny)
	// Admit the synthetic service prefix; everything else drops.
	if _, err := db.AddRule(packet.Addr(10, 99, 0, 0), 16, firewall.Rule{ID: 1, Action: firewall.Allow, Comment: "service"}); err != nil {
		log.Fatal(err)
	}
	backends := make([]maglev.Backend, 8)
	for i := range backends {
		backends[i] = maglev.Backend{Name: fmt.Sprintf("be-%d", i), IP: packet.Addr(10, 1, 0, byte(i+1))}
	}
	lb, err := maglev.NewBalancer(backends, maglev.DefaultTableSize)
	if err != nil {
		log.Fatal(err)
	}

	fw := &faultyFirewall{Operator: firewall.Operator{DB: db}, panicOn: *inject}
	stages := []netbricks.Operator{netbricks.Parse{}, fw, maglev.Operator{LB: lb}}

	runner := netbricks.Runner{Port: port, BatchSize: *size}
	if *direct {
		runner.Direct = netbricks.NewPipeline(stages...)
	} else {
		mgr := sfi.NewManager()
		factories := []func() netbricks.Operator{
			nil,
			func() netbricks.Operator {
				// Recovery reinitializes the firewall from clean state.
				return &faultyFirewall{Operator: firewall.Operator{DB: db}}
			},
			nil,
		}
		iso, err := netbricks.NewIsolatedPipeline(mgr, stages, factories)
		if err != nil {
			log.Fatal(err)
		}
		runner.Isolated = iso
		runner.AutoRecover = true
	}

	c := cycles.Start()
	stats, err := runner.Run(sfi.NewContext(), *batches)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := c.Elapsed()

	mode := "isolated (one protection domain per stage)"
	if *direct {
		mode = "direct (no isolation)"
	}
	fmt.Printf("pipeline:   parse -> firewall -> maglev, %s\n", mode)
	fmt.Printf("batches:    %d processed (%d packets, %d filtered)\n", stats.Batches, stats.Packets, stats.Drops)
	if stats.Faults > 0 {
		fmt.Printf("faults:     %d injected, %d recovered; pipeline kept running\n", stats.Faults, stats.Recovered)
	}
	if stats.Batches > 0 {
		fmt.Printf("cost:       %.0f cycles/batch, %.1f cycles/packet (at %.2f GHz)\n",
			elapsed/float64(stats.Batches),
			elapsed/float64(stats.Packets),
			cycles.Frequency())
	}
	hits, misses := lb.Stats()
	fmt.Printf("maglev:     %d tracked connections, %d table hits, %d new flows\n", lb.ConnCount(), hits, misses)
	fmt.Printf("port:       rx=%d tx=%d\n", port.Stats.RxPackets.Load(), port.Stats.TxPackets.Load())
}
