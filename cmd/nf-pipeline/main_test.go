package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	set := func(names ...string) map[string]bool {
		m := make(map[string]bool)
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	writable := t.TempDir()
	// A path below a regular file can never become a directory — the
	// portable "unusable state dir" (works even as root, where mode-0
	// directories are still writable).
	blockerFile := filepath.Join(writable, "blocker")
	if err := os.WriteFile(blockerFile, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	unusable := filepath.Join(blockerFile, "state")
	cases := []struct {
		name      string
		set       map[string]bool
		supervise bool
		every     time.Duration
		sample    int
		stateDir  string
		fsync     string
		wantErr   string // empty = valid
	}{
		{name: "defaults", set: set()},
		{name: "pktgen", set: set("target", "pps", "count")},
		{name: "listen+egress", set: set("listen", "egress")},
		{name: "supervised checkpointing", set: set("supervise", "checkpoint-every"),
			supervise: true, every: 10 * time.Millisecond},
		{name: "target conflicts with listen", set: set("target", "listen"),
			wantErr: "-target (pktgen mode) conflicts with -listen"},
		{name: "target conflicts with supervise", set: set("target", "supervise"),
			supervise: true, wantErr: "conflicts with -supervise"},
		{name: "egress without listen", set: set("egress"),
			wantErr: "needs -listen"},
		{name: "negative epoch", set: set("supervise", "checkpoint-every"),
			supervise: true, every: -time.Second, wantErr: "must be >= 0"},
		{name: "checkpoint without supervise", set: set("checkpoint-every"),
			every: 10 * time.Millisecond, wantErr: "needs -supervise"},
		// -supervise=false -checkpoint-every 10ms: the flag was passed but
		// the value is off — still invalid (the check is on the value).
		{name: "checkpoint with supervise=false", set: set("supervise", "checkpoint-every"),
			supervise: false, every: 10 * time.Millisecond, wantErr: "needs -supervise"},
		{name: "pps without target", set: set("pps"), wantErr: "need -target"},
		{name: "listen+reuseport", set: set("listen", "reuseport")},
		{name: "pktgen with sockets", set: set("target", "sockets", "pps")},
		{name: "target conflicts with reuseport", set: set("target", "reuseport"),
			wantErr: "conflicts with -reuseport"},
		{name: "reuseport without listen", set: set("reuseport"),
			wantErr: "needs -listen"},
		{name: "sockets without target", set: set("sockets"),
			wantErr: "needs -target"},
		{name: "trace-sample with listen", set: set("listen", "trace-sample"), sample: 1024},
		{name: "trace-sample of one", set: set("listen", "trace-sample"), sample: 1},
		{name: "trace-sample without listen", set: set("trace-sample"), sample: 1024,
			wantErr: "needs -listen"},
		{name: "trace-sample conflicts with target", set: set("target", "trace-sample"),
			sample: 1024, wantErr: "conflicts with -trace-sample"},
		{name: "trace-sample zero", set: set("listen", "trace-sample"), sample: 0,
			wantErr: "must be >= 1"},
		{name: "trace-sample negative", set: set("listen", "trace-sample"), sample: -8,
			wantErr: "must be >= 1"},
		{name: "trace-sample not a power of two", set: set("listen", "trace-sample"), sample: 1000,
			wantErr: "power of two"},
		{name: "durable checkpointing", set: set("supervise", "checkpoint-every", "state-dir"),
			supervise: true, every: 10 * time.Millisecond, stateDir: filepath.Join(writable, "state")},
		{name: "durable with explicit fsync", set: set("supervise", "checkpoint-every", "state-dir", "fsync"),
			supervise: true, every: 10 * time.Millisecond, stateDir: filepath.Join(writable, "state2"), fsync: "always"},
		{name: "state-dir without checkpointing", set: set("state-dir"),
			stateDir: filepath.Join(writable, "state3"), wantErr: "contradicts -checkpoint-every=0"},
		// -checkpoint-every=0 passed explicitly alongside -state-dir: the
		// contradiction check is on the value, not flag presence.
		{name: "state-dir with checkpoint-every=0", set: set("supervise", "checkpoint-every", "state-dir"),
			supervise: true, every: 0, stateDir: filepath.Join(writable, "state4"),
			wantErr: "contradicts -checkpoint-every=0"},
		{name: "empty state-dir", set: set("supervise", "checkpoint-every", "state-dir"),
			supervise: true, every: 10 * time.Millisecond, stateDir: "",
			wantErr: "needs a directory path"},
		{name: "unusable state-dir", set: set("supervise", "checkpoint-every", "state-dir"),
			supervise: true, every: 10 * time.Millisecond, stateDir: unusable,
			wantErr: "not usable"},
		{name: "fsync without state-dir", set: set("supervise", "checkpoint-every", "fsync"),
			supervise: true, every: 10 * time.Millisecond, fsync: "group",
			wantErr: "needs -state-dir"},
		{name: "bad fsync value", set: set("supervise", "checkpoint-every", "state-dir", "fsync"),
			supervise: true, every: 10 * time.Millisecond,
			stateDir: filepath.Join(writable, "state5"), fsync: "sometimes",
			wantErr: "fsync mode"},
		{name: "target conflicts with state-dir", set: set("target", "state-dir"),
			stateDir: filepath.Join(writable, "state6"), wantErr: "conflicts with -state-dir"},
		{name: "target conflicts with fsync", set: set("target", "fsync"),
			fsync: "group", wantErr: "conflicts with -fsync"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.set, tc.supervise, tc.every, tc.sample, tc.stateDir, tc.fsync)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}
