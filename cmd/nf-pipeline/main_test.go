package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	set := func(names ...string) map[string]bool {
		m := make(map[string]bool)
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	cases := []struct {
		name      string
		set       map[string]bool
		supervise bool
		every     time.Duration
		sample    int
		wantErr   string // empty = valid
	}{
		{name: "defaults", set: set()},
		{name: "pktgen", set: set("target", "pps", "count")},
		{name: "listen+egress", set: set("listen", "egress")},
		{name: "supervised checkpointing", set: set("supervise", "checkpoint-every"),
			supervise: true, every: 10 * time.Millisecond},
		{name: "target conflicts with listen", set: set("target", "listen"),
			wantErr: "-target (pktgen mode) conflicts with -listen"},
		{name: "target conflicts with supervise", set: set("target", "supervise"),
			supervise: true, wantErr: "conflicts with -supervise"},
		{name: "egress without listen", set: set("egress"),
			wantErr: "needs -listen"},
		{name: "negative epoch", set: set("supervise", "checkpoint-every"),
			supervise: true, every: -time.Second, wantErr: "must be >= 0"},
		{name: "checkpoint without supervise", set: set("checkpoint-every"),
			every: 10 * time.Millisecond, wantErr: "needs -supervise"},
		// -supervise=false -checkpoint-every 10ms: the flag was passed but
		// the value is off — still invalid (the check is on the value).
		{name: "checkpoint with supervise=false", set: set("supervise", "checkpoint-every"),
			supervise: false, every: 10 * time.Millisecond, wantErr: "needs -supervise"},
		{name: "pps without target", set: set("pps"), wantErr: "need -target"},
		{name: "listen+reuseport", set: set("listen", "reuseport")},
		{name: "pktgen with sockets", set: set("target", "sockets", "pps")},
		{name: "target conflicts with reuseport", set: set("target", "reuseport"),
			wantErr: "conflicts with -reuseport"},
		{name: "reuseport without listen", set: set("reuseport"),
			wantErr: "needs -listen"},
		{name: "sockets without target", set: set("sockets"),
			wantErr: "needs -target"},
		{name: "trace-sample with listen", set: set("listen", "trace-sample"), sample: 1024},
		{name: "trace-sample of one", set: set("listen", "trace-sample"), sample: 1},
		{name: "trace-sample without listen", set: set("trace-sample"), sample: 1024,
			wantErr: "needs -listen"},
		{name: "trace-sample conflicts with target", set: set("target", "trace-sample"),
			sample: 1024, wantErr: "conflicts with -trace-sample"},
		{name: "trace-sample zero", set: set("listen", "trace-sample"), sample: 0,
			wantErr: "must be >= 1"},
		{name: "trace-sample negative", set: set("listen", "trace-sample"), sample: -8,
			wantErr: "must be >= 1"},
		{name: "trace-sample not a power of two", set: set("listen", "trace-sample"), sample: 1000,
			wantErr: "power of two"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.set, tc.supervise, tc.every, tc.sample)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}
