// Command benchjson converts `go test -bench` output into a
// machine-readable JSON file (benchmark name → metric → value), so the
// perf trajectory of the pipeline benches can be tracked across PRs by
// diffing BENCH_pipeline.json instead of eyeballing tables.
//
// It reads the benchmark output on stdin, echoes it unchanged (keeping
// the human-readable table in the terminal and in CI logs), and writes
// the parsed results to the -o file:
//
//	go test -run='^$' -bench=Sharded -benchmem . | benchjson -o BENCH_pipeline.json
//
// Every value/unit pair go test prints is captured — ns/op, B/op,
// allocs/op, and custom b.ReportMetric units such as pkts/s.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// gomaxprocsSuffix is the "-8" style suffix go test appends to benchmark
// names; stripping it keeps names stable across machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "BENCH_pipeline.json", "output JSON file")
	flag.StringVar(out, "out", "BENCH_pipeline.json", "output JSON file (alias for -o)")
	flag.Parse()

	results := map[string]map[string]float64{}
	pass := false
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if line == "PASS" || strings.HasPrefix(line, "ok ") {
			pass = true
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		// Name, iteration count, then value/unit pairs.
		if len(f) < 4 {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(f[0], "")
		metrics := results[name]
		if metrics == nil {
			metrics = map[string]float64{}
			results[name] = metrics
		}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			metrics[f[i+1]] = v
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark lines on stdin")
	}
	if !pass {
		log.Fatal("benchmark run did not report PASS; not writing ", *out)
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d benchmarks to %s", len(results), *out)
}
