// Command ifc-check verifies minirust programs with the §4 pipeline
// (parse → type check → borrow check → information-flow analysis) and,
// optionally, executes them under the dynamic leak monitor.
//
// Usage:
//
//	ifc-check file.mrs            # verify a program from disk
//	ifc-check -paper              # verify the paper's §4 listing (clean)
//	ifc-check -paper -line16      # … with the direct leak of line 16
//	ifc-check -paper -line17      # … with the aliasing exploit of line 17
//	ifc-check -store correct      # the §4 secure-store case study
//	ifc-check -store bug-swapped-check
//	ifc-check -run file.mrs       # also execute under the monitor
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/minirust"
	"repro/internal/securestore"
	"repro/internal/verifier"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ifc-check: ")
	var (
		paper  = flag.Bool("paper", false, "use the paper's §4 Buffer listing")
		line16 = flag.Bool("line16", false, "include the direct leak (with -paper)")
		line17 = flag.Bool("line17", false, "include the aliasing exploit (with -paper)")
		store  = flag.String("store", "", "secure-store variant: correct, bug-swapped-check, bug-missing-check, bug-leaky-read")
		run    = flag.Bool("run", false, "execute the program under the dynamic leak monitor")
	)
	flag.Parse()

	src, name, err := selectSource(*paper, *line16, *line17, *store, flag.Args())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== verifying %s ==\n", name)
	rep := verifier.Verify(src)
	rep.Render(os.Stdout)

	if *run {
		res, err := verifier.Execute(rep)
		if err != nil {
			log.Fatalf("cannot execute: %v", err)
		}
		fmt.Println("== dynamic run (leak monitor armed) ==")
		if res.Output != "" {
			fmt.Print(res.Output)
		}
		switch e := res.Err.(type) {
		case nil:
			fmt.Println("run completed with no dynamic leak")
		case *minirust.LeakError:
			fmt.Printf("dynamic leak confirmed: %v\n", e)
		default:
			fmt.Printf("runtime error: %v\n", e)
		}
	}

	if !rep.OK() {
		os.Exit(1)
	}
}

func selectSource(paper, line16, line17 bool, store string, args []string) (src, name string, err error) {
	switch {
	case paper:
		return minirust.PaperBufferProgram(line16, line17),
			fmt.Sprintf("paper listing (line16=%t line17=%t)", line16, line17), nil
	case store != "":
		for _, v := range securestore.Variants {
			if v.String() == store {
				return securestore.Source(v), "secure store: " + store, nil
			}
		}
		return "", "", fmt.Errorf("unknown store variant %q", store)
	case len(args) == 1:
		b, err := os.ReadFile(args[0])
		if err != nil {
			return "", "", err
		}
		return string(b), args[0], nil
	default:
		return "", "", fmt.Errorf("usage: ifc-check [-paper [-line16] [-line17] | -store VARIANT | FILE] [-run]")
	}
}
