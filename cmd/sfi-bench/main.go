// Command sfi-bench regenerates the paper's §3 evaluation: Figure 2
// (remote-invocation overhead vs. batch size, plotted against the Maglev
// load balancer's per-batch cost), the pipeline-length-independence
// check, and the fault-recovery cost.
//
// Usage:
//
//	sfi-bench                  # Figure 2 at the paper's parameters
//	sfi-bench -lengths         # overhead vs. pipeline length
//	sfi-bench -recovery        # recovery cost (paper: 4389 cycles)
//	sfi-bench -iters 5000      # more measurement iterations
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sfi-bench: ")
	var (
		batches  = flag.String("batches", "1,2,4,8,16,32,64,128,256", "comma-separated batch sizes")
		length   = flag.Int("length", experiments.PaperPipelineLength, "pipeline length (null filters)")
		iters    = flag.Int("iters", 2000, "measurement iterations per point")
		lengths  = flag.Bool("lengths", false, "measure overhead across pipeline lengths instead")
		recovery = flag.Bool("recovery", false, "measure fault recovery cost instead")
	)
	flag.Parse()

	switch {
	case *recovery:
		res, err := experiments.Recovery(*iters)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Recovery cost: catch panic + clear reference table + re-create domain\n")
		fmt.Printf("  %d iterations, mean %.0f cycles, min %.0f cycles (paper: 4389 cycles)\n",
			res.Iterations, res.Cycles, res.Min)

	case *lengths:
		rows, err := experiments.PipelineLengths([]int{1, 2, 5, 10}, 32, *iters)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintLengths(os.Stdout, rows)
		fmt.Println("(paper: overhead is independent of pipeline length)")

	default:
		sizes, err := parseInts(*batches)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := experiments.Figure2(sizes, *length, *iters)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintFigure2(os.Stdout, rows)
		fmt.Println("(paper: 90 cycles at 1 pkt/batch -> 122 at 256; <1% of Maglev above 32 pkts/batch)")
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad batch size %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}
