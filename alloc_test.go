// Steady-state allocation budget for the full NF pipeline: the unit-test
// counterpart of the make-check alloc gate on the pipeline benches. The
// per-packet path (RX burst → parse → firewall → maglev → session → TX)
// must stay allocation-free once flows, pools, and scratch are warm;
// cold starts, first-sight flows, eviction batches, and checkpoint
// epochs are the only sanctioned allocators (see DESIGN.md "Memory
// discipline").
package repro

import (
	"testing"

	"repro/internal/dpdk"
	"repro/internal/firewall"
	"repro/internal/linear"
	"repro/internal/maglev"
	"repro/internal/netbricks"
	"repro/internal/packet"
	"repro/internal/session"
)

// allocBudgetPerPacket is the explicit steady-state budget. The path is
// designed to be exactly zero; the headroom only absorbs incidental
// runtime noise (a map rehash, a sync.Mutex inflation) so the test pins
// the floor without flaking.
const allocBudgetPerPacket = 0.05

func TestPipelineSteadyStateAllocBudget(t *testing.T) {
	const batchSize = 32
	port := dpdk.NewPort(dpdk.Config{
		PoolSize: 512,
		QueueGen: dpdk.NewRSSPartition(dpdk.DefaultSpec(), 64, 1),
	})
	db := firewall.NewDB(firewall.Deny)
	if _, err := db.AddRule(packet.Addr(10, 99, 0, 0), 16, firewall.Rule{ID: 1, Action: firewall.Allow}); err != nil {
		t.Fatal(err)
	}
	lb, err := maglev.NewBalancer([]maglev.Backend{
		{Name: "be-0", IP: packet.Addr(10, 1, 0, 1)},
		{Name: "be-1", IP: packet.Addr(10, 1, 0, 2)},
	}, maglev.DefaultTableSize)
	if err != nil {
		t.Fatal(err)
	}
	tbl := session.NewTable()
	pipe := netbricks.NewPipeline(
		netbricks.Parse{},
		firewall.Operator{DB: db},
		maglev.Operator{LB: lb},
		session.Operator{T: tbl},
	)

	// One reusable batch and one reusable linear cell, the way the
	// runners drive the pipeline at steady state.
	batch := &netbricks.Batch{}
	var cell linear.Owned[*netbricks.Batch]
	haveCell := false
	buf := make([]*packet.Packet, batchSize)
	invoke := func() {
		got := port.RxBurstQueue(0, buf)
		if got == 0 {
			t.Fatal("port produced no packets")
		}
		batch.Pkts = append(batch.Pkts[:0], buf[:got]...)
		batch.Dropped = batch.Dropped[:0]
		var owned linear.Owned[*netbricks.Batch]
		if haveCell {
			owned = cell.MustRenew(batch)
		} else {
			owned = linear.New(batch)
		}
		out, err := pipe.Process(owned)
		if err != nil {
			t.Fatalf("pipeline: %v", err)
		}
		final := out.MustInto()
		port.TxBurstQueue(0, final.Pkts)
		port.FreeQueue(0, final.Dropped)
		final.Pkts = final.Pkts[:0]
		final.Dropped = final.Dropped[:0]
		batch = final
		cell = out
		haveCell = true
	}

	for i := 0; i < 100; i++ { // warm every flow, map, pool, and scratch
		invoke()
	}
	perBatch := testing.AllocsPerRun(200, invoke)
	perPacket := perBatch / batchSize
	if perPacket > allocBudgetPerPacket {
		t.Fatalf("steady-state pipeline allocates %.4f objects/packet (%.1f/batch), budget %.2f",
			perPacket, perBatch, allocBudgetPerPacket)
	}
}
