package repro

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun executes every example binary end to end, asserting a
// zero exit and a recognizable line of output — the examples are living
// documentation, so they must keep working. Skipped in -short mode
// (each invocation compiles and runs a program).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take seconds each")
	}
	cases := map[string]string{
		"quickstart":          "ErrRevoked",
		"isolated-maglev":     "faults contained: 1",
		"secure-store":        "bug-leaky-read",
		"firewall-checkpoint": "sharing PRESERVED",
		"rollback-middlebox":  "rollback-restores",
		"verified-extension":  "rejected at information flow",
	}
	for name, want := range cases {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctxPath := filepath.Join("examples", name)
			cmd := exec.Command("go", "run", "./"+ctxPath)
			cmd.Dir = "."
			done := make(chan struct{})
			var out []byte
			var err error
			go func() {
				out, err = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(2 * time.Minute):
				_ = cmd.Process.Kill()
				t.Fatalf("example %s timed out", name)
			}
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if !strings.Contains(string(out), want) {
				t.Fatalf("example %s output missing %q:\n%s", name, want, out)
			}
		})
	}
}
