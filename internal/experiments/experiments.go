// Package experiments implements the measurement harnesses that
// regenerate every quantitative result in the paper's evaluation:
// Figure 2 (remote-invocation overhead vs. batch size, against Maglev),
// the §3 scalars (pipeline-length independence, recovery cost), Figure 3
// (checkpoint copy counts), and the ablations DESIGN.md calls out. The
// cmd/ binaries and the root bench_test.go are thin wrappers over this
// package so that the printed tables and the testing.B benchmarks share
// one implementation.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/checkpoint"
	"repro/internal/cycles"
	"repro/internal/dpdk"
	"repro/internal/firewall"
	"repro/internal/linear"
	"repro/internal/maglev"
	"repro/internal/netbricks"
	"repro/internal/packet"
	"repro/internal/sfi"
)

// PaperBatchSizes are the batch sizes on Figure 2's x-axis.
var PaperBatchSizes = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

// PaperPipelineLength is the pipeline length Figure 2 is reported for.
const PaperPipelineLength = 5

// Figure2Row is one point of Figure 2.
type Figure2Row struct {
	BatchSize       int
	DirectCycles    float64 // cycles per batch, plain function calls
	IsolatedCycles  float64 // cycles per batch, remote invocations
	OverheadPerCall float64 // (isolated - direct) / pipeline length
	MaglevCycles    float64 // cycles per batch of the Maglev NF
	OverheadPct     float64 // overhead as % of Maglev per-batch cost
}

// nullOps builds n null-filter stages.
func nullOps(n int) []netbricks.Operator {
	ops := make([]netbricks.Operator, n)
	for i := range ops {
		ops[i] = netbricks.NullFilter{}
	}
	return ops
}

// fetchBatch pulls one batch of the given size from a fresh port.
func fetchBatch(size int) *netbricks.Batch {
	port := dpdk.NewPort(dpdk.Config{PoolSize: size + 64})
	pkts := make([]*packet.Packet, size)
	n := port.RxBurst(pkts)
	return &netbricks.Batch{Pkts: pkts[:n]}
}

// measurementRounds is the min-of-k repetition count for every timing.
const measurementRounds = 5

// measureDirect measures cycles/batch through a direct pipeline.
func measureDirect(pl *netbricks.Pipeline, batch *netbricks.Batch, iters int) float64 {
	return cycles.MeasureMin(measurementRounds, iters, func() {
		owned := linear.New(batch)
		out, err := pl.Process(owned)
		if err != nil {
			panic(err)
		}
		if _, err := out.Into(); err != nil {
			panic(err)
		}
	})
}

// measureIsolated measures cycles/batch through an isolated pipeline.
func measureIsolated(ip *netbricks.IsolatedPipeline, ctx *sfi.Context, batch *netbricks.Batch, iters int) float64 {
	return cycles.MeasureMin(measurementRounds, iters, func() {
		owned := linear.New(batch)
		out, err := ip.Process(ctx, owned)
		if err != nil {
			panic(err)
		}
		if _, err := out.Into(); err != nil {
			panic(err)
		}
	})
}

// Figure2 regenerates the paper's Figure 2: a pipeline of null filters of
// the given length, measured with plain calls and with per-stage
// protection domains, across batch sizes; the per-invocation overhead is
// plotted against the per-batch cost of the Maglev NF.
func Figure2(batchSizes []int, pipelineLen, iters int) ([]Figure2Row, error) {
	if iters <= 0 {
		iters = 2000
	}
	rows := make([]Figure2Row, 0, len(batchSizes))
	for _, bs := range batchSizes {
		direct := netbricks.NewPipeline(nullOps(pipelineLen)...)
		mgr := sfi.NewManager()
		iso, err := netbricks.NewIsolatedPipeline(mgr, nullOps(pipelineLen), nil)
		if err != nil {
			return nil, err
		}
		batch := fetchBatch(bs)
		d := measureDirect(direct, batch, iters)
		i := measureIsolated(iso, sfi.NewContext(), batch, iters)

		m, err := maglevBatchCost(bs, iters)
		if err != nil {
			return nil, err
		}
		over := (i - d) / float64(pipelineLen)
		if over < 0 {
			over = 0
		}
		rows = append(rows, Figure2Row{
			BatchSize:       bs,
			DirectCycles:    d,
			IsolatedCycles:  i,
			OverheadPerCall: over,
			MaglevCycles:    m,
			OverheadPct:     over / m * 100,
		})
	}
	return rows, nil
}

// maglevBatchCost measures the per-batch processing cost of the Maglev
// load balancer at the given batch size — the "realistic, but
// light-weight, network function" reference line in Figure 2.
func maglevBatchCost(batchSize, iters int) (float64, error) {
	backends := make([]maglev.Backend, 16)
	for i := range backends {
		backends[i] = maglev.Backend{Name: fmt.Sprintf("be-%d", i), IP: packet.Addr(10, 1, 0, byte(i+1))}
	}
	lb, err := maglev.NewBalancer(backends, maglev.DefaultTableSize)
	if err != nil {
		return 0, err
	}
	port := dpdk.NewPort(dpdk.Config{
		PoolSize: batchSize + 64,
		Gen:      &dpdk.UniformFlows{Base: dpdk.DefaultSpec(), Flows: 1024},
	})
	pkts := make([]*packet.Packet, batchSize)
	n := port.RxBurst(pkts)
	batch := &netbricks.Batch{Pkts: pkts[:n]}
	op := maglev.Operator{LB: lb}
	return cycles.MeasureMin(measurementRounds, iters, func() {
		if err := op.ProcessBatch(batch); err != nil {
			panic(err)
		}
	}), nil
}

// LengthRow is one pipeline-length measurement (the §3 claim that
// per-invocation overhead is independent of pipeline length).
type LengthRow struct {
	PipelineLen     int
	OverheadPerCall float64
}

// PipelineLengths measures per-invocation overhead across pipeline
// lengths at a fixed batch size.
func PipelineLengths(lengths []int, batchSize, iters int) ([]LengthRow, error) {
	if iters <= 0 {
		iters = 2000
	}
	rows := make([]LengthRow, 0, len(lengths))
	for _, n := range lengths {
		direct := netbricks.NewPipeline(nullOps(n)...)
		mgr := sfi.NewManager()
		iso, err := netbricks.NewIsolatedPipeline(mgr, nullOps(n), nil)
		if err != nil {
			return nil, err
		}
		batch := fetchBatch(batchSize)
		d := measureDirect(direct, batch, iters)
		i := measureIsolated(iso, sfi.NewContext(), batch, iters)
		over := (i - d) / float64(n)
		if over < 0 {
			over = 0
		}
		rows = append(rows, LengthRow{PipelineLen: n, OverheadPerCall: over})
	}
	return rows, nil
}

// RecoveryResult reports the §3 recovery experiment: the cycles from the
// panic in the null filter to a fully re-initialized domain.
type RecoveryResult struct {
	Cycles     float64 // mean
	Min        float64 // low-noise estimate
	Iterations int
}

// Recovery measures the cost of catching a panic, cleaning up the failed
// domain, and recreating it from clean state (paper: 4389 cycles).
func Recovery(iters int) (RecoveryResult, error) {
	if iters <= 0 {
		iters = 500
	}
	mgr := sfi.NewManager()
	d := mgr.NewDomain("null-filter")
	rref, err := sfi.Export[netbricks.Operator](d, netbricks.NullFilter{})
	if err != nil {
		return RecoveryResult{}, err
	}
	slot := rref.Slot()
	d.SetRecovery(func(d *sfi.Domain) error {
		return sfi.ExportAt[netbricks.Operator](d, slot, netbricks.NullFilter{})
	})
	ctx := sfi.NewContext()
	var sample cycles.Sample
	for i := 0; i < iters; i++ {
		c := cycles.Start()
		err := rref.Call(ctx, "process", func(netbricks.Operator) error {
			panic("injected fault")
		})
		if err == nil {
			return RecoveryResult{}, fmt.Errorf("injected panic not caught")
		}
		if rerr := mgr.Recover(d); rerr != nil {
			return RecoveryResult{}, rerr
		}
		sample.Add(c.Elapsed())
		// Confirm the domain is usable again (outside the timed region).
		if err := rref.Call(ctx, "process", func(netbricks.Operator) error { return nil }); err != nil {
			return RecoveryResult{}, fmt.Errorf("domain unusable after recovery: %w", err)
		}
	}
	return RecoveryResult{Cycles: sample.Mean(), Min: sample.Min(), Iterations: sample.N()}, nil
}

// Figure3Row is one mode of the checkpoint experiment.
type Figure3Row struct {
	Mode          checkpoint.Mode
	Rules         int // distinct rules in the database
	Handles       int // total rule handles (aliases included)
	CopiesMade    int // rule objects copied by the checkpoint
	SetProbes     int // visited-set lookups (VisitedSet mode)
	Cycles        float64
	SharingIntact bool // restored DB has the same distinct/handle counts
}

// BuildFirewallDB constructs a rule database with the given number of
// distinct rules, each attached under shareFactor prefixes (shareFactor
// > 1 recreates Figure 3a's multiple-leaves-per-rule sharing).
func BuildFirewallDB(rules, shareFactor int) (*firewall.DB, error) {
	db := firewall.NewDB(firewall.Deny)
	for r := 0; r < rules; r++ {
		base := packet.Addr(10, byte(r/256), byte(r%256), 0)
		h, err := db.AddRule(base, 24, firewall.Rule{ID: r, Action: firewall.Allow, Comment: fmt.Sprintf("rule %d", r)})
		if err != nil {
			return nil, err
		}
		for s := 1; s < shareFactor; s++ {
			alias := packet.Addr(172, byte((r*7+s)/256%256), byte((r*7+s)%256), 0)
			if err := db.AttachRule(alias, 24, h); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// Figure3 checkpoints the firewall database under each engine mode and
// reports copy counts and costs, reproducing Figure 3's comparison of
// naive duplication vs. alias-aware sharing (plus the visited-set
// ablation).
func Figure3(rules, shareFactor, iters int) ([]Figure3Row, error) {
	if iters <= 0 {
		iters = 50
	}
	rows := make([]Figure3Row, 0, 3)
	for _, mode := range []checkpoint.Mode{checkpoint.RcAware, checkpoint.Naive, checkpoint.VisitedSet} {
		db, err := BuildFirewallDB(rules, shareFactor)
		if err != nil {
			return nil, err
		}
		distinct, handles := db.RuleCount()
		eng := checkpoint.NewEngine(mode)
		var snap *checkpoint.Snapshot
		cost := cycles.MeasureMin(3, iters, func() {
			s, err := db.Checkpoint(eng)
			if err != nil {
				panic(err)
			}
			snap = s
		})
		restored, err := firewall.RestoreDB(snap)
		if err != nil {
			return nil, err
		}
		rd, rh := restored.RuleCount()
		intact := rd == distinct && rh == handles
		if mode == checkpoint.Naive {
			intact = rd == handles && rh == handles // duplication expected
		}
		rows = append(rows, Figure3Row{
			Mode:          mode,
			Rules:         distinct,
			Handles:       handles,
			CopiesMade:    snap.Stats().RcFirst,
			SetProbes:     snap.Stats().SetProbes,
			Cycles:        cost,
			SharingIntact: intact,
		})
	}
	return rows, nil
}

// PrintFigure2 renders the Figure 2 table.
func PrintFigure2(w io.Writer, rows []Figure2Row) {
	fmt.Fprintf(w, "Figure 2: remote-invocation overhead vs. Maglev batch cost (%.2f GHz clock)\n", cycles.Frequency())
	fmt.Fprintf(w, "%10s %14s %14s %12s %12s %10s\n",
		"pkts/batch", "direct cyc", "isolated cyc", "ovh/call", "maglev cyc", "ovh %")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d %14.0f %14.0f %12.0f %12.0f %9.2f%%\n",
			r.BatchSize, r.DirectCycles, r.IsolatedCycles, r.OverheadPerCall, r.MaglevCycles, r.OverheadPct)
	}
}

// PrintLengths renders the pipeline-length table.
func PrintLengths(w io.Writer, rows []LengthRow) {
	fmt.Fprintln(w, "Pipeline-length independence of per-invocation overhead")
	fmt.Fprintf(w, "%8s %12s\n", "stages", "ovh/call")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %12.0f\n", r.PipelineLen, r.OverheadPerCall)
	}
}

// PrintFigure3 renders the checkpoint table.
func PrintFigure3(w io.Writer, rows []Figure3Row) {
	fmt.Fprintln(w, "Figure 3: checkpointing a shared-rule firewall database")
	fmt.Fprintf(w, "%12s %8s %8s %8s %10s %12s %8s\n",
		"mode", "rules", "handles", "copies", "probes", "cycles", "sharing")
	for _, r := range rows {
		status := "lost"
		if r.SharingIntact {
			status = "ok"
		}
		if r.Mode == checkpoint.Naive {
			status = "duplicated"
		}
		fmt.Fprintf(w, "%12s %8d %8d %8d %10d %12.0f %8s\n",
			r.Mode, r.Rules, r.Handles, r.CopiesMade, r.SetProbes, r.Cycles, status)
	}
}
