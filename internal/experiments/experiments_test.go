package experiments

import (
	"strings"
	"testing"

	"repro/internal/checkpoint"
)

// Small iteration counts: these tests validate structure and invariants,
// not precision; the real numbers come from the bench harness.
const testIters = 50

func TestFigure2RowsWellFormed(t *testing.T) {
	rows, err := Figure2([]int{1, 8, 64}, 5, testIters)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.DirectCycles <= 0 || r.IsolatedCycles <= 0 || r.MaglevCycles <= 0 {
			t.Fatalf("non-positive measurement: %+v", r)
		}
		if r.IsolatedCycles < r.DirectCycles {
			t.Logf("note: isolated < direct at batch %d (noise at low iters)", r.BatchSize)
		}
		if r.OverheadPerCall < 0 {
			t.Fatalf("negative overhead: %+v", r)
		}
	}
	// The key Figure 2 shape: overhead relative to Maglev falls as the
	// batch grows, because Maglev's per-batch cost scales with packets
	// while the per-invocation overhead does not.
	if rows[0].OverheadPct < rows[len(rows)-1].OverheadPct {
		// Tolerate noise but require monotone trend between extremes.
		t.Fatalf("overhead%% did not fall with batch size: %v vs %v",
			rows[0].OverheadPct, rows[len(rows)-1].OverheadPct)
	}
	// Maglev per-batch cost must grow with batch size.
	if rows[len(rows)-1].MaglevCycles <= rows[0].MaglevCycles {
		t.Fatalf("maglev cost did not grow with batch: %v vs %v",
			rows[0].MaglevCycles, rows[len(rows)-1].MaglevCycles)
	}
}

func TestPipelineLengthsWellFormed(t *testing.T) {
	rows, err := PipelineLengths([]int{1, 5}, 16, testIters)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.OverheadPerCall < 0 {
			t.Fatalf("negative overhead: %+v", r)
		}
	}
}

func TestRecoveryMeasurement(t *testing.T) {
	res, err := Recovery(30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 30 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	if res.Cycles <= 0 {
		t.Fatalf("cycles = %v", res.Cycles)
	}
	// Shape: recovery costs at least hundreds of cycles (it allocates a
	// table, runs the recovery fn, etc.).
	if res.Cycles < 100 {
		t.Fatalf("implausibly cheap recovery: %v cycles", res.Cycles)
	}
}

func TestBuildFirewallDBSharing(t *testing.T) {
	db, err := BuildFirewallDB(50, 4)
	if err != nil {
		t.Fatal(err)
	}
	distinct, handles := db.RuleCount()
	if distinct != 50 {
		t.Fatalf("distinct = %d", distinct)
	}
	if handles != 200 {
		t.Fatalf("handles = %d, want rules*share", handles)
	}
}

func TestFigure3CopyCounts(t *testing.T) {
	const rules, share = 40, 3
	rows, err := Figure3(rules, share, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byMode := map[checkpoint.Mode]Figure3Row{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	// The Figure 3 statement, exactly:
	if got := byMode[checkpoint.RcAware].CopiesMade; got != rules {
		t.Fatalf("rc-aware copies = %d, want %d (one per distinct rule)", got, rules)
	}
	if got := byMode[checkpoint.Naive].CopiesMade; got != rules*share {
		t.Fatalf("naive copies = %d, want %d (one per handle: duplication)", got, rules*share)
	}
	if got := byMode[checkpoint.VisitedSet].CopiesMade; got != rules {
		t.Fatalf("visited-set copies = %d, want %d", got, rules)
	}
	if byMode[checkpoint.VisitedSet].SetProbes == 0 {
		t.Fatal("visited-set probes = 0; the ablation cost is missing")
	}
	if byMode[checkpoint.RcAware].SetProbes != 0 {
		t.Fatal("rc-aware should not probe any table")
	}
	for _, r := range rows {
		if !r.SharingIntact {
			t.Fatalf("mode %s: restored structure check failed", r.Mode)
		}
	}
}

func TestPrinters(t *testing.T) {
	var sb strings.Builder
	f2, err := Figure2([]int{1}, 2, testIters)
	if err != nil {
		t.Fatal(err)
	}
	PrintFigure2(&sb, f2)
	if !strings.Contains(sb.String(), "Figure 2") || !strings.Contains(sb.String(), "pkts/batch") {
		t.Fatalf("figure2 output = %q", sb.String())
	}
	sb.Reset()
	pl, err := PipelineLengths([]int{1}, 4, testIters)
	if err != nil {
		t.Fatal(err)
	}
	PrintLengths(&sb, pl)
	if !strings.Contains(sb.String(), "stages") {
		t.Fatalf("lengths output = %q", sb.String())
	}
	sb.Reset()
	f3, err := Figure3(10, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	PrintFigure3(&sb, f3)
	out := sb.String()
	if !strings.Contains(out, "rc-aware") || !strings.Contains(out, "duplicated") {
		t.Fatalf("figure3 output = %q", out)
	}
}
