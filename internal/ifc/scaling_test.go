package ifc

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/minirust"
)

// callTreeProgram builds a binary call tree of depth n: f0 calls f1
// twice, f1 calls f2 twice, …, so a non-compositional analysis visits
// 2^n bodies while the summarized one visits n+1.
func callTreeProgram(depth int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fn f%d(x: i64) -> i64 { return x + 1; }\n", depth)
	for i := depth - 1; i >= 0; i-- {
		fmt.Fprintf(&sb, "fn f%d(x: i64) -> i64 { return f%d(x) + f%d(x); }\n", i, i+1, i+1)
	}
	sb.WriteString("fn main() { println(f0(1)); }\n")
	return sb.String()
}

func checkedTree(t testing.TB, depth int) (*minirust.Checked, *Lattice) {
	t.Helper()
	prog, err := minirust.Parse(callTreeProgram(depth))
	if err != nil {
		t.Fatal(err)
	}
	c, err := minirust.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := minirust.BorrowCheck(c); err != nil {
		t.Fatal(err)
	}
	return c, Default()
}

func TestSummariesCollapseCallTree(t *testing.T) {
	const depth = 10
	c, lat := checkedTree(t, depth)
	with, err := AnalyzeOpts(c, lat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := AnalyzeOpts(c, lat, Options{DisableSummaries: true})
	if err != nil {
		t.Fatal(err)
	}
	// Verdicts agree (both clean).
	if !with.OK() || !without.OK() {
		t.Fatalf("verdicts: with=%v without=%v", with.Violations, without.Violations)
	}
	// With summaries: each fi analyzed once => misses = depth+1 (+main);
	// hits = one per duplicate call site.
	if with.SummaryMisses > depth+2 {
		t.Fatalf("with summaries: %d misses, want <= %d", with.SummaryMisses, depth+2)
	}
	if with.SummaryHits != depth {
		t.Fatalf("with summaries: %d hits, want %d", with.SummaryHits, depth)
	}
	// Without: exponential body visits (2^depth leaf analyses alone).
	if without.SummaryMisses < 1<<depth {
		t.Fatalf("without summaries: %d misses, want >= %d", without.SummaryMisses, 1<<depth)
	}
}

func TestNoSummariesSameVerdictOnPaperPrograms(t *testing.T) {
	// The ablation must not change verdicts, only cost.
	for _, src := range []string{
		minirust.PaperBufferProgram(true, false),
		minirust.PaperBufferProgram(false, false),
	} {
		c, lat := checkSrc(t, src)
		with, err := AnalyzeOpts(c, lat, Options{})
		if err != nil {
			t.Fatal(err)
		}
		without, err := AnalyzeOpts(c, lat, Options{DisableSummaries: true})
		if err != nil {
			t.Fatal(err)
		}
		if with.OK() != without.OK() || len(with.Violations) != len(without.Violations) {
			t.Fatalf("verdicts diverge: with=%v without=%v", with.Violations, without.Violations)
		}
	}
}

// BenchmarkAblationIFCSummaries measures the §4 compositional-reasoning
// payoff on the binary call tree.
func BenchmarkAblationIFCSummaries(b *testing.B) {
	const depth = 12
	c, lat := checkedTree(b, depth)
	b.Run("with-summaries", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := AnalyzeOpts(c, lat, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("without-summaries", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := AnalyzeOpts(c, lat, Options{DisableSummaries: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
