package ifc

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/minirust"
)

// analyzeSrc runs the full front end plus the IFC analysis.
func analyzeSrc(t *testing.T, src string) *Result {
	t.Helper()
	c, lat := checkSrc(t, src)
	res, err := Analyze(c, lat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return res
}

func checkSrc(t *testing.T, src string) (*minirust.Checked, *Lattice) {
	t.Helper()
	prog, err := minirust.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := minirust.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if err := minirust.BorrowCheck(c); err != nil {
		t.Fatalf("borrowck: %v", err)
	}
	lat, err := ForProgram(prog)
	if err != nil {
		t.Fatalf("lattice: %v", err)
	}
	return c, lat
}

func TestPaperLine16DirectLeakDetected(t *testing.T) {
	// The paper's §4 result: "in line 15, the content of the buffer is
	// tainted as secret, which triggers an error in line 16."
	res := analyzeSrc(t, minirust.PaperBufferProgram(true, false))
	if res.OK() {
		t.Fatal("analysis missed the paper's line-16 leak")
	}
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %v", res.Violations)
	}
	v := res.Violations[0]
	if v.Sink != "println" || v.Label != "secret" || v.Bound != "public" {
		t.Fatalf("violation = %+v", v)
	}
	if v.String() == "" {
		t.Fatal("empty violation string")
	}
}

func TestPaperProgramWithoutLeakVerifies(t *testing.T) {
	// Lines 1-15 only (no println of the buffer): clean.
	res := analyzeSrc(t, minirust.PaperBufferProgram(false, false))
	if !res.OK() {
		t.Fatalf("false positive: %v", res.Violations)
	}
}

func TestPublicDataPrintsFine(t *testing.T) {
	res := analyzeSrc(t, `
fn main() {
    #[label(public)]
    let nonsec = vec![1, 2, 3];
    println(nonsec);
}
`)
	if !res.OK() {
		t.Fatalf("false positive: %v", res.Violations)
	}
}

func TestExplicitFlowThroughArithmetic(t *testing.T) {
	res := analyzeSrc(t, `
fn main() {
    #[label(secret)]
    let sec = 7;
    let derived = sec * 2 + 1;
    println(derived);
}
`)
	if res.OK() || res.Violations[0].Label != "secret" {
		t.Fatalf("violations = %v", res.Violations)
	}
}

func TestImplicitFlowViaBranch(t *testing.T) {
	// The auxiliary pc variable: branching on secret taints writes.
	res := analyzeSrc(t, `
fn main() {
    #[label(secret)]
    let sec = 1;
    let mut leak = 0;
    if sec == 1 {
        leak = 1;
    }
    println(leak);
}
`)
	if res.OK() {
		t.Fatal("implicit flow missed")
	}
}

func TestImplicitFlowViaElseBranch(t *testing.T) {
	res := analyzeSrc(t, `
fn main() {
    #[label(secret)]
    let sec = 1;
    let mut leak = 0;
    if sec == 1 { } else {
        leak = 1;
    }
    println(leak);
}
`)
	if res.OK() {
		t.Fatal("else-branch implicit flow missed")
	}
}

func TestImplicitFlowViaLoop(t *testing.T) {
	res := analyzeSrc(t, `
fn main() {
    #[label(secret)]
    let sec = 3;
    let mut i = 0;
    let mut leak = 0;
    while i < sec {
        leak = leak + 1;
        i = i + 1;
    }
    println(leak);
}
`)
	if res.OK() {
		t.Fatal("loop implicit flow missed")
	}
}

func TestPrintlnInsideSecretBranchFlagged(t *testing.T) {
	// Even printing a constant inside a secret branch leaks one bit.
	res := analyzeSrc(t, `
fn main() {
    #[label(secret)]
    let sec = true;
    if sec {
        println(1);
    }
}
`)
	if res.OK() {
		t.Fatal("pc-tainted println missed")
	}
}

func TestBranchWritesDoNotStickAfterJoinWhenPublic(t *testing.T) {
	// Writing public data in a public branch must stay public.
	res := analyzeSrc(t, `
fn main() {
    let c = true;
    let mut x = 0;
    if c {
        x = 1;
    } else {
        x = 2;
    }
    println(x);
}
`)
	if !res.OK() {
		t.Fatalf("false positive: %v", res.Violations)
	}
}

func TestFlowThroughFunctionReturn(t *testing.T) {
	res := analyzeSrc(t, `
fn identity(x: i64) -> i64 { return x; }
fn main() {
    #[label(secret)]
    let sec = 5;
    let y = identity(sec);
    println(y);
}
`)
	if res.OK() {
		t.Fatal("flow through function return missed")
	}
}

func TestFunctionSummariesPolyvariant(t *testing.T) {
	// The same function called with public and secret arguments must be
	// judged separately: public call is fine, secret call leaks.
	res := analyzeSrc(t, `
fn show(x: i64) { println(x); }
fn main() {
    let pub1 = 1;
    #[label(secret)]
    let sec = 2;
    show(pub1);
    show(sec);
}
`)
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %v, want exactly the secret call's", res.Violations)
	}
}

func TestSummaryCacheHits(t *testing.T) {
	res := analyzeSrc(t, `
fn f(x: i64) -> i64 { return x + 1; }
fn main() {
    let a = f(1);
    let b = f(1);
    let c = f(1);
    println(a, b, c);
}
`)
	if res.SummaryHits < 2 {
		t.Fatalf("SummaryHits = %d, want >= 2 (same abstract input reused)", res.SummaryHits)
	}
}

func TestFlowThroughMutBorrow(t *testing.T) {
	// A callee that writes secret data through &mut must taint the
	// caller's variable.
	res := analyzeSrc(t, `
fn poison(v: &mut Vec<i64>, x: i64) {
    vec_push(v, x);
}
fn main() {
    #[label(secret)]
    let sec = 9;
    let mut v = vec![1];
    poison(&mut v, sec);
    println(v);
}
`)
	if res.OK() {
		t.Fatal("flow through &mut parameter missed")
	}
}

func TestFieldSensitivity(t *testing.T) {
	// Secret in one field must not taint a sibling field.
	res := analyzeSrc(t, `
struct Pair { a: Vec<i64>, b: Vec<i64> }
fn main() {
    #[label(secret)]
    let sec = vec![1];
    #[label(public)]
    let pub1 = vec![2];
    let p = Pair { a: sec, b: pub1 };
    println(p.b);
}
`)
	if !res.OK() {
		t.Fatalf("field-insensitive false positive: %v", res.Violations)
	}
	// But printing the secret field (or the whole struct) is flagged.
	res2 := analyzeSrc(t, `
struct Pair { a: Vec<i64>, b: Vec<i64> }
fn main() {
    #[label(secret)]
    let sec = vec![1];
    #[label(public)]
    let pub1 = vec![2];
    let p = Pair { a: sec, b: pub1 };
    println(p.a);
}
`)
	if res2.OK() {
		t.Fatal("secret field print missed")
	}
}

func TestMethodReceiverTaint(t *testing.T) {
	// The paper's buffer flow through a method: append(&mut self, secret)
	// taints self.data in the caller.
	res := analyzeSrc(t, `
struct B { data: Vec<i64> }
impl B {
    fn add(&mut self, v: Vec<i64>) {
        let n = vec_len(&v);
        let mut i = 0;
        while i < n {
            vec_push(&mut self.data, vec_get(&v, i));
            i = i + 1;
        }
    }
}
fn main() {
    let mut b = B { data: vec![] };
    #[label(secret)]
    let sec = vec![7];
    b.add(sec);
    println(b.data);
}
`)
	if res.OK() {
		t.Fatal("receiver taint through method missed")
	}
}

func TestDeclassifyTrustedLowering(t *testing.T) {
	res := analyzeSrc(t, `
fn main() {
    #[label(secret)]
    let sec = 42;
    let released = declassify(sec, "public");
    println(released);
}
`)
	if !res.OK() {
		t.Fatalf("declassified data still flagged: %v", res.Violations)
	}
}

func TestAssertLabelMax(t *testing.T) {
	res := analyzeSrc(t, `
fn main() {
    #[label(secret)]
    let sec = 1;
    assert_label_max(sec, "secret");
    assert_label_max(sec + 0, "public");
}
`)
	if len(res.Violations) != 1 || res.Violations[0].Sink != "assert_label_max" {
		t.Fatalf("violations = %v", res.Violations)
	}
}

func TestCustomLatticeThreeLevels(t *testing.T) {
	res := analyzeSrc(t, `
labels low < mid < high;
fn main() {
    #[label(mid)]
    let m = 1;
    assert_label_max(m, "mid");
    assert_label_max(m, "high");
    assert_label_max(m, "low");
}
`)
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %v", res.Violations)
	}
	if res.Violations[0].Label != "mid" || res.Violations[0].Bound != "low" {
		t.Fatalf("violation = %+v", res.Violations[0])
	}
}

func TestUnknownAnnotationLabelRejected(t *testing.T) {
	c, lat := checkSrc(t, `
fn main() {
    #[label(mystery)]
    let x = 1;
}
`)
	_, err := Analyze(c, lat)
	var ae *AnalysisError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownDeclassifyLabelRejected(t *testing.T) {
	c, lat := checkSrc(t, `
fn main() {
    let x = declassify(1, "mystery");
}
`)
	if _, err := Analyze(c, lat); err == nil {
		t.Fatal("unknown declassify label accepted")
	}
}

func TestRecursionOnKnownInputResolves(t *testing.T) {
	// A recursive call with a statically known argument fully unrolls
	// (value precision), so this is clean.
	res := analyzeSrc(t, `
fn rec(n: i64) -> i64 {
    if n < 1 { return 0; }
    return rec(n - 1);
}
fn main() {
    println(rec(3));
}
`)
	if !res.OK() {
		t.Fatalf("constant recursion flagged: %v", res.Violations)
	}
}

func TestRecursionSoundFallback(t *testing.T) {
	// Recursion on an unknown input hits the same abstract frame and
	// falls back to Top — conservative, so printing the result is
	// flagged even though the input is public (sound, if imprecise).
	res := analyzeSrc(t, `
fn rec(n: i64) -> i64 {
    if n < 1 { return 0; }
    return rec(n - 1);
}
fn main() {
    #[label(public)]
    let k = 5;
    println(rec(k));
}
`)
	if res.OK() {
		t.Fatal("recursion fallback should be conservative (Top)")
	}
}

func TestViolationOrderingAndTaintSite(t *testing.T) {
	res := analyzeSrc(t, `
fn main() {
    #[label(secret)]
    let s1 = 1;
    println(s1);
    println(s1 + 1);
}
`)
	if len(res.Violations) != 2 {
		t.Fatalf("violations = %v", res.Violations)
	}
	if res.Violations[0].Pos.Line > res.Violations[1].Pos.Line {
		t.Fatal("violations not sorted")
	}
	if res.Violations[0].TaintAt.Line != 4 {
		t.Fatalf("taint site = %v, want the labeled let (line 4)", res.Violations[0].TaintAt)
	}
}

// The soundness metatheorem, tested empirically: if the static analysis
// accepts a program, the dynamic monitor (ground truth) must never fire
// on a concrete run. Exercised over a corpus of tricky programs.
func TestStaticAcceptImpliesDynamicClean(t *testing.T) {
	corpus := []string{
		minirust.PaperBufferProgram(false, false),
		`fn main() {
    #[label(secret)] let s = 1;
    let mut x = 0;
    if true { x = 1; } else { x = 2; }
    println(x);
    assert_label_max(s, "secret");
}`,
		`fn f(a: i64, b: i64) -> i64 { return a + b; }
fn main() {
    #[label(secret)] let s = 1;
    let p = f(2, 3);
    println(p);
    let q = f(s, 1);
    assert_label_max(q, "secret");
}`,
		`struct S { a: Vec<i64>, b: Vec<i64> }
fn main() {
    #[label(secret)] let sec = vec![1];
    let s = S { a: sec, b: vec![2] };
    println(s.b);
}`,
		`fn main() {
    #[label(secret)] let s = 10;
    let d = declassify(s / 2, "public");
    println(d);
}`,
		`fn main() {
    let mut v = vec![];
    let mut i = 0;
    while i < 5 { vec_push(&mut v, i); i = i + 1; }
    println(v, vec_len(&v));
}`,
	}
	for i, src := range corpus {
		c, lat := checkSrc(t, src)
		res, err := Analyze(c, lat)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !res.OK() {
			t.Fatalf("case %d statically rejected: %v", i, res.Violations)
		}
		var out bytes.Buffer
		err = minirust.NewInterp(c, minirust.WithOutput(&out), minirust.WithMonitor(lat.Monitor())).Run()
		var leak *minirust.LeakError
		if errors.As(err, &leak) {
			t.Fatalf("case %d: static accepted but dynamic leaked: %v", i, leak)
		}
		if err != nil {
			t.Fatalf("case %d: runtime error: %v", i, err)
		}
	}
}

// Conversely: every program the dynamic monitor catches, the static
// analysis must also catch (completeness on this corpus — static may be
// stricter, never laxer).
func TestDynamicLeakImpliesStaticReject(t *testing.T) {
	corpus := []string{
		minirust.PaperBufferProgram(true, false),
		`fn main() {
    #[label(secret)] let s = 1;
    println(s);
}`,
		`fn main() {
    #[label(secret)] let s = 1;
    if s == 1 { println(0); }
}`,
		`fn main() {
    #[label(secret)] let s = 1;
    let mut x = 0;
    if s == 1 { x = 1; }
    println(x);
}`,
	}
	for i, src := range corpus {
		c, lat := checkSrc(t, src)
		var out bytes.Buffer
		err := minirust.NewInterp(c, minirust.WithOutput(&out), minirust.WithMonitor(lat.Monitor())).Run()
		var leak *minirust.LeakError
		if !errors.As(err, &leak) {
			t.Fatalf("case %d: dynamic monitor did not fire (fixture broken): %v", i, err)
		}
		res, err2 := Analyze(c, lat)
		if err2 != nil {
			t.Fatalf("case %d: %v", i, err2)
		}
		if res.OK() {
			t.Fatalf("case %d: dynamic leak but static analysis accepted — unsound", i)
		}
	}
}
