package ifc

import (
	"strings"
	"testing"
)

// Exercises the value-precision layer (constant folding) end to end: the
// correct access check with concrete booleans must not be smeared across
// branches, and folded arithmetic must drive branch selection.
func TestConstantFoldingDrivesBranches(t *testing.T) {
	// Known-true composite conditions select exactly one branch, so the
	// secret write in the dead branch never happens.
	res := analyzeSrc(t, `
fn main() {
    #[label(secret)]
    let sec = 1;
    let mut out = 0;
    if 2 + 3 == 5 && !(1 > 2) {
        out = 10;
    } else {
        out = sec; // dead branch
    }
    println(out);
}
`)
	if !res.OK() {
		t.Fatalf("dead secret branch leaked into live analysis: %v", res.Violations)
	}
}

func TestConstantFoldingAllOperators(t *testing.T) {
	// Every folded operator on a known path; the program prints only
	// constants, so it must verify even though a secret exists.
	res := analyzeSrc(t, `
fn main() {
    #[label(secret)]
    let sec = 7;
    let a = 10 - 3;      // 7
    let b = a * 2;       // 14
    let c = b / 7;       // 2
    let d = b % 3;       // 2
    let e = -c;          // -2
    let mut out = 0;
    if a >= 7 { out = out + 1; }
    if a <= 7 { out = out + 1; }
    if c < d || false { out = out + 1; }
    if c != 3 && true { out = out + 1; }
    if e == -2 { out = out + 1; }
    if !(a > 100) { out = out + 1; }
    println(out, a, b, c, d, e);
    assert_label_max(sec, "secret");
}
`)
	if !res.OK() {
		t.Fatalf("constant program flagged: %v", res.Violations)
	}
}

func TestShortCircuitFoldingWithUnknownSide(t *testing.T) {
	// false && unknown folds to false; true || unknown folds to true —
	// the branch on them is fully determined even though one operand is
	// an unknown (labeled) value.
	res := analyzeSrc(t, `
fn main() {
    #[label(secret)]
    let sec = true;
    let mut out = 0;
    if false && sec {
        out = 1; // dead: pc would be secret, but branch is never taken
    }
    if true || sec {
        out = 2; // always taken; pc label still joins the cond's label
    }
    println(out);
}
`)
	// The `true || sec` condition's label joins sec (we evaluated it),
	// so the taken branch runs under secret pc and the write taints out:
	// conservative and sound. Expect a violation.
	if res.OK() {
		t.Fatal("pc of half-known condition should still carry the secret label")
	}
}

func TestNestedFieldWrites(t *testing.T) {
	// Deep lvalue paths through writeLValue, including creating missing
	// intermediate abstract fields.
	res := analyzeSrc(t, `
struct Inner { v: Vec<i64> }
struct Outer { inner: Inner, tag: i64 }
fn main() {
    #[label(secret)]
    let sec = vec![9];
    let mut o = Outer { inner: Inner { v: vec![] }, tag: 0 };
    o.inner.v = sec;
    o.tag = 1;
    println(o.tag);      // public sibling: fine
}
`)
	if !res.OK() {
		t.Fatalf("sibling field tainted: %v", res.Violations)
	}
	res2 := analyzeSrc(t, `
struct Inner { v: Vec<i64> }
struct Outer { inner: Inner, tag: i64 }
fn main() {
    #[label(secret)]
    let sec = vec![9];
    let mut o = Outer { inner: Inner { v: vec![] }, tag: 0 };
    o.inner.v = sec;
    println(o.inner.v);  // the tainted leaf leaks
}
`)
	if res2.OK() {
		t.Fatal("nested tainted field missed")
	}
}

func TestWholeStructFlattening(t *testing.T) {
	// Printing the whole struct observes the join of all fields.
	res := analyzeSrc(t, `
struct Pair { a: i64, b: i64 }
fn main() {
    #[label(secret)]
    let sec = 5;
    let p = Pair { a: 1, b: sec };
    println(p);
}
`)
	if res.OK() {
		t.Fatal("whole-struct print with secret field missed")
	}
}

func TestFieldOfFunctionResult(t *testing.T) {
	// Field access on a non-place expression (call result) goes through
	// the flattening path of evalExpr.
	res := analyzeSrc(t, `
struct Box { v: i64 }
fn make(x: i64) -> Box { return Box { v: x }; }
fn main() {
    #[label(secret)]
    let sec = 3;
    let pub1 = make(1).v;
    println(pub1);
    let leak = make(sec).v;
    println(leak);
}
`)
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %v, want exactly the secret call's", res.Violations)
	}
}

func TestVecBuiltinsPropagateLabels(t *testing.T) {
	res := analyzeSrc(t, `
fn main() {
    #[label(secret)]
    let sec = vec![1, 2];
    let n = vec_len(&sec);   // length is secret too
    println(n);
}
`)
	if res.OK() {
		t.Fatal("vec_len label missed")
	}
	res2 := analyzeSrc(t, `
fn main() {
    #[label(secret)]
    let idx = 1;
    let v = vec![10, 20, 30];
    let x = vec_get(&v, idx); // secret index taints the read
    println(x);
}
`)
	if res2.OK() {
		t.Fatal("secret-index vec_get missed")
	}
}

func TestUnaryOnLabeled(t *testing.T) {
	res := analyzeSrc(t, `
fn main() {
    #[label(secret)]
    let sec = true;
    let flipped = !sec;
    println(flipped);
}
`)
	if res.OK() {
		t.Fatal("negated secret missed")
	}
}

func TestAnalysisErrorRendering(t *testing.T) {
	err := &AnalysisError{Msg: "boom"}
	if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "ifc") {
		t.Fatalf("Error = %q", err.Error())
	}
}
