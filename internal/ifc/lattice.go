// Package ifc implements the paper's §4 contribution: precise static
// information-flow control for a single-ownership language, formulated —
// as the paper formulates it — as verification of an abstract
// interpretation of the program.
//
// Each variable's value is represented in the abstract domain by its
// security label; input variables are initialized from user-provided
// #[label(...)] annotations; arithmetic is abstracted by the upper bound
// (join) of its arguments; and an auxiliary program-counter label tracks
// information flow via branching. Output channels carry label bounds, and
// the analysis proves that no label written to a channel exceeds its
// bound.
//
// The crucial enabler is the ownership discipline enforced by
// internal/minirust's borrow checker: because aliasing is impossible in
// the checked fragment, the abstract state needs no alias analysis — a
// write to a place raises exactly one abstract cell, never an unknown set
// of aliases. This is "the expensive alias analysis step" of Zanioli et
// al. that the paper deletes.
//
// The analysis is compositional in the paper's future-work sense: every
// function is summarized by its effect on the labels of its inputs, and
// summaries are memoized per argument-label tuple, so a function body is
// analyzed once per distinct abstract input, not once per call site.
package ifc

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/minirust"
)

// Errors returned by lattice construction.
var (
	ErrEmptyLattice = errors.New("ifc: lattice needs at least one level")
	ErrDupLevel     = errors.New("ifc: duplicate level")
	ErrUnknownLevel = errors.New("ifc: unknown level")
)

// Lattice is a totally ordered set of confidentiality levels (a chain),
// bottom first. The default instance is public < secret, the lattice of
// the paper's examples; programs may declare richer chains with a
// `labels a < b < c;` directive.
type Lattice struct {
	levels []string
	rank   map[string]int
}

// NewLattice builds a chain lattice from bottom to top.
func NewLattice(levels ...string) (*Lattice, error) {
	if len(levels) == 0 {
		return nil, ErrEmptyLattice
	}
	rank := make(map[string]int, len(levels))
	for i, l := range levels {
		if _, dup := rank[l]; dup {
			return nil, fmt.Errorf("%w: %s", ErrDupLevel, l)
		}
		rank[l] = i
	}
	return &Lattice{levels: append([]string(nil), levels...), rank: rank}, nil
}

// Default returns the paper's two-point lattice public < secret.
func Default() *Lattice {
	l, err := NewLattice("public", "secret")
	if err != nil {
		panic(err)
	}
	return l
}

// ForProgram builds the lattice a program declares, or Default.
func ForProgram(prog *minirust.Program) (*Lattice, error) {
	if len(prog.LabelOrder) == 0 {
		return Default(), nil
	}
	return NewLattice(prog.LabelOrder...)
}

// Bottom returns the least (most public) level.
func (l *Lattice) Bottom() string { return l.levels[0] }

// Top returns the greatest (most secret) level.
func (l *Lattice) Top() string { return l.levels[len(l.levels)-1] }

// Has reports whether the level exists.
func (l *Lattice) Has(level string) bool {
	_, ok := l.rank[level]
	return ok
}

// Levels returns the chain, bottom first.
func (l *Lattice) Levels() []string { return append([]string(nil), l.levels...) }

// Join returns the least upper bound. Unknown levels join to Top
// (fail-secure).
func (l *Lattice) Join(a, b string) string {
	ra, oka := l.rank[a]
	rb, okb := l.rank[b]
	if !oka || !okb {
		return l.Top()
	}
	if ra >= rb {
		return a
	}
	return b
}

// Le reports a ⊑ b. Unknown levels are never ⊑ anything but Top.
func (l *Lattice) Le(a, b string) bool {
	ra, oka := l.rank[a]
	rb, okb := l.rank[b]
	if !oka || !okb {
		return okb && rb == len(l.levels)-1
	}
	return ra <= rb
}

// Monitor adapts the lattice for the minirust dynamic monitor, used by
// tests as the runtime oracle for this static analysis.
func (l *Lattice) Monitor() *minirust.Monitor {
	return &minirust.Monitor{
		Bottom: l.Bottom(),
		Join:   l.Join,
		Le:     l.Le,
	}
}

// String renders the chain.
func (l *Lattice) String() string { return strings.Join(l.levels, " < ") }
