package ifc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/minirust"
)

// Violation is one statically detected information-flow violation: data
// whose label (joined with the program counter) exceeds the bound of the
// channel it reaches.
type Violation struct {
	Pos     minirust.Pos
	Sink    string       // "println" or "assert_label_max"
	Label   string       // effective label of the flowing data
	Bound   string       // the channel/assertion bound
	TaintAt minirust.Pos // where the data acquired its label
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s data (tainted at %s) flows to %s with bound %s",
		v.Pos, v.Label, v.TaintAt, v.Sink, v.Bound)
}

// AnalysisError is a limitation or misuse detected during analysis (e.g.
// an unknown label name).
type AnalysisError struct {
	Pos minirust.Pos
	Msg string
}

func (e *AnalysisError) Error() string { return fmt.Sprintf("%s: ifc: %s", e.Pos, e.Msg) }

// Result is the analysis outcome.
type Result struct {
	Violations []Violation
	// SummaryHits counts function analyses served from the summary cache
	// (the paper's compositional-reasoning payoff).
	SummaryHits   int
	SummaryMisses int
}

// OK reports whether the program is verified leak-free.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// Options tunes the analysis.
type Options struct {
	// DisableSummaries turns off per-(function, argument-label) summary
	// memoization, re-analyzing callee bodies at every call site. This
	// exists to measure the paper's compositional-reasoning claim ("the
	// effect of every function on security labels ... can be summarized
	// by analyzing the code of the function in isolation"): without
	// summaries the analysis cost tracks the number of *call paths*,
	// with them the number of distinct (function, input) pairs.
	DisableSummaries bool
}

// Analyze runs the abstract interpretation over a type- and borrow-checked
// program, starting from main, and returns every violation found.
func Analyze(c *minirust.Checked, lat *Lattice) (*Result, error) {
	return AnalyzeOpts(c, lat, Options{})
}

// AnalyzeOpts is Analyze with explicit options.
func AnalyzeOpts(c *minirust.Checked, lat *Lattice, opts Options) (*Result, error) {
	a := &analyzer{
		checked:     c,
		lat:         lat,
		summaries:   make(map[string]*summary),
		seen:        make(map[string]bool),
		noSummaries: opts.DisableSummaries,
	}
	// Validate label annotations up front.
	for _, name := range c.Prog.Order {
		if err := a.validateLabels(c.Prog.Funcs[name].Body); err != nil {
			return nil, err
		}
	}
	main := c.Prog.Funcs["main"]
	_, err := a.analyzeCall(main, nil, lat.Bottom())
	if err != nil {
		return nil, err
	}
	// Dedupe: without memoization the same static violation is rediscovered
	// once per call path; report each (site, sink) once.
	seen := make(map[string]bool, len(a.violations))
	uniq := a.violations[:0]
	for _, v := range a.violations {
		k := fmt.Sprintf("%s|%s|%s|%s", v.Pos, v.Sink, v.Label, v.Bound)
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, v)
		}
	}
	a.violations = uniq
	sort.Slice(a.violations, func(i, j int) bool {
		if a.violations[i].Pos.Line != a.violations[j].Pos.Line {
			return a.violations[i].Pos.Line < a.violations[j].Pos.Line
		}
		return a.violations[i].Pos.Col < a.violations[j].Pos.Col
	})
	return &Result{Violations: a.violations, SummaryHits: a.hits, SummaryMisses: a.misses}, nil
}

// absVal is the abstract value of a place: its label, where it acquired
// it, per-field abstract values for structs, and — when statically
// determined — the concrete constant it holds. Constant tracking gives
// the analysis the value precision of the paper's model-checking-based
// verifier (SMACK): branching on a known boolean explores only the taken
// branch, so an access check like `if privileged { secret_partition }`
// is judged per concrete call, not smeared across both partitions.
type absVal struct {
	label   string
	taintAt minirust.Pos
	fields  map[string]*absVal // structs only
	kb      *bool              // known boolean constant
	ki      *int64             // known integer constant
}

func knownBool(b bool) *bool  { return &b }
func knownInt(i int64) *int64 { return &i }
func (v *absVal) boolKnown() (bool, bool) {
	if v.kb == nil {
		return false, false
	}
	return *v.kb, true
}

func (a *analyzer) bottomVal(pos minirust.Pos) *absVal {
	return &absVal{label: a.lat.Bottom(), taintAt: pos}
}

func (v *absVal) clone() *absVal {
	out := &absVal{label: v.label, taintAt: v.taintAt, kb: v.kb, ki: v.ki}
	if v.fields != nil {
		out.fields = make(map[string]*absVal, len(v.fields))
		for k, f := range v.fields {
			out.fields[k] = f.clone()
		}
	}
	return out
}

// forgetConsts drops constant knowledge recursively (loop widening).
func (v *absVal) forgetConsts() {
	v.kb, v.ki = nil, nil
	for _, f := range v.fields {
		f.forgetConsts()
	}
}

// raise joins lbl into the value's label, recording the taint site when
// the label strictly increases.
func (v *absVal) raise(lat *Lattice, lbl string, at minirust.Pos) {
	joined := lat.Join(v.label, lbl)
	if joined != v.label {
		v.label = joined
		v.taintAt = at
	}
}

// joinWith merges another abstract value in place. Constants survive the
// join only when both sides agree.
func (v *absVal) joinWith(lat *Lattice, o *absVal) {
	if v.kb == nil || o.kb == nil || *v.kb != *o.kb {
		v.kb = nil
	}
	if v.ki == nil || o.ki == nil || *v.ki != *o.ki {
		v.ki = nil
	}
	v.raise(lat, o.label, o.taintAt)
	if o.fields != nil {
		if v.fields == nil {
			v.fields = make(map[string]*absVal, len(o.fields))
		}
		for k, of := range o.fields {
			if vf, ok := v.fields[k]; ok {
				vf.joinWith(lat, of)
			} else {
				v.fields[k] = of.clone()
			}
		}
	}
}

// flatten returns the join of the value's label and all field labels —
// the label of "the whole value" as observed by a sink.
func (v *absVal) flatten(lat *Lattice) (string, minirust.Pos) {
	lbl, at := v.label, v.taintAt
	for _, f := range v.fields {
		fl, fa := f.flatten(lat)
		j := lat.Join(lbl, fl)
		if j != lbl {
			lbl, at = j, fa
		}
	}
	return lbl, at
}

// equalVal compares abstract values structurally (for fixpoints).
func equalVal(a, b *absVal) bool {
	if a.label != b.label || len(a.fields) != len(b.fields) {
		return false
	}
	if (a.kb == nil) != (b.kb == nil) || (a.kb != nil && *a.kb != *b.kb) {
		return false
	}
	if (a.ki == nil) != (b.ki == nil) || (a.ki != nil && *a.ki != *b.ki) {
		return false
	}
	for k, af := range a.fields {
		bf, ok := b.fields[k]
		if !ok || !equalVal(af, bf) {
			return false
		}
	}
	return true
}

// absState maps variables to abstract values.
type absState map[string]*absVal

func (s absState) clone() absState {
	out := make(absState, len(s))
	for k, v := range s {
		out[k] = v.clone()
	}
	return out
}

// joinStates merges b into a pointwise (variables present in both).
func (a *analyzer) joinStates(x, y absState) absState {
	out := make(absState, len(x))
	for k, xv := range x {
		if yv, ok := y[k]; ok {
			m := xv.clone()
			m.joinWith(a.lat, yv)
			out[k] = m
		}
	}
	return out
}

func equalStates(x, y absState) bool {
	if len(x) != len(y) {
		return false
	}
	for k, xv := range x {
		yv, ok := y[k]
		if !ok || !equalVal(xv, yv) {
			return false
		}
	}
	return true
}

// summary memoizes a function's abstract effect for one tuple of argument
// labels: the result value and the final values of by-reference params.
type summary struct {
	result    *absVal
	outParams map[int]*absVal
}

type analyzer struct {
	checked    *minirust.Checked
	lat        *Lattice
	violations []Violation
	summaries  map[string]*summary
	hits       int
	misses     int
	// seen tracks (function, argument-label) frames on the current call
	// stack for recursion detection.
	seen map[string]bool
	// noSummaries disables memoization (see Options.DisableSummaries).
	noSummaries bool
}

func (a *analyzer) errf(pos minirust.Pos, format string, args ...any) error {
	return &AnalysisError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// validateLabels checks every #[label(...)] names a lattice level.
func (a *analyzer) validateLabels(stmts []minirust.Stmt) error {
	for _, s := range stmts {
		switch v := s.(type) {
		case *minirust.LetStmt:
			if v.Label != "" && !a.lat.Has(v.Label) {
				return a.errf(v.Pos, "unknown label %q (lattice: %s)", v.Label, a.lat)
			}
		case *minirust.IfStmt:
			if err := a.validateLabels(v.Then); err != nil {
				return err
			}
			if err := a.validateLabels(v.Else); err != nil {
				return err
			}
		case *minirust.WhileStmt:
			if err := a.validateLabels(v.Body); err != nil {
				return err
			}
		}
	}
	return nil
}

// summaryKey identifies a (function, argument-labels) analysis instance.
func summaryKey(f *minirust.FuncDef, args []*absVal, pc string) string {
	var sb strings.Builder
	sb.WriteString(f.Name)
	sb.WriteByte('@')
	sb.WriteString(pc)
	for _, av := range args {
		sb.WriteByte('|')
		writeValKey(&sb, av)
	}
	return sb.String()
}

func writeValKey(sb *strings.Builder, v *absVal) {
	sb.WriteString(v.label)
	if v.kb != nil {
		fmt.Fprintf(sb, "#%t", *v.kb)
	}
	if v.ki != nil {
		fmt.Fprintf(sb, "#%d", *v.ki)
	}
	if len(v.fields) > 0 {
		keys := make([]string, 0, len(v.fields))
		for k := range v.fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteByte('{')
		for _, k := range keys {
			sb.WriteString(k)
			sb.WriteByte(':')
			writeValKey(sb, v.fields[k])
			sb.WriteByte(',')
		}
		sb.WriteByte('}')
	}
}

// analyzeCall analyzes f with the given abstract arguments under pc,
// using the summary cache. Returns (result, outParams-by-index).
func (a *analyzer) analyzeCall(f *minirust.FuncDef, args []*absVal, pc string) (*summary, error) {
	key := summaryKey(f, args, pc)
	if !a.noSummaries {
		if s, ok := a.summaries[key]; ok {
			a.hits++
			return s, nil
		}
	}
	if a.seen[key] {
		// Recursive cycle at the same abstract input: fall back to the
		// sound worst case — everything the function touches goes to Top.
		top := &absVal{label: a.lat.Top(), taintAt: f.Pos}
		s := &summary{result: top, outParams: map[int]*absVal{}}
		for i, p := range f.Params {
			if p.Type.IsRef() && p.Type.Mut {
				s.outParams[i] = top.clone()
			}
		}
		return s, nil
	}
	a.seen[key] = true
	defer delete(a.seen, key)
	a.misses++

	fr := &frame{
		fn:     f,
		state:  make(absState, len(f.Params)),
		pc:     []string{pc},
		result: a.bottomVal(f.Pos),
	}
	for i, p := range f.Params {
		var av *absVal
		if args != nil && i < len(args) && args[i] != nil {
			av = args[i].clone()
		} else {
			av = a.bottomVal(f.Pos)
		}
		fr.state[p.Name] = av
	}
	if _, err := a.analyzeBlock(f.Body, fr); err != nil {
		return nil, err
	}
	// Unit functions "return" bottom; value functions joined at returns.
	s := &summary{result: fr.result, outParams: make(map[int]*absVal)}
	for i, p := range f.Params {
		if p.Type.IsRef() && p.Type.Mut {
			s.outParams[i] = fr.state[p.Name].clone()
		}
	}
	if !a.noSummaries {
		a.summaries[key] = s
	}
	return s, nil
}

// frame is the per-function analysis state.
type frame struct {
	fn     *minirust.FuncDef
	state  absState
	pc     []string
	result *absVal
}

func (a *analyzer) pcLabel(fr *frame) string {
	l := a.lat.Bottom()
	for _, p := range fr.pc {
		l = a.lat.Join(l, p)
	}
	return l
}

// analyzeBlock analyzes statements in order, stopping at a statement
// that definitely terminates the block (a return on every path). The
// returned flag reports that definite termination, which both keeps the
// analysis precise and — crucially — bounds the constant-folded analysis
// of recursive functions: without it, statements after `return` would be
// analyzed with impossible values (e.g. rec(n-1) below the base case),
// descending forever.
func (a *analyzer) analyzeBlock(stmts []minirust.Stmt, fr *frame) (bool, error) {
	for _, s := range stmts {
		term, err := a.analyzeStmt(s, fr)
		if err != nil {
			return false, err
		}
		if term {
			return true, nil
		}
	}
	return false, nil
}

func (a *analyzer) analyzeStmt(s minirust.Stmt, fr *frame) (bool, error) {
	switch v := s.(type) {
	case *minirust.LetStmt:
		av, err := a.evalExpr(v.Init, fr)
		if err != nil {
			return false, err
		}
		av = av.clone()
		if v.Label != "" {
			// User-provided source label: the variable *is* this level,
			// and it models an external input — its concrete value is
			// not assumed known.
			av.label = v.Label
			av.taintAt = v.Pos
			av.forgetConsts()
		}
		av.raise(a.lat, a.pcLabel(fr), v.Pos)
		fr.state[v.Name] = av
		return false, nil

	case *minirust.AssignStmt:
		av, err := a.evalExpr(v.Value, fr)
		if err != nil {
			return false, err
		}
		av = av.clone()
		av.raise(a.lat, a.pcLabel(fr), v.Pos)
		return false, a.writeLValue(v.Target, av, fr)

	case *minirust.ExprStmt:
		_, err := a.evalExpr(v.X, fr)
		return false, err

	case *minirust.IfStmt:
		cond, err := a.evalExpr(v.Cond, fr)
		if err != nil {
			return false, err
		}
		condLbl, _ := cond.flatten(a.lat)
		fr.pc = append(fr.pc, condLbl)
		defer func() { fr.pc = fr.pc[:len(fr.pc)-1] }()
		// Value precision: a statically known condition takes only its
		// branch (the model-checking precision of the paper's verifier).
		if taken, known := cond.boolKnown(); known {
			if taken {
				return a.analyzeBlock(v.Then, fr)
			}
			if v.Else != nil {
				return a.analyzeBlock(v.Else, fr)
			}
			return false, nil
		}
		pre := fr.state.clone()
		thenTerm, err := a.analyzeBlock(v.Then, fr)
		if err != nil {
			return false, err
		}
		thenState := fr.state
		fr.state = pre
		elseTerm := false
		if v.Else != nil {
			elseTerm, err = a.analyzeBlock(v.Else, fr)
			if err != nil {
				return false, err
			}
		}
		switch {
		case thenTerm && elseTerm:
			return true, nil
		case thenTerm:
			// Only the else state flows on.
			return false, nil
		case elseTerm:
			fr.state = thenState
			return false, nil
		default:
			fr.state = a.joinStates(thenState, fr.state)
			return false, nil
		}

	case *minirust.WhileStmt:
		// Widen: drop constant knowledge before iterating, otherwise a
		// counting loop's state never stabilizes. Labels then ascend to a
		// fixpoint in the finite lattice.
		for _, av := range fr.state {
			av.forgetConsts()
		}
		// Ascend to a fixpoint: labels only rise in a finite lattice.
		for iter := 0; ; iter++ {
			if iter > 4*len(a.lat.levels)+8 {
				return false, a.errf(v.Pos, "loop fixpoint did not converge (internal error)")
			}
			pre := fr.state.clone()
			cond, err := a.evalExpr(v.Cond, fr)
			if err != nil {
				return false, err
			}
			condLbl, _ := cond.flatten(a.lat)
			fr.pc = append(fr.pc, condLbl)
			if _, err := a.analyzeBlock(v.Body, fr); err != nil {
				return false, err
			}
			fr.pc = fr.pc[:len(fr.pc)-1]
			fr.state = a.joinStates(pre, fr.state)
			if equalStates(pre, fr.state) {
				return false, nil
			}
		}

	case *minirust.ReturnStmt:
		if v.Value != nil {
			av, err := a.evalExpr(v.Value, fr)
			if err != nil {
				return false, err
			}
			merged := av.clone()
			merged.raise(a.lat, a.pcLabel(fr), v.Pos)
			fr.result.joinWith(a.lat, merged)
		} else {
			fr.result.raise(a.lat, a.pcLabel(fr), v.Pos)
		}
		return true, nil
	}
	return false, a.errf(s.Position(), "unhandled statement")
}

// writeLValue stores an abstract value into a variable or field path.
// Thanks to single ownership there is exactly one abstract cell to
// update — no alias set.
func (a *analyzer) writeLValue(lv minirust.LValue, av *absVal, fr *frame) error {
	root, ok := fr.state[lv.Root]
	if !ok {
		return a.errf(lv.Pos, "unknown variable %s", lv.Root)
	}
	if len(lv.Path) == 0 {
		fr.state[lv.Root] = av
		return nil
	}
	cur := root
	for i, field := range lv.Path {
		if cur.fields == nil {
			cur.fields = make(map[string]*absVal)
		}
		if i == len(lv.Path)-1 {
			cur.fields[field] = av
			return nil
		}
		next, ok := cur.fields[field]
		if !ok {
			next = a.bottomVal(lv.Pos)
			cur.fields[field] = next
		}
		cur = next
	}
	return nil
}

// placeVal resolves the abstract value of a place expression for
// write-back through &mut borrows; returns nil when the expression is not
// a place.
func (a *analyzer) placeVal(e minirust.Expr, fr *frame, create bool) *absVal {
	switch v := e.(type) {
	case *minirust.VarRef:
		return fr.state[v.Name]
	case *minirust.FieldAccess:
		base := a.placeVal(v.X, fr, create)
		if base == nil {
			return nil
		}
		if base.fields == nil {
			if !create {
				return nil
			}
			base.fields = make(map[string]*absVal)
		}
		f, ok := base.fields[v.Field]
		if !ok {
			if !create {
				return nil
			}
			f = a.bottomVal(v.Pos)
			f.raise(a.lat, base.label, base.taintAt)
			base.fields[v.Field] = f
		}
		return f
	case *minirust.BorrowExpr:
		return a.placeVal(v.X, fr, create)
	default:
		return nil
	}
}

func (a *analyzer) evalExpr(e minirust.Expr, fr *frame) (*absVal, error) {
	switch v := e.(type) {
	case *minirust.IntLit:
		out := a.bottomVal(v.Pos)
		out.ki = knownInt(v.Value)
		return out, nil
	case *minirust.BoolLit:
		out := a.bottomVal(v.Pos)
		out.kb = knownBool(v.Value)
		return out, nil
	case *minirust.StrLit:
		return a.bottomVal(e.Position()), nil

	case *minirust.VecLit:
		out := a.bottomVal(v.Pos)
		for _, el := range v.Elems {
			ev, err := a.evalExpr(el, fr)
			if err != nil {
				return nil, err
			}
			lbl, at := ev.flatten(a.lat)
			out.raise(a.lat, lbl, at)
		}
		return out, nil

	case *minirust.VarRef:
		if av, ok := fr.state[v.Name]; ok {
			return av, nil
		}
		return nil, a.errf(v.Pos, "unknown variable %s", v.Name)

	case *minirust.FieldAccess:
		if pv := a.placeVal(v, fr, true); pv != nil {
			return pv, nil
		}
		// Field of a non-place (call result): evaluate and flatten.
		base, err := a.evalExpr(v.X, fr)
		if err != nil {
			return nil, err
		}
		if f, ok := base.fields[v.Field]; ok {
			return f, nil
		}
		out := a.bottomVal(v.Pos)
		lbl, at := base.flatten(a.lat)
		out.raise(a.lat, lbl, at)
		return out, nil

	case *minirust.BorrowExpr:
		return a.evalExpr(v.X, fr)

	case *minirust.UnaryExpr:
		x, err := a.evalExpr(v.X, fr)
		if err != nil {
			return nil, err
		}
		out := a.bottomVal(v.Pos)
		lbl, at := x.flatten(a.lat)
		out.raise(a.lat, lbl, at)
		switch v.Op {
		case minirust.Bang:
			if x.kb != nil {
				out.kb = knownBool(!*x.kb)
			}
		case minirust.Minus:
			if x.ki != nil {
				out.ki = knownInt(-*x.ki)
			}
		}
		return out, nil

	case *minirust.BinaryExpr:
		l, err := a.evalExpr(v.L, fr)
		if err != nil {
			return nil, err
		}
		r, err := a.evalExpr(v.R, fr)
		if err != nil {
			return nil, err
		}
		out := a.bottomVal(v.Pos)
		ll, la := l.flatten(a.lat)
		rl, ra := r.flatten(a.lat)
		out.raise(a.lat, ll, la)
		out.raise(a.lat, rl, ra)
		foldBinary(v.Op, l, r, out)
		return out, nil

	case *minirust.StructLit:
		out := a.bottomVal(v.Pos)
		out.fields = make(map[string]*absVal, len(v.Fields))
		for name, fe := range v.Fields {
			fv, err := a.evalExpr(fe, fr)
			if err != nil {
				return nil, err
			}
			out.fields[name] = fv.clone()
		}
		return out, nil

	case *minirust.CallExpr:
		return a.evalCall(v, fr)

	case *minirust.MethodCall:
		return a.evalMethodCall(v, fr)
	}
	return nil, a.errf(e.Position(), "unhandled expression")
}

// foldBinary computes the constant result of a binary operation when both
// operands are statically known, storing it in out.
func foldBinary(op minirust.Kind, l, r, out *absVal) {
	switch op {
	case minirust.AmpAmp:
		if l.kb != nil && r.kb != nil {
			out.kb = knownBool(*l.kb && *r.kb)
		} else if l.kb != nil && !*l.kb {
			out.kb = knownBool(false) // short-circuit
		}
	case minirust.Pipe2:
		if l.kb != nil && r.kb != nil {
			out.kb = knownBool(*l.kb || *r.kb)
		} else if l.kb != nil && *l.kb {
			out.kb = knownBool(true)
		}
	case minirust.Eq:
		if l.ki != nil && r.ki != nil {
			out.kb = knownBool(*l.ki == *r.ki)
		} else if l.kb != nil && r.kb != nil {
			out.kb = knownBool(*l.kb == *r.kb)
		}
	case minirust.Ne:
		if l.ki != nil && r.ki != nil {
			out.kb = knownBool(*l.ki != *r.ki)
		} else if l.kb != nil && r.kb != nil {
			out.kb = knownBool(*l.kb != *r.kb)
		}
	}
	if l.ki == nil || r.ki == nil {
		return
	}
	x, y := *l.ki, *r.ki
	switch op {
	case minirust.Plus:
		out.ki = knownInt(x + y)
	case minirust.Minus:
		out.ki = knownInt(x - y)
	case minirust.Star:
		out.ki = knownInt(x * y)
	case minirust.Slash:
		if y != 0 {
			out.ki = knownInt(x / y)
		}
	case minirust.Percent:
		if y != 0 {
			out.ki = knownInt(x % y)
		}
	case minirust.Lt:
		out.kb = knownBool(x < y)
	case minirust.Gt:
		out.kb = knownBool(x > y)
	case minirust.Le:
		out.kb = knownBool(x <= y)
	case minirust.Ge:
		out.kb = knownBool(x >= y)
	}
}

func (a *analyzer) evalCall(v *minirust.CallExpr, fr *frame) (*absVal, error) {
	if minirust.Builtins[v.Name] {
		return a.evalBuiltin(v, fr)
	}
	f, ok := a.checked.Prog.Funcs[v.Name]
	if !ok {
		return nil, a.errf(v.Pos, "unknown function %s", v.Name)
	}
	return a.applyFunc(f, v.Args, nil, v.Pos, fr)
}

func (a *analyzer) evalMethodCall(v *minirust.MethodCall, fr *frame) (*absVal, error) {
	base := a.checked.TypeOf(v.Recv)
	for base.IsRef() {
		base = *base.Ref
	}
	f, ok := a.checked.Prog.Funcs[minirust.QualifiedName(base.Name, v.Method)]
	if !ok {
		return nil, a.errf(v.Pos, "unknown method %s", v.Method)
	}
	return a.applyFunc(f, v.Args, v.Recv, v.Pos, fr)
}

// applyFunc analyzes a call. recv, when non-nil, is prepended as the self
// argument.
func (a *analyzer) applyFunc(f *minirust.FuncDef, argExprs []minirust.Expr, recv minirust.Expr, pos minirust.Pos, fr *frame) (*absVal, error) {
	all := argExprs
	if recv != nil {
		all = append([]minirust.Expr{recv}, argExprs...)
	}
	args := make([]*absVal, len(all))
	for i, ae := range all {
		av, err := a.evalExpr(ae, fr)
		if err != nil {
			return nil, err
		}
		args[i] = av
	}
	s, err := a.analyzeCall(f, args, a.pcLabel(fr))
	if err != nil {
		return nil, err
	}
	// Write back &mut params to their source places.
	for i, out := range s.outParams {
		if i >= len(all) {
			continue
		}
		if pv := a.placeVal(all[i], fr, true); pv != nil {
			pv.joinWith(a.lat, out)
		}
	}
	res := s.result.clone()
	res.raise(a.lat, a.pcLabel(fr), pos)
	return res, nil
}

func (a *analyzer) evalBuiltin(v *minirust.CallExpr, fr *frame) (*absVal, error) {
	argVals := make([]*absVal, len(v.Args))
	for i, ae := range v.Args {
		av, err := a.evalExpr(ae, fr)
		if err != nil {
			return nil, err
		}
		argVals[i] = av
	}
	pc := a.pcLabel(fr)
	switch v.Name {
	case "println":
		// The untrusted terminal: bound is lattice bottom.
		bound := a.lat.Bottom()
		eff, at := a.lat.Bottom(), v.Pos
		for _, av := range argVals {
			l, la := av.flatten(a.lat)
			j := a.lat.Join(eff, l)
			if j != eff {
				eff, at = j, la
			}
		}
		if j := a.lat.Join(eff, pc); j != eff {
			eff, at = j, v.Pos
		}
		if !a.lat.Le(eff, bound) {
			a.violations = append(a.violations, Violation{
				Pos: v.Pos, Sink: "println", Label: eff, Bound: bound, TaintAt: at,
			})
		}
		return a.bottomVal(v.Pos), nil

	case "assert":
		return a.bottomVal(v.Pos), nil

	case "vec_len":
		out := a.bottomVal(v.Pos)
		lbl, at := argVals[0].flatten(a.lat)
		out.raise(a.lat, lbl, at)
		return out, nil

	case "vec_get":
		out := a.bottomVal(v.Pos)
		for _, av := range argVals {
			lbl, at := av.flatten(a.lat)
			out.raise(a.lat, lbl, at)
		}
		return out, nil

	case "vec_push":
		// vec_push(&mut v, x): the vector absorbs x's label and the pc.
		if pv := a.placeVal(v.Args[0], fr, true); pv != nil {
			lbl, at := argVals[1].flatten(a.lat)
			pv.raise(a.lat, lbl, at)
			pv.raise(a.lat, pc, v.Pos)
		}
		return a.bottomVal(v.Pos), nil

	case "declassify":
		target := v.Args[1].(*minirust.StrLit).Value
		if !a.lat.Has(target) {
			return nil, a.errf(v.Pos, "unknown label %q in declassify", target)
		}
		out := a.bottomVal(v.Pos)
		out.label = target
		out.taintAt = v.Pos
		return out, nil

	case "assert_label_max":
		bound := v.Args[1].(*minirust.StrLit).Value
		if !a.lat.Has(bound) {
			return nil, a.errf(v.Pos, "unknown label %q in assert_label_max", bound)
		}
		eff, at := argVals[0].flatten(a.lat)
		eff2 := a.lat.Join(eff, pc)
		if eff2 != eff {
			at = v.Pos
		}
		if !a.lat.Le(eff2, bound) {
			a.violations = append(a.violations, Violation{
				Pos: v.Pos, Sink: "assert_label_max", Label: eff2, Bound: bound, TaintAt: at,
			})
		}
		return a.bottomVal(v.Pos), nil
	}
	return nil, a.errf(v.Pos, "unknown builtin %s", v.Name)
}
