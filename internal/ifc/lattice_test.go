package ifc

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/minirust"
)

func TestNewLatticeValidation(t *testing.T) {
	if _, err := NewLattice(); !errors.Is(err, ErrEmptyLattice) {
		t.Fatalf("empty: %v", err)
	}
	if _, err := NewLattice("a", "a"); !errors.Is(err, ErrDupLevel) {
		t.Fatalf("dup: %v", err)
	}
}

func TestDefaultLattice(t *testing.T) {
	l := Default()
	if l.Bottom() != "public" || l.Top() != "secret" {
		t.Fatalf("default = %s", l)
	}
	if !l.Le("public", "secret") || l.Le("secret", "public") {
		t.Fatal("order wrong")
	}
	if l.Join("public", "secret") != "secret" {
		t.Fatal("join wrong")
	}
	if l.String() != "public < secret" {
		t.Fatalf("String = %q", l.String())
	}
}

func TestLatticeUnknownLevelsFailSecure(t *testing.T) {
	l := Default()
	if l.Join("mystery", "public") != "secret" {
		t.Fatal("unknown join must go to top")
	}
	if l.Le("mystery", "public") {
		t.Fatal("unknown must not be ⊑ public")
	}
	if !l.Le("mystery", "secret") {
		t.Fatal("everything must be ⊑ top")
	}
	if l.Has("mystery") {
		t.Fatal("Has(unknown)")
	}
}

func TestForProgram(t *testing.T) {
	prog, err := minirust.Parse(`labels low < mid < high; fn main() { }`)
	if err != nil {
		t.Fatal(err)
	}
	l, err := ForProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	if l.Bottom() != "low" || l.Top() != "high" || len(l.Levels()) != 3 {
		t.Fatalf("lattice = %s", l)
	}
	prog2, err := minirust.Parse(`fn main() { }`)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := ForProgram(prog2)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Bottom() != "public" {
		t.Fatal("default lattice not used")
	}
}

// Lattice laws: join is commutative, associative, idempotent; Le is a
// total order consistent with Join.
func TestQuickLatticeLaws(t *testing.T) {
	l, err := NewLattice("a", "b", "c", "d")
	if err != nil {
		t.Fatal(err)
	}
	levels := l.Levels()
	pick := func(i uint8) string { return levels[int(i)%len(levels)] }
	f := func(i, j, k uint8) bool {
		x, y, z := pick(i), pick(j), pick(k)
		if l.Join(x, y) != l.Join(y, x) {
			return false
		}
		if l.Join(x, l.Join(y, z)) != l.Join(l.Join(x, y), z) {
			return false
		}
		if l.Join(x, x) != x {
			return false
		}
		// x ⊑ y iff join(x,y) == y
		if l.Le(x, y) != (l.Join(x, y) == y) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorAdapter(t *testing.T) {
	m := Default().Monitor()
	if m.Bottom != "public" {
		t.Fatal("bottom")
	}
	if m.Join("public", "secret") != "secret" || !m.Le("public", "secret") {
		t.Fatal("ops")
	}
}
