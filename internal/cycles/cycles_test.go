package cycles

import (
	"testing"
	"time"
)

func TestFrequencyDefaultMatchesPaper(t *testing.T) {
	if got := Frequency(); got != PaperGHz {
		t.Fatalf("Frequency = %v, want %v", got, PaperGHz)
	}
}

func TestSetFrequencyRoundTrip(t *testing.T) {
	prev := SetFrequency(3.0)
	defer SetFrequency(prev)
	if prev != PaperGHz {
		t.Fatalf("prev = %v", prev)
	}
	if Frequency() != 3.0 {
		t.Fatalf("Frequency = %v, want 3.0", Frequency())
	}
}

func TestSetFrequencyRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetFrequency(0) did not panic")
		}
	}()
	SetFrequency(0)
}

func TestFromDuration(t *testing.T) {
	// 1 µs at 2.4 GHz is 2400 cycles.
	got := FromDuration(time.Microsecond)
	if got < 2399 || got > 2401 {
		t.Fatalf("FromDuration(1µs) = %v, want ~2400", got)
	}
}

func TestToFromDurationInverse(t *testing.T) {
	d := 1500 * time.Nanosecond
	back := ToDuration(FromDuration(d))
	if diff := back - d; diff > time.Nanosecond || diff < -time.Nanosecond {
		t.Fatalf("round trip %v -> %v", d, back)
	}
}

func TestCounterElapsedMonotone(t *testing.T) {
	c := Start()
	a := c.Elapsed()
	b := c.Elapsed()
	if b < a {
		t.Fatalf("elapsed went backwards: %v then %v", a, b)
	}
}

func TestSampleStats(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.N() != 0 {
		t.Fatal("empty sample stats nonzero")
	}
	for _, v := range []float64{10, 20, 30} {
		s.Add(v)
	}
	if s.Mean() != 20 || s.Min() != 10 || s.Max() != 30 || s.N() != 3 {
		t.Fatalf("stats = %s", s.String())
	}
}

func TestMeasurePositive(t *testing.T) {
	per := Measure(100, func() { time.Sleep(time.Microsecond) })
	if per <= 0 {
		t.Fatalf("Measure = %v, want > 0", per)
	}
}

func TestMeasureBatchedPositive(t *testing.T) {
	n := 0
	per := MeasureBatched(1000, 10, func() { n++ })
	if per < 0 {
		t.Fatalf("MeasureBatched = %v", per)
	}
	if n == 0 {
		t.Fatal("fn never called")
	}
}

func TestMeasurePanicsOnBadIters(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Measure(0) did not panic")
		}
	}()
	Measure(0, func() {})
}
