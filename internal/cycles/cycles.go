// Package cycles provides CPU-cycle accounting for benchmarks.
//
// The paper reports all isolation costs in CPU cycles on an Intel Xeon
// E5530 clocked at 2.40 GHz. Portable Go cannot read the TSC directly, so
// this package measures wall-clock time with the monotonic clock and
// converts to cycles at a nominal frequency. The default frequency matches
// the paper's machine so that reported numbers are directly comparable in
// shape; override it with SetFrequency for a different nominal clock.
package cycles

import (
	"fmt"
	"sync/atomic"
	"time"
)

// PaperGHz is the clock frequency of the evaluation machine used in the
// paper (Intel Xeon E5530, 2.40 GHz).
const PaperGHz = 2.40

// frequencyMilliHz stores the nominal frequency in units of 1000 Hz so it
// can be swapped atomically. The default corresponds to PaperGHz.
var frequencyKHz atomic.Int64

func init() {
	frequencyKHz.Store(int64(PaperGHz * 1e6))
}

// SetFrequency sets the nominal CPU frequency, in GHz, used to convert
// elapsed wall-clock time into cycles. It returns the previous value.
func SetFrequency(ghz float64) float64 {
	if ghz <= 0 {
		panic("cycles: frequency must be positive")
	}
	prev := frequencyKHz.Swap(int64(ghz * 1e6))
	return float64(prev) / 1e6
}

// Frequency reports the nominal CPU frequency in GHz.
func Frequency() float64 {
	return float64(frequencyKHz.Load()) / 1e6
}

// FromDuration converts an elapsed duration to cycles at the nominal
// frequency.
func FromDuration(d time.Duration) float64 {
	return d.Seconds() * Frequency() * 1e9
}

// ToDuration converts a cycle count at the nominal frequency to a duration.
func ToDuration(c float64) time.Duration {
	// cycles / (GHz · 1e9 cycles/s) = seconds; in nanoseconds: cycles/GHz.
	return time.Duration(c / Frequency())
}

// Counter is a running cycle counter based on the monotonic clock.
type Counter struct {
	start time.Time
}

// Start returns a counter beginning now.
func Start() Counter {
	return Counter{start: time.Now()}
}

// Elapsed reports the cycles elapsed since Start.
func (c Counter) Elapsed() float64 {
	return FromDuration(time.Since(c.start))
}

// Sample holds a set of per-iteration cycle measurements.
type Sample struct {
	values []float64
}

// Add records one measurement.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// N reports the number of measurements recorded.
func (s *Sample) N() int { return len(s.values) }

// Mean reports the arithmetic mean of the sample, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Min reports the smallest measurement, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max reports the largest measurement, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// String formats the sample as "mean=… min=… max=… n=…" in whole cycles.
func (s *Sample) String() string {
	return fmt.Sprintf("mean=%.0f min=%.0f max=%.0f n=%d", s.Mean(), s.Min(), s.Max(), s.N())
}

// Measure runs fn iters times and returns the average cycles per call.
// It performs a small warm-up first so that one-time costs (lazy init,
// cache warm-up) are excluded, mirroring how the paper measures steady
// state.
func Measure(iters int, fn func()) float64 {
	if iters <= 0 {
		panic("cycles: iters must be positive")
	}
	warm := iters / 10
	if warm < 1 {
		warm = 1
	}
	for i := 0; i < warm; i++ {
		fn()
	}
	c := Start()
	for i := 0; i < iters; i++ {
		fn()
	}
	return c.Elapsed() / float64(iters)
}

// MeasureMin runs rounds independent Measure calls and returns the
// smallest per-call estimate. The minimum is the standard low-noise
// estimator for microbenchmarks: scheduler preemptions, GC pauses, and
// cache-cold rounds only ever inflate a round, never deflate it.
func MeasureMin(rounds, iters int, fn func()) float64 {
	if rounds <= 0 {
		rounds = 5
	}
	best := Measure(iters, fn)
	for r := 1; r < rounds; r++ {
		if v := Measure(iters, fn); v < best {
			best = v
		}
	}
	return best
}

// MeasureBatched is like Measure but amortizes timer overhead by timing
// batches of calls; useful when fn is only a few nanoseconds.
func MeasureBatched(iters, batch int, fn func()) float64 {
	if batch <= 0 {
		batch = 64
	}
	rounds := iters / batch
	if rounds < 1 {
		rounds = 1
	}
	for i := 0; i < batch; i++ {
		fn()
	}
	c := Start()
	for r := 0; r < rounds; r++ {
		for i := 0; i < batch; i++ {
			fn()
		}
	}
	return c.Elapsed() / float64(rounds*batch)
}
