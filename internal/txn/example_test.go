package txn_test

import (
	"errors"
	"fmt"

	"repro/internal/txn"
)

type ledger struct {
	Entries []int
	Sum     int
}

// Example shows all-or-nothing updates over the checkpoint engine: a
// failing transaction leaves no trace, even though it mutated freely
// before aborting.
func Example() {
	store, _ := txn.NewStore(&ledger{}, 4)

	_ = store.Update(func(l **ledger) error {
		(*l).Entries = append((*l).Entries, 10)
		(*l).Sum += 10
		return nil
	})

	err := store.Update(func(l **ledger) error {
		(*l).Entries = append((*l).Entries, -999)
		(*l).Sum -= 999
		return errors.New("validation failed")
	})
	fmt.Println("aborted:", errors.Is(err, txn.ErrAborted))

	store.View(func(l *ledger) {
		fmt.Println("entries:", l.Entries, "sum:", l.Sum)
	})

	// Multiversion read of the initial state.
	var v0 *ledger
	_ = store.ReadVersion(0, &v0)
	fmt.Println("version 0 entries:", len(v0.Entries))
	// Output:
	// aborted: true
	// entries: [10] sum: 10
	// version 0 entries: 0
}
