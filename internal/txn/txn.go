// Package txn builds the state-manipulation techniques the paper's §5
// motivates — transactions, replication, and multiversion reads — on top
// of the automatic checkpointing library, demonstrating that once
// checkpoint/restore is commoditized the rest follows as thin layers.
//
// "Many techniques for improving the performance and reliability of
// systems hinge on the ability to automatically manipulate program state
// in memory. In particular, checkpointing, transactions, replication,
// multiversion concurrency, etc., involve snapshotting parts of program
// state." (§5)
//
//   - Store provides atomic all-or-nothing updates: an update that
//     returns an error or panics rolls the state back to the snapshot
//     taken at transaction begin.
//   - Store keeps a bounded history of committed versions, serving
//     multiversion reads (ReadVersion).
//   - Replica consumes versioned snapshots from a Store and applies them
//     in order — rollback-recovery for middleboxes (Sherry et al. [37])
//     in miniature.
package txn

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/checkpoint"
)

// Errors returned by transactional operations.
var (
	// ErrAborted reports that the update function failed (or panicked)
	// and the store was rolled back.
	ErrAborted = errors.New("txn: transaction aborted and rolled back")
	// ErrNoVersion reports a multiversion read of a version that is not
	// retained.
	ErrNoVersion = errors.New("txn: version not retained")
	// ErrStaleApply reports an out-of-order snapshot application to a
	// replica.
	ErrStaleApply = errors.New("txn: snapshot older than replica state")
)

// Store is a transactional container for a checkpointable value of type
// T. All methods are safe for concurrent use; updates serialize.
type Store[T any] struct {
	mu      sync.Mutex
	eng     *checkpoint.Engine
	value   T
	version uint64
	history []versioned // ring of recent committed snapshots
	keep    int
}

type versioned struct {
	version uint64
	snap    *checkpoint.Snapshot
}

// NewStore creates a store holding initial, retaining up to keep
// committed versions for multiversion reads (keep 0 retains none).
// T (and everything it references) must be checkpointable: exported
// fields, sharing through checkpoint.Rc.
func NewStore[T any](initial T, keep int) (*Store[T], error) {
	s := &Store[T]{
		eng:   checkpoint.NewEngine(checkpoint.RcAware),
		value: initial,
		keep:  keep,
	}
	// Validate checkpointability up front and retain version 0.
	snap, err := s.eng.Checkpoint(initial)
	if err != nil {
		return nil, fmt.Errorf("txn: initial value not checkpointable: %w", err)
	}
	s.retain(0, snap)
	return s, nil
}

func (s *Store[T]) retain(version uint64, snap *checkpoint.Snapshot) {
	if s.keep <= 0 {
		return
	}
	s.history = append(s.history, versioned{version: version, snap: snap})
	if len(s.history) > s.keep {
		s.history = s.history[len(s.history)-s.keep:]
	}
}

// Version reports the committed version number.
func (s *Store[T]) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// View runs fn with read access to the committed state. fn must not
// mutate the value or retain references past its return.
func (s *Store[T]) View(fn func(T)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.value)
}

// Update runs fn inside a transaction: a checkpoint is taken first; if fn
// returns an error or panics, the state is restored from it and
// ErrAborted (wrapping the cause) is returned; otherwise the mutation
// commits and the version advances.
func (s *Store[T]) Update(fn func(*T) error) (err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, cerr := s.eng.Checkpoint(s.value)
	if cerr != nil {
		return fmt.Errorf("txn: begin: %w", cerr)
	}
	defer func() {
		if p := recover(); p != nil {
			if rerr := snap.Restore(&s.value); rerr != nil {
				panic(fmt.Sprintf("txn: rollback failed after panic %v: %v", p, rerr))
			}
			err = fmt.Errorf("panic %v: %w", p, ErrAborted)
		}
	}()
	if ferr := fn(&s.value); ferr != nil {
		if rerr := snap.Restore(&s.value); rerr != nil {
			return fmt.Errorf("txn: rollback failed: %w (after %v)", rerr, ferr)
		}
		return fmt.Errorf("%v: %w", ferr, ErrAborted)
	}
	s.version++
	commit, cerr := s.eng.Checkpoint(s.value)
	if cerr != nil {
		return fmt.Errorf("txn: commit snapshot: %w", cerr)
	}
	s.retain(s.version, commit)
	return nil
}

// Snapshot returns the latest committed version number and a snapshot of
// it, for replication.
func (s *Store[T]) Snapshot() (uint64, *checkpoint.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, err := s.eng.Checkpoint(s.value)
	if err != nil {
		return 0, nil, err
	}
	return s.version, snap, nil
}

// ReadVersion materializes a retained historical version into *dst.
func (s *Store[T]) ReadVersion(version uint64, dst *T) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range s.history {
		if v.version == version {
			return v.snap.Restore(dst)
		}
	}
	return fmt.Errorf("version %d (retained %d..%d): %w", version, s.oldest(), s.version, ErrNoVersion)
}

func (s *Store[T]) oldest() uint64 {
	if len(s.history) == 0 {
		return s.version
	}
	return s.history[0].version
}

// Replica is a follower that applies versioned snapshots in order.
type Replica[T any] struct {
	mu      sync.Mutex
	value   T
	version uint64
	applied bool
}

// NewReplica creates an empty replica.
func NewReplica[T any]() *Replica[T] { return &Replica[T]{} }

// Apply installs a snapshot at the given version. Versions must be
// non-decreasing; stale snapshots are rejected.
func (r *Replica[T]) Apply(version uint64, snap *checkpoint.Snapshot) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.applied && version < r.version {
		return fmt.Errorf("apply %d over %d: %w", version, r.version, ErrStaleApply)
	}
	if err := snap.Restore(&r.value); err != nil {
		return err
	}
	r.version = version
	r.applied = true
	return nil
}

// Version reports the replica's applied version.
func (r *Replica[T]) Version() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.version
}

// View runs fn with read access to the replica state.
func (r *Replica[T]) View(fn func(T)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(r.value)
}

// SyncFrom pulls the primary's latest snapshot into the replica.
func (r *Replica[T]) SyncFrom(s *Store[T]) error {
	v, snap, err := s.Snapshot()
	if err != nil {
		return err
	}
	return r.Apply(v, snap)
}
