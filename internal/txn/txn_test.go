package txn

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/checkpoint"
)

// account graph with explicit sharing: two views of the same balance.
type account struct {
	Name    string
	Balance checkpoint.Rc[int]
}

type bank struct {
	Accounts []*account
	Total    int
}

func newBank() *bank {
	return &bank{
		Accounts: []*account{
			{Name: "a", Balance: checkpoint.NewRc(100)},
			{Name: "b", Balance: checkpoint.NewRc(50)},
		},
		Total: 150,
	}
}

func TestUpdateCommit(t *testing.T) {
	s, err := NewStore(newBank(), 4)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Update(func(b **bank) error {
		(*b).Total = 175
		(*b).Accounts[0].Balance.Set(125)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Version() != 1 {
		t.Fatalf("version = %d", s.Version())
	}
	s.View(func(b *bank) {
		if b.Total != 175 || b.Accounts[0].Balance.Get() != 125 {
			t.Fatalf("committed state wrong: %+v", b)
		}
	})
}

func TestUpdateErrorRollsBack(t *testing.T) {
	s, err := NewStore(newBank(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cause := errors.New("insufficient funds")
	err = s.Update(func(b **bank) error {
		(*b).Total = -1
		(*b).Accounts[0].Balance.Set(-999)
		return cause
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if s.Version() != 0 {
		t.Fatalf("version advanced on abort: %d", s.Version())
	}
	s.View(func(b *bank) {
		if b.Total != 150 || b.Accounts[0].Balance.Get() != 100 {
			t.Fatalf("rollback incomplete: %+v, balance %d", b, b.Accounts[0].Balance.Get())
		}
	})
}

func TestUpdatePanicRollsBack(t *testing.T) {
	s, err := NewStore(newBank(), 0)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Update(func(b **bank) error {
		(*b).Total = 9999
		panic("bug in transaction body")
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	s.View(func(b *bank) {
		if b.Total != 150 {
			t.Fatalf("panic rollback incomplete: %+v", b)
		}
	})
	// Store still usable afterwards.
	if err := s.Update(func(b **bank) error { (*b).Total = 151; return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestRollbackPreservesSharing(t *testing.T) {
	// The restored graph must still share the Rc balance between any
	// aliases — rollback via Rc-aware checkpointing.
	b := newBank()
	shared := b.Accounts[0].Balance.Clone()
	b.Accounts = append(b.Accounts, &account{Name: "alias", Balance: shared})
	s, err := NewStore(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Update(func(bb **bank) error {
		(*bb).Accounts[0].Balance.Set(1)
		return errors.New("abort")
	})
	s.View(func(bb *bank) {
		if !bb.Accounts[0].Balance.SameBox(bb.Accounts[2].Balance) {
			t.Fatal("rollback lost alias structure")
		}
		if bb.Accounts[0].Balance.Get() != 100 {
			t.Fatal("rollback lost value")
		}
	})
}

func TestMultiversionReads(t *testing.T) {
	s, err := NewStore(newBank(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		v := i
		if err := s.Update(func(b **bank) error { (*b).Total = 150 + v; return nil }); err != nil {
			t.Fatal(err)
		}
	}
	var old *bank
	if err := s.ReadVersion(1, &old); err != nil {
		t.Fatal(err)
	}
	if old.Total != 151 {
		t.Fatalf("version 1 Total = %d", old.Total)
	}
	if err := s.ReadVersion(0, &old); err != nil {
		t.Fatal(err)
	}
	if old.Total != 150 {
		t.Fatalf("version 0 Total = %d", old.Total)
	}
	if err := s.ReadVersion(99, &old); !errors.Is(err, ErrNoVersion) {
		t.Fatalf("err = %v", err)
	}
}

func TestHistoryEviction(t *testing.T) {
	s, err := NewStore(newBank(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Update(func(b **bank) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	var b *bank
	if err := s.ReadVersion(1, &b); !errors.Is(err, ErrNoVersion) {
		t.Fatalf("old version retained beyond keep: %v", err)
	}
	if err := s.ReadVersion(5, &b); err != nil {
		t.Fatalf("latest version missing: %v", err)
	}
}

func TestNoHistoryMode(t *testing.T) {
	s, err := NewStore(newBank(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var b *bank
	if err := s.ReadVersion(0, &b); !errors.Is(err, ErrNoVersion) {
		t.Fatalf("err = %v", err)
	}
}

func TestReplicaSync(t *testing.T) {
	s, err := NewStore(newBank(), 0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplica[*bank]()
	if err := r.SyncFrom(s); err != nil {
		t.Fatal(err)
	}
	r.View(func(b *bank) {
		if b.Total != 150 {
			t.Fatalf("replica Total = %d", b.Total)
		}
	})
	// Primary advances; replica is stale until next sync.
	if err := s.Update(func(b **bank) error { (*b).Total = 200; return nil }); err != nil {
		t.Fatal(err)
	}
	r.View(func(b *bank) {
		if b.Total != 150 {
			t.Fatal("replica mutated without sync")
		}
	})
	if err := r.SyncFrom(s); err != nil {
		t.Fatal(err)
	}
	if r.Version() != 1 {
		t.Fatalf("replica version = %d", r.Version())
	}
	r.View(func(b *bank) {
		if b.Total != 200 {
			t.Fatalf("replica Total = %d after sync", b.Total)
		}
	})
}

func TestReplicaRejectsStale(t *testing.T) {
	s, err := NewStore(newBank(), 0)
	if err != nil {
		t.Fatal(err)
	}
	v0, snap0, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Update(func(b **bank) error { return nil }); err != nil {
		t.Fatal(err)
	}
	v1, snap1, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplica[*bank]()
	if err := r.Apply(v1, snap1); err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(v0, snap0); !errors.Is(err, ErrStaleApply) {
		t.Fatalf("stale apply: %v", err)
	}
}

func TestReplicaIsolatedFromPrimary(t *testing.T) {
	// Mutating primary state after sync must not leak into the replica
	// (the snapshot is a deep copy).
	s, err := NewStore(newBank(), 0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplica[*bank]()
	if err := r.SyncFrom(s); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(func(b **bank) error { (*b).Accounts[0].Balance.Set(-5); return nil }); err != nil {
		t.Fatal(err)
	}
	r.View(func(b *bank) {
		if b.Accounts[0].Balance.Get() != 100 {
			t.Fatal("replica shares memory with primary")
		}
	})
}

func TestNonCheckpointableRejectedUpFront(t *testing.T) {
	type bad struct {
		F func() //nolint:unused
	}
	if _, err := NewStore(&bad{}, 0); err == nil {
		t.Fatal("non-checkpointable initial value accepted")
	}
}

func TestConcurrentUpdatesSerialize(t *testing.T) {
	s, err := NewStore(newBank(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if err := s.Update(func(b **bank) error {
					(*b).Total++
					return nil
				}); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	s.View(func(b *bank) {
		if b.Total != 150+200 {
			t.Fatalf("Total = %d, want 350 (lost updates)", b.Total)
		}
	})
	if s.Version() != 200 {
		t.Fatalf("version = %d", s.Version())
	}
}

// Property: any sequence of committing and aborting transfers preserves
// the invariant total(a)+total(b) == 150: commits move money, aborts
// leave everything untouched.
func TestQuickTransfersPreserveTotal(t *testing.T) {
	f := func(ops []int8) bool {
		s, err := NewStore(newBank(), 0)
		if err != nil {
			return false
		}
		for _, op := range ops {
			amount := int(op)
			_ = s.Update(func(b **bank) error {
				from := (*b).Accounts[0]
				to := (*b).Accounts[1]
				from.Balance.Set(from.Balance.Get() - amount)
				to.Balance.Set(to.Balance.Get() + amount)
				if from.Balance.Get() < 0 || to.Balance.Get() < 0 {
					return fmt.Errorf("overdraft")
				}
				return nil
			})
		}
		ok := true
		s.View(func(b *bank) {
			sum := b.Accounts[0].Balance.Get() + b.Accounts[1].Balance.Get()
			if sum != 150 {
				ok = false
			}
			if b.Accounts[0].Balance.Get() < 0 || b.Accounts[1].Balance.Get() < 0 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
