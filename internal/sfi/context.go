package sfi

// Context carries the current-domain identity for one worker goroutine.
//
// The paper's implementation keeps the current protection-domain ID in
// thread-local storage (scoped-tls). Go deliberately exposes no TLS, so
// this repository substitutes an explicit per-worker context holding a
// stack of domain IDs: every remote invocation pushes the callee's ID on
// entry and pops it on exit, so nested cross-domain calls attribute
// correctly. The substitution is behaviour-preserving — TLS was only used
// to answer "which domain is executing?" for policy and accounting.
//
// A Context must not be shared between goroutines (exactly as a TLS slot
// belongs to one thread); create one per worker with NewContext. It is
// deliberately unsynchronized: push/pop sit on the remote-invocation fast
// path that Figure 2 measures, and the single-owner discipline makes a
// lock dead weight. Sharing one across goroutines is a bug the race
// detector will flag.
type Context struct {
	stack []DomainID
}

// NewContext returns a context whose current domain is RootDomain.
func NewContext() *Context {
	return &Context{stack: make([]DomainID, 0, 8)}
}

// Current returns the domain the worker is presently executing in.
func (c *Context) Current() DomainID {
	if len(c.stack) == 0 {
		return RootDomain
	}
	return c.stack[len(c.stack)-1]
}

// Depth reports the cross-domain call depth (0 at root).
func (c *Context) Depth() int { return len(c.stack) }

// Reset truncates the stack back to RootDomain. A supervisor reuses a
// worker's context after retiring that worker mid-call (hang abandonment):
// the replacement goroutine must not inherit the stuck call's domain
// attribution. Like every other Context method it must only be called by
// the goroutine that owns the context.
func (c *Context) Reset() { c.stack = c.stack[:0] }

func (c *Context) push(id DomainID) {
	c.stack = append(c.stack, id)
}

func (c *Context) pop() {
	if len(c.stack) > 0 {
		c.stack = c.stack[:len(c.stack)-1]
	}
}
