package sfi

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/linear"
)

// Model-based randomized test: drive a domain through random sequences
// of export / call / revoke / fault / recover / destroy operations while
// tracking a trivial reference model, and assert after every step that
// the implementation agrees with the model:
//
//   - a call through an rref succeeds iff the model says (domain live ∧
//     slot occupied by a value of the right type);
//   - a failed domain accepts nothing until recovered;
//   - a destroyed domain accepts nothing forever;
//   - table size always matches the model's occupancy.
func TestModelRandomLifecycle(t *testing.T) {
	const (
		trials = 30
		steps  = 400
	)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1))
		mgr := NewManager()
		d := mgr.NewDomain("model")
		ctx := NewContext()

		type modelEntry struct{ value int }
		model := make(map[uint64]*modelEntry) // slot -> entry
		var rrefs []*RRef[*counter]
		rrefSlot := make(map[*RRef[*counter]]uint64)
		state := "live" // live | failed | dead

		// The recovery function re-populates every slot the model says
		// should exist.
		d.SetRecovery(func(d *Domain) error {
			for slot, e := range model {
				if err := ExportAt(d, slot, &counter{n: e.value}); err != nil {
					return err
				}
			}
			return nil
		})

		for step := 0; step < steps; step++ {
			switch op := rng.Intn(10); {
			case op < 3: // export a new object
				if state != "live" {
					if _, err := Export(d, &counter{}); err == nil {
						t.Fatalf("trial %d step %d: export into %s domain succeeded", trial, step, state)
					}
					continue
				}
				v := rng.Intn(1000)
				rref, err := Export(d, &counter{n: v})
				if err != nil {
					t.Fatalf("trial %d step %d: export: %v", trial, step, err)
				}
				model[rref.Slot()] = &modelEntry{value: v}
				rrefs = append(rrefs, rref)
				rrefSlot[rref] = rref.Slot()

			case op < 6 && len(rrefs) > 0: // call through a random rref
				rref := rrefs[rng.Intn(len(rrefs))]
				slot := rrefSlot[rref]
				_, entryLive := model[slot]
				err := rref.Call(ctx, "peek", func(c *counter) error { return nil })
				shouldSucceed := state == "live" && entryLive
				if shouldSucceed && err != nil {
					t.Fatalf("trial %d step %d: call should succeed: %v", trial, step, err)
				}
				if !shouldSucceed && err == nil {
					t.Fatalf("trial %d step %d: call should fail (state=%s entry=%v)", trial, step, state, entryLive)
				}

			case op == 6 && len(rrefs) > 0: // revoke a random slot
				if state != "live" {
					continue
				}
				rref := rrefs[rng.Intn(len(rrefs))]
				d.Revoke(rrefSlot[rref])
				delete(model, rrefSlot[rref])

			case op == 7: // fault the domain via an injected panic
				if state != "live" || len(rrefs) == 0 {
					continue
				}
				rref := rrefs[rng.Intn(len(rrefs))]
				if _, ok := model[rrefSlot[rref]]; !ok {
					continue // call would fail before reaching the body
				}
				err := rref.Call(ctx, "boom", func(*counter) error { panic("injected") })
				if !errors.Is(err, ErrDomainFailed) {
					t.Fatalf("trial %d step %d: fault err = %v", trial, step, err)
				}
				state = "failed"

			case op == 8: // recover
				err := mgr.Recover(d)
				switch state {
				case "failed":
					if err != nil {
						t.Fatalf("trial %d step %d: recover: %v", trial, step, err)
					}
					state = "live"
				default:
					if err == nil {
						t.Fatalf("trial %d step %d: recover of %s domain succeeded", trial, step, state)
					}
				}

			case op == 9 && rng.Intn(40) == 0: // rare: destroy
				d.Destroy()
				state = "dead"
				model = map[uint64]*modelEntry{}
			}

			// Invariant: table occupancy matches the model while live.
			if state == "live" && d.TableSize() != len(model) {
				t.Fatalf("trial %d step %d: table size %d, model %d", trial, step, d.TableSize(), len(model))
			}
			if state != "live" && d.TableSize() != 0 {
				t.Fatalf("trial %d step %d: %s domain has %d entries", trial, step, state, d.TableSize())
			}
		}
	}
}

// Model test for CallMove: across random sequences, ownership of a token
// is always held by exactly one party (caller or lost-to-failed-domain),
// never duplicated, never resurrected.
func TestModelCallMoveOwnership(t *testing.T) {
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 99))
		mgr := NewManager()
		d := mgr.NewDomain("stage")
		rref, err := Export(d, &counter{})
		if err != nil {
			t.Fatal(err)
		}
		slot := rref.Slot()
		d.SetRecovery(func(d *Domain) error { return ExportAt(d, slot, &counter{}) })
		ctx := NewContext()

		token := linear.New(42)
		holderAlive := true // caller holds the token
		for step := 0; step < 100; step++ {
			if !holderAlive {
				// Token lost with a failed domain: a fresh one enters.
				token = linear.New(step)
				holderAlive = true
			}
			crash := rng.Intn(5) == 0
			out, err := CallMove(ctx, rref, "mv", token,
				func(c *counter, a linear.Owned[int]) (linear.Owned[int], error) {
					if crash {
						panic("crash holding token")
					}
					return a, nil
				})
			if crash {
				if !errors.Is(err, ErrDomainFailed) {
					t.Fatalf("trial %d step %d: err = %v", trial, step, err)
				}
				// The old handle must be dead.
				if token.Valid() {
					t.Fatalf("trial %d step %d: caller retains token after it died with the domain", trial, step)
				}
				holderAlive = false
				if rerr := mgr.Recover(d); rerr != nil {
					t.Fatal(rerr)
				}
				continue
			}
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			// Old handle dead, new handle live: exactly one owner.
			if token.Valid() {
				t.Fatalf("trial %d step %d: two live handles", trial, step)
			}
			if !out.Valid() {
				t.Fatalf("trial %d step %d: returned handle dead", trial, step)
			}
			token = out
		}
	}
}
