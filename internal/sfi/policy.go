package sfi

import (
	"fmt"
	"sync"
)

// Policy is the domain-level access-control hook consulted on every
// inbound remote invocation, the enforcement point the paper's management
// plane provides ("enforcing access control policies on cross-domain
// calls").
type Policy interface {
	// Allow returns nil to admit the call, or an error (conventionally
	// wrapping ErrAccessDenied) to reject it.
	Allow(caller, callee DomainID, method string) error
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc func(caller, callee DomainID, method string) error

// Allow implements Policy.
func (f PolicyFunc) Allow(caller, callee DomainID, method string) error {
	return f(caller, callee, method)
}

// AllowAll admits every call. It is the default behaviour when a domain
// has no policy installed; exposed for explicitness in configuration.
var AllowAll Policy = PolicyFunc(func(DomainID, DomainID, string) error { return nil })

// DenyAll rejects every call.
var DenyAll Policy = PolicyFunc(func(caller, callee DomainID, method string) error {
	return fmt.Errorf("deny-all policy: %w", ErrAccessDenied)
})

// ACL is a mutable allow-list policy keyed by caller domain and method.
// The zero value denies everything; add rules with Allow*.
type ACL struct {
	mu      sync.RWMutex
	callers map[DomainID]map[string]bool // method set; "" means all methods
}

// NewACL returns an empty (deny-everything) ACL.
func NewACL() *ACL {
	return &ACL{callers: make(map[DomainID]map[string]bool)}
}

// AllowCaller admits every method for the given caller.
func (a *ACL) AllowCaller(caller DomainID) *ACL {
	return a.AllowMethod(caller, "")
}

// AllowMethod admits one method for the given caller. An empty method
// string is a wildcard.
func (a *ACL) AllowMethod(caller DomainID, method string) *ACL {
	a.mu.Lock()
	defer a.mu.Unlock()
	set := a.callers[caller]
	if set == nil {
		set = make(map[string]bool)
		a.callers[caller] = set
	}
	set[method] = true
	return a
}

// RevokeCaller removes all grants for a caller.
func (a *ACL) RevokeCaller(caller DomainID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.callers, caller)
}

// Allow implements Policy.
func (a *ACL) Allow(caller, callee DomainID, method string) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if set, ok := a.callers[caller]; ok {
		if set[""] || set[method] {
			return nil
		}
	}
	return fmt.Errorf("acl: caller %d may not call %q on %d: %w", caller, method, callee, ErrAccessDenied)
}
