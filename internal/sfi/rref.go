package sfi

import (
	"fmt"
	"sync/atomic"

	"repro/internal/linear"
)

// RRef is a remote reference to an object of type T living inside another
// protection domain. Per Figure 1, the object itself stays in its owner's
// reference table (held by a strong Rc proxy); the RRef carries only a
// weak pointer plus the (domain, slot) coordinates needed to re-bind after
// the owner recovers from a fault.
//
// RRef values may be freely copied and shared between client domains —
// they confer no direct access; every use goes through Call/CallMove,
// which upgrade the weak pointer, apply the owner's policy, and execute
// the method inside the owner's fault boundary.
type RRef[T any] struct {
	dom  *Domain
	slot uint64
	// bind holds the current weak binding. It is replaced wholesale (via
	// CAS) when the slow path re-binds after recovery, so concurrent
	// fast-path readers in other workers always see a consistent
	// (weak, intercepted) pair.
	bind atomic.Pointer[rrefBinding[T]]
}

// rrefBinding is the immutable snapshot an RRef points at.
type rrefBinding[T any] struct {
	weak        linear.Weak[T]
	intercepted bool // entry has a per-object interceptor installed
	// gen is the owner domain's teardown generation when this binding was
	// minted. A successful weak upgrade alone does not prove the entry is
	// still installed: an in-flight invocation holds a strong handle for
	// its whole duration, and if the domain faults meanwhile, that handle
	// keeps the revoked proxy alive. Comparing generations catches this —
	// a stale binding is refused even though its proxy is upgradable.
	gen uint64
}

// Export places obj into d's reference table and returns the RRef clients
// use to reach it. The object's ownership transfers into the domain: the
// table's strong Rc is the sole root.
func Export[T any](d *Domain, obj T) (*RRef[T], error) {
	return exportAt(d, 0, false, obj, nil)
}

// ExportIntercepted is Export with a per-entry interceptor for
// fine-grained access control on this object's methods.
func ExportIntercepted[T any](d *Domain, obj T, ic Interceptor) (*RRef[T], error) {
	return exportAt(d, 0, false, obj, ic)
}

// ExportAt places obj at a specific table slot. Recovery functions use it
// to re-populate the slots that outstanding RRefs were minted for, making
// the fault transparent to clients (§3). Exporting over a live entry
// revokes it first.
func ExportAt[T any](d *Domain, slot uint64, obj T) error {
	_, err := exportAt(d, slot, true, obj, nil)
	return err
}

func exportAt[T any](d *Domain, slot uint64, explicit bool, obj T, ic Interceptor) (*RRef[T], error) {
	if !d.Live() {
		return nil, fmt.Errorf("export into domain %d (%s): %w", d.id, d.name, stateErr(domainState(d.state.Load())))
	}
	rc := linear.NewRc(obj)
	e := &tableEntry{
		handle:      rc,
		revoke:      func() { _ = rc.Drop() },
		interceptor: ic,
		typeName:    fmt.Sprintf("%T", obj),
	}
	d.mu.Lock()
	if !explicit {
		d.nextSlot++
		slot = d.nextSlot
	}
	prev := d.table[slot]
	d.table[slot] = e
	if slot > d.nextSlot {
		d.nextSlot = slot
	}
	d.mu.Unlock()
	if prev != nil {
		// Replacing a live entry revokes it: bump the generation so
		// bindings to the replaced proxy are refused from now on.
		d.gen.Add(1)
		prev.revoke()
		d.Stats.Revocations.Add(1)
	}
	d.Stats.Exports.Add(1)
	rref := &RRef[T]{dom: d, slot: slot}
	rref.bind.Store(&rrefBinding[T]{weak: rc.Downgrade(), intercepted: ic != nil, gen: d.gen.Load()})
	return rref, nil
}

// Slot returns the reference-table slot this RRef is bound to.
func (r *RRef[T]) Slot() uint64 { return r.slot }

// Domain returns the owning domain.
func (r *RRef[T]) Domain() *Domain { return r.dom }

// Alive reports whether an invocation would currently find the object
// (without performing one).
func (r *RRef[T]) Alive() bool {
	if r.bind.Load().weak.Alive() {
		return true
	}
	return r.dom.Live() && r.dom.lookup(r.slot) != nil
}

// acquire upgrades the weak pointer, re-binding through the table if the
// proxy was replaced by recovery. It returns the strong handle (which the
// caller must Drop) and the entry's interceptor.
//
// The fast path is a weak upgrade plus one generation compare, with no
// table lock. The upgrade alone is not proof the entry is still
// installed: normally the table's strong Rc is the proxy's only strong
// root (both revocation and fault teardown drop it first), but an
// invocation in flight at teardown time holds a second strong handle for
// its whole duration — long enough, for a stalled call, for the domain
// to be torn down, recovered, and serving again. The generation check
// refuses such stale bindings, so new calls fail closed (or re-bind to
// the recovered entry) instead of reaching the torn-down object.
// Interceptors are fetched from the table only when one was installed at
// export time (recorded in the rref), keeping the common no-interceptor
// call lock-free.
func (r *RRef[T]) acquire() (linear.Rc[T], Interceptor, error) {
	old := r.bind.Load()
	if rc, ok := old.weak.Upgrade(); ok {
		if old.gen == r.dom.gen.Load() {
			var ic Interceptor
			if old.intercepted {
				if e := r.dom.lookup(r.slot); e != nil {
					ic = e.interceptor
				}
			}
			return rc, ic, nil
		}
		// Stale binding pinned alive by an in-flight call; fall through.
		r.dom.Stats.Stale.Add(1)
		_ = rc.Drop()
	}
	// Slow path: the proxy died (revocation, fault, or recovery) or its
	// binding is from a previous table generation. Read the generation
	// before the table lookup so the published binding is never fresher
	// than the entry it wraps (a teardown between the two reads leaves
	// the binding conservatively stale, never wrongly current).
	g := r.dom.gen.Load()
	if st := domainState(r.dom.state.Load()); st != stateLive {
		return linear.Rc[T]{}, nil, fmt.Errorf("invoke on domain %d (%s): %w", r.dom.id, r.dom.name, stateErr(st))
	}
	e := r.dom.lookup(r.slot)
	if e == nil {
		return linear.Rc[T]{}, nil, fmt.Errorf("invoke slot %d in domain %d: %w", r.slot, r.dom.id, ErrRevoked)
	}
	// Re-bind to the entry now occupying our slot (recovery re-populated
	// it), if it has the right type.
	rc, ok := e.handle.(linear.Rc[T])
	if !ok {
		return linear.Rc[T]{}, nil, fmt.Errorf("re-bind slot %d in domain %d: have %s: %w", r.slot, r.dom.id, e.typeName, ErrWrongType)
	}
	strong := rc.Clone()
	fresh := &rrefBinding[T]{weak: strong.Downgrade(), intercepted: e.interceptor != nil, gen: g}
	// Publish the new binding; if another worker re-bound first, keep
	// theirs and retire ours (a binding is published exactly once, so
	// the loser is the only dropper of its own weak handle).
	if r.bind.CompareAndSwap(old, fresh) {
		old.weak.Drop()
	} else {
		fresh.weak.Drop()
	}
	return strong, e.interceptor, nil
}

// Call performs a remote invocation: it upgrades the weak pointer, applies
// policy, switches the current domain for the duration, and runs method
// with a borrowed view of the object. The object remains in its domain;
// only results cross back, per the paper's semantics for borrowed
// arguments.
//
// A panic inside method is caught at this boundary: the stack unwinds to
// the domain entry point, the callee domain is failed (its reference table
// cleared), and ErrDomainFailed is returned to the caller — the caller's
// domain keeps running.
func (r *RRef[T]) Call(ctx *Context, method string, fn func(obj T) error) error {
	rc, ic, err := r.acquire()
	if err != nil {
		return err
	}
	defer func() { _ = rc.Drop() }()
	caller := ctx.Current()
	if err := r.dom.checkPolicy(caller, method, ic); err != nil {
		return err
	}
	r.dom.Stats.Calls.Add(1)
	ctx.push(r.dom.id)
	defer ctx.pop()
	return r.guard(method, func() error { return fn(rc.Get()) })
}

// guard is the domain entry point: it converts callee panics into
// ErrDomainFailed after tearing the domain down (§3 recovery step 1-2).
func (r *RRef[T]) guard(method string, fn func() error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			r.dom.fail()
			err = fmt.Errorf("domain %d (%s) panicked in %s: %v: %w",
				r.dom.id, r.dom.name, method, p, ErrDomainFailed)
		}
	}()
	return fn()
}

func (d *Domain) checkPolicy(caller DomainID, method string, ic Interceptor) error {
	if pp := d.policy.Load(); pp != nil {
		if err := (*pp).Allow(caller, d.id, method); err != nil {
			return fmt.Errorf("call %s from domain %d to %d: %w", method, caller, d.id, err)
		}
	}
	if ic != nil {
		if err := ic(caller, method); err != nil {
			return fmt.Errorf("call %s from domain %d to %d: %w", method, caller, d.id, err)
		}
	}
	return nil
}

// CallMove performs a remote invocation that transfers ownership of arg
// into the callee — the zero-copy send the paper builds its NetBricks
// experiment on. The caller's handle is invalidated *before* the callee
// runs, so even a malicious caller cannot observe or mutate the argument
// afterwards; the callee receives a fresh Owned handle and may return a
// (possibly different) owned value, whose ownership transfers back.
func CallMove[T, A any](ctx *Context, r *RRef[T], method string, arg linear.Owned[A], fn func(obj T, arg linear.Owned[A]) (linear.Owned[A], error)) (linear.Owned[A], error) {
	var zero linear.Owned[A]
	rc, ic, err := r.acquire()
	if err != nil {
		return zero, err
	}
	defer func() { _ = rc.Drop() }()
	caller := ctx.Current()
	if err := r.dom.checkPolicy(caller, method, ic); err != nil {
		return zero, err
	}
	moved, err := arg.Move() // sender loses access here
	if err != nil {
		return zero, fmt.Errorf("CallMove %s: argument: %w", method, err)
	}
	r.dom.Stats.Calls.Add(1)
	ctx.push(r.dom.id)
	defer ctx.pop()

	var out linear.Owned[A]
	err = r.guard(method, func() error {
		var ferr error
		out, ferr = fn(rc.Get(), moved)
		return ferr
	})
	if err != nil {
		return zero, err
	}
	// Ownership of the result transfers back to the caller.
	back, err := out.Move()
	if err != nil {
		return zero, fmt.Errorf("CallMove %s: result: %w", method, err)
	}
	return back, nil
}

// CallResult is a convenience wrapper returning a value computed against a
// borrowed view of the remote object (the Ok(ret) pattern in the paper's
// listing).
func CallResult[T, R any](ctx *Context, r *RRef[T], method string, fn func(obj T) (R, error)) (R, error) {
	var out R
	err := r.Call(ctx, method, func(obj T) error {
		var ferr error
		out, ferr = fn(obj)
		return ferr
	})
	if err != nil {
		var zero R
		return zero, err
	}
	return out, nil
}
