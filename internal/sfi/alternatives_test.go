package sfi

import (
	"errors"
	"testing"
)

func TestCopyBoundaryIsolatesByCopying(t *testing.T) {
	copies := 0
	b := CopyBoundary[[]int]{Copy: func(v []int) []int {
		copies++
		return append([]int(nil), v...)
	}}
	orig := []int{1, 2, 3}
	out, err := b.Cross(orig, func(in []int) ([]int, error) {
		if &in[0] == &orig[0] {
			t.Error("callee shares memory with caller")
		}
		in[0] = 99
		return in, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if copies != 2 {
		t.Fatalf("copies = %d, want 2 (in and out)", copies)
	}
	if orig[0] != 1 {
		t.Fatal("caller's data mutated through the boundary")
	}
	if out[0] != 99 {
		t.Fatal("result not propagated")
	}
}

func TestCopyBoundaryErrorShortCircuits(t *testing.T) {
	copies := 0
	b := CopyBoundary[int]{Copy: func(v int) int { copies++; return v }}
	_, err := b.Cross(1, func(int) (int, error) { return 0, errors.New("fail") })
	if err == nil {
		t.Fatal("error swallowed")
	}
	if copies != 1 {
		t.Fatalf("copies = %d, want 1 (no result copy on error)", copies)
	}
}

func TestTaggedHeapOwnershipEnforced(t *testing.T) {
	h := NewTaggedHeap[int]()
	const a, b DomainID = 1, 2
	hd := h.Alloc(a, 42)

	// Owner access works.
	var got int
	if err := h.Access(a, hd, func(v *int) { got = *v }); err != nil || got != 42 {
		t.Fatalf("owner access: %v (got %d)", err, got)
	}
	// Non-owner access is a tag violation.
	if err := h.Access(b, hd, func(*int) {}); !errors.Is(err, ErrTagViolation) {
		t.Fatalf("non-owner access: %v", err)
	}
	// Transfer re-tags without copying.
	if err := h.Transfer(a, hd, b); err != nil {
		t.Fatal(err)
	}
	if err := h.Access(a, hd, func(*int) {}); !errors.Is(err, ErrTagViolation) {
		t.Fatal("previous owner retained access after transfer")
	}
	if err := h.Access(b, hd, func(v *int) { *v = 7 }); err != nil {
		t.Fatalf("new owner access: %v", err)
	}
}

func TestTaggedHeapTransferByNonOwnerRejected(t *testing.T) {
	h := NewTaggedHeap[int]()
	hd := h.Alloc(1, 5)
	if err := h.Transfer(2, hd, 2); !errors.Is(err, ErrTagViolation) {
		t.Fatalf("err = %v", err)
	}
}

func TestTaggedHeapFreeAndReuse(t *testing.T) {
	h := NewTaggedHeap[int]()
	hd := h.Alloc(1, 5)
	if err := h.Free(2, hd); !errors.Is(err, ErrTagViolation) {
		t.Fatal("non-owner free allowed")
	}
	if err := h.Free(1, hd); err != nil {
		t.Fatal(err)
	}
	if err := h.Access(1, hd, func(*int) {}); !errors.Is(err, ErrTagViolation) {
		t.Fatal("use after free allowed")
	}
	if h.Live() != 0 {
		t.Fatalf("Live = %d", h.Live())
	}
	// The slot is recycled.
	hd2 := h.Alloc(3, 9)
	if hd2 != hd {
		t.Fatalf("slot not reused: %d vs %d", hd2, hd)
	}
	if h.Live() != 1 {
		t.Fatalf("Live = %d", h.Live())
	}
}

func TestTaggedHeapCountsChecks(t *testing.T) {
	h := NewTaggedHeap[int]()
	hd := h.Alloc(1, 0)
	for i := 0; i < 10; i++ {
		_ = h.Access(1, hd, func(*int) {})
	}
	_ = h.Transfer(1, hd, 2)
	if got := h.TagChecks(); got != 11 {
		t.Fatalf("TagChecks = %d, want 11", got)
	}
}

func TestTaggedHeapBadHandle(t *testing.T) {
	h := NewTaggedHeap[int]()
	if err := h.Access(1, Handle(99), func(*int) {}); !errors.Is(err, ErrTagViolation) {
		t.Fatal("out-of-range handle allowed")
	}
	if err := h.Free(1, Handle(99)); !errors.Is(err, ErrTagViolation) {
		t.Fatal("free of bad handle allowed")
	}
	if err := h.Transfer(1, Handle(99), 2); !errors.Is(err, ErrTagViolation) {
		t.Fatal("transfer of bad handle allowed")
	}
}
