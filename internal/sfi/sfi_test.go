package sfi

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/linear"
)

// counter is a simple stateful object to export into domains.
type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) incr() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

func newWorld(t *testing.T) (*Manager, *Context) {
	t.Helper()
	return NewManager(), NewContext()
}

func TestExportAndCall(t *testing.T) {
	m, ctx := newWorld(t)
	d := m.NewDomain("svc")
	rref, err := Export(d, &counter{})
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	got, err := CallResult(ctx, rref, "incr", func(c *counter) (int, error) {
		return c.incr(), nil
	})
	if err != nil || got != 1 {
		t.Fatalf("CallResult = (%d, %v), want (1, nil)", got, err)
	}
	if calls, _, _, _, exports := d.Stats.Snapshot(); calls != 1 || exports != 1 {
		t.Fatalf("stats calls=%d exports=%d", calls, exports)
	}
}

func TestFigure1Structure(t *testing.T) {
	// Figure 1: the object lives in the owner's reference table (strong
	// proxy); the client-side rref holds only a weak pointer.
	m, _ := newWorld(t)
	d := m.NewDomain("owner")
	rref, err := Export(d, &counter{})
	if err != nil {
		t.Fatal(err)
	}
	if d.TableSize() != 1 {
		t.Fatalf("table size = %d, want 1", d.TableSize())
	}
	e := d.lookup(rref.Slot())
	if e == nil {
		t.Fatal("no table entry for exported object")
	}
	rc, ok := e.handle.(linear.Rc[*counter])
	if !ok {
		t.Fatalf("table holds %T", e.handle)
	}
	// Exactly one strong handle: the table's proxy. The rref is weak.
	if n := rc.StrongCount(); n != 1 {
		t.Fatalf("strong count = %d, want 1 (table only)", n)
	}
	if n := rc.WeakCount(); n != 1 {
		t.Fatalf("weak count = %d, want 1 (the rref)", n)
	}
}

func TestRevokeFailsClosed(t *testing.T) {
	m, ctx := newWorld(t)
	d := m.NewDomain("svc")
	rref, _ := Export(d, &counter{})
	d.Revoke(rref.Slot())
	if rref.Alive() {
		t.Fatal("rref alive after revoke")
	}
	err := rref.Call(ctx, "incr", func(c *counter) error { return nil })
	if !errors.Is(err, ErrRevoked) {
		t.Fatalf("Call after revoke: err = %v, want ErrRevoked", err)
	}
	if _, _, _, revs, _ := d.Stats.Snapshot(); revs != 1 {
		t.Fatalf("revocations = %d, want 1", revs)
	}
}

func TestRevokeUnknownSlotIsNoop(t *testing.T) {
	m, _ := newWorld(t)
	d := m.NewDomain("svc")
	d.Revoke(12345)
	if _, _, _, revs, _ := d.Stats.Snapshot(); revs != 0 {
		t.Fatalf("revocations = %d, want 0", revs)
	}
}

func TestPanicIsolatesAndFailsDomain(t *testing.T) {
	m, ctx := newWorld(t)
	d := m.NewDomain("flaky")
	rref, _ := Export(d, &counter{})
	other, _ := Export(d, &counter{})

	err := rref.Call(ctx, "boom", func(c *counter) error {
		panic("bounds check violation")
	})
	if !errors.Is(err, ErrDomainFailed) {
		t.Fatalf("err = %v, want ErrDomainFailed", err)
	}
	// The caller survived (we're still running) and the callee domain is
	// failed with a cleared reference table.
	if !d.Failed() {
		t.Fatal("domain not failed after panic")
	}
	if d.TableSize() != 0 {
		t.Fatalf("table size = %d after fault, want 0", d.TableSize())
	}
	// All other rrefs into the domain fail closed too.
	if err := other.Call(ctx, "incr", func(c *counter) error { return nil }); !errors.Is(err, ErrDomainFailed) {
		t.Fatalf("sibling rref err = %v, want ErrDomainFailed", err)
	}
	if _, faults, _, _, _ := d.Stats.Snapshot(); faults != 1 {
		t.Fatalf("faults = %d, want 1", faults)
	}
	// Context unwound back to root despite the panic.
	if got := ctx.Current(); got != RootDomain {
		t.Fatalf("current domain = %d after fault, want root", got)
	}
}

func TestRecoveryTransparentToClients(t *testing.T) {
	// §3: "The recovery process can re-populate the reference table, thus
	// making the failure transparent to clients of the domain."
	m, ctx := newWorld(t)
	d := m.NewDomain("svc")
	rref, _ := Export(d, &counter{n: 100})
	slot := rref.Slot()
	d.SetRecovery(func(d *Domain) error {
		return ExportAt(d, slot, &counter{n: 0}) // clean state
	})

	// Fault the domain.
	_ = rref.Call(ctx, "boom", func(c *counter) error { panic("injected") })
	if !d.Failed() {
		t.Fatal("domain not failed")
	}
	if err := m.Recover(d); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !d.Live() {
		t.Fatal("domain not live after recovery")
	}
	// The *same* rref works again, now reaching the fresh object.
	got, err := CallResult(ctx, rref, "incr", func(c *counter) (int, error) { return c.incr(), nil })
	if err != nil {
		t.Fatalf("Call after recovery: %v", err)
	}
	if got != 1 {
		t.Fatalf("recovered counter = %d, want 1 (clean state)", got)
	}
	if _, _, recs, _, _ := d.Stats.Snapshot(); recs != 1 {
		t.Fatalf("recoveries = %d, want 1", recs)
	}
}

func TestRecoverRequiresFailedState(t *testing.T) {
	m, _ := newWorld(t)
	d := m.NewDomain("svc")
	if err := m.Recover(d); err == nil {
		t.Fatal("Recover on live domain succeeded")
	}
	d.Destroy()
	if err := m.Recover(d); !errors.Is(err, ErrDomainDead) {
		t.Fatalf("Recover on dead domain: %v, want ErrDomainDead", err)
	}
}

func TestRecoveryFunctionFailureKeepsDomainFailed(t *testing.T) {
	m, ctx := newWorld(t)
	d := m.NewDomain("svc")
	rref, _ := Export(d, &counter{})
	d.SetRecovery(func(*Domain) error { return errors.New("init failed") })
	_ = rref.Call(ctx, "boom", func(*counter) error { panic("x") })
	if err := m.Recover(d); err == nil {
		t.Fatal("Recover succeeded despite failing recovery fn")
	}
	if !d.Failed() {
		t.Fatal("domain should remain failed")
	}
}

func TestRebindWrongTypeRejected(t *testing.T) {
	m, ctx := newWorld(t)
	d := m.NewDomain("svc")
	rref, _ := Export(d, &counter{})
	slot := rref.Slot()
	d.SetRecovery(func(d *Domain) error {
		return ExportAt(d, slot, "not a counter") // wrong type on purpose
	})
	_ = rref.Call(ctx, "boom", func(*counter) error { panic("x") })
	if err := m.Recover(d); err != nil {
		t.Fatal(err)
	}
	err := rref.Call(ctx, "incr", func(*counter) error { return nil })
	if !errors.Is(err, ErrWrongType) {
		t.Fatalf("err = %v, want ErrWrongType", err)
	}
}

func TestCallMoveTransfersOwnership(t *testing.T) {
	// The zero-copy property: after sending a batch by move, the sender's
	// handle is dead; the callee (and then the caller, on return) holds a
	// live handle to the same underlying data — no copies.
	m, ctx := newWorld(t)
	d := m.NewDomain("stage")
	rref, _ := Export(d, &counter{})

	payload := []int{1, 2, 3}
	arg := linear.New(payload)
	stale := arg // a copy of the handle the sender might squirrel away

	out, err := CallMove(ctx, rref, "process", arg,
		func(c *counter, batch linear.Owned[[]int]) (linear.Owned[[]int], error) {
			c.incr()
			var first int
			if err := batch.With(func(s []int) { first = s[0] }); err != nil {
				return batch, err
			}
			if first != 1 {
				return batch, fmt.Errorf("bad payload")
			}
			return batch, nil
		})
	if err != nil {
		t.Fatalf("CallMove: %v", err)
	}
	// Sender's pre-move handle is dead: no residual access.
	if _, err := stale.Borrow(); !errors.Is(err, linear.ErrMoved) {
		t.Fatalf("stale handle borrow: err = %v, want ErrMoved", err)
	}
	// Caller received ownership back and the data was never copied.
	err = out.With(func(s []int) {
		if &s[0] != &payload[0] {
			t.Error("payload was copied across the boundary")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCallMoveWithMovedArgFails(t *testing.T) {
	m, ctx := newWorld(t)
	d := m.NewDomain("stage")
	rref, _ := Export(d, &counter{})
	arg := linear.New(1)
	_ = arg.MustMove() // consume it first
	_, err := CallMove(ctx, rref, "p", arg, func(c *counter, a linear.Owned[int]) (linear.Owned[int], error) {
		return a, nil
	})
	if !errors.Is(err, linear.ErrMoved) {
		t.Fatalf("err = %v, want ErrMoved", err)
	}
}

func TestCallMovePanicFailsDomainAndDropsNothingOnCaller(t *testing.T) {
	m, ctx := newWorld(t)
	d := m.NewDomain("stage")
	rref, _ := Export(d, &counter{})
	arg := linear.New(42)
	_, err := CallMove(ctx, rref, "p", arg, func(c *counter, a linear.Owned[int]) (linear.Owned[int], error) {
		panic("stage crashed holding the batch")
	})
	if !errors.Is(err, ErrDomainFailed) {
		t.Fatalf("err = %v, want ErrDomainFailed", err)
	}
	// The batch went down with the domain: the caller cannot use it.
	if arg.Valid() {
		t.Fatal("caller still holds the batch after moving it into a crashed domain")
	}
}

func TestDomainPolicyEnforced(t *testing.T) {
	m := NewManager()
	d := m.NewDomain("guarded")
	client := m.NewDomain("client")
	rref, _ := Export(d, &counter{})

	acl := NewACL().AllowMethod(client.ID(), "incr")
	d.SetPolicy(acl)

	ctx := NewContext()
	// Call from root: denied (no grant).
	err := rref.Call(ctx, "incr", func(*counter) error { return nil })
	if !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("root call: err = %v, want ErrAccessDenied", err)
	}
	// Call from client domain on allowed method: admitted.
	err = client.Execute(ctx, func() error {
		return rref.Call(ctx, "incr", func(c *counter) error { c.incr(); return nil })
	})
	if err != nil {
		t.Fatalf("client call: %v", err)
	}
	// Call from client on another method: denied.
	err = client.Execute(ctx, func() error {
		return rref.Call(ctx, "reset", func(*counter) error { return nil })
	})
	if !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("client reset: err = %v, want ErrAccessDenied", err)
	}
	// Revoke the caller: denied again.
	acl.RevokeCaller(client.ID())
	err = client.Execute(ctx, func() error {
		return rref.Call(ctx, "incr", func(*counter) error { return nil })
	})
	if !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("after revoke: err = %v, want ErrAccessDenied", err)
	}
}

func TestPerEntryInterceptor(t *testing.T) {
	m, ctx := newWorld(t)
	d := m.NewDomain("svc")
	rref, _ := ExportIntercepted(d, &counter{}, func(caller DomainID, method string) error {
		if method == "secret" {
			return fmt.Errorf("method sealed: %w", ErrAccessDenied)
		}
		return nil
	})
	if err := rref.Call(ctx, "public", func(*counter) error { return nil }); err != nil {
		t.Fatalf("public: %v", err)
	}
	if err := rref.Call(ctx, "secret", func(*counter) error { return nil }); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("secret: err = %v, want ErrAccessDenied", err)
	}
}

func TestBuiltinPolicies(t *testing.T) {
	if err := AllowAll.Allow(1, 2, "m"); err != nil {
		t.Fatalf("AllowAll: %v", err)
	}
	if err := DenyAll.Allow(1, 2, "m"); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("DenyAll: %v", err)
	}
	acl := NewACL().AllowCaller(7)
	if err := acl.Allow(7, 2, "anything"); err != nil {
		t.Fatalf("wildcard caller: %v", err)
	}
	if err := acl.Allow(8, 2, "anything"); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("unknown caller admitted")
	}
}

func TestContextNesting(t *testing.T) {
	m := NewManager()
	a := m.NewDomain("a")
	b := m.NewDomain("b")
	ctx := NewContext()
	ra, _ := Export(a, &counter{})
	rb, _ := Export(b, &counter{})

	if ctx.Current() != RootDomain || ctx.Depth() != 0 {
		t.Fatal("fresh context not at root")
	}
	err := ra.Call(ctx, "outer", func(*counter) error {
		if ctx.Current() != a.ID() {
			t.Errorf("inside a: current = %d", ctx.Current())
		}
		return rb.Call(ctx, "inner", func(*counter) error {
			if ctx.Current() != b.ID() {
				t.Errorf("inside b: current = %d", ctx.Current())
			}
			if ctx.Depth() != 2 {
				t.Errorf("depth = %d, want 2", ctx.Depth())
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Current() != RootDomain {
		t.Fatalf("after calls: current = %d", ctx.Current())
	}
}

func TestDestroyedDomainRejectsEverything(t *testing.T) {
	m, ctx := newWorld(t)
	d := m.NewDomain("gone")
	rref, _ := Export(d, &counter{})
	d.Destroy()
	if err := rref.Call(ctx, "incr", func(*counter) error { return nil }); !errors.Is(err, ErrDomainDead) {
		t.Fatalf("call: %v, want ErrDomainDead", err)
	}
	if _, err := Export(d, &counter{}); !errors.Is(err, ErrDomainDead) {
		t.Fatalf("export: %v, want ErrDomainDead", err)
	}
	if err := d.Execute(ctx, func() error { return nil }); !errors.Is(err, ErrDomainDead) {
		t.Fatalf("execute: %v, want ErrDomainDead", err)
	}
	if _, ok := m.Domain(d.ID()); ok {
		t.Fatal("destroyed domain still registered")
	}
}

func TestManagerRegistry(t *testing.T) {
	m := NewManager()
	a := m.NewDomain("a")
	b := m.NewDomain("b")
	if a.ID() == b.ID() {
		t.Fatal("duplicate domain IDs")
	}
	if got, ok := m.Domain(a.ID()); !ok || got != a {
		t.Fatal("lookup failed")
	}
	if len(m.Domains()) != 2 {
		t.Fatalf("Domains() = %d entries", len(m.Domains()))
	}
}

func TestConcurrentCallsOneDomain(t *testing.T) {
	m := NewManager()
	d := m.NewDomain("svc")
	rref, _ := Export(d, &counter{})
	var wg sync.WaitGroup
	const workers = 16
	const perWorker = 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := NewContext()
			for i := 0; i < perWorker; i++ {
				if err := rref.Call(ctx, "incr", func(c *counter) error { c.incr(); return nil }); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, err := CallResult(NewContext(), rref, "read", func(c *counter) (int, error) {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.n, nil
	})
	if err != nil || got != workers*perWorker {
		t.Fatalf("count = %d (%v), want %d", got, err, workers*perWorker)
	}
}

func TestConcurrentRebindAfterRecovery(t *testing.T) {
	// Many workers race the slow-path re-bind on one shared rref right
	// after a fault+recovery. Every call must succeed and the rref must
	// end with a consistent binding (regression test for the
	// atomically-published rrefBinding).
	for trial := 0; trial < 20; trial++ {
		m := NewManager()
		d := m.NewDomain("svc")
		rref, err := Export(d, &counter{})
		if err != nil {
			t.Fatal(err)
		}
		slot := rref.Slot()
		d.SetRecovery(func(d *Domain) error { return ExportAt(d, slot, &counter{}) })
		_ = rref.Call(NewContext(), "boom", func(*counter) error { panic("x") })
		if err := m.Recover(d); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 16; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx := NewContext()
				for i := 0; i < 20; i++ {
					if err := rref.Call(ctx, "incr", func(c *counter) error { c.incr(); return nil }); err != nil {
						t.Errorf("call: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		got, err := CallResult(NewContext(), rref, "read", func(c *counter) (int, error) {
			c.mu.Lock()
			defer c.mu.Unlock()
			return c.n, nil
		})
		if err != nil || got != 16*20 {
			t.Fatalf("trial %d: count = %d (%v)", trial, got, err)
		}
	}
}

func TestConcurrentFaultAndCalls(t *testing.T) {
	// One goroutine repeatedly faults and recovers the domain while others
	// call through it; every call must either succeed or fail with a
	// domain-lifecycle error — never corrupt state or deadlock.
	m := NewManager()
	d := m.NewDomain("flaky")
	rref, _ := Export(d, &counter{})
	slot := rref.Slot()
	d.SetRecovery(func(d *Domain) error { return ExportAt(d, slot, &counter{}) })

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := NewContext()
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := rref.Call(ctx, "incr", func(c *counter) error { c.incr(); return nil })
				if err != nil && !errors.Is(err, ErrDomainFailed) && !errors.Is(err, ErrRevoked) {
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}
	ctx := NewContext()
	for i := 0; i < 50; i++ {
		_ = rref.Call(ctx, "boom", func(*counter) error { panic("chaos") })
		_ = m.Recover(d)
	}
	close(stop)
	wg.Wait()
	// Ensure the domain ends usable.
	if d.Failed() {
		if err := m.Recover(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := rref.Call(ctx, "incr", func(c *counter) error { return nil }); err != nil {
		t.Fatalf("final call: %v", err)
	}
}
