// Package sfi implements the paper's §3 contribution: zero-copy software
// fault isolation built on linear ownership.
//
// The library exports the paper's two data types:
//
//   - protection domains (Domain) — all domains allocate from the common
//     Go heap but share no data; and
//   - remote references (RRef) — the only channel through which domains
//     interact.
//
// An exported object stays in its owner domain's reference table, wrapped
// in a strong Rc that acts as the proxy for remote invocations. The RRef
// handed to clients holds only a weak pointer to that proxy: revoking the
// entry (or tearing the domain down for recovery) makes every outstanding
// RRef fail closed at its next upgrade, exactly as in Figure 1.
//
// Arguments of remote invocations follow move semantics: CallMove
// transfers a linear.Owned argument into the callee, invalidating the
// caller's handle, so data crosses the boundary by reference with no copy
// and no residual access — the zero-copy SFI property the paper
// demonstrates on NetBricks.
//
// Fault recovery follows §3: a panic inside a domain is caught at the
// domain entry point (the remote-invocation boundary), an error is
// returned to the caller, the domain's reference table is cleared, and the
// user-provided recovery function reinitializes the domain from clean
// state. Because recovery re-populates the same table slots, RRef
// transparently re-binds on its next call.
package sfi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Errors returned by domain and remote-reference operations.
var (
	// ErrRevoked reports an invocation through an RRef whose table entry
	// was removed (weak upgrade failed and the slot is empty).
	ErrRevoked = errors.New("sfi: remote reference revoked")
	// ErrDomainDead reports an operation on a destroyed domain.
	ErrDomainDead = errors.New("sfi: domain destroyed")
	// ErrDomainFailed reports that the callee domain panicked during the
	// invocation; the domain has been torn down and is awaiting recovery.
	ErrDomainFailed = errors.New("sfi: domain failed during invocation")
	// ErrAccessDenied reports that the access-control policy rejected a
	// cross-domain call.
	ErrAccessDenied = errors.New("sfi: access denied by policy")
	// ErrWrongType reports a type mismatch while re-binding an RRef to a
	// re-populated table slot.
	ErrWrongType = errors.New("sfi: table entry has wrong type")
)

// DomainID identifies a protection domain. ID 0 is the root (manager)
// domain that exists outside any Domain object.
type DomainID uint32

// RootDomain is the implicit domain of code not executing inside any PD.
const RootDomain DomainID = 0

// domainState tracks the lifecycle of a protection domain.
type domainState int32

const (
	stateLive domainState = iota
	stateFailed
	stateDead
)

// Stats holds per-domain counters — telemetry cells updated with
// uncontended atomic adds on the invocation path.
type Stats struct {
	Calls       telemetry.Counter // remote invocations entered
	Faults      telemetry.Counter // panics caught at the boundary
	Recoveries  telemetry.Counter // successful recovery runs
	Revocations telemetry.Counter // entries revoked (individually or by teardown)
	Exports     telemetry.Counter // objects exported into the table
	// Stale counts invocations refused because their binding was minted
	// under an older teardown generation — the in-flight-call-pins-
	// revoked-proxy case the generation stamp exists to catch.
	Stale telemetry.Counter
}

// Snapshot returns a plain-value copy of the counters (per the
// telemetry snapshot contract: each field exact, the set not an atomic
// cut).
func (s *Stats) Snapshot() (calls, faults, recoveries, revocations, exports uint64) {
	return s.Calls.Load(), s.Faults.Load(), s.Recoveries.Load(), s.Revocations.Load(), s.Exports.Load()
}

// registerMetrics exports the domain's counters on reg, labeled with
// the domain name over base.
func (d *Domain) registerMetrics(reg *telemetry.Registry, base telemetry.Labels) {
	labels := base.With("domain", d.name)
	reg.RegisterCounter("sfi_calls_total", labels, &d.Stats.Calls)
	reg.RegisterCounter("sfi_faults_total", labels, &d.Stats.Faults)
	reg.RegisterCounter("sfi_recoveries_total", labels, &d.Stats.Recoveries)
	reg.RegisterCounter("sfi_revocations_total", labels, &d.Stats.Revocations)
	reg.RegisterCounter("sfi_exports_total", labels, &d.Stats.Exports)
	reg.RegisterCounter("sfi_stale_refusals_total", labels, &d.Stats.Stale)
	reg.RegisterGaugeFunc("sfi_table_size", labels, func() float64 { return float64(d.TableSize()) })
}

// tableEntry is one slot of a domain's reference table. handle holds the
// strong linear.Rc[T] (type-erased); revoke drops it; interceptor, when
// non-nil, screens each invocation through this slot.
type tableEntry struct {
	handle      any
	revoke      func()
	interceptor Interceptor
	typeName    string
}

// Interceptor screens a single invocation through a table entry. It runs
// after the domain-level policy and may reject the call; this is the
// paper's "intercept remote invocations for fine-grained access control".
type Interceptor func(caller DomainID, method string) error

// Domain is a protection domain. Create domains through a Manager so that
// recovery can be orchestrated; the zero Domain is invalid.
type Domain struct {
	id   DomainID
	name string
	mgr  *Manager

	state atomic.Int32
	// gen is the teardown generation: bumped whenever table entries are
	// revoked (fault teardown, Revoke, export-over-live-entry). RRef
	// bindings record the generation they were minted under; a binding
	// from an older generation is refused by the invocation fast path
	// even if its proxy is still pinned alive by an in-flight call —
	// without this, a long-running invocation holding the strong handle
	// across a fault would let *new* calls through to the torn-down
	// object instead of failing closed.
	gen atomic.Uint64

	mu       sync.RWMutex
	table    map[uint64]*tableEntry
	nextSlot uint64

	recovery func(*Domain) error
	// policy is read on every remote invocation; it is stored atomically
	// so the hot path never takes the table lock.
	policy atomic.Pointer[Policy]

	// Stats is exported for benchmarks and the management plane.
	Stats Stats
}

// ID returns the domain's identifier.
func (d *Domain) ID() DomainID { return d.id }

// Name returns the human-readable name given at creation.
func (d *Domain) Name() string { return d.name }

// Live reports whether the domain currently accepts invocations.
func (d *Domain) Live() bool { return domainState(d.state.Load()) == stateLive }

// Failed reports whether the domain is torn down and awaiting recovery.
func (d *Domain) Failed() bool { return domainState(d.state.Load()) == stateFailed }

// SetRecovery installs the user-provided recovery function, run by the
// manager after a fault to reinitialize the domain from clean state. The
// function typically re-creates the domain's objects and re-exports them
// into the (cleared) reference table via ExportAt, making the failure
// transparent to clients holding RRefs.
func (d *Domain) SetRecovery(fn func(*Domain) error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.recovery = fn
}

// SetPolicy installs the domain-level access-control policy consulted on
// every inbound invocation. A nil policy admits all callers.
func (d *Domain) SetPolicy(p Policy) {
	if p == nil {
		d.policy.Store(nil)
		return
	}
	d.policy.Store(&p)
}

// Execute runs fn in the context of this domain: the current-domain ID
// visible through ctx is d's for the duration. This mirrors the paper's
// Domain::execute(&d, || ...), used to create objects "inside" a PD.
func (d *Domain) Execute(ctx *Context, fn func() error) error {
	if !d.Live() {
		return fmt.Errorf("Execute on domain %d (%s): %w", d.id, d.name, stateErr(domainState(d.state.Load())))
	}
	ctx.push(d.id)
	defer ctx.pop()
	return fn()
}

func stateErr(s domainState) error {
	switch s {
	case stateFailed:
		return ErrDomainFailed
	case stateDead:
		return ErrDomainDead
	default:
		return nil
	}
}

// lookup returns the entry at slot, or nil.
func (d *Domain) lookup(slot uint64) *tableEntry {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.table[slot]
}

// Revoke removes a single reference-table entry, immediately invalidating
// every RRef minted for it. Revoking an empty slot is a no-op.
func (d *Domain) Revoke(slot uint64) {
	d.mu.Lock()
	e := d.table[slot]
	delete(d.table, slot)
	d.mu.Unlock()
	if e != nil {
		d.gen.Add(1)
		e.revoke()
		d.Stats.Revocations.Add(1)
	}
}

// TableSize reports the number of live entries in the reference table.
func (d *Domain) TableSize() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.table)
}

// clearTable revokes every entry; used by teardown and recovery. "By
// clearing the reference table one can automatically deallocate all memory
// and resources owned by the domain" (§3): dropping the strong Rcs severs
// the only rooted references, so the Go GC reclaims the objects and all
// outstanding weak handles fail to upgrade.
func (d *Domain) clearTable() {
	d.mu.Lock()
	entries := d.table
	d.table = make(map[uint64]*tableEntry)
	d.mu.Unlock()
	// Invalidate every outstanding rref binding, including ones whose
	// proxies are pinned alive by in-flight invocations: new calls must
	// fail closed (or re-bind after recovery), not reach the old object.
	d.gen.Add(1)
	for range entries {
		d.Stats.Revocations.Add(1)
	}
	for _, e := range entries {
		e.revoke()
	}
}

// Reset tears a live domain down to its post-fault state: the domain is
// marked failed and its reference table is cleared, so every outstanding
// RRef fails closed until Manager.Recover re-populates the slots. This is
// the §3 teardown step ("unwind to the domain entry point, clear the
// reference table") exported as a reusable operation: the call path
// invokes it when a panic is caught at the domain boundary, and external
// supervisors invoke it directly to retire a domain they have declared
// hung or otherwise unhealthy. Resetting a domain that is not live is a
// no-op; Reset reports whether it performed the teardown.
func (d *Domain) Reset() bool {
	if !d.state.CompareAndSwap(int32(stateLive), int32(stateFailed)) {
		return false
	}
	d.Stats.Faults.Add(1)
	d.clearTable()
	return true
}

// fail tears the domain down after a caught panic: mark failed, then clear
// the reference table so clients fail closed until recovery.
func (d *Domain) fail() { d.Reset() }

// Destroy permanently tears the domain down.
func (d *Domain) Destroy() {
	d.state.Store(int32(stateDead))
	d.clearTable()
	if d.mgr != nil {
		d.mgr.forget(d.id)
	}
}

// Manager is the management plane controlling domain lifecycle: creation,
// lookup, and fault recovery.
type Manager struct {
	mu      sync.RWMutex
	domains map[DomainID]*Domain
	nextID  uint32
	reg     *telemetry.Registry
	regBase telemetry.Labels
}

// SetRegistry makes the manager export every domain's counters on reg,
// labeled {"domain": name} over base. Existing domains are registered
// immediately; domains created later register at creation. base
// disambiguates managers sharing one registry (e.g. per-worker isolated
// pipelines pass {"worker": n}).
func (m *Manager) SetRegistry(reg *telemetry.Registry, base telemetry.Labels) {
	m.mu.Lock()
	m.reg = reg
	m.regBase = base
	doms := make([]*Domain, 0, len(m.domains))
	for _, d := range m.domains {
		doms = append(doms, d)
	}
	m.mu.Unlock()
	for _, d := range doms {
		d.registerMetrics(reg, base)
	}
}

// NewManager creates an empty management plane.
func NewManager() *Manager {
	return &Manager{domains: make(map[DomainID]*Domain)}
}

// NewDomain creates a live protection domain.
func (m *Manager) NewDomain(name string) *Domain {
	m.mu.Lock()
	m.nextID++
	d := &Domain{
		id:    DomainID(m.nextID),
		name:  name,
		mgr:   m,
		table: make(map[uint64]*tableEntry),
	}
	d.state.Store(int32(stateLive))
	m.domains[d.id] = d
	reg, base := m.reg, m.regBase
	m.mu.Unlock()
	if reg != nil {
		d.registerMetrics(reg, base)
	}
	return d
}

// Domain returns the domain with the given ID, if it exists.
func (m *Manager) Domain(id DomainID) (*Domain, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	d, ok := m.domains[id]
	return d, ok
}

// Domains returns a snapshot of all registered domains.
func (m *Manager) Domains() []*Domain {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Domain, 0, len(m.domains))
	for _, d := range m.domains {
		out = append(out, d)
	}
	return out
}

func (m *Manager) forget(id DomainID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.domains, id)
}

// Recover runs the §3 recovery protocol on a failed domain: the reference
// table has already been cleared at fault time; Recover re-initializes the
// domain from clean state by running the user recovery function, then
// marks it live. RRefs held by clients re-bind to the re-populated slots
// on their next invocation.
func (m *Manager) Recover(d *Domain) error {
	if domainState(d.state.Load()) == stateDead {
		return fmt.Errorf("recover domain %d: %w", d.id, ErrDomainDead)
	}
	if !d.state.CompareAndSwap(int32(stateFailed), int32(stateLive)) {
		return fmt.Errorf("recover domain %d: domain is not in failed state", d.id)
	}
	d.mu.RLock()
	rec := d.recovery
	d.mu.RUnlock()
	if rec != nil {
		if err := rec(d); err != nil {
			d.state.Store(int32(stateFailed))
			return fmt.Errorf("recover domain %d: recovery function: %w", d.id, err)
		}
	}
	d.Stats.Recoveries.Add(1)
	return nil
}
