package sfi

import (
	"errors"
	"testing"
)

// TestDomainReset exercises the exported teardown: Reset on a live domain
// clears the reference table and fails outstanding RRefs closed, exactly
// as a caught panic does, and the standard Recover protocol brings the
// domain back.
func TestDomainReset(t *testing.T) {
	mgr := NewManager()
	d := mgr.NewDomain("svc")
	rref, err := Export(d, "payload")
	if err != nil {
		t.Fatal(err)
	}
	slot := rref.Slot()
	d.SetRecovery(func(d *Domain) error { return ExportAt(d, slot, "recovered") })

	if !d.Reset() {
		t.Fatal("Reset on a live domain reported no-op")
	}
	if !d.Failed() {
		t.Fatal("domain not failed after Reset")
	}
	if d.TableSize() != 0 {
		t.Fatalf("reference table has %d entries after Reset, want 0", d.TableSize())
	}
	ctx := NewContext()
	if err := rref.Call(ctx, "get", func(string) error { return nil }); !errors.Is(err, ErrDomainFailed) {
		t.Fatalf("Call after Reset: got %v, want ErrDomainFailed", err)
	}
	// Reset is idempotent on a non-live domain.
	if d.Reset() {
		t.Fatal("Reset on a failed domain reported teardown")
	}

	if err := mgr.Recover(d); err != nil {
		t.Fatal(err)
	}
	got, err := CallResult(ctx, rref, "get", func(s string) (string, error) { return s, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got != "recovered" {
		t.Fatalf("post-recovery value %q, want %q", got, "recovered")
	}
}

// TestDomainResetCountsFault pins the accounting contract shared with the
// panic path: exactly one fault and the table revocations.
func TestDomainResetCountsFault(t *testing.T) {
	mgr := NewManager()
	d := mgr.NewDomain("svc")
	if _, err := Export(d, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Export(d, 2); err != nil {
		t.Fatal(err)
	}
	d.Reset()
	d.Reset() // no-op
	_, faults, _, revocations, _ := d.Stats.Snapshot()
	if faults != 1 {
		t.Fatalf("faults = %d, want 1", faults)
	}
	if revocations != 2 {
		t.Fatalf("revocations = %d, want 2", revocations)
	}
}

// TestStalledCallDoesNotPinStaleBinding is the regression for the
// pinned-proxy hazard the chaos harness exposed: an invocation in flight
// at teardown time holds the proxy's strong handle for its whole
// duration, so after Reset + Recover the shared RRef's weak upgrade
// still succeeds against the *retired* instance. The teardown-generation
// stamp must force new calls to re-bind to the recovered entry instead
// of reaching the object the teardown revoked.
func TestStalledCallDoesNotPinStaleBinding(t *testing.T) {
	type inst struct{ id int }
	mgr := NewManager()
	d := mgr.NewDomain("svc")
	rref, err := Export(d, &inst{id: 1})
	if err != nil {
		t.Fatal(err)
	}
	slot := rref.Slot()
	d.SetRecovery(func(d *Domain) error { return ExportAt(d, slot, &inst{id: 2}) })

	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		ctx := NewContext()
		done <- rref.Call(ctx, "stall", func(*inst) error {
			close(entered)
			<-release
			return nil
		})
	}()
	<-entered // the stalled call now holds the old proxy's strong handle

	// Supervisor-style abandonment: tear down and recover while the call
	// is still in flight inside the old instance.
	if !d.Reset() {
		t.Fatal("Reset reported no-op")
	}
	if err := mgr.Recover(d); err != nil {
		t.Fatal(err)
	}

	ctx := NewContext()
	got, err := CallResult(ctx, rref, "get", func(o *inst) (int, error) { return o.id, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("post-recovery call reached instance %d, want the recovered instance 2", got)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("stalled call finished with %v, want nil", err)
	}
}

// TestContextReset verifies the stack truncates to root.
func TestContextReset(t *testing.T) {
	ctx := NewContext()
	ctx.push(7)
	ctx.push(9)
	if ctx.Current() != 9 || ctx.Depth() != 2 {
		t.Fatalf("setup: current=%d depth=%d", ctx.Current(), ctx.Depth())
	}
	ctx.Reset()
	if ctx.Current() != RootDomain || ctx.Depth() != 0 {
		t.Fatalf("after Reset: current=%d depth=%d, want root/0", ctx.Current(), ctx.Depth())
	}
}
