package sfi_test

import (
	"errors"
	"fmt"

	"repro/internal/linear"
	"repro/internal/sfi"
)

type kvStore struct {
	data map[string]string
}

// Example reproduces the paper's §3 listing: create a protection domain,
// wrap an object in a remote reference, invoke it, and observe fail-closed
// behaviour after revocation.
func Example() {
	mgr := sfi.NewManager()
	d := mgr.NewDomain("kv")
	rref, _ := sfi.Export(d, &kvStore{data: map[string]string{"k": "v"}})

	ctx := sfi.NewContext()
	val, err := sfi.CallResult(ctx, rref, "get", func(s *kvStore) (string, error) {
		return s.data["k"], nil
	})
	if err != nil {
		fmt.Println("get() failed")
	} else {
		fmt.Println("Result:", val)
	}

	d.Revoke(rref.Slot())
	err = rref.Call(ctx, "get", func(*kvStore) error { return nil })
	fmt.Println("after revoke:", errors.Is(err, sfi.ErrRevoked))
	// Output:
	// Result: v
	// after revoke: true
}

// ExampleCallMove shows the zero-copy ownership transfer across a
// protection boundary: the sender's handle dies, no bytes are copied.
func ExampleCallMove() {
	mgr := sfi.NewManager()
	d := mgr.NewDomain("stage")
	rref, _ := sfi.Export(d, &kvStore{})

	payload := linear.New([]byte("packet payload"))
	sender := payload
	out, _ := sfi.CallMove(sfi.NewContext(), rref, "process", payload,
		func(_ *kvStore, batch linear.Owned[[]byte]) (linear.Owned[[]byte], error) {
			return batch, nil
		})
	_, err := sender.Borrow()
	fmt.Println("sender lost access:", errors.Is(err, linear.ErrMoved))
	fmt.Println("receiver-side handle live:", out.Valid())
	// Output:
	// sender lost access: true
	// receiver-side handle live: true
}

// ExampleManager_Recover walks the §3 fault-recovery protocol: a panic is
// contained at the domain boundary, the reference table is cleared, and
// recovery transparently re-binds outstanding rrefs.
func ExampleManager_Recover() {
	mgr := sfi.NewManager()
	d := mgr.NewDomain("flaky")
	rref, _ := sfi.Export(d, &kvStore{data: map[string]string{"state": "dirty"}})
	slot := rref.Slot()
	d.SetRecovery(func(d *sfi.Domain) error {
		return sfi.ExportAt(d, slot, &kvStore{data: map[string]string{"state": "clean"}})
	})

	ctx := sfi.NewContext()
	err := rref.Call(ctx, "crash", func(*kvStore) error { panic("bounds violation") })
	fmt.Println("fault contained:", errors.Is(err, sfi.ErrDomainFailed))

	_ = mgr.Recover(d)
	state, _ := sfi.CallResult(ctx, rref, "get", func(s *kvStore) (string, error) {
		return s.data["state"], nil
	})
	fmt.Println("after recovery:", state)
	// Output:
	// fault contained: true
	// after recovery: clean
}
