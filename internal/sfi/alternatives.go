package sfi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// This file implements the two conventional SFI architectures §3 compares
// against, so that the benchmarks can regenerate the paper's comparison:
//
//   - copy-based SFI: "the traditional SFI architecture … confines memory
//     accesses issued by the isolated component to its private heap.
//     Sending data across protection boundaries requires copying it";
//   - the tagged shared heap of Mao et al. [27]: "a shared heap [that]
//     tags every object on the heap with the ID of the domain that
//     currently owns the object. This avoids copying, but introduces a
//     runtime overhead … due to tag validation performed on each pointer
//     dereference."

// Copier deep-copies a value; the copy-based boundary uses it to move
// data between private heaps.
type Copier[T any] func(T) T

// CopyBoundary is a copy-based protection boundary for values of type T:
// every crossing clones the payload so the sender and receiver never
// share memory. Contrast with CallMove, which transfers ownership of the
// original allocation for free.
type CopyBoundary[T any] struct {
	Copy Copier[T]
}

// Cross sends v across the boundary, runs fn on the receiver's private
// copy, and returns a fresh copy of fn's result back to the caller —
// two full copies per crossing, as in classic SFI.
func (b CopyBoundary[T]) Cross(v T, fn func(T) (T, error)) (T, error) {
	var zero T
	in := b.Copy(v) // copy into the callee's private heap
	out, err := fn(in)
	if err != nil {
		return zero, err
	}
	return b.Copy(out), nil // copy the result back
}

// Tagged-heap SFI.

// ErrTagViolation reports an access to an object owned by another domain.
var ErrTagViolation = errors.New("sfi: tagged heap: access to object owned by another domain")

// TaggedHeap is a shared heap whose objects carry the owning domain's ID.
// Every dereference validates the tag — the per-access cost the paper
// cites as >100 % overhead. Transfer re-tags an object instead of copying
// it.
type TaggedHeap[T any] struct {
	mu      sync.RWMutex
	objects []taggedObject[T]
	free    []int
	checks  atomic.Uint64
}

type taggedObject[T any] struct {
	owner DomainID
	live  bool
	val   T
}

// NewTaggedHeap creates an empty tagged heap.
func NewTaggedHeap[T any]() *TaggedHeap[T] {
	return &TaggedHeap[T]{}
}

// Handle identifies an object in a tagged heap.
type Handle int

// Alloc places v on the heap owned by domain owner.
func (h *TaggedHeap[T]) Alloc(owner DomainID, v T) Handle {
	h.mu.Lock()
	defer h.mu.Unlock()
	if n := len(h.free); n > 0 {
		idx := h.free[n-1]
		h.free = h.free[:n-1]
		h.objects[idx] = taggedObject[T]{owner: owner, live: true, val: v}
		return Handle(idx)
	}
	h.objects = append(h.objects, taggedObject[T]{owner: owner, live: true, val: v})
	return Handle(len(h.objects) - 1)
}

// Access validates the tag and invokes fn with the object. This is the
// per-dereference check of the tagged architecture.
func (h *TaggedHeap[T]) Access(caller DomainID, hd Handle, fn func(*T)) error {
	h.mu.RLock()
	defer h.mu.RUnlock()
	h.checks.Add(1)
	if int(hd) >= len(h.objects) || !h.objects[hd].live {
		return fmt.Errorf("handle %d: %w", hd, ErrTagViolation)
	}
	obj := &h.objects[hd]
	if obj.owner != caller {
		return fmt.Errorf("handle %d owned by %d, accessed by %d: %w", hd, obj.owner, caller, ErrTagViolation)
	}
	fn(&obj.val)
	return nil
}

// Transfer re-tags the object to a new owner (the zero-copy hand-off of
// the tagged architecture; only the current owner may transfer).
func (h *TaggedHeap[T]) Transfer(caller DomainID, hd Handle, to DomainID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.checks.Add(1)
	if int(hd) >= len(h.objects) || !h.objects[hd].live {
		return fmt.Errorf("handle %d: %w", hd, ErrTagViolation)
	}
	if h.objects[hd].owner != caller {
		return fmt.Errorf("transfer of handle %d by non-owner %d: %w", hd, caller, ErrTagViolation)
	}
	h.objects[hd].owner = to
	return nil
}

// Free releases the object (owner only).
func (h *TaggedHeap[T]) Free(caller DomainID, hd Handle) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if int(hd) >= len(h.objects) || !h.objects[hd].live {
		return fmt.Errorf("handle %d: %w", hd, ErrTagViolation)
	}
	if h.objects[hd].owner != caller {
		return fmt.Errorf("free of handle %d by non-owner %d: %w", hd, caller, ErrTagViolation)
	}
	var zero T
	h.objects[hd] = taggedObject[T]{}
	h.objects[hd].val = zero
	h.free = append(h.free, int(hd))
	return nil
}

// TagChecks reports the cumulative number of tag validations, the metric
// that explains the architecture's overhead.
func (h *TaggedHeap[T]) TagChecks() uint64 { return h.checks.Load() }

// Live reports the number of live objects.
func (h *TaggedHeap[T]) Live() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	n := 0
	for _, o := range h.objects {
		if o.live {
			n++
		}
	}
	return n
}
