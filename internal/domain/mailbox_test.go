package domain

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/linear"
)

// TestMailboxSendIsMove pins the core invariant: after any send —
// successful, dropped, or rejected — the sender's handle is dead.
func TestMailboxSendIsMove(t *testing.T) {
	var released atomic.Int64
	mb := NewMailbox[int](1, func(int) { released.Add(1) })

	v := linear.New(1)
	if err := mb.Send(v); err != nil {
		t.Fatal(err)
	}
	if v.Valid() {
		t.Fatal("sender handle still valid after Send")
	}

	// Mailbox full: TrySend tail-drops, sender handle still dies.
	v2 := linear.New(2)
	if err := mb.TrySend(v2); !errors.Is(err, ErrMailboxFull) {
		t.Fatalf("TrySend on full: got %v, want ErrMailboxFull", err)
	}
	if v2.Valid() {
		t.Fatal("sender handle still valid after dropped TrySend")
	}
	if released.Load() != 1 {
		t.Fatalf("release ran %d times, want 1", released.Load())
	}
	if mb.Stats.Drops.Load() != 1 {
		t.Fatalf("drops = %d, want 1", mb.Stats.Drops.Load())
	}

	// The queued payload arrives owned.
	got, err := mb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	n, err := got.Into()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("received %d, want 1", n)
	}
}

// TestMailboxSendMovedHandle: a stale handle cannot be sent (double-send
// of the same payload is a linearity violation, not a silent duplicate).
func TestMailboxSendMovedHandle(t *testing.T) {
	mb := NewMailbox[int](2, nil)
	v := linear.New(7)
	if err := mb.Send(v); err != nil {
		t.Fatal(err)
	}
	if err := mb.Send(v); !errors.Is(err, linear.ErrMoved) {
		t.Fatalf("second send of moved handle: got %v, want linear.ErrMoved", err)
	}
	if mb.Depth() != 1 {
		t.Fatalf("depth = %d, want 1 (no duplicate enqueued)", mb.Depth())
	}
}

// TestMailboxCloseSemantics: queued payloads survive a close, late sends
// are destroyed through the release hook, drained receivers see
// ErrMailboxClosed.
func TestMailboxCloseSemantics(t *testing.T) {
	var released atomic.Int64
	mb := NewMailbox[int](4, func(int) { released.Add(1) })
	for i := 0; i < 3; i++ {
		if err := mb.Send(linear.New(i)); err != nil {
			t.Fatal(err)
		}
	}
	mb.Close()
	mb.Close() // idempotent

	if err := mb.Send(linear.New(99)); !errors.Is(err, ErrMailboxClosed) {
		t.Fatalf("send after close: got %v, want ErrMailboxClosed", err)
	}
	if released.Load() != 1 {
		t.Fatalf("post-close send not released (released=%d)", released.Load())
	}
	for i := 0; i < 3; i++ {
		got, err := mb.Recv()
		if err != nil {
			t.Fatalf("recv %d after close: %v", i, err)
		}
		n, _ := got.Into()
		if n != i {
			t.Fatalf("recv %d = %d (FIFO violated)", i, n)
		}
	}
	if _, err := mb.Recv(); !errors.Is(err, ErrMailboxClosed) {
		t.Fatalf("recv on drained closed mailbox: got %v, want ErrMailboxClosed", err)
	}
}

// TestMailboxDrain destroys the backlog through the release hook.
func TestMailboxDrain(t *testing.T) {
	var released atomic.Int64
	mb := NewMailbox[int](8, func(int) { released.Add(1) })
	for i := 0; i < 5; i++ {
		if err := mb.Send(linear.New(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := mb.Drain(); n != 5 {
		t.Fatalf("Drain destroyed %d, want 5", n)
	}
	if released.Load() != 5 {
		t.Fatalf("release ran %d times, want 5", released.Load())
	}
	if mb.Depth() != 0 || !mb.Closed() {
		t.Fatal("mailbox not empty+closed after Drain")
	}
}

// TestMailboxBlockingSendUnblocksOnClose: a sender parked on a full
// mailbox is woken by Close and its payload destroyed, not stranded.
func TestMailboxBlockingSendUnblocksOnClose(t *testing.T) {
	var released atomic.Int64
	mb := NewMailbox[int](1, func(int) { released.Add(1) })
	if err := mb.Send(linear.New(0)); err != nil {
		t.Fatal(err)
	}
	errC := make(chan error)
	go func() { errC <- mb.Send(linear.New(1)) }()
	mb.Close()
	if err := <-errC; !errors.Is(err, ErrMailboxClosed) {
		t.Fatalf("blocked send after close: got %v, want ErrMailboxClosed", err)
	}
	if released.Load() != 1 {
		t.Fatalf("blocked payload not released (released=%d)", released.Load())
	}
}
