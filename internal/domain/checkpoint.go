package domain

// This file wires the paper's §5 contribution — automatic
// checkpoint/restore of pointer-linked state — into the §3 supervised
// runtime. A domain whose Config carries a Stateful gets snapshotted
// periodically (Policy.CheckpointEvery) by its own serving goroutine, at
// mailbox-quiescent points: either the inbox is empty and the epoch
// ticker fired, or one handler invocation just completed and the next has
// not begun. In both cases no handler is running, and handlers are the
// only mutators the runtime drives, so the traversal races nothing on the
// hot path. (An abandoned hung generation may still hold references —
// Stateful implementations serialize against that with their own lock.)
//
// On restart the supervisor's monitor goroutine hands the last *good*
// checkpoint to Restore instead of cold-starting: a fault mid-traversal
// discards the half-built snapshot (it was never published) and the
// previous token stands. Only a domain with no completed epoch resets to
// zero state.

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/telemetry"
)

// Stateful is the contract a domain's NF state implements to opt into
// checkpointed recovery — the runtime-level shape of the paper's
// Checkpointable trait. Implementations own their synchronization:
// Checkpoint/Restore/Reset must take the state's internal lock, because
// an abandoned (hung, superseded) generation can still be touching the
// state when the current generation snapshots or the monitor restores.
type Stateful interface {
	// Checkpoint returns an opaque restore token capturing the state at
	// this instant, using e (an RcAware engine by default) for the
	// traversal. The token must be independent of the live state: later
	// mutations must not leak into it.
	Checkpoint(e *checkpoint.Engine) (any, error)
	// Restore replaces the live state with the token's contents. The
	// token is always one previously returned by Checkpoint on a state
	// of the same shape.
	Restore(token any) error
	// Reset reinitializes to clean boot state — the cold start taken
	// when no checkpoint epoch has completed (or under RestoreCold).
	Reset()
}

// TokenCodec is the optional durability extension of Stateful: states
// that can serialize their checkpoint tokens to bytes (and back) can be
// persisted through a Policy.Persist store and survive process death,
// not just domain restarts. DecodeToken must return a token acceptable
// to the same state's Restore, and must not touch live state — the
// runtime may decode before the state ever serves.
type TokenCodec interface {
	// EncodeToken serializes a token previously returned by Checkpoint.
	EncodeToken(token any) ([]byte, error)
	// DecodeToken rebuilds a restorable token from EncodeToken's bytes.
	DecodeToken(data []byte) (any, error)
}

// Persister is the durable epoch store the runtime appends encoded
// checkpoint tokens to — implemented by statestore.Store (structurally;
// the domain runtime stays storage-agnostic). Implementations must be
// safe for concurrent use: every domain of a supervisor shares one.
type Persister interface {
	// PersistEpoch durably records the named domain's epoch seq.
	// seq is monotonic per name within and across process lifetimes.
	PersistEpoch(name string, seq uint64, payload []byte) error
	// LastEpoch returns the newest durable epoch for the named domain.
	LastEpoch(name string) (payload []byte, seq uint64, ok bool, err error)
}

// RestoreMode selects what a restarted domain's state recovery does.
type RestoreMode int

const (
	// RestoreCheckpoint (the default) restores the last good checkpoint,
	// cold-starting only when no epoch has completed.
	RestoreCheckpoint RestoreMode = iota
	// RestoreCold always resets to zero state — the ablation baseline
	// the chaos tier and benches compare against.
	RestoreCold
)

// String implements fmt.Stringer.
func (m RestoreMode) String() string {
	switch m {
	case RestoreCheckpoint:
		return "checkpoint"
	case RestoreCold:
		return "cold"
	default:
		return fmt.Sprintf("RestoreMode(%d)", int(m))
	}
}

// StateSet composes named Stateful components into one Stateful, so a
// pipeline domain can checkpoint its firewall, balancer, and session
// table as a unit. The token is positional; errors carry the component
// name.
type StateSet struct {
	names []string
	parts []Stateful
}

// NewStateSet returns an empty set; Add components in a fixed order.
func NewStateSet() *StateSet { return &StateSet{} }

// Add appends a named component and returns the set for chaining.
func (s *StateSet) Add(name string, st Stateful) *StateSet {
	s.names = append(s.names, name)
	s.parts = append(s.parts, st)
	return s
}

// Len reports the number of components.
func (s *StateSet) Len() int { return len(s.parts) }

// Checkpoint snapshots every component under one engine epoch.
func (s *StateSet) Checkpoint(e *checkpoint.Engine) (any, error) {
	tokens := make([]any, len(s.parts))
	for i, p := range s.parts {
		t, err := p.Checkpoint(e)
		if err != nil {
			return nil, fmt.Errorf("state %s: %w", s.names[i], err)
		}
		tokens[i] = t
	}
	return tokens, nil
}

// Restore distributes a Checkpoint token back to the components.
func (s *StateSet) Restore(token any) error {
	tokens, ok := token.([]any)
	if !ok || len(tokens) != len(s.parts) {
		return fmt.Errorf("domain: state-set token has wrong shape (%T)", token)
	}
	for i, p := range s.parts {
		if err := p.Restore(tokens[i]); err != nil {
			return fmt.Errorf("state %s: %w", s.names[i], err)
		}
	}
	return nil
}

// Reset cold-starts every component.
func (s *StateSet) Reset() {
	for _, p := range s.parts {
		p.Reset()
	}
}

// EncodeToken implements TokenCodec when every component does: the
// positional token serializes as a length-prefixed part per component.
func (s *StateSet) EncodeToken(token any) ([]byte, error) {
	tokens, ok := token.([]any)
	if !ok || len(tokens) != len(s.parts) {
		return nil, fmt.Errorf("domain: state-set token has wrong shape (%T)", token)
	}
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(tokens)))
	for i, p := range s.parts {
		c, ok := p.(TokenCodec)
		if !ok {
			return nil, fmt.Errorf("domain: state %s (%T) does not implement TokenCodec", s.names[i], p)
		}
		b, err := c.EncodeToken(tokens[i])
		if err != nil {
			return nil, fmt.Errorf("state %s: encode: %w", s.names[i], err)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
		buf = append(buf, b...)
	}
	return buf, nil
}

// DecodeToken rebuilds the positional token, delegating each part to
// its component's codec. The part count must match the set's shape.
func (s *StateSet) DecodeToken(data []byte) (any, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("domain: state-set token truncated")
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if n != len(s.parts) {
		return nil, fmt.Errorf("domain: state-set token has %d parts, set has %d", n, len(s.parts))
	}
	tokens := make([]any, n)
	for i, p := range s.parts {
		c, ok := p.(TokenCodec)
		if !ok {
			return nil, fmt.Errorf("domain: state %s (%T) does not implement TokenCodec", s.names[i], p)
		}
		if len(data) < 4 {
			return nil, fmt.Errorf("domain: state-set token truncated at %s", s.names[i])
		}
		partLen := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if len(data) < partLen {
			return nil, fmt.Errorf("domain: state-set token truncated at %s", s.names[i])
		}
		tok, err := c.DecodeToken(data[:partLen])
		if err != nil {
			return nil, fmt.Errorf("state %s: decode: %w", s.names[i], err)
		}
		tokens[i] = tok
		data = data[partLen:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("domain: state-set token has %d trailing bytes", len(data))
	}
	return tokens, nil
}

// ckptToken is one published checkpoint: the adapter's opaque token plus
// the serving epoch and wall time it was taken at. seq is the durable
// sequence number (0 when persistence is off).
type ckptToken struct {
	token any
	epoch uint64
	seq   uint64
	at    time.Time
}

// ckptState is a domain's checkpoint machinery, allocated only when the
// domain has a Stateful and the policy enables epochs.
type ckptState struct {
	state  Stateful
	engine *checkpoint.Engine
	every  time.Duration
	mode   RestoreMode

	// last is the newest good checkpoint; published by the serving
	// goroutine, consumed by the monitor's restore. Never holds a
	// half-built snapshot: a fault during traversal leaves it untouched.
	last atomic.Pointer[ckptToken]
	// lastAttempt (unix nanos) paces epochs across both trigger paths
	// (idle ticker and post-invocation dueness check).
	lastAttempt atomic.Int64

	// Durability (nil/zero when Policy.Persist is unset): every published
	// epoch is encoded through codec and appended to persist under a
	// per-domain monotonic sequence, and Spawn seeds last from the store's
	// newest durable epoch so process restarts restore instead of
	// cold-starting.
	persist Persister
	codec   TokenCodec
	seq     atomic.Uint64

	taken         telemetry.Counter
	failed        telemetry.Counter
	restores      telemetry.Counter
	coldStarts    telemetry.Counter
	persisted     telemetry.Counter
	persistFailed telemetry.Counter
	ckptLat       telemetry.Histogram
	restoreLat    telemetry.Histogram
	persistLat    telemetry.Histogram
}

// due reports whether a full epoch has elapsed since the last attempt.
func (c *ckptState) due(now time.Time) bool {
	return now.UnixNano()-c.lastAttempt.Load() >= int64(c.every)
}

// takeCheckpoint runs one snapshot epoch on the serving goroutine. A
// panic inside the traversal (or the adapter) is a domain fault exactly
// like a handler panic: the error propagates to the supervisor, the
// half-built snapshot is discarded unpublished, and the previous good
// token keeps standing. A checkpoint *error* is softer — the domain keeps
// serving on its last good epoch and the failure is only counted.
func (d *Domain[T]) takeCheckpoint(epoch uint64) (fault error) {
	ck := d.ck
	start := time.Now()
	ck.lastAttempt.Store(start.UnixNano())
	defer func() {
		if p := recover(); p != nil {
			d.st.crashes.Add(1)
			ck.failed.Add(1)
			d.rec.Record(d.actor, telemetry.EvPanic, d.faultStreak.Load()+1)
			fault = fmt.Errorf("domain %s: checkpoint panic: %v: %w", d.name, p, ErrCrashed)
		}
	}()
	token, err := ck.state.Checkpoint(ck.engine)
	if err != nil {
		ck.failed.Add(1)
		return nil
	}
	lat := time.Since(start)
	tok := &ckptToken{token: token, epoch: epoch, at: start}
	if ck.persist != nil {
		tok.seq = ck.seq.Add(1)
	}
	ck.last.Store(tok)
	ck.taken.Add(1)
	ck.ckptLat.Observe(lat)
	d.rec.Record(d.actor, telemetry.EvCheckpoint, uint64(lat))
	if ck.persist != nil {
		// Still inside the fault guard: a panic in the codec or the store
		// is a domain fault, but the RAM epoch above already stands — the
		// restart restores it. A persist *error* is softer yet: the domain
		// keeps serving, only durability lags (counted, never published).
		d.persistEpoch(tok)
	}
	return nil
}

// persistEpoch encodes one published epoch and appends it to the policy
// store, on the serving goroutine (the checkpoint already paid the
// traversal; the append is the cheap half, and ordering per domain is
// free on one goroutine).
func (d *Domain[T]) persistEpoch(tok *ckptToken) {
	ck := d.ck
	start := time.Now()
	payload, err := ck.codec.EncodeToken(tok.token)
	if err == nil {
		err = ck.persist.PersistEpoch(d.name, tok.seq, payload)
	}
	if err != nil {
		ck.persistFailed.Add(1)
		return
	}
	ck.persisted.Add(1)
	ck.persistLat.Observe(time.Since(start))
}

// loadDurable seeds the checkpoint machinery from the store's newest
// durable epoch at Spawn time: the decoded token becomes the domain's
// last good checkpoint (so even a pre-traffic fault restores it), the
// sequence continues where the dead process stopped, and under
// RestoreCheckpoint the state is restored immediately — a process
// restart with ≥1 durable epoch cold-starts nothing. Errors are Spawn
// errors: a store that cannot be read or a token that cannot be decoded
// is a misconfiguration, not a fault to retry through.
func (d *Domain[T]) loadDurable() error {
	ck := d.ck
	payload, seq, ok, err := ck.persist.LastEpoch(d.name)
	if err != nil {
		return fmt.Errorf("domain %s: load durable epoch: %w", d.name, err)
	}
	if !ok {
		return nil
	}
	token, err := ck.codec.DecodeToken(payload)
	if err != nil {
		return fmt.Errorf("domain %s: decode durable epoch %d: %w", d.name, seq, err)
	}
	ck.seq.Store(seq)
	ck.last.Store(&ckptToken{token: token, seq: seq, at: time.Now()})
	if ck.mode != RestoreCheckpoint {
		return nil
	}
	start := time.Now()
	if err := ck.state.Restore(token); err != nil {
		return fmt.Errorf("domain %s: restore durable epoch %d: %w", d.name, seq, err)
	}
	lat := time.Since(start)
	ck.restores.Add(1)
	ck.restoreLat.Observe(lat)
	d.rec.Record(d.actor, telemetry.EvRestore, uint64(lat))
	return nil
}

// restoreOrReset is the state half of a restart, run on the monitor
// goroutine after the sfi reference table has been recovered and the
// user Recover hook (pipeline rebuild) has completed. With a good
// checkpoint and RestoreCheckpoint mode the state is restored from the
// last token; otherwise it cold-starts. A restore error is a fault — the
// streak keeps growing, converging on degrade/stop.
func (d *Domain[T]) restoreOrReset() error {
	ck := d.ck
	if last := ck.last.Load(); last != nil && ck.mode == RestoreCheckpoint {
		start := time.Now()
		if err := ck.state.Restore(last.token); err != nil {
			ck.failed.Add(1)
			return fmt.Errorf("domain %s: restore checkpoint: %w", d.name, err)
		}
		lat := time.Since(start)
		ck.restores.Add(1)
		ck.restoreLat.Observe(lat)
		d.rec.Record(d.actor, telemetry.EvRestore, uint64(lat))
		return nil
	}
	ck.state.Reset()
	ck.coldStarts.Add(1)
	d.rec.Record(d.actor, telemetry.EvColdStart, 0)
	return nil
}

// LastCheckpoint reports when the newest good checkpoint was taken and
// whether one exists — test and operational introspection.
func (d *Domain[T]) LastCheckpoint() (time.Time, bool) {
	if d.ck == nil {
		return time.Time{}, false
	}
	last := d.ck.last.Load()
	if last == nil {
		return time.Time{}, false
	}
	return last.at, true
}

// registerCkptMetrics exports the checkpoint cells; called from
// registerMetrics when checkpointing is enabled.
func (d *Domain[T]) registerCkptMetrics(reg telemetry.Registrar, labels telemetry.Labels) {
	reg.RegisterCounter("domain_checkpoints_taken_total", labels, &d.ck.taken)
	reg.RegisterCounter("domain_checkpoint_failures_total", labels, &d.ck.failed)
	reg.RegisterCounter("domain_restores_total", labels, &d.ck.restores)
	reg.RegisterCounter("domain_cold_starts_total", labels, &d.ck.coldStarts)
	reg.RegisterHistogram("domain_checkpoint_seconds", labels, &d.ck.ckptLat)
	reg.RegisterHistogram("domain_restore_seconds", labels, &d.ck.restoreLat)
	if d.ck.persist != nil {
		reg.RegisterCounter("domain_checkpoints_persisted_total", labels, &d.ck.persisted)
		reg.RegisterCounter("domain_persist_failures_total", labels, &d.ck.persistFailed)
		reg.RegisterHistogram("domain_persist_seconds", labels, &d.ck.persistLat)
	}
}
