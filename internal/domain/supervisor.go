package domain

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/sfi"
	"repro/internal/telemetry"
)

// Strategy selects which domains a restart cycle touches.
type Strategy int

// Restart strategies, after the OTP supervisor taxonomy.
const (
	// OneForOne restarts only the faulted domain; siblings keep serving.
	OneForOne Strategy = iota
	// OneForAll retires every sibling when one domain faults and
	// restarts the whole group together — for domains whose state must
	// stay mutually consistent.
	OneForAll
)

// Policy parameterizes fault handling. The zero value gets sane defaults
// (see withDefaults).
type Policy struct {
	// Strategy is the restart scope (default OneForOne).
	Strategy Strategy
	// Backoff is the delay before the first restart of a fault streak
	// (default 1ms). Each further consecutive fault multiplies it by
	// Multiplier (default 2) up to MaxBackoff (default 1s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	Multiplier float64
	// Jitter spreads each backoff uniformly over ±Jitter fraction of its
	// value (default 0.2) so a group of domains crashed by one cause does
	// not restart in lockstep.
	Jitter float64
	// MaxRestarts bounds a fault streak: when a domain's consecutive
	// faults exceed it, the domain degrades to its fallback handler (or
	// stops, if it has none). 0 means the default (16); negative means
	// unlimited.
	MaxRestarts int
	// HangAfter declares a domain hung when one handler invocation runs
	// longer than this; the stuck goroutine is abandoned (superseded) and
	// the domain restarted. 0 disables hang detection.
	HangAfter time.Duration
	// Tick is the hang-detector poll interval (default HangAfter/4,
	// clamped to [1ms, 1s]).
	Tick time.Duration
	// Seed makes backoff jitter deterministic (default 1).
	Seed int64

	// CheckpointEvery enables §5 checkpointed recovery for domains that
	// carry a Config.State: each domain snapshots its state once per
	// epoch of this length, at mailbox-quiescent points, and a restart
	// restores the last good snapshot. 0 (the default) disables
	// checkpointing entirely — state then survives restarts unmanaged.
	CheckpointEvery time.Duration
	// CheckpointMode is the engine's aliasing mode (default RcAware —
	// the paper's Rc-flag traversal; VisitedSet is the conventional
	// baseline the benches compare against).
	CheckpointMode checkpoint.Mode
	// Restore selects what a restarted domain's state recovery does:
	// RestoreCheckpoint (default) restores the last good snapshot,
	// RestoreCold always resets to zero state (the ablation baseline).
	Restore RestoreMode
	// Persist, when non-nil alongside CheckpointEvery, makes epochs
	// durable: every published checkpoint of a domain whose State
	// implements TokenCodec is encoded and appended to the store, and
	// Spawn seeds the domain from its newest durable epoch — so a
	// process restart (kill -9 included) restores where a plain restart
	// would have cold-started. Spawn fails if the State lacks a codec.
	Persist Persister

	// Registry, when non-nil, receives every spawned domain's counters
	// and gauges (labeled {domain=<name>} on top of Labels), the
	// supervisor's aggregate counters, and the sfi management plane's
	// per-protection-domain counters. Registration happens at Spawn time
	// only; the data path never touches the registry.
	Registry *telemetry.Registry
	// Labels is the base label set for every metric this supervisor
	// registers — e.g. {worker="3"} when several supervisors share one
	// registry.
	Labels telemetry.Labels
	// Recorder, when non-nil, is the flight recorder: every domain and
	// its mailbox record lifecycle and payload-movement events into it
	// (send, recv, drop, error, panic, hang, backoff, restart, degrade,
	// stop). A nil recorder records nothing at zero cost.
	Recorder *telemetry.Recorder
	// OnDegrade, when non-nil, runs on the monitor goroutine when a
	// domain exhausts its restart budget — degrading to its fallback or
	// stopping for good — with a dump of the flight recorder at that
	// moment (nil when no Recorder is configured). This is the black-box
	// readout: the last events leading up to the failure.
	OnDegrade func(name string, events []telemetry.Event)
}

func (p Policy) withDefaults() Policy {
	if p.Backoff <= 0 {
		p.Backoff = time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.2
	}
	if p.MaxRestarts == 0 {
		p.MaxRestarts = 16
	}
	if p.Tick <= 0 {
		p.Tick = p.HangAfter / 4
	}
	if p.Tick < time.Millisecond {
		p.Tick = time.Millisecond
	}
	if p.Tick > time.Second {
		p.Tick = time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// child is the type-erased view the supervisor keeps of a Domain[T].
type child interface {
	Name() string
	State() State
	Done() <-chan struct{}
	Snapshot() Snapshot
	currentEpoch() uint64
	supersede() uint64
	stalled(now time.Time, limit time.Duration) bool
	degrade() bool
	stop()
	serve(epoch uint64)
	recoverState() error
	pdom() *sfi.Domain
	bumpStreak() uint64
	resetStreak()
	noteBackoff(d time.Duration)
	noteRestart()
	noteHang()
	setState(s State)
}

func (d *Domain[T]) currentEpoch() uint64 { return d.epoch.Load() }
func (d *Domain[T]) pdom() *sfi.Domain    { return d.pd }
func (d *Domain[T]) bumpStreak() uint64   { return d.faultStreak.Add(1) }
func (d *Domain[T]) resetStreak()         { d.faultStreak.Store(0) }
func (d *Domain[T]) setState(s State)     { d.state.Store(int32(s)) }

func (d *Domain[T]) noteBackoff(b time.Duration) {
	d.st.backoffNanos.Add(int64(b))
	d.rec.Record(d.actor, telemetry.EvBackoff, uint64(b))
}

func (d *Domain[T]) noteRestart() {
	d.st.restarts.Add(1)
	d.rec.Record(d.actor, telemetry.EvRestart, 0)
}

func (d *Domain[T]) noteHang() {
	d.st.hangs.Add(1)
	d.rec.Record(d.actor, telemetry.EvHang, 0)
}

// recoverState is the restart's state half, on the monitor goroutine:
// first the user Recover hook rebuilds the handler plumbing (the §3
// recovery function — e.g. fresh pipeline instances exported into the
// recovered reference table), then the §5 restore hands the rebuilt
// plumbing its last good checkpoint, cold-starting only when no epoch
// has completed (or under RestoreCold).
func (d *Domain[T]) recoverState() error {
	if d.recover != nil {
		if err := d.recover(); err != nil {
			return err
		}
	}
	if d.ck == nil {
		return nil
	}
	return d.restoreOrReset()
}

// event is the monitor loop's single inbound message type: fault reports
// from serving goroutines and restart requests from backoff timers.
type event struct {
	restart bool
	c       child
	epoch   uint64 // the reporter's (fault) or target (restart) epoch
	err     error
}

// Supervisor owns a group of domains: it spawns them, watches for faults
// and hangs, and applies the restart policy. All policy decisions run on
// one monitor goroutine, so per-domain lifecycle transitions are
// serialized; the domains' data paths never block on the supervisor.
type Supervisor struct {
	policy Policy
	mgr    *sfi.Manager
	rng    *rand.Rand // monitor goroutine only

	mu       sync.Mutex
	children []child

	events chan event
	stop   chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
	closed atomic.Bool

	// Aggregate counters (per-domain detail lives in each Domain).
	faults   telemetry.Counter
	hangs    telemetry.Counter
	restarts telemetry.Counter
	degrades telemetry.Counter
}

// NewSupervisor starts a supervisor with the given policy.
func NewSupervisor(p Policy) *Supervisor {
	s := &Supervisor{
		policy: p.withDefaults(),
		mgr:    sfi.NewManager(),
		events: make(chan event, 128),
		stop:   make(chan struct{}),
	}
	s.rng = rand.New(rand.NewSource(s.policy.Seed))
	if reg := s.policy.Registry; reg != nil {
		reg.RegisterCounter("supervisor_faults_total", s.policy.Labels, &s.faults)
		reg.RegisterCounter("supervisor_hangs_total", s.policy.Labels, &s.hangs)
		reg.RegisterCounter("supervisor_restarts_total", s.policy.Labels, &s.restarts)
		reg.RegisterCounter("supervisor_degrades_total", s.policy.Labels, &s.degrades)
		s.mgr.SetRegistry(reg, s.policy.Labels)
	}
	s.wg.Add(1)
	go s.monitor()
	return s
}

// Manager returns the sfi management plane the supervisor's protection
// domains live in.
func (s *Supervisor) Manager() *sfi.Manager { return s.mgr }

// ErrSupervisorClosed reports a Spawn on a closed supervisor.
var ErrSupervisorClosed = errors.New("domain: supervisor closed")

// Spawn creates a supervised domain and starts its serving goroutine.
// (A method cannot introduce a type parameter, hence the package-level
// function.)
func Spawn[T any](s *Supervisor, cfg Config[T]) (*Domain[T], error) {
	if cfg.Handler == nil {
		return nil, errors.New("domain: Config.Handler is required")
	}
	if s.closed.Load() {
		return nil, ErrSupervisorClosed
	}
	if cfg.Name == "" {
		cfg.Name = "domain"
	}
	if cfg.Mailbox <= 0 {
		cfg.Mailbox = 8
	}
	d := &Domain[T]{
		name:    cfg.Name,
		sup:     s,
		inbox:   NewMailbox(cfg.Mailbox, cfg.Release),
		release: cfg.Release,
		recover: cfg.Recover,
		fallbck: cfg.Fallback,
		pd:      s.mgr.NewDomain(cfg.Name),
		done:    make(chan struct{}),
	}
	if cfg.State != nil && s.policy.CheckpointEvery > 0 {
		d.ck = &ckptState{
			state:  cfg.State,
			engine: checkpoint.NewEngine(s.policy.CheckpointMode),
			every:  s.policy.CheckpointEvery,
			mode:   s.policy.Restore,
		}
		d.ck.lastAttempt.Store(time.Now().UnixNano())
		if p := s.policy.Persist; p != nil {
			codec, ok := cfg.State.(TokenCodec)
			if !ok {
				return nil, fmt.Errorf("domain %s: Policy.Persist requires the State to implement TokenCodec (%T does not)", cfg.Name, cfg.State)
			}
			d.ck.persist = p
			d.ck.codec = codec
		}
	}
	d.handler.Store(&handlerCell[T]{fn: cfg.Handler})
	d.state.Store(int32(StateLive))
	d.rec = s.policy.Recorder
	d.actor = d.rec.Actor(cfg.Name)
	d.inbox.Observe(d.rec, d.actor)
	if d.ck != nil && d.ck.persist != nil {
		// After the recorder is attached (loadDurable records EvRestore)
		// and before the serving goroutine starts: the domain's first
		// invocation already sees the restored state.
		if err := d.loadDurable(); err != nil {
			return nil, err
		}
	}
	if s.policy.Registry != nil {
		// One transaction for the domain's whole series group: a scrape
		// racing the spawn sees the group entirely or not at all, never
		// a half-registered domain.
		txn := s.policy.Registry.Begin()
		d.registerMetrics(txn, s.policy.Labels)
		txn.Commit()
	}
	s.mu.Lock()
	s.children = append(s.children, d)
	s.mu.Unlock()
	d.epoch.Store(1)
	d.serve(1)
	return d, nil
}

// report delivers a fault from a serving goroutine to the monitor.
func (s *Supervisor) report(c child, epoch uint64, err error) {
	select {
	case s.events <- event{c: c, epoch: epoch, err: err}:
	case <-s.stop:
	}
}

// monitor is the single policy thread: it consumes fault reports and
// restart timers, and polls heartbeats for hang detection.
func (s *Supervisor) monitor() {
	defer s.wg.Done()
	tickC := make(<-chan time.Time) // never fires when hang detection is off
	if s.policy.HangAfter > 0 {
		t := time.NewTicker(s.policy.Tick)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case <-s.stop:
			return
		case ev := <-s.events:
			if ev.restart {
				s.restart(ev.c, ev.epoch)
			} else {
				s.onFault(ev.c, ev.epoch, ev.err)
			}
		case now := <-tickC:
			s.checkHangs(now)
		}
	}
}

// onFault handles one fault report: verify it is current, clear the
// domain's reference table (§3 teardown — done here on the monitor, never
// by serving goroutines, so a stale generation cannot revoke a table its
// replacement already recovered), then apply the restart policy. The
// faulting goroutine has already unwound and reclaimed the payload.
func (s *Supervisor) onFault(c child, epoch uint64, err error) {
	if c.currentEpoch() != epoch || c.State() == StateStopped {
		return // superseded or retired while the report was in flight
	}
	s.faults.Add(1)
	c.pdom().Reset()
	s.applyPolicy(c)
}

// checkHangs abandons domains stuck inside one handler invocation beyond
// the policy limit: supersede the stuck goroutine (it exits silently at
// its next checkpoint), clear the reference table, and restart.
func (s *Supervisor) checkHangs(now time.Time) {
	s.mu.Lock()
	kids := append([]child(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		if c.State() != StateLive || !c.stalled(now, s.policy.HangAfter) {
			continue
		}
		c.noteHang()
		s.hangs.Add(1)
		c.supersede()
		c.pdom().Reset()
		s.applyPolicy(c)
	}
}

// applyPolicy runs the restart decision for a faulted/hung domain:
// degrade or stop when the streak exceeds the budget, otherwise schedule
// a restart after exponential backoff — for the domain alone
// (OneForOne) or the whole group (OneForAll).
func (s *Supervisor) applyPolicy(c child) {
	streak := c.bumpStreak()
	if s.policy.MaxRestarts >= 0 && streak > uint64(s.policy.MaxRestarts) {
		// Budget exhausted: the domain leaves normal service. Dump the
		// flight recorder first so the readout shows the events that led
		// here, then degrade (or stop, with the degrade/stop event
		// appended by the transition itself visible to later dumps).
		if hook := s.policy.OnDegrade; hook != nil {
			hook(c.Name(), s.policy.Recorder.Dump())
		}
		if !c.degrade() {
			c.stop()
			return
		}
		s.degrades.Add(1)
		c.resetStreak()
		streak = 1
	}
	backoff := s.backoffFor(streak)
	targets := []child{c}
	if s.policy.Strategy == OneForAll {
		s.mu.Lock()
		for _, sib := range s.children {
			if sib != c && sib.State() == StateLive {
				targets = append(targets, sib)
			}
		}
		s.mu.Unlock()
	}
	for _, t := range targets {
		if t != c {
			// Retire the sibling's serving goroutine; its reference
			// table is cleared so the group restarts from clean state.
			t.supersede()
			t.pdom().Reset()
		}
		t.setState(StateBackoff)
		t.noteBackoff(backoff)
		target, epoch := t, t.currentEpoch()
		time.AfterFunc(backoff, func() {
			select {
			case s.events <- event{restart: true, c: target, epoch: epoch}:
			case <-s.stop:
			}
		})
	}
}

// backoffFor computes the jittered exponential backoff for the given
// consecutive-fault count (streak >= 1).
func (s *Supervisor) backoffFor(streak uint64) time.Duration {
	b := float64(s.policy.Backoff)
	for i := uint64(1); i < streak; i++ {
		b *= s.policy.Multiplier
		if b >= float64(s.policy.MaxBackoff) {
			b = float64(s.policy.MaxBackoff)
			break
		}
	}
	if j := s.policy.Jitter; j > 0 {
		b *= 1 + j*(2*s.rng.Float64()-1)
	}
	if b > float64(s.policy.MaxBackoff) {
		b = float64(s.policy.MaxBackoff)
	}
	return time.Duration(b)
}

// restart brings a domain back after backoff: recover the sfi protection
// domain (re-populating reference-table slots via its sfi recovery
// function, if set), run the user recovery function, and start a fresh
// serving goroutine. The epoch recorded at schedule time guards against
// double serving: if anything superseded the domain meanwhile (a hang, a
// stop, a later restart), this request is stale and dropped.
func (s *Supervisor) restart(c child, epoch uint64) {
	if s.closed.Load() || c.State() == StateStopped || c.currentEpoch() != epoch {
		return
	}
	pd := c.pdom()
	if pd.Failed() {
		if err := s.mgr.Recover(pd); err != nil {
			s.faults.Add(1)
			s.applyPolicy(c)
			return
		}
	}
	if err := c.recoverState(); err != nil {
		// Recovery itself faulted: count it and go around again; the
		// streak keeps growing, so this converges on degrade/stop.
		s.faults.Add(1)
		s.applyPolicy(c)
		return
	}
	c.noteRestart()
	s.restarts.Add(1)
	c.setState(StateLive)
	c.serve(c.supersede())
}

// Close stops the monitor and retires every domain: inboxes are closed,
// backlogs destroyed through the release hooks, Done channels closed.
// Stuck (abandoned) handler goroutines are not waited for; they exit at
// their next checkpoint.
func (s *Supervisor) Close() {
	s.once.Do(func() {
		s.closed.Store(true)
		close(s.stop)
	})
	s.wg.Wait()
	s.mu.Lock()
	kids := append([]child(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		c.stop()
	}
}

// Snapshots returns a point-in-time Snapshot per domain, in spawn order —
// the per-worker view, like ShardedRunner.WorkerSnapshots.
func (s *Supervisor) Snapshots() []Snapshot {
	s.mu.Lock()
	kids := append([]child(nil), s.children...)
	s.mu.Unlock()
	out := make([]Snapshot, len(kids))
	for i, c := range kids {
		out[i] = c.Snapshot()
	}
	return out
}

// Snapshot aggregates every domain's counters into one Snapshot named
// "supervisor", under the contract documented on MergeSnapshots. Like
// ShardedRunner.Snapshot it is a point-in-time copy of monotonic atomic
// counters, safe to call during a live run.
func (s *Supervisor) Snapshot() Snapshot {
	return MergeSnapshots("supervisor", s.Snapshots())
}

// MergeSnapshots folds per-domain snapshots into one aggregate named
// name. This is the shared merge contract for the runtime's snapshot
// views (Supervisor.Snapshot here, ShardedRunner's RunStats merge in
// netbricks), matching the package telemetry snapshot contract: every
// counter is a sum of monotonic per-domain counters, each read
// point-in-time (the aggregate is not atomic across inputs or fields);
// MailboxDepth sums instantaneous gauges; Degraded is true if any input
// is; State is the most-alive input state (StateLive if any domain still
// serves, else StateStopped).
func MergeSnapshots(name string, snaps []Snapshot) Snapshot {
	agg := Snapshot{Name: name, State: StateStopped}
	for _, sn := range snaps {
		if sn.State != StateStopped {
			agg.State = StateLive
		}
		agg.Processed += sn.Processed
		agg.Errors += sn.Errors
		agg.Crashes += sn.Crashes
		agg.Hangs += sn.Hangs
		agg.Restarts += sn.Restarts
		agg.Reclaimed += sn.Reclaimed
		agg.TimeInBackoff += sn.TimeInBackoff
		agg.Checkpoints += sn.Checkpoints
		agg.CheckpointFailures += sn.CheckpointFailures
		agg.Restores += sn.Restores
		agg.ColdStarts += sn.ColdStarts
		agg.Persisted += sn.Persisted
		agg.PersistFailures += sn.PersistFailures
		agg.Degraded = agg.Degraded || sn.Degraded
		agg.MailboxDepth += sn.MailboxDepth
		agg.MailboxSends += sn.MailboxSends
		agg.MailboxRecvs += sn.MailboxRecvs
		agg.MailboxDrops += sn.MailboxDrops
	}
	return agg
}

// String summarizes the supervisor's aggregate counters.
func (s *Supervisor) String() string {
	return fmt.Sprintf("supervisor{faults=%d hangs=%d restarts=%d degrades=%d}",
		s.faults.Load(), s.hangs.Load(), s.restarts.Load(), s.degrades.Load())
}
