package domain

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/linear"
)

// TestSupervisorOneForAll: one domain's fault retires and restarts the
// whole group; siblings' reference tables are cleared and their recovery
// functions run.
func TestSupervisorOneForAll(t *testing.T) {
	p := fastPolicy()
	p.Strategy = OneForAll
	s := NewSupervisor(p)
	defer s.Close()

	var recA, recB atomic.Int64
	a, err := Spawn(s, Config[int]{
		Name:    "a",
		Recover: func() error { recA.Add(1); return nil },
		Handler: func(c *Ctx, msg linear.Owned[int]) error {
			_, err := msg.Into()
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Spawn(s, Config[int]{
		Name:    "b",
		Recover: func() error { recB.Add(1); return nil },
		Handler: func(c *Ctx, msg linear.Owned[int]) error {
			if _, err := msg.Into(); err != nil {
				return err
			}
			panic("b always crashes")
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	_ = b.Inbox().Send(linear.New(1)) // crash b → group restart
	waitFor(t, "group restart", func() bool {
		return b.Snapshot().Restarts >= 1 && a.Snapshot().Restarts >= 1
	})
	if recA.Load() < 1 || recB.Load() < 1 {
		t.Fatalf("recoveries: a=%d b=%d, want >=1 each", recA.Load(), recB.Load())
	}
	// The innocent sibling keeps serving after the group restart.
	_ = a.Inbox().Send(linear.New(2))
	waitFor(t, "sibling serving post-restart", func() bool { return a.Snapshot().Processed >= 1 })
}

// TestSupervisorBackoffGrows: consecutive faults escalate the scheduled
// backoff exponentially (within jitter), capped at MaxBackoff.
func TestSupervisorBackoffGrows(t *testing.T) {
	p := Policy{Backoff: time.Millisecond, MaxBackoff: 100 * time.Millisecond, Multiplier: 2}.withDefaults()
	p.Jitter = 0 // deterministic for the assertion
	s := &Supervisor{policy: p}
	prev := time.Duration(0)
	for streak := uint64(1); streak <= 10; streak++ {
		b := s.backoffFor(streak)
		if b < prev {
			t.Fatalf("backoff shrank at streak %d: %v < %v", streak, b, prev)
		}
		if b > 100*time.Millisecond {
			t.Fatalf("backoff exceeds cap at streak %d: %v", streak, b)
		}
		prev = b
	}
	if got := s.backoffFor(3); got != 4*time.Millisecond {
		t.Fatalf("backoffFor(3) = %v, want 4ms", got)
	}
	if got := s.backoffFor(10); got != 100*time.Millisecond {
		t.Fatalf("backoffFor(10) = %v, want cap 100ms", got)
	}
}

// TestSupervisorSnapshotAggregates: the aggregate snapshot is the sum of
// the per-domain ones, same semantics as ShardedRunner.Snapshot.
func TestSupervisorSnapshotAggregates(t *testing.T) {
	s := NewSupervisor(fastPolicy())
	defer s.Close()
	for i := 0; i < 3; i++ {
		d, err := Spawn(s, Config[int]{
			Name: fmt.Sprintf("w%d", i),
			Handler: func(c *Ctx, msg linear.Owned[int]) error {
				_, err := msg.Into()
				return err
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 5; j++ {
			if err := d.Inbox().Send(linear.New(j)); err != nil {
				t.Fatal(err)
			}
		}
		d.Inbox().Close()
		<-d.Done()
	}
	per := s.Snapshots()
	if len(per) != 3 {
		t.Fatalf("got %d snapshots, want 3", len(per))
	}
	agg := s.Snapshot()
	var sum uint64
	for _, sn := range per {
		sum += sn.Processed
	}
	if agg.Processed != sum || agg.Processed != 15 {
		t.Fatalf("aggregate processed = %d, want %d (=15)", agg.Processed, sum)
	}
	if agg.State != StateStopped {
		t.Fatalf("aggregate state = %v, want stopped", agg.State)
	}
}

// TestSupervisorStress is the race-tier stress: 8 domains with small
// (constantly full) mailboxes, concurrent producers, and concurrent
// injected crashes. Every payload must be accounted for exactly once —
// processed, tail-dropped, reclaimed at a crash, or drained at stop —
// and the supervisor must keep every domain serving throughout.
func TestSupervisorStress(t *testing.T) {
	const (
		workers  = 8
		producer = 4
		perProd  = 300
	)
	p := fastPolicy()
	s := NewSupervisor(p)
	defer s.Close()

	var processed, released atomic.Int64
	doms := make([]*Domain[int], workers)
	for w := 0; w < workers; w++ {
		d, err := Spawn(s, Config[int]{
			Name:    fmt.Sprintf("w%d", w),
			Mailbox: 2, // stays full: exercises tail-drop under pressure
			Release: func(int) { released.Add(1) },
			Handler: func(c *Ctx, msg linear.Owned[int]) error {
				var v int
				if err := msg.With(func(x int) { v = x }); err != nil {
					return err
				}
				if v%17 == 0 {
					// Panic while still owning the payload: the entry
					// point must reclaim it through Release.
					panic("injected crash")
				}
				if _, err := msg.Into(); err != nil {
					return err
				}
				processed.Add(1)
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		doms[w] = d
	}

	var sent, dropped atomic.Int64
	var wg sync.WaitGroup
	for pr := 0; pr < producer; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				d := doms[(pr+i)%workers]
				switch err := d.Inbox().TrySend(linear.New(pr*perProd + i)); err {
				case nil:
					sent.Add(1)
				case ErrMailboxFull, ErrMailboxClosed:
					dropped.Add(1)
				default:
					t.Errorf("TrySend: %v", err)
					return
				}
			}
		}(pr)
	}
	wg.Wait()
	for _, d := range doms {
		d.Inbox().Close()
	}
	for _, d := range doms {
		select {
		case <-d.Done():
		case <-time.After(10 * time.Second):
			t.Fatal("domain did not drain after close")
		}
	}

	total := int64(producer * perProd)
	if sent.Load()+dropped.Load() != total {
		t.Fatalf("sent %d + dropped %d != %d", sent.Load(), dropped.Load(), total)
	}
	// Conservation: every accepted payload was either processed or
	// released (crash reclaim / stop drain); every rejected one was
	// released by the mailbox.
	waitFor(t, "payload conservation", func() bool {
		return processed.Load()+released.Load() == total
	})
	agg := s.Snapshot()
	if agg.Crashes == 0 {
		t.Fatal("stress run injected no crashes")
	}
	if agg.Restarts == 0 {
		t.Fatal("no restarts recorded")
	}
	t.Logf("stress: processed=%d released=%d crashes=%d restarts=%d drops=%d",
		processed.Load(), released.Load(), agg.Crashes, agg.Restarts, agg.MailboxDrops)
}
