// Package faultinject is the chaos harness for the supervised
// protection-domain runtime: deterministic, probabilistic injection of
// the three fault classes the supervisor must absorb — handler panics,
// handler stalls (hangs), and mailbox-full pressure.
//
// An Injector is seeded, so a chaos run is reproducible: the same seed
// injects the same fault sequence. All methods are safe for concurrent
// use; per-fault accounting is atomic so tests can assert exact coverage
// ("the run really injected ≥ N faults").
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/domain"
	"repro/internal/linear"
)

// Stats counts injected faults.
type Stats struct {
	Panics atomic.Uint64
	Stalls atomic.Uint64
	Calls  atomic.Uint64
}

// Injector decides, per call, whether to inject a fault.
type Injector struct {
	// PanicProb is the probability [0,1] that Point panics.
	PanicProb float64
	// StallProb is the probability [0,1] that Point sleeps StallFor —
	// long enough, relative to the supervisor's HangAfter, to register
	// as a hang.
	StallProb float64
	// StallFor is the stall duration (default 10ms).
	StallFor time.Duration

	mu  sync.Mutex
	rng *rand.Rand

	// Stats is exported for assertions.
	Stats Stats
}

// New creates an injector with a deterministic seed. Probabilities start
// at zero; set the fields before use (or toggle them mid-run with Set —
// phased chaos scenarios flip injection on and off while traffic flows).
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), StallFor: 10 * time.Millisecond}
}

// Set replaces both probabilities under the injector's lock, so a test
// driver can retarget a live injector while handler goroutines are
// inside Point.
func (i *Injector) Set(panicProb, stallProb float64) {
	i.mu.Lock()
	i.PanicProb = panicProb
	i.StallProb = stallProb
	i.mu.Unlock()
}

// roll draws one uniform sample and reads the probabilities under the
// same lock, keeping Point race-free against a concurrent Set.
func (i *Injector) roll() (r, panicProb, stallProb float64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.rng.Float64(), i.PanicProb, i.StallProb
}

// Point is the injection site: call it from a handler (or operator) hot
// path. It panics with probability PanicProb, stalls with probability
// StallProb, and otherwise returns immediately.
func (i *Injector) Point(label string) {
	i.Stats.Calls.Add(1)
	r, panicProb, stallProb := i.roll()
	if r < panicProb {
		i.Stats.Panics.Add(1)
		panic(fmt.Sprintf("faultinject: %s: injected panic (roll %.4f)", label, r))
	}
	if r < panicProb+stallProb {
		i.Stats.Stalls.Add(1)
		time.Sleep(i.StallFor)
	}
}

// Wrap instruments a handler with an injection point ahead of every
// invocation: the injected panic unwinds to the domain entry point
// exactly like a fault in the handler itself.
func Wrap[T any](h domain.Handler[T], inj *Injector, label string) domain.Handler[T] {
	return func(c *domain.Ctx, msg linear.Owned[T]) error {
		inj.Point(label)
		return h(c, msg)
	}
}

// Flood applies mailbox-full pressure: it sends n payloads built by mk
// into mb as fast as TrySend allows, relying on tail-drop (and the
// mailbox release hook) for the overflow. It returns how many were
// accepted; the rest were dropped by the mailbox and show up in its
// Stats.Drops.
func Flood[T any](mb *domain.Mailbox[T], n int, mk func(i int) T) (accepted int) {
	for i := 0; i < n; i++ {
		err := mb.TrySend(linear.New(mk(i)))
		switch err {
		case nil:
			accepted++
		case domain.ErrMailboxClosed:
			return accepted
		}
	}
	return accepted
}
