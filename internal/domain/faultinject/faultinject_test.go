package faultinject

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/domain"
	"repro/internal/linear"
)

// TestInjectorDeterministic: same seed → same fault sequence, so chaos
// runs are reproducible.
func TestInjectorDeterministic(t *testing.T) {
	outcomes := func(seed int64) []bool {
		inj := New(seed)
		inj.PanicProb = 0.3
		out := make([]bool, 200)
		for i := range out {
			func() {
				defer func() { out[i] = recover() != nil }()
				inj.Point("det")
			}()
		}
		return out
	}
	a, b := outcomes(42), outcomes(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 diverged at call %d", i)
		}
	}
	if c := outcomes(43); func() bool {
		for i := range a {
			if a[i] != c[i] {
				return false
			}
		}
		return true
	}() {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

// TestInjectorRates: injected fault counts track the configured
// probabilities, and the accounting adds up.
func TestInjectorRates(t *testing.T) {
	inj := New(7)
	inj.PanicProb = 0.2
	inj.StallProb = 0.1
	inj.StallFor = 0 // rate test only; no real sleeping
	const n = 5000
	for i := 0; i < n; i++ {
		func() {
			defer func() { _ = recover() }()
			inj.Point("rate")
		}()
	}
	panics, stalls := inj.Stats.Panics.Load(), inj.Stats.Stalls.Load()
	if inj.Stats.Calls.Load() != n {
		t.Fatalf("calls = %d, want %d", inj.Stats.Calls.Load(), n)
	}
	if lo, hi := uint64(n/10), uint64(3*n/10); panics < lo || panics > hi {
		t.Fatalf("panics = %d, want within [%d,%d] for p=0.2", panics, lo, hi)
	}
	if lo, hi := uint64(n/20), uint64(n/5); stalls < lo || stalls > hi {
		t.Fatalf("stalls = %d, want within [%d,%d] for p=0.1", stalls, lo, hi)
	}
}

// TestWrapPanicsReachSupervisor: an injected panic unwinds to the domain
// entry point and is handled exactly like a handler fault — payload
// reclaimed, domain restarted, traffic continues.
func TestWrapPanicsReachSupervisor(t *testing.T) {
	s := domain.NewSupervisor(domain.Policy{
		Backoff:     50 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
		MaxRestarts: -1,
	})
	defer s.Close()

	inj := New(3)
	inj.PanicProb = 0.25
	var processed, released atomic.Int64
	h := func(c *domain.Ctx, msg linear.Owned[int]) error {
		if _, err := msg.Into(); err != nil {
			return err
		}
		processed.Add(1)
		return nil
	}
	d, err := domain.Spawn(s, domain.Config[int]{
		Name:    "chaotic",
		Mailbox: 16,
		Release: func(int) { released.Add(1) },
		Handler: Wrap(h, inj, "test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	for i := 0; i < n; i++ {
		if err := d.Inbox().Send(linear.New(i)); err != nil {
			t.Fatal(err)
		}
	}
	d.Inbox().Close()
	select {
	case <-d.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("domain did not drain")
	}
	if inj.Stats.Panics.Load() == 0 {
		t.Fatal("no panics injected")
	}
	// Conservation: panicked payloads are reclaimed (Wrap injects before
	// the handler consumes, so the entry point releases them); the rest
	// are processed.
	if got := processed.Load() + released.Load(); got != n {
		t.Fatalf("processed %d + released %d = %d, want %d",
			processed.Load(), released.Load(), got, n)
	}
	sn := d.Snapshot()
	if sn.Crashes != inj.Stats.Panics.Load() {
		t.Fatalf("crashes = %d, injected panics = %d", sn.Crashes, inj.Stats.Panics.Load())
	}
}

// TestFloodTailDrops: Flood saturates a mailbox; overflow is tail-dropped
// through the release hook, and accepted+dropped covers every payload.
func TestFloodTailDrops(t *testing.T) {
	var released atomic.Int64
	mb := domain.NewMailbox(4, func(int) { released.Add(1) })
	accepted := Flood(mb, 100, func(i int) int { return i })
	if accepted != 4 {
		t.Fatalf("accepted = %d, want 4 (capacity)", accepted)
	}
	if released.Load() != 96 {
		t.Fatalf("released = %d, want 96", released.Load())
	}
	if drops := mb.Stats.Drops.Load(); drops != 96 {
		t.Fatalf("drops = %d, want 96", drops)
	}
	mb.Close()
	accepted2 := Flood(mb, 10, func(i int) int { return i })
	if accepted2 != 0 {
		t.Fatalf("flood into closed mailbox accepted %d", accepted2)
	}
}
