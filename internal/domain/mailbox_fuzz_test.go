package domain

import (
	"errors"
	"testing"

	"repro/internal/linear"
)

// FuzzMailboxOwnership drives a mailbox through an arbitrary operation
// sequence and checks the ownership contract the runtime is built on:
//
//  1. A send is a move — after Send/TrySend returns, success or failure,
//     the sender's handle is dead: not Valid, not movable, not readable.
//  2. Payloads are conserved — every payload ever created is eventually
//     observed exactly once: consumed by a receiver, or destroyed by the
//     mailbox through the release hook (tail drop, post-close send,
//     drain). Nothing leaks, nothing is delivered twice.
//
// Inputs: capacity selector plus one opcode byte per step.
func FuzzMailboxOwnership(f *testing.F) {
	f.Add(uint8(1), []byte{0, 0, 1, 2, 3, 0, 4})             // fill, overflow, recv, close, late send
	f.Add(uint8(4), []byte{0, 0, 0, 0, 0, 2, 2, 2, 2, 2})    // burst then drain by recv
	f.Add(uint8(2), []byte{0, 4, 0, 5})                      // double-send probe, then Drain
	f.Add(uint8(3), []byte{1, 1, 1, 3, 2, 2, 2, 2, 1})       // blocking sends, close, recv backlog
	f.Add(uint8(0), []byte{5, 0, 1, 2})                      // ops after Drain
	f.Fuzz(func(t *testing.T, capSel uint8, ops []byte) {
		capacity := int(capSel%8) + 1
		released := 0
		mb := NewMailbox(capacity, func(int) { released++ })

		created, received := 0, 0
		newPayload := func() linear.Owned[int] {
			created++
			return linear.New(created)
		}
		// checkDead asserts the post-send handle is unobservable.
		checkDead := func(v linear.Owned[int]) {
			t.Helper()
			if v.Valid() {
				t.Fatal("sender handle still Valid after send")
			}
			if _, err := v.Move(); err == nil {
				t.Fatal("sender re-moved a sent payload")
			}
			if err := v.With(func(int) {}); err == nil {
				t.Fatal("sender read a sent payload")
			}
		}

		for _, op := range ops {
			switch op % 6 {
			case 0: // TrySend a fresh payload
				v := newPayload()
				_ = mb.TrySend(v)
				checkDead(v)
			case 1: // Send, guarded so a full open mailbox cannot block forever
				if mb.Depth() < mb.Cap() || mb.Closed() {
					v := newPayload()
					_ = mb.Send(v)
					checkDead(v)
				}
			case 2: // TryRecv; consume what arrives
				if p, ok := mb.TryRecv(); ok {
					if _, err := p.Into(); err != nil {
						t.Fatalf("received payload not owned: %v", err)
					}
					received++
				}
			case 3:
				mb.Close()
			case 4: // double-send: the second send of the same handle must
				// fail with a linearity error and enqueue nothing
				v := newPayload()
				depthAfter := -1
				if err := mb.TrySend(v); err == nil || err == ErrMailboxFull || err == ErrMailboxClosed {
					depthAfter = mb.Depth()
				}
				if err := mb.TrySend(v); !errors.Is(err, linear.ErrMoved) {
					t.Fatalf("double send: got %v, want linear.ErrMoved", err)
				}
				if depthAfter >= 0 && mb.Depth() != depthAfter {
					t.Fatal("double send changed mailbox depth")
				}
			case 5:
				mb.Drain()
			}
		}
		mb.Drain()

		// Conservation: every payload created was consumed by the receiver
		// or destroyed by the mailbox — exactly once.
		if received+released != created {
			t.Fatalf("conservation violated: received %d + released %d != created %d",
				received, released, created)
		}
		if got := int(mb.Stats.Recvs.Load()); got != received {
			t.Fatalf("recv stat %d != received %d", got, received)
		}
	})
}
