package domain

import (
	"errors"
	"testing"

	"repro/internal/linear"
)

// TestMailboxStageClock: the trace hooks fire once per payload on each
// side of the hop — onSend while the sender still owns the payload
// (before enqueue), onRecv at dequeue — on every send/recv variant, and
// never for payloads that were dropped instead of delivered.
func TestMailboxStageClock(t *testing.T) {
	mb := NewMailbox[int](1, nil)
	var sent, recvd []int
	mb.SetStageClock(
		func(v int) { sent = append(sent, v) },
		func(v int) { recvd = append(recvd, v) },
	)

	if err := mb.Send(linear.New(1)); err != nil {
		t.Fatal(err)
	}
	// Full mailbox: TrySend drops the payload. The send hook has already
	// stamped it (the hook runs while the sender owns the payload, before
	// the enqueue decides), but it must never reach the recv side.
	if err := mb.TrySend(linear.New(99)); !errors.Is(err, ErrMailboxFull) {
		t.Fatalf("TrySend on full: %v", err)
	}
	got, err := mb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Into(); v != 1 {
		t.Fatalf("received %d, want 1", v)
	}

	if err := mb.TrySend(linear.New(2)); err != nil {
		t.Fatal(err)
	}
	got2, ok := mb.TryRecv()
	if !ok {
		t.Fatal("TryRecv found nothing")
	}
	if v, _ := got2.Into(); v != 2 {
		t.Fatalf("received %d, want 2", v)
	}

	wantSent := []int{1, 99, 2}
	wantRecvd := []int{1, 2}
	if len(sent) != len(wantSent) {
		t.Fatalf("send hook fired on %v, want %v", sent, wantSent)
	}
	for i := range wantSent {
		if sent[i] != wantSent[i] {
			t.Fatalf("send hook fired on %v, want %v", sent, wantSent)
		}
	}
	if len(recvd) != len(wantRecvd) {
		t.Fatalf("recv hook fired on %v, want %v", recvd, wantRecvd)
	}
	for i := range wantRecvd {
		if recvd[i] != wantRecvd[i] {
			t.Fatalf("recv hook fired on %v, want %v", recvd, wantRecvd)
		}
	}

	// Detaching (both nil) stops the stamping.
	mb.SetStageClock(nil, nil)
	if err := mb.Send(linear.New(3)); err != nil {
		t.Fatal(err)
	}
	got3, err := mb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := got3.Into(); err != nil {
		t.Fatal(err)
	}
	if len(sent) != 3 || len(recvd) != 2 {
		t.Fatalf("hooks fired after detach: sent=%v recvd=%v", sent, recvd)
	}
}
