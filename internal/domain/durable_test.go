package domain

// durable_test.go covers the Policy.Persist path: epochs flow through
// the TokenCodec into a Persister, Spawn seeds from the newest durable
// epoch (the kill -9 half of recovery, minus the kill), persist errors
// stay soft, and states without a codec are rejected up front.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/linear"
)

// durableKV extends the test Stateful with a TokenCodec: the map
// serializes as sorted key/value pairs. encodeErr injects codec
// failures; it is read on the serving goroutine.
type durableKV struct {
	kvState
	encodeErr atomic.Pointer[error]
}

func newDurableKV() *durableKV { return &durableKV{kvState: kvState{m: make(map[string]int)}} }

func (s *durableKV) setEncodeErr(err error) {
	if err == nil {
		s.encodeErr.Store(nil)
		return
	}
	s.encodeErr.Store(&err)
}

func (s *durableKV) EncodeToken(token any) ([]byte, error) {
	if errp := s.encodeErr.Load(); errp != nil {
		return nil, *errp
	}
	snap, ok := token.(*checkpoint.Snapshot)
	if !ok {
		return nil, fmt.Errorf("durableKV: token is %T", token)
	}
	v, err := snap.Materialize()
	if err != nil {
		return nil, err
	}
	img := v.(*kvImage)
	keys := make([]string, 0, len(img.M))
	for k := range img.M {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(img.M[k])))
	}
	return buf, nil
}

func (s *durableKV) DecodeToken(data []byte) (any, error) {
	if len(data) < 4 {
		return nil, errors.New("durableKV: truncated")
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if n > len(data)/10 { // each entry is ≥ 2+0+8 bytes
		return nil, errors.New("durableKV: entry count exceeds payload")
	}
	img := &kvImage{M: make(map[string]int, n)}
	for i := 0; i < n; i++ {
		if len(data) < 2 {
			return nil, errors.New("durableKV: truncated key")
		}
		kl := int(binary.LittleEndian.Uint16(data))
		data = data[2:]
		if len(data) < kl+8 {
			return nil, errors.New("durableKV: truncated entry")
		}
		k := string(data[:kl])
		img.M[k] = int(int64(binary.LittleEndian.Uint64(data[kl:])))
		data = data[kl+8:]
	}
	return checkpoint.NewEngine(checkpoint.RcAware).Checkpoint(img)
}

// memPersister is an in-memory Persister with fault injection.
type memPersister struct {
	mu     sync.Mutex
	epochs map[string]struct {
		seq     uint64
		payload []byte
	}
	persists int
	failNext bool
}

func newMemPersister() *memPersister {
	return &memPersister{epochs: make(map[string]struct {
		seq     uint64
		payload []byte
	})}
}

func (p *memPersister) PersistEpoch(name string, seq uint64, payload []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failNext {
		p.failNext = false
		return errors.New("memPersister: injected failure")
	}
	p.persists++
	p.epochs[name] = struct {
		seq     uint64
		payload []byte
	}{seq, append([]byte(nil), payload...)}
	return nil
}

func (p *memPersister) LastEpoch(name string) ([]byte, uint64, bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.epochs[name]
	if !ok {
		return nil, 0, false, nil
	}
	return append([]byte(nil), e.payload...), e.seq, true, nil
}

func (p *memPersister) lastSeq(name string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epochs[name].seq
}

func durablePolicy(every time.Duration, p Persister) Policy {
	pol := ckptPolicy(every)
	pol.Persist = p
	return pol
}

func spawnDurableKV(t *testing.T, s *Supervisor, st *durableKV) *Domain[int] {
	t.Helper()
	d, err := Spawn(s, Config[int]{
		Name:  "kv",
		State: st,
		Handler: func(c *Ctx, msg linear.Owned[int]) error {
			v, err := msg.Into()
			if err != nil {
				return err
			}
			if v < 0 {
				panic("injected handler crash")
			}
			st.set(fmt.Sprintf("k%d", v), v)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDurableEpochsPersist: published epochs reach the persister with
// monotonic sequence numbers and decodable payloads.
func TestDurableEpochsPersist(t *testing.T) {
	per := newMemPersister()
	sup := NewSupervisor(durablePolicy(2*time.Millisecond, per))
	defer sup.Close()
	st := newDurableKV()
	d := spawnDurableKV(t, sup, st)

	if err := d.Inbox().Send(linear.New(7)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "persisted epoch", func() bool {
		sn := d.Snapshot()
		return sn.Persisted >= 2 && per.lastSeq("kv") >= 2
	})
	sn := d.Snapshot()
	if sn.PersistFailures != 0 {
		t.Fatalf("persist failures: %d", sn.PersistFailures)
	}
	payload, seq, ok, err := per.LastEpoch("kv")
	if err != nil || !ok || seq == 0 {
		t.Fatalf("LastEpoch: seq=%d ok=%v err=%v", seq, ok, err)
	}
	token, err := st.DecodeToken(payload)
	if err != nil {
		t.Fatalf("decode persisted payload: %v", err)
	}
	fresh := newDurableKV()
	if err := fresh.Restore(token); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if v, ok := fresh.get("k7"); !ok || v != 7 {
		t.Fatalf("persisted epoch lacks k7: (%d, %v)", v, ok)
	}
}

// TestDurableBootRestore: a new supervisor (process restart stand-in)
// spawning the same domain name restores the durable epoch — state
// back, restore counted, zero cold starts, sequence continues.
func TestDurableBootRestore(t *testing.T) {
	per := newMemPersister()
	// "First process": run, mutate, persist, close.
	sup1 := NewSupervisor(durablePolicy(2*time.Millisecond, per))
	st1 := newDurableKV()
	d1 := spawnDurableKV(t, sup1, st1)
	if err := d1.Inbox().Send(linear.New(42)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first-life epoch", func() bool { return d1.Snapshot().Persisted >= 1 })
	firstSeq := per.lastSeq("kv")
	sup1.Close()

	// "Second process": same name, same persister, fresh everything.
	sup2 := NewSupervisor(durablePolicy(2*time.Millisecond, per))
	defer sup2.Close()
	st2 := newDurableKV()
	d2 := spawnDurableKV(t, sup2, st2)
	if v, ok := st2.get("k42"); !ok || v != 42 {
		t.Fatalf("boot restore missed k42: (%d, %v)", v, ok)
	}
	sn := d2.Snapshot()
	if sn.Restores != 1 || sn.ColdStarts != 0 {
		t.Fatalf("restores=%d coldStarts=%d, want 1/0", sn.Restores, sn.ColdStarts)
	}
	// Sequence continuity: the next persisted epoch outranks the first
	// life's newest.
	if err := d2.Inbox().Send(linear.New(43)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "second-life epoch", func() bool { return per.lastSeq("kv") > firstSeq })

	// And a mid-life crash restores the boot-seeded token even before
	// any new epoch completes (the durable epoch is the last-good).
	sup3 := NewSupervisor(durablePolicy(time.Hour, per))
	defer sup3.Close()
	st3 := newDurableKV()
	d3 := spawnDurableKV(t, sup3, st3)
	if err := d3.Inbox().Send(linear.New(-1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "crash restore from durable token", func() bool { return d3.Snapshot().Restores >= 2 })
	if d3.Snapshot().ColdStarts != 0 {
		t.Fatal("cold start despite a durable epoch")
	}
}

// TestDurablePersistErrorIsSoft: a failing persister costs durability
// lag, never service — the RAM epoch stands and later epochs persist.
func TestDurablePersistErrorIsSoft(t *testing.T) {
	per := newMemPersister()
	per.failNext = true
	sup := NewSupervisor(durablePolicy(2*time.Millisecond, per))
	defer sup.Close()
	st := newDurableKV()
	d := spawnDurableKV(t, sup, st)
	if err := d.Inbox().Send(linear.New(1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "failure counted and service continues", func() bool {
		sn := d.Snapshot()
		return sn.PersistFailures >= 1 && sn.Persisted >= 1
	})
	if d.State() != StateLive {
		t.Fatalf("domain state %v after soft persist failure", d.State())
	}
}

// TestDurableEncodeErrorIsSoft: same contract for codec failures.
func TestDurableEncodeErrorIsSoft(t *testing.T) {
	per := newMemPersister()
	sup := NewSupervisor(durablePolicy(2*time.Millisecond, per))
	defer sup.Close()
	st := newDurableKV()
	st.setEncodeErr(errors.New("injected encode failure"))
	d := spawnDurableKV(t, sup, st)
	waitFor(t, "encode failure counted", func() bool { return d.Snapshot().PersistFailures >= 1 })
	if d.Snapshot().Persisted != 0 {
		t.Fatal("persisted despite encode failure")
	}
	st.setEncodeErr(nil)
	waitFor(t, "recovery after encode failures", func() bool { return d.Snapshot().Persisted >= 1 })
}

// TestDurableRequiresCodec: Persist with a codec-less State is a Spawn
// error, not a latent runtime surprise.
func TestDurableRequiresCodec(t *testing.T) {
	per := newMemPersister()
	sup := NewSupervisor(durablePolicy(2*time.Millisecond, per))
	defer sup.Close()
	_, err := Spawn(sup, Config[int]{
		Name:    "bare",
		State:   newKVState(), // no TokenCodec
		Handler: func(c *Ctx, msg linear.Owned[int]) error { _, e := msg.Into(); return e },
	})
	if err == nil || !strings.Contains(err.Error(), "TokenCodec") {
		t.Fatalf("Spawn = %v, want TokenCodec error", err)
	}
}

// TestDurableBadPayloadFailsSpawn: an undecodable durable epoch is a
// Spawn error (misconfiguration), not a silent cold start.
func TestDurableBadPayloadFailsSpawn(t *testing.T) {
	per := newMemPersister()
	per.epochs["kv"] = struct {
		seq     uint64
		payload []byte
	}{3, []byte("garbage")}
	sup := NewSupervisor(durablePolicy(2*time.Millisecond, per))
	defer sup.Close()
	_, err := Spawn(sup, Config[int]{
		Name:    "kv",
		State:   newDurableKV(),
		Handler: func(c *Ctx, msg linear.Owned[int]) error { _, e := msg.Into(); return e },
	})
	if err == nil || !strings.Contains(err.Error(), "decode durable epoch") {
		t.Fatalf("Spawn = %v, want decode error", err)
	}
}

// TestStateSetTokenRoundTrip: the composite codec length-prefixes each
// part and rejects shape mismatches.
func TestStateSetTokenRoundTrip(t *testing.T) {
	a, b := newDurableKV(), newDurableKV()
	a.set("alpha", 1)
	b.set("bravo", 2)
	set := NewStateSet().Add("a", a).Add("b", b)
	token, err := set.Checkpoint(checkpoint.NewEngine(checkpoint.RcAware))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := set.EncodeToken(token)
	if err != nil {
		t.Fatal(err)
	}

	a2, b2 := newDurableKV(), newDurableKV()
	set2 := NewStateSet().Add("a", a2).Add("b", b2)
	token2, err := set2.DecodeToken(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := set2.Restore(token2); err != nil {
		t.Fatal(err)
	}
	if v, ok := a2.get("alpha"); !ok || v != 1 {
		t.Fatalf("part a: (%d, %v)", v, ok)
	}
	if v, ok := b2.get("bravo"); !ok || v != 2 {
		t.Fatalf("part b: (%d, %v)", v, ok)
	}

	// Shape mismatches are errors.
	short := NewStateSet().Add("a", newDurableKV())
	if _, err := short.DecodeToken(payload); err == nil {
		t.Fatal("part-count mismatch accepted")
	}
	if _, err := set2.DecodeToken(payload[:len(payload)-1]); err == nil {
		t.Fatal("truncated composite accepted")
	}
	if _, err := set2.DecodeToken(append(append([]byte(nil), payload...), 0xff)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	mixed := NewStateSet().Add("a", newDurableKV()).Add("plain", newKVState())
	if _, err := mixed.EncodeToken([]any{nil, nil}); err == nil {
		t.Fatal("codec-less part accepted in encode")
	}
	if _, err := mixed.DecodeToken(payload); err == nil {
		t.Fatal("codec-less part accepted in decode")
	}
}
