package domain

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/linear"
	"repro/internal/telemetry"
)

// Errors returned by mailbox operations.
var (
	// ErrMailboxClosed reports a send to (or receive from a drained)
	// closed mailbox.
	ErrMailboxClosed = errors.New("domain: mailbox closed")
	// ErrMailboxFull reports a TrySend that found no free slot; the
	// payload has been released (tail drop), not returned.
	ErrMailboxFull = errors.New("domain: mailbox full")
)

// MailboxStats holds a mailbox's counters — telemetry cells updated
// atomically so supervisors and metric scrapes can read them while
// traffic flows.
type MailboxStats struct {
	Sends telemetry.Counter // payloads successfully enqueued
	Recvs telemetry.Counter // payloads successfully dequeued
	Drops telemetry.Counter // payloads destroyed by the mailbox (full or closed)
}

// Mailbox is the zero-copy channel between protection-domain goroutines:
// a bounded queue of linear.Owned payloads. A send is an ownership move —
// the sender's handle is invalidated before the payload is enqueued, so
// no window exists in which both sides can touch the value — mirroring
// the rref ownership-transfer calls of the synchronous SFI layer
// (sfi.CallMove) in an asynchronous setting.
//
// The move is unconditional: every send consumes the caller's handle,
// success or not. When the mailbox cannot accept the payload (TrySend on
// a full queue, any send after Close), it destroys the payload through
// the release hook instead of handing it back, the way a NIC tail-drops a
// frame when the descriptor ring is full. This keeps the ownership story
// one-directional — after Send/TrySend returns, the sender provably has
// nothing — which is the invariant the fuzz harness checks.
type Mailbox[T any] struct {
	ch      chan linear.Owned[T]
	done    chan struct{}
	closed  atomic.Bool
	release func(T)

	// rec, when non-nil, receives a flight-recorder event per payload
	// movement (send, receive, tail-drop). Set once via Observe before
	// traffic starts.
	rec   *telemetry.Recorder
	actor telemetry.ActorID

	// clock is the optional stage clock (SetStageClock): per-payload
	// hooks bracketing the queueing delay across the domain boundary.
	// An atomic pointer so attaching after Spawn cannot race the
	// serving goroutine's receives.
	clock atomic.Pointer[stageClock[T]]

	// Stats is exported for the management plane.
	Stats MailboxStats
}

// stageClock carries the mailbox's trace-stamping hooks. onSend runs
// while the sender still owns the payload, immediately before enqueue;
// onRecv runs as the receiver dequeues. Either may be nil.
type stageClock[T any] struct {
	onSend func(T)
	onRecv func(T)
}

// SetStageClock attaches per-payload tracing hooks: onSend fires just
// before a payload is enqueued (sender's goroutine, payload borrowed
// under the linear cell), onRecv just after it is dequeued (receiver's
// goroutine). The sampled packet tracer uses these to stamp the
// mailbox-send/mailbox-recv trace stages; the segment between them is
// the batch's queueing delay across the protection-domain boundary.
// Safe to call while the mailbox carries traffic; nil hooks detach.
func (m *Mailbox[T]) SetStageClock(onSend, onRecv func(T)) {
	if onSend == nil && onRecv == nil {
		m.clock.Store(nil)
		return
	}
	m.clock.Store(&stageClock[T]{onSend: onSend, onRecv: onRecv})
}

// clockSend runs the send hook on a payload the caller still owns.
func (m *Mailbox[T]) clockSend(p linear.Owned[T]) {
	if c := m.clock.Load(); c != nil && c.onSend != nil {
		_ = p.With(func(v T) { c.onSend(v) })
	}
}

// Observe attaches a flight recorder to the mailbox: every send,
// receive, and drop is recorded under actor. Call before the mailbox
// carries traffic; the zero state records nothing.
func (m *Mailbox[T]) Observe(rec *telemetry.Recorder, actor telemetry.ActorID) {
	m.rec = rec
	m.actor = actor
}

// noteSend and noteRecv bump the counters and drop a flight-recorder
// event carrying the queue depth after the move (both no-ops on the
// recorder side when none is attached).
func (m *Mailbox[T]) noteSend() {
	m.Stats.Sends.Add(1)
	m.rec.Record(m.actor, telemetry.EvSend, uint64(len(m.ch)))
}

func (m *Mailbox[T]) noteRecv() {
	m.Stats.Recvs.Add(1)
	m.rec.Record(m.actor, telemetry.EvRecv, uint64(len(m.ch)))
}

// received accounts one successful dequeue: counters, flight-recorder
// event, and the stage clock's recv hook. Every dequeue site funnels
// through it so the hooks can never miss a delivery path.
func (m *Mailbox[T]) received(p linear.Owned[T]) linear.Owned[T] {
	m.noteRecv()
	if c := m.clock.Load(); c != nil && c.onRecv != nil {
		_ = p.With(func(v T) { c.onRecv(v) })
	}
	return p
}

// NewMailbox creates a mailbox holding at most capacity payloads
// (minimum 1). release, when non-nil, is invoked for every payload the
// mailbox destroys — dropped sends and messages left queued at Drain —
// so resources inside payloads (pool buffers) can be reclaimed.
func NewMailbox[T any](capacity int, release func(T)) *Mailbox[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Mailbox[T]{
		ch:      make(chan linear.Owned[T], capacity),
		done:    make(chan struct{}),
		release: release,
	}
}

// Cap reports the mailbox capacity.
func (m *Mailbox[T]) Cap() int { return cap(m.ch) }

// Depth reports the number of queued payloads.
func (m *Mailbox[T]) Depth() int { return len(m.ch) }

// Closed reports whether Close has been called.
func (m *Mailbox[T]) Closed() bool { return m.closed.Load() }

// destroy releases a payload the mailbox owns and will not deliver.
func (m *Mailbox[T]) destroy(p linear.Owned[T]) {
	m.Stats.Drops.Add(1)
	m.rec.Record(m.actor, telemetry.EvDrop, uint64(len(m.ch)))
	if m.release != nil {
		if v, err := p.Into(); err == nil {
			m.release(v)
			return
		}
	}
	_ = p.Drop()
}

// Send moves v into the mailbox, blocking while it is full. The caller's
// handle dies before enqueue. A send on a closed mailbox destroys the
// payload and returns ErrMailboxClosed.
func (m *Mailbox[T]) Send(v linear.Owned[T]) error {
	moved, err := v.Move() // sender loses access here, unconditionally
	if err != nil {
		return err
	}
	if m.closed.Load() {
		m.destroy(moved)
		return ErrMailboxClosed
	}
	// The stage clock's send hook runs here, while this goroutine still
	// owns the payload — after enqueue the receiver may already have it.
	m.clockSend(moved)
	select {
	case m.ch <- moved:
		m.noteSend()
		return nil
	case <-m.done:
		m.destroy(moved)
		return ErrMailboxClosed
	}
}

// TrySend is Send without blocking: a full mailbox tail-drops the payload
// (released via the hook, counted in Stats.Drops) and returns
// ErrMailboxFull. Feeders under backpressure use this so a domain sitting
// in restart backoff sheds load instead of stalling the traffic source.
func (m *Mailbox[T]) TrySend(v linear.Owned[T]) error {
	moved, err := v.Move()
	if err != nil {
		return err
	}
	if m.closed.Load() {
		m.destroy(moved)
		return ErrMailboxClosed
	}
	m.clockSend(moved)
	select {
	case m.ch <- moved:
		m.noteSend()
		return nil
	case <-m.done:
		m.destroy(moved)
		return ErrMailboxClosed
	default:
		m.destroy(moved)
		return ErrMailboxFull
	}
}

// Recv dequeues the next payload, blocking until one arrives or the
// mailbox is closed. Payloads already queued at close time are still
// delivered; ErrMailboxClosed means closed and drained.
func (m *Mailbox[T]) Recv() (linear.Owned[T], error) {
	// Favor queued payloads over the closed signal so a receiver drains
	// the backlog before observing the close.
	select {
	case p := <-m.ch:
		return m.received(p), nil
	default:
	}
	select {
	case p := <-m.ch:
		return m.received(p), nil
	case <-m.done:
		// One more non-blocking look: a payload may have been enqueued
		// concurrently with Close.
		select {
		case p := <-m.ch:
			return m.received(p), nil
		default:
			return linear.Owned[T]{}, ErrMailboxClosed
		}
	}
}

// recv is Recv with a supersession signal: quit aborts an idle wait with
// errSuperseded so a retired serving generation stops competing for
// payloads. A payload already queued can still win the race against
// quit — the caller owns (and must account for) that final delivery.
func (m *Mailbox[T]) recv(quit <-chan struct{}) (linear.Owned[T], error) {
	return m.recvOrTick(quit, nil)
}

// recvOrTick is recv with a checkpoint wakeup: when tick fires while the
// queue is empty it returns errCheckpointDue, handing the serving loop a
// mailbox-quiescent instant to snapshot at. A nil tick never fires.
// Queued payloads always win over the tick, so checkpointing never
// delays delivery.
func (m *Mailbox[T]) recvOrTick(quit <-chan struct{}, tick <-chan time.Time) (linear.Owned[T], error) {
	select {
	case p := <-m.ch:
		return m.received(p), nil
	default:
	}
	select {
	case p := <-m.ch:
		return m.received(p), nil
	case <-tick:
		return linear.Owned[T]{}, errCheckpointDue
	case <-quit:
		return linear.Owned[T]{}, errSuperseded
	case <-m.done:
		select {
		case p := <-m.ch:
			return m.received(p), nil
		default:
			return linear.Owned[T]{}, ErrMailboxClosed
		}
	}
}

// TryRecv dequeues without blocking; ok=false means the queue was empty.
func (m *Mailbox[T]) TryRecv() (linear.Owned[T], bool) {
	select {
	case p := <-m.ch:
		return m.received(p), true
	default:
		return linear.Owned[T]{}, false
	}
}

// Close stops the mailbox: subsequent sends fail (destroying their
// payloads); queued payloads remain receivable. Closing twice is a no-op.
func (m *Mailbox[T]) Close() {
	if m.closed.CompareAndSwap(false, true) {
		close(m.done)
	}
}

// Drain closes the mailbox and destroys every queued payload through the
// release hook. Supervisors call it when retiring a domain for good, so
// pool accounting balances even for work that was never processed. It
// returns the number of payloads destroyed.
func (m *Mailbox[T]) Drain() int {
	m.Close()
	n := 0
	for {
		select {
		case p := <-m.ch:
			m.destroy(p)
			n++
		default:
			return n
		}
	}
}
