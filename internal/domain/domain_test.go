package domain

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/linear"
	"repro/internal/sfi"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// fastPolicy keeps restart cycles microscopic so tests run in
// milliseconds.
func fastPolicy() Policy {
	return Policy{Backoff: 50 * time.Microsecond, MaxBackoff: time.Millisecond, MaxRestarts: -1}
}

// TestDomainServes: payloads sent into the inbox reach the handler as
// owned values, in order.
func TestDomainServes(t *testing.T) {
	s := NewSupervisor(fastPolicy())
	defer s.Close()
	var got atomic.Int64
	d, err := Spawn(s, Config[int]{
		Name: "svc",
		Handler: func(c *Ctx, msg linear.Owned[int]) error {
			v, err := msg.Into()
			if err != nil {
				return err
			}
			got.Add(int64(v))
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := d.Inbox().Send(linear.New(i)); err != nil {
			t.Fatal(err)
		}
	}
	d.Inbox().Close()
	<-d.Done()
	if got.Load() != 55 {
		t.Fatalf("sum = %d, want 55", got.Load())
	}
	sn := d.Snapshot()
	if sn.Processed != 10 || sn.Crashes != 0 || sn.State != StateStopped {
		t.Fatalf("snapshot %+v", sn)
	}
}

// TestDomainCrashRestart: a panicking handler is caught at the entry
// point, the payload is reclaimed through Release, the sfi reference
// table is cleared, and after restart the domain keeps serving — the §3
// cycle run as a service.
func TestDomainCrashRestart(t *testing.T) {
	s := NewSupervisor(fastPolicy())
	defer s.Close()
	var processed, released, recovered atomic.Int64
	d, err := Spawn(s, Config[int]{
		Name:    "crashy",
		Release: func(int) { released.Add(1) },
		Recover: func() error { recovered.Add(1); return nil },
		Handler: func(c *Ctx, msg linear.Owned[int]) error {
			v, _ := msg.Borrow()
			crash := v.Value() < 0
			_ = v.Release()
			if crash {
				panic("injected")
			}
			if _, err := msg.Into(); err != nil {
				return err
			}
			processed.Add(1)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Inbox().Send(linear.New(1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Inbox().Send(linear.New(-1)); err != nil { // crash, payload abandoned
		t.Fatal(err)
	}
	if err := d.Inbox().Send(linear.New(2)); err != nil { // served post-restart
		t.Fatal(err)
	}
	waitFor(t, "post-restart processing", func() bool { return processed.Load() == 2 })
	if released.Load() != 1 {
		t.Fatalf("abandoned payload released %d times, want 1", released.Load())
	}
	if recovered.Load() != 1 {
		t.Fatalf("user recovery ran %d times, want 1", recovered.Load())
	}
	sn := d.Snapshot()
	if sn.Crashes != 1 || sn.Restarts != 1 || sn.Reclaimed != 1 {
		t.Fatalf("snapshot %+v", sn)
	}
	if sn.TimeInBackoff <= 0 {
		t.Fatal("no backoff recorded")
	}
}

// TestDomainErrorIsFault: a handler error return is a fault — same
// restart path as a panic.
func TestDomainErrorIsFault(t *testing.T) {
	s := NewSupervisor(fastPolicy())
	defer s.Close()
	var calls atomic.Int64
	d, err := Spawn(s, Config[int]{
		Handler: func(c *Ctx, msg linear.Owned[int]) error {
			if calls.Add(1) == 1 {
				return errors.New("transient")
			}
			_, err := msg.Into()
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = d.Inbox().Send(linear.New(1))
	_ = d.Inbox().Send(linear.New(2))
	waitFor(t, "restart after error", func() bool {
		sn := d.Snapshot()
		return sn.Errors == 1 && sn.Restarts >= 1 && sn.Processed == 1
	})
}

// TestDomainRRefsFailClosedAcrossCrash drives the paper's recovery
// contract through the supervisor: state exported into the domain's
// protection domain is revoked by the crash (outstanding RRefs fail
// closed) and transparently re-bound after the supervisor recovers the
// domain via the sfi recovery function.
func TestDomainRRefsFailClosedAcrossCrash(t *testing.T) {
	s := NewSupervisor(fastPolicy())
	defer s.Close()

	type counter struct{ n int }
	var rref *sfi.RRef[*counter]
	d, err := Spawn(s, Config[int]{
		Name: "stateful",
		Handler: func(c *Ctx, msg linear.Owned[int]) error {
			v, err := msg.Into()
			if err != nil {
				return err
			}
			if v < 0 {
				panic("injected")
			}
			return rref.Call(c.SFI, "incr", func(ct *counter) error { ct.n++; return nil })
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rref, err = sfi.Export(d.PD(), &counter{})
	if err != nil {
		t.Fatal(err)
	}
	slot := rref.Slot()
	d.PD().SetRecovery(func(pd *sfi.Domain) error {
		return sfi.ExportAt(pd, slot, &counter{}) // fresh state, same slot
	})

	if err := d.Inbox().Send(linear.New(1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first increment", func() bool { return d.Snapshot().Processed == 1 })

	_ = d.Inbox().Send(linear.New(-1)) // crash
	waitFor(t, "crash detected", func() bool { return d.Snapshot().Crashes == 1 })

	// Between teardown and recovery the RRef fails closed.
	root := sfi.NewContext()
	if d.PD().Failed() {
		if err := rref.Call(root, "peek", func(*counter) error { return nil }); err == nil {
			t.Fatal("RRef still served after crash teardown")
		}
	}

	// After the supervisor restarts the domain, the same RRef re-binds to
	// the re-populated slot.
	_ = d.Inbox().Send(linear.New(2))
	waitFor(t, "post-recovery increment", func() bool { return d.Snapshot().Processed == 2 })
	n, err := sfi.CallResult(root, rref, "peek", func(ct *counter) (int, error) { return ct.n, nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered counter = %d, want 1 (fresh state + one post-recovery call)", n)
	}
}

// TestDomainDegradeToFallback: exhausting the restart budget swaps in the
// fallback handler instead of stopping.
func TestDomainDegradeToFallback(t *testing.T) {
	p := fastPolicy()
	p.MaxRestarts = 2
	s := NewSupervisor(p)
	defer s.Close()
	var fallback atomic.Int64
	d, err := Spawn(s, Config[int]{
		Handler: func(c *Ctx, msg linear.Owned[int]) error {
			panic("always")
		},
		Fallback: func(c *Ctx, msg linear.Owned[int]) error {
			_, err := msg.Into()
			fallback.Add(1)
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; i < 100; i++ {
			if d.Inbox().Send(linear.New(i)) != nil {
				return
			}
		}
	}()
	waitFor(t, "degrade to fallback", func() bool {
		sn := d.Snapshot()
		return sn.Degraded && fallback.Load() > 0
	})
	if sn := d.Snapshot(); sn.Crashes != 3 { // MaxRestarts=2 → third crash degrades
		t.Fatalf("crashes = %d, want 3", sn.Crashes)
	}
}

// TestDomainStopsWithoutFallback: restart budget exhausted, no fallback —
// the domain stops, its backlog is destroyed through Release, Done
// closes.
func TestDomainStopsWithoutFallback(t *testing.T) {
	p := fastPolicy()
	p.MaxRestarts = 1
	s := NewSupervisor(p)
	defer s.Close()
	var released atomic.Int64
	d, err := Spawn(s, Config[int]{
		Mailbox: 64,
		Release: func(int) { released.Add(1) },
		Handler: func(c *Ctx, msg linear.Owned[int]) error { panic("always") },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := d.Inbox().Send(linear.New(i)); err != nil {
			break
		}
	}
	select {
	case <-d.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("domain did not stop")
	}
	if d.State() != StateStopped {
		t.Fatalf("state = %v, want stopped", d.State())
	}
	// Every payload is accounted for: 2 reclaimed at the entry point by
	// the two crashes, the backlog destroyed at stop.
	waitFor(t, "all payloads released", func() bool { return released.Load() == 10 })
	if err := d.Inbox().Send(linear.New(99)); !errors.Is(err, ErrMailboxClosed) {
		t.Fatalf("send after stop: %v, want ErrMailboxClosed", err)
	}
}

// TestDomainHangAbandonment: a handler stall beyond HangAfter is
// detected by heartbeat, the stuck goroutine superseded, and a
// replacement serves the next payload; the stalled invocation's late
// completion is still counted (payload conservation: every received
// payload is processed or released exactly once) but triggers no
// further lifecycle activity.
func TestDomainHangAbandonment(t *testing.T) {
	p := fastPolicy()
	p.HangAfter = 5 * time.Millisecond
	p.Tick = time.Millisecond
	s := NewSupervisor(p)
	defer s.Close()
	stall := make(chan struct{})
	var processed atomic.Int64
	d, err := Spawn(s, Config[int]{
		Name: "staller",
		Handler: func(c *Ctx, msg linear.Owned[int]) error {
			v, err := msg.Into()
			if err != nil {
				return err
			}
			if v < 0 {
				<-stall // hang until the test releases it
				return nil
			}
			processed.Add(1)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = d.Inbox().Send(linear.New(-1)) // hangs
	waitFor(t, "hang detection", func() bool { return d.Snapshot().Hangs == 1 })
	_ = d.Inbox().Send(linear.New(1)) // served by the replacement
	waitFor(t, "replacement serving", func() bool { return processed.Load() == 1 })
	close(stall) // let the abandoned goroutine finish and exit
	waitFor(t, "restart accounting", func() bool {
		sn := d.Snapshot()
		return sn.Hangs == 1 && sn.Restarts >= 1
	})
	// The abandoned invocation's late completion is counted exactly once:
	// 2 payloads received, 2 processed, nothing lost or double-counted.
	waitFor(t, "late completion counted", func() bool { return d.Snapshot().Processed == 2 })
}

// TestSpawnValidation covers config errors.
func TestSpawnValidation(t *testing.T) {
	s := NewSupervisor(Policy{})
	if _, err := Spawn[int](s, Config[int]{}); err == nil {
		t.Fatal("Spawn without handler succeeded")
	}
	s.Close()
	if _, err := Spawn(s, Config[int]{Handler: func(*Ctx, linear.Owned[int]) error { return nil }}); !errors.Is(err, ErrSupervisorClosed) {
		t.Fatalf("Spawn on closed supervisor: %v", err)
	}
}

// TestStateString pins the state labels used in snapshots.
func TestStateString(t *testing.T) {
	for s, want := range map[State]string{StateLive: "live", StateBackoff: "backoff", StateStopped: "stopped", State(9): "state(9)"} {
		if got := s.String(); got != want {
			t.Fatalf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
	_ = fmt.Sprintf("%v", StateLive)
}
