package domain

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/linear"
	"repro/internal/mempool"
	"repro/internal/telemetry"
)

// TestFlightRecorderChaos drives 8 supervised domains under sustained
// fault injection with a shared registry and flight recorder attached,
// and checks the observability contract end to end:
//
//   - the recorder captures the full lifecycle — payload movement,
//     faults, backoffs, restarts, and the degrade/stop that ends a
//     restart budget;
//   - the OnDegrade hook fires with a dump when a budget runs out;
//   - the registry serves every domain's counters mid-chaos;
//   - recording never pins a linear.Owned payload: every pooled buffer
//     is back by test end (leakcheck.Pool) even though payloads crashed
//     mid-handler with recorder events in flight. The structural half of
//     that argument — the ring slot type cannot hold a pointer — is
//     leakcheck.NoPointers in package telemetry's tests.
func TestFlightRecorderChaos(t *testing.T) {
	pool := mempool.NewPool(512, func() *[64]byte { return new([64]byte) })
	leakcheck.Pool(t, "chaos payloads", pool.Available)

	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(1024)
	var mu sync.Mutex
	degraded := make(map[string]int) // domain name -> dump length

	p := fastPolicy()
	p.MaxRestarts = 3
	p.Registry = reg
	p.Recorder = rec
	p.OnDegrade = func(name string, events []telemetry.Event) {
		mu.Lock()
		degraded[name] = len(events)
		mu.Unlock()
	}
	s := NewSupervisor(p)
	defer s.Close()

	const (
		domains  = 8
		perDom   = 60
		failFrom = 6 // domains 0 and 1 fault on every payload from here on
	)
	doms := make([]*Domain[*[64]byte], domains)
	for i := 0; i < domains; i++ {
		i := i
		seen := 0
		cfg := Config[*[64]byte]{
			Name:    fmt.Sprintf("chaos-%d", i),
			Mailbox: 4,
			Release: func(b *[64]byte) { pool.Put(b) },
			Handler: func(c *Ctx, msg linear.Owned[*[64]byte]) error {
				seen++
				if i < 2 && seen >= failFrom {
					// Permanent failure: the streak exhausts the budget.
					// Crashing with the payload still owned exercises the
					// entry-point reclaim under recorder traffic.
					panic("chaos: permanent fault")
				}
				b, err := msg.Into()
				if err != nil {
					return err
				}
				pool.Put(b)
				if seen%7 == 0 {
					return fmt.Errorf("chaos: transient fault")
				}
				return nil
			},
		}
		if i == 0 {
			// Domain 0 degrades to a fallback; domain 1 (no fallback) stops.
			cfg.Fallback = func(c *Ctx, msg linear.Owned[*[64]byte]) error {
				if b, err := msg.Into(); err == nil {
					pool.Put(b)
				}
				return nil
			}
		}
		d, err := Spawn(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		doms[i] = d
	}

	var wg sync.WaitGroup
	for _, d := range doms {
		wg.Add(1)
		go func(d *Domain[*[64]byte]) {
			defer wg.Done()
			for n := 0; n < perDom; n++ {
				b, err := pool.Get()
				if err != nil {
					time.Sleep(100 * time.Microsecond)
					continue
				}
				_ = d.Inbox().Send(linear.New(b)) // a failed send released b
			}
		}(d)
	}
	wg.Wait()

	waitFor(t, "budget exhaustion on both failing domains", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(degraded) >= 2 && doms[1].State() == StateStopped
	})
	mu.Lock()
	for name, n := range degraded {
		if n == 0 {
			t.Errorf("OnDegrade(%s) received an empty flight-recorder dump", name)
		}
	}
	mu.Unlock()
	if !doms[0].Snapshot().Degraded {
		t.Error("domain 0 should be serving through its fallback")
	}

	// The recorder saw the whole taxonomy.
	kinds := map[telemetry.EventKind]bool{}
	for _, ev := range rec.Dump() {
		kinds[ev.Kind] = true
	}
	for _, want := range []telemetry.EventKind{
		telemetry.EvSend, telemetry.EvRecv, telemetry.EvPanic,
		telemetry.EvBackoff, telemetry.EvRestart, telemetry.EvDegrade, telemetry.EvStop,
	} {
		if !kinds[want] {
			t.Errorf("flight recorder captured no %v event", want)
		}
	}

	// The registry scrapes mid-chaos with every domain's series present.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < domains; i++ {
		series := fmt.Sprintf(`domain_processed_total{domain="chaos-%d"}`, i)
		if !strings.Contains(buf.String(), series) {
			t.Errorf("scrape is missing %s", series)
		}
	}

	// Settle: close inboxes so Close's drain has nothing racing it, then
	// let leakcheck verify the pool balanced.
	for _, d := range doms {
		d.Inbox().Close()
	}
	s.Close()
}
