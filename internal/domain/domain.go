// Package domain provides a supervised protection-domain runtime on top
// of the sfi and linear layers: long-lived goroutines ("domains"), each
// owning an sfi protection domain and a handler, exchanging work through
// zero-copy mailboxes of linearly owned payloads.
//
// The paper's §3 recovery story — unwind to the domain entry point, clear
// the reference table, run a user recovery function — is exercised by the
// sfi package inside a single synchronous call. This package keeps a
// faulted domain alive *as a service* under sustained traffic: a
// Supervisor detects faults (handler panics and errors, caught at the
// domain entry point) and hangs (per-domain heartbeats), tears the
// domain's sfi reference table down (sfi.Domain.Reset), and restarts the
// domain under a configurable policy — one-for-one or one-for-all,
// exponential backoff with jitter, max-restarts-then-degrade to a user
// fallback handler. Every transition is counted in per-domain atomic
// stats exposed via Snapshot, the same contract netbricks.ShardedRunner
// uses for its workers.
//
// Ownership is the safety argument throughout, exactly as in the
// synchronous case: a payload is owned by exactly one side of a mailbox
// at any instant (a send is a move), and a payload abandoned by a
// crashing handler is reclaimed by the domain runtime at the entry point,
// so no buffer leaks across a fault.
package domain

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/linear"
	"repro/internal/sfi"
	"repro/internal/telemetry"
)

// ErrCrashed wraps a handler panic caught at the domain entry point.
var ErrCrashed = errors.New("domain: handler crashed")

// errSuperseded is the internal signal that a serving generation has been
// retired while idle; the goroutine exits without touching domain state.
var errSuperseded = errors.New("domain: serving generation superseded")

// errCheckpointDue is the internal signal that the checkpoint ticker
// fired while the inbox was empty — a provably quiescent snapshot point.
var errCheckpointDue = errors.New("domain: checkpoint epoch due")

// State is a domain's lifecycle state.
type State int32

// Domain lifecycle states.
const (
	// StateLive: the domain's goroutine is serving its mailbox.
	StateLive State = iota
	// StateBackoff: the domain faulted and is waiting out its restart
	// backoff; the mailbox keeps absorbing (and, when full, shedding)
	// traffic.
	StateBackoff
	// StateStopped: the domain has exited for good — inbox closed and
	// drained, or restarts exhausted with no fallback handler.
	StateStopped
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateLive:
		return "live"
	case StateBackoff:
		return "backoff"
	case StateStopped:
		return "stopped"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Ctx is the per-invocation context handed to handlers: the worker's
// sfi.Context (the explicit stand-in for thread-local current-domain
// storage) and the domain's sfi protection domain, into which handlers
// may export state via sfi.Export/ExportAt.
type Ctx struct {
	SFI *sfi.Context
	PD  *sfi.Domain
}

// Handler processes one payload. The payload arrives owned: the handler
// may move it onward (e.g. into another domain's mailbox), consume it
// with Into, or leave it untouched — a payload still live when a fault
// unwinds to the entry point is reclaimed by the runtime through the
// Release hook. A returned error is a fault: the supervisor tears the
// domain down and applies the restart policy, exactly as for a panic.
// Handlers that can tolerate an error must absorb it themselves.
type Handler[T any] func(c *Ctx, msg linear.Owned[T]) error

// Config parameterizes a supervised domain.
type Config[T any] struct {
	// Name labels the domain in snapshots and errors.
	Name string
	// Mailbox is the inbox capacity (default 8).
	Mailbox int
	// Handler serves the inbox. Required.
	Handler Handler[T]
	// Fallback, when non-nil, replaces Handler after the restart budget
	// is exhausted (degraded mode) instead of stopping the domain.
	Fallback Handler[T]
	// Release reclaims resources inside a payload the runtime destroys:
	// mailbox tail drops, backlog drained at stop, and payloads
	// abandoned by a crashing handler.
	Release func(T)
	// Recover reinitializes handler state from clean after a fault,
	// before the restarted domain serves again — the §3 user recovery
	// function. The domain's sfi reference table has already been
	// cleared and re-opened (Manager.Recover) when it runs. A Recover
	// error counts as another fault.
	Recover func() error
	// State, when non-nil and Policy.CheckpointEvery > 0, opts the
	// domain into checkpointed recovery (§5): the serving goroutine
	// snapshots it every checkpoint epoch at mailbox-quiescent points,
	// and a restart restores the last good snapshot (after Recover has
	// rebuilt the handler plumbing) instead of carrying live state
	// across the fault. With CheckpointEvery == 0 the field is ignored
	// and state survives restarts unmanaged, as before.
	State Stateful
}

// stats fields are telemetry cells: written by the domain goroutine and
// the supervisor, read by snapshots and metric scrapes while traffic
// flows. Registering them on a telemetry.Registry (Policy.Registry)
// attaches names; the write path is identical either way.
type stats struct {
	processed    telemetry.Counter
	errors       telemetry.Counter
	crashes      telemetry.Counter
	hangs        telemetry.Counter
	restarts     telemetry.Counter
	reclaimed    telemetry.Counter
	backoffNanos atomic.Int64
	degraded     atomic.Bool
}

// Snapshot is a plain-value copy of one domain's counters, taken
// point-in-time from monotonically increasing atomics (the same snapshot
// semantics as netbricks.WorkerStats and sfi.Stats): safe to call during
// a live run, never blocks the hot path.
type Snapshot struct {
	Name  string
	State State
	// Processed counts payloads the handler completed without fault.
	Processed uint64
	// Errors and Crashes partition faults: handler error returns vs
	// panics caught at the entry point.
	Errors  uint64
	Crashes uint64
	// Hangs counts heartbeat-stall detections (the stuck goroutine is
	// abandoned and superseded).
	Hangs uint64
	// Restarts counts completed restart cycles (recovery ran, a fresh
	// serving goroutine started).
	Restarts uint64
	// Reclaimed counts payloads the entry point recovered from a
	// faulting handler and released.
	Reclaimed uint64
	// TimeInBackoff accumulates scheduled backoff delay.
	TimeInBackoff time.Duration
	// Degraded reports the domain is serving through its fallback
	// handler.
	Degraded bool
	// Checkpoint lifecycle counters (§5 integration): epochs published,
	// failed attempts (error or mid-traversal fault), restarts that
	// restored the last good checkpoint, and restarts that had to
	// cold-start. All zero when checkpointing is off.
	Checkpoints        uint64
	CheckpointFailures uint64
	Restores           uint64
	ColdStarts         uint64
	// Durability counters (Policy.Persist): epochs made durable and
	// encode/append failures (each failure leaves the RAM epoch standing,
	// only durability lags). Zero when persistence is off.
	Persisted       uint64
	PersistFailures uint64
	// Mailbox counters, plus instantaneous depth.
	MailboxDepth int
	MailboxSends uint64
	MailboxRecvs uint64
	MailboxDrops uint64
}

// handlerCell wraps a handler so the active one can be swapped atomically
// (degrade happens while an abandoned goroutine may still be running).
type handlerCell[T any] struct{ fn Handler[T] }

// Domain is a long-lived supervised goroutine serving a mailbox. Create
// one with Spawn; the zero Domain is invalid.
type Domain[T any] struct {
	name    string
	sup     *Supervisor
	inbox   *Mailbox[T]
	handler atomic.Pointer[handlerCell[T]]
	release func(T)
	recover func() error
	fallbck Handler[T]

	pd *sfi.Domain

	// rec/actor: the supervisor's flight recorder (nil-safe) and this
	// domain's interned name in it. The inbox shares the actor ID.
	rec   *telemetry.Recorder
	actor telemetry.ActorID

	// epoch identifies the serving goroutine generation. The supervisor
	// bumps it to supersede a goroutine it has given up on (hangs, group
	// restarts): the stale goroutine notices at its next checkpoint and
	// exits silently. quit is the current generation's wakeup: supersede
	// closes it so a goroutine parked on an empty inbox exits instead of
	// competing with its replacement for the next payload.
	epoch atomic.Uint64
	gmu   sync.Mutex
	quit  chan struct{}
	// busy+beat implement the heartbeat: busy is set for the duration of
	// a handler invocation, beat stamps its start. A domain blocked on an
	// empty inbox is idle, not hung.
	busy  atomic.Bool
	beat  atomic.Int64 // unix nanos
	state atomic.Int32
	// faultStreak counts consecutive faults (reset by a completed
	// invocation); the restart policy's budget applies to the streak.
	faultStreak atomic.Uint64

	// ck is the §5 checkpoint machinery; nil when checkpointing is off.
	ck *ckptState

	st   stats
	done chan struct{} // closed when the domain stops for good
}

// Name returns the domain's label.
func (d *Domain[T]) Name() string { return d.name }

// Inbox returns the domain's mailbox; producers send work here.
func (d *Domain[T]) Inbox() *Mailbox[T] { return d.inbox }

// PD returns the domain's sfi protection domain.
func (d *Domain[T]) PD() *sfi.Domain { return d.pd }

// State returns the current lifecycle state.
func (d *Domain[T]) State() State { return State(d.state.Load()) }

// Done returns a channel closed when the domain has stopped for good:
// its inbox was closed and fully drained, or its restart budget ran out
// with no fallback.
func (d *Domain[T]) Done() <-chan struct{} { return d.done }

// Snapshot returns a point-in-time copy of the domain's counters.
func (d *Domain[T]) Snapshot() Snapshot {
	sn := Snapshot{
		Name:          d.name,
		State:         d.State(),
		Processed:     d.st.processed.Load(),
		Errors:        d.st.errors.Load(),
		Crashes:       d.st.crashes.Load(),
		Hangs:         d.st.hangs.Load(),
		Restarts:      d.st.restarts.Load(),
		Reclaimed:     d.st.reclaimed.Load(),
		TimeInBackoff: time.Duration(d.st.backoffNanos.Load()),
		Degraded:      d.st.degraded.Load(),
		MailboxDepth:  d.inbox.Depth(),
		MailboxSends:  d.inbox.Stats.Sends.Load(),
		MailboxRecvs:  d.inbox.Stats.Recvs.Load(),
		MailboxDrops:  d.inbox.Stats.Drops.Load(),
	}
	if ck := d.ck; ck != nil {
		sn.Checkpoints = ck.taken.Load()
		sn.CheckpointFailures = ck.failed.Load()
		sn.Restores = ck.restores.Load()
		sn.ColdStarts = ck.coldStarts.Load()
		sn.Persisted = ck.persisted.Load()
		sn.PersistFailures = ck.persistFailed.Load()
	}
	return sn
}

// serve starts a serving goroutine for the given epoch, installing its
// quit channel first (unless a concurrent supersession already retired
// the epoch, in which case the goroutine exits at its first checkpoint).
func (d *Domain[T]) serve(epoch uint64) {
	q := make(chan struct{})
	d.gmu.Lock()
	if d.epoch.Load() == epoch {
		d.quit = q
	} else {
		close(q) // epoch already retired: run exits immediately
	}
	d.gmu.Unlock()
	go d.run(epoch, q)
}

// run is one serving-goroutine generation. It exits when the inbox is
// closed and drained (domain stops), when a fault occurs (the supervisor
// restarts a fresh generation), or when it discovers it was superseded.
func (d *Domain[T]) run(epoch uint64, quit <-chan struct{}) {
	ctx := &Ctx{SFI: sfi.NewContext(), PD: d.pd}
	// When checkpointing is on, a per-generation ticker wakes an idle
	// serving goroutine so quiet domains still complete epochs; under
	// sustained traffic the post-invocation dueness check below paces the
	// epochs instead (the recv select favors ready payloads, so the tick
	// case would starve).
	var tickC <-chan time.Time
	if d.ck != nil {
		t := time.NewTicker(d.ck.every)
		defer t.Stop()
		tickC = t.C
	}
	for {
		if d.epoch.Load() != epoch {
			return // superseded while idle
		}
		msg, err := d.inbox.recvOrTick(quit, tickC)
		if err == errCheckpointDue {
			// The inbox was empty when the ticker fired: the domain is
			// quiescent, snapshot now. A checkpoint fault is reported like
			// a handler fault.
			if d.epoch.Load() == epoch && d.ck.due(time.Now()) {
				if fault := d.takeCheckpoint(epoch); fault != nil {
					d.sup.report(d, epoch, fault)
					return
				}
			}
			continue
		}
		if err != nil {
			if err != errSuperseded && d.epoch.Load() == epoch {
				d.stop()
			}
			return
		}
		// A superseded goroutine can still win the race for one queued
		// payload (quit and a pending message are both ready in recv's
		// select). It completes that one invocation — the payload is
		// accounted for exactly once either way — and exits below.
		fault := d.invoke(ctx, msg, epoch)
		if fault != nil {
			if d.epoch.Load() == epoch {
				d.sup.report(d, epoch, fault)
			}
			return
		}
		if d.epoch.Load() != epoch {
			return // late success of an abandoned generation: counted, then exit
		}
		d.faultStreak.Store(0)
		if d.ck != nil && d.ck.due(time.Now()) {
			// Between invocations: the handler is not running, so the
			// traversal races no hot-path mutator.
			if fault := d.takeCheckpoint(epoch); fault != nil {
				d.sup.report(d, epoch, fault)
				return
			}
		}
	}
}

// invoke is the domain entry point: heartbeat, guard, fault accounting,
// and reclamation of payloads abandoned by a fault. It returns nil when
// the handler completed, or the fault. The sfi teardown (reference-table
// clear) is NOT done here: only the supervisor's monitor goroutine resets
// the protection domain, so a stale generation faulting late cannot
// revoke the table a recovered replacement is already serving from.
func (d *Domain[T]) invoke(ctx *Ctx, msg linear.Owned[T], epoch uint64) error {
	d.beat.Store(time.Now().UnixNano())
	d.busy.Store(true)
	err := d.guard(ctx, msg)
	d.busy.Store(false)
	if err == nil {
		d.st.processed.Add(1)
		return nil
	}
	// Fault path: the stack has unwound to the entry point. Reclaim the
	// payload if the handler left it live so no buffer leaks across the
	// fault, regardless of which generation this is.
	if msg.Valid() {
		if v, ierr := msg.Into(); ierr == nil {
			d.st.reclaimed.Add(1)
			if d.release != nil {
				d.release(v)
			}
		}
	}
	return err
}

// guard converts handler panics into ErrCrashed, the asynchronous
// equivalent of sfi's remote-invocation boundary.
func (d *Domain[T]) guard(ctx *Ctx, msg linear.Owned[T]) (err error) {
	defer func() {
		if p := recover(); p != nil {
			d.st.crashes.Add(1)
			d.rec.Record(d.actor, telemetry.EvPanic, d.faultStreak.Load()+1)
			err = fmt.Errorf("domain %s: panic: %v: %w", d.name, p, ErrCrashed)
		}
	}()
	if herr := d.handler.Load().fn(ctx, msg); herr != nil {
		d.st.errors.Add(1)
		d.rec.Record(d.actor, telemetry.EvError, d.faultStreak.Load()+1)
		return fmt.Errorf("domain %s: %w", d.name, herr)
	}
	return nil
}

// supersede retires the current serving generation and returns the new
// epoch. The retired generation's quit channel is closed so a goroutine
// parked on an empty inbox wakes and exits; one already inside a handler
// notices the epoch change at its next checkpoint instead.
func (d *Domain[T]) supersede() uint64 {
	d.gmu.Lock()
	e := d.epoch.Add(1)
	if d.quit != nil {
		close(d.quit)
		d.quit = nil
	}
	d.gmu.Unlock()
	return e
}

// stalled reports whether the domain has been inside one handler
// invocation for longer than limit.
func (d *Domain[T]) stalled(now time.Time, limit time.Duration) bool {
	return d.busy.Load() && now.UnixNano()-d.beat.Load() > int64(limit)
}

// degrade swaps in the fallback handler, reporting false when none is
// configured or the domain is already degraded (a fallback that also
// exhausts its budget stops the domain rather than looping).
func (d *Domain[T]) degrade() bool {
	if d.fallbck == nil || d.st.degraded.Load() {
		return false
	}
	d.handler.Store(&handlerCell[T]{fn: d.fallbck})
	d.st.degraded.Store(true)
	d.rec.Record(d.actor, telemetry.EvDegrade, d.faultStreak.Load())
	return true
}

// stop retires the domain permanently: supersede any serving goroutine,
// destroy the backlog, close Done. Safe to call more than once.
func (d *Domain[T]) stop() {
	d.supersede()
	if d.state.Swap(int32(StateStopped)) == int32(StateStopped) {
		return
	}
	d.rec.Record(d.actor, telemetry.EvStop, 0)
	d.inbox.Drain()
	close(d.done)
}

// registerMetrics exports the domain's counters on reg labeled
// {domain=<name>}. Called once at Spawn; the record path never sees the
// registry.
func (d *Domain[T]) registerMetrics(reg telemetry.Registrar, base telemetry.Labels) {
	labels := base.With("domain", d.name)
	reg.RegisterCounter("domain_processed_total", labels, &d.st.processed)
	reg.RegisterCounter("domain_errors_total", labels, &d.st.errors)
	reg.RegisterCounter("domain_crashes_total", labels, &d.st.crashes)
	reg.RegisterCounter("domain_hangs_total", labels, &d.st.hangs)
	reg.RegisterCounter("domain_restarts_total", labels, &d.st.restarts)
	reg.RegisterCounter("domain_reclaimed_total", labels, &d.st.reclaimed)
	reg.RegisterCounterFunc("domain_backoff_seconds_total", labels, func() float64 {
		return time.Duration(d.st.backoffNanos.Load()).Seconds()
	})
	reg.RegisterGaugeFunc("domain_state", labels, func() float64 {
		return float64(d.state.Load())
	})
	reg.RegisterGaugeFunc("domain_degraded", labels, func() float64 {
		if d.st.degraded.Load() {
			return 1
		}
		return 0
	})
	if d.ck != nil {
		d.registerCkptMetrics(reg, labels)
	}
	reg.RegisterCounter("mailbox_sends_total", labels, &d.inbox.Stats.Sends)
	reg.RegisterCounter("mailbox_recvs_total", labels, &d.inbox.Stats.Recvs)
	reg.RegisterCounter("mailbox_drops_total", labels, &d.inbox.Stats.Drops)
	reg.RegisterGaugeFunc("mailbox_depth", labels, func() float64 {
		return float64(d.inbox.Depth())
	})
}
