package domain

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/leakcheck"
	"repro/internal/linear"
	"repro/internal/mempool"
)

// kvState is the test Stateful: a locked map with hooks to fault the
// checkpoint path itself.
type kvState struct {
	mu sync.Mutex
	m  map[string]int

	panicNext atomic.Bool // panic on the next Checkpoint call
	resets    atomic.Int64
}

type kvImage struct{ M map[string]int }

func newKVState() *kvState { return &kvState{m: make(map[string]int)} }

func (s *kvState) set(k string, v int) {
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

func (s *kvState) get(k string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[k]
	return v, ok
}

func (s *kvState) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

func (s *kvState) Checkpoint(e *checkpoint.Engine) (any, error) {
	if s.panicNext.CompareAndSwap(true, false) {
		panic("kvState: injected mid-checkpoint crash")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return e.Checkpoint(&kvImage{M: s.m})
}

func (s *kvState) Restore(token any) error {
	snap, ok := token.(*checkpoint.Snapshot)
	if !ok {
		return fmt.Errorf("kvState: token is %T", token)
	}
	v, err := snap.Materialize()
	if err != nil {
		return err
	}
	img := v.(*kvImage)
	if img.M == nil {
		img.M = make(map[string]int)
	}
	s.mu.Lock()
	s.m = img.M
	s.mu.Unlock()
	return nil
}

func (s *kvState) Reset() {
	s.resets.Add(1)
	s.mu.Lock()
	s.m = make(map[string]int)
	s.mu.Unlock()
}

// ckptPolicy is fastPolicy plus a short checkpoint epoch.
func ckptPolicy(every time.Duration) Policy {
	p := fastPolicy()
	p.CheckpointEvery = every
	return p
}

// spawnKV spawns a domain over kvState whose handler sets key "k<v>"
// for positive payloads and panics for negative ones.
func spawnKV(t *testing.T, s *Supervisor, st *kvState) *Domain[int] {
	t.Helper()
	d, err := Spawn(s, Config[int]{
		Name:  "kv",
		State: st,
		Handler: func(c *Ctx, msg linear.Owned[int]) error {
			v, err := msg.Into()
			if err != nil {
				return err
			}
			if v < 0 {
				panic("injected handler crash")
			}
			st.set(fmt.Sprintf("k%d", v), v)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDomainCheckpointRestore: state mutated before a completed
// checkpoint epoch survives a crash — the restart restores the snapshot
// instead of cold-starting.
func TestDomainCheckpointRestore(t *testing.T) {
	sup := NewSupervisor(ckptPolicy(2 * time.Millisecond))
	defer sup.Close()
	st := newKVState()
	d := spawnKV(t, sup, st)

	if err := d.Inbox().Send(linear.New(1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first payload", func() bool { return d.Snapshot().Processed == 1 })
	// Wait for an epoch that provably includes k1.
	c0 := d.Snapshot().Checkpoints
	waitFor(t, "post-mutation checkpoint", func() bool { return d.Snapshot().Checkpoints > c0 })

	if err := d.Inbox().Send(linear.New(-1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "restore after crash", func() bool { return d.Snapshot().Restores >= 1 })
	if v, ok := st.get("k1"); !ok || v != 1 {
		t.Fatalf("k1 not restored: (%d, %v), state size %d", v, ok, st.size())
	}
	sn := d.Snapshot()
	if sn.ColdStarts != 0 {
		t.Fatalf("cold starts = %d, want 0 (a checkpoint epoch had completed)", sn.ColdStarts)
	}
	if st.resets.Load() != 0 {
		t.Fatalf("Reset ran %d times, want 0", st.resets.Load())
	}

	// The restored domain keeps serving and checkpointing.
	if err := d.Inbox().Send(linear.New(2)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-restore payload", func() bool {
		_, ok := st.get("k2")
		return ok
	})
}

// TestDomainColdStartWithoutEpoch: a crash before any checkpoint epoch
// completes falls back to Reset — cold start only at boot.
func TestDomainColdStartWithoutEpoch(t *testing.T) {
	sup := NewSupervisor(ckptPolicy(time.Hour)) // no epoch will complete
	defer sup.Close()
	st := newKVState()
	d := spawnKV(t, sup, st)

	if err := d.Inbox().Send(linear.New(1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first payload", func() bool { return d.Snapshot().Processed == 1 })
	if err := d.Inbox().Send(linear.New(-1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "cold start", func() bool { return d.Snapshot().ColdStarts == 1 })
	if st.size() != 0 {
		t.Fatalf("state size %d after cold start, want 0", st.size())
	}
	if sn := d.Snapshot(); sn.Restores != 0 || sn.Checkpoints != 0 {
		t.Fatalf("snapshot %+v: want no restores or checkpoints", sn)
	}
}

// TestDomainRestoreColdMode: the RestoreCold ablation resets even when
// good checkpoints exist.
func TestDomainRestoreColdMode(t *testing.T) {
	p := ckptPolicy(2 * time.Millisecond)
	p.Restore = RestoreCold
	sup := NewSupervisor(p)
	defer sup.Close()
	st := newKVState()
	d := spawnKV(t, sup, st)

	if err := d.Inbox().Send(linear.New(1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first payload", func() bool { return d.Snapshot().Processed == 1 })
	c0 := d.Snapshot().Checkpoints
	waitFor(t, "post-mutation checkpoint", func() bool { return d.Snapshot().Checkpoints > c0 })

	if err := d.Inbox().Send(linear.New(-1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "cold start", func() bool { return d.Snapshot().ColdStarts == 1 })
	if st.size() != 0 {
		t.Fatalf("state size %d after RestoreCold restart, want 0", st.size())
	}
	if d.Snapshot().Restores != 0 {
		t.Fatal("RestoreCold must never restore")
	}
}

// TestDomainCheckpointOffIgnoresState: with CheckpointEvery zero the
// State field is inert — no epochs, no reset, state rides through the
// restart unmanaged (the pre-§5 behavior).
func TestDomainCheckpointOffIgnoresState(t *testing.T) {
	sup := NewSupervisor(fastPolicy())
	defer sup.Close()
	st := newKVState()
	d := spawnKV(t, sup, st)

	if err := d.Inbox().Send(linear.New(1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first payload", func() bool { return d.Snapshot().Processed == 1 })
	if err := d.Inbox().Send(linear.New(-1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "restart", func() bool { return d.Snapshot().Restarts == 1 })
	if v, ok := st.get("k1"); !ok || v != 1 {
		t.Fatalf("unmanaged state lost across restart: (%d, %v)", v, ok)
	}
	sn := d.Snapshot()
	if sn.Checkpoints != 0 || sn.Restores != 0 || sn.ColdStarts != 0 || st.resets.Load() != 0 {
		t.Fatalf("checkpoint machinery ran with CheckpointEvery=0: %+v", sn)
	}
}

// TestDomainCrashMidCheckpoint: a panic inside the checkpoint traversal
// is a domain fault; the half-built snapshot is discarded unpublished
// (the previous good epoch still restores), and no payload leaks — the
// pool balances at test end.
func TestDomainCrashMidCheckpoint(t *testing.T) {
	pool := mempool.NewPool(16, func() *int { return new(int) })
	leakcheck.Pool(t, "payloads", pool.Available)

	sup := NewSupervisor(ckptPolicy(2 * time.Millisecond))
	defer sup.Close()
	st := newKVState()
	d, err := Spawn(sup, Config[*int]{
		Name:    "kv-mid",
		State:   st,
		Release: func(p *int) { pool.Put(p) },
		Handler: func(c *Ctx, msg linear.Owned[*int]) error {
			p, err := msg.Into()
			if err != nil {
				return err
			}
			st.set(fmt.Sprintf("k%d", *p), *p)
			pool.Put(p)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	send := func(v int) {
		buf, err := pool.Get()
		if err != nil {
			t.Fatal(err)
		}
		*buf = v
		if err := d.Inbox().Send(linear.New(buf)); err != nil {
			t.Fatal(err)
		}
	}

	send(1)
	waitFor(t, "first payload", func() bool { return d.Snapshot().Processed == 1 })
	c0 := d.Snapshot().Checkpoints
	waitFor(t, "good checkpoint with k1", func() bool { return d.Snapshot().Checkpoints > c0 })

	// Arm the fault, then mutate: k2 lands in live state only — the next
	// checkpoint attempt (which would have captured it) dies mid-flight.
	st.panicNext.Store(true)
	taken := d.Snapshot().Checkpoints
	send(2)
	waitFor(t, "mid-checkpoint fault + restore", func() bool {
		sn := d.Snapshot()
		return sn.CheckpointFailures >= 1 && sn.Restores >= 1
	})
	if v, ok := st.get("k1"); !ok || v != 1 {
		t.Fatalf("k1 lost: the previous good epoch should restore (got %d, %v)", v, ok)
	}
	if _, ok := st.get("k2"); ok {
		t.Fatal("k2 present after restore: the half-built snapshot was published")
	}
	// The failed attempt must not count as a taken epoch. (New epochs may
	// complete after the restart, but only after the restore that dropped
	// k2 — so k2's absence above already proves the discard; here we pin
	// the counter semantics.)
	if sn := d.Snapshot(); sn.Checkpoints < taken {
		t.Fatalf("taken count went backwards: %d -> %d", taken, sn.Checkpoints)
	}
	if sn := d.Snapshot(); sn.Crashes < 1 {
		t.Fatalf("checkpoint panic not counted as a crash: %+v", sn)
	}

	// The restored domain serves on; drain cleanly so leakcheck settles.
	send(3)
	waitFor(t, "post-restore payload", func() bool {
		_, ok := st.get("k3")
		return ok
	})
	d.Inbox().Close()
	<-d.Done()
}

// TestStateSet: composition distributes checkpoint/restore/reset across
// named components and labels errors with the component name.
func TestStateSet(t *testing.T) {
	a, b := newKVState(), newKVState()
	set := NewStateSet().Add("alpha", a).Add("beta", b)
	if set.Len() != 2 {
		t.Fatalf("Len = %d", set.Len())
	}
	a.set("x", 1)
	b.set("y", 2)
	e := checkpoint.NewEngine(checkpoint.RcAware)
	tok, err := set.Checkpoint(e)
	if err != nil {
		t.Fatal(err)
	}
	a.set("x", 99)
	b.set("z", 3)
	if err := set.Restore(tok); err != nil {
		t.Fatal(err)
	}
	if v, _ := a.get("x"); v != 1 {
		t.Fatalf("alpha x = %d, want 1", v)
	}
	if _, ok := b.get("z"); ok {
		t.Fatal("beta z survived restore")
	}
	if v, _ := b.get("y"); v != 2 {
		t.Fatalf("beta y = %d, want 2", v)
	}

	if err := set.Restore("bogus"); err == nil || !strings.Contains(err.Error(), "shape") {
		t.Fatalf("bad token error = %v", err)
	}
	if err := set.Restore([]any{tok}); err == nil {
		t.Fatal("short token accepted")
	}
	// A component failure names the component.
	if err := set.Restore([]any{"junk", "junk"}); err == nil || !strings.Contains(err.Error(), "alpha") {
		t.Fatalf("component error = %v, want alpha named", err)
	}

	set.Reset()
	if a.size() != 0 || b.size() != 0 {
		t.Fatal("Reset did not clear both components")
	}
	if a.resets.Load() != 1 || b.resets.Load() != 1 {
		t.Fatal("Reset did not reach both components")
	}
}
