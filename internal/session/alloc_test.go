package session

import (
	"testing"
)

// TestAllocsTrackHit pins the per-packet session cost: tracking a packet
// for a flow the table already holds (the overwhelmingly common case at
// steady state) must not allocate — the floor the pipeline alloc gate
// depends on.
func TestAllocsTrackHit(t *testing.T) {
	tbl := NewTable()
	tu := flowTuple(7)
	tbl.Track(tu, tu.DstIP, 100) // first sight: allocates the Flow
	if allocs := testing.AllocsPerRun(1000, func() {
		tbl.Track(tu, tu.DstIP, 100)
	}); allocs != 0 {
		t.Fatalf("Track hit allocates %.1f objects per call, want 0", allocs)
	}
}

// TestAllocsLookup pins the read path: resolving a resident flow hash to
// its backend must not allocate.
func TestAllocsLookup(t *testing.T) {
	tbl := NewTable()
	tu := flowTuple(7)
	tbl.Track(tu, tu.DstIP, 100)
	h := tu.Hash()
	if allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := tbl.Lookup(h); !ok {
			t.Fatal("flow not found")
		}
	}); allocs != 0 {
		t.Fatalf("Lookup allocates %.1f objects per call, want 0", allocs)
	}
}

// TestEvictionSparesHotFlows proves the clock-hand policy evicts the
// cold tail: a small hot set touched every round must stay resident
// through heavy cold-flow churn (the map-iteration-order policy it
// replaces spilled hot flows with probability proportional to their
// share of the table), and evictions_hot_touched records the hand
// sparing them.
func TestEvictionSparesHotFlows(t *testing.T) {
	sp := newMemSpill()
	tbl := NewTable()
	tbl.SetSpill(sp, 64)

	const hotFlows = 8
	cold := hotFlows
	for round := 0; round < 50; round++ {
		for i := 0; i < hotFlows; i++ {
			tbl.Track(flowTuple(i), 0xc0a80001, 100)
		}
		for i := 0; i < 24; i++ {
			tbl.Track(flowTuple(cold), 0xc0a80001, 100)
			cold++
		}
	}

	spilled, _, errs := tbl.SpillStats()
	if errs != 0 {
		t.Fatalf("spill errors: %d", errs)
	}
	if spilled == 0 {
		t.Fatal("no evictions happened; the test exercised nothing")
	}
	entries := tbl.Entries()
	for i := 0; i < hotFlows; i++ {
		if _, ok := entries[flowTuple(i).Hash()]; !ok {
			t.Errorf("hot flow %d was evicted from RAM", i)
		}
	}
	if ht := tbl.HotTouched(); ht == 0 {
		t.Error("evictions_hot_touched is 0; the clock hand never spared a hot flow")
	}
}

// TestEvictionSteadyStateAllocs pins the eviction machinery's own cost:
// once the scratch slices and flow pool are warm, steady eviction churn
// (new cold flow in, cold victim out) must not allocate per tracked
// packet beyond map-internal churn. The budget is deliberately loose —
// Go map inserts after deletes occasionally grow — but catches a return
// to the two-fresh-slices-per-eviction behaviour.
func TestEvictionSteadyStateAllocs(t *testing.T) {
	sp := newMemSpill()
	tbl := NewTable()
	tbl.SetSpill(sp, 64)
	next := 0
	for i := 0; i < 500; i++ { // warm: populate, grow scratch, fill pool
		tbl.Track(flowTuple(next), 0xc0a80001, 100)
		next++
	}
	allocs := testing.AllocsPerRun(2000, func() {
		tbl.Track(flowTuple(next), 0xc0a80001, 100)
		next++
	})
	if allocs > 0.5 {
		t.Fatalf("steady eviction churn allocates %.2f objects per Track, want < 0.5", allocs)
	}
}
