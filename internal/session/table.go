package session

// table.go grows the package beyond session-typed channels: a session
// *table* — the flow-tracking NF whose live state is the pointer-linked
// graph the §5 checkpoint engine snapshots in production. Every tracked
// flow holds its backend through checkpoint.Rc, and flows steered to the
// same backend share one Rc box (Figure 3a's aliasing, on live state):
// an RcAware checkpoint copies each backend exactly once, while the
// VisitedSet baseline pays a table probe per handle — the contrast the
// checkpoint benches measure on this very structure.

import (
	"fmt"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/netbricks"
	"repro/internal/packet"
)

// Backend identifies the upstream a flow was steered to — the maglev
// rewrite observed on the wire. Kept behind an Rc so all flows to one
// backend share a single box.
type Backend struct {
	IP packet.IPv4
}

// Flow is one tracked five-tuple and its shared backend handle, plus
// soft byte/packet counters (deltas since the last checkpoint are lost
// across a fault; flow identity is not). Spilled marks a flow the spill
// index also holds (it was evicted and promoted back), so population
// counts across RAM and disk count it once.
type Flow struct {
	Tuple   packet.FiveTuple
	Backend checkpoint.Rc[Backend]
	Packets uint64
	Bytes   uint64
	Spilled bool

	// hot is the second-chance reference bit: set on every tracked
	// packet, cleared when the eviction clock hand passes over the flow.
	// Derived state — checkpoints don't carry it (restored flows start
	// cold) and the spill index never sees it.
	hot bool
}

// tableImage is the checkpointed shape of a Table: just the flow graph.
// The backend intern map is derived state, rebuilt on restore.
type tableImage struct {
	Flows map[uint64]*Flow
}

// CheckpointCopy implements checkpoint.Checkpointable: a hand-written
// deep copy of the flow graph that routes each backend handle through
// the engine (preserving Rc aliasing per the engine's mode) but copies
// the flat Flow fields directly. The reflection walk costs ~10
// allocations per flow (map key/value boxing, reflect.New per struct);
// this path costs one — the difference between checkpoint epochs being
// a blip and being the dominant allocator at 10ms epochs.
func (img *tableImage) CheckpointCopy(clone func(v any) (any, error)) (any, error) {
	out := &tableImage{}
	if img.Flows != nil {
		out.Flows = make(map[uint64]*Flow, len(img.Flows))
		for h, f := range img.Flows {
			nf := &Flow{
				Tuple:   f.Tuple,
				Packets: f.Packets,
				Bytes:   f.Bytes,
				Spilled: f.Spilled,
			}
			if !f.Backend.IsZero() {
				cb, err := clone(f.Backend)
				if err != nil {
					return nil, err
				}
				nf.Backend = cb.(checkpoint.Rc[Backend])
			}
			out.Flows[h] = nf
		}
	}
	return out, nil
}

// Table is the session table: flow hash → Flow, with an intern map
// handing each distinct backend one shared Rc box. All methods take the
// table's lock, including Checkpoint/Restore/Reset — the domain
// runtime's Stateful contract requires the state to serialize against
// abandoned generations itself.
type Table struct {
	mu     sync.Mutex
	flows  map[uint64]*Flow
	intern map[packet.IPv4]checkpoint.Rc[Backend]

	// Spill state (see spill.go): when spill is non-nil the RAM table is
	// a cache over the on-disk flow index, capped at maxFlows.
	spill     Spill
	maxFlows  int
	spilled   uint64
	promoted  uint64
	spillErrs uint64

	// Eviction clock (see spill.go): ring holds the hashes of resident
	// flows in approximate insertion order, hand is the sweep cursor, and
	// hotTouched counts flows the hand spared because their ref bit was
	// set. Maintained only while a spill index is attached.
	ring       []uint64
	hand       int
	hotTouched uint64

	// Per-batch scratch reused across evictions, and a free list of Flow
	// objects so steady-state churn (evict → new flow) allocates nothing.
	victimScratch []uint64
	recScratch    []SpillRecord
	flowPool      []*Flow
}

// newFlowLocked takes a zeroed Flow from the pool, or allocates one.
func (t *Table) newFlowLocked() *Flow {
	n := len(t.flowPool)
	if n == 0 {
		return &Flow{}
	}
	f := t.flowPool[n-1]
	t.flowPool[n-1] = nil
	t.flowPool = t.flowPool[:n-1]
	return f
}

// freeFlowLocked zeroes a no-longer-tracked Flow and pools it.
func (t *Table) freeFlowLocked(f *Flow) {
	*f = Flow{}
	t.flowPool = append(t.flowPool, f)
}

// NewTable creates an empty session table.
func NewTable() *Table {
	return &Table{
		flows:  make(map[uint64]*Flow),
		intern: make(map[packet.IPv4]checkpoint.Rc[Backend]),
	}
}

// internLocked returns the shared Rc box for a backend IP, creating it
// on first sight. Callers hold t.mu.
func (t *Table) internLocked(ip packet.IPv4) checkpoint.Rc[Backend] {
	rc, interned := t.intern[ip]
	if !interned {
		rc = checkpoint.NewRc(Backend{IP: ip})
		t.intern[ip] = rc
	}
	return rc
}

// Track records one packet of flow tu steered to backend ip. New flows
// clone the interned backend handle (bumping its strong count); known
// flows just bump counters. With a spill index attached, a RAM miss
// first tries to promote the flow's evicted record (its backend and
// counters survive), and growth past the cap evicts a batch to disk.
func (t *Table) Track(tu packet.FiveTuple, ip packet.IPv4, nbytes int) {
	h := tu.Hash()
	t.mu.Lock()
	defer t.mu.Unlock()
	f, ok := t.flows[h]
	if !ok && t.spill != nil {
		f = t.promoteLocked(h)
	}
	if f == nil {
		f = t.newFlowLocked()
		f.Tuple = tu
		f.Backend = t.internLocked(ip).Clone()
		t.flows[h] = f
		t.ringAppendLocked(h)
	}
	f.hot = true
	f.Packets++
	f.Bytes += uint64(nbytes)
	t.evictLocked(h)
}

// Len reports the number of tracked flows.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.flows)
}

// Backends reports the number of distinct interned backends.
func (t *Table) Backends() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.intern)
}

// Entries returns flow hash → backend IP: the restorable identity of the
// table, the shape the chaos tier compares against its fault-free
// oracle. (Packet/byte counters are soft deltas a fault may lose.)
func (t *Table) Entries() map[uint64]packet.IPv4 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[uint64]packet.IPv4, len(t.flows))
	for h, f := range t.flows {
		out[h] = f.Backend.Get().IP
	}
	return out
}

// Checkpoint implements the domain runtime's Stateful contract: a deep
// snapshot of the flow graph under the table lock. Rc sharing between
// flows is preserved according to the engine's mode.
func (t *Table) Checkpoint(e *checkpoint.Engine) (any, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return e.Checkpoint(&tableImage{Flows: t.flows})
}

// Restore replaces the live table with a fresh materialization of a
// Checkpoint token and rebuilds the backend intern map from the restored
// flows' shared handles. Materializing (rather than installing the
// snapshot's graph directly) keeps the token reusable: a later fault can
// restore from the same epoch again without aliasing the first restore's
// since-mutated state.
func (t *Table) Restore(token any) error {
	snap, ok := token.(*checkpoint.Snapshot)
	if !ok {
		return fmt.Errorf("session: restore token is %T, want *checkpoint.Snapshot", token)
	}
	v, err := snap.Materialize()
	if err != nil {
		return fmt.Errorf("session: materialize: %w", err)
	}
	img, ok := v.(*tableImage)
	if !ok {
		return fmt.Errorf("session: snapshot holds %T, want *tableImage", v)
	}
	if img.Flows == nil {
		img.Flows = make(map[uint64]*Flow)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.flows = img.Flows
	t.intern = make(map[packet.IPv4]checkpoint.Rc[Backend])
	for _, f := range img.Flows {
		if f.Backend.IsZero() {
			continue
		}
		ip := f.Backend.Get().IP
		if _, seen := t.intern[ip]; !seen {
			t.intern[ip] = f.Backend
		}
	}
	t.rebuildRingLocked()
	t.flowPool = nil // don't carry pooled storage across generations
	return nil
}

// Reset cold-starts the table to empty.
func (t *Table) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.flows = make(map[uint64]*Flow)
	t.intern = make(map[packet.IPv4]checkpoint.Rc[Backend])
	t.ring = t.ring[:0]
	t.hand = 0
	t.flowPool = nil
}

// Operator adapts the table into a NetBricks stage placed after the load
// balancer: at that point the packet's destination IP (and UserTag) is
// the chosen backend, so each parsed packet records one Track call.
type Operator struct {
	T *Table
}

// Name implements netbricks.Operator.
func (Operator) Name() string { return "session" }

// ProcessBatch implements netbricks.Operator.
func (o Operator) ProcessBatch(b *netbricks.Batch) error {
	for _, p := range b.Pkts {
		if !p.Parsed() {
			continue
		}
		tu := p.Tuple()
		ip := tu.DstIP
		if p.UserTag != 0 {
			ip = packet.IPv4(p.UserTag)
		}
		o.T.Track(tu, ip, p.Len())
	}
	return nil
}

var _ netbricks.Operator = Operator{}
