// Package session implements session-typed channels over the linear
// ownership substrate — the capability the paper's §2 singles out as
// "similar in spirit to ours" (Jespersen et al., Session Types for Rust):
// linear endpoint handles whose protocol state advances with every
// operation, giving compile-time-style guarantees of protocol adherence.
//
// Rust encodes the protocol in the endpoint's type and lets the compiler
// reject out-of-order operations; Go has no type-level recursion, so this
// package enforces the protocol dynamically with the same linearity trick
// used across this repository: every operation consumes the endpoint
// handle and returns a new one for the protocol's continuation. Using a
// stale handle — the analogue of reusing a consumed session type — fails
// with ErrConsumed; performing the wrong operation for the current
// protocol step fails with ErrProtocol. Both would be compile errors in
// the Rust encoding; here they are guaranteed-caught runtime errors, and
// the package's tests play the role of the type checker's soundness
// argument.
//
// Protocols are described with the usual session-type constructors:
//
//	Send(T, next)   — send a T, continue as next
//	Recv(T, next)   — receive a T, continue as next
//	Choose(a, b)    — internal choice: pick branch a or b
//	Offer(a, b)     — external choice: peer picks the branch
//	End             — close the session
//
// and Dual mechanically derives the peer's protocol.
package session

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Errors reported by session operations.
var (
	// ErrConsumed reports reuse of an endpoint handle that was already
	// advanced (the linearity violation).
	ErrConsumed = errors.New("session: endpoint handle already consumed")
	// ErrProtocol reports an operation that does not match the protocol
	// step (e.g. Send where the protocol says Recv).
	ErrProtocol = errors.New("session: operation violates protocol")
	// ErrClosed reports use of a session after End.
	ErrClosed = errors.New("session: session closed")
	// ErrType reports a payload whose type does not match the protocol.
	ErrType = errors.New("session: payload type mismatch")
)

// Kind is a protocol constructor.
type Kind int

// Protocol constructors.
const (
	KindEnd Kind = iota
	KindSend
	KindRecv
	KindChoose
	KindOffer
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindEnd:
		return "End"
	case KindSend:
		return "Send"
	case KindRecv:
		return "Recv"
	case KindChoose:
		return "Choose"
	case KindOffer:
		return "Offer"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Protocol is a session-type tree. Protocols are immutable and may be
// shared.
type Protocol struct {
	Kind Kind
	// Elem names the payload type for Send/Recv (checked against the
	// dynamic type of transmitted values; "" disables the check).
	Elem string
	// Next is the continuation for Send/Recv.
	Next *Protocol
	// Left/Right are the branches for Choose/Offer.
	Left, Right *Protocol
}

// End is the terminal protocol.
var End = &Protocol{Kind: KindEnd}

// Send constructs "send elem, then next".
func Send(elem string, next *Protocol) *Protocol {
	return &Protocol{Kind: KindSend, Elem: elem, Next: next}
}

// Recv constructs "receive elem, then next".
func Recv(elem string, next *Protocol) *Protocol {
	return &Protocol{Kind: KindRecv, Elem: elem, Next: next}
}

// Choose constructs an internal choice between two continuations.
func Choose(left, right *Protocol) *Protocol {
	return &Protocol{Kind: KindChoose, Left: left, Right: right}
}

// Offer constructs an external choice between two continuations.
func Offer(left, right *Protocol) *Protocol {
	return &Protocol{Kind: KindOffer, Left: left, Right: right}
}

// Dual derives the peer's protocol: sends become receives, internal
// choices become offers, and vice versa.
func Dual(p *Protocol) *Protocol {
	if p == nil {
		return nil
	}
	switch p.Kind {
	case KindEnd:
		return End
	case KindSend:
		return &Protocol{Kind: KindRecv, Elem: p.Elem, Next: Dual(p.Next)}
	case KindRecv:
		return &Protocol{Kind: KindSend, Elem: p.Elem, Next: Dual(p.Next)}
	case KindChoose:
		return &Protocol{Kind: KindOffer, Left: Dual(p.Left), Right: Dual(p.Right)}
	case KindOffer:
		return &Protocol{Kind: KindChoose, Left: Dual(p.Left), Right: Dual(p.Right)}
	}
	panic("session: unknown protocol kind")
}

// Equal reports structural protocol equality.
func (p *Protocol) Equal(o *Protocol) bool {
	if p == nil || o == nil {
		return p == o
	}
	if p.Kind != o.Kind || p.Elem != o.Elem {
		return false
	}
	switch p.Kind {
	case KindSend, KindRecv:
		return p.Next.Equal(o.Next)
	case KindChoose, KindOffer:
		return p.Left.Equal(o.Left) && p.Right.Equal(o.Right)
	}
	return true
}

// String renders the protocol in session-type notation.
func (p *Protocol) String() string {
	if p == nil {
		return "?"
	}
	switch p.Kind {
	case KindEnd:
		return "end"
	case KindSend:
		return fmt.Sprintf("!%s.%s", p.Elem, p.Next)
	case KindRecv:
		return fmt.Sprintf("?%s.%s", p.Elem, p.Next)
	case KindChoose:
		return fmt.Sprintf("(+){%s | %s}", p.Left, p.Right)
	case KindOffer:
		return fmt.Sprintf("(&){%s | %s}", p.Left, p.Right)
	}
	return "?"
}

// Branch labels a choice.
type Branch int

// Choice branches.
const (
	Left Branch = iota
	Right
)

// message is what travels on the wire: either a payload or a branch
// selection.
type message struct {
	payload any
	branch  Branch
	choice  bool
}

// channel is the shared transport between the two endpoints: one
// unidirectional queue per direction, so an endpoint can never dequeue a
// message it sent itself when the session runs asynchronously.
type channel struct {
	ab     chan message // endpoint A -> endpoint B
	ba     chan message // endpoint B -> endpoint A
	closed atomic.Bool
	mu     sync.Mutex
}

// Endpoint is one linear end of a session. Every operation consumes the
// receiver and returns the continuation endpoint; the zero Endpoint and
// consumed endpoints are unusable.
type Endpoint struct {
	st *epState
}

type epState struct {
	ch       *channel
	sendQ    chan message
	recvQ    chan message
	proto    *Protocol
	consumed atomic.Bool
}

// New creates a connected endpoint pair: the first follows proto, the
// second its dual. buffered > 0 gives an asynchronous session (sends
// don't block until the buffer fills).
func New(proto *Protocol, buffered int) (Endpoint, Endpoint) {
	ch := &channel{
		ab: make(chan message, buffered),
		ba: make(chan message, buffered),
	}
	return Endpoint{st: &epState{ch: ch, sendQ: ch.ab, recvQ: ch.ba, proto: proto}},
		Endpoint{st: &epState{ch: ch, sendQ: ch.ba, recvQ: ch.ab, proto: Dual(proto)}}
}

// Protocol reports the endpoint's remaining protocol (nil if consumed).
func (e Endpoint) Protocol() *Protocol {
	if e.st == nil || e.st.consumed.Load() {
		return nil
	}
	return e.st.proto
}

// take consumes the handle, enforcing linearity, and validates the
// expected protocol step.
func (e Endpoint) take(want Kind) (*epState, error) {
	if e.st == nil {
		return nil, fmt.Errorf("%s on zero endpoint: %w", want, ErrConsumed)
	}
	if !e.st.consumed.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("%s: %w", want, ErrConsumed)
	}
	if e.st.proto.Kind == KindEnd && want != KindEnd {
		return nil, fmt.Errorf("%s after end: %w", want, ErrClosed)
	}
	if e.st.proto.Kind != want {
		return nil, fmt.Errorf("%s where protocol requires %s (%s): %w",
			want, e.st.proto.Kind, e.st.proto, ErrProtocol)
	}
	return e.st, nil
}

func typeName(v any) string { return fmt.Sprintf("%T", v) }

// Send transmits v and returns the continuation endpoint.
func (e Endpoint) Send(v any) (Endpoint, error) {
	st, err := e.take(KindSend)
	if err != nil {
		return Endpoint{}, err
	}
	if st.proto.Elem != "" && typeName(v) != st.proto.Elem {
		// Un-consume: the handle was not advanced.
		st.consumed.Store(false)
		return Endpoint{}, fmt.Errorf("send %s where protocol carries %s: %w", typeName(v), st.proto.Elem, ErrType)
	}
	if st.ch.closed.Load() {
		return Endpoint{}, fmt.Errorf("send: %w", ErrClosed)
	}
	st.sendQ <- message{payload: v}
	return Endpoint{st: &epState{ch: st.ch, sendQ: st.sendQ, recvQ: st.recvQ, proto: st.proto.Next}}, nil
}

// Recv receives the next payload and returns it with the continuation.
func (e Endpoint) Recv() (any, Endpoint, error) {
	st, err := e.take(KindRecv)
	if err != nil {
		return nil, Endpoint{}, err
	}
	m, ok := <-st.recvQ
	if !ok {
		return nil, Endpoint{}, fmt.Errorf("recv: %w", ErrClosed)
	}
	if m.choice {
		return nil, Endpoint{}, fmt.Errorf("recv got a choice message: %w", ErrProtocol)
	}
	return m.payload, Endpoint{st: &epState{ch: st.ch, sendQ: st.sendQ, recvQ: st.recvQ, proto: st.proto.Next}}, nil
}

// Choose selects a branch of an internal choice.
func (e Endpoint) Choose(b Branch) (Endpoint, error) {
	st, err := e.take(KindChoose)
	if err != nil {
		return Endpoint{}, err
	}
	if st.ch.closed.Load() {
		return Endpoint{}, fmt.Errorf("choose: %w", ErrClosed)
	}
	st.sendQ <- message{branch: b, choice: true}
	next := st.proto.Left
	if b == Right {
		next = st.proto.Right
	}
	return Endpoint{st: &epState{ch: st.ch, sendQ: st.sendQ, recvQ: st.recvQ, proto: next}}, nil
}

// Offer waits for the peer's choice and returns the selected branch with
// the continuation.
func (e Endpoint) Offer() (Branch, Endpoint, error) {
	st, err := e.take(KindOffer)
	if err != nil {
		return Left, Endpoint{}, err
	}
	m, ok := <-st.recvQ
	if !ok {
		return Left, Endpoint{}, fmt.Errorf("offer: %w", ErrClosed)
	}
	if !m.choice {
		return Left, Endpoint{}, fmt.Errorf("offer got a payload message: %w", ErrProtocol)
	}
	next := st.proto.Left
	if m.branch == Right {
		next = st.proto.Right
	}
	return m.branch, Endpoint{st: &epState{ch: st.ch, sendQ: st.sendQ, recvQ: st.recvQ, proto: next}}, nil
}

// Close terminates the session; the protocol must be at End.
func (e Endpoint) Close() error {
	st, err := e.take(KindEnd)
	if err != nil {
		return err
	}
	st.ch.mu.Lock()
	defer st.ch.mu.Unlock()
	if st.ch.closed.CompareAndSwap(false, true) {
		close(st.ch.ab)
		close(st.ch.ba)
	}
	return nil
}
