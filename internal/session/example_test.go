package session_test

import (
	"errors"
	"fmt"

	"repro/internal/session"
)

// Example runs a request/response session: the protocol is stated once,
// the peer's side is derived by duality, and a linearity violation —
// reusing a consumed endpoint — is caught, the error the Rust encoding
// turns into a compile failure.
func Example() {
	// client: !string . ?int . end
	proto := session.Send("string", session.Recv("int", session.End))
	client, server := session.New(proto, 1)

	go func() {
		req, s1, _ := server.Recv()
		s2, _ := s1.Send(len(req.(string)))
		_ = s2.Close()
	}()

	c1, _ := client.Send("hello")
	resp, c2, _ := c1.Recv()
	fmt.Println("length:", resp)

	// Linearity: the pre-send handle is consumed.
	_, err := client.Send("again")
	fmt.Println("stale handle rejected:", errors.Is(err, session.ErrConsumed))
	_ = c2
	// Output:
	// length: 5
	// stale handle rejected: true
}

// ExampleDual shows mechanical protocol duality.
func ExampleDual() {
	p := session.Choose(
		session.Send("int", session.End),
		session.Recv("string", session.End),
	)
	fmt.Println("mine: ", p)
	fmt.Println("yours:", session.Dual(p))
	// Output:
	// mine:  (+){!int.end | ?string.end}
	// yours: (&){?int.end | !string.end}
}
