package session

// spill.go turns the RAM session table into a cache over a durable flow
// set. A Table with a Spill attached evicts cold flows to an on-disk
// index when it grows past its cap and promotes them back on their next
// packet, so the tracked flow population is bounded by disk, not memory
// — the ROADMAP's million-flow direction. The interface is defined here
// (not in statestore) so the session package stays storage-agnostic;
// statestore.FlowIndex implements it structurally.

import (
	"repro/internal/packet"
)

// SpillRecord is the fixed-shape durable image of one flow: its
// restorable identity (hash, tuple, backend) plus the soft counters.
type SpillRecord struct {
	Hash    uint64
	Tuple   packet.FiveTuple
	Backend packet.IPv4
	Packets uint64
	Bytes   uint64
}

// Spill is the on-disk flow index contract. Implementations must be
// safe for concurrent use; the table calls them under its own lock.
type Spill interface {
	// SpillFlows durably records a batch of evicted flows (upsert by
	// Hash). An error leaves the batch untracked on disk; the table
	// keeps the flows in RAM.
	SpillFlows(recs []SpillRecord) error
	// LookupFlow returns the spilled record for a flow hash, if any.
	LookupFlow(hash uint64) (SpillRecord, bool, error)
	// FlowCount reports the number of distinct flows in the index.
	FlowCount() (int, error)
}

// SetSpill attaches a spill index and a RAM cap. When the table grows
// past maxFlows, Track evicts a batch of flows (down to ~7/8 of the
// cap, amortizing the spill write) into the index; a tracked packet for
// an evicted flow promotes it back with its counters intact. maxFlows
// <= 0 leaves the RAM table unbounded — the index then only serves
// lookups for flows spilled earlier (e.g. by a previous process).
func (t *Table) SetSpill(s Spill, maxFlows int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spill = s
	t.maxFlows = maxFlows
}

// SpillStats reports flows evicted to the index, flows promoted back,
// and spill I/O errors (each error leaves the table correct but over
// its RAM cap).
func (t *Table) SpillStats() (spilled, promoted, errs uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spilled, t.promoted, t.spillErrs
}

// promoteLocked pulls an evicted flow back into RAM on a miss. The
// promoted flow keeps its durable backend and counters and is marked
// Spilled: the index still holds it, so total-count views must not
// count it twice.
func (t *Table) promoteLocked(h uint64) *Flow {
	rec, ok, err := t.spill.LookupFlow(h)
	if err != nil {
		t.spillErrs++
		return nil
	}
	if !ok {
		return nil
	}
	f := &Flow{
		Tuple:   rec.Tuple,
		Backend: t.internLocked(rec.Backend).Clone(),
		Packets: rec.Packets,
		Bytes:   rec.Bytes,
		Spilled: true,
	}
	t.flows[h] = f
	t.promoted++
	return f
}

// evictLocked spills surplus flows once the table exceeds its cap,
// down to ~7/8 of maxFlows in one batch write. keep is the hash of the
// flow just touched — never a victim. Victim choice is map iteration
// order (effectively random); the paper's point is the durability
// machinery, not an eviction policy — see ROADMAP for the LRU gap.
func (t *Table) evictLocked(keep uint64) {
	if t.spill == nil || t.maxFlows <= 0 || len(t.flows) <= t.maxFlows {
		return
	}
	target := t.maxFlows - t.maxFlows/8
	if target < 1 {
		target = 1
	}
	victims := make([]uint64, 0, len(t.flows)-target)
	recs := make([]SpillRecord, 0, len(t.flows)-target)
	for h, f := range t.flows {
		if len(t.flows)-len(victims) <= target {
			break
		}
		if h == keep {
			continue
		}
		victims = append(victims, h)
		recs = append(recs, SpillRecord{
			Hash:    h,
			Tuple:   f.Tuple,
			Backend: f.Backend.Get().IP,
			Packets: f.Packets,
			Bytes:   f.Bytes,
		})
	}
	if len(recs) == 0 {
		return
	}
	if err := t.spill.SpillFlows(recs); err != nil {
		// The batch may not be durable: keep the flows in RAM (the table
		// runs over its cap — degraded, never wrong) and count it.
		t.spillErrs++
		return
	}
	for _, h := range victims {
		delete(t.flows, h)
	}
	t.spilled += uint64(len(recs))
}

// Lookup resolves a flow hash to its backend, reading through the RAM
// table into the spill index without promoting — the read-only view
// recovery tests and operational tooling use.
func (t *Table) Lookup(h uint64) (packet.IPv4, bool) {
	t.mu.Lock()
	if f, ok := t.flows[h]; ok {
		ip := f.Backend.Get().IP
		t.mu.Unlock()
		return ip, true
	}
	sp := t.spill
	t.mu.Unlock()
	if sp == nil {
		return 0, false
	}
	rec, ok, err := sp.LookupFlow(h)
	if err != nil || !ok {
		return 0, false
	}
	return rec.Backend, true
}

// TotalFlows reports the distinct flow population across RAM and the
// spill index: index flows plus RAM flows the index has never seen
// (promoted flows stay counted on the index side). Soft after a crash:
// flows tracked after the last durable epoch and never evicted are
// RAM-only and die with the process.
func (t *Table) TotalFlows() (int, error) {
	t.mu.Lock()
	ramOnly := 0
	for _, f := range t.flows {
		if !f.Spilled {
			ramOnly++
		}
	}
	sp := t.spill
	t.mu.Unlock()
	if sp == nil {
		return ramOnly, nil
	}
	n, err := sp.FlowCount()
	if err != nil {
		return ramOnly, err
	}
	return ramOnly + n, nil
}
