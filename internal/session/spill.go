package session

// spill.go turns the RAM session table into a cache over a durable flow
// set. A Table with a Spill attached evicts cold flows to an on-disk
// index when it grows past its cap and promotes them back on their next
// packet, so the tracked flow population is bounded by disk, not memory
// — the ROADMAP's million-flow direction. The interface is defined here
// (not in statestore) so the session package stays storage-agnostic;
// statestore.FlowIndex implements it structurally.

import (
	"repro/internal/packet"
)

// SpillRecord is the fixed-shape durable image of one flow: its
// restorable identity (hash, tuple, backend) plus the soft counters.
type SpillRecord struct {
	Hash    uint64
	Tuple   packet.FiveTuple
	Backend packet.IPv4
	Packets uint64
	Bytes   uint64
}

// Spill is the on-disk flow index contract. Implementations must be
// safe for concurrent use; the table calls them under its own lock.
type Spill interface {
	// SpillFlows durably records a batch of evicted flows (upsert by
	// Hash). An error leaves the batch untracked on disk; the table
	// keeps the flows in RAM. recs is scratch the table reuses across
	// eviction batches — implementations must not retain it.
	SpillFlows(recs []SpillRecord) error
	// LookupFlow returns the spilled record for a flow hash, if any.
	LookupFlow(hash uint64) (SpillRecord, bool, error)
	// FlowCount reports the number of distinct flows in the index.
	FlowCount() (int, error)
}

// SetSpill attaches a spill index and a RAM cap. When the table grows
// past maxFlows, Track evicts a batch of flows (down to ~7/8 of the
// cap, amortizing the spill write) into the index; a tracked packet for
// an evicted flow promotes it back with its counters intact. maxFlows
// <= 0 leaves the RAM table unbounded — the index then only serves
// lookups for flows spilled earlier (e.g. by a previous process).
func (t *Table) SetSpill(s Spill, maxFlows int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spill = s
	t.maxFlows = maxFlows
	t.rebuildRingLocked()
}

// SpillStats reports flows evicted to the index, flows promoted back,
// and spill I/O errors (each error leaves the table correct but over
// its RAM cap).
func (t *Table) SpillStats() (spilled, promoted, errs uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spilled, t.promoted, t.spillErrs
}

// HotTouched reports evictions_hot_touched: the number of times the
// eviction clock hand landed on a flow whose reference bit was set and
// spared it (clearing the bit) instead of spilling it. A workload with a
// hot/cold skew should see this climb while its hot flows stay resident
// — the observable proof eviction victims come from the cold tail.
func (t *Table) HotTouched() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hotTouched
}

// ringAppendLocked registers a newly resident flow with the eviction
// clock. The ring is only maintained while a spill index is attached.
func (t *Table) ringAppendLocked(h uint64) {
	if t.spill == nil {
		return
	}
	t.ring = append(t.ring, h)
}

// rebuildRingLocked reseeds the clock ring from the resident flow set —
// used when a spill index is attached to a populated table and after
// Restore replaces the flow map wholesale.
func (t *Table) rebuildRingLocked() {
	t.ring = t.ring[:0]
	t.hand = 0
	if t.spill == nil {
		return
	}
	for h := range t.flows {
		t.ring = append(t.ring, h)
	}
}

// promoteLocked pulls an evicted flow back into RAM on a miss. The
// promoted flow keeps its durable backend and counters and is marked
// Spilled: the index still holds it, so total-count views must not
// count it twice.
func (t *Table) promoteLocked(h uint64) *Flow {
	rec, ok, err := t.spill.LookupFlow(h)
	if err != nil {
		t.spillErrs++
		return nil
	}
	if !ok {
		return nil
	}
	f := t.newFlowLocked()
	f.Tuple = rec.Tuple
	f.Backend = t.internLocked(rec.Backend).Clone()
	f.Packets = rec.Packets
	f.Bytes = rec.Bytes
	f.Spilled = true
	t.flows[h] = f
	t.ringAppendLocked(h)
	t.promoted++
	return f
}

// evictLocked spills surplus flows once the table exceeds its cap,
// down to ~7/8 of maxFlows in one batch write. keep is the hash of the
// flow just touched — never a victim.
//
// Victims come from a clock-hand (second-chance) sweep: the hand walks
// the residency ring, spares any flow whose reference bit is set
// (clearing the bit and counting evictions_hot_touched), and spills the
// cold ones it lands on. Hot flows therefore survive as long as packets
// keep arriving for them; a plain map-order walk — the previous policy —
// spilled hot and cold alike. The victim and record slices are scratch
// retained on the table, so a steady eviction cadence allocates nothing.
func (t *Table) evictLocked(keep uint64) {
	if t.spill == nil || t.maxFlows <= 0 || len(t.flows) <= t.maxFlows {
		return
	}
	target := t.maxFlows - t.maxFlows/8
	if target < 1 {
		target = 1
	}
	need := len(t.flows) - target
	victims := t.victimScratch[:0]
	recs := t.recScratch[:0]
	// Budget bounds the sweep: one pass may only clear ref bits, the
	// second finds victims; stale ring entries shrink the ring as the
	// hand meets them, so the loop always terminates.
	budget := 2*len(t.ring) + need + 1
	for len(victims) < need && len(t.ring) > 0 && budget > 0 {
		budget--
		if t.hand >= len(t.ring) {
			t.hand = 0
		}
		h := t.ring[t.hand]
		f, ok := t.flows[h]
		if !ok {
			// Stale entry (flow already evicted or replaced): drop it and
			// re-examine the swapped-in slot.
			last := len(t.ring) - 1
			t.ring[t.hand] = t.ring[last]
			t.ring = t.ring[:last]
			continue
		}
		if h == keep {
			t.hand++
			continue
		}
		if f.hot {
			// Second chance: clear the bit, spare the flow this sweep.
			f.hot = false
			t.hotTouched++
			t.hand++
			continue
		}
		victims = append(victims, h)
		recs = append(recs, SpillRecord{
			Hash:    h,
			Tuple:   f.Tuple,
			Backend: f.Backend.Peek().IP,
			Packets: f.Packets,
			Bytes:   f.Bytes,
		})
		last := len(t.ring) - 1
		t.ring[t.hand] = t.ring[last]
		t.ring = t.ring[:last]
	}
	t.victimScratch = victims[:0]
	t.recScratch = recs[:0]
	if len(recs) == 0 {
		return
	}
	if err := t.spill.SpillFlows(recs); err != nil {
		// The batch may not be durable: keep the flows in RAM (the table
		// runs over its cap — degraded, never wrong), restore the victims
		// to the clock ring, and count it.
		t.spillErrs++
		t.ring = append(t.ring, victims...)
		return
	}
	for _, h := range victims {
		if f, ok := t.flows[h]; ok {
			delete(t.flows, h)
			t.freeFlowLocked(f)
		}
	}
	t.spilled += uint64(len(recs))
}

// Lookup resolves a flow hash to its backend, reading through the RAM
// table into the spill index without promoting — the read-only view
// recovery tests and operational tooling use.
func (t *Table) Lookup(h uint64) (packet.IPv4, bool) {
	t.mu.Lock()
	if f, ok := t.flows[h]; ok {
		ip := f.Backend.Get().IP
		t.mu.Unlock()
		return ip, true
	}
	sp := t.spill
	t.mu.Unlock()
	if sp == nil {
		return 0, false
	}
	rec, ok, err := sp.LookupFlow(h)
	if err != nil || !ok {
		return 0, false
	}
	return rec.Backend, true
}

// TotalFlows reports the distinct flow population across RAM and the
// spill index: index flows plus RAM flows the index has never seen
// (promoted flows stay counted on the index side). Soft after a crash:
// flows tracked after the last durable epoch and never evicted are
// RAM-only and die with the process.
func (t *Table) TotalFlows() (int, error) {
	t.mu.Lock()
	ramOnly := 0
	for _, f := range t.flows {
		if !f.Spilled {
			ramOnly++
		}
	}
	sp := t.spill
	t.mu.Unlock()
	if sp == nil {
		return ramOnly, nil
	}
	n, err := sp.FlowCount()
	if err != nil {
		return ramOnly, err
	}
	return ramOnly + n, nil
}
