package session

import (
	"errors"
	"testing"

	"repro/internal/packet"
)

// memSpill is an in-memory Spill for unit-testing the cache machinery
// without touching disk.
type memSpill struct {
	flows map[uint64]SpillRecord
	fail  bool
	puts  int
}

func newMemSpill() *memSpill { return &memSpill{flows: map[uint64]SpillRecord{}} }

func (m *memSpill) SpillFlows(recs []SpillRecord) error {
	if m.fail {
		return errors.New("spill down")
	}
	m.puts++
	for _, r := range recs {
		m.flows[r.Hash] = r
	}
	return nil
}

func (m *memSpill) LookupFlow(hash uint64) (SpillRecord, bool, error) {
	if m.fail {
		return SpillRecord{}, false, errors.New("spill down")
	}
	r, ok := m.flows[hash]
	return r, ok, nil
}

func (m *memSpill) FlowCount() (int, error) {
	if m.fail {
		return 0, errors.New("spill down")
	}
	return len(m.flows), nil
}

func TestSpillEviction(t *testing.T) {
	sp := newMemSpill()
	tbl := NewTable()
	const cap = 32
	tbl.SetSpill(sp, cap)
	const flows = 200
	for i := 0; i < flows; i++ {
		tbl.Track(flowTuple(i), 0xc0a80001, 100)
	}
	if tbl.Len() > cap {
		t.Fatalf("RAM table has %d flows, cap %d", tbl.Len(), cap)
	}
	spilled, _, errs := tbl.SpillStats()
	if spilled == 0 || errs != 0 {
		t.Fatalf("spilled=%d errs=%d", spilled, errs)
	}
	// Every flow is reachable: RAM or index.
	for i := 0; i < flows; i++ {
		h := flowTuple(i).Hash()
		ip, ok := tbl.Lookup(h)
		if !ok || ip != 0xc0a80001 {
			t.Fatalf("flow %d: %v, %v", i, ip, ok)
		}
	}
	total, err := tbl.TotalFlows()
	if err != nil {
		t.Fatal(err)
	}
	if total != flows {
		t.Fatalf("TotalFlows = %d, want %d (no double counting)", total, flows)
	}
	// Eviction batches, not one write per insert.
	if sp.puts >= flows-cap {
		t.Fatalf("%d spill writes for %d evictions — not batched", sp.puts, flows-cap)
	}
}

func TestSpillPromotion(t *testing.T) {
	sp := newMemSpill()
	tbl := NewTable()
	tbl.SetSpill(sp, 16)
	for i := 0; i < 100; i++ {
		tbl.Track(flowTuple(i), packet.IPv4(0xc0a80001+uint32(i%2)), 50)
	}
	// Find an evicted flow and touch it again: it must come back with
	// its backend and counters.
	var victim uint64
	var want SpillRecord
	for h, r := range sp.flows {
		victim, want = h, r
		break
	}
	if victim == 0 && len(sp.flows) == 0 {
		t.Fatal("nothing evicted")
	}
	tbl.Track(want.Tuple, 0xdddddddd /* ignored: identity comes from the index */, 25)
	tbl.mu.Lock()
	f := tbl.flows[victim]
	tbl.mu.Unlock()
	if f == nil {
		t.Fatal("victim not promoted")
	}
	if !f.Spilled {
		t.Fatal("promoted flow not marked Spilled")
	}
	if got := f.Backend.Get().IP; got != want.Backend {
		t.Fatalf("promoted backend %v, want %v (index identity wins)", got, want.Backend)
	}
	if f.Packets != want.Packets+1 || f.Bytes != want.Bytes+25 {
		t.Fatalf("promoted counters %d/%d, want continuation of %d/%d", f.Packets, f.Bytes, want.Packets, want.Bytes)
	}
	_, promoted, _ := tbl.SpillStats()
	if promoted == 0 {
		t.Fatal("promotion not counted")
	}
}

func TestSpillErrorDegradesGracefully(t *testing.T) {
	sp := newMemSpill()
	sp.fail = true
	tbl := NewTable()
	tbl.SetSpill(sp, 8)
	for i := 0; i < 50; i++ {
		tbl.Track(flowTuple(i), 0xc0a80001, 10)
	}
	// Evictions failed: the table runs over its cap but loses nothing.
	if tbl.Len() != 50 {
		t.Fatalf("RAM table has %d flows, want all 50 kept on spill failure", tbl.Len())
	}
	_, _, errs := tbl.SpillStats()
	if errs == 0 {
		t.Fatal("spill errors not counted")
	}
	for i := 0; i < 50; i++ {
		if ip, ok := tbl.Lookup(flowTuple(i).Hash()); !ok || ip != 0xc0a80001 {
			t.Fatalf("flow %d lost on spill failure", i)
		}
	}
}

func TestNoSpillUnchanged(t *testing.T) {
	tbl := NewTable()
	for i := 0; i < 100; i++ {
		tbl.Track(flowTuple(i), 0xc0a80001, 10)
	}
	if tbl.Len() != 100 {
		t.Fatalf("unspilled table capped: %d", tbl.Len())
	}
	total, err := tbl.TotalFlows()
	if err != nil || total != 100 {
		t.Fatalf("TotalFlows = %d, %v", total, err)
	}
	if _, ok := tbl.Lookup(flowTuple(0).Hash()); !ok {
		t.Fatal("Lookup without spill broken")
	}
	if _, ok := tbl.Lookup(12345); ok {
		t.Fatal("phantom flow")
	}
}
