package session

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

// queryProto is a small request/response protocol:
// client: !string . ?int . end
func queryProto() *Protocol {
	return Send("string", Recv("int", End))
}

func TestSimpleExchange(t *testing.T) {
	client, server := New(queryProto(), 0)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Server side: ?string . !int . end
		req, s1, err := server.Recv()
		if err != nil {
			t.Errorf("server recv: %v", err)
			return
		}
		if req.(string) != "len" {
			t.Errorf("req = %v", req)
		}
		s2, err := s1.Send(3)
		if err != nil {
			t.Errorf("server send: %v", err)
			return
		}
		if err := s2.Close(); err != nil && !errors.Is(err, ErrClosed) {
			t.Errorf("server close: %v", err)
		}
	}()

	c1, err := client.Send("len")
	if err != nil {
		t.Fatal(err)
	}
	resp, c2, err := c1.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if resp.(int) != 3 {
		t.Fatalf("resp = %v", resp)
	}
	if err := c2.Close(); err != nil && !errors.Is(err, ErrClosed) {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestLinearityViolationCaught(t *testing.T) {
	client, _ := New(queryProto(), 1)
	c1, err := client.Send("x")
	if err != nil {
		t.Fatal(err)
	}
	_ = c1
	// Reusing the consumed handle is the session-type violation the Rust
	// encoding rejects at compile time.
	if _, err := client.Send("again"); !errors.Is(err, ErrConsumed) {
		t.Fatalf("err = %v, want ErrConsumed", err)
	}
}

func TestProtocolViolationCaught(t *testing.T) {
	client, _ := New(queryProto(), 1)
	// Protocol says Send first; Recv is out of order.
	if _, _, err := client.Recv(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestPayloadTypeChecked(t *testing.T) {
	client, _ := New(queryProto(), 1)
	if _, err := client.Send(42); !errors.Is(err, ErrType) {
		t.Fatalf("err = %v, want ErrType", err)
	}
	// The failed send did not consume the step: the right payload works.
	if _, err := client.Send("ok"); err != nil {
		t.Fatalf("retry after type error: %v", err)
	}
}

func TestChooseOffer(t *testing.T) {
	// client: (+){ !int.end | !string.end }
	proto := Choose(Send("int", End), Send("string", End))
	client, server := New(proto, 1)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		br, s1, err := server.Offer()
		if err != nil {
			t.Errorf("offer: %v", err)
			return
		}
		if br != Right {
			t.Errorf("branch = %v", br)
			return
		}
		v, s2, err := s1.Recv()
		if err != nil || v.(string) != "hi" {
			t.Errorf("recv after offer: %v %v", v, err)
			return
		}
		if err := s2.Close(); err != nil && !errors.Is(err, ErrClosed) {
			t.Errorf("close: %v", err)
		}
	}()

	c1, err := client.Choose(Right)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := c1.Send("hi")
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil && !errors.Is(err, ErrClosed) {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestCloseBeforeEndRejected(t *testing.T) {
	client, _ := New(queryProto(), 1)
	if err := client.Close(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestUseAfterCloseRejected(t *testing.T) {
	client, server := New(Send("int", End), 1)
	c1, err := client.Send(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	// The server's receive still works (message was buffered).
	v, s1, err := server.Recv()
	if err != nil || v.(int) != 1 {
		t.Fatalf("recv = %v %v", v, err)
	}
	_ = s1
	// But sending into the closed channel is refused.
	c2, s2 := New(Send("int", End), 1)
	_ = s2
	cc, _ := c2.Send(5)
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroEndpoint(t *testing.T) {
	var e Endpoint
	if e.Protocol() != nil {
		t.Fatal("zero endpoint has protocol")
	}
	if _, err := e.Send(1); !errors.Is(err, ErrConsumed) {
		t.Fatalf("err = %v", err)
	}
}

func TestDualInvolution(t *testing.T) {
	protos := []*Protocol{
		End,
		queryProto(),
		Choose(Send("int", End), Recv("string", Send("bool", End))),
		Offer(End, Recv("int", End)),
	}
	for _, p := range protos {
		if !Dual(Dual(p)).Equal(p) {
			t.Fatalf("dual not involutive for %s", p)
		}
	}
	if Dual(nil) != nil {
		t.Fatal("Dual(nil)")
	}
}

func TestDualShape(t *testing.T) {
	p := queryProto()
	d := Dual(p)
	want := Recv("string", Send("int", End))
	if !d.Equal(want) {
		t.Fatalf("dual = %s, want %s", d, want)
	}
}

func TestProtocolString(t *testing.T) {
	p := Choose(Send("int", End), Offer(End, Recv("string", End)))
	got := p.String()
	if got != "(+){!int.end | (&){end | ?string.end}}" {
		t.Fatalf("String = %q", got)
	}
	if KindSend.String() != "Send" || Kind(99).String() == "" {
		t.Fatal("kind names")
	}
}

func TestProtocolAfterEachStep(t *testing.T) {
	client, server := New(queryProto(), 1)
	if client.Protocol().Kind != KindSend {
		t.Fatal("initial protocol")
	}
	c1, err := client.Send("q")
	if err != nil {
		t.Fatal(err)
	}
	if client.Protocol() != nil {
		t.Fatal("consumed endpoint still reports protocol")
	}
	if c1.Protocol().Kind != KindRecv {
		t.Fatalf("continuation protocol = %s", c1.Protocol())
	}
	_, s1, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if s1.Protocol().Kind != KindSend {
		t.Fatalf("server continuation = %s", s1.Protocol())
	}
}

// Property: a randomly generated linear protocol, executed faithfully by
// both sides, always runs to completion with no protocol errors; dual
// derivation keeps the two sides compatible.
func TestQuickRandomProtocolRuns(t *testing.T) {
	type step uint8 // 0=send int, 1=recv int
	f := func(steps []uint8) bool {
		if len(steps) > 12 {
			steps = steps[:12]
		}
		// Build the client protocol.
		proto := End
		for i := len(steps) - 1; i >= 0; i-- {
			if steps[i]%2 == 0 {
				proto = Send("int", proto)
			} else {
				proto = Recv("int", proto)
			}
		}
		client, server := New(proto, len(steps)+1)
		errc := make(chan error, 2)
		run := func(e Endpoint) {
			for {
				p := e.Protocol()
				if p == nil {
					errc <- errors.New("consumed endpoint in driver")
					return
				}
				switch p.Kind {
				case KindSend:
					next, err := e.Send(7)
					if err != nil {
						errc <- err
						return
					}
					e = next
				case KindRecv:
					_, next, err := e.Recv()
					if err != nil {
						errc <- err
						return
					}
					e = next
				case KindEnd:
					errc <- nil
					return
				}
			}
		}
		go run(client)
		go run(server)
		for i := 0; i < 2; i++ {
			if err := <-errc; err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
