package session

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/packet"
)

func flowTuple(i int) packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP:   packet.IPv4(0x0a000000 + uint32(i)),
		DstIP:   0x0a630001,
		SrcPort: uint16(1024 + i),
		DstPort: 80,
		Proto:   17,
	}
}

func TestTokenRoundTrip(t *testing.T) {
	src := NewTable()
	for i := 0; i < 50; i++ {
		src.Track(flowTuple(i), packet.IPv4(0xc0a80001+uint32(i%3)), 100+i)
	}
	snap, err := src.Checkpoint(checkpoint.NewEngine(checkpoint.RcAware))
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	payload, err := src.EncodeToken(snap)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}

	dst := NewTable()
	token, err := dst.DecodeToken(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := dst.Restore(token); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if dst.Len() != src.Len() {
		t.Fatalf("restored %d flows, want %d", dst.Len(), src.Len())
	}
	want := src.Entries()
	got := dst.Entries()
	for h, ip := range want {
		if got[h] != ip {
			t.Fatalf("flow %x → %v, want %v", h, got[h], ip)
		}
	}
	// Figure 3a aliasing survives the byte round trip: 3 distinct
	// backends means 3 Rc boxes, shared across the 50 flows.
	if dst.Backends() != 3 {
		t.Fatalf("restored %d backends, want 3", dst.Backends())
	}
	dst.mu.Lock()
	boxes := map[packet.IPv4]checkpoint.Rc[Backend]{}
	for _, f := range dst.flows {
		ip := f.Backend.Get().IP
		if prev, ok := boxes[ip]; ok {
			if !prev.SameBox(f.Backend) {
				dst.mu.Unlock()
				t.Fatal("same-backend flows no longer share a box after decode")
			}
		} else {
			boxes[ip] = f.Backend
		}
	}
	dst.mu.Unlock()

	// Counters ride along.
	dst.mu.Lock()
	h0 := flowTuple(0).Hash()
	f0 := dst.flows[h0]
	dst.mu.Unlock()
	if f0 == nil || f0.Packets != 1 || f0.Bytes != 100 {
		t.Fatalf("flow 0 counters: %+v", f0)
	}

	// The decoded token is reusable: a second restore from the same
	// token must not alias the first restore's since-mutated state.
	dst.Track(flowTuple(999), 0xc0a80001, 1)
	dst2 := NewTable()
	if err := dst2.Restore(token); err != nil {
		t.Fatalf("second restore: %v", err)
	}
	if dst2.Len() != src.Len() {
		t.Fatalf("second restore has %d flows, want %d", dst2.Len(), src.Len())
	}
}

func TestTokenRoundTripEmpty(t *testing.T) {
	src := NewTable()
	snap, err := src.Checkpoint(checkpoint.NewEngine(checkpoint.RcAware))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := src.EncodeToken(snap)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewTable()
	token, err := dst.DecodeToken(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Restore(token); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 0 {
		t.Fatalf("empty round trip has %d flows", dst.Len())
	}
}

func TestDecodeTokenRejectsGarbage(t *testing.T) {
	tbl := NewTable()
	if _, err := tbl.DecodeToken(nil); err == nil {
		t.Fatal("nil token accepted")
	}
	if _, err := tbl.DecodeToken([]byte{99, 0, 0, 0, 0}); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := tbl.DecodeToken([]byte{sessionTokenVersion, 5, 0, 0, 0, 1, 2, 3}); err == nil {
		t.Fatal("truncated token accepted")
	}
	if _, err := tbl.EncodeToken("not a snapshot"); err == nil {
		t.Fatal("bad encode token accepted")
	}
}
