package session

// durable.go implements the domain runtime's TokenCodec for the table:
// checkpoint tokens (engine snapshots of the flow graph) serialize to a
// flat little-endian image and decode back into a *checkpoint.Snapshot
// — so Restore sees exactly the token shape it already handles, and the
// decoded token is reusable across repeated restores like any other
// epoch. Decoding interns one Rc box per distinct backend, preserving
// the Figure 3a aliasing the checkpoint engine works over.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/packet"
)

// tokenVersion guards the session token wire format.
const sessionTokenVersion = 1

// Per-flow wire entry: u64 hash, u32 src, u32 dst, u16 sport, u16
// dport, u8 proto, u8 spilled, u32 backend, u64 packets, u64 bytes.
const sessionEntrySize = 8 + 4 + 4 + 2 + 2 + 1 + 1 + 4 + 8 + 8

// EncodeToken implements domain.TokenCodec: serialize a Checkpoint
// token. The snapshot is materialized into a private image first, so
// encoding never touches live state.
func (t *Table) EncodeToken(token any) ([]byte, error) {
	snap, ok := token.(*checkpoint.Snapshot)
	if !ok {
		return nil, fmt.Errorf("session: encode token is %T, want *checkpoint.Snapshot", token)
	}
	v, err := snap.Materialize()
	if err != nil {
		return nil, fmt.Errorf("session: encode: materialize: %w", err)
	}
	img, ok := v.(*tableImage)
	if !ok {
		return nil, fmt.Errorf("session: snapshot holds %T, want *tableImage", v)
	}
	buf := make([]byte, 0, 1+4+len(img.Flows)*sessionEntrySize)
	buf = append(buf, sessionTokenVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(img.Flows)))
	for h, f := range img.Flows {
		var ip packet.IPv4
		if !f.Backend.IsZero() {
			ip = f.Backend.Get().IP
		}
		buf = binary.LittleEndian.AppendUint64(buf, h)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Tuple.SrcIP))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Tuple.DstIP))
		buf = binary.LittleEndian.AppendUint16(buf, f.Tuple.SrcPort)
		buf = binary.LittleEndian.AppendUint16(buf, f.Tuple.DstPort)
		buf = append(buf, f.Tuple.Proto)
		var spilled byte
		if f.Spilled {
			spilled = 1
		}
		buf = append(buf, spilled)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(ip))
		buf = binary.LittleEndian.AppendUint64(buf, f.Packets)
		buf = binary.LittleEndian.AppendUint64(buf, f.Bytes)
	}
	return buf, nil
}

// DecodeToken implements domain.TokenCodec: rebuild the flow image
// (re-interning shared backend boxes) and re-checkpoint it with an
// RcAware engine, yielding a token Restore accepts unchanged.
func (t *Table) DecodeToken(data []byte) (any, error) {
	if len(data) < 5 || data[0] != sessionTokenVersion {
		return nil, fmt.Errorf("session: bad token header")
	}
	n := int(binary.LittleEndian.Uint32(data[1:]))
	data = data[5:]
	if len(data) != n*sessionEntrySize {
		return nil, fmt.Errorf("session: token has %d bytes, want %d for %d flows", len(data), n*sessionEntrySize, n)
	}
	img := &tableImage{Flows: make(map[uint64]*Flow, n)}
	intern := make(map[packet.IPv4]checkpoint.Rc[Backend])
	for i := 0; i < n; i++ {
		e := data[i*sessionEntrySize:]
		h := binary.LittleEndian.Uint64(e)
		f := &Flow{
			Tuple: packet.FiveTuple{
				SrcIP:   packet.IPv4(binary.LittleEndian.Uint32(e[8:])),
				DstIP:   packet.IPv4(binary.LittleEndian.Uint32(e[12:])),
				SrcPort: binary.LittleEndian.Uint16(e[16:]),
				DstPort: binary.LittleEndian.Uint16(e[18:]),
				Proto:   e[20],
			},
			Spilled: e[21] == 1,
			Packets: binary.LittleEndian.Uint64(e[26:]),
			Bytes:   binary.LittleEndian.Uint64(e[34:]),
		}
		ip := packet.IPv4(binary.LittleEndian.Uint32(e[22:]))
		rc, ok := intern[ip]
		if !ok {
			rc = checkpoint.NewRc(Backend{IP: ip})
			intern[ip] = rc
		}
		f.Backend = rc.Clone()
		img.Flows[h] = f
	}
	snap, err := checkpoint.NewEngine(checkpoint.RcAware).Checkpoint(img)
	if err != nil {
		return nil, fmt.Errorf("session: decode: re-checkpoint: %w", err)
	}
	return snap, nil
}
