package telemetry

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestConcurrentRegistrationVsRecord hammers the record path from many
// goroutines while the registry concurrently registers, scrapes, and
// unregisters the very cells being written — the registration-vs-record
// race the design claims is impossible (writers never touch the
// registry). Run under -race via the Makefile race tier.
func TestConcurrentRegistrationVsRecord(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(256)
	const writers = 8
	var cs [writers]Counter
	var hs [writers]Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			actor := rec.Actor("writer")
			for {
				cs[w].Add(1)
				hs[w].Observe(time.Microsecond)
				rec.Record(actor, EvSend, uint64(w))
				select {
				case <-stop:
					return
				default:
				}
			}
		}(w)
	}

	// Registration churn + scrapes + dumps race against the writers.
	labels := []Labels{nil, {"w": "0"}, {"w": "1"}}
	for i := 0; i < 200; i++ {
		w := i % writers
		reg.RegisterCounter("churn_total", labels[i%len(labels)], &cs[w])
		reg.RegisterHistogram("churn_seconds", labels[i%len(labels)], &hs[w])
		if err := reg.WritePrometheus(io.Discard); err != nil {
			t.Fatal(err)
		}
		_ = reg.Snapshot()
		_ = rec.Dump()
		if i%10 == 0 {
			reg.Unregister("churn_total", labels[i%len(labels)])
		}
	}
	close(stop)
	wg.Wait()

	var total uint64
	for w := range cs {
		total += cs[w].Load()
	}
	if total == 0 {
		t.Fatal("writers recorded nothing")
	}
	if len(rec.Dump()) == 0 {
		t.Fatal("recorder dumped nothing after concurrent records")
	}
}
