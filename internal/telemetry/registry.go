package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Labels name a metric series within a family ({"domain": "worker-3"}).
// Labels are resolved to a string key at registration time only; the
// record path never sees them.
type Labels map[string]string

// With returns a copy of l with k=v added (l itself is not modified), so
// call sites can layer e.g. a queue index onto a port's base labels.
func (l Labels) With(k, v string) Labels {
	out := make(Labels, len(l)+1)
	for lk, lv := range l {
		out[lk] = lv
	}
	out[k] = v
	return out
}

// String serializes labels in Prometheus form with deterministic
// (sorted) key order: {a="1",b="2"}. Empty labels serialize to "".
func (l Labels) String() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}

// metricKind selects the Prometheus TYPE line and the export shape.
type metricKind uint8

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered series: a name, serialized labels, and a way
// to read the cell at scrape time.
type metric struct {
	name   string
	labels string
	kind   metricKind
	read   func() float64 // counter/gauge value at scrape time
	hist   *Histogram
}

func (m *metric) key() string { return m.name + m.labels }

// Registry maps names and labels onto metric cells for export. All
// methods are safe for concurrent use, including registration while
// other goroutines record into already-registered cells — writers never
// touch the registry. A nil *Registry is valid and ignores every call,
// so layers can instrument unconditionally and let the caller decide
// whether anything is exported.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// add installs (or replaces) a series. Replacement keeps registration
// idempotent for runners that re-register per run.
func (r *Registry) add(m *metric) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.metrics[m.key()] = m
	r.mu.Unlock()
}

// Series constructors shared by the Registry's immediate registration
// and the Txn's batched one.

func counterMetric(name string, labels Labels, c *Counter) *metric {
	return &metric{name: name, labels: labels.String(), kind: counterKind,
		read: func() float64 { return float64(c.Load()) }}
}

func counterFuncMetric(name string, labels Labels, fn func() float64) *metric {
	return &metric{name: name, labels: labels.String(), kind: counterKind, read: fn}
}

func gaugeMetric(name string, labels Labels, g *Gauge) *metric {
	return &metric{name: name, labels: labels.String(), kind: gaugeKind,
		read: func() float64 { return float64(g.Load()) }}
}

func gaugeFuncMetric(name string, labels Labels, fn func() float64) *metric {
	return &metric{name: name, labels: labels.String(), kind: gaugeKind, read: fn}
}

func histogramMetric(name string, labels Labels, h *Histogram) *metric {
	return &metric{name: name, labels: labels.String(), kind: histogramKind, hist: h}
}

// RegisterCounter exports c under name+labels.
func (r *Registry) RegisterCounter(name string, labels Labels, c *Counter) {
	r.add(counterMetric(name, labels, c))
}

// RegisterCounterFunc exports a counter whose value is computed at
// scrape time (for monotonic values kept in a foreign representation,
// e.g. accumulated backoff nanoseconds).
func (r *Registry) RegisterCounterFunc(name string, labels Labels, fn func() float64) {
	r.add(counterFuncMetric(name, labels, fn))
}

// RegisterGauge exports g under name+labels.
func (r *Registry) RegisterGauge(name string, labels Labels, g *Gauge) {
	r.add(gaugeMetric(name, labels, g))
}

// RegisterGaugeFunc exports a gauge computed at scrape time (mailbox
// depth, pool occupancy). fn may take locks; it runs only on the read
// path.
func (r *Registry) RegisterGaugeFunc(name string, labels Labels, fn func() float64) {
	r.add(gaugeFuncMetric(name, labels, fn))
}

// RegisterHistogram exports h under name+labels. By convention latency
// histograms are named *_seconds; buckets and sums are exported in
// seconds regardless of the nanosecond cells inside.
func (r *Registry) RegisterHistogram(name string, labels Labels, h *Histogram) {
	r.add(histogramMetric(name, labels, h))
}

// Registrar is the registration surface a component exports its metrics
// through — satisfied by *Registry (each series installs immediately)
// and by *Txn (series install together at Commit). Components that
// register a related group of series while scrapes may be in flight
// should take a Registrar so callers can make the group atomic.
type Registrar interface {
	RegisterCounter(name string, labels Labels, c *Counter)
	RegisterCounterFunc(name string, labels Labels, fn func() float64)
	RegisterGauge(name string, labels Labels, g *Gauge)
	RegisterGaugeFunc(name string, labels Labels, fn func() float64)
	RegisterHistogram(name string, labels Labels, h *Histogram)
}

var (
	_ Registrar = (*Registry)(nil)
	_ Registrar = (*Txn)(nil)
)

// Txn batches registrations into one atomic install. Registering series
// one call at a time is fine before traffic, but a registration burst
// while the metrics endpoint is live — a runner re-registering its
// per-worker series at Run time, a supervisor spawning domains — lets a
// concurrent scrape observe the group half-replaced: some series from
// the new generation, some from the old (or missing). A Txn accumulates
// the group and Commit installs it under one lock hold, so every
// snapshot sees the group entirely before or entirely after.
//
// A Txn is single-goroutine (accumulate, then Commit once); the Commit
// itself is what synchronizes with scrapes. A Txn from a nil registry
// discards everything, preserving the registry's nil-is-disabled
// contract.
type Txn struct {
	r       *Registry
	pending []*metric
}

// Begin opens a registration transaction on r.
func (r *Registry) Begin() *Txn { return &Txn{r: r} }

func (t *Txn) add(m *metric) {
	if t.r == nil {
		return
	}
	t.pending = append(t.pending, m)
}

// RegisterCounter stages c for Commit.
func (t *Txn) RegisterCounter(name string, labels Labels, c *Counter) {
	t.add(counterMetric(name, labels, c))
}

// RegisterCounterFunc stages a computed counter for Commit.
func (t *Txn) RegisterCounterFunc(name string, labels Labels, fn func() float64) {
	t.add(counterFuncMetric(name, labels, fn))
}

// RegisterGauge stages g for Commit.
func (t *Txn) RegisterGauge(name string, labels Labels, g *Gauge) {
	t.add(gaugeMetric(name, labels, g))
}

// RegisterGaugeFunc stages a computed gauge for Commit.
func (t *Txn) RegisterGaugeFunc(name string, labels Labels, fn func() float64) {
	t.add(gaugeFuncMetric(name, labels, fn))
}

// RegisterHistogram stages h for Commit.
func (t *Txn) RegisterHistogram(name string, labels Labels, h *Histogram) {
	t.add(histogramMetric(name, labels, h))
}

// Commit installs every staged series under one lock hold, making the
// whole group visible to scrapes at once. The Txn empties and may be
// reused.
func (t *Txn) Commit() {
	if t.r == nil || len(t.pending) == 0 {
		t.pending = nil
		return
	}
	t.r.mu.Lock()
	for _, m := range t.pending {
		t.r.metrics[m.key()] = m
	}
	t.r.mu.Unlock()
	t.pending = nil
}

// Unregister removes the series with the given name+labels, if present.
func (r *Registry) Unregister(name string, labels Labels) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.metrics, name+labels.String())
	r.mu.Unlock()
}

// snapshotMetrics copies the metric list (sorted by name, then labels)
// so exports iterate without holding the lock across user read funcs.
func (r *Registry) snapshotMetrics() []*metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// WritePrometheus writes every registered series in the Prometheus text
// exposition format: one # TYPE line per family, histograms expanded to
// cumulative _bucket/_sum/_count series with le bounds in seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	lastFamily := ""
	for _, m := range r.snapshotMetrics() {
		if m.name != lastFamily {
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
			lastFamily = m.name
		}
		if m.kind != histogramKind {
			fmt.Fprintf(&b, "%s%s %g\n", m.name, m.labels, m.read())
			continue
		}
		s := m.hist.Snapshot()
		var cum uint64
		for i, c := range s.Buckets {
			cum += c
			le := "+Inf"
			if i < NumBuckets-1 {
				le = fmt.Sprintf("%g", BucketUpper(i).Seconds())
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", m.name, withLabel(m.labels, "le", le), cum)
		}
		fmt.Fprintf(&b, "%s_sum%s %g\n", m.name, m.labels, s.Sum.Seconds())
		fmt.Fprintf(&b, "%s_count%s %d\n", m.name, m.labels, s.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// withLabel splices one more label into an already-serialized label set.
func withLabel(labels, k, v string) string {
	pair := fmt.Sprintf("%s=%q", k, v)
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// HistogramValue is the JSON export shape of one histogram series.
type HistogramValue struct {
	Count   uint64  `json:"count"`
	SumSecs float64 `json:"sum_seconds"`
	P50Secs float64 `json:"p50_seconds"`
	P99Secs float64 `json:"p99_seconds"`
}

// Snapshot returns every registered series as a flat map from
// "name{labels}" to a float64 (counters, gauges) or a HistogramValue,
// per the package's snapshot contract.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, m := range r.snapshotMetrics() {
		if m.kind != histogramKind {
			out[m.key()] = m.read()
			continue
		}
		s := m.hist.Snapshot()
		out[m.key()] = HistogramValue{
			Count:   s.Count,
			SumSecs: s.Sum.Seconds(),
			P50Secs: s.Quantile(0.5).Seconds(),
			P99Secs: s.Quantile(0.99).Seconds(),
		}
	}
	return out
}

// WriteJSON writes Snapshot as one JSON object.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.Snapshot())
}

// Handler serves the registry: the Prometheus text format at any path,
// or the JSON snapshot when the request asks for ?format=json.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = r.WritePrometheus(w)
	})
}
