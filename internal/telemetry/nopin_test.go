package telemetry

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestRecorderSlotPinsNothing asserts, structurally, that the flight
// recorder cannot retain payloads: a ring slot's type has no
// pointer-bearing field, so nothing a Record call stores can keep a
// linear.Owned payload (or any heap object) alive. Actor names are
// interned to integer IDs precisely to preserve this property.
func TestRecorderSlotPinsNothing(t *testing.T) {
	leakcheck.NoPointers(t, "telemetry.slot", slot{})
	leakcheck.NoPointers(t, "telemetry.Counter", Counter{})
	leakcheck.NoPointers(t, "telemetry.Gauge", Gauge{})
	leakcheck.NoPointers(t, "telemetry.Histogram", Histogram{})
}
