package trace

import (
	"encoding/json"
	"net/http/httptest"
	"runtime/metrics"
	"strings"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/telemetry"
)

// TestSpanNoPointers is the structural half of the zero-alloc claim: the
// span rides inside every mbuf and the ring slots live for the process
// lifetime, so neither may contain a pointer the GC would have to chase.
func TestSpanNoPointers(t *testing.T) {
	leakcheck.NoPointers(t, "trace.Span", Span{})
	leakcheck.NoPointers(t, "trace.traceSlot", traceSlot{})
	leakcheck.NoPointers(t, "trace.Mark", Mark{})
}

func TestStageNames(t *testing.T) {
	for st := Stage(0); st < NumStages; st++ {
		if s := st.String(); strings.HasPrefix(s, "stage(") {
			t.Errorf("stage %d has no name", st)
		}
	}
	for _, name := range []string{"parse", "firewall", "maglev", "session"} {
		st, ok := StageForName(name)
		if !ok || st.String() != name {
			t.Errorf("StageForName(%q) = %v, %v", name, st, ok)
		}
	}
	if st, ok := StageForName("chaos-injector"); ok || st != NumStages {
		t.Errorf("unknown operator mapped to %v, ok=%v; want NumStages sentinel", st, ok)
	}
}

func TestSamplerInterval(t *testing.T) {
	tr := New(Config{SampleEvery: 100}) // rounds up to 128
	if got := tr.SampleEvery(); got != 128 {
		t.Fatalf("SampleEvery() = %d, want 128", got)
	}
	samp := tr.NewSampler()
	armedCount := 0
	var sp Span
	for i := 0; i < 128 * 4; i++ {
		if samp.MaybeArm(&sp, 0) {
			armedCount++
			tr.Abort(&sp) // return the span so conservation holds
		}
	}
	if armedCount != 4 {
		t.Fatalf("armed %d of %d packets, want exactly 4", armedCount, 128*4)
	}
	armed, completed, aborted := tr.Counts()
	if armed != 4 || completed != 0 || aborted != 4 {
		t.Fatalf("counts = %d/%d/%d, want 4/0/4", armed, completed, aborted)
	}
}

// TestLifecycle walks one span through arm → stage stamps → Complete and
// checks the dumped record, the attribution counters, and the recorder
// exemplar event.
func TestLifecycle(t *testing.T) {
	rec := telemetry.NewRecorder(16)
	tr := New(Config{SampleEvery: 1, Recorder: rec})
	samp := tr.NewSampler()

	var sp Span
	if !samp.MaybeArm(&sp, 3) {
		t.Fatal("SampleEvery=1 sampler did not arm the first packet")
	}
	if !sp.Armed() {
		t.Fatal("span not armed after MaybeArm returned true")
	}
	id := sp.ID()
	for _, st := range []Stage{StageParse, StageFirewall, StageMaglev, StageSession} {
		sp.StampAt(st, tr.Now())
	}
	tr.Complete(&sp)
	if sp.Armed() {
		t.Fatal("span still armed after Complete")
	}
	// Completing again must be a no-op (the span is disarmed).
	tr.Complete(&sp)
	armed, completed, aborted := tr.Counts()
	if armed != 1 || completed != 1 || aborted != 0 {
		t.Fatalf("counts = %d/%d/%d, want 1/1/0", armed, completed, aborted)
	}

	recs := tr.Dump()
	if len(recs) != 1 {
		t.Fatalf("Dump() returned %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.ID != id || r.Worker != 3 {
		t.Fatalf("record = id %d worker %d, want id %d worker 3", r.ID, r.Worker, id)
	}
	for _, st := range []Stage{StageIngress, StageParse, StageFirewall, StageMaglev, StageSession, StageTx} {
		if r.Stamps[st] == 0 {
			t.Errorf("stage %s has no stamp", st)
		}
	}
	for _, st := range []Stage{StageMailboxSend, StageMailboxRecv} {
		if r.Stamps[st] != 0 {
			t.Errorf("unvisited stage %s has a stamp", st)
		}
	}
	segs := r.Segments()
	if len(segs) != 6 {
		t.Fatalf("Segments() = %d entries, want 6 (ingress + 4 NFs + tx)", len(segs))
	}
	if segs[0].Stage != "ingress" || segs[0].Nanos != 0 {
		t.Errorf("first segment = %+v, want zero-length ingress anchor", segs[0])
	}
	if r.Total() < 0 {
		t.Errorf("Total() = %v, want >= 0", r.Total())
	}

	// The completion must have left an exemplar event carrying the ID.
	found := false
	for _, ev := range rec.Dump() {
		if ev.Kind == telemetry.EvTrace && ev.Arg == id {
			found = true
		}
	}
	if !found {
		t.Error("no EvTrace event with the trace ID in the recorder")
	}
}

func TestAbortEmitsEvent(t *testing.T) {
	rec := telemetry.NewRecorder(16)
	tr := New(Config{SampleEvery: 1, Recorder: rec})
	var sp Span
	tr.NewSampler().MaybeArm(&sp, 0)
	id := sp.ID()
	tr.Abort(&sp)
	if sp.Armed() {
		t.Fatal("span still armed after Abort")
	}
	tr.Abort(&sp) // disarmed: must not double-count
	armed, completed, aborted := tr.Counts()
	if armed != 1 || completed != 0 || aborted != 1 {
		t.Fatalf("counts = %d/%d/%d, want 1/0/1", armed, completed, aborted)
	}
	found := false
	for _, ev := range rec.Dump() {
		if ev.Kind == telemetry.EvTraceAbort && ev.Arg == id {
			found = true
		}
	}
	if !found {
		t.Error("no EvTraceAbort event with the trace ID in the recorder")
	}
}

// TestUnarmedSpanIsInert: the pipeline stamps unconditionally, so every
// span method must be a no-op on the zero value.
func TestUnarmedSpanIsInert(t *testing.T) {
	var sp Span
	sp.StampAt(StageParse, Mark{Nanos: 123, Allocs: 4})
	if sp != (Span{}) {
		t.Fatal("StampAt modified an unarmed span")
	}
	tr := New(Config{SampleEvery: 1})
	tr.Complete(&sp)
	tr.Abort(&sp)
	if a, c, ab := tr.Counts(); a != 0 || c != 0 || ab != 0 {
		t.Fatalf("unarmed span moved lifecycle counters: %d/%d/%d", a, c, ab)
	}
}

// TestNilTracer: a nil *Tracer must be fully inert so ports and runners
// can instrument unconditionally.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.SampleEvery() != 0 || tr.Cap() != 0 {
		t.Fatal("nil tracer reports nonzero config")
	}
	samp := tr.NewSampler()
	var sp Span
	for i := 0; i < 100; i++ {
		if samp.MaybeArm(&sp, 0) {
			t.Fatal("nil tracer's sampler armed a span")
		}
	}
	tr.Complete(&sp)
	tr.Abort(&sp)
	tr.RegisterMetrics(telemetry.NewRegistry(), nil)
	if got := tr.Dump(); got != nil {
		t.Fatalf("nil tracer Dump() = %v, want nil", got)
	}
	if a, c, ab := tr.Counts(); a != 0 || c != 0 || ab != 0 {
		t.Fatal("nil tracer has nonzero counts")
	}
	// Handlers still serve — they report disabled.
	for _, h := range []struct {
		name string
		w    *httptest.ResponseRecorder
	}{{"traces", httptest.NewRecorder()}, {"alloc", httptest.NewRecorder()}} {
		req := httptest.NewRequest("GET", "/debug/"+h.name, nil)
		if h.name == "traces" {
			tr.Handler().ServeHTTP(h.w, req)
		} else {
			tr.AllocHandler().ServeHTTP(h.w, req)
		}
		var body struct {
			Enabled bool `json:"enabled"`
		}
		if err := json.Unmarshal(h.w.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s: bad JSON: %v", h.name, err)
		}
		if body.Enabled {
			t.Errorf("%s: nil tracer reports enabled", h.name)
		}
	}
}

// TestRingWrap: completing more traces than the ring holds keeps only the
// newest Cap() records, in completion order.
func TestRingWrap(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Ring: 4})
	if tr.Cap() != 4 {
		t.Fatalf("Cap() = %d, want 4", tr.Cap())
	}
	samp := tr.NewSampler()
	var lastID uint64
	for i := 0; i < 10; i++ {
		var sp Span
		samp.MaybeArm(&sp, 0)
		lastID = sp.ID()
		tr.Complete(&sp)
	}
	recs := tr.Dump()
	if len(recs) != 4 {
		t.Fatalf("Dump() after wrap = %d records, want 4", len(recs))
	}
	for i, r := range recs {
		want := lastID - uint64(len(recs)-1-i)
		if r.ID != want {
			t.Errorf("record %d: id %d, want %d (oldest-first order)", i, r.ID, want)
		}
	}
}

func TestHandlerJSON(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	samp := tr.NewSampler()
	var sp Span
	samp.MaybeArm(&sp, 1)
	sp.StampAt(StageParse, tr.Now())
	sp.StampAt(StageFirewall, tr.Now())
	tr.Complete(&sp)

	w := httptest.NewRecorder()
	tr.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces", nil))
	var body struct {
		Enabled     bool   `json:"enabled"`
		SampleEvery int    `json:"sample_every"`
		Ring        int    `json:"ring"`
		Armed       uint64 `json:"armed"`
		Completed   uint64 `json:"completed"`
		Traces      []struct {
			ID     uint64    `json:"id"`
			Worker int32     `json:"worker"`
			Start  string    `json:"start"`
			Stages []Segment `json:"stages"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if !body.Enabled || body.SampleEvery != 1 || body.Armed != 1 || body.Completed != 1 {
		t.Fatalf("body = %+v", body)
	}
	if len(body.Traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(body.Traces))
	}
	tj := body.Traces[0]
	if tj.Worker != 1 || len(tj.Stages) != 4 { // ingress, parse, firewall, tx
		t.Fatalf("trace = %+v, want worker 1 with 4 stages", tj)
	}
	if _, err := time.Parse(time.RFC3339Nano, tj.Start); err != nil {
		t.Errorf("start %q is not RFC3339Nano: %v", tj.Start, err)
	}
}

func TestAllocHandlerJSON(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	samp := tr.NewSampler()
	var sp Span
	samp.MaybeArm(&sp, 0)
	sp.StampAt(StageParse, tr.Now())
	tr.Complete(&sp)

	w := httptest.NewRecorder()
	tr.AllocHandler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/alloc", nil))
	var body struct {
		Enabled bool   `json:"enabled"`
		Metric  string `json:"metric"`
		Stages  []struct {
			Stage   string `json:"stage"`
			Samples uint64 `json:"samples"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if !body.Enabled || body.Metric != allocMetric {
		t.Fatalf("body = %+v", body)
	}
	var parseSamples uint64
	for _, row := range body.Stages {
		if row.Stage == "parse" {
			parseSamples = row.Samples
		}
	}
	if parseSamples != 1 {
		t.Fatalf("parse stage samples = %d, want 1", parseSamples)
	}
}

func TestRegisterMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := New(Config{SampleEvery: 1})
	tr.RegisterMetrics(reg, nil)
	snap := reg.Snapshot()
	for _, want := range []string{
		"trace_armed_total",
		"trace_completed_total",
		"trace_aborted_total",
		`trace_stage_latency_seconds{stage="parse"}`,
		`trace_stage_allocs_total{stage="session"}`,
		`trace_stage_samples_total{stage="tx"}`,
	} {
		if _, ok := snap[want]; !ok {
			t.Errorf("registry missing series %q", want)
		}
	}
}

// TestRecordPathZeroAlloc is the behavioral half of the zero-alloc claim:
// the untraced path (sampler miss, unarmed stamp) and the traced record
// path (arm, stamp, complete) allocate nothing per operation.
func TestRecordPathZeroAlloc(t *testing.T) {
	rec := telemetry.NewRecorder(64)
	tr := New(Config{SampleEvery: 1, Recorder: rec})
	// Warm up runtime/metrics: the first Read of a metric may allocate
	// its lazy-initialized description tables.
	metrics.Read(tr.allocSample)

	miss := New(Config{SampleEvery: 1 << 30})
	missSamp := miss.NewSampler()
	var missSpan Span
	if n := testing.AllocsPerRun(1000, func() {
		missSamp.MaybeArm(&missSpan, 0)
		missSpan.StampAt(StageParse, Mark{})
	}); n != 0 {
		t.Errorf("untraced path allocates %.1f objects/op, want 0", n)
	}

	samp := tr.NewSampler()
	var sp Span
	if n := testing.AllocsPerRun(1000, func() {
		samp.MaybeArm(&sp, 0)
		sp.StampAt(StageParse, tr.Now())
		sp.StampAt(StageFirewall, tr.Now())
		tr.Complete(&sp)
	}); n != 0 {
		t.Errorf("traced record path allocates %.1f objects/op, want 0", n)
	}
}
