// Package trace is the sampled per-packet tracer: the instrument that
// turns aggregate pipeline counters into an answer to "where inside
// parse→firewall→maglev→session does one packet's time and allocation
// budget go?".
//
// The design constraint is the same one the telemetry package proves for
// counters: observability must not perturb the hot path it observes. The
// tracer meets it by construction:
//
//   - Sampling is a power-of-two modulus on a per-receive-loop counter:
//     the untraced path pays one increment and one predictable branch
//     per packet — no atomics, no allocations, no syscalls.
//   - Span state is a fixed-size, pointer-free value struct carried
//     inside the mbuf (packet.Packet.Trace), so arming a trace allocates
//     nothing and a span can never pin pipeline memory against the GC —
//     leakcheck.NoPointers asserts this structurally.
//   - Stage stamping is a nil-guarded store of a pre-taken Mark into the
//     span's arrays; every record path is 0 allocs/op (the alloc gate in
//     `make check` enforces it).
//   - Completed traces land in a lock-free ring of all-atomic slots
//     (the flight-recorder idiom) and feed per-stage latency histograms;
//     EvTrace/EvTraceAbort flight-recorder events link the aggregate
//     view back to individual trace IDs in /debug/traces.
//
// Span lifecycle is conservation-checked: every armed span is completed
// exactly once (at TX) or aborted exactly once (packet dropped, batch
// faulted, domain crashed mid-flight, ring drained at shutdown), so
// `armed == completed + aborted` holds at quiescence — the tracer's
// equivalent of the mempool's leak accounting.
package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Stage identifies one stamp position along a packet's path through the
// pipeline, in traversal order. Unknown operators simply never stamp, so
// the enum can stay closed while pipelines stay open.
type Stage uint8

// The stamp positions, in the order a packet visits them. A stage a
// packet never visits (e.g. the mailbox hops in direct mode) leaves a
// zero stamp; segment attribution skips it.
const (
	// StageIngress: the span was armed at netport ingress, after the
	// kernel copy and parse, before ring enqueue.
	StageIngress Stage = iota
	// StageMailboxSend: the feeder moved the batch into a worker
	// domain's mailbox (supervised mode only).
	StageMailboxSend
	// StageMailboxRecv: the worker domain dequeued the batch
	// (supervised mode only).
	StageMailboxRecv
	// StageParse through StageSession: the four NF operators.
	StageParse
	StageFirewall
	StageMaglev
	StageSession
	// StageTx: the packet reached TxBurstQueue; stamped by Complete.
	StageTx
	// NumStages sizes the span arrays; also the "no stage" sentinel for
	// operators whose name maps to nothing.
	NumStages
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageIngress:
		return "ingress"
	case StageMailboxSend:
		return "mailbox-send"
	case StageMailboxRecv:
		return "mailbox-recv"
	case StageParse:
		return "parse"
	case StageFirewall:
		return "firewall"
	case StageMaglev:
		return "maglev"
	case StageSession:
		return "session"
	case StageTx:
		return "tx"
	default:
		return fmt.Sprintf("stage(%d)", uint8(s))
	}
}

// StageForName maps an Operator.Name() onto its stamp position. Names
// outside the known NF set report ok=false; such stages run untraced
// (their time lands in the following known stage's segment).
func StageForName(name string) (Stage, bool) {
	switch name {
	case "parse":
		return StageParse, true
	case "firewall":
		return StageFirewall, true
	case "maglev":
		return StageMaglev, true
	case "session":
		return StageSession, true
	default:
		return NumStages, false
	}
}

// Mark is one point-in-time observation: a wall-clock nanosecond stamp
// and the runtime's cumulative heap-allocation count. Taking a Mark is a
// traced-path-only operation (see Tracer.Now); stamping one into a span
// is a pair of plain stores.
type Mark struct {
	Nanos  int64
	Allocs uint64
}

// Span is the per-mbuf trace state: a fixed-size value struct with no
// pointers, embedded in packet.Packet so arming a trace allocates
// nothing and a crashed stage can never leak a span. The zero value is
// an unarmed span; every method is a no-op on it, so the pipeline stamps
// unconditionally and only sampled packets pay for it.
type Span struct {
	id     uint64 // 0 = unarmed
	worker int32
	stamps [NumStages]int64  // unix nanos; 0 = stage not visited
	allocs [NumStages]uint64 // cumulative heap allocs at the stamp
}

// Armed reports whether the span is live (armed, not yet completed or
// aborted). One inlineable field compare — the untraced-path guard.
func (s *Span) Armed() bool { return s.id != 0 }

// ID returns the trace ID (0 when unarmed) — the value EvTrace and
// EvTraceAbort carry, and the `id` field in /debug/traces.
func (s *Span) ID() uint64 { return s.id }

// StampAt records m as the span's visit to st. No-op on an unarmed span
// or an out-of-range stage; re-stamping a stage overwrites (last visit
// wins, which is what a restarted delivery should report).
func (s *Span) StampAt(st Stage, m Mark) {
	if s.id == 0 || st >= NumStages {
		return
	}
	s.stamps[st] = m.Nanos
	s.allocs[st] = m.Allocs
}

// Clear resets the span to unarmed. Packet reuse calls this so a
// recycled mbuf never resurrects a stale trace.
func (s *Span) Clear() { *s = Span{} }

// Sampler is one receive loop's arming decision: a plain (loop-owned,
// unsynchronized) packet counter against a power-of-two mask. One
// sampler must be owned by exactly one goroutine; the port gives each
// receive loop its own.
type Sampler struct {
	t   *Tracer
	ctr uint64
}

// MaybeArm counts one ingress packet and arms sp for every SampleEvery-th
// one, stamping StageIngress. The miss path — every packet when the
// tracer is off, all but 1/N when on — is an increment, a mask test, and
// a branch: 0 allocs, 0 atomics. Returns whether sp was armed.
func (s *Sampler) MaybeArm(sp *Span, worker int) bool {
	if s == nil {
		return false
	}
	s.ctr++
	if s.ctr&s.t.mask != 0 {
		return false
	}
	s.t.arm(sp, worker)
	return true
}

// traceSlot is one completed-trace ring entry. Like the flight
// recorder's slots, every field is an atomic cell — recording and
// dumping are race-free by construction — and the slot is pointer-free.
type traceSlot struct {
	seq    atomic.Uint64 // 1-based claim position; 0 = empty or mid-write
	id     atomic.Uint64
	worker atomic.Int64
	stamps [NumStages]atomic.Int64
	allocs [NumStages]atomic.Uint64
}

// allocMetric is the runtime/metrics counter behind Mark.Allocs:
// cumulative heap objects allocated, process-wide. Because it is global,
// per-stage alloc deltas on a traced packet attribute everything the
// process allocated during that stage's window — an estimate that
// converges on the stage's own cost as sampling repeats, the
// MallocsPerOp trade-off made continuous.
const allocMetric = "/gc/heap/allocs:objects"

// Config parameterizes New.
type Config struct {
	// SampleEvery arms one in this many ingress packets per receive
	// loop, rounded up to a power of two (minimum 1 = every packet).
	SampleEvery int
	// Ring is the completed-trace ring capacity (default 128, rounded
	// up to a power of two).
	Ring int
	// Recorder, when non-nil, receives an EvTrace event per completed
	// trace and an EvTraceAbort per aborted one (arg = trace ID), so
	// the flight recorder carries exemplar links into /debug/traces.
	Recorder *telemetry.Recorder
}

// Tracer owns the sampling configuration, the per-stage attribution
// histograms, and the completed-trace ring. A nil *Tracer is valid:
// every method is a no-op (NewSampler returns a nil sampler whose
// MaybeArm never arms), so ports and runners instrument unconditionally.
type Tracer struct {
	mask  uint64 // sampleEvery - 1
	every int
	ids   atomic.Uint64
	rec   *telemetry.Recorder
	actor telemetry.ActorID

	// Per-stage segment attribution: segLat[s] observes the latency
	// between stage s's stamp and the previous visited stage's;
	// segAllocs[s]/segSamples[s] accumulate the alloc deltas over the
	// same windows. StageIngress opens every trace and never has a
	// segment of its own.
	segLat     [NumStages]telemetry.Histogram
	segAllocs  [NumStages]telemetry.Counter
	segSamples [NumStages]telemetry.Counter

	armed     telemetry.Counter
	completed telemetry.Counter
	aborted   telemetry.Counter

	slots  []traceSlot
	rmask  uint64
	cursor atomic.Uint64

	// allocMu guards the preallocated runtime/metrics scratch so Now
	// stays allocation-free; allocOK gates on the metric existing.
	allocMu     sync.Mutex
	allocSample []metrics.Sample
	allocOK     bool
}

// New builds a tracer arming one in cfg.SampleEvery ingress packets.
func New(cfg Config) *Tracer {
	every := 1
	for every < cfg.SampleEvery {
		every <<= 1
	}
	ring := cfg.Ring
	if ring <= 0 {
		ring = 128
	}
	for ring&(ring-1) != 0 {
		ring++
	}
	t := &Tracer{
		mask:        uint64(every - 1),
		every:       every,
		rec:         cfg.Recorder,
		actor:       cfg.Recorder.Actor("trace"),
		slots:       make([]traceSlot, ring),
		rmask:       uint64(ring - 1),
		allocSample: []metrics.Sample{{Name: allocMetric}},
	}
	metrics.Read(t.allocSample)
	t.allocOK = t.allocSample[0].Value.Kind() == metrics.KindUint64
	return t
}

// SampleEvery reports the resolved (power-of-two) sampling interval.
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return t.every
}

// Cap reports the completed-trace ring capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.slots)
}

// NewSampler returns an arming sampler for one receive loop. A nil
// tracer returns a nil sampler, whose MaybeArm is a no-op.
func (t *Tracer) NewSampler() *Sampler {
	if t == nil {
		return nil
	}
	return &Sampler{t: t}
}

// Now takes a Mark: the wall clock plus the cumulative allocation
// counter. Traced-path only — one mutex and one runtime/metrics read —
// but allocation-free, so stamping stays 0 allocs/op.
func (t *Tracer) Now() Mark {
	m := Mark{Nanos: time.Now().UnixNano()}
	if t == nil || !t.allocOK {
		return m
	}
	t.allocMu.Lock()
	metrics.Read(t.allocSample)
	m.Allocs = t.allocSample[0].Value.Uint64()
	t.allocMu.Unlock()
	return m
}

// arm initializes sp as a live span and stamps its ingress.
func (t *Tracer) arm(sp *Span, worker int) {
	*sp = Span{id: t.ids.Add(1), worker: int32(worker)}
	sp.StampAt(StageIngress, t.Now())
	t.armed.Inc()
}

// Counts reports the lifecycle counters. At quiescence
// armed == completed + aborted; the chaos tier asserts it.
func (t *Tracer) Counts() (armed, completed, aborted uint64) {
	if t == nil {
		return 0, 0, 0
	}
	return t.armed.Load(), t.completed.Load(), t.aborted.Load()
}

// Complete finishes sp's trace at TX: stamps StageTx, attributes every
// visited segment into the per-stage histograms and alloc counters,
// publishes the full vector into the ring, records EvTrace, and clears
// the span so the mbuf recycles unarmed. No-op on nil tracer or unarmed
// span — completing twice is impossible because the first call disarms.
func (t *Tracer) Complete(sp *Span) {
	if t == nil || sp.id == 0 {
		return
	}
	sp.StampAt(StageTx, t.Now())
	var prevN int64
	var prevA uint64
	started := false
	for st := Stage(0); st < NumStages; st++ {
		n := sp.stamps[st]
		if n == 0 {
			continue
		}
		if started {
			d := n - prevN
			if d < 0 {
				d = 0 // wall clock read on another core stepped back
			}
			t.segLat[st].ObserveNanos(d)
			t.segAllocs[st].Add(sp.allocs[st] - prevA)
			t.segSamples[st].Inc()
		}
		prevN, prevA, started = n, sp.allocs[st], true
	}
	pos := t.cursor.Add(1)
	s := &t.slots[(pos-1)&t.rmask]
	s.seq.Store(0) // invalidate for concurrent readers
	s.id.Store(sp.id)
	s.worker.Store(int64(sp.worker))
	for i := 0; i < int(NumStages); i++ {
		s.stamps[i].Store(sp.stamps[i])
		s.allocs[i].Store(sp.allocs[i])
	}
	s.seq.Store(pos)
	t.completed.Inc()
	t.rec.Record(t.actor, telemetry.EvTrace, sp.id)
	*sp = Span{}
}

// Abort ends sp's trace without a TX: the packet was shed, dropped by an
// NF, lost to a faulting batch, or drained at shutdown. The truncated
// span surfaces as an EvTraceAbort flight-recorder event (arg = trace
// ID) and the span clears, so it can neither leak nor double-complete.
// No-op on nil tracer or unarmed span.
func (t *Tracer) Abort(sp *Span) {
	if t == nil || sp.id == 0 {
		return
	}
	t.aborted.Inc()
	t.rec.Record(t.actor, telemetry.EvTraceAbort, sp.id)
	*sp = Span{}
}

// RegisterMetrics exports the tracer's counters and per-stage segment
// histograms on reg: trace_armed/completed/aborted_total, and per stage
// trace_stage_latency_seconds, trace_stage_allocs_total,
// trace_stage_samples_total (labelled stage=<name>). StageIngress opens
// traces and has no segment, so it exports no series.
func (t *Tracer) RegisterMetrics(reg *telemetry.Registry, base telemetry.Labels) {
	if t == nil {
		return
	}
	reg.RegisterCounter("trace_armed_total", base, &t.armed)
	reg.RegisterCounter("trace_completed_total", base, &t.completed)
	reg.RegisterCounter("trace_aborted_total", base, &t.aborted)
	for st := StageIngress + 1; st < NumStages; st++ {
		labels := base.With("stage", st.String())
		reg.RegisterHistogram("trace_stage_latency_seconds", labels, &t.segLat[st])
		reg.RegisterCounter("trace_stage_allocs_total", labels, &t.segAllocs[st])
		reg.RegisterCounter("trace_stage_samples_total", labels, &t.segSamples[st])
	}
}

// Record is the dump-side form of one completed trace: the full absolute
// stamp vector. It round-trips through JSON exactly (the fuzz target
// asserts it).
type Record struct {
	ID     uint64            `json:"id"`
	Worker int32             `json:"worker"`
	Stamps [NumStages]int64  `json:"stamps_unix_nanos"`
	Allocs [NumStages]uint64 `json:"allocs"`
}

// Segment is one attributed hop of a trace: the time and allocation
// delta between a visited stage's stamp and the previous visited one.
type Segment struct {
	Stage  string `json:"stage"`
	Nanos  int64  `json:"nanos"`
	Allocs uint64 `json:"allocs"`
}

// Segments derives the per-stage latency vector from the absolute
// stamps, skipping stages the packet never visited. The first visited
// stage (ingress) anchors the walk with a zero-length segment.
func (r Record) Segments() []Segment {
	out := make([]Segment, 0, NumStages)
	var prevN int64
	var prevA uint64
	started := false
	for st := Stage(0); st < NumStages; st++ {
		n := r.Stamps[st]
		if n == 0 {
			continue
		}
		seg := Segment{Stage: st.String()}
		if started {
			seg.Nanos = n - prevN
			if seg.Nanos < 0 {
				seg.Nanos = 0
			}
			seg.Allocs = r.Allocs[st] - prevA
		}
		out = append(out, seg)
		prevN, prevA, started = n, r.Allocs[st], true
	}
	return out
}

// Total reports the trace's end-to-end latency: last visited stamp minus
// first.
func (r Record) Total() time.Duration {
	var first, last int64
	for st := Stage(0); st < NumStages; st++ {
		if n := r.Stamps[st]; n != 0 {
			if first == 0 {
				first = n
			}
			last = n
		}
	}
	d := last - first
	if last < first || d < 0 { // d < 0: the subtraction overflowed
		return 0
	}
	return time.Duration(d)
}

// Dump returns the ring's completed traces in completion order, oldest
// first, skipping slots observed mid-write. Dump allocates; it is a
// scrape-path operation.
func (t *Tracer) Dump() []Record {
	if t == nil {
		return nil
	}
	head := t.cursor.Load()
	start := uint64(1)
	if n := uint64(len(t.slots)); head > n {
		start = head - n + 1
	}
	out := make([]Record, 0, head-start+1)
	for pos := start; pos <= head; pos++ {
		s := &t.slots[(pos-1)&t.rmask]
		if s.seq.Load() != pos {
			continue // overwritten or mid-write
		}
		r := Record{ID: s.id.Load(), Worker: int32(s.worker.Load())}
		for i := 0; i < int(NumStages); i++ {
			r.Stamps[i] = s.stamps[i].Load()
			r.Allocs[i] = s.allocs[i].Load()
		}
		if s.seq.Load() != pos {
			continue // overwritten while reading
		}
		out = append(out, r)
	}
	return out
}

// traceJSON is the human-facing /debug/traces shape: derived segments
// next to the raw record.
type traceJSON struct {
	ID      uint64    `json:"id"`
	Worker  int32     `json:"worker"`
	Start   string    `json:"start"`
	TotalNS int64     `json:"total_ns"`
	Stages  []Segment `json:"stages"`
}

// Handler serves the completed-trace ring as JSON at /debug/traces:
// lifecycle counters plus every dumped trace's per-stage latency vector,
// newest last. A nil tracer serves {"enabled":false}.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if t == nil {
			fmt.Fprintln(w, `{"enabled":false}`)
			return
		}
		armed, completed, aborted := t.Counts()
		recs := t.Dump()
		traces := make([]traceJSON, 0, len(recs))
		for _, r := range recs {
			start := ""
			if n := r.Stamps[StageIngress]; n != 0 {
				start = time.Unix(0, n).Format(time.RFC3339Nano)
			}
			traces = append(traces, traceJSON{
				ID:      r.ID,
				Worker:  r.Worker,
				Start:   start,
				TotalNS: int64(r.Total()),
				Stages:  r.Segments(),
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{
			"enabled":      true,
			"sample_every": t.every,
			"ring":         len(t.slots),
			"armed":        armed,
			"completed":    completed,
			"aborted":      aborted,
			"traces":       traces,
		})
	})
}

// allocJSON is one stage's row in /debug/alloc.
type allocJSON struct {
	Stage           string  `json:"stage"`
	Samples         uint64  `json:"samples"`
	AllocsTotal     uint64  `json:"allocs_total"`
	AllocsPerPacket float64 `json:"allocs_per_packet"`
}

// AllocHandler serves per-stage allocation attribution at /debug/alloc:
// for each stage, how many heap objects the process allocated during
// traced packets' transits of that stage, total and per packet — the
// MallocsPerOp view, sampled continuously instead of in a benchmark.
// A nil tracer serves {"enabled":false}.
func (t *Tracer) AllocHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if t == nil {
			fmt.Fprintln(w, `{"enabled":false}`)
			return
		}
		stages := make([]allocJSON, 0, NumStages)
		for st := StageIngress + 1; st < NumStages; st++ {
			row := allocJSON{
				Stage:       st.String(),
				Samples:     t.segSamples[st].Load(),
				AllocsTotal: t.segAllocs[st].Load(),
			}
			if row.Samples > 0 {
				row.AllocsPerPacket = float64(row.AllocsTotal) / float64(row.Samples)
			}
			stages = append(stages, row)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{
			"enabled": true,
			"metric":  allocMetric,
			"note":    "alloc deltas are process-wide over each traced packet's stage window; per-stage attribution is an estimate that sharpens with more samples",
			"stages":  stages,
		})
	})
}
