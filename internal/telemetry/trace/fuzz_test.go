package trace

import (
	"encoding/binary"
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzTraceSpanEncode asserts the /debug/traces dump shape round-trips
// through JSON exactly: a Record built from arbitrary bytes marshals and
// unmarshals back to itself (uint64 stamps and alloc counters must not
// lose precision or change sign), and its derived views never panic or
// go negative.
func FuzzTraceSpanEncode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	seed := make([]byte, 8*(2+2*int(NumStages)))
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Deterministically fill a Record from the input bytes.
		next := func() uint64 {
			if len(data) == 0 {
				return 0
			}
			var buf [8]byte
			n := copy(buf[:], data)
			data = data[n:]
			return binary.LittleEndian.Uint64(buf[:])
		}
		var r Record
		r.ID = next()
		r.Worker = int32(next())
		for st := 0; st < int(NumStages); st++ {
			r.Stamps[st] = int64(next())
			r.Allocs[st] = next()
		}

		enc, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Record
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !reflect.DeepEqual(r, back) {
			t.Fatalf("round-trip changed the record:\n  in:  %+v\n  out: %+v", r, back)
		}

		// Derived views must hold their invariants on arbitrary stamps.
		for _, seg := range r.Segments() {
			if seg.Nanos < 0 {
				t.Fatalf("negative segment: %+v", seg)
			}
			if seg.Stage == "" {
				t.Fatalf("unnamed segment: %+v", seg)
			}
		}
		if r.Total() < 0 {
			t.Fatalf("negative total %v", r.Total())
		}
	})
}
