package trace

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// TestConcurrentTracing drives the tracer the way the runtime does: one
// sampler per worker goroutine arming and completing its own spans (span
// ownership follows batch ownership — exclusive), while scrape-side
// goroutines Dump the ring and hit the handlers concurrently. Under
// -race this proves the all-atomic ring and counters are data-race-free;
// the final conservation check proves no span was lost or double-counted
// in the melee.
func TestConcurrentTracing(t *testing.T) {
	rec := telemetry.NewRecorder(256)
	tr := New(Config{SampleEvery: 4, Ring: 8, Recorder: rec})

	const workers = 4
	const packets = 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			samp := tr.NewSampler()
			var sp Span
			for i := 0; i < packets; i++ {
				if !samp.MaybeArm(&sp, w) {
					continue
				}
				sp.StampAt(StageParse, tr.Now())
				sp.StampAt(StageSession, tr.Now())
				if i%3 == 0 {
					tr.Abort(&sp)
				} else {
					tr.Complete(&sp)
				}
			}
		}(w)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, rec := range tr.Dump() {
					if rec.ID == 0 {
						t.Error("dumped record with zero ID")
						return
					}
				}
				w := httptest.NewRecorder()
				tr.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces", nil))
				var body struct {
					Enabled bool `json:"enabled"`
				}
				if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || !body.Enabled {
					t.Errorf("handler under load: err=%v enabled=%v", err, body.Enabled)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	armed, completed, aborted := tr.Counts()
	wantArmed := uint64(workers * packets / tr.SampleEvery())
	if armed != wantArmed {
		t.Errorf("armed = %d, want %d", armed, wantArmed)
	}
	if armed != completed+aborted {
		t.Errorf("conservation violated: armed %d != completed %d + aborted %d",
			armed, completed, aborted)
	}
	if completed == 0 || aborted == 0 {
		t.Errorf("want both outcomes exercised: completed=%d aborted=%d", completed, aborted)
	}
}
