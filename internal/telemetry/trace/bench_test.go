package trace

import (
	"testing"

	"repro/internal/telemetry"
)

// BenchmarkTraceRecordPathUntraced measures the cost every packet pays
// when tracing is on but this packet is not sampled: the sampler miss
// plus one unarmed stamp. The alloc gate in `make check` pins this at
// 0 allocs/op.
func BenchmarkTraceRecordPathUntraced(b *testing.B) {
	tr := New(Config{SampleEvery: 1 << 30})
	samp := tr.NewSampler()
	var sp Span
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		samp.MaybeArm(&sp, 0)
		sp.StampAt(StageParse, Mark{})
	}
}

// BenchmarkTraceRecordPathArmed measures the full traced path for one
// sampled packet: arm at ingress, four NF stamps, complete into the ring
// with a flight-recorder event. Also pinned at 0 allocs/op.
func BenchmarkTraceRecordPathArmed(b *testing.B) {
	rec := telemetry.NewRecorder(256)
	tr := New(Config{SampleEvery: 1, Recorder: rec})
	samp := tr.NewSampler()
	var sp Span
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		samp.MaybeArm(&sp, 0)
		m := tr.Now()
		sp.StampAt(StageParse, m)
		sp.StampAt(StageFirewall, m)
		sp.StampAt(StageMaglev, m)
		sp.StampAt(StageSession, m)
		tr.Complete(&sp)
	}
}
