package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)                    // bucket 0
	h.Observe(1)                    // bucket 1: [1,1]
	h.Observe(3)                    // bucket 2: [2,3]
	h.Observe(1024)                 // bucket 11: [1024,2047]
	h.Observe(-5)                   // clamps to 0 → bucket 0
	h.Observe(100 * time.Second)    // clamps into the last bucket
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	s := h.Snapshot()
	for i, want := range map[int]uint64{0: 2, 1: 1, 2: 1, 11: 1, NumBuckets - 1: 1} {
		if s.Buckets[i] != want {
			t.Errorf("bucket[%d] = %d, want %d", i, s.Buckets[i], want)
		}
	}
	if got := h.Sum(); got != 1028+100*time.Second {
		t.Fatalf("sum = %v", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	if p50 < 8*time.Microsecond || p50 > 20*time.Microsecond {
		t.Errorf("p50 = %v, want ~16µs", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 30*time.Millisecond || p99 > 140*time.Millisecond {
		t.Errorf("p99 = %v, want ~67ms", p99)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	if mean := s.Mean(); mean <= 0 {
		t.Errorf("mean = %v, want > 0", mean)
	}
}

func TestLabels(t *testing.T) {
	l := Labels{"b": "2", "a": "1"}
	if got := l.String(); got != `{a="1",b="2"}` {
		t.Fatalf("labels = %s", got)
	}
	if got := (Labels{}).String(); got != "" {
		t.Fatalf("empty labels = %q", got)
	}
	l2 := l.With("c", "3")
	if got := l2.String(); got != `{a="1",b="2",c="3"}` {
		t.Fatalf("With = %s", got)
	}
	if _, ok := l["c"]; ok {
		t.Fatal("With mutated the receiver")
	}
}

func TestRegistryPrometheus(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	c.Add(3)
	reg.RegisterCounter("pkts_total", Labels{"worker": "0"}, &c)
	var g Gauge
	g.Set(-2)
	reg.RegisterGauge("depth", nil, &g)
	reg.RegisterGaugeFunc("occupancy", Labels{"pool": "port"}, func() float64 { return 17 })
	var h Histogram
	h.Observe(3 * time.Millisecond)
	reg.RegisterHistogram("latency_seconds", Labels{"worker": "0"}, &h)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE pkts_total counter",
		`pkts_total{worker="0"} 3`,
		"# TYPE depth gauge",
		"depth -2",
		`occupancy{pool="port"} 17`,
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{worker="0",le="+Inf"} 1`,
		`latency_seconds_count{worker="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	// Histogram buckets are cumulative: the +Inf bucket equals count.
	if !strings.Contains(out, "latency_seconds_sum") {
		t.Errorf("missing _sum series:\n%s", out)
	}
}

func TestRegistryReplaceAndUnregister(t *testing.T) {
	reg := NewRegistry()
	var a, b Counter
	a.Add(1)
	b.Add(2)
	reg.RegisterCounter("x_total", nil, &a)
	reg.RegisterCounter("x_total", nil, &b) // replaces: re-runs re-register
	snap := reg.Snapshot()
	if got := snap["x_total"]; got != 2.0 {
		t.Fatalf("after replace: %v, want 2", got)
	}
	reg.Unregister("x_total", nil)
	if got := len(reg.Snapshot()); got != 0 {
		t.Fatalf("after unregister: %d series", got)
	}
}

func TestRegistryJSONSnapshot(t *testing.T) {
	reg := NewRegistry()
	var h Histogram
	h.Observe(time.Millisecond)
	reg.RegisterHistogram("lat_seconds", nil, &h)
	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"count":1`) {
		t.Fatalf("JSON missing histogram count: %s", b.String())
	}
	hv, ok := reg.Snapshot()["lat_seconds"].(HistogramValue)
	if !ok || hv.Count != 1 || hv.P50Secs <= 0 {
		t.Fatalf("histogram value = %+v", hv)
	}
}

func TestNilRegistryAndRecorder(t *testing.T) {
	var reg *Registry
	var c Counter
	reg.RegisterCounter("x", nil, &c) // must not panic
	reg.Unregister("x", nil)
	if reg.Snapshot() != nil && len(reg.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var rec *Recorder
	rec.Record(rec.Actor("a"), EvSend, 1) // must not panic
	if rec.Dump() != nil || rec.Len() != 0 || rec.Cap() != 0 {
		t.Fatal("nil recorder not inert")
	}
}

func TestRecorderDumpOrder(t *testing.T) {
	rec := NewRecorder(16)
	a := rec.Actor("worker-0")
	b := rec.Actor("worker-1")
	if rec.Actor("worker-0") != a {
		t.Fatal("actor interning not stable")
	}
	rec.Record(a, EvSend, 1)
	rec.Record(b, EvPanic, 0)
	rec.Record(a, EvRestart, 2)
	evs := rec.Dump()
	if len(evs) != 3 {
		t.Fatalf("dump len = %d, want 3", len(evs))
	}
	if evs[0].Kind != EvSend || evs[0].Actor != "worker-0" ||
		evs[1].Kind != EvPanic || evs[1].Actor != "worker-1" ||
		evs[2].Kind != EvRestart || evs[2].Arg != 2 {
		t.Fatalf("dump = %v", evs)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("seq[%d] = %d", i, ev.Seq)
		}
		if ev.String() == "" {
			t.Fatal("empty String()")
		}
	}
}

func TestRecorderWraps(t *testing.T) {
	rec := NewRecorder(16)
	a := rec.Actor("d")
	for i := 0; i < 100; i++ {
		rec.Record(a, EvSend, uint64(i))
	}
	evs := rec.Dump()
	if len(evs) != 16 {
		t.Fatalf("dump len = %d, want ring size 16", len(evs))
	}
	if rec.Len() != 16 {
		t.Fatalf("Len = %d", rec.Len())
	}
	// Oldest surviving event is #85 (100 recorded, 16 kept).
	if evs[0].Seq != 85 || evs[0].Arg != 84 {
		t.Fatalf("oldest = %+v", evs[0])
	}
	if evs[15].Seq != 100 || evs[15].Arg != 99 {
		t.Fatalf("newest = %+v", evs[15])
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvSend, EvRecv, EvDrop, EvError, EvPanic, EvHang,
		EvBackoff, EvRestart, EvDegrade, EvStop}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] || strings.HasPrefix(s, "kind(") {
			t.Fatalf("kind %d stringifies poorly: %q", k, s)
		}
		seen[s] = true
	}
}

// TestRecordPathZeroAlloc is the tentpole invariant: the record path of
// every metric type, and of the flight recorder, performs zero heap
// allocations. The benchmarks prove the same under -benchmem; this test
// enforces it in the ordinary test tier.
func TestRecordPathZeroAlloc(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	rec := NewRecorder(1024)
	actor := rec.Actor("worker-0")
	cases := map[string]func(){
		"counter":   func() { c.Add(1) },
		"gauge":     func() { g.Set(3) },
		"histogram": func() { h.Observe(123 * time.Microsecond) },
		"recorder":  func() { rec.Record(actor, EvSend, 7) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s record path: %.1f allocs/op, want 0", name, allocs)
		}
	}
}
