package telemetry

// Telemetry-overhead benchmarks: the cost the instrumentation adds to
// the data plane, per op. `make bench` records these in
// BENCH_telemetry.json; every record-path benchmark must report
// 0 allocs/op (also enforced by TestRecordPathZeroAlloc).

import (
	"testing"
	"time"
)

func BenchmarkTelemetryCounter(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkTelemetryCounterParallel(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkTelemetryGauge(b *testing.B) {
	var g Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkTelemetryHistogram(b *testing.B) {
	var h Histogram
	d := 137 * time.Microsecond
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(d)
	}
}

func BenchmarkTelemetryHistogramParallel(b *testing.B) {
	var h Histogram
	d := 137 * time.Microsecond
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(d)
		}
	})
}

func BenchmarkTelemetryRecorder(b *testing.B) {
	rec := NewRecorder(4096)
	actor := rec.Actor("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Record(actor, EvSend, uint64(i))
	}
}

func BenchmarkTelemetryRecorderParallel(b *testing.B) {
	rec := NewRecorder(4096)
	actor := rec.Actor("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rec.Record(actor, EvRecv, 1)
		}
	})
}

// BenchmarkTelemetryScrape is the read path for contrast: it may lock
// and allocate, and its cost lands on the scraper, not the data plane.
func BenchmarkTelemetryScrape(b *testing.B) {
	reg := NewRegistry()
	var cs [16]Counter
	var hs [4]Histogram
	for i := range cs {
		reg.RegisterCounter("c_total", Labels{"i": string(rune('a' + i))}, &cs[i])
	}
	for i := range hs {
		hs[i].Observe(time.Millisecond)
		reg.RegisterHistogram("h_seconds", Labels{"i": string(rune('a' + i))}, &hs[i])
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = reg.Snapshot()
	}
}
