package telemetry

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind classifies a flight-recorder event. The set mirrors the
// lifecycle of a supervised protection domain: payload movement through
// mailboxes, the fault taxonomy (error, panic, heartbeat-miss), and the
// supervisor's responses (backoff, restart, degrade, stop).
type EventKind uint32

// Flight-recorder event kinds. Arg carries the per-kind detail noted on
// each constant.
const (
	// EvSend: a payload entered a mailbox. Arg = queue depth after.
	EvSend EventKind = iota + 1
	// EvRecv: a payload left a mailbox. Arg = queue depth after.
	EvRecv
	// EvDrop: a mailbox destroyed a payload (tail drop or closed).
	EvDrop
	// EvError: a handler returned an error. Arg = consecutive-fault streak.
	EvError
	// EvPanic: a handler panic was caught at the entry point.
	EvPanic
	// EvHang: the supervisor declared a heartbeat miss.
	EvHang
	// EvBackoff: a restart was scheduled. Arg = backoff nanoseconds.
	EvBackoff
	// EvRestart: a restart completed and the domain serves again.
	EvRestart
	// EvDegrade: the restart budget ran out; fallback handler installed.
	EvDegrade
	// EvStop: the domain stopped for good.
	EvStop
	// EvCheckpoint: a domain published a state checkpoint. Arg =
	// traversal latency in nanoseconds.
	EvCheckpoint
	// EvRestore: a restarted domain restored the last good checkpoint.
	// Arg = restore latency in nanoseconds.
	EvRestore
	// EvColdStart: a restarted domain had no completed checkpoint epoch
	// and reset to zero state instead.
	EvColdStart
	// EvTrace: a sampled packet trace completed at TX. Arg = trace ID,
	// the exemplar link into /debug/traces.
	EvTrace
	// EvTraceAbort: a sampled packet trace ended without reaching TX —
	// the packet was dropped, its batch faulted, or its domain crashed
	// with the trace in flight. Arg = trace ID.
	EvTraceAbort
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvSend:
		return "send"
	case EvRecv:
		return "recv"
	case EvDrop:
		return "drop"
	case EvError:
		return "error"
	case EvPanic:
		return "panic"
	case EvHang:
		return "hang"
	case EvBackoff:
		return "backoff"
	case EvRestart:
		return "restart"
	case EvDegrade:
		return "degrade"
	case EvStop:
		return "stop"
	case EvCheckpoint:
		return "checkpoint"
	case EvRestore:
		return "restore"
	case EvColdStart:
		return "coldstart"
	case EvTrace:
		return "trace"
	case EvTraceAbort:
		return "trace-abort"
	default:
		return fmt.Sprintf("kind(%d)", uint32(k))
	}
}

// ActorID names an event source (a domain, a mailbox) inside a Recorder.
// IDs are interned once at spawn time so the record path stores a
// four-byte index instead of a string — the ring holds no pointers and
// can never pin a payload, a name, or anything else against the GC.
type ActorID uint32

// slot is one ring entry. Every field is an atomic cell: recording and
// dumping are race-free by construction, and the slot is pointer-free
// (leakcheck.NoPointers asserts this), so a recorded event can never
// retain a linear.Owned payload that crashed mid-flight.
type slot struct {
	seq   atomic.Uint64 // 1-based claim position; 0 = empty or being written
	nanos atomic.Int64  // unix nanoseconds
	actor atomic.Uint32
	kind  atomic.Uint32
	arg   atomic.Uint64
}

// Event is the dump-side, reader-friendly form of one recorded event.
type Event struct {
	Seq   uint64    // global sequence number (1-based, monotonic)
	Time  time.Time //
	Actor string    // interned actor name ("?" for the zero ActorID)
	Kind  EventKind
	Arg   uint64 // per-kind detail; see the EventKind constants
}

// String renders one event for a dump listing.
func (e Event) String() string {
	return fmt.Sprintf("#%d %s %s %s arg=%d",
		e.Seq, e.Time.Format("15:04:05.000000"), e.Actor, e.Kind, e.Arg)
}

// Recorder is a fixed-size ring buffer of the last N events — the
// flight recorder. Record is lock-free and allocation-free: claim a slot
// with one atomic add, fill its atomic cells, publish by storing the
// claim sequence. Dump reads concurrently with writers and discards
// slots it observes mid-write; under extreme wrap pressure (a writer
// lapping the ring during another writer's store sequence) an event can
// surface with mixed fields, which is the classic flight-recorder
// trade: the record path must never wait.
//
// A nil *Recorder is valid: Record and Actor become no-ops, so layers
// instrument unconditionally.
type Recorder struct {
	slots  []slot
	mask   uint64
	cursor atomic.Uint64

	mu     sync.Mutex
	actors []string
}

// NewRecorder creates a recorder holding the last n events (rounded up
// to a power of two, minimum 16).
func NewRecorder(n int) *Recorder {
	size := 16
	for size < n {
		size <<= 1
	}
	return &Recorder{slots: make([]slot, size), mask: uint64(size - 1)}
}

// Cap reports the ring capacity in events.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Actor interns name and returns its ID, reusing the ID of an
// already-interned name. Call at spawn time, never on the record path.
func (r *Recorder) Actor(name string) ActorID {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, a := range r.actors {
		if a == name {
			return ActorID(i + 1)
		}
	}
	r.actors = append(r.actors, name)
	return ActorID(len(r.actors))
}

// Record appends one event to the ring, overwriting the oldest. Safe
// for concurrent use; 0 allocs/op.
func (r *Recorder) Record(a ActorID, k EventKind, arg uint64) {
	if r == nil {
		return
	}
	pos := r.cursor.Add(1) // 1-based claim
	s := &r.slots[(pos-1)&r.mask]
	s.seq.Store(0) // invalidate for concurrent readers
	s.nanos.Store(time.Now().UnixNano())
	s.actor.Store(uint32(a))
	s.kind.Store(uint32(k))
	s.arg.Store(arg)
	s.seq.Store(pos)
}

// Len reports how many events are currently dumpable (at most Cap).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := r.cursor.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Dump returns the recorded events in sequence order, oldest first.
// Slots observed mid-write (a concurrent Record) are skipped. Dump
// allocates; it is a fault-path/scrape-path operation.
func (r *Recorder) Dump() []Event {
	if r == nil {
		return nil
	}
	head := r.cursor.Load()
	start := uint64(1)
	if n := uint64(len(r.slots)); head > n {
		start = head - n + 1
	}
	r.mu.Lock()
	names := append([]string(nil), r.actors...)
	r.mu.Unlock()
	out := make([]Event, 0, head-start+1)
	for pos := start; pos <= head; pos++ {
		s := &r.slots[(pos-1)&r.mask]
		if s.seq.Load() != pos {
			continue // overwritten or mid-write
		}
		ev := Event{
			Seq:   pos,
			Time:  time.Unix(0, s.nanos.Load()),
			Kind:  EventKind(s.kind.Load()),
			Arg:   s.arg.Load(),
			Actor: "?",
		}
		if id := s.actor.Load(); id >= 1 && int(id) <= len(names) {
			ev.Actor = names[id-1]
		}
		if s.seq.Load() != pos {
			continue // overwritten while reading
		}
		out = append(out, ev)
	}
	return out
}

// Handler serves the recorder dump as a text listing, newest last.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		for _, ev := range r.Dump() {
			fmt.Fprintln(w, ev)
		}
	})
}
