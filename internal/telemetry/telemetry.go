// Package telemetry is the runtime's observability core: a registry of
// counters, gauges, and fixed-bucket latency histograms whose record
// path is pure atomics — no locks, no allocations — plus a ring-buffer
// flight recorder that keeps the last N domain events for post-mortem
// dumps when the supervisor degrades a domain.
//
// The design splits the two costs the paper's argument hinges on:
//
//   - The record path (Counter.Add, Gauge.Set, Histogram.Observe,
//     Recorder.Record) is what the data plane executes per batch or per
//     payload. It is a handful of uncontended atomic operations on cells
//     the caller already owns — 0 allocs/op, proven by benchmark — so
//     instrumenting the hot path does not move the Figure 2 numbers.
//   - The read path (Registry.WritePrometheus, Registry.Snapshot,
//     Recorder.Dump) runs on scrape or fault, may take locks and
//     allocate freely, and never blocks a writer.
//
// Metric cells are plain value types (the zero value is ready to use) so
// they embed directly into the stats structs the runtime layers already
// carry; the Registry only attaches names and labels to pointers at
// registration time. Registration is concurrency-safe against a live
// record path: writers never touch the registry.
//
// # Snapshot contract
//
// Every Snapshot-style read in this codebase — domain.Supervisor.Snapshot,
// netbricks.ShardedRunner.Snapshot, Registry.Snapshot — follows one
// contract, stated here once:
//
//   - Counters are monotonically increasing atomics read with Load; a
//     snapshot is a point-in-time copy that is exact per field but NOT
//     atomic across fields (a snapshot taken during a live run may show
//     e.g. a send that has no matching receive yet).
//   - Gauges (mailbox depth, pool occupancy, lifecycle state) are
//     instantaneous values that may move between two field reads.
//   - Taking a snapshot never blocks, delays, or allocates on the record
//     path; it is always safe during a live run.
//
// Aggregations over per-worker or per-domain snapshots (the merge
// helpers domain.MergeSnapshots and netbricks.RunStats.Merge) inherit
// the same guarantee: each input is point-in-time, the sum is not a
// consistent cut.
package telemetry

import "sync/atomic"

// Counter is a monotonically increasing counter. The zero value is ready
// to use; embed it by value in a stats struct and register a pointer to
// it. All methods are safe for concurrent use and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (depth, occupancy, balance).
// The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }
