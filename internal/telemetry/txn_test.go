package telemetry

import (
	"sync"
	"testing"
)

// TestTxnBatchedRegistration: series staged on a Txn are invisible until
// Commit, then all land at once; a nil registry's Txn discards.
func TestTxnBatchedRegistration(t *testing.T) {
	reg := NewRegistry()
	var a, b Counter
	a.Add(1)
	b.Add(2)
	txn := reg.Begin()
	txn.RegisterCounter("txn_a_total", nil, &a)
	txn.RegisterCounter("txn_b_total", nil, &b)
	if len(reg.Snapshot()) != 0 {
		t.Fatal("staged series visible before Commit")
	}
	txn.Commit()
	snap := reg.Snapshot()
	if snap["txn_a_total"] != 1.0 || snap["txn_b_total"] != 2.0 {
		t.Fatalf("snapshot after Commit = %v", snap)
	}

	var nilReg *Registry
	nt := nilReg.Begin()
	var c Counter
	nt.RegisterCounter("discarded_total", nil, &c)
	nt.Commit() // must not panic
}

// TestTxnAtomicReregistration is the regression test for the mid-scrape
// reregistration race: a runner re-registering a group of series (as
// ShardedRunner.Run does per worker, and Supervisor.Spawn per domain)
// while /metrics or -stats-interval snapshots concurrently must never
// let a scrape observe the group half-replaced — some series from the
// new generation, some from the old. The writer flips a pair of series
// to a new generation via one Txn per flip; every snapshot must see the
// pair agree.
func TestTxnAtomicReregistration(t *testing.T) {
	reg := NewRegistry()
	const gens = 500

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for g := 1; g <= gens; g++ {
			g := float64(g)
			txn := reg.Begin()
			txn.RegisterCounterFunc("pair_a_total", nil, func() float64 { return g })
			txn.RegisterCounterFunc("pair_b_total", nil, func() float64 { return g })
			txn.Commit()
		}
	}()

	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				snap := reg.Snapshot()
				a, aok := snap["pair_a_total"].(float64)
				b, bok := snap["pair_b_total"].(float64)
				if aok != bok || (aok && a != b) {
					t.Errorf("torn snapshot: pair_a=%v (%v) pair_b=%v (%v)", a, aok, b, bok)
					return
				}
				if aok && a == gens {
					return
				}
			}
		}()
	}
	wg.Wait()
}
