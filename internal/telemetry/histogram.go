package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of a Histogram. Buckets are
// powers of two in nanoseconds: bucket 0 holds zero-duration samples,
// bucket i (i >= 1) holds samples in [2^(i-1), 2^i) ns, and the last
// bucket absorbs everything from ~1.07 s up. Exponential buckets over a
// fixed range is what lets the record path be two atomic adds and a
// bit-scan — no search, no allocation, no configuration.
const NumBuckets = 32

// Histogram is a fixed-bucket latency histogram. The zero value is ready
// to use; embed it by value and register a pointer. Observe is safe for
// concurrent use and allocation-free.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	buckets [NumBuckets]atomic.Uint64
}

// Observe records one duration sample. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNanos(int64(d)) }

// ObserveNanos records one sample given in nanoseconds.
func (h *Histogram) ObserveNanos(n int64) {
	if n < 0 {
		n = 0
	}
	idx := bits.Len64(uint64(n)) // 0 for 0; k for [2^(k-1), 2^k)
	if idx >= NumBuckets {
		idx = NumBuckets - 1
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(n)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all recorded samples.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// BucketUpper reports bucket i's inclusive upper bound. The last bucket
// is unbounded and reports the largest representable duration.
func BucketUpper(i int) time.Duration {
	if i >= NumBuckets-1 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(uint64(1)<<uint(i) - 1)
}

// HistogramSnapshot is a point-in-time copy of a histogram's cells,
// taken per the package's snapshot contract (each cell exact, the set
// not an atomic cut).
type HistogramSnapshot struct {
	Count   uint64
	Sum     time.Duration
	Buckets [NumBuckets]uint64
}

// Snapshot copies the histogram's counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) as the upper bound of
// the first bucket whose cumulative count reaches q·total. With
// power-of-two buckets the estimate is within 2× of the true value,
// which is the resolution operators need to tell 10 µs from 10 ms.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum >= target {
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumBuckets - 1)
}

// Mean returns the average recorded sample, or 0 with no samples.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}
