package trie

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

func TestInsertLookupLongestMatch(t *testing.T) {
	tr := New[string]()
	if err := tr.Insert(packet.Addr(10, 0, 0, 0), 8, "ten"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(packet.Addr(10, 1, 0, 0), 16, "ten-one"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(packet.Addr(10, 1, 2, 0), 24, "ten-one-two"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		ip   packet.IPv4
		want string
		ok   bool
	}{
		{packet.Addr(10, 9, 9, 9), "ten", true},
		{packet.Addr(10, 1, 9, 9), "ten-one", true},
		{packet.Addr(10, 1, 2, 9), "ten-one-two", true},
		{packet.Addr(11, 0, 0, 1), "", false},
	}
	for _, c := range cases {
		got, ok := tr.Lookup(c.ip)
		if ok != c.ok || got != c.want {
			t.Errorf("Lookup(%v) = (%q, %v), want (%q, %v)", c.ip, got, ok, c.want, c.ok)
		}
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestDefaultRoute(t *testing.T) {
	tr := New[string]()
	if err := tr.Insert(0, 0, "default"); err != nil {
		t.Fatal(err)
	}
	got, ok := tr.Lookup(packet.Addr(203, 0, 113, 9))
	if !ok || got != "default" {
		t.Fatalf("Lookup = (%q, %v)", got, ok)
	}
}

func TestInsertReplaces(t *testing.T) {
	tr := New[int]()
	_ = tr.Insert(packet.Addr(1, 0, 0, 0), 8, 1)
	_ = tr.Insert(packet.Addr(1, 0, 0, 0), 8, 2)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	got, _ := tr.Exact(packet.Addr(1, 0, 0, 0), 8)
	if got != 2 {
		t.Fatalf("Exact = %d", got)
	}
}

func TestInsertRejectsBadLength(t *testing.T) {
	tr := New[int]()
	if err := tr.Insert(0, -1, 1); err == nil {
		t.Fatal("negative length accepted")
	}
	if err := tr.Insert(0, 33, 1); err == nil {
		t.Fatal("length 33 accepted")
	}
}

func TestExact(t *testing.T) {
	tr := New[int]()
	_ = tr.Insert(packet.Addr(10, 0, 0, 0), 8, 7)
	if _, ok := tr.Exact(packet.Addr(10, 0, 0, 0), 16); ok {
		t.Fatal("Exact matched wrong length")
	}
	if _, ok := tr.Exact(packet.Addr(10, 0, 0, 0), 40); ok {
		t.Fatal("Exact accepted bad length")
	}
	v, ok := tr.Exact(packet.Addr(10, 0, 0, 0), 8)
	if !ok || v != 7 {
		t.Fatalf("Exact = (%d, %v)", v, ok)
	}
}

func TestDeleteAndPrune(t *testing.T) {
	tr := New[int]()
	_ = tr.Insert(packet.Addr(10, 0, 0, 0), 8, 1)
	_ = tr.Insert(packet.Addr(10, 1, 0, 0), 16, 2)
	if !tr.Delete(packet.Addr(10, 1, 0, 0), 16) {
		t.Fatal("Delete returned false")
	}
	if tr.Delete(packet.Addr(10, 1, 0, 0), 16) {
		t.Fatal("double Delete returned true")
	}
	if tr.Delete(packet.Addr(99, 0, 0, 0), 8) {
		t.Fatal("Delete of absent prefix returned true")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// 10.1/16 lookups now fall back to 10/8.
	got, ok := tr.Lookup(packet.Addr(10, 1, 2, 3))
	if !ok || got != 1 {
		t.Fatalf("Lookup after delete = (%d, %v)", got, ok)
	}
	// Pruning: the 16-deep chain under 10/8 should be gone. Verify by
	// walking: only one value reachable.
	n := 0
	tr.Walk(func(packet.IPv4, int, *int) bool { n++; return true })
	if n != 1 {
		t.Fatalf("walk found %d values", n)
	}
}

func TestDeleteBadLength(t *testing.T) {
	tr := New[int]()
	if tr.Delete(0, -2) || tr.Delete(0, 99) {
		t.Fatal("Delete accepted bad length")
	}
}

func TestWalkOrderAndPrefixes(t *testing.T) {
	tr := New[string]()
	_ = tr.Insert(packet.Addr(128, 0, 0, 0), 1, "high")
	_ = tr.Insert(packet.Addr(0, 0, 0, 0), 1, "low")
	_ = tr.Insert(packet.Addr(192, 0, 0, 0), 2, "vhigh")
	var got []string
	tr.Walk(func(p packet.IPv4, l int, v *string) bool {
		got = append(got, *v)
		return true
	})
	want := []string{"low", "high", "vhigh"}
	if len(got) != 3 {
		t.Fatalf("walk = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk order = %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	tr.Walk(func(packet.IPv4, int, *string) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestWalkReportsCorrectPrefix(t *testing.T) {
	tr := New[int]()
	pfx := packet.Addr(172, 16, 0, 0)
	_ = tr.Insert(pfx, 12, 1)
	found := false
	tr.Walk(func(p packet.IPv4, l int, v *int) bool {
		if l == 12 && p == pfx {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("walk did not report the inserted prefix")
	}
}

// Property: insert a set of /32 host routes; every inserted host looks up
// to its own value and Len matches the distinct count.
func TestQuickHostRoutes(t *testing.T) {
	f := func(addrs []uint32) bool {
		tr := New[uint32]()
		distinct := make(map[packet.IPv4]bool)
		for _, a := range addrs {
			ip := packet.IPv4(a)
			if err := tr.Insert(ip, 32, a); err != nil {
				return false
			}
			distinct[ip] = true
		}
		if tr.Len() != len(distinct) {
			return false
		}
		for _, a := range addrs {
			got, ok := tr.Lookup(packet.IPv4(a))
			if !ok || got != a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: delete after insert restores "not found" and Len bookkeeping.
func TestQuickInsertDelete(t *testing.T) {
	f := func(a uint32, l uint8) bool {
		length := int(l % 33)
		tr := New[int]()
		ip := packet.IPv4(a)
		if err := tr.Insert(ip, length, 5); err != nil {
			return false
		}
		if !tr.Delete(ip, length) {
			return false
		}
		_, ok := tr.Lookup(ip)
		return !ok && tr.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	tr := New[int]()
	for i := 0; i < 1000; i++ {
		_ = tr.Insert(packet.IPv4(uint32(i)<<16), 16, i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Lookup(packet.IPv4(uint32(i) << 16))
	}
}
