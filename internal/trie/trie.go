// Package trie implements a binary longest-prefix-match trie over IPv4
// addresses, the index structure of the paper's §5 firewall example
// ("rules indexed via a trie for fast rule lookup based on packet
// headers").
//
// All node fields are exported: the checkpoint engine derives deep
// checkpointing for arbitrary types by walking public structure, exactly
// as the paper's compiler plugin derives Checkpointable inductively over a
// type's components.
package trie

import (
	"fmt"

	"repro/internal/packet"
)

// Node is one trie node. Child[0] follows a 0 bit, Child[1] a 1 bit; Val
// is non-nil when a prefix terminates here.
type Node[V any] struct {
	Child [2]*Node[V]
	Val   *V
}

// Trie is a binary LPM trie mapping IPv4 prefixes to values of type V.
type Trie[V any] struct {
	Root  *Node[V]
	Count int
}

// New creates an empty trie.
func New[V any]() *Trie[V] {
	return &Trie[V]{Root: &Node[V]{}}
}

// bit returns the i-th most significant bit of ip (i in [0,32)).
func bit(ip packet.IPv4, i int) int {
	return int(ip>>(31-i)) & 1
}

// Insert maps the prefix (ip masked to length bits) to v, replacing any
// existing value. length must be in [0, 32].
func (t *Trie[V]) Insert(ip packet.IPv4, length int, v V) error {
	if length < 0 || length > 32 {
		return fmt.Errorf("trie: prefix length %d out of range", length)
	}
	n := t.Root
	for i := 0; i < length; i++ {
		b := bit(ip, i)
		if n.Child[b] == nil {
			n.Child[b] = &Node[V]{}
		}
		n = n.Child[b]
	}
	if n.Val == nil {
		t.Count++
	}
	val := v
	n.Val = &val
	return nil
}

// Lookup returns the value of the longest prefix matching ip.
func (t *Trie[V]) Lookup(ip packet.IPv4) (V, bool) {
	var best *V
	n := t.Root
	if n == nil {
		var zero V
		return zero, false
	}
	if n.Val != nil {
		best = n.Val
	}
	for i := 0; i < 32 && n != nil; i++ {
		n = n.Child[bit(ip, i)]
		if n != nil && n.Val != nil {
			best = n.Val
		}
	}
	if best == nil {
		var zero V
		return zero, false
	}
	return *best, true
}

// Exact returns the value stored for exactly the given prefix.
func (t *Trie[V]) Exact(ip packet.IPv4, length int) (V, bool) {
	var zero V
	if length < 0 || length > 32 {
		return zero, false
	}
	n := t.Root
	for i := 0; i < length && n != nil; i++ {
		n = n.Child[bit(ip, i)]
	}
	if n == nil || n.Val == nil {
		return zero, false
	}
	return *n.Val, true
}

// Delete removes the exact prefix, reporting whether it was present.
// Empty interior nodes are pruned.
func (t *Trie[V]) Delete(ip packet.IPv4, length int) bool {
	if length < 0 || length > 32 {
		return false
	}
	// Record the path for pruning.
	path := make([]*Node[V], 0, length+1)
	n := t.Root
	path = append(path, n)
	for i := 0; i < length; i++ {
		n = n.Child[bit(ip, i)]
		if n == nil {
			return false
		}
		path = append(path, n)
	}
	if n.Val == nil {
		return false
	}
	n.Val = nil
	t.Count--
	// Prune childless, valueless nodes bottom-up (never the root).
	for i := len(path) - 1; i > 0; i-- {
		cur := path[i]
		if cur.Val != nil || cur.Child[0] != nil || cur.Child[1] != nil {
			break
		}
		parent := path[i-1]
		b := bit(ip, i-1)
		parent.Child[b] = nil
	}
	return true
}

// Walk visits every stored value in prefix order. The callback receives
// the prefix, its length, and a pointer to the stored value (so callers
// can inspect identity/sharing). Returning false stops the walk.
func (t *Trie[V]) Walk(fn func(prefix packet.IPv4, length int, v *V) bool) {
	var rec func(n *Node[V], prefix packet.IPv4, depth int) bool
	rec = func(n *Node[V], prefix packet.IPv4, depth int) bool {
		if n == nil {
			return true
		}
		if n.Val != nil {
			if !fn(prefix, depth, n.Val) {
				return false
			}
		}
		if !rec(n.Child[0], prefix, depth+1) {
			return false
		}
		return rec(n.Child[1], prefix|packet.IPv4(1<<(31-depth)), depth+1)
	}
	rec(t.Root, 0, 0)
}

// Len reports the number of stored prefixes.
func (t *Trie[V]) Len() int { return t.Count }
