package checkpoint

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

type point struct {
	X, Y int
}

type record struct {
	Name   string
	Vals   []int
	Next   *record
	Lookup map[string]int
}

func TestCheckpointScalarsAndStructs(t *testing.T) {
	e := NewEngine(RcAware)
	s, err := e.Checkpoint(point{X: 1, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Value().(point); got != (point{1, 2}) {
		t.Fatalf("Value = %+v", got)
	}
	var dst point
	if err := s.Restore(&dst); err != nil {
		t.Fatal(err)
	}
	if dst != (point{1, 2}) {
		t.Fatalf("Restore = %+v", dst)
	}
}

func TestCheckpointDeepStructure(t *testing.T) {
	orig := &record{
		Name:   "a",
		Vals:   []int{1, 2, 3},
		Lookup: map[string]int{"k": 9},
		Next:   &record{Name: "b", Vals: []int{4}},
	}
	e := NewEngine(RcAware)
	s, err := e.Checkpoint(orig)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the original; the snapshot must be unaffected.
	orig.Name = "mutated"
	orig.Vals[0] = 99
	orig.Lookup["k"] = -1
	orig.Next.Vals[0] = 77

	var got *record
	if err := s.Restore(&got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "a" || got.Vals[0] != 1 || got.Lookup["k"] != 9 || got.Next.Vals[0] != 4 {
		t.Fatalf("snapshot contaminated by post-checkpoint mutation: %+v / next %+v", got, got.Next)
	}
	if got == orig || got.Next == orig.Next {
		t.Fatal("restore returned original pointers")
	}
	if s.Stats().Objects < 2 {
		t.Fatalf("Objects = %d, want >= 2", s.Stats().Objects)
	}
}

func TestCheckpointNilHandling(t *testing.T) {
	e := NewEngine(RcAware)
	s, err := e.Checkpoint(&record{Name: "x"}) // nil Next, nil map, nil slice
	if err != nil {
		t.Fatal(err)
	}
	var got *record
	if err := s.Restore(&got); err != nil {
		t.Fatal(err)
	}
	if got.Next != nil || got.Vals != nil || got.Lookup != nil {
		t.Fatal("nil fields not preserved")
	}
	if _, err := e.Checkpoint(nil); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Checkpoint(nil) err = %v", err)
	}
}

func TestCheckpointArraysAndInterfaces(t *testing.T) {
	type holder struct {
		Arr [3]*point
		Any any
	}
	h := holder{Arr: [3]*point{{X: 1}, nil, {X: 3}}, Any: &point{X: 7}}
	e := NewEngine(RcAware)
	s, err := e.Checkpoint(h)
	if err != nil {
		t.Fatal(err)
	}
	var got holder
	if err := s.Restore(&got); err != nil {
		t.Fatal(err)
	}
	if got.Arr[0].X != 1 || got.Arr[1] != nil || got.Arr[2].X != 3 {
		t.Fatalf("array mangled: %+v", got.Arr)
	}
	if got.Arr[0] == h.Arr[0] {
		t.Fatal("array element aliases original")
	}
	ip, ok := got.Any.(*point)
	if !ok || ip.X != 7 || ip == h.Any.(*point) {
		t.Fatal("interface payload not deep-copied")
	}
	var nilAny holder
	s2, err := e.Checkpoint(nilAny)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Restore(&got); err != nil {
		t.Fatal(err)
	}
	if got.Any != nil {
		t.Fatal("nil interface not preserved")
	}
}

func TestUnexportedFieldsRejected(t *testing.T) {
	type sneaky struct {
		Public int
		secret int //nolint:unused // intentional: triggers the error path
	}
	e := NewEngine(RcAware)
	_, err := e.Checkpoint(sneaky{Public: 1})
	if !errors.Is(err, ErrUnexported) {
		t.Fatalf("err = %v, want ErrUnexported", err)
	}
}

func TestUnsupportedKinds(t *testing.T) {
	e := NewEngine(RcAware)
	if _, err := e.Checkpoint(func() {}); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("func: %v", err)
	}
	if _, err := e.Checkpoint(make(chan int)); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("chan: %v", err)
	}
}

func TestRestoreIntoInterfaceDestination(t *testing.T) {
	e := NewEngine(RcAware)
	s, err := e.Checkpoint(&point{X: 4})
	if err != nil {
		t.Fatal(err)
	}
	var dst any
	if err := s.Restore(&dst); err != nil {
		t.Fatalf("Restore into *any: %v", err)
	}
	p, ok := dst.(*point)
	if !ok || p.X != 4 {
		t.Fatalf("dst = %#v", dst)
	}
}

func TestMaterialize(t *testing.T) {
	e := NewEngine(RcAware)
	orig := &record{Name: "m", Vals: []int{1}}
	s, err := e.Checkpoint(orig)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := v.(*record)
	if !ok || got == orig || got.Name != "m" {
		t.Fatalf("Materialize = %#v", v)
	}
	// Independent copies each call.
	v2, err := s.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if v2.(*record) == got {
		t.Fatal("Materialize returned the same object twice")
	}
}

func TestRestoreValidation(t *testing.T) {
	e := NewEngine(RcAware)
	s, err := e.Checkpoint(point{X: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(nil); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("Restore(nil): %v", err)
	}
	var wrong int
	if err := s.Restore(&wrong); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("Restore wrong type: %v", err)
	}
	var notPtr point
	if err := s.Restore(notPtr); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("Restore non-pointer: %v", err)
	}
}

// --- Rc sharing semantics (the heart of §5 / Figure 3) ---

type rule struct {
	ID     int
	Action string
}

type db struct {
	// Two slots that may alias the same rule, as two trie leaves would.
	A, B Rc[rule]
}

func TestRcAwarePreservesSharing(t *testing.T) {
	shared := NewRc(rule{ID: 1, Action: "allow"})
	d := db{A: shared, B: shared.Clone()}
	if !d.A.SameBox(d.B) {
		t.Fatal("setup: not aliased")
	}
	e := NewEngine(RcAware)
	s, err := e.Checkpoint(d)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.RcFirst != 1 || st.RcReused != 1 {
		t.Fatalf("stats = %+v, want 1 copy + 1 reuse", st)
	}
	var got db
	if err := s.Restore(&got); err != nil {
		t.Fatal(err)
	}
	if !got.A.SameBox(got.B) {
		t.Fatal("restored copies not aliased: sharing lost")
	}
	if got.A.SameBox(d.A) {
		t.Fatal("restored Rc aliases the original box")
	}
	if got.A.Get().ID != 1 {
		t.Fatalf("value = %+v", got.A.Get())
	}
	// Mutation through one restored alias is visible through the other —
	// alias semantics fully reproduced.
	got.A.Set(rule{ID: 2, Action: "deny"})
	if got.B.Get().ID != 2 {
		t.Fatal("restored aliases not actually shared")
	}
	// And the original is untouched.
	if d.A.Get().ID != 1 {
		t.Fatal("original mutated")
	}
}

func TestNaiveDuplicatesSharedRule(t *testing.T) {
	// Figure 3b: naive traversal creates multiple copies of rule 1.
	shared := NewRc(rule{ID: 1})
	d := db{A: shared, B: shared.Clone()}
	e := NewEngine(Naive)
	s, err := e.Checkpoint(d)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().RcFirst != 2 {
		t.Fatalf("RcFirst = %d, want 2 (duplicate copies)", s.Stats().RcFirst)
	}
	var got db
	if err := s.Restore(&got); err != nil {
		t.Fatal(err)
	}
	if got.A.SameBox(got.B) {
		t.Fatal("naive mode unexpectedly preserved sharing")
	}
}

func TestVisitedSetPreservesSharingWithProbes(t *testing.T) {
	shared := NewRc(rule{ID: 1})
	d := db{A: shared, B: shared.Clone()}
	e := NewEngine(VisitedSet)
	s, err := e.Checkpoint(d)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.RcFirst != 1 || st.RcReused != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.SetProbes < 2 {
		t.Fatalf("SetProbes = %d, want >= 2", st.SetProbes)
	}
	var got db
	if err := s.Restore(&got); err != nil {
		t.Fatal(err)
	}
	if !got.A.SameBox(got.B) {
		t.Fatal("visited-set mode lost sharing")
	}
}

func TestRepeatedCheckpointsIndependentEpochs(t *testing.T) {
	// The paper's flag must reset between checkpoints: a second
	// checkpoint must copy again, not reuse the first run's copy.
	shared := NewRc(rule{ID: 1})
	d := db{A: shared, B: shared.Clone()}
	e := NewEngine(RcAware)
	s1, err := e.Checkpoint(d)
	if err != nil {
		t.Fatal(err)
	}
	shared.Set(rule{ID: 2})
	s2, err := e.Checkpoint(d)
	if err != nil {
		t.Fatal(err)
	}
	var g1, g2 db
	if err := s1.Restore(&g1); err != nil {
		t.Fatal(err)
	}
	if err := s2.Restore(&g2); err != nil {
		t.Fatal(err)
	}
	if g1.A.Get().ID != 1 || g2.A.Get().ID != 2 {
		t.Fatalf("epoch confusion: s1=%d s2=%d", g1.A.Get().ID, g2.A.Get().ID)
	}
	if s2.Stats().RcFirst != 1 || s2.Stats().RcReused != 1 {
		t.Fatalf("second run stats = %+v", s2.Stats())
	}
}

type cyclic struct {
	ID   int
	Peer Rc[*cyclic]
}

func TestCyclicGraphThroughRc(t *testing.T) {
	// a.Peer -> b, b.Peer -> a: a cycle, expressible only through Rc in
	// the linear regime. The epoch flag must terminate the traversal.
	a := &cyclic{ID: 1}
	b := &cyclic{ID: 2}
	ra := NewRc(a)
	rb := NewRc(b)
	a.Peer = rb
	b.Peer = ra

	e := NewEngine(RcAware)
	s, err := e.Checkpoint(ra)
	if err != nil {
		t.Fatal(err)
	}
	var got Rc[*cyclic]
	if err := s.Restore(&got); err != nil {
		t.Fatal(err)
	}
	ga := got.Get()
	gb := ga.Peer.Get()
	if ga.ID != 1 || gb.ID != 2 {
		t.Fatalf("ids = %d,%d", ga.ID, gb.ID)
	}
	// The cycle is closed in the copy and points at the copy, not the
	// original.
	if gb.Peer.Get() != ga {
		t.Fatal("cycle not closed in the restored graph")
	}
	if ga == a || gb == b {
		t.Fatal("restored graph aliases original nodes")
	}
}

func TestVisitedSetHandlesPlainPointerDiamond(t *testing.T) {
	// Conventional-language scenario: plain-pointer aliasing (which the
	// linear regime forbids, but VisitedSet mode exists to model). Build a
	// diamond with plain pointers and confirm visited-set preserves it
	// while the unique-owner modes duplicate.
	leaf := &point{X: 5}
	type diamond struct{ L, R *point }
	d := diamond{L: leaf, R: leaf}

	vs, err := NewEngine(VisitedSet).Checkpoint(d)
	if err != nil {
		t.Fatal(err)
	}
	var gv diamond
	if err := vs.Restore(&gv); err != nil {
		t.Fatal(err)
	}
	if gv.L != gv.R {
		t.Fatal("visited-set lost plain-pointer sharing")
	}

	na, err := NewEngine(RcAware).Checkpoint(d)
	if err != nil {
		t.Fatal(err)
	}
	var gn diamond
	if err := na.Restore(&gn); err != nil {
		t.Fatal(err)
	}
	if gn.L == gn.R {
		t.Fatal("unique-owner mode should duplicate plain-pointer aliases")
	}
	if gn.L.X != 5 || gn.R.X != 5 {
		t.Fatal("values wrong")
	}
}

func TestCustomCheckpointable(t *testing.T) {
	e := NewEngine(RcAware)
	s, err := e.Checkpoint(secretive{Hidden: 3})
	if err != nil {
		t.Fatalf("custom Checkpointable not honored: %v", err)
	}
	var got secretive
	if err := s.Restore(&got); err != nil {
		t.Fatal(err)
	}
	if got.Hidden != 3 || got.copies == 0 {
		t.Fatalf("got = %+v", got)
	}
}

// secretive has an unexported field, so derivation would fail; it
// implements Checkpointable to take control.
type secretive struct {
	Hidden int
	copies int
}

func (s secretive) CheckpointCopy(clone func(any) (any, error)) (any, error) {
	return secretive{Hidden: s.Hidden, copies: s.copies + 1}, nil
}

func TestRcZeroAndPanics(t *testing.T) {
	var z Rc[int]
	if !z.IsZero() || z.StrongCount() != 0 {
		t.Fatal("zero Rc misbehaves")
	}
	for name, fn := range map[string]func(){
		"Get":   func() { z.Get() },
		"Set":   func() { z.Set(1) },
		"Clone": func() { z.Clone() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on zero Rc did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRcCloneCountsAndSet(t *testing.T) {
	r := NewRc(10)
	c := r.Clone()
	if r.StrongCount() != 2 {
		t.Fatalf("count = %d", r.StrongCount())
	}
	c.Set(20)
	if r.Get() != 20 {
		t.Fatal("Set not visible through alias")
	}
}

func TestConcurrentMutationDuringCheckpoint(t *testing.T) {
	// §5: "adds the checkpointing capability ... in an efficient and
	// thread-safe way". Mutators race with checkpoints; every snapshot
	// must contain a value that was valid at some point (no torn reads)
	// and the engine must not crash.
	shared := NewRc(rule{ID: 0, Action: "allow"})
	d := db{A: shared, B: shared.Clone()}
	e := NewEngine(RcAware)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			shared.Set(rule{ID: i, Action: "allow"})
		}
	}()
	for i := 0; i < 200; i++ {
		s, err := e.Checkpoint(d)
		if err != nil {
			t.Fatal(err)
		}
		var got db
		if err := s.Restore(&got); err != nil {
			t.Fatal(err)
		}
		if got.A.Get().Action != "allow" {
			t.Fatal("torn read")
		}
		if !got.A.SameBox(got.B) {
			t.Fatal("sharing lost under concurrency")
		}
	}
	close(stop)
	wg.Wait()
}

// Property: for a random tree of Rc-shared leaves, RcAware checkpoint
// count equals the number of distinct boxes, and reuses equal total
// handles minus distinct boxes.
func TestQuickRcCopyCounts(t *testing.T) {
	f := func(pattern []uint8) bool {
		if len(pattern) == 0 {
			return true
		}
		if len(pattern) > 24 {
			pattern = pattern[:24]
		}
		// Build a pool of up to 4 distinct shared rules, then a slice of
		// handles chosen by pattern.
		pool := []Rc[rule]{NewRc(rule{ID: 0}), NewRc(rule{ID: 1}), NewRc(rule{ID: 2}), NewRc(rule{ID: 3})}
		used := map[int]bool{}
		handles := make([]Rc[rule], 0, len(pattern))
		for _, p := range pattern {
			i := int(p) % len(pool)
			used[i] = true
			handles = append(handles, pool[i].Clone())
		}
		s, err := NewEngine(RcAware).Checkpoint(handles)
		if err != nil {
			return false
		}
		st := s.Stats()
		return st.RcFirst == len(used) && st.RcReused == len(handles)-len(used)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: restore(checkpoint(x)) == x for value trees without sharing.
func TestQuickRoundTrip(t *testing.T) {
	f := func(name string, vals []int, k string, v int) bool {
		orig := &record{Name: name, Vals: vals, Lookup: map[string]int{k: v}}
		s, err := NewEngine(RcAware).Checkpoint(orig)
		if err != nil {
			return false
		}
		var got *record
		if err := s.Restore(&got); err != nil {
			return false
		}
		if got.Name != name || len(got.Vals) != len(vals) || got.Lookup[k] != v {
			return false
		}
		for i := range vals {
			if got.Vals[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if RcAware.String() != "rc-aware" || Naive.String() != "naive" || VisitedSet.String() != "visited-set" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Fatal("unknown mode name wrong")
	}
}
