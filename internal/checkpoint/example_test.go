package checkpoint_test

import (
	"fmt"

	"repro/internal/checkpoint"
)

type policy struct {
	Name string
}

type router struct {
	// Two routes sharing one policy object — the Figure 3a shape.
	RouteA, RouteB checkpoint.Rc[policy]
	Hops           []string
}

// Example reproduces Figure 3 in miniature: the Rc-aware engine copies
// the shared policy once and the restored graph preserves the aliasing;
// the naive engine duplicates it.
func Example() {
	shared := checkpoint.NewRc(policy{Name: "allow-web"})
	r := &router{RouteA: shared, RouteB: shared.Clone(), Hops: []string{"a", "b"}}

	snap, _ := checkpoint.NewEngine(checkpoint.RcAware).Checkpoint(r)
	var restored *router
	_ = snap.Restore(&restored)
	fmt.Println("rc-aware copies:", snap.Stats().RcFirst)
	fmt.Println("sharing preserved:", restored.RouteA.SameBox(restored.RouteB))

	naive, _ := checkpoint.NewEngine(checkpoint.Naive).Checkpoint(r)
	var dup *router
	_ = naive.Restore(&dup)
	fmt.Println("naive copies:", naive.Stats().RcFirst)
	fmt.Println("naive duplicated:", !dup.RouteA.SameBox(dup.RouteB))
	// Output:
	// rc-aware copies: 1
	// sharing preserved: true
	// naive copies: 2
	// naive duplicated: true
}

// ExampleSnapshot_Restore shows that snapshots are immune to later
// mutation of the live graph — the checkpoint/rollback property.
func ExampleSnapshot_Restore() {
	live := &router{RouteA: checkpoint.NewRc(policy{Name: "v1"})}
	live.RouteB = live.RouteA.Clone()
	snap, _ := checkpoint.NewEngine(checkpoint.RcAware).Checkpoint(live)

	live.RouteA.Set(policy{Name: "v2-corrupted"})

	var rolledBack *router
	_ = snap.Restore(&rolledBack)
	fmt.Println("live:", live.RouteA.Get().Name)
	fmt.Println("restored:", rolledBack.RouteA.Get().Name)
	// Output:
	// live: v2-corrupted
	// restored: v1
}
