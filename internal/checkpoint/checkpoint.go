// Package checkpoint implements the paper's §5 contribution: automatic
// checkpointing of arbitrary pointer-linked data structures.
//
// The paper's library is a Rust trait, Checkpointable, whose
// implementation a compiler plugin derives inductively for any type built
// from scalars and references to checkpointable types, plus a hand-written
// implementation for Rc that sets an internal flag on first visit so a
// shared object is copied exactly once per checkpoint.
//
// Go has no compiler plugins, so this package derives the same behaviour
// with reflection over a type's exported structure — the moral equivalent
// of the plugin's induction over type components. The key insight carries
// over unchanged:
//
//   - plain pointers are treated as unique owners and traversed without a
//     visited set (the linear regime this repository enforces dynamically
//     via internal/linear makes that sound); and
//   - aliasing is explicit in the type: only checkpoint.Rc values can be
//     shared, and the Rc box itself carries the per-epoch "already
//     checkpointed" state, so sharing is preserved with O(1) work per
//     alias and no global address table.
//
// Three engine modes exist so that Figure 3 and its ablation can be
// regenerated:
//
//   - RcAware   — the paper's design (flag inside Rc);
//   - Naive     — pretends Rc is a unique pointer, producing the duplicate
//     copies of Figure 3b;
//   - VisitedSet — the conventional-language workaround: record every
//     address reached and check each new object against the set, paying
//     lookup cost on every pointer, aliased or not.
package checkpoint

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
)

// Mode selects how the engine handles aliasing during traversal.
type Mode int

const (
	// RcAware preserves sharing using the per-epoch flag inside Rc.
	RcAware Mode = iota
	// Naive traverses through Rc as if it were a unique pointer,
	// duplicating shared objects (Figure 3b).
	Naive
	// VisitedSet preserves sharing with a global address table, the
	// conventional-language technique the paper contrasts against.
	VisitedSet
)

// String names the mode for reports.
func (m Mode) String() string {
	switch m {
	case RcAware:
		return "rc-aware"
	case Naive:
		return "naive"
	case VisitedSet:
		return "visited-set"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Errors reported by the engine.
var (
	// ErrUnsupported reports a type the derivation cannot handle
	// (functions, channels, unsafe pointers).
	ErrUnsupported = errors.New("checkpoint: unsupported type")
	// ErrUnexported reports a struct with unexported fields, which the
	// reflection-based derivation cannot traverse. Such types must
	// implement Checkpointable themselves.
	ErrUnexported = errors.New("checkpoint: unexported field")
	// ErrTypeMismatch reports a Restore into an incompatible destination.
	ErrTypeMismatch = errors.New("checkpoint: type mismatch")
)

// Checkpointable lets a type provide custom checkpoint behaviour, taking
// the place of the derived traversal (the trait customization point).
// Copy must return a deep copy of the receiver of the same type, using
// clone to copy any interior state it does not own uniquely.
type Checkpointable interface {
	CheckpointCopy(clone func(v any) (any, error)) (any, error)
}

// epochCounter hands out one globally unique epoch per checkpoint run, so
// Rc flags from different runs can never be confused.
var epochCounter atomic.Uint64

// Stats counts traversal work for the Figure 3 experiment.
type Stats struct {
	Objects   int // pointer targets deep-copied
	RcFirst   int // Rc boxes copied (first visit this epoch)
	RcReused  int // Rc aliases that reused an existing copy
	SetProbes int // visited-set lookups (VisitedSet mode only)
}

// Engine performs checkpoint traversals in a fixed mode. Engines are
// stateless between runs; each Checkpoint call gets a fresh epoch.
// Checkpointing is safe to run concurrently with mutation of Rc values
// (the box mutex serializes access), but two *simultaneous* checkpoints
// over overlapping graphs race on the per-box epoch flag and may lose
// sharing; serialize whole-graph checkpoints, as the paper's library does
// implicitly by running checkpoint() on one thread.
type Engine struct {
	mode Mode
}

// NewEngine creates an engine in the given mode.
func NewEngine(mode Mode) *Engine { return &Engine{mode: mode} }

// Mode reports the engine's aliasing mode.
func (e *Engine) Mode() Mode { return e.mode }

// run is the per-checkpoint traversal state.
type run struct {
	mode    Mode
	epoch   uint64
	visited map[any]reflect.Value // VisitedSet mode: pointer -> copied value
	stats   Stats
}

// Snapshot is an immutable deep copy of a value graph, with the alias
// structure recorded faithfully (in RcAware and VisitedSet modes). It can
// be restored any number of times.
type Snapshot struct {
	val   reflect.Value
	typ   reflect.Type
	stats Stats
	mode  Mode
}

// Stats reports the traversal counters of the checkpoint run.
func (s *Snapshot) Stats() Stats { return s.stats }

// Mode reports the engine mode the snapshot was taken with.
func (s *Snapshot) Mode() Mode { return s.mode }

// Checkpoint deep-copies v and returns the snapshot. The input graph is
// not modified except for the epoch words inside Rc boxes.
func (e *Engine) Checkpoint(v any) (*Snapshot, error) {
	r := &run{mode: e.mode, epoch: epochCounter.Add(1)}
	if e.mode == VisitedSet {
		r.visited = make(map[any]reflect.Value)
	}
	rv := reflect.ValueOf(v)
	if !rv.IsValid() {
		return nil, fmt.Errorf("checkpoint of nil interface: %w", ErrUnsupported)
	}
	cp, err := r.clone(rv)
	if err != nil {
		return nil, err
	}
	return &Snapshot{val: cp, typ: rv.Type(), stats: r.stats, mode: e.mode}, nil
}

// Value returns the snapshot's root as an interface value. The returned
// graph must be treated as immutable; use Restore for a mutable copy.
func (s *Snapshot) Value() any { return s.val.Interface() }

// Restore materializes a fresh mutable copy of the snapshot into *dst.
// dst must be a non-nil pointer whose element type matches the
// checkpointed value. Restoring re-runs the copy in the snapshot's mode,
// so alias structure recorded at checkpoint time is reproduced in the
// restored graph.
func (s *Snapshot) Restore(dst any) error {
	dv := reflect.ValueOf(dst)
	if dv.Kind() != reflect.Pointer || dv.IsNil() {
		return fmt.Errorf("restore destination must be a non-nil pointer: %w", ErrTypeMismatch)
	}
	if dv.Elem().Type() != s.typ {
		// Allow restoring into an interface destination that can hold
		// the snapshot's concrete type (e.g. *any), which heterogeneous
		// state stores rely on.
		if !(dv.Elem().Kind() == reflect.Interface && s.typ.AssignableTo(dv.Elem().Type())) {
			return fmt.Errorf("restore into %s, snapshot holds %s: %w", dv.Elem().Type(), s.typ, ErrTypeMismatch)
		}
	}
	r := &run{mode: s.mode, epoch: epochCounter.Add(1)}
	if s.mode == VisitedSet {
		r.visited = make(map[any]reflect.Value)
	}
	cp, err := r.clone(s.val)
	if err != nil {
		return err
	}
	dv.Elem().Set(cp)
	return nil
}

// Materialize returns a fresh mutable deep copy of the snapshot as an
// interface value, for callers that cannot provide a typed destination
// (e.g. code handling heterogeneous state graphs). The copy preserves the
// snapshot's alias structure like Restore.
func (s *Snapshot) Materialize() (any, error) {
	r := &run{mode: s.mode, epoch: epochCounter.Add(1)}
	if s.mode == VisitedSet {
		r.visited = make(map[any]reflect.Value)
	}
	cp, err := r.clone(s.val)
	if err != nil {
		return nil, err
	}
	return cp.Interface(), nil
}

// aliased is implemented by Rc; it routes traversal through the box's
// epoch flag (or duplicates, in Naive mode).
type aliased interface {
	checkpointAliased(r *run) (reflect.Value, error)
}

// clone dispatches on the dynamic structure of v.
func (r *run) clone(v reflect.Value) (reflect.Value, error) {
	if !v.IsValid() {
		return v, nil
	}
	// Customization points first: Rc, then user-provided Checkpointable.
	// The aliased hook is restricted to struct kind so that a *Rc[T]
	// pointer (whose method set also includes the hook) still goes
	// through the pointer path and keeps its type.
	if v.CanInterface() {
		if v.Kind() == reflect.Struct {
			if a, ok := v.Interface().(aliased); ok {
				return a.checkpointAliased(r)
			}
		}
		if c, ok := v.Interface().(Checkpointable); ok {
			out, err := c.CheckpointCopy(func(inner any) (any, error) {
				cv, err := r.clone(reflect.ValueOf(inner))
				if err != nil {
					return nil, err
				}
				return cv.Interface(), nil
			})
			if err != nil {
				return reflect.Value{}, err
			}
			ov := reflect.ValueOf(out)
			if ov.Type() != v.Type() {
				return reflect.Value{}, fmt.Errorf("CheckpointCopy of %s returned %s: %w", v.Type(), ov.Type(), ErrTypeMismatch)
			}
			return ov, nil
		}
	}

	switch v.Kind() {
	case reflect.Bool, reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128, reflect.String:
		return v, nil

	case reflect.Pointer:
		return r.clonePointer(v)

	case reflect.Struct:
		return r.cloneStruct(v)

	case reflect.Slice:
		if v.IsNil() {
			return v, nil
		}
		out := reflect.MakeSlice(v.Type(), v.Len(), v.Len())
		for i := 0; i < v.Len(); i++ {
			cv, err := r.clone(v.Index(i))
			if err != nil {
				return reflect.Value{}, err
			}
			out.Index(i).Set(cv)
		}
		return out, nil

	case reflect.Array:
		out := reflect.New(v.Type()).Elem()
		for i := 0; i < v.Len(); i++ {
			cv, err := r.clone(v.Index(i))
			if err != nil {
				return reflect.Value{}, err
			}
			out.Index(i).Set(cv)
		}
		return out, nil

	case reflect.Map:
		if v.IsNil() {
			return v, nil
		}
		out := reflect.MakeMapWithSize(v.Type(), v.Len())
		iter := v.MapRange()
		for iter.Next() {
			kc, err := r.clone(iter.Key())
			if err != nil {
				return reflect.Value{}, err
			}
			vc, err := r.clone(iter.Value())
			if err != nil {
				return reflect.Value{}, err
			}
			out.SetMapIndex(kc, vc)
		}
		return out, nil

	case reflect.Interface:
		if v.IsNil() {
			return v, nil
		}
		cv, err := r.clone(v.Elem())
		if err != nil {
			return reflect.Value{}, err
		}
		out := reflect.New(v.Type()).Elem()
		out.Set(cv)
		return out, nil

	default:
		return reflect.Value{}, fmt.Errorf("%s (kind %s): %w", v.Type(), v.Kind(), ErrUnsupported)
	}
}

// clonePointer copies the pointee. In the linear regime a plain pointer is
// a unique owner, so no visited set is consulted (RcAware/Naive); the
// VisitedSet mode models the conventional language that cannot assume
// uniqueness and must probe the table for every pointer.
func (r *run) clonePointer(v reflect.Value) (reflect.Value, error) {
	if v.IsNil() {
		return v, nil
	}
	if r.mode == VisitedSet {
		key := v.Interface() // pointers are comparable map keys
		r.stats.SetProbes++
		if prev, ok := r.visited[key]; ok {
			return prev, nil
		}
		out := reflect.New(v.Type().Elem())
		r.visited[key] = out // record before recursing: handles cycles
		cv, err := r.clone(v.Elem())
		if err != nil {
			return reflect.Value{}, err
		}
		out.Elem().Set(cv)
		r.stats.Objects++
		return out, nil
	}
	cv, err := r.clone(v.Elem())
	if err != nil {
		return reflect.Value{}, err
	}
	out := reflect.New(v.Type().Elem())
	out.Elem().Set(cv)
	r.stats.Objects++
	return out, nil
}

func (r *run) cloneStruct(v reflect.Value) (reflect.Value, error) {
	t := v.Type()
	out := reflect.New(t).Elem()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			return reflect.Value{}, fmt.Errorf("%s.%s: %w (implement Checkpointable for this type)", t, f.Name, ErrUnexported)
		}
		cv, err := r.clone(v.Field(i))
		if err != nil {
			return reflect.Value{}, err
		}
		out.Field(i).Set(cv)
	}
	return out, nil
}

// rcBox is the shared allocation behind checkpoint.Rc handles. It carries
// the paper's "internal flag": the epoch of the last checkpoint that
// visited it and the copy made by that visit.
type rcBox[T any] struct {
	mu     sync.Mutex
	val    T
	strong int64

	ckptEpoch uint64
	ckptCopy  *rcBox[T]
}

// Rc is a reference-counted shared value with built-in checkpoint
// support — the analogue of the paper's custom Checkpointable impl for
// Rust's Rc. Aliasing a value in a checkpointable structure is only
// possible through Rc, which is what makes derivation sound without alias
// analysis.
type Rc[T any] struct {
	box *rcBox[T]
}

// NewRc allocates a shared value.
func NewRc[T any](v T) Rc[T] {
	return Rc[T]{box: &rcBox[T]{val: v, strong: 1}}
}

// Clone creates another handle to the same shared value.
func (r Rc[T]) Clone() Rc[T] {
	if r.box == nil {
		panic("checkpoint: Clone of zero Rc")
	}
	r.box.mu.Lock()
	r.box.strong++
	r.box.mu.Unlock()
	return r
}

// Get returns the shared value.
func (r Rc[T]) Get() T {
	if r.box == nil {
		panic("checkpoint: Get on zero Rc")
	}
	r.box.mu.Lock()
	defer r.box.mu.Unlock()
	return r.box.val
}

// Peek returns a pointer to the shared value without copying it. It is
// the read path for per-packet code: Get copies T under the box lock and
// the copy heap-escapes when the caller returns a pointer to it, while
// Peek hands out the box's own storage. The caller must treat the target
// as read-only and must not race it with Set; values that mutate after
// publication should stay on Get/Set.
func (r Rc[T]) Peek() *T {
	if r.box == nil {
		panic("checkpoint: Peek on zero Rc")
	}
	return &r.box.val
}

// Set replaces the shared value (visible through every alias — this is
// exactly the behaviour that defeats naive traversal and security-type
// systems, and that the epoch flag handles for free).
func (r Rc[T]) Set(v T) {
	if r.box == nil {
		panic("checkpoint: Set on zero Rc")
	}
	r.box.mu.Lock()
	r.box.val = v
	r.box.mu.Unlock()
}

// StrongCount reports the number of handles.
func (r Rc[T]) StrongCount() int64 {
	if r.box == nil {
		return 0
	}
	r.box.mu.Lock()
	defer r.box.mu.Unlock()
	return r.box.strong
}

// SameBox reports whether two handles alias the same allocation — the
// sharing-structure probe the Figure 3 assertions use.
func (r Rc[T]) SameBox(o Rc[T]) bool { return r.box == o.box }

// IsZero reports whether the handle is the zero Rc.
func (r Rc[T]) IsZero() bool { return r.box == nil }

// checkpointAliased implements the aliased hook. RcAware: first visit in
// an epoch copies the value and parks the copy in the box; subsequent
// visits hand out handles to the same copy. Naive: every visit copies.
// VisitedSet: the box pointer goes through the run's address table.
func (r Rc[T]) checkpointAliased(run *run) (reflect.Value, error) {
	if r.box == nil {
		return reflect.ValueOf(r), nil
	}
	switch run.mode {
	case Naive:
		r.box.mu.Lock()
		val := r.box.val
		r.box.mu.Unlock()
		cv, err := run.clone(reflect.ValueOf(&val).Elem())
		if err != nil {
			return reflect.Value{}, err
		}
		run.stats.RcFirst++
		return reflect.ValueOf(NewRc(cv.Interface().(T))), nil

	case VisitedSet:
		run.stats.SetProbes++
		if prev, ok := run.visited[r.box]; ok {
			run.stats.RcReused++
			return prev, nil
		}
		r.box.mu.Lock()
		val := r.box.val
		r.box.mu.Unlock()
		nb := &rcBox[T]{strong: 1}
		out := reflect.ValueOf(Rc[T]{box: nb})
		run.visited[r.box] = out // pre-register: cycles through Rc
		cv, err := run.clone(reflect.ValueOf(&val).Elem())
		if err != nil {
			return reflect.Value{}, err
		}
		nb.val = cv.Interface().(T)
		run.stats.RcFirst++
		return out, nil

	default: // RcAware
		r.box.mu.Lock()
		if r.box.ckptEpoch == run.epoch && r.box.ckptCopy != nil {
			cp := r.box.ckptCopy
			cp.mu.Lock()
			cp.strong++
			cp.mu.Unlock()
			r.box.mu.Unlock()
			run.stats.RcReused++
			return reflect.ValueOf(Rc[T]{box: cp}), nil
		}
		// First visit this epoch: set the flag *before* copying so a
		// cycle through this box reuses the (in-progress) copy.
		nb := &rcBox[T]{strong: 1}
		r.box.ckptEpoch = run.epoch
		r.box.ckptCopy = nb
		val := r.box.val
		r.box.mu.Unlock()
		cv, err := run.clone(reflect.ValueOf(&val).Elem())
		if err != nil {
			return reflect.Value{}, err
		}
		nb.mu.Lock()
		nb.val = cv.Interface().(T)
		nb.mu.Unlock()
		run.stats.RcFirst++
		return reflect.ValueOf(Rc[T]{box: nb}), nil
	}
}

var _ aliased = Rc[int]{}
