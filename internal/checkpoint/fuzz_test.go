package checkpoint_test

import (
	"testing"

	"repro/internal/checkpoint"
)

// fuzzNode is one vertex of the fuzz graph: plain data plus an Rc
// handle that may share its box with other nodes.
type fuzzNode struct {
	ID  int
	Ref checkpoint.Rc[int]
}

// fuzzGraph is the checkpointed root: a slice of unique node pointers
// (sharing happens only through Rc, the structure the engine's modes
// disagree about) plus a plain map.
type fuzzGraph struct {
	Nodes []*fuzzNode
	M     map[int]int
}

// FuzzCheckpointRestore builds an arbitrary Rc-sharing graph from the
// input, checkpoints it under the input-selected mode, mutates the
// original, and asserts the snapshot contract:
//
//  1. Round-trip equality: Materialize reproduces the values as they
//     were at checkpoint time, untouched by later mutation.
//  2. Sharing: RcAware and VisitedSet reproduce the alias structure
//     exactly (nodes that shared a box still do, nodes that did not
//     still do not); Naive duplicates every shared box (Figure 3b).
//  3. Token reuse: a second Materialize yields a fresh, independent
//     clone — mutating the first clone never shows through.
func FuzzCheckpointRestore(f *testing.F) {
	f.Add([]byte{0, 3, 0, 1, 2, 1, 0})          // rc-aware, interleaved sharing
	f.Add([]byte{1, 2, 0, 0, 0})                // naive, one box shared 3x
	f.Add([]byte{2, 5, 4, 3, 2, 1, 0, 1, 2})    // visited-set, mixed
	f.Add([]byte{0, 1, 9})                      // single box
	f.Add([]byte{2, 7, 0, 0, 1, 1, 2, 2, 3, 3}) // paired sharing
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			t.Skip()
		}
		mode := checkpoint.Mode(int(data[0]) % 3)
		nBoxes := int(data[1])%7 + 1
		boxes := make([]checkpoint.Rc[int], nBoxes)
		for i := range boxes {
			boxes[i] = checkpoint.NewRc(i * 100)
		}
		assign := data[2:]
		if len(assign) > 32 {
			assign = assign[:32]
		}
		g := &fuzzGraph{M: make(map[int]int)}
		boxOf := make([]int, len(assign)) // node index -> box index
		for i, b := range assign {
			bi := int(b) % nBoxes
			boxOf[i] = bi
			g.Nodes = append(g.Nodes, &fuzzNode{ID: i, Ref: boxes[bi].Clone()})
			g.M[i] = bi
		}

		e := checkpoint.NewEngine(mode)
		snap, err := e.Checkpoint(g)
		if err != nil {
			t.Fatal(err)
		}

		// Mutate the original after the checkpoint: the snapshot must be
		// isolated from all of it.
		for _, n := range g.Nodes {
			n.ID += 1000
		}
		for _, b := range boxes {
			b.Set(b.Get() + 7)
		}
		g.M[len(assign)+1] = -1

		verify := func(v any) *fuzzGraph {
			t.Helper()
			c, ok := v.(*fuzzGraph)
			if !ok {
				t.Fatalf("materialized %T", v)
			}
			if len(c.Nodes) != len(assign) || len(c.M) != len(g.M)-1 {
				t.Fatalf("clone shape: %d nodes / %d map entries, want %d / %d",
					len(c.Nodes), len(c.M), len(assign), len(g.M)-1)
			}
			for i, n := range c.Nodes {
				if n.ID != i {
					t.Fatalf("node %d: ID %d, want %d (post-checkpoint mutation leaked in)", i, n.ID, i)
				}
				if got, want := n.Ref.Get(), boxOf[i]*100; got != want {
					t.Fatalf("node %d: Rc value %d, want %d", i, got, want)
				}
				if c.M[i] != boxOf[i] {
					t.Fatalf("map entry %d: %d, want %d", i, c.M[i], boxOf[i])
				}
			}
			for i := 0; i < len(c.Nodes); i++ {
				for j := i + 1; j < len(c.Nodes); j++ {
					same := c.Nodes[i].Ref.SameBox(c.Nodes[j].Ref)
					sharedOrig := boxOf[i] == boxOf[j]
					switch mode {
					case checkpoint.Naive:
						// Figure 3b: every handle gets its own duplicate.
						if same {
							t.Fatalf("naive mode shared a box between nodes %d and %d", i, j)
						}
					default: // RcAware, VisitedSet preserve aliasing exactly
						if same != sharedOrig {
							t.Fatalf("%v mode: nodes %d,%d sharing=%v, original sharing=%v",
								mode, i, j, same, sharedOrig)
						}
					}
				}
			}
			return c
		}

		v1, err := snap.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		c1 := verify(v1)

		// Token reuse: wreck the first clone, materialize again, verify
		// the second is pristine and box-disjoint from the first.
		for _, n := range c1.Nodes {
			n.Ref.Set(-999)
			n.ID = -1
		}
		v2, err := snap.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		c2 := verify(v2)
		for i := range c1.Nodes {
			if c1.Nodes[i].Ref.SameBox(c2.Nodes[i].Ref) {
				t.Fatalf("materialized clones share box at node %d: tokens are not independently restorable", i)
			}
		}
	})
}
