//go:build linux

package netport

// The frozen syscall package on linux/amd64 stops short of sendmmsg;
// both numbers are declared here from the kernel's x86_64 table.
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)
