//go:build linux

package netport

// Generic (asm-generic) syscall numbers, as used by arm64.
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)
