package netport

import (
	"testing"
	"time"

	"repro/internal/packet"
)

// wouldDeliver is the independent oracle for the fuzz harness: whether a
// datagram of these bytes should reach a ring. It re-derives the answer
// from packet.Parse on a fresh buffer, so the port's own path is never
// trusted to grade itself.
func wouldDeliver(data []byte) bool {
	if len(data) >= MbufSize {
		return false // kernel-truncated reads are rejected
	}
	pkt := &packet.Packet{Data: append(make([]byte, 0, len(data)), data...)}
	return pkt.Parse() == nil
}

// FuzzNetportDecode fuzzes the batched socket-read → packet.Parse →
// mbuf-init ingress path. Each fuzz input rides mid-burst between two
// valid frames — through the same stage/dispatch code the receive loop
// runs — so a malformed datagram must shed without poisoning the batch
// around it. The invariants are the ones the wire demands of a port that
// cannot trust its peers:
//
//   - no input panics the dispatch path;
//   - every datagram in the burst is accounted exactly once — delivered
//     to a ring or counted under exactly one drop cause;
//   - delivery matches an independent parse of each datagram: the valid
//     neighbors of a malformed datagram survive, the malformed one
//     sheds parse_error;
//   - a shed datagram is freed, never leaked: after draining the rings
//     the pool balances to capacity;
//   - whatever is delivered parsed cleanly and sits on the queue its
//     RSS hash selects.
//
// The seed corpus covers the adversarial classes the satellite spec
// names: truncated frames, oversized (>= MbufSize) datagrams the kernel
// would truncate, boundary sizes either side of MbufSize, and
// non-UDP/non-IPv4 frames.
func FuzzNetportDecode(f *testing.F) {
	valid, err := packet.Build(nil, testSpec())
	if err != nil {
		f.Fatal(err)
	}
	tcpSpec := testSpec()
	tcpSpec.Tuple.Proto = packet.ProtoTCP
	tcp, err := packet.Build(nil, tcpSpec)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(tcp)
	f.Add(valid[:10])                    // truncated mid-Ethernet
	f.Add(valid[:packet.EthHeaderLen+4]) // truncated mid-IPv4
	oversize := make([]byte, MbufSize+64)
	copy(oversize, valid)
	f.Add(oversize) // oversized: arrives truncated to MbufSize
	exact := make([]byte, MbufSize)
	copy(exact, valid)
	f.Add(exact) // exactly MbufSize: indistinguishable from truncation
	under := make([]byte, MbufSize-1)
	copy(under, valid)
	f.Add(under) // one under the boundary: largest acceptable read
	ospf := append([]byte(nil), valid...)
	ospf[packet.EthHeaderLen+9] = 89
	f.Add(ospf) // non-UDP/TCP transport
	arp := append([]byte(nil), valid...)
	arp[12], arp[13] = 0x08, 0x06
	f.Add(arp) // non-IPv4 ethertype
	f.Add([]byte{})
	f.Add(make([]byte, 64))

	neighborA, neighborB := flowFrame(f, 1), flowFrame(f, 2)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Nanosecond PollWait: empty-queue polls must not stall the fuzzer.
		p, err := newPort(Config{Queues: 4, RingSize: 16, PoolSize: 64,
			CacheSize: 4, BatchSize: 8, PollWait: time.Nanosecond})
		if err != nil {
			t.Fatal(err)
		}
		// The fuzz input mid-batch between two known-valid frames, run
		// through the genuine batched dispatch.
		burst := [][]byte{neighborA, data, neighborB}
		p.injectBatch(burst)

		if got := p.Stats.RxDatagrams.Load(); got != uint64(len(burst)) {
			t.Fatalf("rx_datagrams=%d after a %d-datagram burst", got, len(burst))
		}
		want := uint64(0)
		for _, d := range burst {
			if wouldDeliver(d) {
				want++
			}
		}
		delivered := p.Stats.RxPackets.Load()
		if delivered+p.Stats.drops() != uint64(len(burst)) {
			t.Fatalf("burst accounted %d times (delivered=%d ring_full=%d parse_error=%d pool_empty=%d)",
				delivered+p.Stats.drops(), delivered,
				p.Stats.RingFull.Load(), p.Stats.ParseError.Load(), p.Stats.PoolEmpty.Load())
		}
		// Rings (4x16) and pool (64) dwarf the burst, so delivery must
		// match the oracle exactly: the neighbors always survive, and a
		// malformed mid-batch datagram sheds as parse_error alone.
		if delivered != want {
			t.Fatalf("delivered %d of a burst whose datagrams parse to %d (parse_error=%d)",
				delivered, want, p.Stats.ParseError.Load())
		}
		if shed := p.Stats.ParseError.Load(); shed != uint64(len(burst))-want {
			t.Fatalf("parse_error=%d, want %d", shed, uint64(len(burst))-want)
		}

		// Whatever was delivered must be a cleanly parsed frame on the
		// queue its hash selects; drain and free it.
		buf := make([]*packet.Packet, 8)
		var drained uint64
		for q := 0; q < p.Queues(); q++ {
			n := p.RxBurstQueue(q, buf)
			for _, pkt := range buf[:n] {
				if !pkt.Parsed() {
					t.Fatal("unparsed packet delivered")
				}
				if want := p.RSSQueue(pkt.Tuple()); want != q {
					t.Fatalf("flow %s delivered to queue %d, RSS says %d", pkt.Tuple(), q, want)
				}
			}
			p.FreeQueue(q, buf[:n])
			drained += uint64(n)
		}
		if drained != delivered {
			t.Fatalf("drained %d, delivered counter says %d", drained, delivered)
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		if got := p.PoolAvailable(); got != p.PoolCapacity() {
			t.Fatalf("pool: %d of %d mbufs after close — a datagram leaked", got, p.PoolCapacity())
		}
	})
}
