package netport

import (
	"testing"
	"time"

	"repro/internal/packet"
)

// FuzzNetportDecode fuzzes the socket-read → packet.Parse → mbuf-init
// ingress path with arbitrary datagram payloads. The invariants are the
// ones the wire demands of a port that cannot trust its peers:
//
//   - no input panics the deliver path;
//   - every datagram is accounted exactly once — delivered to a ring or
//     counted under exactly one drop cause;
//   - a malformed datagram is freed, never leaked: after draining the
//     rings the pool balances to capacity;
//   - whatever is delivered parsed cleanly and is steered to the queue
//     its RSS hash selects.
//
// The seed corpus covers the adversarial classes the satellite spec
// names: truncated frames, oversized (> MbufSize) datagrams the kernel
// would truncate, and non-UDP/non-IPv4 frames.
func FuzzNetportDecode(f *testing.F) {
	valid, err := packet.Build(nil, testSpec())
	if err != nil {
		f.Fatal(err)
	}
	tcpSpec := testSpec()
	tcpSpec.Tuple.Proto = packet.ProtoTCP
	tcp, err := packet.Build(nil, tcpSpec)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(tcp)
	f.Add(valid[:10])                    // truncated mid-Ethernet
	f.Add(valid[:packet.EthHeaderLen+4]) // truncated mid-IPv4
	oversize := make([]byte, MbufSize+64)
	copy(oversize, valid)
	f.Add(oversize) // oversized: arrives truncated to MbufSize
	exact := make([]byte, MbufSize)
	copy(exact, valid)
	f.Add(exact) // exactly MbufSize: indistinguishable from truncation
	ospf := append([]byte(nil), valid...)
	ospf[packet.EthHeaderLen+9] = 89
	f.Add(ospf) // non-UDP/TCP transport
	arp := append([]byte(nil), valid...)
	arp[12], arp[13] = 0x08, 0x06
	f.Add(arp) // non-IPv4 ethertype
	f.Add([]byte{})
	f.Add(make([]byte, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Nanosecond PollWait: empty-queue polls must not stall the fuzzer.
		p, err := newPort(Config{Queues: 4, RingSize: 16, PoolSize: 64, CacheSize: 4, PollWait: time.Nanosecond})
		if err != nil {
			t.Fatal(err)
		}
		p.inject(data)

		if got := p.Stats.RxDatagrams.Load(); got != 1 {
			t.Fatalf("rx_datagrams=%d after one datagram", got)
		}
		delivered := p.Stats.RxPackets.Load()
		if delivered+p.Stats.drops() != 1 {
			t.Fatalf("datagram accounted %d times (delivered=%d ring_full=%d parse_error=%d pool_empty=%d)",
				delivered+p.Stats.drops(), delivered,
				p.Stats.RingFull.Load(), p.Stats.ParseError.Load(), p.Stats.PoolEmpty.Load())
		}
		if len(data) >= MbufSize && delivered != 0 {
			t.Fatalf("oversized datagram (%d bytes) delivered", len(data))
		}

		// Whatever was delivered must be a cleanly parsed frame on the
		// queue its hash selects; drain and free it.
		buf := make([]*packet.Packet, 4)
		var drained uint64
		for q := 0; q < p.Queues(); q++ {
			n := p.RxBurstQueue(q, buf)
			for _, pkt := range buf[:n] {
				if !pkt.Parsed() {
					t.Fatal("unparsed packet delivered")
				}
				if want := p.RSSQueue(pkt.Tuple()); want != q {
					t.Fatalf("flow %s delivered to queue %d, RSS says %d", pkt.Tuple(), q, want)
				}
			}
			p.FreeQueue(q, buf[:n])
			drained += uint64(n)
		}
		if drained != delivered {
			t.Fatalf("drained %d, delivered counter says %d", drained, delivered)
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		if got := p.PoolAvailable(); got != p.PoolCapacity() {
			t.Fatalf("pool: %d of %d mbufs after close — the datagram leaked", got, p.PoolCapacity())
		}
	})
}
