// Batched socket I/O boundary. The hot path's syscall cost is amortized
// by moving whole bursts of datagrams across the kernel boundary per
// call: recvmmsg/sendmmsg on Linux (batch_linux.go), and a portable
// one-message-per-call fallback everywhere else, so non-Linux builds
// compile and every test still passes — just without the amortization.
//
// batchConn is deliberately tiny so tests can substitute fakes (the
// partial-send regression test injects a WriteBatch that accepts k<n
// messages mid-burst) and so the port and the pktgen share one
// implementation of the boundary.
package netport

import (
	"net"
)

// batchConn is the batched-syscall edge of a UDP socket.
type batchConn interface {
	// ReadBatch fills bufs[i] with one datagram each, in order, and
	// returns how many datagrams were read, with their lengths in
	// lens[:n]. It blocks until at least one datagram (or an error) is
	// available; a datagram longer than its buffer is silently truncated
	// to the buffer length, exactly like a plain socket read.
	ReadBatch(bufs [][]byte, lens []int) (int, error)
	// WriteBatch hands each payload to the kernel as one datagram
	// addressed to dst (nil dst = the socket's connected peer) and
	// returns how many the kernel accepted. One kernel attempt: a short
	// return means the socket refused mid-burst (buffer full, error);
	// the caller decides whether the tail is retried or drop-tailed.
	WriteBatch(payloads [][]byte, dst *net.UDPAddr) (int, error)
	// BatchCap reports the largest burst a single Read/WriteBatch call
	// can move — 1 for the portable fallback — so callers size their
	// staging to what one syscall can actually carry.
	BatchCap() int
}

// genericConn is the portable fallback: one datagram per syscall through
// the plain net.UDPConn API. Linux builds never construct it on the hot
// path, but it compiles (and is tested) everywhere so the fallback can't
// rot.
type genericConn struct {
	c *net.UDPConn
}

func (g *genericConn) BatchCap() int { return 1 }

func (g *genericConn) ReadBatch(bufs [][]byte, lens []int) (int, error) {
	if len(bufs) == 0 {
		return 0, nil
	}
	n, err := g.c.Read(bufs[0])
	if err != nil {
		return 0, err
	}
	lens[0] = n
	return 1, nil
}

func (g *genericConn) WriteBatch(payloads [][]byte, dst *net.UDPAddr) (int, error) {
	for i, p := range payloads {
		var err error
		if dst == nil {
			_, err = g.c.Write(p)
		} else {
			_, err = g.c.WriteToUDP(p, dst)
		}
		if err != nil {
			return i, err
		}
	}
	return len(payloads), nil
}
