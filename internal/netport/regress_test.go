package netport

import (
	"net"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/packet"
)

// TestTxFailedWriteAccounting (regression): a failed egress write must
// count only TxErrors — never TxPackets/TxBytes or the returned sent
// count — while still recycling the buffers. The old code incremented
// the delivered counters before checking the write error, so a dead
// egress socket reported full throughput.
func TestTxFailedWriteAccounting(t *testing.T) {
	// A real port whose socket dies under it: every write fails
	// deterministically with ErrClosed.
	p, err := Open(Config{Listen: "127.0.0.1:0", Queues: 1, RingSize: 64,
		TxTarget: "127.0.0.1:9"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.conns[0].Close()
	<-p.loops[0].done // receive loop has exited; the socket is fully dead
	leakcheck.Pool(t, "mbufs", p.PoolAvailable)

	var pkts []*packet.Packet
	for i := 0; i < 4; i++ {
		pkt, err := p.pool.Get()
		if err != nil {
			t.Fatal(err)
		}
		pkt.Data = append(pkt.Data[:0], flowFrame(t, i)...)
		pkts = append(pkts, pkt)
	}
	if sent := p.TxBurstQueue(0, pkts); sent != 0 {
		t.Fatalf("TxBurstQueue returned %d on an all-failed burst, want 0", sent)
	}
	if got := p.Stats.TxErrors.Load(); got != 4 {
		t.Fatalf("tx_errors = %d, want 4", got)
	}
	if tp, tb := p.Stats.TxPackets.Load(), p.Stats.TxBytes.Load(); tp != 0 || tb != 0 {
		t.Fatalf("failed writes counted as delivered: tx_packets=%d tx_bytes=%d", tp, tb)
	}
	// The buffers must be back in circulation despite the wire errors —
	// leakcheck verifies the pool balance at cleanup, and the queue cache
	// should hold all four right now.
	rq := p.queues[0]
	rq.mu.Lock()
	cached := rq.cache.Len()
	rq.mu.Unlock()
	if cached != 4 {
		t.Fatalf("queue cache holds %d buffers, want 4 recycled", cached)
	}
}

// TestTxSinkModeCountsAll: with no tx target every frame "transmits"
// (pure accounting), so the sink path still reports full delivery.
func TestTxSinkModeCountsAll(t *testing.T) {
	p, err := newPort(Config{Queues: 1, RingSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	leakcheck.Pool(t, "mbufs", p.PoolAvailable)

	var pkts []*packet.Packet
	bytes := 0
	for i := 0; i < 3; i++ {
		pkt, err := p.pool.Get()
		if err != nil {
			t.Fatal(err)
		}
		pkt.Data = append(pkt.Data[:0], flowFrame(t, i)...)
		bytes += pkt.Len()
		pkts = append(pkts, pkt)
	}
	if sent := p.TxBurstQueue(0, pkts); sent != 3 {
		t.Fatalf("sink TxBurstQueue returned %d, want 3", sent)
	}
	if tp, tb := p.Stats.TxPackets.Load(), p.Stats.TxBytes.Load(); tp != 3 || tb != uint64(bytes) {
		t.Fatalf("sink accounting: tx_packets=%d tx_bytes=%d, want 3/%d", tp, tb, bytes)
	}
	if te := p.Stats.TxErrors.Load(); te != 0 {
		t.Fatalf("tx_errors = %d, want 0", te)
	}
}

// udpSink binds a throwaway UDP listener for pktgen to send at.
func udpSink(t *testing.T) *net.UDPConn {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// TestPktgenStopInterruptsPacing (regression): closing stop while the
// generator is parked inside a pacing sleep must end the run promptly.
// The old pacing sleep was a plain time.Sleep: at 10 pps the first
// batch boundary owes ~6 s of sleep, and a stop during it was ignored
// until the sleep expired.
func TestPktgenStopInterruptsPacing(t *testing.T) {
	sink := udpSink(t)
	gen := &Pktgen{Target: sink.LocalAddr().String(), Base: testSpec(), PPS: 10}
	stop := make(chan struct{})
	done := make(chan int, 1)
	start := time.Now()
	go func() {
		sent, err := gen.Run(stop)
		if err != nil {
			t.Error(err)
		}
		done <- sent
	}()
	// Give the generator time to burn through the first paceBatch sends
	// and park in the pacing sleep, then stop it.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	select {
	case sent := <-done:
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("stop took %v to take effect", elapsed)
		}
		// At 10 pps the run owes one send every 100ms; anything near the
		// batch size means it ran unpaced to the boundary and parked.
		if sent == 0 {
			t.Fatal("generator sent nothing before stop")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("generator ignored stop (parked in an uninterruptible pacing sleep?)")
	}
}

// TestPktgenShortRunPaces (regression): a run shorter than paceBatch
// must still honor PPS. The old loop only paced at batch boundaries, so
// Count < paceBatch runs finished instantly regardless of PPS.
func TestPktgenShortRunPaces(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	sink := udpSink(t)
	count := paceBatch / 2
	pps := 1000 // ideal duration: count/pps = 32ms
	gen := &Pktgen{Target: sink.LocalAddr().String(), Base: testSpec(), Count: count, PPS: pps}
	start := time.Now()
	sent, err := gen.Run(nil)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if sent != count {
		t.Fatalf("sent %d, want %d", sent, count)
	}
	ideal := time.Duration(count) * time.Second / time.Duration(pps)
	if elapsed < ideal*3/4 {
		t.Fatalf("short run finished in %v, want ≈%v (tail pacing missing)", elapsed, ideal)
	}
	if elapsed > ideal*20 {
		t.Fatalf("short run took %v, want ≈%v", elapsed, ideal)
	}
}
