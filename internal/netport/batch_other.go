//go:build !linux || !(amd64 || arm64)

// Portable stand-ins for the Linux batched-syscall fast path: one
// datagram per call, no SO_REUSEPORT groups. Open falls back to the
// single-socket software distributor on these platforms, so the port's
// semantics — exact per-cause accounting, drop-tail shedding, flow
// affinity via RETA steering — are identical; only the syscall
// amortization is missing.
package netport

import (
	"errors"
	"net"
)

// reusePortAvailable reports whether Open can build an SO_REUSEPORT
// socket group on this platform.
const reusePortAvailable = false

func newBatchConn(c *net.UDPConn) (batchConn, error) {
	return &genericConn{c: c}, nil
}

func listenReusePort(string) (*net.UDPConn, error) {
	return nil, errors.New("netport: SO_REUSEPORT groups unsupported on this platform")
}
