// End-to-end loopback tier: a pktgen goroutine sends overlay datagrams
// through the kernel's UDP loopback into a netport, a supervised
// 4-worker sharded pipeline (parse → firewall → maglev) consumes them
// with RSS flow affinity, and transmitted frames leave through a second
// socket where a sink counts them. External test package: the pipeline
// under test is the real netbricks runtime with the real NF operators,
// exactly what `nf-pipeline -listen` runs.
package netport_test

import (
	"encoding/json"
	"net"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dpdk"
	"repro/internal/firewall"
	"repro/internal/leakcheck"
	"repro/internal/maglev"
	"repro/internal/netbricks"
	"repro/internal/netport"
	"repro/internal/packet"
	"repro/internal/session"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// e2ePipeline builds the per-worker direct pipeline factory: the same
// parse → firewall → maglev chain the chaos tier runs, allowing the
// 10.99.0.0/16 destinations DefaultSpec traffic carries.
func e2ePipeline(t *testing.T) func(w int) *netbricks.Pipeline {
	t.Helper()
	db := firewall.NewDB(firewall.Deny)
	if _, err := db.AddRule(packet.Addr(10, 99, 0, 0), 16, firewall.Rule{ID: 1, Action: firewall.Allow}); err != nil {
		t.Fatal(err)
	}
	backends := []maglev.Backend{
		{Name: "be-0", IP: packet.Addr(10, 1, 0, 1)},
		{Name: "be-1", IP: packet.Addr(10, 1, 0, 2)},
	}
	return func(w int) *netbricks.Pipeline {
		lb, err := maglev.NewBalancer(backends, maglev.DefaultTableSize)
		if err != nil {
			t.Errorf("worker %d: %v", w, err)
			return netbricks.NewPipeline()
		}
		return netbricks.NewPipeline(
			netbricks.Parse{},
			firewall.Operator{DB: db},
			maglev.Operator{LB: lb},
		)
	}
}

// sinkListen binds a loopback UDP socket and counts datagrams arriving
// on it until the socket closes.
func sinkListen(t *testing.T) (addr string, count *atomic.Uint64) {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	count = new(atomic.Uint64)
	go func() {
		buf := make([]byte, netport.MbufSize)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
			count.Add(1)
		}
	}()
	return conn.LocalAddr().String(), count
}

// waitQuiescent polls until the port's datagram counter stops moving, so
// accounting assertions see every datagram the kernel had in flight.
func waitQuiescent(t *testing.T, p *netport.Port) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	prev := p.Stats.RxDatagrams.Load()
	for {
		time.Sleep(50 * time.Millisecond)
		cur := p.Stats.RxDatagrams.Load()
		if cur == prev {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("port never quiesced: rx_datagrams still moving (%d)", cur)
		}
		prev = cur
	}
}

// TestE2ELoopbackPipeline is the acceptance path: pktgen → UDP loopback
// → netport batched ingress (SO_REUSEPORT kernel fan-out on Linux, the
// software distributor elsewhere) → supervised 4-worker pipeline → tx
// socket. Asserts zero mbuf leaks, every worker seeing traffic (fan-out
// balance), exact datagram accounting, and forwarded frames reaching
// the sink.
func TestE2ELoopbackPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e loopback tier skipped in -short")
	}
	const (
		workers   = 4
		batchSize = 32
		flows     = 64
		sendCount = 20000
	)
	sinkAddr, sinkGot := sinkListen(t)
	rec := telemetry.NewRecorder(1024)
	port, err := netport.Open(netport.Config{
		Listen:    "127.0.0.1:0",
		Queues:    workers,
		RingSize:  1024,
		BatchSize: batchSize,
		ReusePort: true, // kernel fan-out on Linux; silent distributor fallback elsewhere
		PollWait:  20 * time.Millisecond, // 8 idle polls = 160ms end-of-traffic grace
		TxTarget:  sinkAddr,
		Recorder:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	leakcheck.Pool(t, "netport", port.PoolAvailable)
	t.Cleanup(func() { port.Close() }) // LIFO: Close settles the pool before leakcheck reads it

	gen := &netport.Pktgen{
		Target:  port.Addr().String(),
		Base:    dpdk.DefaultSpec(),
		Flows:   flows,
		Sockets: 32, // outer source-port entropy for the REUSEPORT hash
		Batch:   batchSize,
		PPS:     40000, // paced under the rx loop's drain rate: kernel socket-buffer drops stay out of the accounting
		Count:   sendCount,
	}
	genDone := make(chan error, 1)
	go func() {
		_, err := gen.Run(nil)
		genDone <- err
	}()

	r := &netbricks.ShardedRunner{
		Port: port, Workers: workers, BatchSize: batchSize,
		NewDirect: e2ePipeline(t),
		Supervise: true,
	}
	stats, err := r.Run(sendCount) // traffic end, not the batch budget, terminates the run
	if err != nil {
		t.Fatal(err)
	}
	if err := <-genDone; err != nil {
		t.Fatal(err)
	}
	waitQuiescent(t, port)

	// Exact accounting: every datagram read off the socket was delivered
	// or counted under exactly one drop cause.
	rx := port.Stats.RxDatagrams.Load()
	delivered := port.Stats.RxPackets.Load()
	drops := port.Stats.RingFull.Load() + port.Stats.ParseError.Load() + port.Stats.PoolEmpty.Load()
	if delivered+drops != rx {
		t.Fatalf("accounting: rx_datagrams=%d != delivered=%d + drops=%d", rx, delivered, drops)
	}
	if port.Stats.ParseError.Load() != 0 || port.Stats.PoolEmpty.Load() != 0 {
		t.Fatalf("well-formed paced traffic shed: parse_error=%d pool_empty=%d",
			port.Stats.ParseError.Load(), port.Stats.PoolEmpty.Load())
	}
	if delivered == 0 {
		t.Fatal("no datagrams crossed the loopback into the pipeline")
	}

	// The pipeline processed what the port delivered, minus at most what
	// Run's final Drain reclaimed from the rings after the workers quit.
	if got := stats.Packets + stats.Drops; got > delivered {
		t.Fatalf("pipeline accounted %d packets, port delivered only %d", got, delivered)
	}
	t.Logf("e2e: sent=%d rx=%d delivered=%d pipeline=%d (fw-dropped %d) tx=%d sink=%d ring_full=%d",
		sendCount, rx, delivered, stats.Packets, stats.Drops,
		port.Stats.TxPackets.Load(), sinkGot.Load(), port.Stats.RingFull.Load())

	// RSS balance: 64 flows across 4 queues — every worker must have
	// seen traffic, or flow steering is broken.
	for w, ws := range r.WorkerSnapshots() {
		if ws.Packets == 0 {
			t.Errorf("worker %d processed no packets: RSS steering starved its queue", w)
		}
	}

	// Egress: forwarded frames left through the tx socket and reached the
	// sink (the kernel may shed some on the sink's receive buffer, so the
	// bound is one-sided).
	if tx := port.Stats.TxPackets.Load(); tx == 0 {
		t.Fatal("pipeline forwarded nothing")
	} else if got := sinkGot.Load(); got == 0 || got > tx {
		t.Fatalf("sink saw %d datagrams, port transmitted %d", got, tx)
	}
}

// TestE2ETraceLoopback is the tracing acceptance path: the full four-NF
// pipeline (parse → firewall → maglev → session) under live loopback
// traffic with a sampling tracer armed at netport ingress. Asserts that
// /debug/traces serves at least one complete trace whose latency vector
// covers ingress, all four NF stages, the supervised mailbox hops, and
// TX — and that span conservation (armed == completed + aborted) holds
// once the port closes.
func TestE2ETraceLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e loopback tier skipped in -short")
	}
	const (
		workers   = 2
		batchSize = 32
		sendCount = 8000
	)
	rec := telemetry.NewRecorder(1024)
	tracer := trace.New(trace.Config{SampleEvery: 16, Ring: 64, Recorder: rec})
	t.Cleanup(func() { // registered first -> runs last, after port.Close drains
		armed, completed, aborted := tracer.Counts()
		t.Logf("trace conservation: armed=%d completed=%d aborted=%d", armed, completed, aborted)
		if armed != completed+aborted {
			t.Errorf("trace span leak: armed %d != completed %d + aborted %d",
				armed, completed, aborted)
		}
	})
	sinkAddr, _ := sinkListen(t)
	port, err := netport.Open(netport.Config{
		Listen:    "127.0.0.1:0",
		Queues:    workers,
		RingSize:  1024,
		BatchSize: batchSize,
		ReusePort: true,
		PollWait:  20 * time.Millisecond,
		TxTarget:  sinkAddr,
		Recorder:  rec,
		Tracer:    tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	leakcheck.Pool(t, "traced netport", port.PoolAvailable)
	t.Cleanup(func() { port.Close() })

	gen := &netport.Pktgen{
		Target:  port.Addr().String(),
		Base:    dpdk.DefaultSpec(),
		Flows:   64,
		Sockets: 32,
		Batch:   batchSize,
		PPS:     40000,
		Count:   sendCount,
	}
	genDone := make(chan error, 1)
	go func() {
		_, err := gen.Run(nil)
		genDone <- err
	}()

	db := firewall.NewDB(firewall.Deny)
	if _, err := db.AddRule(packet.Addr(10, 99, 0, 0), 16, firewall.Rule{ID: 1, Action: firewall.Allow}); err != nil {
		t.Fatal(err)
	}
	backends := []maglev.Backend{
		{Name: "be-0", IP: packet.Addr(10, 1, 0, 1)},
		{Name: "be-1", IP: packet.Addr(10, 1, 0, 2)},
	}
	r := &netbricks.ShardedRunner{
		Port: port, Workers: workers, BatchSize: batchSize,
		Supervise: true, // mailbox hops must appear in the traces
		Tracer:    tracer,
		NewDirect: func(w int) *netbricks.Pipeline {
			lb, err := maglev.NewBalancer(backends, maglev.DefaultTableSize)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return netbricks.NewPipeline()
			}
			return netbricks.NewPipeline(
				netbricks.Parse{},
				firewall.Operator{DB: db},
				maglev.Operator{LB: lb},
				session.Operator{T: session.NewTable()},
			)
		},
	}
	if _, err := r.Run(sendCount); err != nil {
		t.Fatal(err)
	}
	if err := <-genDone; err != nil {
		t.Fatal(err)
	}
	waitQuiescent(t, port)

	armed, completed, _ := tracer.Counts()
	if armed == 0 {
		t.Fatal("no spans armed: the ingress sampler never fired")
	}
	if completed == 0 {
		t.Fatal("no spans completed: no traced packet reached TX")
	}

	// The acceptance bar: at least one dumped trace carries a full
	// per-stage latency vector across every hop of the supervised path.
	wantStages := []trace.Stage{
		trace.StageIngress, trace.StageMailboxSend, trace.StageMailboxRecv,
		trace.StageParse, trace.StageFirewall, trace.StageMaglev,
		trace.StageSession, trace.StageTx,
	}
	full := 0
	for _, rcd := range tracer.Dump() {
		ok := true
		for _, st := range wantStages {
			if rcd.Stamps[st] == 0 {
				ok = false
				break
			}
		}
		if ok {
			full++
		}
	}
	if full == 0 {
		t.Fatalf("no trace visited every stage; dumped %d traces", len(tracer.Dump()))
	}
	t.Logf("traces: %d armed, %d completed, %d with the full %d-stage vector",
		armed, completed, full, len(wantStages))

	// The admin surface serves the same vectors as JSON.
	w := httptest.NewRecorder()
	tracer.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces", nil))
	var body struct {
		Enabled bool `json:"enabled"`
		Traces  []struct {
			ID      uint64 `json:"id"`
			TotalNS int64  `json:"total_ns"`
			Stages  []struct {
				Stage string `json:"stage"`
				Nanos int64  `json:"nanos"`
			} `json:"stages"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("/debug/traces JSON: %v", err)
	}
	if !body.Enabled || len(body.Traces) == 0 {
		t.Fatalf("/debug/traces: enabled=%v traces=%d", body.Enabled, len(body.Traces))
	}
	fullJSON := 0
	for _, tr := range body.Traces {
		if len(tr.Stages) == len(wantStages) && tr.TotalNS > 0 {
			fullJSON++
		}
	}
	if fullJSON == 0 {
		t.Fatal("/debug/traces serves no complete per-stage latency vector")
	}

	// /debug/alloc attributes the traced packets' allocation deltas.
	aw := httptest.NewRecorder()
	tracer.AllocHandler().ServeHTTP(aw, httptest.NewRequest("GET", "/debug/alloc", nil))
	var alloc struct {
		Enabled bool `json:"enabled"`
		Stages  []struct {
			Stage   string `json:"stage"`
			Samples uint64 `json:"samples"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(aw.Body.Bytes(), &alloc); err != nil {
		t.Fatalf("/debug/alloc JSON: %v", err)
	}
	sampled := uint64(0)
	for _, row := range alloc.Stages {
		sampled += row.Samples
	}
	if !alloc.Enabled || sampled == 0 {
		t.Fatalf("/debug/alloc: enabled=%v total samples=%d", alloc.Enabled, sampled)
	}
}

// TestE2EOverloadSheds drives deliberate 2x-style overload: tiny rings
// and no workers draining, so every ring fills to capacity and the
// remainder is shed ring_full — exactly, datagram for datagram. Then the
// workers start, the backlog drains, backpressure clears, and the pool
// balances.
func TestE2EOverloadSheds(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e loopback tier skipped in -short")
	}
	const (
		queues   = 2
		ringSize = 16 // power of two: ring capacity == RingSize
		blast    = 2000
	)
	rec := telemetry.NewRecorder(4096)
	port, err := netport.Open(netport.Config{
		Listen:   "127.0.0.1:0",
		Queues:   queues,
		RingSize: ringSize,
		PollWait: 10 * time.Millisecond,
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	leakcheck.Pool(t, "netport under overload", port.PoolAvailable)
	t.Cleanup(func() { port.Close() })

	// Blast unpaced with nobody polling: the rings must fill and hold.
	gen := &netport.Pktgen{
		Target: port.Addr().String(),
		Base:   dpdk.DefaultSpec(),
		Flows:  64,
		Count:  blast,
	}
	if _, err := gen.Run(nil); err != nil {
		t.Fatal(err)
	}
	waitQuiescent(t, port)

	// Exact shed accounting: both rings full, everything else ring_full.
	rx := port.Stats.RxDatagrams.Load()
	delivered := port.Stats.RxPackets.Load()
	if want := uint64(queues * ringSize); delivered != want {
		t.Fatalf("delivered %d packets, want exactly the ring capacity %d", delivered, want)
	}
	if shed := port.Stats.RingFull.Load(); shed != rx-delivered {
		t.Fatalf("ring_full=%d, want rx_datagrams-delivered=%d", shed, rx-delivered)
	} else if shed == 0 {
		t.Fatal("overload blast shed nothing: rings never filled")
	}
	if port.Stats.ParseError.Load() != 0 || port.Stats.PoolEmpty.Load() != 0 {
		t.Fatalf("unexpected shed causes: parse_error=%d pool_empty=%d",
			port.Stats.ParseError.Load(), port.Stats.PoolEmpty.Load())
	}
	// Both queues sit above the high watermark.
	if bp := port.Stats.Backpressure.Load(); bp != int64(queues) {
		t.Fatalf("backpressure gauge %v, want %d (both rings full)", bp, queues)
	}
	// Every shed datagram is in the flight recorder as an EvDrop.
	var drops int
	for _, ev := range rec.Dump() {
		if ev.Kind == telemetry.EvDrop && ev.Arg == netport.DropRingFull {
			drops++
		}
	}
	if uint64(drops) != port.Stats.RingFull.Load() {
		t.Fatalf("flight recorder holds %d ring_full drops, counters say %d", drops, port.Stats.RingFull.Load())
	}

	// Now the workers arrive: drain the backlog through the pipeline.
	// Backpressure must clear and every mbuf must come home.
	r := &netbricks.ShardedRunner{
		Port: port, Workers: queues, BatchSize: 8,
		NewDirect: e2ePipeline(t),
	}
	stats, err := r.Run(blast)
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Packets + stats.Drops; got != delivered {
		t.Fatalf("drain processed %d packets, rings held %d", got, delivered)
	}
	if bp := port.Stats.Backpressure.Load(); bp != 0 {
		t.Fatalf("backpressure gauge still %v after drain", bp)
	}
	// leakcheck asserts pool conservation at cleanup, after Close.
}
