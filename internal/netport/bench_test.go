// Loopback throughput bench: pktgen → kernel UDP loopback → netport →
// supervised 4-worker sharded pipeline (parse → firewall → maglev).
// Unlike the in-process pipeline benches this pays for real syscalls on
// both sides of the port — amortized by recvmmsg/sendmmsg batches — so
// the number is a floor on what the runtime sustains with a kernel in
// the loop. The overload variant offers more than the pipeline drains
// into deliberately small rings, so shedding happens at the rings where
// the port's exact per-cause counters see it: shed_pps comes from
// ring_full/parse_error/pool_empty, not from inferred socket loss.
package netport_test

import (
	"testing"
	"time"

	"repro/internal/dpdk"
	"repro/internal/firewall"
	"repro/internal/maglev"
	"repro/internal/netbricks"
	"repro/internal/netport"
	"repro/internal/packet"
	"repro/internal/telemetry/trace"
)

// benchPipeline mirrors e2ePipeline without the testing.T plumbing.
func benchPipeline(b *testing.B) func(w int) *netbricks.Pipeline {
	b.Helper()
	db := firewall.NewDB(firewall.Deny)
	if _, err := db.AddRule(packet.Addr(10, 99, 0, 0), 16, firewall.Rule{ID: 1, Action: firewall.Allow}); err != nil {
		b.Fatal(err)
	}
	backends := []maglev.Backend{
		{Name: "be-0", IP: packet.Addr(10, 1, 0, 1)},
		{Name: "be-1", IP: packet.Addr(10, 1, 0, 2)},
	}
	return func(w int) *netbricks.Pipeline {
		lb, err := maglev.NewBalancer(backends, maglev.DefaultTableSize)
		if err != nil {
			b.Errorf("worker %d: %v", w, err)
			return netbricks.NewPipeline()
		}
		return netbricks.NewPipeline(
			netbricks.Parse{},
			firewall.Operator{DB: db},
			maglev.Operator{LB: lb},
		)
	}
}

// benchOpts parameterizes one loopback bench configuration.
type benchOpts struct {
	pps     int // offered rate (0 = unpaced: the generator's ceiling)
	ring    int
	batch   int  // syscall burst on both sides
	sockets int  // pktgen source sockets (REUSEPORT entropy)
	reuse   bool // kernel fan-out instead of the software distributor
	sample  int  // trace one in this many ingress frames (0 = tracing off)
}

func benchLoopback(b *testing.B, o benchOpts) {
	const workers = 4
	var tracer *trace.Tracer
	if o.sample > 0 {
		tracer = trace.New(trace.Config{SampleEvery: o.sample})
	}
	port, err := netport.Open(netport.Config{
		Listen:     "127.0.0.1:0",
		Queues:     workers,
		RingSize:   o.ring,
		BatchSize:  o.batch,
		ReusePort:  o.reuse,
		ReadBuffer: 1 << 20,
		PollWait:   2 * time.Millisecond, // short end-of-traffic grace: 8 idle polls = 16ms tail
		Tracer:     tracer,
	})
	if err != nil {
		b.Fatal(err)
	}
	gen := &netport.Pktgen{
		Target:  port.Addr().String(),
		Base:    dpdk.DefaultSpec(),
		Flows:   64,
		Sockets: o.sockets,
		Batch:   o.batch,
		PPS:     o.pps,
		Count:   b.N,
	}
	r := &netbricks.ShardedRunner{
		Port: port, Workers: workers, BatchSize: o.batch,
		NewDirect: benchPipeline(b),
		Supervise: true,
		Tracer:    tracer,
	}

	b.ResetTimer()
	start := time.Now()
	genDone := make(chan error, 1)
	go func() {
		_, err := gen.Run(nil)
		genDone <- err
	}()
	stats, err := r.Run(b.N)
	elapsed := time.Since(start)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if err := <-genDone; err != nil {
		b.Fatal(err)
	}

	delivered := port.Stats.RxPackets.Load()
	// Shed load from the port's exact per-cause counters — what ingress
	// consciously dropped, with ring_full carrying the overload story.
	shed := port.Stats.RingFull.Load() + port.Stats.ParseError.Load() + port.Stats.PoolEmpty.Load()
	b.ReportMetric(float64(stats.Packets)/elapsed.Seconds(), "pps")
	b.ReportMetric(float64(shed)/elapsed.Seconds(), "shed_pps")
	if batches := port.Stats.RxBatches.Load(); batches > 0 {
		// Realized burst occupancy: datagrams each recvmmsg carried.
		b.ReportMetric(float64(port.Stats.RxDatagrams.Load())/float64(batches), "dgrams_per_rxbatch")
	}
	// Loss the kernel ate at the socket buffer, invisible to the port's
	// own exact accounting (sent minus everything the port read).
	b.ReportMetric(float64(uint64(b.N)-delivered-shed)/float64(b.N), "sockloss_ratio")
	if tracer != nil {
		_, completed, _ := tracer.Counts()
		b.ReportMetric(float64(completed), "traces")
	}

	if err := port.Close(); err != nil {
		b.Fatal(err)
	}
	if got := port.PoolAvailable(); got != port.PoolCapacity() {
		b.Fatalf("pool: %d of %d mbufs after close — the bench leaked", got, port.PoolCapacity())
	}
}

// BenchmarkNetportLoopback is the headline number: kernel REUSEPORT
// fan-out, 64-datagram syscall bursts, offered load paced near the
// loopback ceiling of this class of machine. The acceptance floor
// guarded by `make bench-gate` sits 20% under the recorded result.
func BenchmarkNetportLoopback(b *testing.B) {
	benchLoopback(b, benchOpts{pps: 450000, ring: 2048, batch: 64, sockets: 16, reuse: true})
}

// BenchmarkNetportLoopbackTraced is the headline configuration with the
// sampled tracer armed at 1/1024 — the overhead bar from the tracing
// design: `make bench-gate` asserts this sustains >= 98% of the
// untraced BenchmarkNetportLoopback pps from the same run.
func BenchmarkNetportLoopbackTraced(b *testing.B) {
	benchLoopback(b, benchOpts{pps: 450000, ring: 2048, batch: 64, sockets: 16, reuse: true, sample: 1024})
}

// BenchmarkNetportLoopbackOverload offers an unpaced firehose into
// small rings: the rings — not the kernel socket buffer — are the
// bottleneck, so the overload shows up in ring_full and shed_pps is
// nonzero from exact counters while the pipeline forwards at its own
// pace.
func BenchmarkNetportLoopbackOverload(b *testing.B) {
	benchLoopback(b, benchOpts{pps: 500000, ring: 256, batch: 64, sockets: 16, reuse: true})
}
