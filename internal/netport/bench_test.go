// Loopback throughput bench: pktgen → kernel UDP loopback → netport →
// supervised 4-worker sharded pipeline (parse → firewall → maglev).
// Unlike the in-process pipeline benches this pays for real syscalls on
// both sides of the port, so the number is a floor on what the runtime
// sustains with a kernel in the loop — the acceptance bar is 100k pps.
// The overload variant offers 2x and reports what ingress shed.
package netport_test

import (
	"testing"
	"time"

	"repro/internal/dpdk"
	"repro/internal/firewall"
	"repro/internal/maglev"
	"repro/internal/netbricks"
	"repro/internal/netport"
	"repro/internal/packet"
)

// benchPipeline mirrors e2ePipeline without the testing.T plumbing.
func benchPipeline(b *testing.B) func(w int) *netbricks.Pipeline {
	b.Helper()
	db := firewall.NewDB(firewall.Deny)
	if _, err := db.AddRule(packet.Addr(10, 99, 0, 0), 16, firewall.Rule{ID: 1, Action: firewall.Allow}); err != nil {
		b.Fatal(err)
	}
	backends := []maglev.Backend{
		{Name: "be-0", IP: packet.Addr(10, 1, 0, 1)},
		{Name: "be-1", IP: packet.Addr(10, 1, 0, 2)},
	}
	return func(w int) *netbricks.Pipeline {
		lb, err := maglev.NewBalancer(backends, maglev.DefaultTableSize)
		if err != nil {
			b.Errorf("worker %d: %v", w, err)
			return netbricks.NewPipeline()
		}
		return netbricks.NewPipeline(
			netbricks.Parse{},
			firewall.Operator{DB: db},
			maglev.Operator{LB: lb},
		)
	}
}

func benchLoopback(b *testing.B, pps, ringSize int) {
	const (
		workers   = 4
		batchSize = 32
	)
	port, err := netport.Open(netport.Config{
		Listen:   "127.0.0.1:0",
		Queues:   workers,
		RingSize: ringSize,
		PollWait: 2 * time.Millisecond, // short end-of-traffic grace: 8 idle polls = 16ms tail
	})
	if err != nil {
		b.Fatal(err)
	}
	gen := &netport.Pktgen{
		Target: port.Addr().String(),
		Base:   dpdk.DefaultSpec(),
		Flows:  64,
		PPS:    pps,
		Count:  b.N,
	}
	r := &netbricks.ShardedRunner{
		Port: port, Workers: workers, BatchSize: batchSize,
		NewDirect: benchPipeline(b),
		Supervise: true,
	}

	b.ResetTimer()
	start := time.Now()
	genDone := make(chan error, 1)
	go func() {
		_, err := gen.Run(nil)
		genDone <- err
	}()
	stats, err := r.Run(b.N)
	elapsed := time.Since(start)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if err := <-genDone; err != nil {
		b.Fatal(err)
	}

	delivered := port.Stats.RxPackets.Load()
	shed := port.Stats.RingFull.Load() + port.Stats.ParseError.Load() + port.Stats.PoolEmpty.Load()
	b.ReportMetric(float64(stats.Packets)/elapsed.Seconds(), "pps")
	b.ReportMetric(float64(shed)/elapsed.Seconds(), "shed_pps")
	// Loss the kernel ate at the socket buffer, invisible to the port's
	// own exact accounting (sent minus everything the port read).
	b.ReportMetric(float64(uint64(b.N)-delivered-shed)/float64(b.N), "sockloss_ratio")

	if err := port.Close(); err != nil {
		b.Fatal(err)
	}
	if got := port.PoolAvailable(); got != port.PoolCapacity() {
		b.Fatalf("pool: %d of %d mbufs after close — the bench leaked", got, port.PoolCapacity())
	}
}

// BenchmarkNetportLoopback offers 125k pps, comfortably over the 100k
// acceptance floor, and reports the sustained pipeline rate.
func BenchmarkNetportLoopback(b *testing.B) { benchLoopback(b, 125000, 1024) }

// BenchmarkNetportLoopbackOverload offers 2x that rate into smaller
// rings; the shed_pps metric shows drop-tail doing its job while the
// pipeline keeps forwarding at its own pace.
func BenchmarkNetportLoopbackOverload(b *testing.B) { benchLoopback(b, 250000, 256) }
