// Pktgen: the load generator for the socket port. It speaks the same
// overlay wire format the port receives — one UDP datagram per Ethernet
// frame — so `nf-pipeline -target` can drive `nf-pipeline -listen` over
// loopback, and the end-to-end tests can offer precisely paced load.
package netport

import (
	"fmt"
	"net"
	"time"

	"repro/internal/packet"
)

// Pktgen sends synthetic frames to a UDP target. Flows are derived from
// Base by the same SrcIP/SrcPort walk dpdk.UniformFlows performs, so the
// receiving port's RSS steering spreads them across queues the way the
// simulated multi-queue port's traffic spreads.
type Pktgen struct {
	// Target is the UDP address to send to.
	Target string
	// Base is the frame template; flow i adds i to SrcIP and i%50000 to
	// SrcPort.
	Base packet.BuildSpec
	// Flows is the number of distinct flows cycled round-robin
	// (default 1).
	Flows int
	// PPS paces the offered load in packets per second (0 = unpaced:
	// send as fast as the socket accepts).
	PPS int
	// Count is the total number of datagrams to send (0 = run until
	// stop closes).
	Count int
	// Sockets spreads the load over this many source sockets (default
	// 1, clamped to Flows), flow f always sending through socket
	// f%Sockets so per-flow ordering holds. A REUSEPORT receive group
	// hashes the *outer* tuple, so a single-socket generator lands every
	// datagram on one worker; per-flow source sockets give the kernel
	// the entropy to fan out — the overlay analogue of a VXLAN
	// encapsulator deriving its outer source port from the inner flow
	// hash.
	Sockets int
	// Batch is how many datagrams one batched send moves (default
	// DefaultBatch). Pacing and stop checks happen at burst boundaries,
	// so a stopped generator emits at most the burst already in flight.
	Batch int
}

// paceBatch is the legacy pacing granularity, kept as the floor for
// drift correction: pacing checks happen at burst boundaries, so a 100k
// pps run with the default burst corrects drift every ~320µs — often
// enough that time.Now and time.Sleep stay off the per-packet path.
const paceBatch = 64

// stopped reports whether stop has closed; a nil stop never stops.
func stopped(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// sleepLead sleeps off a positive schedule lead, returning false when
// stop closes during the wait — pacing sleeps never delay a stop.
func sleepLead(lead time.Duration, stop <-chan struct{}) bool {
	if lead <= 0 {
		return true
	}
	if stop == nil {
		time.Sleep(lead)
		return true
	}
	t := time.NewTimer(lead)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}

// Run sends the configured load and returns the number of datagrams
// handed to the kernel. It stops early — without error — when stop
// closes. Frames are prebuilt, one per flow, and sends go through the
// batched conn — one sendmmsg per socket per burst on Linux — so the
// syscall cost is paid per burst, not per datagram.
func (g *Pktgen) Run(stop <-chan struct{}) (sent int, err error) {
	if g.Count == 0 && stop == nil {
		return 0, fmt.Errorf("netport: pktgen needs a Count or a stop channel")
	}
	addr, err := net.ResolveUDPAddr("udp", g.Target)
	if err != nil {
		return 0, fmt.Errorf("netport: pktgen target: %w", err)
	}

	flows := max(g.Flows, 1)
	sockets := max(g.Sockets, 1)
	if sockets > flows {
		sockets = flows
	}
	conns := make([]*net.UDPConn, sockets)
	bcs := make([]batchConn, sockets)
	for s := range conns {
		conns[s], err = net.DialUDP("udp", nil, addr)
		if err == nil {
			bcs[s], err = newBatchConn(conns[s])
		}
		if err != nil {
			for _, c := range conns {
				if c != nil {
					c.Close()
				}
			}
			return 0, fmt.Errorf("netport: pktgen: %w", err)
		}
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	frames := make([][]byte, flows)
	for i := 0; i < flows; i++ {
		spec := g.Base
		spec.Tuple.SrcIP += packet.IPv4(i)
		spec.Tuple.SrcPort += uint16(i % 50000)
		frame, err := packet.Build(nil, spec)
		if err != nil {
			return 0, fmt.Errorf("netport: pktgen spec: %w", err)
		}
		frames[i] = frame
	}

	batch := g.Batch
	if batch <= 0 {
		batch = DefaultBatch
	}
	// Per-socket payload staging for one burst; flow f's frames always
	// queue on socket f%sockets.
	perSock := make([][][]byte, sockets)
	for s := range perSock {
		perSock[s] = make([][]byte, 0, batch)
	}

	start := time.Now()
	for i := 0; g.Count == 0 || i < g.Count; {
		if stopped(stop) {
			return sent, nil
		}
		n := batch
		if g.Count > 0 {
			n = min(n, g.Count-i)
		}
		for j := 0; j < n; j++ {
			f := (i + j) % flows
			perSock[f%sockets] = append(perSock[f%sockets], frames[f])
		}
		for s, payloads := range perSock {
			for off := 0; off < len(payloads); {
				k, werr := bcs[s].WriteBatch(payloads[off:], nil)
				if werr != nil {
					return sent, fmt.Errorf("netport: pktgen send: %w", werr)
				}
				if k == 0 {
					return sent, fmt.Errorf("netport: pktgen send: short batch write")
				}
				sent += k
				off += k
			}
			perSock[s] = perSock[s][:0]
		}
		i += n
		if g.PPS > 0 {
			// Sleep off any lead over the ideal schedule. Correcting at
			// burst boundaries (and once more for the final partial
			// burst, via sent == i here) keeps a Count/PPS run at
			// ≈ Count/PPS seconds without per-packet clock reads.
			ideal := time.Duration(i) * time.Second / time.Duration(g.PPS)
			if !sleepLead(ideal-time.Since(start), stop) {
				return sent, nil
			}
		}
	}
	return sent, nil
}
