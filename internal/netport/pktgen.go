// Pktgen: the load generator for the socket port. It speaks the same
// overlay wire format the port receives — one UDP datagram per Ethernet
// frame — so `nf-pipeline -target` can drive `nf-pipeline -listen` over
// loopback, and the end-to-end tests can offer precisely paced load.
package netport

import (
	"fmt"
	"net"
	"time"

	"repro/internal/packet"
)

// Pktgen sends synthetic frames to a UDP target. Flows are derived from
// Base by the same SrcIP/SrcPort walk dpdk.UniformFlows performs, so the
// receiving port's RSS steering spreads them across queues the way the
// simulated multi-queue port's traffic spreads.
type Pktgen struct {
	// Target is the UDP address to send to.
	Target string
	// Base is the frame template; flow i adds i to SrcIP and i%50000 to
	// SrcPort.
	Base packet.BuildSpec
	// Flows is the number of distinct flows cycled round-robin
	// (default 1).
	Flows int
	// PPS paces the offered load in packets per second (0 = unpaced:
	// send as fast as the socket accepts).
	PPS int
	// Count is the total number of datagrams to send (0 = run until
	// stop closes).
	Count int
}

// paceBatch is how many sends happen between pacing checks; small enough
// that a 100k pps run corrects drift every ~600µs, large enough that
// time.Now and time.Sleep stay off the per-packet path. The stop channel
// is checked every send (a non-blocking select costs nanoseconds), so a
// stopped generator emits at most the datagram already in flight.
const paceBatch = 64

// stopped reports whether stop has closed; a nil stop never stops.
func stopped(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// sleepLead sleeps off a positive schedule lead, returning false when
// stop closes during the wait — pacing sleeps never delay a stop.
func sleepLead(lead time.Duration, stop <-chan struct{}) bool {
	if lead <= 0 {
		return true
	}
	if stop == nil {
		time.Sleep(lead)
		return true
	}
	t := time.NewTimer(lead)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}

// Run sends the configured load and returns the number of datagrams
// handed to the kernel. It stops early — without error — when stop
// closes. Frames are prebuilt, one per flow, so the send loop is a bare
// syscall per datagram.
func (g *Pktgen) Run(stop <-chan struct{}) (sent int, err error) {
	if g.Count == 0 && stop == nil {
		return 0, fmt.Errorf("netport: pktgen needs a Count or a stop channel")
	}
	addr, err := net.ResolveUDPAddr("udp", g.Target)
	if err != nil {
		return 0, fmt.Errorf("netport: pktgen target: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return 0, fmt.Errorf("netport: pktgen: %w", err)
	}
	defer conn.Close()

	flows := max(g.Flows, 1)
	frames := make([][]byte, flows)
	for i := 0; i < flows; i++ {
		spec := g.Base
		spec.Tuple.SrcIP += packet.IPv4(i)
		spec.Tuple.SrcPort += uint16(i % 50000)
		frame, err := packet.Build(nil, spec)
		if err != nil {
			return 0, fmt.Errorf("netport: pktgen spec: %w", err)
		}
		frames[i] = frame
	}

	start := time.Now()
	for i := 0; g.Count == 0 || i < g.Count; i++ {
		if stopped(stop) {
			return sent, nil
		}
		if g.PPS > 0 && i > 0 && i%paceBatch == 0 {
			// Sleep off any lead over the ideal schedule.
			ideal := time.Duration(i) * time.Second / time.Duration(g.PPS)
			if !sleepLead(ideal-time.Since(start), stop) {
				return sent, nil
			}
		}
		if _, err := conn.Write(frames[i%flows]); err != nil {
			return sent, fmt.Errorf("netport: pktgen send: %w", err)
		}
		sent++
	}
	// Pace the final partial batch: without this, a Count < paceBatch run
	// never paces at all and any run finishes up to paceBatch-1 sends
	// ahead of schedule — a Count/PPS run takes ≈ Count/PPS seconds.
	if g.PPS > 0 && sent > 0 {
		ideal := time.Duration(sent) * time.Second / time.Duration(g.PPS)
		sleepLead(ideal-time.Since(start), stop)
	}
	return sent, nil
}
