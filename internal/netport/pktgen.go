// Pktgen: the load generator for the socket port. It speaks the same
// overlay wire format the port receives — one UDP datagram per Ethernet
// frame — so `nf-pipeline -target` can drive `nf-pipeline -listen` over
// loopback, and the end-to-end tests can offer precisely paced load.
package netport

import (
	"fmt"
	"net"
	"time"

	"repro/internal/packet"
)

// Pktgen sends synthetic frames to a UDP target. Flows are derived from
// Base by the same SrcIP/SrcPort walk dpdk.UniformFlows performs, so the
// receiving port's RSS steering spreads them across queues the way the
// simulated multi-queue port's traffic spreads.
type Pktgen struct {
	// Target is the UDP address to send to.
	Target string
	// Base is the frame template; flow i adds i to SrcIP and i%50000 to
	// SrcPort.
	Base packet.BuildSpec
	// Flows is the number of distinct flows cycled round-robin
	// (default 1).
	Flows int
	// PPS paces the offered load in packets per second (0 = unpaced:
	// send as fast as the socket accepts).
	PPS int
	// Count is the total number of datagrams to send (0 = run until
	// stop closes).
	Count int
}

// paceBatch is how many sends happen between pacing checks; small enough
// that a 100k pps run corrects drift every ~600µs, large enough that
// time.Now and time.Sleep stay off the per-packet path.
const paceBatch = 64

// Run sends the configured load and returns the number of datagrams
// handed to the kernel. It stops early — without error — when stop
// closes. Frames are prebuilt, one per flow, so the send loop is a bare
// syscall per datagram.
func (g *Pktgen) Run(stop <-chan struct{}) (sent int, err error) {
	if g.Count == 0 && stop == nil {
		return 0, fmt.Errorf("netport: pktgen needs a Count or a stop channel")
	}
	addr, err := net.ResolveUDPAddr("udp", g.Target)
	if err != nil {
		return 0, fmt.Errorf("netport: pktgen target: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return 0, fmt.Errorf("netport: pktgen: %w", err)
	}
	defer conn.Close()

	flows := max(g.Flows, 1)
	frames := make([][]byte, flows)
	for i := 0; i < flows; i++ {
		spec := g.Base
		spec.Tuple.SrcIP += packet.IPv4(i)
		spec.Tuple.SrcPort += uint16(i % 50000)
		frame, err := packet.Build(nil, spec)
		if err != nil {
			return 0, fmt.Errorf("netport: pktgen spec: %w", err)
		}
		frames[i] = frame
	}

	start := time.Now()
	for i := 0; g.Count == 0 || i < g.Count; i++ {
		if stop != nil && i%paceBatch == 0 {
			select {
			case <-stop:
				return sent, nil
			default:
			}
		}
		if g.PPS > 0 && i > 0 && i%paceBatch == 0 {
			// Sleep off any lead over the ideal schedule.
			ideal := time.Duration(i) * time.Second / time.Duration(g.PPS)
			if lead := ideal - time.Since(start); lead > 0 {
				time.Sleep(lead)
			}
		}
		if _, err := conn.Write(frames[i%flows]); err != nil {
			return sent, fmt.Errorf("netport: pktgen send: %w", err)
		}
		sent++
	}
	return sent, nil
}
