package netport

import (
	"net"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/packet"
)

// fakeBatchConn scripts WriteBatch results: call i accepts at most
// accepts[i] payloads (every payload once the script runs out), so tests
// can force a short send exactly mid-burst. ReadBatch is never called —
// the fake only stands in on the egress side of a socketless port.
type fakeBatchConn struct {
	accepts []int
	calls   int
	wrote   int
	bytes   int
}

func (f *fakeBatchConn) BatchCap() int { return maxStage }

func (f *fakeBatchConn) ReadBatch([][]byte, []int) (int, error) {
	panic("fakeBatchConn: unexpected ReadBatch")
}

func (f *fakeBatchConn) WriteBatch(payloads [][]byte, _ *net.UDPAddr) (int, error) {
	k := len(payloads)
	if f.calls < len(f.accepts) {
		k = min(f.accepts[f.calls], k)
	}
	f.calls++
	for _, p := range payloads[:k] {
		f.bytes += len(p)
	}
	f.wrote += k
	return k, nil
}

// txPort builds a socketless port whose egress goes through fake, plus
// n mbufs loaded with distinct flow frames.
func txPort(t *testing.T, cfg Config, fake *fakeBatchConn, n int) (*Port, []*packet.Packet, int) {
	t.Helper()
	p, err := newPort(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	leakcheck.Pool(t, "mbufs", p.PoolAvailable)
	p.txDst = &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}
	p.txbcs = []batchConn{fake}

	var pkts []*packet.Packet
	bytes := 0
	for i := 0; i < n; i++ {
		pkt, err := p.pool.Get()
		if err != nil {
			t.Fatal(err)
		}
		pkt.Data = append(pkt.Data[:0], flowFrame(t, i)...)
		bytes += pkt.Len()
		pkts = append(pkts, pkt)
	}
	return p, pkts, bytes
}

// TestTxBatchedPartialSendAccounting (regression, satellite): when the
// kernel cuts a batched send short at k<n datagrams, exactly k count in
// TxPackets/TxBytes and the returned sent — the unaccepted tail is
// drop-tailed into TxErrors, not retried and not silently reported as
// delivered — and all n buffers recycle, so a short send never leaks an
// mbuf.
func TestTxBatchedPartialSendAccounting(t *testing.T) {
	const offered, accepted = 8, 3
	fake := &fakeBatchConn{accepts: []int{accepted}}
	p, pkts, _ := txPort(t, Config{Queues: 1, RingSize: 64, BatchSize: 16}, fake, offered)

	wantBytes := 0
	for _, pkt := range pkts[:accepted] {
		wantBytes += pkt.Len()
	}
	if sent := p.TxBurstQueue(0, pkts); sent != accepted {
		t.Fatalf("TxBurstQueue returned %d, want the %d the conn accepted", sent, accepted)
	}
	if tp, tb := p.Stats.TxPackets.Load(), p.Stats.TxBytes.Load(); tp != accepted || tb != uint64(wantBytes) {
		t.Fatalf("partial send accounting: tx_packets=%d tx_bytes=%d, want %d/%d", tp, tb, accepted, wantBytes)
	}
	if te := p.Stats.TxErrors.Load(); te != offered-accepted {
		t.Fatalf("tx_errors=%d, want the drop-tailed %d", te, offered-accepted)
	}
	if fake.calls != 1 {
		t.Fatalf("short send retried: %d WriteBatch calls, want 1 (drop-tail, not retry)", fake.calls)
	}
	// Every buffer — sent and drop-tailed alike — is back in the queue
	// cache; leakcheck verifies the pool balance at cleanup.
	rq := p.queues[0]
	rq.mu.Lock()
	cached := rq.cache.Len()
	rq.mu.Unlock()
	if cached != offered {
		t.Fatalf("queue cache holds %d buffers, want all %d recycled", cached, offered)
	}
}

// TestTxBatchChunkingAccounting: a burst larger than BatchSize goes out
// in BatchSize chunks; a short send on a later chunk drop-tails only the
// remainder, and the totals stay exact across chunks.
func TestTxBatchChunkingAccounting(t *testing.T) {
	const offered = 10 // BatchSize 4: chunks of 4, 4, 2
	fake := &fakeBatchConn{accepts: []int{4, 2}} // second chunk cut at 2
	p, pkts, _ := txPort(t, Config{Queues: 1, RingSize: 64, BatchSize: 4}, fake, offered)

	const wantSent = 6 // 4 + 2; the last 4 (2 from chunk 2, all of chunk 3) drop
	wantBytes := 0
	for _, pkt := range pkts[:wantSent] {
		wantBytes += pkt.Len()
	}
	if sent := p.TxBurstQueue(0, pkts); sent != wantSent {
		t.Fatalf("TxBurstQueue returned %d, want %d", sent, wantSent)
	}
	if fake.calls != 2 {
		t.Fatalf("%d WriteBatch calls, want 2 (full chunk, then the short one ends the burst)", fake.calls)
	}
	if tp, tb := p.Stats.TxPackets.Load(), p.Stats.TxBytes.Load(); tp != wantSent || tb != uint64(wantBytes) {
		t.Fatalf("chunked accounting: tx_packets=%d tx_bytes=%d, want %d/%d", tp, tb, wantSent, wantBytes)
	}
	if te := p.Stats.TxErrors.Load(); te != offered-wantSent {
		t.Fatalf("tx_errors=%d, want %d", te, offered-wantSent)
	}
	if tbat := p.Stats.TxBatches.Load(); tbat != 2 {
		t.Fatalf("tx_batches=%d, want 2", tbat)
	}
	rq := p.queues[0]
	rq.mu.Lock()
	cached := rq.cache.Len()
	rq.mu.Unlock()
	if cached != offered {
		t.Fatalf("queue cache holds %d buffers, want all %d recycled", cached, offered)
	}
}

// TestReusePortFanOut (property test, satellite): with an SO_REUSEPORT
// group and a source-port-diverse generator, the kernel spreads sockets'
// flows across the per-queue receive loops. Two properties must hold
// everywhere the mode runs: exact accounting, and outer-flow affinity —
// every datagram from one generator socket lands on the same queue, so
// per-flow ordering survives the fan-out. Balance is the kernel's
// business: it is checked with a chi-squared test at 99.9% and skips —
// not fails — when the kernel's hash spreads poorly, and the whole test
// skips on platforms without REUSEPORT groups.
func TestReusePortFanOut(t *testing.T) {
	if !reusePortAvailable {
		t.Skip("SO_REUSEPORT groups unsupported on this platform; distributor fallback is covered by the other tests")
	}
	const queues, flows, sockets, count = 4, 128, 64, 1000
	p, err := Open(Config{
		Listen:     "127.0.0.1:0",
		Queues:     queues,
		RingSize:   1024, // worst-case hash imbalance still fits one ring
		ReusePort:  true,
		PollWait:   5 * time.Millisecond,
		ReadBuffer: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	leakcheck.Pool(t, "netport", p.PoolAvailable)
	if !p.ReusePortActive() {
		t.Fatal("ReusePort requested and available, but the port fell back to the distributor")
	}

	base := testSpec()
	gen := &Pktgen{Target: p.Addr().String(), Base: base, Flows: flows,
		Sockets: sockets, Count: count, PPS: 200000}
	sent, err := gen.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sent != count {
		t.Fatalf("pktgen sent %d, want %d", sent, count)
	}

	// Let the receive loops drain the kernel buffers, then collect.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats.RxDatagrams.Load() < count && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	accounted(t, p)
	if p.Stats.ParseError.Load() != 0 || p.Stats.PoolEmpty.Load() != 0 || p.Stats.RingFull.Load() != 0 {
		t.Fatalf("unexpected drops: ring_full=%d parse_error=%d pool_empty=%d",
			p.Stats.RingFull.Load(), p.Stats.ParseError.Load(), p.Stats.PoolEmpty.Load())
	}

	// Drain every queue; map each datagram back to its generator socket
	// (flow f sends through socket f%Sockets) and pin socket→queue.
	sockQueue := map[int]int{}
	perQueue := make([]int, queues)
	buf := make([]*packet.Packet, 64)
	var drained uint64
	for q := 0; q < queues; q++ {
		for {
			n := p.RxBurstQueue(q, buf)
			if n == 0 {
				break
			}
			for _, pkt := range buf[:n] {
				flow := int(pkt.Tuple().SrcIP - base.Tuple.SrcIP)
				sock := flow % sockets
				if prev, pinned := sockQueue[sock]; pinned && prev != q {
					t.Fatalf("socket %d split across queues %d and %d: outer-flow affinity broken", sock, prev, q)
				}
				sockQueue[sock] = q
				perQueue[q]++
			}
			drained += uint64(n)
			p.FreeQueue(q, buf[:n])
		}
	}
	if drained != p.Stats.RxPackets.Load() {
		t.Fatalf("drained %d, delivered counter says %d", drained, p.Stats.RxPackets.Load())
	}
	if drained == 0 {
		t.Fatal("nothing delivered (kernel dropped the whole run?)")
	}
	t.Logf("reuseport fan-out: %d/%d datagrams, %d sockets → queues %v", drained, sent, len(sockQueue), perQueue)

	// Balance: chi-squared over socket→queue assignments (99.9%,
	// df=queues-1, same idiom as the RETA property test). The kernel
	// does not promise a balanced hash on every boot seed, so a poor
	// spread skips rather than fails.
	critical := map[int]float64{2: 10.83, 4: 16.27, 8: 24.32}
	obs := make([]int, queues)
	for _, q := range sockQueue {
		obs[q]++
	}
	expected := float64(len(sockQueue)) / float64(queues)
	var chi2 float64
	for _, c := range obs {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if crit := critical[queues]; chi2 > crit {
		t.Skipf("kernel REUSEPORT hash spread %v (chi-squared %.2f > %.2f); balance is kernel-dependent — skipping", obs, chi2, crit)
	}
}
