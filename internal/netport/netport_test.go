package netport

import (
	"net"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/packet"
	"repro/internal/telemetry"
)

// testSpec is a representative 64-byte-payload UDP flow (the same shape
// dpdk.DefaultSpec produces; duplicated here so the wire port does not
// depend on the simulator).
func testSpec() packet.BuildSpec {
	return packet.BuildSpec{
		SrcMAC: packet.MAC{0x02, 0, 0, 0, 0, 0x01},
		DstMAC: packet.MAC{0x02, 0, 0, 0, 0, 0x02},
		Tuple: packet.FiveTuple{
			SrcIP:   packet.Addr(10, 0, 0, 1),
			DstIP:   packet.Addr(10, 99, 0, 1),
			SrcPort: 40000,
			DstPort: 80,
			Proto:   packet.ProtoUDP,
		},
		PayloadLen: 64,
	}
}

// flowFrame builds the frame for flow i under the Pktgen flow walk.
func flowFrame(t testing.TB, i int) []byte {
	t.Helper()
	spec := testSpec()
	spec.Tuple.SrcIP += packet.IPv4(i)
	spec.Tuple.SrcPort += uint16(i % 50000)
	frame, err := packet.Build(nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// inject runs the per-datagram ingress path the way a receive loop
// does, minus the socket: stage an mbuf (or shed pool_empty), stand in
// for the kernel copy, deliver. Only valid on a socketless newPort port,
// whose placeholder loop has no goroutine contending for the staging
// arrays.
func (p *Port) inject(data []byte) {
	l := p.loops[0]
	if l.stage(1) == 0 {
		p.shed(&p.Stats.PoolEmpty, DropPoolEmpty, 0)
		return
	}
	n := copy(l.bufs[0][:MbufSize], data)
	p.deliver(l, l.pkts[0], n)
}

// injectBatch runs one whole batch read through the genuine batched
// dispatch path: stage a burst, copy each datagram into its staged
// buffer (scratch past the staged count, exactly as a dry pool leaves
// it), then dispatch with the same accounting the socket loop uses.
func (p *Port) injectBatch(datagrams [][]byte) {
	l := p.loops[0]
	for off := 0; off < len(datagrams); {
		burst := datagrams[off:min(off+len(l.bufs), len(datagrams))]
		staged := l.stage(len(burst))
		for i, d := range burst {
			// copy caps at MbufSize — the kernel-style truncation.
			l.lens[i] = copy(l.bufs[i][:MbufSize], d)
		}
		p.dispatch(l, len(burst), staged)
		off += len(burst)
	}
}

// accounted asserts the exact-accounting invariant: every datagram the
// port saw is either delivered or counted under exactly one drop cause.
func accounted(t *testing.T, p *Port) {
	t.Helper()
	total := p.Stats.RxPackets.Load() + p.Stats.drops()
	if got := p.Stats.RxDatagrams.Load(); got != total {
		t.Fatalf("accounting: rx_datagrams=%d, delivered+drops=%d (ring_full=%d parse_error=%d pool_empty=%d)",
			got, total, p.Stats.RingFull.Load(), p.Stats.ParseError.Load(), p.Stats.PoolEmpty.Load())
	}
}

func TestDeliverSteersByRSS(t *testing.T) {
	p, err := newPort(Config{Queues: 4, RingSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	leakcheck.Pool(t, "netport", p.PoolAvailable)
	t.Cleanup(func() { p.Close() })

	const flows = 64
	perQueue := map[int]int{}
	for i := 0; i < flows; i++ {
		spec := testSpec()
		spec.Tuple.SrcIP += packet.IPv4(i)
		spec.Tuple.SrcPort += uint16(i % 50000)
		perQueue[p.RSSQueue(spec.Tuple)]++
		p.inject(flowFrame(t, i))
	}
	accounted(t, p)
	if got := p.Stats.RxPackets.Load(); got != flows {
		t.Fatalf("delivered %d of %d valid frames (drops: %d)", got, flows, p.Stats.drops())
	}

	// Every frame must surface on the queue its RSS hash selects, with
	// the NIC metadata stamped.
	buf := make([]*packet.Packet, flows)
	for q := 0; q < p.Queues(); q++ {
		n := p.RxBurstQueue(q, buf)
		if n != perQueue[q] {
			t.Fatalf("queue %d: got %d packets, RSS steering promised %d", q, n, perQueue[q])
		}
		for _, pkt := range buf[:n] {
			if pkt.RxQueue != q {
				t.Fatalf("packet on queue %d stamped RxQueue=%d", q, pkt.RxQueue)
			}
			if want := p.RSSQueue(pkt.Tuple()); want != q {
				t.Fatalf("flow %s on queue %d, RSS says %d", pkt.Tuple(), q, want)
			}
			if pkt.RxHash == 0 {
				t.Fatal("RxHash not stamped")
			}
		}
		p.FreeQueue(q, buf[:n])
	}
}

func TestOverloadShedsAtRingWithBackpressure(t *testing.T) {
	rec := telemetry.NewRecorder(64)
	p, err := newPort(Config{Queues: 1, RingSize: 64, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	leakcheck.Pool(t, "netport", p.PoolAvailable)
	t.Cleanup(func() { p.Close() })

	// Same flow every time: everything lands on one ring. No one drains,
	// so the ring fills and the tail drops.
	frame := flowFrame(t, 0)
	const offered = 200
	for i := 0; i < offered; i++ {
		p.inject(frame)
	}
	accounted(t, p)
	ringCap := p.queues[0].ring.Capacity()
	if got := p.Stats.RxPackets.Load(); got != uint64(ringCap) {
		t.Fatalf("delivered %d, want exactly the ring capacity %d", got, ringCap)
	}
	if got := p.Stats.RingFull.Load(); got != uint64(offered-ringCap) {
		t.Fatalf("ring_full=%d, want %d (every over-capacity datagram shed drop-tail)", got, offered-ringCap)
	}
	if bp := p.Stats.Backpressure.Load(); bp != 1 {
		t.Fatalf("backpressure gauge = %d with a full ring, want 1", bp)
	}
	// The shed datagrams are visible in the flight recorder.
	var drops int
	for _, ev := range rec.Dump() {
		if ev.Kind == telemetry.EvDrop && ev.Arg == DropRingFull {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("no ring_full drops in the flight recorder")
	}

	// Draining below the low watermark clears backpressure.
	buf := make([]*packet.Packet, 32)
	for p.queues[0].ring.Len() > 0 {
		n := p.RxBurstQueue(0, buf)
		if n == 0 {
			t.Fatal("ring non-empty but burst returned 0")
		}
		p.FreeQueue(0, buf[:n])
	}
	if bp := p.Stats.Backpressure.Load(); bp != 0 {
		t.Fatalf("backpressure gauge = %d after drain, want 0", bp)
	}
}

func TestDeliverShedsMalformed(t *testing.T) {
	p, err := newPort(Config{Queues: 2, RingSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	leakcheck.Pool(t, "netport", p.PoolAvailable)
	t.Cleanup(func() { p.Close() })

	cases := [][]byte{
		nil,                      // empty datagram
		flowFrame(t, 0)[:10],     // truncated mid-Ethernet
		make([]byte, 64),         // zero ethertype
		make([]byte, MbufSize+4), // oversized: kernel would truncate the read
	}
	// Non-UDP/TCP transport: valid IPv4 with protocol 89 (OSPF).
	bad := flowFrame(t, 0)
	bad[14+9] = 89
	cases = append(cases, bad)

	for _, data := range cases {
		p.inject(data)
	}
	accounted(t, p)
	if got := p.Stats.ParseError.Load(); got != uint64(len(cases)) {
		t.Fatalf("parse_error=%d, want %d", got, len(cases))
	}
	if got := p.Stats.RxPackets.Load(); got != 0 {
		t.Fatalf("%d malformed datagrams delivered", got)
	}
}

func TestPoolExhaustionSheds(t *testing.T) {
	p, err := newPort(Config{Queues: 1, RingSize: 1024, PoolSize: 32, CacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	leakcheck.Pool(t, "netport", p.PoolAvailable)
	t.Cleanup(func() { p.Close() })

	frame := flowFrame(t, 0)
	for i := 0; i < 64; i++ {
		p.inject(frame)
	}
	accounted(t, p)
	if got := p.Stats.PoolEmpty.Load(); got == 0 {
		t.Fatal("pool exhausted but no pool_empty drops")
	}
	if got := p.Stats.RxPackets.Load(); got != 32 {
		t.Fatalf("delivered %d, want the full pool of 32", got)
	}
	// Drain so leakcheck balances.
	buf := make([]*packet.Packet, 32)
	n := p.RxBurstQueue(0, buf)
	p.FreeQueue(0, buf[:n])
}

func TestLoopbackSocketRxTx(t *testing.T) {
	// Egress sink: a socket whose datagrams we count.
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	sunk := make(chan int)
	go func() {
		buf := make([]byte, MbufSize)
		n := 0
		for {
			sink.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
			if _, err := sink.Read(buf); err != nil {
				sunk <- n
				return
			}
			n++
		}
	}()

	p, err := Open(Config{
		Listen:   "127.0.0.1:0",
		Queues:   2,
		RingSize: 1024,
		PollWait: 5 * time.Millisecond,
		TxTarget: sink.LocalAddr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	leakcheck.Pool(t, "netport", p.PoolAvailable)
	t.Cleanup(func() { p.Close() })

	const count = 500
	gen := &Pktgen{Target: p.Addr().String(), Base: testSpec(), Flows: 32, Count: count, PPS: 50000}
	sent, err := gen.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sent != count {
		t.Fatalf("pktgen sent %d, want %d", sent, count)
	}

	// Drain both queues until the offered load is fully accounted (the
	// kernel may still be handing datagrams to the receive loop).
	buf := make([]*packet.Packet, 64)
	deadline := time.Now().Add(5 * time.Second)
	var forwarded uint64
	for p.Stats.RxDatagrams.Load() < count && time.Now().Before(deadline) {
		for q := 0; q < p.Queues(); q++ {
			n := p.RxBurstQueue(q, buf)
			forwarded += uint64(p.TxBurstQueue(q, buf[:n]))
		}
	}
	for q := 0; q < p.Queues(); q++ { // final sweep
		n := p.RxBurstQueue(q, buf)
		forwarded += uint64(p.TxBurstQueue(q, buf[:n]))
	}
	accounted(t, p)
	if got := p.Stats.RxDatagrams.Load(); got != count {
		t.Fatalf("port saw %d of %d datagrams (kernel socket drop?)", got, count)
	}
	if p.Stats.RxPackets.Load() == 0 {
		t.Fatal("nothing delivered")
	}
	if forwarded != p.Stats.TxPackets.Load() {
		t.Fatalf("TxBurst returned %d, tx counter says %d", forwarded, p.Stats.TxPackets.Load())
	}

	got := <-sunk
	if got == 0 {
		t.Fatal("egress sink received nothing")
	}
	t.Logf("loopback: %d sent, %d delivered, %d forwarded, %d reached the sink",
		sent, p.Stats.RxPackets.Load(), forwarded, got)
}

func TestRegisterMetrics(t *testing.T) {
	p, err := newPort(Config{Queues: 2, RingSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	reg := telemetry.NewRegistry()
	p.RegisterMetrics(reg, telemetry.Labels{"port": "net0"})

	p.inject(flowFrame(t, 0))
	p.inject([]byte{1, 2, 3})

	snap := reg.Snapshot()
	if got := snap[`port_rx_datagrams_total{port="net0"}`]; got != float64(2) {
		t.Fatalf("rx_datagrams metric = %v, want 2", got)
	}
	if got := snap[`port_ingress_drops_total{cause="parse_error",port="net0"}`]; got != float64(1) {
		t.Fatalf("parse_error drop metric = %v, want 1", got)
	}
	for _, key := range []string{
		`port_ingress_drops_total{cause="ring_full",port="net0"}`,
		`port_ingress_drops_total{cause="pool_empty",port="net0"}`,
		`port_rx_ring_depth{port="net0",queue="1"}`,
		`port_rx_backpressure{port="net0",queue="0"}`,
		`port_rx_backpressure_queues{port="net0"}`,
		`pool_available{port="net0"}`,
	} {
		if _, ok := snap[key]; !ok {
			t.Fatalf("metric %s not registered", key)
		}
	}
	// Settle for pool accounting (not leak-checked here, but keep tidy).
	buf := make([]*packet.Packet, 4)
	for q := 0; q < p.Queues(); q++ {
		n := p.RxBurstQueue(q, buf)
		p.FreeQueue(q, buf[:n])
	}
}
