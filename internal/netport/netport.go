// Package netport is the socket-backed network port: the same
// RxBurst/TxBurst/Free code path as the simulated NIC in internal/dpdk,
// but fed by a real UDP socket, so the bytes crossing the
// protection-domain boundary arrived from outside the process.
//
// The wire format is an overlay: each UDP datagram's payload is one
// complete Ethernet frame (the same Ethernet/IPv4/{TCP,UDP} framing
// packet.Build produces and packet.Parse validates), the way a
// VXLAN-style tunnel or a userspace virtio backend would carry frames.
// Pktgen in this package — and `nf-pipeline -target` — produces that
// format, so one binary can drive another over loopback.
//
// Ingress path, per datagram: one mbuf comes off the port mempool
// (through the receive loop's local cache), the kernel copies the
// datagram straight into the mbuf's buffer — the only copy on the path;
// everything after it is by-reference ownership transfer — the frame is
// parsed and RSS-hashed (the same Toeplitz/RETA steering the simulated
// multi-queue port uses), and the mbuf is enqueued on the owning queue's
// bounded ingress ring for that queue's worker to poll.
//
// Overload is shed at that ring, drop-tail, never absorbed unbounded:
//
//   - ring_full: the destination queue's ring is full — the worker is
//     not draining fast enough (the rx_missed of real NICs);
//   - parse_error: the payload is not a well-formed frame (including
//     datagrams at or beyond the mbuf size, which the kernel would have
//     truncated);
//   - pool_empty: no mbuf was free; the datagram is read into a scratch
//     buffer and discarded.
//
// Each cause has its own counter, every shed datagram is recorded in the
// flight recorder, and a high/low-watermark gauge per queue exposes
// backpressure before drops start. Total accounting is exact:
//
//	rx_datagrams == rx_packets + ring_full + parse_error + pool_empty
//
// holds whenever the receive loop is quiescent — every datagram read off
// the socket is either delivered to a ring or counted under exactly one
// cause — which the end-to-end overload test asserts.
package netport

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mempool"
	"repro/internal/packet"
	"repro/internal/telemetry"
)

// MbufSize is the fixed buffer size of an mbuf, matching internal/dpdk's
// conventional 2 KiB data room. A datagram that does not fit below this
// size is counted as a parse_error drop: the kernel silently truncates
// reads into a full buffer, so a read of MbufSize bytes cannot be
// distinguished from a truncated larger frame and is rejected.
const MbufSize = 2048

// Drop causes, used as the flight-recorder EvDrop argument so a recorder
// dump shows why ingress shed each datagram.
const (
	DropRingFull uint64 = iota + 1
	DropParseError
	DropPoolEmpty
)

// Stats holds the port's cumulative counters — telemetry cells, written
// on the data path with uncontended atomic adds and readable by a
// metrics scrape at any time.
type Stats struct {
	// RxDatagrams counts every datagram read off the socket, delivered
	// or shed. RxDatagrams == RxPackets + the three drop counters.
	RxDatagrams telemetry.Counter
	// RxPackets/RxBytes count frames delivered to an ingress ring.
	RxPackets telemetry.Counter
	RxBytes   telemetry.Counter
	TxPackets telemetry.Counter
	TxBytes   telemetry.Counter
	// TxErrors counts failed socket writes (the buffer is recycled
	// regardless; a wire error must not leak an mbuf).
	TxErrors telemetry.Counter
	// RxSocketErrors counts transient socket read errors.
	RxSocketErrors telemetry.Counter

	// Per-cause ingress drop counters; see the package comment.
	RingFull   telemetry.Counter
	ParseError telemetry.Counter
	PoolEmpty  telemetry.Counter

	// Backpressure is the number of receive queues currently above their
	// high watermark (0 = every ring comfortably below; it clears only
	// once a ring drains under the low watermark, so the gauge does not
	// flap at the threshold).
	Backpressure telemetry.Gauge
}

// drops returns the sum of the per-cause drop counters.
func (s *Stats) drops() uint64 {
	return s.RingFull.Load() + s.ParseError.Load() + s.PoolEmpty.Load()
}

// Config parameterizes Open.
type Config struct {
	// Listen is the UDP address to receive on, e.g. "127.0.0.1:0".
	Listen string
	// Queues is the number of receive queues (default 1); flows are
	// RSS-steered across them exactly like the simulated multi-queue
	// port, so one worker per queue sees complete flows.
	Queues int
	// PoolSize is the mbuf count (default: enough to fill every ring and
	// cache with 1024 spare for in-flight batches).
	PoolSize int
	// RingSize bounds each queue's ingress ring in datagrams (default
	// 1024, rounded up to a power of two). This is the overload-shedding
	// boundary: when a ring is full, new datagrams for that queue drop.
	RingSize int
	// CacheSize bounds each queue's local mempool cache (default
	// mempool.DefaultCacheSize, clamped to the pool size).
	CacheSize int
	// PollWait is how long RxBurstQueue blocks for traffic when the ring
	// is empty before returning 0 (default 1ms). Runners treat a run of
	// empty polls as end-of-traffic, so PollWait sets their patience.
	PollWait time.Duration
	// TxTarget, when set, is the UDP address transmitted frames are sent
	// to (one datagram per frame, same overlay format as ingress). When
	// empty the port is a sink: TxBurst counts and recycles only.
	TxTarget string
	// ReadBuffer requests SO_RCVBUF bytes on the socket (0 = kernel
	// default). The kernel caps it at net.core.rmem_max.
	ReadBuffer int
	// Recorder, when non-nil, receives an EvDrop event (arg = drop
	// cause) for every shed datagram and backpressure edge events.
	Recorder *telemetry.Recorder
}

// rxQueue is one receive queue: the bounded ingress ring the receive
// loop fills, a wakeup channel so an idle worker needn't spin at full
// rate, and a local mempool cache recycling the owning worker's
// transmitted/freed buffers. The mutex guards the cache (dpdk.Port keeps
// the same discipline); in the intended one-worker-per-queue deployment
// it is uncontended.
type rxQueue struct {
	ring  *mempool.Ring[*packet.Packet]
	ready chan struct{}
	bp    atomic.Bool     // above high watermark (hysteresis state)
	gauge telemetry.Gauge // 0/1 mirror of bp for the registry

	mu    sync.Mutex
	cache *mempool.Cache[packet.Packet]

	actor telemetry.ActorID
}

// Port is a UDP-socket-backed burst port. It satisfies
// netbricks.BurstPort; the pipeline runtime cannot tell it from the
// simulated NIC except by the provenance of the bytes.
type Port struct {
	conn   *net.UDPConn
	txDst  *net.UDPAddr
	queues []*rxQueue
	pool   *mempool.Pool[packet.Packet]

	// rxMu guards rxCache: the receive loop is the only Get/Put caller,
	// but PoolAvailable scrapes Len from other goroutines.
	rxMu    sync.Mutex
	rxCache *mempool.Cache[packet.Packet]
	// loopHeld counts mbufs checked out by the receive loop — normally
	// the one parked across the blocking socket read. PoolAvailable adds
	// it back so leak baselines are exact whenever the loop is between
	// datagrams, not just after Close.
	loopHeld atomic.Int64

	reta     *packet.RETA
	rssKey   packet.RSSKey
	pollWait time.Duration
	high     int // ring depth that raises backpressure
	low      int // ring depth that clears it

	rec     *telemetry.Recorder
	scratch []byte // pool_empty reads land here and are discarded

	closed atomic.Bool
	done   chan struct{} // receive loop exited

	// Stats is exported for harnesses.
	Stats Stats
}

// Open binds the listen socket, builds the queues, and starts the
// receive loop. The caller must Close the port to settle buffer
// accounting.
func Open(cfg Config) (*Port, error) {
	p, err := newPort(cfg)
	if err != nil {
		return nil, err
	}
	addr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("netport: listen address: %w", err)
	}
	p.conn, err = net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netport: %w", err)
	}
	if cfg.ReadBuffer > 0 {
		// Best effort: the kernel clamps to rmem_max.
		_ = p.conn.SetReadBuffer(cfg.ReadBuffer)
	}
	if cfg.TxTarget != "" {
		p.txDst, err = net.ResolveUDPAddr("udp", cfg.TxTarget)
		if err != nil {
			p.conn.Close()
			return nil, fmt.Errorf("netport: tx target: %w", err)
		}
	}
	go p.rxLoop()
	return p, nil
}

// newPort builds the socketless core — pool, queues, steering. Tests and
// the fuzz target use it directly to drive the deliver path without a
// kernel in the loop.
func newPort(cfg Config) (*Port, error) {
	if cfg.Queues <= 0 {
		cfg.Queues = 1
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 1024
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = time.Millisecond
	}
	cache := cfg.CacheSize
	if cache <= 0 {
		cache = mempool.DefaultCacheSize
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = cfg.Queues*(cfg.RingSize+2*cache) + 1024
	}
	p := &Port{
		rssKey:   packet.DefaultRSSKey,
		reta:     packet.NewRETA(cfg.Queues, 0),
		pollWait: cfg.PollWait,
		rec:      cfg.Recorder,
		scratch:  make([]byte, MbufSize),
		done:     make(chan struct{}),
		pool: mempool.NewPool(cfg.PoolSize, func() *packet.Packet {
			return &packet.Packet{Data: make([]byte, 0, MbufSize)}
		}),
	}
	p.rxCache = mempool.NewCache(p.pool, cfg.CacheSize)
	for q := 0; q < cfg.Queues; q++ {
		rq := &rxQueue{
			ring:  mempool.NewRing[*packet.Packet](cfg.RingSize),
			ready: make(chan struct{}, 1),
			cache: mempool.NewCache(p.pool, cfg.CacheSize),
			actor: p.rec.Actor("netport/rxq" + strconv.Itoa(q)),
		}
		p.queues = append(p.queues, rq)
	}
	// Watermarks: raise backpressure at 3/4 ring, clear below 1/4. The
	// ring constructor rounds to a power of two, so read it back.
	size := p.queues[0].ring.Capacity()
	p.high = size * 3 / 4
	p.low = size / 4
	return p, nil
}

// Addr reports the bound listen address (nil for a socketless test
// port) — tests bind to ":0" and read the kernel-chosen port here.
func (p *Port) Addr() net.Addr {
	if p.conn == nil {
		return nil
	}
	return p.conn.LocalAddr()
}

// Queues reports the number of receive queues.
func (p *Port) Queues() int { return len(p.queues) }

// rxLoop is the distributor: the single goroutine that owns the socket
// read side and the rx mbuf cache. One iteration = one datagram: take an
// mbuf, let the kernel copy the datagram into it, hand it to deliver.
func (p *Port) rxLoop() {
	defer close(p.done)
	for {
		pkt := p.takeMbuf()
		buf := p.scratch
		if pkt != nil {
			buf = pkt.Data[:MbufSize]
		}
		n, err := p.conn.Read(buf)
		if err != nil {
			if pkt != nil {
				p.putMbuf(pkt)
			}
			if p.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			p.Stats.RxSocketErrors.Inc()
			continue
		}
		if pkt == nil {
			p.shed(&p.Stats.PoolEmpty, DropPoolEmpty, 0)
			continue
		}
		p.deliver(pkt, n)
	}
}

// deliver is the per-datagram ingress path after the kernel copy: parse,
// steer, enqueue-or-shed. It owns pkt (whose first n bytes are the
// datagram) and either hands it to a ring or recycles it. The fuzz
// target drives this function directly.
func (p *Port) deliver(pkt *packet.Packet, n int) {
	if n >= MbufSize {
		// Possibly truncated by the kernel read; reject (see MbufSize).
		p.putMbuf(pkt)
		p.shed(&p.Stats.ParseError, DropParseError, 0)
		return
	}
	pkt.Data = pkt.Data[:n]
	pkt.Reset()
	if err := pkt.Parse(); err != nil {
		p.putMbuf(pkt)
		p.shed(&p.Stats.ParseError, DropParseError, 0)
		return
	}
	hash := pkt.Tuple().RSSHash(p.rssKey)
	q := p.reta.Queue(hash)
	pkt.RxQueue = q
	pkt.RxHash = hash
	rq := p.queues[q]
	if rq.ring.Enqueue(pkt) != nil {
		p.putMbuf(pkt)
		p.shed(&p.Stats.RingFull, DropRingFull, rq.actor)
		return
	}
	p.loopHeld.Add(-1) // ownership moved to the ring
	p.Stats.RxPackets.Inc()
	p.Stats.RxBytes.Add(uint64(n))
	p.Stats.RxDatagrams.Inc()
	if !rq.bp.Load() && rq.ring.Len() >= p.high && rq.bp.CompareAndSwap(false, true) {
		rq.gauge.Set(1)
		p.Stats.Backpressure.Add(1)
	}
	select {
	case rq.ready <- struct{}{}:
	default:
	}
}

// shed accounts one dropped datagram: per-cause counter, the total, and
// a flight-recorder event so drops are visible in a post-mortem dump.
func (p *Port) shed(c *telemetry.Counter, cause uint64, actor telemetry.ActorID) {
	c.Inc()
	p.Stats.RxDatagrams.Inc()
	p.rec.Record(actor, telemetry.EvDrop, cause)
}

// takeMbuf gets a fresh mbuf from the receive cache (nil when the pool
// is exhausted — the caller shed-counts the datagram).
func (p *Port) takeMbuf() *packet.Packet {
	p.rxMu.Lock()
	defer p.rxMu.Unlock()
	pkt, err := p.rxCache.Get()
	if err != nil {
		return nil
	}
	p.loopHeld.Add(1)
	return pkt
}

// putMbuf recycles an mbuf through the receive cache.
func (p *Port) putMbuf(pkt *packet.Packet) {
	p.rxMu.Lock()
	p.rxCache.Put(pkt)
	p.rxMu.Unlock()
	p.loopHeld.Add(-1)
}

// RxBurstQueue fills out with up to len(out) packets from receive queue
// q, returning the count. When the ring is empty it blocks up to
// PollWait for the receive loop's wakeup before returning 0 — so a
// polling worker neither spins hot on an idle wire nor misses a burst
// that lands mid-poll.
func (p *Port) RxBurstQueue(q int, out []*packet.Packet) int {
	rq := p.queue(q)
	n := rq.ring.DequeueBurst(out)
	if n == 0 && !p.closed.Load() {
		t := time.NewTimer(p.pollWait)
		select {
		case <-rq.ready:
			t.Stop()
		case <-t.C:
		}
		n = rq.ring.DequeueBurst(out)
	}
	if n > 0 && rq.bp.Load() && rq.ring.Len() <= p.low && rq.bp.CompareAndSwap(true, false) {
		rq.gauge.Set(0)
		p.Stats.Backpressure.Add(-1)
	}
	return n
}

// RxBurst polls queue 0 (single-queue convenience, mirroring dpdk.Port).
func (p *Port) RxBurst(out []*packet.Packet) int { return p.RxBurstQueue(0, out) }

// TxBurstQueue transmits pkts from the worker owning queue q — one UDP
// datagram per frame to the configured TxTarget (pure accounting when
// the port is a sink) — and recycles the buffers through the queue's
// local cache, returning the number of datagrams transmitted. A failed
// write counts only TxErrors — never TxPackets/TxBytes, so a dead
// egress socket cannot report full throughput — but still recycles: a
// wire error never leaks an mbuf. Concurrent callers on different
// queues are safe; the kernel serializes socket writes.
func (p *Port) TxBurstQueue(q int, pkts []*packet.Packet) int {
	rq := p.queue(q)
	sent := 0
	for _, pkt := range pkts {
		if pkt == nil {
			continue
		}
		if p.txDst != nil {
			if _, err := p.conn.WriteToUDP(pkt.Data, p.txDst); err != nil {
				p.Stats.TxErrors.Inc()
				continue
			}
		}
		p.Stats.TxPackets.Inc()
		p.Stats.TxBytes.Add(uint64(pkt.Len()))
		sent++
	}
	rq.mu.Lock()
	for _, pkt := range pkts {
		if pkt != nil {
			rq.cache.Put(pkt)
		}
	}
	rq.mu.Unlock()
	return sent
}

// TxBurst transmits from queue 0 (single-queue convenience).
func (p *Port) TxBurst(pkts []*packet.Packet) int { return p.TxBurstQueue(0, pkts) }

// FreeQueue returns packets to queue q's local cache without
// transmitting them (drops).
func (p *Port) FreeQueue(q int, pkts []*packet.Packet) {
	rq := p.queue(q)
	rq.mu.Lock()
	for _, pkt := range pkts {
		if pkt != nil {
			rq.cache.Put(pkt)
		}
	}
	rq.mu.Unlock()
}

// Free returns packets to queue 0's cache (single-queue convenience).
func (p *Port) Free(pkts []*packet.Packet) { p.FreeQueue(0, pkts) }

// Drain consolidates undelivered ring descriptors and the per-queue
// caches back into the shared pool, once the workers have stopped.
// Unlike the simulated port, the receive loop stays live: datagrams
// arriving after Drain land in the rings again, and only Close settles
// the pool for good.
func (p *Port) Drain() {
	for _, rq := range p.queues {
		for {
			pkt, err := rq.ring.Dequeue()
			if err != nil {
				break
			}
			p.pool.Put(pkt)
		}
		rq.mu.Lock()
		rq.cache.Flush()
		rq.mu.Unlock()
	}
}

// Close stops the receive loop, closes the socket, and returns every
// buffer to the pool. After Close, PoolAvailable equals the pool
// capacity unless a caller still holds packets.
func (p *Port) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	var err error
	if p.conn != nil {
		err = p.conn.Close()
		<-p.done // receive loop exits on the closed socket
	}
	p.rxMu.Lock()
	p.rxCache.Flush()
	p.rxMu.Unlock()
	p.Drain()
	return err
}

// PoolAvailable reports free mbufs — in the shared pool, the receive
// cache, every queue's cache, plus the one the receive loop parks across
// its blocking socket read — for leak assertions in tests. Only buffers
// held by in-flight packets (rings and batches) are excluded; the result
// is exact at quiescence and approximate while datagrams are moving.
func (p *Port) PoolAvailable() int {
	n := p.pool.Available() + int(p.loopHeld.Load())
	p.rxMu.Lock()
	n += p.rxCache.Len()
	p.rxMu.Unlock()
	for _, rq := range p.queues {
		rq.mu.Lock()
		n += rq.cache.Len()
		rq.mu.Unlock()
	}
	return n
}

// PoolCapacity reports the mbuf pool's fixed capacity.
func (p *Port) PoolCapacity() int { return p.pool.Capacity() }

// RSSQueue reports which receive queue the port steers a flow to.
func (p *Port) RSSQueue(t packet.FiveTuple) int {
	return p.reta.Queue(t.RSSHash(p.rssKey))
}

// RegisterMetrics exports the port's counters, the per-cause drop
// counters (labelled cause=ring_full|parse_error|pool_empty), the
// backpressure gauges, the mempool, and every queue's ring depth and
// cache on reg. base labels every series; queues add a "queue" label.
func (p *Port) RegisterMetrics(reg *telemetry.Registry, base telemetry.Labels) {
	reg.RegisterCounter("port_rx_datagrams_total", base, &p.Stats.RxDatagrams)
	reg.RegisterCounter("port_rx_packets_total", base, &p.Stats.RxPackets)
	reg.RegisterCounter("port_rx_bytes_total", base, &p.Stats.RxBytes)
	reg.RegisterCounter("port_tx_packets_total", base, &p.Stats.TxPackets)
	reg.RegisterCounter("port_tx_bytes_total", base, &p.Stats.TxBytes)
	reg.RegisterCounter("port_tx_errors_total", base, &p.Stats.TxErrors)
	reg.RegisterCounter("port_rx_socket_errors_total", base, &p.Stats.RxSocketErrors)
	reg.RegisterCounter("port_ingress_drops_total", base.With("cause", "ring_full"), &p.Stats.RingFull)
	reg.RegisterCounter("port_ingress_drops_total", base.With("cause", "parse_error"), &p.Stats.ParseError)
	reg.RegisterCounter("port_ingress_drops_total", base.With("cause", "pool_empty"), &p.Stats.PoolEmpty)
	reg.RegisterGauge("port_rx_backpressure_queues", base, &p.Stats.Backpressure)
	p.pool.RegisterMetrics(reg, base)
	for q, rq := range p.queues {
		rq := rq
		labels := base.With("queue", strconv.Itoa(q))
		reg.RegisterGaugeFunc("port_rx_ring_depth", labels, func() float64 {
			return float64(rq.ring.Len())
		})
		reg.RegisterGauge("port_rx_backpressure", labels, &rq.gauge)
		rq.cache.RegisterMetrics(reg, labels, func() float64 {
			rq.mu.Lock()
			defer rq.mu.Unlock()
			return float64(rq.cache.Len())
		})
	}
}

func (p *Port) queue(q int) *rxQueue {
	if q < 0 || q >= len(p.queues) {
		panic(fmt.Sprintf("netport: queue %d out of range (port has %d)", q, len(p.queues)))
	}
	return p.queues[q]
}
