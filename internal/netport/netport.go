// Package netport is the socket-backed network port: the same
// RxBurst/TxBurst/Free code path as the simulated NIC in internal/dpdk,
// but fed by a real UDP socket, so the bytes crossing the
// protection-domain boundary arrived from outside the process.
//
// The wire format is an overlay: each UDP datagram's payload is one
// complete Ethernet frame (the same Ethernet/IPv4/{TCP,UDP} framing
// packet.Build produces and packet.Parse validates), the way a
// VXLAN-style tunnel or a userspace virtio backend would carry frames.
// Pktgen in this package — and `nf-pipeline -target` — produces that
// format, so one binary can drive another over loopback.
//
// Ingress is batched: each receive loop stages a burst of mbufs from the
// port mempool, lets one recvmmsg copy a whole burst of datagrams into
// them — the only copy on the path; everything after it is by-reference
// ownership transfer — and then parses, steers, and enqueues each frame
// on a bounded ingress ring for a worker to poll. The syscall cost is
// paid once per burst, not once per frame (on non-Linux builds a
// portable fallback reads one datagram per call with identical
// semantics). Egress mirrors it: TxBurstQueue drains a worker's batch
// through one sendmmsg with exact partial-send accounting.
//
// Two fan-out modes decide which ring a frame lands on:
//
//   - Distributor (default, and the only mode off Linux): one socket,
//     one receive loop, software RSS — the frame's inner five-tuple is
//     Toeplitz-hashed and RETA-steered to a queue, exactly like the
//     simulated multi-queue port.
//   - SO_REUSEPORT (Config.ReusePort, Linux): one socket per queue, all
//     bound to the same address, each with its own receive loop feeding
//     its own ring. The kernel hashes the outer flow across the group —
//     RSS fan-out without a software distributor goroutine on the hot
//     path. Flow affinity holds per outer flow, so senders provide
//     source-port entropy (Pktgen.Sockets), the way VXLAN encapsulators
//     derive outer source ports from inner flow hashes.
//
// Overload is shed at the rings, drop-tail, never absorbed unbounded:
//
//   - ring_full: the destination queue's ring is full — the worker is
//     not draining fast enough (the rx_missed of real NICs);
//   - parse_error: the payload is not a well-formed frame (including
//     datagrams at or beyond the mbuf size, which the kernel would have
//     truncated);
//   - pool_empty: no mbuf was free; the datagram is read into a scratch
//     buffer and discarded.
//
// Each cause has its own counter, every shed datagram is recorded in the
// flight recorder, and a high/low-watermark gauge per queue exposes
// backpressure before drops start. Total accounting is exact:
//
//	rx_datagrams == rx_packets + ring_full + parse_error + pool_empty
//
// holds whenever the receive loops are quiescent — every datagram read
// off a socket is either delivered to a ring or counted under exactly
// one cause — which the end-to-end overload test asserts.
package netport

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mempool"
	"repro/internal/packet"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// MbufSize is the fixed buffer size of an mbuf, matching internal/dpdk's
// conventional 2 KiB data room. A datagram that does not fit below this
// size is counted as a parse_error drop: the kernel silently truncates
// reads into a full buffer, so a read of MbufSize bytes cannot be
// distinguished from a truncated larger frame and is rejected.
const MbufSize = 2048

// DefaultBatch is the default burst size for the batched syscalls —
// matching the runners' conventional 32-packet batch, so one recvmmsg
// fills one pipeline batch.
const DefaultBatch = 32

// Drop causes, used as the flight-recorder EvDrop argument so a recorder
// dump shows why ingress shed each datagram.
const (
	DropRingFull uint64 = iota + 1
	DropParseError
	DropPoolEmpty
)

// Stats holds the port's cumulative counters — telemetry cells, written
// on the data path with uncontended atomic adds and readable by a
// metrics scrape at any time.
type Stats struct {
	// RxDatagrams counts every datagram read off a socket, delivered
	// or shed. RxDatagrams == RxPackets + the three drop counters.
	RxDatagrams telemetry.Counter
	// RxBatches counts non-empty batch reads; RxDatagrams/RxBatches is
	// the realized burst occupancy — how many frames each syscall
	// actually carried.
	RxBatches telemetry.Counter
	// RxPackets/RxBytes count frames delivered to an ingress ring.
	RxPackets telemetry.Counter
	RxBytes   telemetry.Counter
	TxPackets telemetry.Counter
	TxBytes   telemetry.Counter
	// TxBatches counts egress batch writes (sendmmsg calls with a tx
	// target configured).
	TxBatches telemetry.Counter
	// TxErrors counts frames the kernel did not accept — failed writes
	// and the drop-tailed remainder of a short batch send. The buffers
	// are recycled regardless; a wire error must not leak an mbuf, and
	// TxPackets + TxErrors always equals the frames offered for egress.
	TxErrors telemetry.Counter
	// RxSocketErrors counts transient socket read errors.
	RxSocketErrors telemetry.Counter

	// Per-cause ingress drop counters; see the package comment.
	RingFull   telemetry.Counter
	ParseError telemetry.Counter
	PoolEmpty  telemetry.Counter

	// Backpressure is the number of receive queues currently above their
	// high watermark (0 = every ring comfortably below; it clears only
	// once a ring drains under the low watermark, so the gauge does not
	// flap at the threshold).
	Backpressure telemetry.Gauge
}

// drops returns the sum of the per-cause drop counters.
func (s *Stats) drops() uint64 {
	return s.RingFull.Load() + s.ParseError.Load() + s.PoolEmpty.Load()
}

// Config parameterizes Open.
type Config struct {
	// Listen is the UDP address to receive on, e.g. "127.0.0.1:0".
	Listen string
	// Queues is the number of receive queues (default 1); flows are
	// RSS-steered across them — by the kernel's REUSEPORT hash or the
	// software RETA — so one worker per queue sees complete flows.
	Queues int
	// BatchSize is the datagram burst one batched syscall moves
	// (default DefaultBatch, clamped to [1, 512]). Receive loops stage
	// this many mbufs per read; TxBurstQueue sends up to this many
	// frames per sendmmsg.
	BatchSize int
	// ReusePort opens one socket per queue in an SO_REUSEPORT group so
	// the kernel fans flows out across the receive loops (Linux only;
	// needs source-port entropy from senders). When unavailable the
	// port falls back to the single-socket software distributor —
	// check ReusePortActive to see which mode is live.
	ReusePort bool
	// PoolSize is the mbuf count (default: enough to fill every ring,
	// cache, and staged burst with 1024 spare for in-flight batches).
	PoolSize int
	// RingSize bounds each queue's ingress ring in datagrams (default
	// 1024, rounded up to a power of two). This is the overload-shedding
	// boundary: when a ring is full, new datagrams for that queue drop.
	RingSize int
	// CacheSize bounds each queue's local mempool cache (default
	// mempool.DefaultCacheSize, clamped to the pool size).
	CacheSize int
	// PollWait is how long RxBurstQueue blocks for traffic when the ring
	// is empty before returning 0 (default 1ms). Runners treat a run of
	// empty polls as end-of-traffic, so PollWait sets their patience.
	PollWait time.Duration
	// TxTarget, when set, is the UDP address transmitted frames are sent
	// to (one datagram per frame, same overlay format as ingress). When
	// empty the port is a sink: TxBurst counts and recycles only.
	TxTarget string
	// ReadBuffer requests SO_RCVBUF bytes on each socket (0 = kernel
	// default). The kernel caps it at net.core.rmem_max.
	ReadBuffer int
	// Recorder, when non-nil, receives an EvDrop event (arg = drop
	// cause) for every shed datagram and backpressure edge events.
	Recorder *telemetry.Recorder
	// Tracer, when non-nil, samples packet traces at ingress: each
	// receive loop arms ~1/N delivered frames (span carried in the
	// mbuf), TxBurstQueue completes them, and every drop path —
	// ring-full shed, FreeQueue, Drain — aborts them, so span
	// accounting balances exactly like mbuf accounting.
	Tracer *trace.Tracer
}

// rxQueue is one receive queue: the bounded ingress ring the receive
// loop fills, a wakeup channel so an idle worker needn't spin at full
// rate, and a local mempool cache recycling the owning worker's
// transmitted/freed buffers. The mutex guards the cache (dpdk.Port keeps
// the same discipline); in the intended one-worker-per-queue deployment
// it is uncontended.
type rxQueue struct {
	ring  *mempool.Ring[*packet.Packet]
	ready chan struct{}
	bp    atomic.Bool     // above high watermark (hysteresis state)
	gauge telemetry.Gauge // 0/1 mirror of bp for the registry

	mu    sync.Mutex
	cache *mempool.Cache[packet.Packet]

	// txbuf stages egress payload slices for WriteBatch; owned by the
	// worker that owns this queue (the TxBurstQueue contract).
	txbuf [][]byte

	actor telemetry.ActorID
}

// rxLoop is one receive loop: the goroutine that owns one socket's read
// side, a private mbuf cache, and the staging arrays one batched read
// fills. In REUSEPORT mode there is one loop per queue (queue >= 0); in
// distributor mode a single loop steers by RETA (queue == -1).
type rxLoop struct {
	conn *net.UDPConn
	bc   batchConn
	// queue pins every datagram this loop reads to one ring; -1 steers
	// by the software RETA instead.
	queue int
	done  chan struct{} // loop exited

	// mu guards cache: the loop is the only Get/Put caller, but
	// PoolAvailable scrapes Len from other goroutines.
	mu    sync.Mutex
	cache *mempool.Cache[packet.Packet]
	// held counts mbufs checked out by this loop — the staged burst
	// parked across the blocking batch read. PoolAvailable adds it back
	// so leak baselines are exact whenever the loop is between batches.
	held atomic.Int64

	// Staging for one batch read: pkts[i] is the mbuf behind bufs[i]
	// for i < staged; beyond that bufs[i] is scratch (pool exhausted —
	// datagrams landing there are read and shed pool_empty, so a dry
	// pool still drains the socket at batch speed).
	pkts    []*packet.Packet
	bufs    [][]byte
	lens    []int
	scratch [][]byte

	// samp is this loop's trace sampler (nil when tracing is off): a
	// loop-owned counter, so per-worker sampling needs no atomics.
	samp *trace.Sampler
}

// Port is a UDP-socket-backed burst port. It satisfies
// netbricks.BurstPort; the pipeline runtime cannot tell it from the
// simulated NIC except by the provenance of the bytes.
type Port struct {
	conns  []*net.UDPConn
	loops  []*rxLoop
	txbcs  []batchConn // egress conn per queue (len 1 = shared socket)
	txDst  *net.UDPAddr
	queues []*rxQueue
	pool   *mempool.Pool[packet.Packet]

	reta      *packet.RETA
	rssKey    packet.RSSKey
	pollWait  time.Duration
	batch     int
	cacheSize int
	high      int // ring depth that raises backpressure
	low       int // ring depth that clears it
	reuse     bool

	rec    *telemetry.Recorder
	tracer *trace.Tracer

	closed atomic.Bool

	// Stats is exported for harnesses.
	Stats Stats
}

// Open binds the listen socket(s), builds the queues, and starts the
// receive loop(s). With Config.ReusePort on a supporting platform it
// binds one socket per queue into an SO_REUSEPORT group; otherwise one
// socket feeds the software distributor. The caller must Close the port
// to settle buffer accounting.
func Open(cfg Config) (*Port, error) {
	p, err := newPort(cfg)
	if err != nil {
		return nil, err
	}
	conns, reuse, err := openSockets(cfg)
	if err != nil {
		return nil, err
	}
	p.conns = conns
	p.reuse = reuse
	if cfg.ReadBuffer > 0 {
		for _, c := range conns {
			// Best effort: the kernel clamps to rmem_max.
			_ = c.SetReadBuffer(cfg.ReadBuffer)
		}
	}
	if cfg.TxTarget != "" {
		p.txDst, err = net.ResolveUDPAddr("udp", cfg.TxTarget)
		if err != nil {
			p.closeConns()
			return nil, fmt.Errorf("netport: tx target: %w", err)
		}
	}
	// One loop per socket: the connless placeholder loop newPort built
	// is replaced by socket-backed loops (pinned per queue in REUSEPORT
	// mode, one RETA-steering distributor otherwise).
	p.loops = p.loops[:0]
	p.txbcs = p.txbcs[:0]
	for i, c := range conns {
		bc, err := newBatchConn(c)
		if err != nil {
			p.closeConns()
			return nil, fmt.Errorf("netport: raw conn: %w", err)
		}
		q := -1
		if reuse {
			q = i
		}
		p.loops = append(p.loops, p.newLoop(c, bc, q))
		p.txbcs = append(p.txbcs, bc)
	}
	for _, l := range p.loops {
		go p.runLoop(l)
	}
	return p, nil
}

// openSockets binds the socket set for cfg: an SO_REUSEPORT group of
// Queues sockets when requested and supported, else one plain socket.
// An unsupported platform falls back silently (the portable contract);
// a mid-group bind failure is a real error.
func openSockets(cfg Config) ([]*net.UDPConn, bool, error) {
	queues := max(cfg.Queues, 1)
	if cfg.ReusePort && queues > 1 && reusePortAvailable {
		first, err := listenReusePort(cfg.Listen)
		if err != nil {
			return nil, false, fmt.Errorf("netport: reuseport listen: %w", err)
		}
		conns := []*net.UDPConn{first}
		// The rest of the group binds the kernel-resolved address, so
		// ":0" works: every socket shares the one chosen port.
		addr := first.LocalAddr().String()
		for q := 1; q < queues; q++ {
			c, err := listenReusePort(addr)
			if err != nil {
				for _, pc := range conns {
					pc.Close()
				}
				return nil, false, fmt.Errorf("netport: reuseport group bind %d: %w", q, err)
			}
			conns = append(conns, c)
		}
		return conns, true, nil
	}
	addr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, false, fmt.Errorf("netport: listen address: %w", err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, false, fmt.Errorf("netport: %w", err)
	}
	return []*net.UDPConn{conn}, false, nil
}

// newPort builds the socketless core — pool, queues, steering, and one
// connless distributor loop. Tests and the fuzz target use it directly
// to drive the deliver path without a kernel in the loop.
func newPort(cfg Config) (*Port, error) {
	if cfg.Queues <= 0 {
		cfg.Queues = 1
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 1024
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = time.Millisecond
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatch
	}
	if cfg.BatchSize > maxStage {
		cfg.BatchSize = maxStage
	}
	cache := cfg.CacheSize
	if cache <= 0 {
		cache = mempool.DefaultCacheSize
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = cfg.Queues*(cfg.RingSize+2*cache+cfg.BatchSize) + 1024
	}
	p := &Port{
		rssKey:   packet.DefaultRSSKey,
		reta:     packet.NewRETA(cfg.Queues, 0),
		pollWait: cfg.PollWait,
		batch:    cfg.BatchSize,
		rec:      cfg.Recorder,
		tracer:   cfg.Tracer,
		pool: mempool.NewPool(cfg.PoolSize, func() *packet.Packet {
			return &packet.Packet{Data: make([]byte, 0, MbufSize)}
		}),
	}
	p.cacheSize = cfg.CacheSize
	for q := 0; q < cfg.Queues; q++ {
		rq := &rxQueue{
			ring:  mempool.NewRing[*packet.Packet](cfg.RingSize),
			ready: make(chan struct{}, 1),
			cache: mempool.NewCache(p.pool, cfg.CacheSize),
			actor: p.rec.Actor("netport/rxq" + strconv.Itoa(q)),
		}
		p.queues = append(p.queues, rq)
	}
	// Watermarks: raise backpressure at 3/4 ring, clear below 1/4. The
	// ring constructor rounds to a power of two, so read it back.
	size := p.queues[0].ring.Capacity()
	p.high = size * 3 / 4
	p.low = size / 4
	// Socketless placeholder loop: inject (tests, fuzzing) stages and
	// delivers through it exactly like a socket-backed loop would.
	p.loops = []*rxLoop{p.newLoop(nil, nil, -1)}
	return p, nil
}

// maxStage caps one staged burst (and therefore BatchSize); one syscall
// cannot carry more than the batchConn's BatchCap anyway.
const maxStage = 512

// newLoop builds one receive loop's state sized to the port's batch.
func (p *Port) newLoop(conn *net.UDPConn, bc batchConn, queue int) *rxLoop {
	b := p.batch
	if bc != nil {
		b = min(b, bc.BatchCap())
	}
	l := &rxLoop{
		conn:    conn,
		bc:      bc,
		queue:   queue,
		done:    make(chan struct{}),
		cache:   mempool.NewCache(p.pool, p.cacheSize),
		pkts:    make([]*packet.Packet, b),
		bufs:    make([][]byte, b),
		lens:    make([]int, b),
		scratch: make([][]byte, b),
		samp:    p.tracer.NewSampler(),
	}
	for i := range l.scratch {
		l.scratch[i] = make([]byte, MbufSize)
	}
	return l
}

// Addr reports the bound listen address (nil for a socketless test
// port) — tests bind to ":0" and read the kernel-chosen port here.
func (p *Port) Addr() net.Addr {
	if len(p.conns) == 0 {
		return nil
	}
	return p.conns[0].LocalAddr()
}

// Queues reports the number of receive queues.
func (p *Port) Queues() int { return len(p.queues) }

// ReusePortActive reports whether the port is running kernel REUSEPORT
// fan-out (one socket per queue) rather than the software distributor.
func (p *Port) ReusePortActive() bool { return p.reuse }

// stage checks out up to one burst of mbufs for a batch read and wires
// the staging arrays: bufs[i] is mbuf-backed for i < staged and scratch
// beyond. It returns the staged mbuf count; want caps the burst (tests
// stage exactly the burst they inject).
func (l *rxLoop) stage(want int) int {
	want = min(want, len(l.pkts))
	staged := 0
	l.mu.Lock()
	for staged < want {
		pkt, err := l.cache.Get()
		if err != nil {
			break
		}
		l.pkts[staged] = pkt
		staged++
	}
	l.mu.Unlock()
	l.held.Add(int64(staged))
	for i := 0; i < want; i++ {
		if i < staged {
			l.bufs[i] = l.pkts[i].Data[:MbufSize]
		} else {
			l.bufs[i] = l.scratch[i]
		}
	}
	return staged
}

// put recycles one mbuf through the loop's cache.
func (l *rxLoop) put(pkt *packet.Packet) {
	l.mu.Lock()
	l.cache.Put(pkt)
	l.mu.Unlock()
	l.held.Add(-1)
}

// putRange recycles the staged-but-unused mbufs pkts[from:to].
func (l *rxLoop) putRange(from, to int) {
	if from >= to {
		return
	}
	l.mu.Lock()
	for i := from; i < to; i++ {
		l.cache.Put(l.pkts[i])
	}
	l.mu.Unlock()
	l.held.Add(int64(from - to))
}

// runLoop is one receive loop: stage a burst of mbufs, let the kernel
// copy a batch of datagrams into them with one call, dispatch each.
func (p *Port) runLoop(l *rxLoop) {
	defer close(l.done)
	for {
		// stage wires every slot: mbuf-backed below staged, scratch
		// beyond — so a dry pool still drains the socket at batch
		// speed and sheds with exact accounting.
		staged := l.stage(len(l.pkts))
		want := len(l.bufs)
		n, err := l.bc.ReadBatch(l.bufs[:want], l.lens[:want])
		if err != nil {
			l.putRange(0, staged)
			if p.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			p.Stats.RxSocketErrors.Inc()
			continue
		}
		p.dispatch(l, n, staged)
	}
}

// dispatch accounts one batch read: datagrams 0..n-1 landed in the
// loop's staged buffers (mbuf-backed below staged, scratch beyond —
// those shed pool_empty), and staged-but-unused mbufs are recycled.
func (p *Port) dispatch(l *rxLoop, n, staged int) {
	if n > 0 {
		p.Stats.RxBatches.Inc()
	}
	for i := 0; i < n; i++ {
		if i < staged {
			p.deliver(l, l.pkts[i], l.lens[i])
		} else {
			p.shed(&p.Stats.PoolEmpty, DropPoolEmpty, 0)
		}
	}
	l.putRange(n, staged)
}

// deliver is the per-datagram ingress path after the kernel copy: parse,
// steer, enqueue-or-shed. It owns pkt (whose first n bytes are the
// datagram) and either hands it to a ring or recycles it.
func (p *Port) deliver(l *rxLoop, pkt *packet.Packet, n int) {
	if n >= MbufSize {
		// Possibly truncated by the kernel read; reject (see MbufSize).
		l.put(pkt)
		p.shed(&p.Stats.ParseError, DropParseError, 0)
		return
	}
	pkt.Data = pkt.Data[:n]
	pkt.Reset()
	if err := pkt.Parse(); err != nil {
		l.put(pkt)
		p.shed(&p.Stats.ParseError, DropParseError, 0)
		return
	}
	hash := pkt.Tuple().RSSHash(p.rssKey)
	q := l.queue
	if q < 0 {
		q = p.reta.Queue(hash)
	}
	pkt.RxQueue = q
	pkt.RxHash = hash
	// Arm the sampled trace while this loop still owns the mbuf — after
	// enqueue a worker may already be stamping it. The untraced path
	// pays one counter increment and branch here, nothing else.
	l.samp.MaybeArm(&pkt.Trace, q)
	rq := p.queues[q]
	if rq.ring.Enqueue(pkt) != nil {
		p.tracer.Abort(&pkt.Trace) // armed span sheds with its mbuf
		l.put(pkt)
		p.shed(&p.Stats.RingFull, DropRingFull, rq.actor)
		return
	}
	l.held.Add(-1) // ownership moved to the ring
	p.Stats.RxPackets.Inc()
	p.Stats.RxBytes.Add(uint64(n))
	p.Stats.RxDatagrams.Inc()
	if !rq.bp.Load() && rq.ring.Len() >= p.high && rq.bp.CompareAndSwap(false, true) {
		rq.gauge.Set(1)
		p.Stats.Backpressure.Add(1)
	}
	select {
	case rq.ready <- struct{}{}:
	default:
	}
}

// shed accounts one dropped datagram: per-cause counter, the total, and
// a flight-recorder event so drops are visible in a post-mortem dump.
func (p *Port) shed(c *telemetry.Counter, cause uint64, actor telemetry.ActorID) {
	c.Inc()
	p.Stats.RxDatagrams.Inc()
	p.rec.Record(actor, telemetry.EvDrop, cause)
}

// RxBurstQueue fills out with up to len(out) packets from receive queue
// q, returning the count. When the ring is empty it blocks up to
// PollWait for the receive loop's wakeup before returning 0 — so a
// polling worker neither spins hot on an idle wire nor misses a burst
// that lands mid-poll.
func (p *Port) RxBurstQueue(q int, out []*packet.Packet) int {
	rq := p.queue(q)
	n := rq.ring.DequeueBurst(out)
	if n == 0 && !p.closed.Load() {
		t := time.NewTimer(p.pollWait)
		select {
		case <-rq.ready:
			t.Stop()
		case <-t.C:
		}
		n = rq.ring.DequeueBurst(out)
	}
	if n > 0 && rq.bp.Load() && rq.ring.Len() <= p.low && rq.bp.CompareAndSwap(true, false) {
		rq.gauge.Set(0)
		p.Stats.Backpressure.Add(-1)
	}
	return n
}

// RxBurst polls queue 0 (single-queue convenience, mirroring dpdk.Port).
func (p *Port) RxBurst(out []*packet.Packet) int { return p.RxBurstQueue(0, out) }

// TxBurstQueue transmits pkts from the worker owning queue q — one
// batched send of UDP datagrams, one per frame, to the configured
// TxTarget (pure accounting when the port is a sink) — and recycles the
// buffers through the queue's local cache, returning the number of
// datagrams the kernel accepted.
//
// Accounting is exact under partial sends: a batch the kernel cuts short
// at k<n frames counts exactly k in TxPackets/TxBytes/sent — the
// unaccepted tail counts TxErrors and is drop-tailed, never silently
// reported as delivered — and all n buffers recycle regardless: a wire
// error never leaks an mbuf. In REUSEPORT mode each queue transmits
// through its own socket; concurrent callers on different queues are
// safe in every mode.
func (p *Port) TxBurstQueue(q int, pkts []*packet.Packet) int {
	rq := p.queue(q)
	sent := 0
	var bytes uint64
	if p.txDst == nil {
		// Sink mode: every frame "transmits".
		for _, pkt := range pkts {
			if pkt != nil {
				sent++
				bytes += uint64(pkt.Len())
			}
		}
	} else {
		payloads := rq.txbuf[:0]
		for _, pkt := range pkts {
			if pkt != nil {
				payloads = append(payloads, pkt.Data)
			}
		}
		rq.txbuf = payloads[:0] // keep the grown backing array
		bc := p.txbcs[min(q, len(p.txbcs)-1)]
		for off := 0; off < len(payloads); {
			burst := payloads[off:min(off+p.batch, len(payloads))]
			k, err := bc.WriteBatch(burst, p.txDst)
			p.Stats.TxBatches.Inc()
			for i := 0; i < k; i++ {
				bytes += uint64(len(burst[i]))
			}
			sent += k
			off += k
			if err != nil || k < len(burst) {
				// Short or failed send: the rest of the burst is
				// drop-tailed, counted, and recycled below.
				p.Stats.TxErrors.Add(uint64(len(payloads) - off))
				break
			}
		}
	}
	p.Stats.TxPackets.Add(uint64(sent))
	p.Stats.TxBytes.Add(bytes)
	if p.tracer != nil {
		// Complete sampled traces at TX, while the worker still owns the
		// buffers: stamps StageTx, feeds the per-stage histograms, and
		// publishes the full vector to /debug/traces.
		for _, pkt := range pkts {
			if pkt != nil && pkt.Trace.Armed() {
				p.tracer.Complete(&pkt.Trace)
			}
		}
	}
	rq.mu.Lock()
	for _, pkt := range pkts {
		if pkt != nil {
			rq.cache.Put(pkt)
		}
	}
	rq.mu.Unlock()
	return sent
}

// TxBurst transmits from queue 0 (single-queue convenience).
func (p *Port) TxBurst(pkts []*packet.Packet) int { return p.TxBurstQueue(0, pkts) }

// FreeQueue returns packets to queue q's local cache without
// transmitting them (drops).
func (p *Port) FreeQueue(q int, pkts []*packet.Packet) {
	rq := p.queue(q)
	if p.tracer != nil {
		// A freed (not transmitted) packet ends any sampled trace as a
		// truncated span: NF drops, faulted batches, and reclaimed
		// mailbox payloads all surface as EvTraceAbort, never a leak.
		for _, pkt := range pkts {
			if pkt != nil && pkt.Trace.Armed() {
				p.tracer.Abort(&pkt.Trace)
			}
		}
	}
	rq.mu.Lock()
	for _, pkt := range pkts {
		if pkt != nil {
			rq.cache.Put(pkt)
		}
	}
	rq.mu.Unlock()
}

// Free returns packets to queue 0's cache (single-queue convenience).
func (p *Port) Free(pkts []*packet.Packet) { p.FreeQueue(0, pkts) }

// Drain consolidates undelivered ring descriptors and the per-queue
// caches back into the shared pool, once the workers have stopped.
// Unlike the simulated port, the receive loops stay live: datagrams
// arriving after Drain land in the rings again, and only Close settles
// the pool for good.
func (p *Port) Drain() {
	for _, rq := range p.queues {
		for {
			pkt, err := rq.ring.Dequeue()
			if err != nil {
				break
			}
			p.tracer.Abort(&pkt.Trace) // undelivered at shutdown: truncated span
			p.pool.Put(pkt)
		}
		rq.mu.Lock()
		rq.cache.Flush()
		rq.mu.Unlock()
	}
}

// Close stops the receive loops, closes the sockets, and returns every
// buffer to the pool. After Close, PoolAvailable equals the pool
// capacity unless a caller still holds packets.
func (p *Port) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	var err error
	for _, c := range p.conns {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	for _, l := range p.loops {
		if l.conn != nil {
			<-l.done // receive loop exits on the closed socket
		}
		l.mu.Lock()
		l.cache.Flush()
		l.mu.Unlock()
	}
	p.Drain()
	return err
}

// closeConns tears down a half-built Open.
func (p *Port) closeConns() {
	for _, c := range p.conns {
		c.Close()
	}
}

// PoolAvailable reports free mbufs — in the shared pool, every receive
// loop's cache and staged burst, and every queue's cache — for leak
// assertions in tests. Only buffers held by in-flight packets (rings
// and batches) are excluded; the result is exact at quiescence and
// approximate while datagrams are moving.
func (p *Port) PoolAvailable() int {
	n := p.pool.Available()
	for _, l := range p.loops {
		n += int(l.held.Load())
		l.mu.Lock()
		n += l.cache.Len()
		l.mu.Unlock()
	}
	for _, rq := range p.queues {
		rq.mu.Lock()
		n += rq.cache.Len()
		rq.mu.Unlock()
	}
	return n
}

// PoolCapacity reports the mbuf pool's fixed capacity.
func (p *Port) PoolCapacity() int { return p.pool.Capacity() }

// RSSQueue reports which receive queue the software RETA steers a flow
// to (the distributor path; kernel REUSEPORT fan-out hashes the outer
// flow instead).
func (p *Port) RSSQueue(t packet.FiveTuple) int {
	return p.reta.Queue(t.RSSHash(p.rssKey))
}

// RegisterMetrics exports the port's counters, the per-cause drop
// counters (labelled cause=ring_full|parse_error|pool_empty), the
// backpressure gauges, the mempool, and every queue's ring depth and
// cache on reg. base labels every series; queues add a "queue" label.
func (p *Port) RegisterMetrics(reg *telemetry.Registry, base telemetry.Labels) {
	reg.RegisterCounter("port_rx_datagrams_total", base, &p.Stats.RxDatagrams)
	reg.RegisterCounter("port_rx_batches_total", base, &p.Stats.RxBatches)
	reg.RegisterCounter("port_rx_packets_total", base, &p.Stats.RxPackets)
	reg.RegisterCounter("port_rx_bytes_total", base, &p.Stats.RxBytes)
	reg.RegisterCounter("port_tx_packets_total", base, &p.Stats.TxPackets)
	reg.RegisterCounter("port_tx_bytes_total", base, &p.Stats.TxBytes)
	reg.RegisterCounter("port_tx_batches_total", base, &p.Stats.TxBatches)
	reg.RegisterCounter("port_tx_errors_total", base, &p.Stats.TxErrors)
	reg.RegisterCounter("port_rx_socket_errors_total", base, &p.Stats.RxSocketErrors)
	reg.RegisterCounter("port_ingress_drops_total", base.With("cause", "ring_full"), &p.Stats.RingFull)
	reg.RegisterCounter("port_ingress_drops_total", base.With("cause", "parse_error"), &p.Stats.ParseError)
	reg.RegisterCounter("port_ingress_drops_total", base.With("cause", "pool_empty"), &p.Stats.PoolEmpty)
	reg.RegisterGauge("port_rx_backpressure_queues", base, &p.Stats.Backpressure)
	p.pool.RegisterMetrics(reg, base)
	for q, rq := range p.queues {
		rq := rq
		labels := base.With("queue", strconv.Itoa(q))
		reg.RegisterGaugeFunc("port_rx_ring_depth", labels, func() float64 {
			return float64(rq.ring.Len())
		})
		reg.RegisterGauge("port_rx_backpressure", labels, &rq.gauge)
		rq.cache.RegisterMetrics(reg, labels, func() float64 {
			rq.mu.Lock()
			defer rq.mu.Unlock()
			return float64(rq.cache.Len())
		})
	}
}

func (p *Port) queue(q int) *rxQueue {
	if q < 0 || q >= len(p.queues) {
		panic(fmt.Sprintf("netport: queue %d out of range (port has %d)", q, len(p.queues)))
	}
	return p.queues[q]
}
