//go:build linux && (amd64 || arm64)

// Linux fast path: recvmmsg/sendmmsg move a whole burst of datagrams per
// syscall, and SO_REUSEPORT lets the kernel hash incoming flows across a
// group of per-worker sockets — RSS fan-out done by the kernel, with no
// software distributor on the hot path.
//
// The stdlib syscall package on amd64 predates sendmmsg and
// SO_REUSEPORT, so the numbers are declared locally (batch_sysnum_*.go)
// rather than pulled from an external module; everything here is plain
// stdlib. The build is gated to the two 64-bit layouts whose
// syscall.Msghdr matches the kernel mmsghdr padding below; other
// GOOS/GOARCH combinations take the portable fallback in batch_other.go.
package netport

import (
	"context"
	"net"
	"sync"
	"syscall"
	"unsafe"
)

// reusePortAvailable reports whether Open can build an SO_REUSEPORT
// socket group on this platform.
const reusePortAvailable = true

// soReusePort is SO_REUSEPORT (0xf on every non-MIPS Linux arch; the
// frozen syscall package only exports it for some of them).
const soReusePort = 0xf

// msgDontwait keeps the batched syscalls non-blocking; blocking is the
// runtime netpoller's job (RawConn parks the goroutine until the socket
// is ready, exactly as net.UDPConn.Read would).
const msgDontwait = syscall.MSG_DONTWAIT

// mmsghdr mirrors struct mmsghdr: a msghdr plus the per-message byte
// count the kernel deposits on receive. On amd64/arm64 the struct is
// padded to 8-byte alignment.
type mmsghdr struct {
	hdr syscall.Msghdr
	ln  uint32
	_   [4]byte
}

// linuxConn implements batchConn over recvmmsg/sendmmsg on the socket's
// raw fd. The rx staging arrays are owned by the single receive loop
// that reads the conn; the tx staging is shared by every worker that
// transmits through this conn (one socket serves all queues in
// distributor mode) and is guarded by txMu — the kernel would serialize
// concurrent sendmmsg on one socket anyway.
type linuxConn struct {
	rc syscall.RawConn

	rxHdrs []mmsghdr
	rxIovs []syscall.Iovec

	txMu   sync.Mutex
	txHdrs []mmsghdr
	txIovs []syscall.Iovec
	txSa4  syscall.RawSockaddrInet4
	txSa6  syscall.RawSockaddrInet6
}

// maxBatch bounds one syscall's burst; recvmmsg's vlen is capped at
// UIO_MAXIOV (1024) by the kernel, but bursts are sized to the mempool
// cache anyway — 512 already means half a ring per syscall.
const maxBatch = 512

func newBatchConn(c *net.UDPConn) (batchConn, error) {
	rc, err := c.SyscallConn()
	if err != nil {
		return nil, err
	}
	return &linuxConn{rc: rc}, nil
}

func (lc *linuxConn) BatchCap() int { return maxBatch }

func (lc *linuxConn) ReadBatch(bufs [][]byte, lens []int) (int, error) {
	vlen := min(len(bufs), maxBatch)
	if vlen == 0 {
		return 0, nil
	}
	if cap(lc.rxHdrs) < vlen {
		lc.rxHdrs = make([]mmsghdr, vlen)
		lc.rxIovs = make([]syscall.Iovec, vlen)
	}
	hdrs, iovs := lc.rxHdrs[:vlen], lc.rxIovs[:vlen]
	for i := 0; i < vlen; i++ {
		iovs[i].Base = &bufs[i][0]
		iovs[i].SetLen(len(bufs[i]))
		hdrs[i] = mmsghdr{}
		hdrs[i].hdr.Iov = &iovs[i]
		hdrs[i].hdr.Iovlen = 1
	}
	var n int
	var errno syscall.Errno
	err := lc.rc.Read(func(fd uintptr) bool {
		r, _, e := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&hdrs[0])), uintptr(vlen), msgDontwait, 0, 0)
		if e == syscall.EAGAIN {
			return false // park on the netpoller until readable
		}
		n, errno = int(r), e
		return true
	})
	if err != nil {
		return 0, err
	}
	if errno != 0 {
		return 0, errno
	}
	for i := 0; i < n; i++ {
		lens[i] = int(hdrs[i].ln)
	}
	return n, nil
}

func (lc *linuxConn) WriteBatch(payloads [][]byte, dst *net.UDPAddr) (int, error) {
	vlen := min(len(payloads), maxBatch)
	if vlen == 0 {
		return 0, nil
	}
	lc.txMu.Lock()
	defer lc.txMu.Unlock()
	if cap(lc.txHdrs) < vlen {
		lc.txHdrs = make([]mmsghdr, vlen)
		lc.txIovs = make([]syscall.Iovec, vlen)
	}
	hdrs, iovs := lc.txHdrs[:vlen], lc.txIovs[:vlen]
	var name *byte
	var namelen uint32
	if dst != nil {
		name, namelen = lc.sockaddr(dst)
	}
	for i := 0; i < vlen; i++ {
		iovs[i].Base = &payloads[i][0]
		iovs[i].SetLen(len(payloads[i]))
		hdrs[i] = mmsghdr{}
		hdrs[i].hdr.Iov = &iovs[i]
		hdrs[i].hdr.Iovlen = 1
		hdrs[i].hdr.Name = name
		hdrs[i].hdr.Namelen = namelen
	}
	var n int
	var errno syscall.Errno
	err := lc.rc.Write(func(fd uintptr) bool {
		r, _, e := syscall.Syscall6(sysSendmmsg, fd,
			uintptr(unsafe.Pointer(&hdrs[0])), uintptr(vlen), msgDontwait, 0, 0)
		if e == syscall.EAGAIN {
			return false // park until writable, then retry
		}
		n, errno = int(r), e
		return true
	})
	if err != nil {
		return 0, err
	}
	if errno != 0 {
		return 0, errno
	}
	return n, nil
}

// sockaddr encodes dst into the conn's raw sockaddr scratch (txMu held).
func (lc *linuxConn) sockaddr(dst *net.UDPAddr) (*byte, uint32) {
	if ip4 := dst.IP.To4(); ip4 != nil {
		lc.txSa4 = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
		lc.txSa4.Port = uint16(dst.Port>>8) | uint16(dst.Port&0xff)<<8
		copy(lc.txSa4.Addr[:], ip4)
		return (*byte)(unsafe.Pointer(&lc.txSa4)), syscall.SizeofSockaddrInet4
	}
	lc.txSa6 = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
	lc.txSa6.Port = uint16(dst.Port>>8) | uint16(dst.Port&0xff)<<8
	copy(lc.txSa6.Addr[:], dst.IP.To16())
	return (*byte)(unsafe.Pointer(&lc.txSa6)), syscall.SizeofSockaddrInet6
}

// listenReusePort binds a UDP socket with SO_REUSEPORT set before bind,
// so a group of sockets can share one port and the kernel hashes flows
// across them.
func listenReusePort(address string) (*net.UDPConn, error) {
	var soErr error
	lc := net.ListenConfig{Control: func(_, _ string, c syscall.RawConn) error {
		if err := c.Control(func(fd uintptr) {
			soErr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
		}); err != nil {
			return err
		}
		return soErr
	}}
	pc, err := lc.ListenPacket(context.Background(), "udp", address)
	if err != nil {
		return nil, err
	}
	return pc.(*net.UDPConn), nil
}
