// Package leakcheck asserts buffer-pool conservation in tests: every
// mbuf a port hands out must be back in its pool (or a queue cache) by
// the time the test ends. Runners that lose packets — to faults, drops,
// or sharded-worker shutdown — must still return every buffer, or the
// simulated NIC would exhaust its pool under sustained traffic exactly
// like a leaking DPDK application.
//
// Usage, at the top of any test that allocates from a port or pool:
//
//	port := dpdk.NewPort(...)
//	leakcheck.Pool(t, "port", port.PoolAvailable)
//
// The assertion runs in t.Cleanup, after the body and any deferred
// drains.
package leakcheck

import (
	"reflect"
	"testing"
)

// Pool records avail()'s current value and, when the test ends, fails it
// if the value has not returned to that baseline. name labels the pool
// in the failure message.
func Pool(t testing.TB, name string, avail func() int) {
	t.Helper()
	initial := avail()
	t.Cleanup(func() {
		if got := avail(); got != initial {
			t.Errorf("leakcheck: %s: %d buffers available at test end, want %d (leaked %d)",
				name, got, initial, initial-got)
		}
	})
}

// NoPointers fails the test if v's type can reach a pointer — through
// struct fields, arrays, or embedded types. It is the static half of the
// pool-conservation argument for always-on instrumentation: a telemetry
// cell or flight-recorder slot whose type cannot hold a pointer can
// never pin a linear.Owned payload (or anything else) against the GC,
// no matter what the runtime records into it.
func NoPointers(t testing.TB, name string, v any) {
	t.Helper()
	typ := reflect.TypeOf(v)
	if typ == nil {
		t.Fatalf("leakcheck: %s: nil interface has no type", name)
		return
	}
	if path := pointerPath(typ, name, map[reflect.Type]bool{}); path != "" {
		t.Errorf("leakcheck: %s: pointer-bearing field at %s — this type can pin heap objects",
			name, path)
	}
}

// pointerPath returns the path to the first pointer-bearing leaf of t,
// or "" when the type is pointer-free.
func pointerPath(t reflect.Type, path string, seen map[reflect.Type]bool) string {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Uintptr, reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128:
		return ""
	case reflect.Array:
		return pointerPath(t.Elem(), path+"[]", seen)
	case reflect.Struct:
		if seen[t] {
			return ""
		}
		seen[t] = true
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if p := pointerPath(f.Type, path+"."+f.Name, seen); p != "" {
				return p
			}
		}
		return ""
	default:
		// Ptr, Slice, Map, Chan, String, Interface, Func, UnsafePointer.
		return path + " (" + t.Kind().String() + ")"
	}
}
