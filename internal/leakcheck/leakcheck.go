// Package leakcheck asserts buffer-pool conservation in tests: every
// mbuf a port hands out must be back in its pool (or a queue cache) by
// the time the test ends. Runners that lose packets — to faults, drops,
// or sharded-worker shutdown — must still return every buffer, or the
// simulated NIC would exhaust its pool under sustained traffic exactly
// like a leaking DPDK application.
//
// Usage, at the top of any test that allocates from a port or pool:
//
//	port := dpdk.NewPort(...)
//	leakcheck.Pool(t, "port", port.PoolAvailable)
//
// The assertion runs in t.Cleanup, after the body and any deferred
// drains.
package leakcheck

import "testing"

// Pool records avail()'s current value and, when the test ends, fails it
// if the value has not returned to that baseline. name labels the pool
// in the failure message.
func Pool(t testing.TB, name string, avail func() int) {
	t.Helper()
	initial := avail()
	t.Cleanup(func() {
		if got := avail(); got != initial {
			t.Errorf("leakcheck: %s: %d buffers available at test end, want %d (leaked %d)",
				name, got, initial, initial-got)
		}
	})
}
