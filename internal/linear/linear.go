// Package linear provides a runtime-enforced linear (affine) ownership
// model for Go values.
//
// The paper's mechanisms rest on Rust's compile-time guarantee that every
// live object has a unique owner: passing a value moves it, borrows are
// scoped and either shared-immutable or exclusive-mutable, and aliasing is
// only possible through explicit reference-counted wrappers (Rc/Arc).
//
// Go has no linear types, so this package enforces the same discipline
// dynamically: every Owned[T] handle carries a generation stamp, moves
// invalidate the previous handle, and borrows are tracked with reader/
// writer counts. A violation that the Rust compiler would reject at
// compile time (use-after-move, mutable aliasing, drop-while-borrowed)
// surfaces here as a well-typed error — or a panic through the Must*
// variants, which model "the program does not compile, full stop."
//
// The cost of this dynamic enforcement relative to a bare pointer is
// measured by the BenchmarkAblationOwned* benches; the SFI and
// checkpointing layers in this repository rely only on the invariants this
// package maintains, exactly as the paper's mechanisms rely on rustc.
package linear

import (
	"errors"
	"fmt"
	"sync"
)

// Sentinel errors reported for ownership-discipline violations. These are
// the dynamic analogues of rustc error codes (E0382 use of moved value,
// E0502 conflicting borrows, and so on).
var (
	// ErrMoved reports a use of a handle whose value was moved away.
	ErrMoved = errors.New("linear: use of moved value")
	// ErrDropped reports a use of a handle whose value was dropped.
	ErrDropped = errors.New("linear: use of dropped value")
	// ErrBorrowed reports a move, drop, or exclusive borrow attempted
	// while borrows are outstanding.
	ErrBorrowed = errors.New("linear: value is borrowed")
	// ErrMutBorrowed reports an access attempted while an exclusive
	// borrow is outstanding.
	ErrMutBorrowed = errors.New("linear: value is mutably borrowed")
	// ErrReleased reports a double release of a borrow guard.
	ErrReleased = errors.New("linear: borrow already released")
	// ErrLive reports a Renew of a cell that still holds a live value;
	// the value must be consumed (Into) or dropped first.
	ErrLive = errors.New("linear: cell still holds a live value")
)

// ViolationError wraps a sentinel error with the operation that failed.
// Use errors.Is to match the underlying sentinel.
type ViolationError struct {
	Op  string // the operation attempted, e.g. "Owned.BorrowMut"
	Err error  // one of the sentinel errors above
}

func (e *ViolationError) Error() string { return e.Op + ": " + e.Err.Error() }

// Unwrap returns the sentinel cause.
func (e *ViolationError) Unwrap() error { return e.Err }

func violation(op string, err error) error { return &ViolationError{Op: op, Err: err} }

// cellState describes the lifecycle of the value inside a cell.
type cellState uint8

const (
	stateLive cellState = iota
	stateMoved
	stateDropped
)

func (s cellState) err() error {
	switch s {
	case stateMoved:
		return ErrMoved
	case stateDropped:
		return ErrDropped
	default:
		return nil
	}
}

// cell is the shared storage behind an Owned handle. The mutex keeps the
// state machine consistent across goroutines; the fast path is a single
// uncontended lock/unlock.
type cell[T any] struct {
	mu      sync.Mutex
	val     T
	state   cellState
	gen     uint64 // current handle generation; stale handles are "moved"
	readers int    // outstanding shared borrows
	writer  bool   // outstanding exclusive borrow
}

// Owned is a linearly owned value of type T. The zero Owned is invalid;
// construct one with New. Owned handles are small and may be copied, but
// only the handle produced by the most recent New or Move is live — uses
// of earlier copies fail with ErrMoved, which is how this package detects
// the aliasing bugs that rustc rejects statically.
type Owned[T any] struct {
	c   *cell[T]
	gen uint64
}

// New creates a linearly owned value.
func New[T any](v T) Owned[T] {
	return Owned[T]{c: &cell[T]{val: v, state: stateLive, gen: 1}, gen: 1}
}

// check validates the handle against the cell under c.mu.
func (o Owned[T]) check(op string) error {
	if o.c == nil {
		return violation(op, ErrDropped)
	}
	if o.gen != o.c.gen {
		return violation(op, ErrMoved)
	}
	if err := o.c.state.err(); err != nil {
		return violation(op, err)
	}
	return nil
}

// Move transfers ownership to a fresh handle and invalidates the receiver
// (and every copy of it). This models passing a value by move in Rust:
// the sender retains no access. Move fails while borrows are outstanding.
func (o Owned[T]) Move() (Owned[T], error) {
	const op = "Owned.Move"
	if o.c == nil {
		return Owned[T]{}, violation(op, ErrDropped)
	}
	o.c.mu.Lock()
	defer o.c.mu.Unlock()
	if err := o.check(op); err != nil {
		return Owned[T]{}, err
	}
	if o.c.readers > 0 || o.c.writer {
		return Owned[T]{}, violation(op, ErrBorrowed)
	}
	o.c.gen++
	return Owned[T]{c: o.c, gen: o.c.gen}, nil
}

// MustMove is Move but panics on violation, modeling a compile error.
func (o Owned[T]) MustMove() Owned[T] {
	n, err := o.Move()
	if err != nil {
		panic(err)
	}
	return n
}

// Into consumes the value and returns it, ending the linear regime for it.
// It is the analogue of moving out of the wrapper (Rust's into_inner).
func (o Owned[T]) Into() (T, error) {
	const op = "Owned.Into"
	var zero T
	if o.c == nil {
		return zero, violation(op, ErrDropped)
	}
	o.c.mu.Lock()
	defer o.c.mu.Unlock()
	if err := o.check(op); err != nil {
		return zero, err
	}
	if o.c.readers > 0 || o.c.writer {
		return zero, violation(op, ErrBorrowed)
	}
	o.c.state = stateMoved
	v := o.c.val
	var z T
	o.c.val = z
	return v, nil
}

// MustInto is Into but panics on violation.
func (o Owned[T]) MustInto() T {
	v, err := o.Into()
	if err != nil {
		panic(err)
	}
	return v
}

// Drop destroys the value. In Rust this runs when the binding leaves
// scope; here it is explicit. Dropping while borrowed is a violation.
func (o Owned[T]) Drop() error {
	const op = "Owned.Drop"
	if o.c == nil {
		return violation(op, ErrDropped)
	}
	o.c.mu.Lock()
	defer o.c.mu.Unlock()
	if err := o.check(op); err != nil {
		return err
	}
	if o.c.readers > 0 || o.c.writer {
		return violation(op, ErrBorrowed)
	}
	o.c.state = stateDropped
	var z T
	o.c.val = z
	return nil
}

// Valid reports whether the handle is currently live (not moved, not
// dropped). It never mutates state.
func (o Owned[T]) Valid() bool {
	if o.c == nil {
		return false
	}
	o.c.mu.Lock()
	defer o.c.mu.Unlock()
	return o.gen == o.c.gen && o.c.state == stateLive
}

// Borrow takes a shared (immutable) borrow. Multiple shared borrows may
// coexist; an exclusive borrow excludes them. The returned Ref must be
// Released; failing to release blocks subsequent moves, mirroring how a
// borrow outliving its scope is rejected by rustc.
func (o Owned[T]) Borrow() (*Ref[T], error) {
	const op = "Owned.Borrow"
	if o.c == nil {
		return nil, violation(op, ErrDropped)
	}
	o.c.mu.Lock()
	defer o.c.mu.Unlock()
	if err := o.check(op); err != nil {
		return nil, err
	}
	if o.c.writer {
		return nil, violation(op, ErrMutBorrowed)
	}
	o.c.readers++
	return &Ref[T]{c: o.c}, nil
}

// MustBorrow is Borrow but panics on violation.
func (o Owned[T]) MustBorrow() *Ref[T] {
	r, err := o.Borrow()
	if err != nil {
		panic(err)
	}
	return r
}

// BorrowMut takes an exclusive (mutable) borrow. It fails while any other
// borrow is outstanding.
func (o Owned[T]) BorrowMut() (*RefMut[T], error) {
	const op = "Owned.BorrowMut"
	if o.c == nil {
		return nil, violation(op, ErrDropped)
	}
	o.c.mu.Lock()
	defer o.c.mu.Unlock()
	if err := o.check(op); err != nil {
		return nil, err
	}
	if o.c.readers > 0 {
		return nil, violation(op, ErrBorrowed)
	}
	if o.c.writer {
		return nil, violation(op, ErrMutBorrowed)
	}
	o.c.writer = true
	return &RefMut[T]{c: o.c}, nil
}

// MustBorrowMut is BorrowMut but panics on violation.
func (o Owned[T]) MustBorrowMut() *RefMut[T] {
	r, err := o.BorrowMut()
	if err != nil {
		panic(err)
	}
	return r
}

// With runs fn with a shared borrow of the value, releasing it afterwards.
// Unlike Borrow, no guard object is handed out, so the borrow bookkeeping
// stays on the stack — this is the per-packet path through the mailbox and
// pipeline stages, and it must not allocate.
func (o Owned[T]) With(fn func(T)) error {
	const op = "Owned.With"
	c := o.c
	if c == nil {
		return violation(op, ErrDropped)
	}
	c.mu.Lock()
	if err := o.check(op); err != nil {
		c.mu.Unlock()
		return err
	}
	if c.writer {
		c.mu.Unlock()
		return violation(op, ErrMutBorrowed)
	}
	c.readers++
	v := c.val
	c.mu.Unlock()
	defer releaseShared(c)
	fn(v)
	return nil
}

// releaseShared ends an inline shared borrow taken by With. Kept as a
// named function so the deferred call does not capture a closure.
func releaseShared[T any](c *cell[T]) {
	c.mu.Lock()
	c.readers--
	c.mu.Unlock()
}

// WithMut runs fn with an exclusive borrow of the value. Like With, the
// borrow is tracked inline without allocating a guard.
func (o Owned[T]) WithMut(fn func(*T)) error {
	const op = "Owned.WithMut"
	c := o.c
	if c == nil {
		return violation(op, ErrDropped)
	}
	c.mu.Lock()
	if err := o.check(op); err != nil {
		c.mu.Unlock()
		return err
	}
	if c.readers > 0 {
		c.mu.Unlock()
		return violation(op, ErrBorrowed)
	}
	if c.writer {
		c.mu.Unlock()
		return violation(op, ErrMutBorrowed)
	}
	c.writer = true
	c.mu.Unlock()
	defer releaseExclusive(c)
	fn(&c.val)
	return nil
}

// releaseExclusive ends an inline exclusive borrow taken by WithMut.
func releaseExclusive[T any](c *cell[T]) {
	c.mu.Lock()
	c.writer = false
	c.mu.Unlock()
}

// Renew revives a consumed cell with a fresh value and returns a new live
// handle, reusing the allocation. Only the handle that consumed the value
// (via Into) may renew it, and the generation bump invalidates every older
// copy — so recycling a mailbox cell across batches keeps the full
// use-after-move detection while costing zero allocations per message.
func (o Owned[T]) Renew(v T) (Owned[T], error) {
	const op = "Owned.Renew"
	if o.c == nil {
		return Owned[T]{}, violation(op, ErrDropped)
	}
	o.c.mu.Lock()
	defer o.c.mu.Unlock()
	if o.gen != o.c.gen {
		return Owned[T]{}, violation(op, ErrMoved)
	}
	switch o.c.state {
	case stateLive:
		return Owned[T]{}, violation(op, ErrLive)
	case stateDropped:
		return Owned[T]{}, violation(op, ErrDropped)
	}
	if o.c.readers > 0 || o.c.writer {
		return Owned[T]{}, violation(op, ErrBorrowed)
	}
	o.c.gen++
	o.c.val = v
	o.c.state = stateLive
	return Owned[T]{c: o.c, gen: o.c.gen}, nil
}

// MustRenew is Renew but panics on violation.
func (o Owned[T]) MustRenew(v T) Owned[T] {
	n, err := o.Renew(v)
	if err != nil {
		panic(err)
	}
	return n
}

// String implements fmt.Stringer for diagnostics without borrowing.
func (o Owned[T]) String() string {
	if o.c == nil {
		return "Owned(<nil>)"
	}
	o.c.mu.Lock()
	defer o.c.mu.Unlock()
	if o.gen != o.c.gen {
		return "Owned(<moved>)"
	}
	switch o.c.state {
	case stateMoved:
		return "Owned(<moved>)"
	case stateDropped:
		return "Owned(<dropped>)"
	}
	return fmt.Sprintf("Owned(%v)", o.c.val)
}

// Ref is a shared borrow of an Owned value.
type Ref[T any] struct {
	c        *cell[T]
	released bool
	mu       sync.Mutex
}

// Value returns the borrowed value. The caller must not retain interior
// pointers past Release; this is the single honor-system point of the
// dynamic model (rustc enforces it with lifetimes).
func (r *Ref[T]) Value() T {
	return r.c.val
}

// Release ends the borrow. Releasing twice is a violation.
func (r *Ref[T]) Release() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.released {
		return violation("Ref.Release", ErrReleased)
	}
	r.released = true
	r.c.mu.Lock()
	r.c.readers--
	r.c.mu.Unlock()
	return nil
}

// RefMut is an exclusive borrow of an Owned value.
type RefMut[T any] struct {
	c        *cell[T]
	released bool
	mu       sync.Mutex
}

// Value returns a pointer to the borrowed value for in-place mutation.
func (r *RefMut[T]) Value() *T {
	return &r.c.val
}

// Release ends the borrow. Releasing twice is a violation.
func (r *RefMut[T]) Release() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.released {
		return violation("RefMut.Release", ErrReleased)
	}
	r.released = true
	r.c.mu.Lock()
	r.c.writer = false
	r.c.mu.Unlock()
	return nil
}
