package linear

import (
	"errors"
	"sync/atomic"
)

// ErrChanClosed reports a send on or receive from a closed channel.
var ErrChanClosed = errors.New("linear: channel closed")

// Chan is an ownership-transferring channel: Send moves the value in
// (invalidating the sender's handle before the value is enqueued, exactly
// like passing it to a function — §2: "after passing an object reference
// to a function or channel, the caller loses access"), and Recv hands the
// receiver a fresh owned handle. This is the communication primitive the
// Singularity exchange heap provided with linear types, and what the SFI
// layer's CallMove provides synchronously.
type Chan[T any] struct {
	ch     chan Owned[T]
	closed atomic.Bool
}

// NewChan creates a channel with the given buffer size (0 = synchronous).
func NewChan[T any](buffer int) *Chan[T] {
	return &Chan[T]{ch: make(chan Owned[T], buffer)}
}

// Send moves v into the channel. The caller's handle dies first, so no
// window exists in which both the sender and the channel own the value.
// A send on a closed channel fails without consuming the handle.
func (c *Chan[T]) Send(v Owned[T]) error {
	if c.closed.Load() {
		return ErrChanClosed
	}
	moved, err := v.Move()
	if err != nil {
		return err
	}
	// The racing-close window: re-check after the move so a concurrent
	// Close cannot strand a value in a channel nobody will drain. If we
	// lose, surrender ownership back to the caller's error path by
	// dropping the value (the channel "owns and destroys" it, as a real
	// linear channel's destructor would).
	if c.closed.Load() {
		_ = moved.Drop()
		return ErrChanClosed
	}
	c.ch <- moved
	return nil
}

// Recv receives the next value, blocking until one is available or the
// channel is closed and drained.
func (c *Chan[T]) Recv() (Owned[T], error) {
	v, ok := <-c.ch
	if !ok {
		return Owned[T]{}, ErrChanClosed
	}
	return v, nil
}

// TryRecv receives without blocking; ok=false means no value was ready.
func (c *Chan[T]) TryRecv() (Owned[T], bool, error) {
	select {
	case v, open := <-c.ch:
		if !open {
			return Owned[T]{}, false, ErrChanClosed
		}
		return v, true, nil
	default:
		return Owned[T]{}, false, nil
	}
}

// Close closes the channel. Values already enqueued remain receivable;
// further sends fail. Closing twice is a no-op.
func (c *Chan[T]) Close() {
	if c.closed.CompareAndSwap(false, true) {
		close(c.ch)
	}
}

// Len reports queued values.
func (c *Chan[T]) Len() int { return len(c.ch) }
