package linear_test

import (
	"errors"
	"fmt"

	"repro/internal/linear"
)

// Example mirrors the paper's §2 take/borrow listing: a move consumes the
// binding, a borrow preserves it.
func Example() {
	take := func(v linear.Owned[[]int]) { _ = v.Drop() }
	borrow := func(v *linear.Ref[[]int]) { _ = v.Value() }

	v1 := linear.New([]int{1, 2, 3})
	v2 := linear.New([]int{1, 2, 3})

	moved, _ := v1.Move()
	take(moved)
	_, err := v1.Borrow()
	fmt.Println("v1 after take:", errors.Is(err, linear.ErrMoved))

	r := v2.MustBorrow()
	borrow(r)
	_ = r.Release()
	fmt.Println("v2 after borrow:", v2.Valid())
	// Output:
	// v1 after take: true
	// v2 after borrow: true
}

// ExampleRc shows the sanctioned aliasing escape hatch with weak handles,
// the machinery the SFI reference tables are built from.
func ExampleRc() {
	rc := linear.NewRc("shared config")
	weak := rc.Downgrade()

	if s, ok := weak.Upgrade(); ok {
		fmt.Println("upgraded:", s.Get())
		_ = s.Drop()
	}
	_ = rc.Drop() // last strong handle: the value dies
	_, ok := weak.Upgrade()
	fmt.Println("upgrade after drop:", ok)
	// Output:
	// upgraded: shared config
	// upgrade after drop: false
}

// ExampleChan demonstrates ownership transfer through a channel: the
// sender's handle dies at Send, as if passed to a function.
func ExampleChan() {
	ch := linear.NewChan[string](1)
	msg := linear.New("exclusive payload")
	_ = ch.Send(msg)
	_, err := msg.Borrow()
	fmt.Println("sender access:", !errors.Is(err, linear.ErrMoved))

	got, _ := ch.Recv()
	fmt.Println("receiver got:", got.MustInto())
	// Output:
	// sender access: false
	// receiver got: exclusive payload
}
