package linear

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewAndBorrow(t *testing.T) {
	o := New(42)
	r, err := o.Borrow()
	if err != nil {
		t.Fatalf("Borrow: %v", err)
	}
	if got := r.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	if err := r.Release(); err != nil {
		t.Fatalf("Release: %v", err)
	}
}

func TestMoveInvalidatesOldHandle(t *testing.T) {
	// This is the paper's take(v1) example: after the move, the original
	// binding is consumed and any use is an error.
	v1 := New([]int{1, 2, 3})
	v2, err := v1.Move()
	if err != nil {
		t.Fatalf("Move: %v", err)
	}
	if _, err := v1.Borrow(); !errors.Is(err, ErrMoved) {
		t.Fatalf("Borrow after move: err = %v, want ErrMoved", err)
	}
	if _, err := v1.Move(); !errors.Is(err, ErrMoved) {
		t.Fatalf("Move after move: err = %v, want ErrMoved", err)
	}
	if err := v1.Drop(); !errors.Is(err, ErrMoved) {
		t.Fatalf("Drop after move: err = %v, want ErrMoved", err)
	}
	// The new handle is fully usable.
	if err := v2.With(func(s []int) {
		if len(s) != 3 {
			t.Errorf("len = %d, want 3", len(s))
		}
	}); err != nil {
		t.Fatalf("With on moved-to handle: %v", err)
	}
}

func TestBorrowPreservesBinding(t *testing.T) {
	// The paper's borrow(&v2) example: borrowing does not consume.
	v2 := New([]int{1, 2, 3})
	r := v2.MustBorrow()
	_ = r.Value()
	if err := r.Release(); err != nil {
		t.Fatal(err)
	}
	// Still usable afterwards.
	if !v2.Valid() {
		t.Fatal("binding consumed by borrow")
	}
	if _, err := v2.Move(); err != nil {
		t.Fatalf("Move after released borrow: %v", err)
	}
}

func TestSharedBorrowsCoexist(t *testing.T) {
	o := New("x")
	a := o.MustBorrow()
	b := o.MustBorrow()
	if a.Value() != "x" || b.Value() != "x" {
		t.Fatal("shared borrows see different values")
	}
	if _, err := o.BorrowMut(); !errors.Is(err, ErrBorrowed) {
		t.Fatalf("BorrowMut with readers: err = %v, want ErrBorrowed", err)
	}
	_ = a.Release()
	if _, err := o.BorrowMut(); !errors.Is(err, ErrBorrowed) {
		t.Fatalf("BorrowMut with one reader left: err = %v", err)
	}
	_ = b.Release()
	m, err := o.BorrowMut()
	if err != nil {
		t.Fatalf("BorrowMut after releases: %v", err)
	}
	*m.Value() = "y"
	_ = m.Release()
	o.With(func(s string) {
		if s != "y" {
			t.Fatalf("value = %q, want y", s)
		}
	})
}

func TestExclusiveBorrowExcludes(t *testing.T) {
	o := New(1)
	m := o.MustBorrowMut()
	if _, err := o.Borrow(); !errors.Is(err, ErrMutBorrowed) {
		t.Fatalf("Borrow during mut: err = %v, want ErrMutBorrowed", err)
	}
	if _, err := o.BorrowMut(); !errors.Is(err, ErrMutBorrowed) {
		t.Fatalf("second BorrowMut: err = %v, want ErrMutBorrowed", err)
	}
	if _, err := o.Move(); !errors.Is(err, ErrBorrowed) {
		t.Fatalf("Move during mut: err = %v, want ErrBorrowed", err)
	}
	_ = m.Release()
	if _, err := o.Borrow(); err != nil {
		t.Fatalf("Borrow after release: %v", err)
	}
}

func TestMoveWhileBorrowedFails(t *testing.T) {
	o := New(7)
	r := o.MustBorrow()
	if _, err := o.Move(); !errors.Is(err, ErrBorrowed) {
		t.Fatalf("Move while borrowed: err = %v, want ErrBorrowed", err)
	}
	if err := o.Drop(); !errors.Is(err, ErrBorrowed) {
		t.Fatalf("Drop while borrowed: err = %v, want ErrBorrowed", err)
	}
	if _, err := o.Into(); !errors.Is(err, ErrBorrowed) {
		t.Fatalf("Into while borrowed: err = %v, want ErrBorrowed", err)
	}
	_ = r.Release()
	if _, err := o.Move(); err != nil {
		t.Fatalf("Move after release: %v", err)
	}
}

func TestDoubleRelease(t *testing.T) {
	o := New(1)
	r := o.MustBorrow()
	if err := r.Release(); err != nil {
		t.Fatal(err)
	}
	if err := r.Release(); !errors.Is(err, ErrReleased) {
		t.Fatalf("double Release: err = %v, want ErrReleased", err)
	}
	m := o.MustBorrowMut()
	_ = m.Release()
	if err := m.Release(); !errors.Is(err, ErrReleased) {
		t.Fatalf("double RefMut.Release: err = %v, want ErrReleased", err)
	}
}

func TestIntoConsumes(t *testing.T) {
	o := New(99)
	v, err := o.Into()
	if err != nil || v != 99 {
		t.Fatalf("Into = (%d, %v), want (99, nil)", v, err)
	}
	if _, err := o.Into(); !errors.Is(err, ErrMoved) {
		t.Fatalf("second Into: err = %v, want ErrMoved", err)
	}
	if o.Valid() {
		t.Fatal("handle valid after Into")
	}
}

func TestDropThenUse(t *testing.T) {
	o := New(1)
	if err := o.Drop(); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Borrow(); !errors.Is(err, ErrDropped) {
		t.Fatalf("Borrow after Drop: err = %v, want ErrDropped", err)
	}
	if err := o.Drop(); !errors.Is(err, ErrDropped) {
		t.Fatalf("double Drop: err = %v, want ErrDropped", err)
	}
}

func TestZeroOwnedIsInvalid(t *testing.T) {
	var o Owned[int]
	if o.Valid() {
		t.Fatal("zero Owned reports valid")
	}
	if _, err := o.Borrow(); !errors.Is(err, ErrDropped) {
		t.Fatalf("Borrow on zero: %v", err)
	}
	if _, err := o.Move(); !errors.Is(err, ErrDropped) {
		t.Fatalf("Move on zero: %v", err)
	}
}

func TestMustVariantsPanic(t *testing.T) {
	o := New(1)
	o2 := o.MustMove()
	_ = o2
	defer func() {
		if recover() == nil {
			t.Fatal("MustMove on moved handle did not panic")
		}
	}()
	o.MustMove()
}

func TestViolationErrorFormatting(t *testing.T) {
	o := New(1)
	_, _ = o.Move()
	_, err := o.Borrow()
	var v *ViolationError
	if !errors.As(err, &v) {
		t.Fatalf("error %v is not a *ViolationError", err)
	}
	if v.Op != "Owned.Borrow" {
		t.Fatalf("Op = %q", v.Op)
	}
	if v.Error() == "" || !errors.Is(v, ErrMoved) {
		t.Fatalf("bad wrapping: %v", v)
	}
}

func TestStringStates(t *testing.T) {
	o := New(5)
	if s := o.String(); s != "Owned(5)" {
		t.Fatalf("String = %q", s)
	}
	n := o.MustMove()
	if s := o.String(); s != "Owned(<moved>)" {
		t.Fatalf("String after move = %q", s)
	}
	_ = n.Drop()
	if s := n.String(); s != "Owned(<dropped>)" {
		t.Fatalf("String after drop = %q", s)
	}
	var z Owned[int]
	if s := z.String(); s != "Owned(<nil>)" {
		t.Fatalf("zero String = %q", s)
	}
}

// Property: a chain of n moves leaves exactly the final handle live and
// every earlier handle dead, and the value is preserved.
func TestQuickMoveChain(t *testing.T) {
	f := func(v int64, hops uint8) bool {
		n := int(hops%16) + 1
		handles := make([]Owned[int64], 0, n+1)
		o := New(v)
		handles = append(handles, o)
		for i := 0; i < n; i++ {
			next, err := handles[len(handles)-1].Move()
			if err != nil {
				return false
			}
			handles = append(handles, next)
		}
		for i := 0; i < len(handles)-1; i++ {
			if handles[i].Valid() {
				return false
			}
		}
		last := handles[len(handles)-1]
		got, err := last.Into()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: borrow/release sequences never corrupt the reader count —
// after releasing every borrow, a move always succeeds.
func TestQuickBorrowBalance(t *testing.T) {
	f := func(ops []bool) bool {
		o := New(0)
		var open []*Ref[int]
		for _, borrow := range ops {
			if borrow || len(open) == 0 {
				r, err := o.Borrow()
				if err != nil {
					return false
				}
				open = append(open, r)
			} else {
				r := open[len(open)-1]
				open = open[:len(open)-1]
				if err := r.Release(); err != nil {
					return false
				}
			}
		}
		for _, r := range open {
			if err := r.Release(); err != nil {
				return false
			}
		}
		_, err := o.Move()
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Under concurrency, exactly one of N racing movers wins; every loser gets
// ErrMoved or ErrBorrowed, never a second success.
func TestConcurrentMoveRace(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		o := New(trial)
		const racers = 8
		var mu sync.Mutex
		wins := 0
		var wg sync.WaitGroup
		for i := 0; i < racers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := o.Move(); err == nil {
					mu.Lock()
					wins++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if wins != 1 {
			t.Fatalf("trial %d: %d winners, want 1", trial, wins)
		}
	}
}

func TestConcurrentBorrowers(t *testing.T) {
	o := New(123)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := o.Borrow()
			if err != nil {
				errs <- err
				return
			}
			if r.Value() != 123 {
				errs <- errors.New("bad value")
			}
			errs <- r.Release()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := o.Move(); err != nil {
		t.Fatalf("Move after concurrent borrows: %v", err)
	}
}
