package linear

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestRcCloneAndCounts(t *testing.T) {
	r := NewRc("hello")
	if r.StrongCount() != 1 {
		t.Fatalf("StrongCount = %d, want 1", r.StrongCount())
	}
	c := r.Clone()
	if r.StrongCount() != 2 || c.StrongCount() != 2 {
		t.Fatalf("StrongCount after clone = %d", r.StrongCount())
	}
	if r.Get() != "hello" || c.Get() != "hello" {
		t.Fatal("clone sees different value")
	}
	if !r.SameBox(c) {
		t.Fatal("clone is not same box")
	}
	if err := c.Drop(); err != nil {
		t.Fatal(err)
	}
	if r.StrongCount() != 1 {
		t.Fatalf("StrongCount after drop = %d", r.StrongCount())
	}
}

func TestRcDropToZeroClearsValue(t *testing.T) {
	r := NewRc([]byte{1, 2, 3})
	w := r.Downgrade()
	if err := r.Drop(); err != nil {
		t.Fatal(err)
	}
	if r.Alive() {
		t.Fatal("Alive after last drop")
	}
	if _, ok := w.Upgrade(); ok {
		t.Fatal("Upgrade succeeded after value died")
	}
	if err := r.Drop(); err == nil {
		t.Fatal("double Drop to below zero succeeded")
	}
}

func TestWeakUpgradeKeepsAlive(t *testing.T) {
	r := NewRc(7)
	w := r.Downgrade()
	if r.WeakCount() != 1 {
		t.Fatalf("WeakCount = %d, want 1", r.WeakCount())
	}
	s, ok := w.Upgrade()
	if !ok {
		t.Fatal("Upgrade failed while strong ref exists")
	}
	if s.Get() != 7 {
		t.Fatalf("upgraded value = %d", s.Get())
	}
	// Drop the original; the upgraded handle still keeps it alive.
	if err := r.Drop(); err != nil {
		t.Fatal(err)
	}
	if !w.Alive() {
		t.Fatal("value died while upgraded handle outstanding")
	}
	if err := s.Drop(); err != nil {
		t.Fatal(err)
	}
	if w.Alive() {
		t.Fatal("value alive after all strong handles dropped")
	}
	w.Drop()
}

func TestZeroWeakUpgradeFails(t *testing.T) {
	var w Weak[int]
	if _, ok := w.Upgrade(); ok {
		t.Fatal("zero Weak upgraded")
	}
	if w.Alive() {
		t.Fatal("zero Weak alive")
	}
	w.Drop() // must not panic
}

func TestRcMarkCAS(t *testing.T) {
	r := NewRc(1)
	if r.Mark() != 0 {
		t.Fatalf("initial mark = %d", r.Mark())
	}
	if !r.SetMarkIf(0, 5) {
		t.Fatal("first CAS failed")
	}
	if r.SetMarkIf(0, 9) {
		t.Fatal("stale CAS succeeded")
	}
	if r.Mark() != 5 {
		t.Fatalf("mark = %d, want 5", r.Mark())
	}
	c := r.Clone()
	if c.Mark() != 5 {
		t.Fatal("mark not shared between clones")
	}
}

func TestArcWithLock(t *testing.T) {
	a := NewArc(map[string]int{})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.WithLock(func(m *map[string]int) {
				(*m)["n"]++
			})
		}()
	}
	wg.Wait()
	a.WithLock(func(m *map[string]int) {
		if (*m)["n"] != 32 {
			t.Errorf("n = %d, want 32", (*m)["n"])
		}
	})
}

func TestArcCloneDropParity(t *testing.T) {
	a := NewArc(1)
	b := a.Clone()
	if a.StrongCount() != 2 {
		t.Fatalf("count = %d", a.StrongCount())
	}
	if !a.SameBox(b) {
		t.Fatal("not same box")
	}
	w := a.Downgrade()
	_ = a.Drop()
	_ = b.Drop()
	if w.Alive() {
		t.Fatal("arc alive after drops")
	}
}

// Property: after c clones and c drops, the value is alive iff the net
// handle count is positive, and exactly dies at zero.
func TestQuickRcRefcountInvariant(t *testing.T) {
	f := func(clones uint8) bool {
		n := int(clones%20) + 1
		r := NewRc(42)
		handles := []Rc[int]{r}
		for i := 0; i < n; i++ {
			handles = append(handles, r.Clone())
		}
		if r.StrongCount() != int64(n+1) {
			return false
		}
		for i, h := range handles {
			if !h.Alive() {
				return false
			}
			if err := h.Drop(); err != nil {
				return false
			}
			alive := r.Alive()
			if i < len(handles)-1 && !alive {
				return false
			}
			if i == len(handles)-1 && alive {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Concurrent upgrade/drop race: upgrades must never resurrect a dead value
// and every successful upgrade must observe the live value.
func TestConcurrentWeakUpgradeRace(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		r := NewRc(99)
		w := r.Downgrade()
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			_ = r.Drop()
		}()
		go func() {
			defer wg.Done()
			if s, ok := w.Upgrade(); ok {
				if s.Get() != 99 {
					t.Errorf("upgraded handle saw cleared value")
				}
				_ = s.Drop()
			}
		}()
		wg.Wait()
		if w.Alive() {
			t.Fatal("value alive after all drops")
		}
	}
}

func TestLinearMutexExclusion(t *testing.T) {
	m := NewMutex(0)
	g := m.Lock()
	if _, ok := m.TryLock(); ok {
		t.Fatal("TryLock succeeded while locked")
	}
	*g.Value() = 10
	g.Unlock()
	g2, ok := m.TryLock()
	if !ok {
		t.Fatal("TryLock failed while unlocked")
	}
	if *g2.Value() != 10 {
		t.Fatalf("value = %d", *g2.Value())
	}
	g2.Unlock()
}

func TestGuardUseAfterUnlockPanics(t *testing.T) {
	m := NewMutex(1)
	g := m.Lock()
	g.Unlock()
	defer func() {
		if recover() == nil {
			t.Fatal("Value after Unlock did not panic")
		}
	}()
	_ = g.Value()
}

func TestGuardDoubleUnlockPanics(t *testing.T) {
	m := NewMutex(1)
	g := m.Lock()
	g.Unlock()
	defer func() {
		if recover() == nil {
			t.Fatal("double Unlock did not panic")
		}
	}()
	g.Unlock()
}

func TestMutexWith(t *testing.T) {
	m := NewMutex([]int(nil))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			m.With(func(s *[]int) { *s = append(*s, n) })
		}(i)
	}
	wg.Wait()
	m.With(func(s *[]int) {
		if len(*s) != 16 {
			t.Errorf("len = %d, want 16", len(*s))
		}
	})
}

func BenchmarkAblationOwnedBorrow(b *testing.B) {
	o := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, _ := o.Borrow()
		_ = r.Value()
		_ = r.Release()
	}
}

func BenchmarkAblationOwnedMove(b *testing.B) {
	o := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o = o.MustMove()
	}
}

func BenchmarkAblationBarePointer(b *testing.B) {
	v := 1
	p := &v
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = *p
	}
	_ = sink
}

func BenchmarkRcCloneDrop(b *testing.B) {
	r := NewRc(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := r.Clone()
		_ = c.Drop()
	}
}

func BenchmarkWeakUpgrade(b *testing.B) {
	r := NewRc(1)
	w := r.Downgrade()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, _ := w.Upgrade()
		_ = s.Drop()
	}
}
