package linear

import "sync"

// LinearMutex enforces single ownership dynamically for a shared resource,
// the pattern the paper describes for essential write aliasing ("wrapping
// the object with the Mutex type"). The value is only reachable through a
// Guard, so exclusive access is structural, not advisory — and, as in §5,
// the aliasing+locking is explicit in the containing type's signature, so
// the checkpoint engine can treat it specially (lock, snapshot, unlock).
type LinearMutex[T any] struct {
	mu  sync.Mutex
	val T
}

// NewMutex wraps v in a LinearMutex.
func NewMutex[T any](v T) *LinearMutex[T] {
	return &LinearMutex[T]{val: v}
}

// Lock acquires exclusive ownership and returns a guard. The guard must be
// Unlocked; the value is inaccessible without one.
func (m *LinearMutex[T]) Lock() *Guard[T] {
	m.mu.Lock()
	return &Guard[T]{m: m}
}

// TryLock attempts to acquire the lock without blocking.
func (m *LinearMutex[T]) TryLock() (*Guard[T], bool) {
	if !m.mu.TryLock() {
		return nil, false
	}
	return &Guard[T]{m: m}, true
}

// With runs fn with exclusive access, handling lock/unlock.
func (m *LinearMutex[T]) With(fn func(*T)) {
	g := m.Lock()
	defer g.Unlock()
	fn(g.Value())
}

// Guard is an exclusive handle to the value inside a LinearMutex.
type Guard[T any] struct {
	m    *LinearMutex[T]
	done bool
}

// Value returns a pointer to the guarded value. It panics after Unlock —
// the dynamic analogue of a guard lifetime expiring.
func (g *Guard[T]) Value() *T {
	if g.done {
		panic("linear: use of guard after Unlock")
	}
	return &g.m.val
}

// Unlock releases exclusive ownership. Unlocking twice panics.
func (g *Guard[T]) Unlock() {
	if g.done {
		panic("linear: double Unlock of guard")
	}
	g.done = true
	g.m.mu.Unlock()
}
