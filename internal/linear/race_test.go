package linear

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentMoveExactlyOneWins is the linear-move guarantee under
// contention: when many goroutines race to Move the same handle, exactly
// one acquires ownership and every other attempt fails with ErrMoved.
// This is the property that makes handing batches between pipeline
// workers safe, and under -race it also proves the cell's internal state
// machine is properly synchronized.
func TestConcurrentMoveExactlyOneWins(t *testing.T) {
	for round := 0; round < 100; round++ {
		o := New(round)
		const contenders = 8
		var wins, losses atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < contenders; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := o.Move(); err == nil {
					wins.Add(1)
				} else if errors.Is(err, ErrMoved) {
					losses.Add(1)
				} else {
					t.Errorf("unexpected error: %v", err)
				}
			}()
		}
		wg.Wait()
		if wins.Load() != 1 || losses.Load() != contenders-1 {
			t.Fatalf("round %d: %d wins, %d losses; want exactly 1 winner", round, wins.Load(), losses.Load())
		}
	}
}

// TestConcurrentMoveChainUnderRace hands a value down a chain of
// goroutines by move, with every hop racing a stale-handle access. The
// stale accesses must all be rejected; the chain must deliver the value
// intact.
func TestConcurrentMoveChainUnderRace(t *testing.T) {
	type payload struct{ n int }
	o := New(&payload{})
	const hops = 64
	var staleErrs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < hops; i++ {
		next := o.MustMove()
		stale := o
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The previous handle is dead; any use must fail, and must
			// never observe or mutate the payload.
			if err := stale.With(func(*payload) {
				t.Error("stale handle granted access")
			}); err != nil {
				staleErrs.Add(1)
			}
		}()
		if err := next.WithMut(func(p **payload) { (*p).n++ }); err != nil {
			t.Fatal(err)
		}
		o = next
	}
	wg.Wait()
	if staleErrs.Load() != hops {
		t.Fatalf("stale accesses rejected: %d of %d", staleErrs.Load(), hops)
	}
	v, err := o.Into()
	if err != nil {
		t.Fatal(err)
	}
	if v.n != hops {
		t.Fatalf("payload mutated %d times, want %d", v.n, hops)
	}
}

// TestConcurrentBorrowersAndMover races shared borrows against a mover:
// the move may only succeed when no borrow is outstanding, and a borrow
// may never observe the value after a successful move invalidated its
// handle's generation.
func TestConcurrentBorrowersAndMover(t *testing.T) {
	for round := 0; round < 200; round++ {
		o := New(round)
		var wg sync.WaitGroup
		var moved atomic.Bool
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ref, err := o.Borrow()
				if err != nil {
					return // lost the race to the mover
				}
				_ = ref.Value()
				if err := ref.Release(); err != nil {
					t.Errorf("release: %v", err)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := o.Move(); err == nil {
				moved.Store(true)
			} else if !errors.Is(err, ErrBorrowed) && !errors.Is(err, ErrMoved) {
				t.Errorf("unexpected move error: %v", err)
			}
		}()
		wg.Wait()
		// Whatever interleaving happened, the cell must be in a coherent
		// terminal state: either moved (old handle dead) or still live.
		if moved.Load() && o.Valid() {
			t.Fatal("handle valid after a successful move")
		}
	}
}

// TestConcurrentIntoSingleConsumer: racing Into calls from handle copies
// must yield the value exactly once.
func TestConcurrentIntoSingleConsumer(t *testing.T) {
	for round := 0; round < 100; round++ {
		o := New("payload")
		var got atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if v, err := o.Into(); err == nil {
					if v != "payload" {
						t.Errorf("consumed corrupt value %q", v)
					}
					got.Add(1)
				}
			}()
		}
		wg.Wait()
		if got.Load() != 1 {
			t.Fatalf("value consumed %d times", got.Load())
		}
	}
}
