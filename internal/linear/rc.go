package linear

import (
	"sync"
	"sync/atomic"
)

// This file implements the explicit-aliasing escape hatch of the ownership
// model: reference-counted shared values (the paper's Rc/Arc) and weak
// handles (std::rc::Weak), which the SFI reference tables (§3) and the
// checkpointing library (§5) build on.
//
// Both Rc and Arc here use atomic counts — Go cannot statically confine a
// value to one goroutine the way Rust confines non-Send types to one
// thread — but they remain distinct types so that code, like the paper's,
// states its sharing intent in the type. Each box carries a one-word mark
// usable by graph-traversal clients; §5's checkpointing stores its
// "already checkpointed this epoch" flag there, which is exactly the
// paper's custom Checkpointable impl for Rc.

// rcBox is the shared allocation behind Rc/Arc/Weak handles.
type rcBox[T any] struct {
	strong atomic.Int64
	weak   atomic.Int64 // weak handles + 1 implicit ref held by strong>0
	mark   atomic.Uint64
	mu     sync.Mutex // guards val for LockedArc-style access
	val    T
}

// Rc is a reference-counted shared immutable value. Aliasing through Rc is
// the only sanctioned aliasing in the model, and — crucially for §5 — it
// is visible in the type signature of any structure containing it.
type Rc[T any] struct {
	box *rcBox[T]
}

// NewRc allocates a new shared value with strong count 1.
func NewRc[T any](v T) Rc[T] {
	b := &rcBox[T]{val: v}
	b.strong.Store(1)
	b.weak.Store(1)
	return Rc[T]{box: b}
}

// Clone creates an additional strong handle to the same value.
func (r Rc[T]) Clone() Rc[T] {
	if r.box == nil {
		panic("linear: Clone of zero Rc")
	}
	if r.box.strong.Add(1) <= 1 {
		panic("linear: Clone of dead Rc")
	}
	return Rc[T]{box: r.box}
}

// Get returns the shared value. Rc values are immutable by convention;
// interior mutability requires LinearMutex (see mutex.go).
func (r Rc[T]) Get() T {
	if r.box == nil {
		panic("linear: Get on zero Rc")
	}
	return r.box.val
}

// Ptr returns a pointer to the shared value. It is exported for the
// checkpoint engine, which needs object identity to rebuild alias
// structure; ordinary clients should use Get.
func (r Rc[T]) Ptr() *T {
	if r.box == nil {
		return nil
	}
	return &r.box.val
}

// StrongCount reports the current number of strong handles.
func (r Rc[T]) StrongCount() int64 {
	if r.box == nil {
		return 0
	}
	return r.box.strong.Load()
}

// WeakCount reports the current number of weak handles.
func (r Rc[T]) WeakCount() int64 {
	if r.box == nil {
		return 0
	}
	n := r.box.weak.Load() - 1
	if n < 0 {
		n = 0
	}
	return n
}

// Drop releases one strong handle. When the last strong handle is
// dropped the value is cleared; outstanding weak handles can no longer
// upgrade. Dropping a zero or already-dead handle is a violation.
func (r Rc[T]) Drop() error {
	const op = "Rc.Drop"
	if r.box == nil {
		return violation(op, ErrDropped)
	}
	for {
		n := r.box.strong.Load()
		if n <= 0 {
			return violation(op, ErrDropped)
		}
		if r.box.strong.CompareAndSwap(n, n-1) {
			if n == 1 {
				// Last strong ref: clear the value (destructor) and
				// release the implicit weak ref held by the strong set.
				var z T
				r.box.mu.Lock()
				r.box.val = z
				r.box.mu.Unlock()
				r.box.weak.Add(-1)
			}
			return nil
		}
	}
}

// Alive reports whether the value is still strongly referenced.
func (r Rc[T]) Alive() bool {
	return r.box != nil && r.box.strong.Load() > 0
}

// Downgrade creates a weak handle that does not keep the value alive.
func (r Rc[T]) Downgrade() Weak[T] {
	if r.box == nil {
		panic("linear: Downgrade of zero Rc")
	}
	r.box.weak.Add(1)
	return Weak[T]{box: r.box}
}

// Mark returns the traversal mark word stored in the shared box.
func (r Rc[T]) Mark() uint64 {
	if r.box == nil {
		return 0
	}
	return r.box.mark.Load()
}

// SetMarkIf atomically sets the mark word to next if it currently holds
// old, reporting whether the swap happened. Checkpointing (§5) uses the
// mark as its per-epoch "first visit" flag: the first visitor in an epoch
// wins the CAS and copies the object; later visitors reuse the copy.
func (r Rc[T]) SetMarkIf(old, next uint64) bool {
	if r.box == nil {
		return false
	}
	return r.box.mark.CompareAndSwap(old, next)
}

// SameBox reports whether two handles alias the same allocation.
func (r Rc[T]) SameBox(o Rc[T]) bool { return r.box == o.box }

// Weak is a non-owning handle to an Rc/Arc allocation: it observes the
// value without keeping it alive and must be upgraded before use. The SFI
// reference tables hand exactly these to client domains so that revoking
// an entry makes all outstanding remote references fail closed.
type Weak[T any] struct {
	box *rcBox[T]
}

// Upgrade attempts to obtain a strong handle. It fails (ok=false) if the
// last strong handle has been dropped — e.g. the domain revoked the
// reference or was torn down for recovery.
func (w Weak[T]) Upgrade() (Rc[T], bool) {
	if w.box == nil {
		return Rc[T]{}, false
	}
	for {
		n := w.box.strong.Load()
		if n <= 0 {
			return Rc[T]{}, false
		}
		if w.box.strong.CompareAndSwap(n, n+1) {
			return Rc[T]{box: w.box}, true
		}
	}
}

// Alive reports whether an upgrade would currently succeed.
func (w Weak[T]) Alive() bool {
	return w.box != nil && w.box.strong.Load() > 0
}

// Drop releases the weak handle. Safe to call once per handle.
func (w Weak[T]) Drop() {
	if w.box != nil {
		w.box.weak.Add(-1)
	}
}

// Arc is an atomically reference-counted shared value for cross-goroutine
// sharing. Operationally identical to Rc in this runtime model (both use
// atomics under Go's memory model), it exists as a distinct type so that
// thread-crossing sharing is explicit in signatures, as in the paper.
type Arc[T any] struct {
	rc Rc[T]
}

// NewArc allocates a new atomically shared value.
func NewArc[T any](v T) Arc[T] { return Arc[T]{rc: NewRc(v)} }

// Clone creates an additional strong handle.
func (a Arc[T]) Clone() Arc[T] { return Arc[T]{rc: a.rc.Clone()} }

// Get returns the shared value.
func (a Arc[T]) Get() T { return a.rc.Get() }

// Ptr returns a pointer to the shared value (for the checkpoint engine).
func (a Arc[T]) Ptr() *T { return a.rc.Ptr() }

// StrongCount reports the number of strong handles.
func (a Arc[T]) StrongCount() int64 { return a.rc.StrongCount() }

// Drop releases one strong handle.
func (a Arc[T]) Drop() error { return a.rc.Drop() }

// Alive reports whether the value is still strongly referenced.
func (a Arc[T]) Alive() bool { return a.rc.Alive() }

// Downgrade creates a weak handle.
func (a Arc[T]) Downgrade() Weak[T] { return a.rc.Downgrade() }

// Mark returns the traversal mark word.
func (a Arc[T]) Mark() uint64 { return a.rc.Mark() }

// SetMarkIf atomically CASes the traversal mark word.
func (a Arc[T]) SetMarkIf(old, next uint64) bool { return a.rc.SetMarkIf(old, next) }

// SameBox reports whether two handles alias the same allocation.
func (a Arc[T]) SameBox(o Arc[T]) bool { return a.rc.SameBox(o.rc) }

// WithLock runs fn with the box's internal mutex held, providing the
// Arc<Mutex<T>> pattern for sanctioned shared mutation.
func (a Arc[T]) WithLock(fn func(*T)) {
	if a.rc.box == nil {
		panic("linear: WithLock on zero Arc")
	}
	a.rc.box.mu.Lock()
	defer a.rc.box.mu.Unlock()
	fn(&a.rc.box.val)
}
