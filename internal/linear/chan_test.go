package linear

import (
	"errors"
	"sync"
	"testing"
)

func TestChanTransfersOwnership(t *testing.T) {
	ch := NewChan[[]int](1)
	v := New([]int{1, 2, 3})
	stale := v
	if err := ch.Send(v); err != nil {
		t.Fatal(err)
	}
	// Sender's handle is dead the moment Send returns.
	if _, err := stale.Borrow(); !errors.Is(err, ErrMoved) {
		t.Fatalf("sender handle: %v, want ErrMoved", err)
	}
	got, err := ch.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := got.With(func(s []int) {
		if len(s) != 3 {
			t.Errorf("len = %d", len(s))
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestChanSendMovedHandleFails(t *testing.T) {
	ch := NewChan[int](1)
	v := New(1)
	_ = v.MustMove()
	if err := ch.Send(v); !errors.Is(err, ErrMoved) {
		t.Fatalf("err = %v", err)
	}
	if ch.Len() != 0 {
		t.Fatal("dead value enqueued")
	}
}

func TestChanCloseSemantics(t *testing.T) {
	ch := NewChan[int](2)
	if err := ch.Send(New(1)); err != nil {
		t.Fatal(err)
	}
	ch.Close()
	ch.Close() // idempotent
	if err := ch.Send(New(2)); !errors.Is(err, ErrChanClosed) {
		t.Fatalf("send after close: %v", err)
	}
	// Drain the queued value, then get ErrChanClosed.
	v, err := ch.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got := v.MustInto(); got != 1 {
		t.Fatalf("got %d", got)
	}
	if _, err := ch.Recv(); !errors.Is(err, ErrChanClosed) {
		t.Fatalf("recv after drain: %v", err)
	}
}

func TestChanTryRecv(t *testing.T) {
	ch := NewChan[int](1)
	if _, ok, err := ch.TryRecv(); ok || err != nil {
		t.Fatalf("empty TryRecv = %v %v", ok, err)
	}
	_ = ch.Send(New(7))
	v, ok, err := ch.TryRecv()
	if !ok || err != nil {
		t.Fatalf("TryRecv = %v %v", ok, err)
	}
	if v.MustInto() != 7 {
		t.Fatal("wrong value")
	}
	ch.Close()
	if _, ok, err := ch.TryRecv(); ok || !errors.Is(err, ErrChanClosed) {
		t.Fatalf("closed TryRecv = %v %v", ok, err)
	}
}

func TestChanPipelineOfGoroutines(t *testing.T) {
	// A three-stage goroutine pipeline passing one owned buffer through:
	// at any instant exactly one stage can access it.
	a := NewChan[[]int](0)
	b := NewChan[[]int](0)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // stage 2: double every element
		defer wg.Done()
		for {
			v, err := a.Recv()
			if err != nil {
				b.Close()
				return
			}
			if err := v.WithMut(func(s *[]int) {
				for i := range *s {
					(*s)[i] *= 2
				}
			}); err != nil {
				t.Error(err)
			}
			if err := b.Send(v); err != nil {
				t.Error(err)
			}
		}
	}()
	results := make(chan int, 1)
	go func() { // stage 3: sum
		defer wg.Done()
		total := 0
		for {
			v, err := b.Recv()
			if err != nil {
				results <- total
				return
			}
			v.With(func(s []int) {
				for _, x := range s {
					total += x
				}
			})
		}
	}()
	// Stage 1: producer.
	for i := 0; i < 10; i++ {
		if err := a.Send(New([]int{i, i + 1})); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	wg.Wait()
	// sum over i of 2*(i + i+1) = 2*(2i+1) summed i=0..9 = 2*100 = 200.
	if got := <-results; got != 200 {
		t.Fatalf("total = %d, want 200", got)
	}
}

func TestChanConcurrentSendersExactlyOnce(t *testing.T) {
	ch := NewChan[int](64)
	var wg sync.WaitGroup
	const n = 32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			if err := ch.Send(New(k)); err != nil {
				t.Errorf("send %d: %v", k, err)
			}
		}(i)
	}
	wg.Wait()
	ch.Close()
	seen := make(map[int]bool)
	for {
		v, err := ch.Recv()
		if err != nil {
			break
		}
		k := v.MustInto()
		if seen[k] {
			t.Fatalf("value %d received twice", k)
		}
		seen[k] = true
	}
	if len(seen) != n {
		t.Fatalf("received %d values, want %d", len(seen), n)
	}
}
