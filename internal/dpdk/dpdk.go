// Package dpdk simulates the slice of DPDK the paper's evaluation uses: a
// poll-mode port that hands out packets in batches of user-defined size
// and takes them back on transmit.
//
// The paper's testbed retrieves packets from DPDK on a 10G NIC. That
// hardware is not available here, so this package substitutes a synthetic
// equivalent that preserves the measured code path: buffers come from a
// fixed mempool, RxBurst fills a caller-supplied batch (the cache-pressure
// source the paper attributes the 90→122-cycle growth to), the pipeline
// processes the batch to completion, and TxBurst recycles the buffers.
// Traffic content is produced by pluggable deterministic generators
// (uniform and zipfian flow mixes) so experiments are reproducible.
package dpdk

import (
	"math/rand"
	"strconv"
	"sync"

	"repro/internal/mempool"
	"repro/internal/packet"
	"repro/internal/telemetry"
)

// MbufSize is the fixed buffer size of a simulated mbuf, matching DPDK's
// conventional 2 KiB data room.
const MbufSize = 2048

// Generator produces the next synthetic packet's parameters.
//
// Concurrency contract: a port serializes every NextSpec call it makes —
// under the distributor lock in steered mode (fillSteered), under the
// owning queue's lock in partitioned mode (fillLocal) — so handing a
// stateful generator to ONE port is safe no matter how many worker
// goroutines poll that port's queues concurrently. What is not safe is
// sharing one stateful generator (UniformFlows, ZipfFlows, cycleSpecs)
// between two ports, or calling NextSpec yourself while a port owns the
// generator: nothing serializes across ports. Stateless generators such
// as FixedFlow are exempt and may be shared freely. The race regression
// tests in generator_race_test.go pin both halves of this contract.
type Generator interface {
	// NextSpec fills spec with the next packet description.
	NextSpec(spec *packet.BuildSpec)
}

// FixedFlow generates every packet from the same flow — the lightest
// generator, used by the Figure 2 null-filter measurements where content
// is irrelevant. NextSpec only reads Spec, so one FixedFlow may be
// shared across any number of ports and goroutines.
type FixedFlow struct {
	Spec packet.BuildSpec
}

// NextSpec implements Generator.
func (g *FixedFlow) NextSpec(spec *packet.BuildSpec) { *spec = g.Spec }

// UniformFlows cycles round-robin through n distinct flows derived from a
// base spec.
type UniformFlows struct {
	Base  packet.BuildSpec
	Flows int
	next  int
}

// NextSpec implements Generator.
func (g *UniformFlows) NextSpec(spec *packet.BuildSpec) {
	*spec = g.Base
	i := g.next
	g.next = (g.next + 1) % max(g.Flows, 1)
	spec.Tuple.SrcIP += packet.IPv4(i)
	spec.Tuple.SrcPort += uint16(i % 50000)
}

// ZipfFlows draws flows from a zipfian popularity distribution, the
// standard skewed traffic model for load-balancer studies (a few elephant
// flows, many mice).
type ZipfFlows struct {
	Base  packet.BuildSpec
	Flows int
	zipf  *rand.Zipf
}

// NewZipfFlows creates a zipfian generator over flows flows with skew s
// (s > 1; 1.1 is mild, 2 is heavy) and a deterministic seed.
func NewZipfFlows(base packet.BuildSpec, flows int, s float64, seed int64) *ZipfFlows {
	if flows <= 0 {
		panic("dpdk: flows must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	return &ZipfFlows{
		Base:  base,
		Flows: flows,
		zipf:  rand.NewZipf(rng, s, 1, uint64(flows-1)),
	}
}

// NextSpec implements Generator.
func (g *ZipfFlows) NextSpec(spec *packet.BuildSpec) {
	*spec = g.Base
	i := g.zipf.Uint64()
	spec.Tuple.SrcIP += packet.IPv4(i)
	spec.Tuple.SrcPort += uint16(i % 50000)
}

// PortStats holds cumulative port counters — telemetry cells, written
// on the data path with uncontended atomic adds and readable by a
// metrics scrape at any time.
type PortStats struct {
	RxPackets telemetry.Counter
	RxBytes   telemetry.Counter
	TxPackets telemetry.Counter
	TxBytes   telemetry.Counter
	AllocFail telemetry.Counter
	// RxMissed counts packets the steering path dropped because the
	// destination queue's descriptor ring was full (the rx_missed
	// counter of real NICs): the owning worker was not draining fast
	// enough.
	RxMissed telemetry.Counter
}

// Port is a simulated poll-mode NIC port with one or more receive
// queues. Multi-queue ports steer flows to queues RSS-style: every
// packet of one flow lands on the same queue, so one worker per queue
// sees complete flows.
type Port struct {
	Index int
	pool  *mempool.Pool[packet.Packet]
	gen   Generator // shared traffic source (single-queue and steered modes)

	reta    *packet.RETA
	rssKey  packet.RSSKey
	steered bool // software-RSS distributor mode (shared gen, per-queue rings)
	queues   []*rxQueue
	fillMu   sync.Mutex       // serializes the shared generator on the steered fill path
	fillSpec packet.BuildSpec // fillSteered scratch, guarded by fillMu (see rxQueue.spec)

	// Stats is exported for harnesses.
	Stats PortStats
}

// Config parameterizes a port.
type Config struct {
	Index    int
	PoolSize int // number of mbufs; default 4096
	Gen      Generator

	// RxQueues is the number of receive queues (default 1). With more
	// than one queue the port steers flows by RSS hash: either in
	// hardware style — QueueGen supplies an independent traffic source
	// per queue whose flows already belong to that queue (see
	// NewRSSPartition) — or, when QueueGen is nil, through a software
	// distributor that hashes packets from Gen and fans them out to
	// per-queue rings.
	RxQueues int
	// QueueGen, when set, supplies the traffic source for each queue.
	QueueGen func(queue int) Generator
	// CacheSize bounds each queue's local mempool cache (default
	// mempool.DefaultCacheSize, clamped to the pool size).
	CacheSize int
	// RxRingSize bounds each queue's descriptor ring in steered mode
	// (default 512, rounded up to a power of two).
	RxRingSize int
}

// NewPort creates a port backed by its own mempool and generator(s).
func NewPort(cfg Config) *Port {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 4096
	}
	if cfg.RxQueues <= 0 {
		cfg.RxQueues = 1
	}
	if cfg.Gen == nil && cfg.QueueGen == nil {
		cfg.Gen = &FixedFlow{Spec: DefaultSpec()}
	}
	if cfg.RxRingSize <= 0 {
		cfg.RxRingSize = 512
	}
	p := &Port{
		Index:  cfg.Index,
		gen:    cfg.Gen,
		rssKey: packet.DefaultRSSKey,
		reta:   packet.NewRETA(cfg.RxQueues, 0),
		pool: mempool.NewPool(cfg.PoolSize, func() *packet.Packet {
			return &packet.Packet{Data: make([]byte, 0, MbufSize)}
		}),
	}
	p.steered = cfg.RxQueues > 1 && cfg.QueueGen == nil
	for q := 0; q < cfg.RxQueues; q++ {
		rq := &rxQueue{cache: mempool.NewCache(p.pool, cfg.CacheSize)}
		switch {
		case cfg.QueueGen != nil:
			rq.gen = cfg.QueueGen(q)
		case !p.steered:
			rq.gen = cfg.Gen
		default:
			rq.ring = mempool.NewRing[*packet.Packet](cfg.RxRingSize)
		}
		p.queues = append(p.queues, rq)
	}
	return p
}

// DefaultSpec is a representative 64-byte-payload UDP flow.
func DefaultSpec() packet.BuildSpec {
	return packet.BuildSpec{
		SrcMAC: packet.MAC{0x02, 0, 0, 0, 0, 0x01},
		DstMAC: packet.MAC{0x02, 0, 0, 0, 0, 0x02},
		Tuple: packet.FiveTuple{
			SrcIP:   packet.Addr(10, 0, 0, 1),
			DstIP:   packet.Addr(10, 99, 0, 1),
			SrcPort: 40000,
			DstPort: 80,
			Proto:   packet.ProtoUDP,
		},
		PayloadLen: 64,
	}
}

// RxBurst fills out with up to len(out) freshly generated packets,
// returning the count. Buffers come from the port mempool; the caller owns
// them until TxBurst or Free returns them. On a multi-queue port this is
// equivalent to polling queue 0.
func (p *Port) RxBurst(out []*packet.Packet) int {
	return p.RxBurstQueue(0, out)
}

// TxBurst transmits the packets (accounting only — there is no wire) and
// recycles their buffers into the mempool. It returns the number sent,
// which is always len(pkts) in the simulation.
func (p *Port) TxBurst(pkts []*packet.Packet) int {
	for _, pkt := range pkts {
		if pkt == nil {
			continue
		}
		p.Stats.TxPackets.Add(1)
		p.Stats.TxBytes.Add(uint64(pkt.Len()))
		p.pool.Put(pkt)
	}
	return len(pkts)
}

// Free returns packets to the mempool without counting them as
// transmitted (drops).
func (p *Port) Free(pkts []*packet.Packet) {
	for _, pkt := range pkts {
		if pkt != nil {
			p.pool.Put(pkt)
		}
	}
}

// RegisterMetrics exports the port's counters, its mempool, and every
// receive queue's cache (and, in steered mode, descriptor-ring depth)
// on reg. base labels every series; queues add a "queue" label. Gauges
// that need the queue lock take it at scrape time only.
func (p *Port) RegisterMetrics(reg *telemetry.Registry, base telemetry.Labels) {
	reg.RegisterCounter("port_rx_packets_total", base, &p.Stats.RxPackets)
	reg.RegisterCounter("port_rx_bytes_total", base, &p.Stats.RxBytes)
	reg.RegisterCounter("port_tx_packets_total", base, &p.Stats.TxPackets)
	reg.RegisterCounter("port_tx_bytes_total", base, &p.Stats.TxBytes)
	reg.RegisterCounter("port_alloc_fail_total", base, &p.Stats.AllocFail)
	reg.RegisterCounter("port_rx_missed_total", base, &p.Stats.RxMissed)
	p.pool.RegisterMetrics(reg, base)
	for q, rq := range p.queues {
		rq := rq
		labels := base.With("queue", strconv.Itoa(q))
		rq.cache.RegisterMetrics(reg, labels, func() float64 {
			rq.mu.Lock()
			defer rq.mu.Unlock()
			return float64(rq.cache.Len())
		})
		if rq.ring != nil {
			ring := rq.ring
			reg.RegisterGaugeFunc("port_rx_ring_depth", labels, func() float64 {
				return float64(ring.Len())
			})
		}
	}
}

// PoolAvailable reports free mbufs — in the shared pool plus every
// queue's local cache — for leak assertions in tests. Cached buffers are
// free (a worker can allocate them without touching the pool); only
// buffers held by in-flight packets are excluded.
func (p *Port) PoolAvailable() int {
	n := p.pool.Available()
	for _, rq := range p.queues {
		rq.mu.Lock()
		n += rq.cache.Len()
		rq.mu.Unlock()
	}
	return n
}
