package dpdk

import (
	"testing"

	"repro/internal/leakcheck"
	"repro/internal/packet"
)

func TestRxBurstFillsBatch(t *testing.T) {
	p := NewPort(Config{PoolSize: 64})
	leakcheck.Pool(t, "port", p.PoolAvailable)
	batch := make([]*packet.Packet, 32)
	n := p.RxBurst(batch)
	if n != 32 {
		t.Fatalf("RxBurst = %d, want 32", n)
	}
	for i := 0; i < n; i++ {
		if batch[i] == nil {
			t.Fatalf("nil packet at %d", i)
		}
		if err := batch[i].Parse(); err != nil {
			t.Fatalf("generated packet %d does not parse: %v", i, err)
		}
		if batch[i].RxPort != 0 {
			t.Fatalf("RxPort = %d", batch[i].RxPort)
		}
	}
	if got := p.Stats.RxPackets.Load(); got != 32 {
		t.Fatalf("RxPackets = %d", got)
	}
	p.Free(batch[:n])
}

func TestRxBurstExhaustsPool(t *testing.T) {
	p := NewPort(Config{PoolSize: 8})
	leakcheck.Pool(t, "port", p.PoolAvailable)
	batch := make([]*packet.Packet, 16)
	n := p.RxBurst(batch)
	if n != 8 {
		t.Fatalf("RxBurst = %d, want 8 (pool size)", n)
	}
	if p.Stats.AllocFail.Load() == 0 {
		t.Fatal("no alloc failure recorded")
	}
	p.Free(batch[:n])
	if p.PoolAvailable() != 8 {
		t.Fatalf("pool leak: %d available", p.PoolAvailable())
	}
}

func TestTxBurstRecycles(t *testing.T) {
	p := NewPort(Config{PoolSize: 16})
	leakcheck.Pool(t, "port", p.PoolAvailable)
	batch := make([]*packet.Packet, 16)
	n := p.RxBurst(batch)
	sent := p.TxBurst(batch[:n])
	if sent != n {
		t.Fatalf("TxBurst = %d, want %d", sent, n)
	}
	if p.PoolAvailable() != 16 {
		t.Fatalf("pool not refilled: %d", p.PoolAvailable())
	}
	if p.Stats.TxPackets.Load() != uint64(n) {
		t.Fatalf("TxPackets = %d", p.Stats.TxPackets.Load())
	}
	// Rx again reuses the same buffers (zero-alloc steady state).
	m := p.RxBurst(batch)
	if m != 16 {
		t.Fatalf("second RxBurst = %d", m)
	}
	p.Free(batch[:m])
}

func TestTxBurstSkipsNil(t *testing.T) {
	p := NewPort(Config{PoolSize: 4})
	leakcheck.Pool(t, "port", p.PoolAvailable)
	batch := make([]*packet.Packet, 2)
	n := p.RxBurst(batch)
	if n != 2 {
		t.Fatal("rx failed")
	}
	p.TxBurst([]*packet.Packet{batch[0], nil, batch[1]})
	if p.Stats.TxPackets.Load() != 2 {
		t.Fatalf("TxPackets = %d, want 2", p.Stats.TxPackets.Load())
	}
}

func TestUniformFlowsCycle(t *testing.T) {
	g := &UniformFlows{Base: DefaultSpec(), Flows: 4}
	seen := make(map[packet.FiveTuple]bool)
	var spec packet.BuildSpec
	for i := 0; i < 8; i++ {
		g.NextSpec(&spec)
		seen[spec.Tuple] = true
	}
	if len(seen) != 4 {
		t.Fatalf("distinct flows = %d, want 4", len(seen))
	}
}

func TestZipfFlowsSkewedAndDeterministic(t *testing.T) {
	mk := func() map[packet.IPv4]int {
		g := NewZipfFlows(DefaultSpec(), 1000, 1.5, 42)
		counts := make(map[packet.IPv4]int)
		var spec packet.BuildSpec
		for i := 0; i < 5000; i++ {
			g.NextSpec(&spec)
			counts[spec.Tuple.SrcIP]++
		}
		return counts
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("zipf generator not deterministic")
	}
	// The most popular flow should dominate: > 20% of traffic for s=1.5.
	base := DefaultSpec().Tuple.SrcIP
	if a[base] < 1000 {
		t.Fatalf("head flow count = %d, want skewed (>1000 of 5000)", a[base])
	}
}

func TestZipfFlowsRejectsZeroFlows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewZipfFlows(DefaultSpec(), 0, 1.5, 1)
}

func TestFixedFlowConstant(t *testing.T) {
	g := &FixedFlow{Spec: DefaultSpec()}
	var a, b packet.BuildSpec
	g.NextSpec(&a)
	g.NextSpec(&b)
	if a.Tuple != b.Tuple {
		t.Fatal("fixed flow varied")
	}
}

func BenchmarkRxTxBurst32(b *testing.B) {
	p := NewPort(Config{PoolSize: 4096})
	batch := make([]*packet.Packet, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := p.RxBurst(batch)
		p.TxBurst(batch[:n])
	}
}
