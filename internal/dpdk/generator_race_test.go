// Regression tests for the Generator concurrency contract (see the
// Generator doc in dpdk.go): a port serializes its own NextSpec calls,
// so concurrent multi-queue polling with one shared stateful generator
// inside one port must be race-free; and a stateless FixedFlow must be
// shareable across ports polled concurrently. Run under `make race` —
// the race detector is the assertion.
package dpdk

import (
	"sync"
	"testing"

	"repro/internal/packet"
)

// TestGeneratorSteeredConcurrentPolls polls every queue of a steered
// port from its own goroutine. All four queues draw from one shared
// stateful UniformFlows through fillSteered; the distributor lock must
// serialize those NextSpec calls, and flow affinity must survive the
// contention.
func TestGeneratorSteeredConcurrentPolls(t *testing.T) {
	const (
		queues = 4
		bursts = 200
		batch  = 16
	)
	port := NewPort(Config{
		PoolSize:   queues * 256,
		RxQueues:   queues,
		RxRingSize: 128,
		CacheSize:  16,
		Gen:        &UniformFlows{Base: DefaultSpec(), Flows: 64},
	})
	var wg sync.WaitGroup
	for q := 0; q < queues; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			buf := make([]*packet.Packet, batch)
			for i := 0; i < bursts; i++ {
				n := port.RxBurstQueue(q, buf)
				for _, pkt := range buf[:n] {
					if err := pkt.Parse(); err != nil {
						t.Error(err)
					} else if want := port.RSSQueue(pkt.Tuple()); want != q {
						t.Errorf("flow %s surfaced on queue %d, RSS says %d", pkt.Tuple(), q, want)
					}
				}
				port.FreeQueue(q, buf[:n])
			}
		}(q)
	}
	wg.Wait()
	port.Drain()
	if got := port.PoolAvailable(); got != port.pool.Capacity() {
		t.Fatalf("pool: %d of %d buffers after drain", got, port.pool.Capacity())
	}
}

// TestGeneratorFixedFlowSharedAcrossPorts shares one stateless FixedFlow
// between two ports polled concurrently — the documented exemption from
// the one-port-per-stateful-generator rule.
func TestGeneratorFixedFlowSharedAcrossPorts(t *testing.T) {
	shared := &FixedFlow{Spec: DefaultSpec()}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			port := NewPort(Config{PoolSize: 128, Gen: shared})
			buf := make([]*packet.Packet, 16)
			for b := 0; b < 200; b++ {
				n := port.RxBurst(buf)
				port.Free(buf[:n])
			}
			port.Drain()
			if got := port.PoolAvailable(); got != port.pool.Capacity() {
				t.Errorf("pool: %d of %d buffers after drain", got, port.pool.Capacity())
			}
		}()
	}
	wg.Wait()
}
