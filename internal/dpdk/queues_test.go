package dpdk

import (
	"sync"
	"testing"

	"repro/internal/leakcheck"
	"repro/internal/packet"
)

func TestPartitionedQueuesDeliverOwnFlows(t *testing.T) {
	const queues = 4
	p := NewPort(Config{
		PoolSize: 512,
		RxQueues: queues,
		QueueGen: NewRSSPartition(DefaultSpec(), 256, queues),
	})
	leakcheck.Pool(t, "partitioned port", p.PoolAvailable)
	if p.Queues() != queues {
		t.Fatalf("Queues() = %d", p.Queues())
	}
	buf := make([]*packet.Packet, 16)
	for q := 0; q < queues; q++ {
		n := p.RxBurstQueue(q, buf)
		if n == 0 {
			t.Fatalf("queue %d produced no packets", q)
		}
		for _, pkt := range buf[:n] {
			if err := pkt.Parse(); err != nil {
				t.Fatalf("queue %d produced unparsable packet: %v", q, err)
			}
			if got := p.RSSQueue(pkt.Tuple()); got != q {
				t.Fatalf("queue %d delivered a flow that hashes to queue %d", q, got)
			}
			if pkt.RxQueue != q {
				t.Fatalf("RxQueue stamp = %d, want %d", pkt.RxQueue, q)
			}
			if pkt.RxHash != pkt.Tuple().RSSHash(packet.DefaultRSSKey) {
				t.Fatal("deposited RSS hash wrong")
			}
		}
		p.TxBurstQueue(q, buf[:n])
	}
	p.Drain()
}

func TestSteeredQueuesPreserveFlowAffinity(t *testing.T) {
	const queues = 4
	p := NewPort(Config{
		PoolSize: 1024,
		RxQueues: queues,
		Gen:      &UniformFlows{Base: DefaultSpec(), Flows: 64},
	})
	leakcheck.Pool(t, "steered port", p.PoolAvailable)
	buf := make([]*packet.Packet, 16)
	seen := map[packet.FiveTuple]int{}
	for round := 0; round < 10; round++ {
		for q := 0; q < queues; q++ {
			n := p.RxBurstQueue(q, buf)
			for _, pkt := range buf[:n] {
				if err := pkt.Parse(); err != nil {
					t.Fatal(err)
				}
				if prev, ok := seen[pkt.Tuple()]; ok && prev != q {
					t.Fatalf("flow %v seen on queues %d and %d", pkt.Tuple(), prev, q)
				}
				seen[pkt.Tuple()] = q
				if got := p.RSSQueue(pkt.Tuple()); got != q {
					t.Fatalf("flow on queue %d but RETA says %d", q, got)
				}
			}
			p.FreeQueue(q, buf[:n])
		}
	}
	if len(seen) < queues {
		t.Fatalf("only %d flows observed", len(seen))
	}
	p.Drain()
}

// TestSteeredRingOverflowDropsNotLeaks: when one queue is never polled,
// its ring fills and further packets for it are dropped (rx_missed), but
// every buffer stays accounted for.
func TestSteeredRingOverflowDropsNotLeaks(t *testing.T) {
	p := NewPort(Config{
		PoolSize:   4096,
		RxQueues:   2,
		RxRingSize: 64,
		Gen:        &UniformFlows{Base: DefaultSpec(), Flows: 64},
	})
	leakcheck.Pool(t, "overflow port", p.PoolAvailable)
	buf := make([]*packet.Packet, 32)
	// Poll only queue 0; queue 1's ring must overflow eventually.
	for i := 0; i < 50; i++ {
		n := p.RxBurstQueue(0, buf)
		p.TxBurstQueue(0, buf[:n])
	}
	if p.Stats.RxMissed.Load() == 0 {
		t.Fatal("no rx_missed recorded despite unpolled queue")
	}
	p.Drain()
}

// TestSteeredBackpressureBudget: a queue whose flows never appear
// returns 0 rather than spinning forever.
func TestSteeredBackpressureBudget(t *testing.T) {
	p := NewPort(Config{
		PoolSize: 256,
		RxQueues: 2,
		Gen:      &FixedFlow{Spec: DefaultSpec()}, // one flow: one queue gets everything
	})
	leakcheck.Pool(t, "fixed-flow port", p.PoolAvailable)
	buf := make([]*packet.Packet, 8)
	home := p.RSSQueue(DefaultSpec().Tuple)
	other := 1 - home
	if n := p.RxBurstQueue(other, buf); n != 0 {
		t.Fatalf("queue %d got %d packets of a flow steered to %d", other, n, home)
	}
	n := p.RxBurstQueue(home, buf)
	if n != 8 {
		t.Fatalf("home queue got %d packets, want 8", n)
	}
	p.FreeQueue(home, buf[:n])
	p.Drain()
}

func TestDrainConsolidatesRingsAndCaches(t *testing.T) {
	p := NewPort(Config{
		PoolSize: 512,
		RxQueues: 2,
		Gen:      &UniformFlows{Base: DefaultSpec(), Flows: 64},
	})
	buf := make([]*packet.Packet, 16)
	n := p.RxBurstQueue(0, buf) // fills both rings, returns queue 0's share
	p.TxBurstQueue(0, buf[:n])  // parks buffers in queue 0's cache
	p.Drain()
	// After drain, the shared pool itself (not just pool+caches) is whole.
	if avail := p.PoolAvailable(); avail != 512 {
		t.Fatalf("available = %d after drain, want 512", avail)
	}
}

func TestConcurrentQueuePolling(t *testing.T) {
	const queues = 8
	p := NewPort(Config{
		PoolSize: 2048,
		RxQueues: queues,
		QueueGen: NewRSSPartition(DefaultSpec(), 1024, queues),
	})
	leakcheck.Pool(t, "concurrent port", p.PoolAvailable)
	var wg sync.WaitGroup
	for q := 0; q < queues; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			buf := make([]*packet.Packet, 16)
			for i := 0; i < 200; i++ {
				n := p.RxBurstQueue(q, buf)
				p.TxBurstQueue(q, buf[:n])
			}
		}(q)
	}
	wg.Wait()
	p.Drain()
	if p.Stats.RxPackets.Load() != p.Stats.TxPackets.Load() {
		t.Fatalf("rx %d != tx %d", p.Stats.RxPackets.Load(), p.Stats.TxPackets.Load())
	}
}

// TestConcurrentSteeredPolling exercises the shared distributor from
// every queue's worker at once (the -race hot spot for fillMu).
func TestConcurrentSteeredPolling(t *testing.T) {
	const queues = 4
	p := NewPort(Config{
		PoolSize: 2048,
		RxQueues: queues,
		Gen:      NewZipfFlows(DefaultSpec(), 256, 1.3, 11),
	})
	leakcheck.Pool(t, "steered concurrent port", p.PoolAvailable)
	var wg sync.WaitGroup
	for q := 0; q < queues; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			buf := make([]*packet.Packet, 16)
			for i := 0; i < 100; i++ {
				n := p.RxBurstQueue(q, buf)
				p.TxBurstQueue(q, buf[:n])
			}
		}(q)
	}
	wg.Wait()
	p.Drain()
}

func TestQueueIndexOutOfRangePanics(t *testing.T) {
	p := NewPort(Config{PoolSize: 16})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	p.RxBurstQueue(1, make([]*packet.Packet, 1))
}

func TestNewRSSPartitionCoversAllFlows(t *testing.T) {
	const queues = 4
	const flows = 500
	factory := NewRSSPartition(DefaultSpec(), flows, queues)
	reta := packet.NewRETA(queues, 0)
	total := 0
	for q := 0; q < queues; q++ {
		gen := factory(q)
		if gen == nil {
			continue
		}
		// Walk one full cycle of the partition.
		seen := map[packet.FiveTuple]bool{}
		var spec packet.BuildSpec
		for {
			gen.NextSpec(&spec)
			if seen[spec.Tuple] {
				break
			}
			seen[spec.Tuple] = true
			if got := reta.Queue(spec.Tuple.RSSHash(packet.DefaultRSSKey)); got != q {
				t.Fatalf("partition %d contains flow for queue %d", q, got)
			}
		}
		total += len(seen)
	}
	if total != flows {
		t.Fatalf("partitions cover %d flows, want %d", total, flows)
	}
}

func TestNewRSSPartitionValidation(t *testing.T) {
	for _, c := range []struct{ flows, queues int }{{0, 1}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("flows=%d queues=%d: no panic", c.flows, c.queues)
				}
			}()
			NewRSSPartition(DefaultSpec(), c.flows, c.queues)
		}()
	}
}
