// Multi-queue receive: the RSS slice of the simulated NIC.
//
// Real NICs spread flows across receive queues by hashing the 5-tuple
// (Toeplitz) and indexing a redirection table; one core polls each queue
// and therefore sees every packet of the flows assigned to it. This file
// provides that in two forms:
//
//   - partitioned mode (Config.QueueGen, usually via NewRSSPartition):
//     each queue has an independent traffic source whose flows already
//     hash to that queue — the moral equivalent of hardware RSS, with no
//     shared state on the per-packet path; and
//   - steered mode (shared Config.Gen, RxQueues > 1): a software
//     distributor pulls packets from the shared generator, hashes them,
//     and fans them out to per-queue descriptor rings — the RSS
//     emulation a single-queue NIC or virtio port would need.
//
// Either way the invariant the sharded pipeline runtime depends on
// holds: packets of one flow always surface on the same queue.
package dpdk

import (
	"fmt"
	"sync"

	"repro/internal/mempool"
	"repro/internal/packet"
)

// rxQueue is one receive queue: a local mempool cache for buffer
// recycling and, in steered mode, the descriptor ring the distributor
// fills. The mutex makes each queue's operations atomic; in the intended
// one-worker-per-queue deployment it is uncontended.
type rxQueue struct {
	mu    sync.Mutex
	gen   Generator                     // per-queue source; nil in steered mode or for empty partitions
	ring  *mempool.Ring[*packet.Packet] // steered mode only
	cache *mempool.Cache[packet.Packet]

	// spec is fillLocal's scratch, a struct field because a stack-local
	// BuildSpec passed through the Generator interface escapes — one heap
	// allocation per burst on the receive hot path. Guarded by mu.
	spec packet.BuildSpec
}

// Queues reports the number of receive queues.
func (p *Port) Queues() int { return len(p.queues) }

// RETA exposes the port's RSS redirection table (read-only; safe for
// concurrent use).
func (p *Port) RETA() *packet.RETA { return p.reta }

// RSSQueue reports which receive queue the port steers a flow to.
func (p *Port) RSSQueue(t packet.FiveTuple) int {
	return p.reta.Queue(t.RSSHash(p.rssKey))
}

// RxBurstQueue fills out with up to len(out) packets from receive queue
// q, returning the count. A short (even zero) return is not end-of-
// stream: in steered mode it means the distributor produced nothing for
// this queue on this poll; callers poll again, exactly like a PMD.
//
// Each queue is safe to poll concurrently with other queues; polling the
// same queue from two goroutines is serialized but pointless (and
// destroys flow affinity for the callers).
func (p *Port) RxBurstQueue(q int, out []*packet.Packet) int {
	rq := p.queue(q)
	if !p.steered {
		rq.mu.Lock()
		n := p.fillLocal(q, rq, out)
		rq.mu.Unlock()
		return n
	}
	// Steered mode: drain the ring; if short, run a distributor pass and
	// drain again.
	n := rq.ring.DequeueBurst(out)
	if n == len(out) {
		return n
	}
	p.fillSteered(q, len(out)-n)
	return n + rq.ring.DequeueBurst(out[n:])
}

// fillLocal generates packets for queue q from its own source, using the
// queue's mempool cache so the shared pool is only touched in bursts.
// Caller holds rq.mu.
func (p *Port) fillLocal(q int, rq *rxQueue, out []*packet.Packet) int {
	if rq.gen == nil {
		return 0 // empty partition: no flows hash to this queue
	}
	n := 0
	for n < len(out) {
		pkt, err := rq.cache.Get()
		if err != nil {
			p.Stats.AllocFail.Add(1)
			break
		}
		rq.gen.NextSpec(&rq.spec)
		p.initPacket(pkt, &rq.spec, q)
		p.countRx(pkt)
		out[n] = pkt
		n++
	}
	return n
}

// fillSteered runs one distributor pass: pull packets from the shared
// generator, hash, and enqueue onto the owning queue's ring, stopping
// once queue q has received want packets or the generation budget is
// spent. The budget bounds the pass when q's flows are rare (or absent)
// in the traffic mix.
func (p *Port) fillSteered(q int, want int) {
	budget := want*len(p.queues) + 16
	p.fillMu.Lock()
	defer p.fillMu.Unlock()
	spec := &p.fillSpec // scratch under fillMu; a stack local would escape via the Generator call
	got := 0
	for i := 0; i < budget && got < want; i++ {
		pkt, err := p.pool.Get()
		if err != nil {
			p.Stats.AllocFail.Add(1)
			break
		}
		p.gen.NextSpec(spec)
		dst := p.reta.Queue(spec.Tuple.RSSHash(p.rssKey))
		p.initPacket(pkt, spec, dst)
		if p.queues[dst].ring.Enqueue(pkt) != nil {
			// Destination ring full: the owning worker is not draining.
			// Hardware drops the packet and counts rx_missed.
			p.Stats.RxMissed.Add(1)
			p.pool.Put(pkt)
			continue
		}
		p.countRx(pkt)
		if dst == q {
			got++
		}
	}
}

// initPacket builds the frame described by spec into pkt and stamps the
// receive metadata a NIC would deposit (port, queue, RSS hash).
func (p *Port) initPacket(pkt *packet.Packet, spec *packet.BuildSpec, queue int) {
	frame, err := packet.Build(pkt.Data[:0], *spec)
	if err != nil {
		panic(fmt.Sprintf("dpdk: generator produced invalid spec: %v", err))
	}
	pkt.Data = frame
	pkt.Reset()
	pkt.RxPort = p.Index
	pkt.RxQueue = queue
	pkt.RxHash = spec.Tuple.RSSHash(p.rssKey)
}

// countRx records a delivered packet in the port counters.
func (p *Port) countRx(pkt *packet.Packet) {
	p.Stats.RxPackets.Add(1)
	p.Stats.RxBytes.Add(uint64(pkt.Len()))
}

// TxBurstQueue transmits pkts from the worker owning queue q, recycling
// buffers through the queue's local cache instead of the shared pool —
// the contention-free hot path of the sharded runtime.
func (p *Port) TxBurstQueue(q int, pkts []*packet.Packet) int {
	rq := p.queue(q)
	rq.mu.Lock()
	for _, pkt := range pkts {
		if pkt == nil {
			continue
		}
		p.Stats.TxPackets.Add(1)
		p.Stats.TxBytes.Add(uint64(pkt.Len()))
		rq.cache.Put(pkt)
	}
	rq.mu.Unlock()
	return len(pkts)
}

// FreeQueue returns packets to queue q's local cache without counting
// them as transmitted (drops).
func (p *Port) FreeQueue(q int, pkts []*packet.Packet) {
	rq := p.queue(q)
	rq.mu.Lock()
	for _, pkt := range pkts {
		if pkt != nil {
			rq.cache.Put(pkt)
		}
	}
	rq.mu.Unlock()
}

// Drain stops the receive side and consolidates every buffer back into
// the shared pool: undelivered ring descriptors are freed and queue
// caches flushed. Runners call this on shutdown so pool accounting
// balances; the port is reusable afterwards.
func (p *Port) Drain() {
	p.fillMu.Lock()
	defer p.fillMu.Unlock()
	for _, rq := range p.queues {
		rq.mu.Lock()
		if rq.ring != nil {
			for {
				pkt, err := rq.ring.Dequeue()
				if err != nil {
					break
				}
				p.pool.Put(pkt)
			}
		}
		rq.cache.Flush()
		rq.mu.Unlock()
	}
}

func (p *Port) queue(q int) *rxQueue {
	if q < 0 || q >= len(p.queues) {
		panic(fmt.Sprintf("dpdk: queue %d out of range (port has %d)", q, len(p.queues)))
	}
	return p.queues[q]
}

// cycleSpecs round-robins a fixed list of flow specs (one RSS
// partition's share of the traffic).
type cycleSpecs struct {
	specs []packet.BuildSpec
	next  int
}

// NextSpec implements Generator.
func (g *cycleSpecs) NextSpec(spec *packet.BuildSpec) {
	*spec = g.specs[g.next]
	g.next = (g.next + 1) % len(g.specs)
}

// NewRSSPartition derives flows distinct flows from base (the same
// SrcIP/SrcPort walk UniformFlows performs), computes each flow's RSS
// hash, and partitions them across queues by redirection table — the
// packets hardware RSS would deliver to each queue, precomputed. The
// returned factory suits Config.QueueGen: each queue round-robins only
// its own flows, so steering costs nothing per packet and flow affinity
// holds by construction. Queues that no flow hashes to produce no
// traffic.
func NewRSSPartition(base packet.BuildSpec, flows, queues int) func(queue int) Generator {
	if flows <= 0 {
		panic("dpdk: flows must be positive")
	}
	if queues <= 0 {
		panic("dpdk: queues must be positive")
	}
	reta := packet.NewRETA(queues, 0)
	parts := make([][]packet.BuildSpec, queues)
	for i := 0; i < flows; i++ {
		spec := base
		spec.Tuple.SrcIP += packet.IPv4(i)
		spec.Tuple.SrcPort += uint16(i % 50000)
		q := reta.Queue(spec.Tuple.RSSHash(packet.DefaultRSSKey))
		parts[q] = append(parts[q], spec)
	}
	return func(queue int) Generator {
		if len(parts[queue]) == 0 {
			return nil
		}
		return &cycleSpecs{specs: parts[queue]}
	}
}
