package packet

import "testing"

// FuzzParse asserts the packet parser is total over arbitrary bytes: any
// input is either parsed or rejected, with no panics and no reads out of
// bounds (the datapath-facing robustness property).
func FuzzParse(f *testing.F) {
	good, _ := Build(nil, BuildSpec{
		Tuple:      FiveTuple{SrcIP: Addr(1, 2, 3, 4), DstIP: Addr(5, 6, 7, 8), SrcPort: 1, DstPort: 2, Proto: ProtoTCP},
		PayloadLen: 16,
	})
	udp, _ := Build(nil, BuildSpec{
		Tuple: FiveTuple{Proto: ProtoUDP}, PayloadLen: 0,
	})
	f.Add(good)
	f.Add(udp)
	f.Add([]byte{})
	f.Add(make([]byte, 14))
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		p := &Packet{Data: data}
		if err := p.Parse(); err != nil {
			if p.Parsed() {
				t.Fatal("Parsed true after error")
			}
			return
		}
		// Parsed packets must expose consistent views.
		_ = p.Tuple()
		_ = p.Payload()
		_ = p.VerifyIPChecksum()
		_ = p.SrcMAC()
		_ = p.DstMAC()
		// Mutators must stay in bounds.
		p.SetDstIP(Addr(9, 9, 9, 9))
		p.TTLDecrement()
	})
}
