package packet

import (
	"bytes"
	"testing"
)

// FuzzParse asserts the packet parser is total over arbitrary bytes: any
// input is either parsed or rejected, with no panics and no reads out of
// bounds (the datapath-facing robustness property).
func FuzzParse(f *testing.F) {
	good, _ := Build(nil, BuildSpec{
		Tuple:      FiveTuple{SrcIP: Addr(1, 2, 3, 4), DstIP: Addr(5, 6, 7, 8), SrcPort: 1, DstPort: 2, Proto: ProtoTCP},
		PayloadLen: 16,
	})
	udp, _ := Build(nil, BuildSpec{
		Tuple: FiveTuple{Proto: ProtoUDP}, PayloadLen: 0,
	})
	f.Add(good)
	f.Add(udp)
	f.Add([]byte{})
	f.Add(make([]byte, 14))
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		p := &Packet{Data: data}
		if err := p.Parse(); err != nil {
			if p.Parsed() {
				t.Fatal("Parsed true after error")
			}
			return
		}
		// Parsed packets must expose consistent views.
		_ = p.Tuple()
		_ = p.Payload()
		_ = p.VerifyIPChecksum()
		_ = p.SrcMAC()
		_ = p.DstMAC()
		// Mutators must stay in bounds.
		p.SetDstIP(Addr(9, 9, 9, 9))
		p.TTLDecrement()
	})
}

// FuzzParsePacket is the datapath parser fuzz target for the race-
// hardened tier: beyond totality (no panics, no out-of-bounds reads) it
// checks metamorphic properties a correct parser must satisfy on every
// input — determinism, bounds on the views it exposes, and checksum
// coherence after header rewrites. The seed corpus under
// testdata/fuzz/FuzzParsePacket covers truncated headers at every layer
// and adversarial length fields (IHL, total length, TCP data offset).
func FuzzParsePacket(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		p := &Packet{Data: data}
		err := p.Parse()

		// Determinism: parsing an identical buffer yields an identical
		// verdict and identical views.
		q := &Packet{Data: append([]byte(nil), data...)}
		errQ := q.Parse()
		if (err == nil) != (errQ == nil) {
			t.Fatalf("parse not deterministic: %v vs %v", err, errQ)
		}
		if err != nil {
			if p.Parsed() {
				t.Fatal("Parsed true after error")
			}
			return
		}
		if p.Tuple() != q.Tuple() {
			t.Fatalf("tuples differ on identical input: %v vs %v", p.Tuple(), q.Tuple())
		}

		// Exposed views stay inside the frame.
		if pay := p.Payload(); len(pay) > len(data) {
			t.Fatalf("payload %d bytes from a %d-byte frame", len(pay), len(data))
		}
		if p.RSSHash() != q.RSSHash() {
			t.Fatal("RSS hash not deterministic")
		}

		// Rewriting the destination recomputes a valid checksum and
		// keeps the packet parsable with the new address in the tuple.
		p.SetDstIP(Addr(203, 0, 113, 9))
		if !p.VerifyIPChecksum() {
			t.Fatal("checksum invalid after SetDstIP")
		}
		r := &Packet{Data: append([]byte(nil), p.Data...)}
		if err := r.Parse(); err != nil {
			t.Fatalf("reparse after SetDstIP: %v", err)
		}
		if r.Tuple().DstIP != Addr(203, 0, 113, 9) {
			t.Fatalf("DstIP = %v after rewrite", r.Tuple().DstIP)
		}

		// TTL decrement preserves checksum validity and every other
		// header byte.
		before := append([]byte(nil), p.Data...)
		p.TTLDecrement()
		if !p.VerifyIPChecksum() {
			t.Fatal("checksum invalid after TTLDecrement")
		}
		if len(before) != len(p.Data) {
			t.Fatal("TTLDecrement changed frame length")
		}
		diff := 0
		for i := range before {
			if before[i] != p.Data[i] {
				diff++
			}
		}
		if diff > 3 { // TTL byte plus up to two checksum bytes
			t.Fatalf("TTLDecrement changed %d bytes", diff)
		}
		if !bytes.Equal(p.Data[:EthHeaderLen], before[:EthHeaderLen]) {
			t.Fatal("TTLDecrement touched the Ethernet header")
		}
	})
}
