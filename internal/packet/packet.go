// Package packet provides the packet representation and header codecs used
// by the simulated NIC (internal/dpdk) and the NF framework
// (internal/netbricks).
//
// The layout mirrors what a DPDK mbuf carries: one contiguous buffer with
// parsed header offsets cached alongside. Only the protocols exercised by
// the paper's evaluation (Ethernet, IPv4, TCP, UDP) are implemented, plus
// the 5-tuple extraction Maglev hashes on.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/telemetry/trace"
)

// Header sizes and protocol constants.
const (
	EthHeaderLen  = 14
	IPv4HeaderLen = 20 // without options
	TCPHeaderLen  = 20 // without options
	UDPHeaderLen  = 8

	EtherTypeIPv4 = 0x0800

	ProtoTCP = 6
	ProtoUDP = 17
)

// Errors returned by parsing.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrNotIPv4     = errors.New("packet: not IPv4")
	ErrBadVersion  = errors.New("packet: bad IP version")
	ErrUnsupported = errors.New("packet: unsupported transport protocol")
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String formats the address in the canonical colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IPv4 is a 32-bit address in network byte order semantics.
type IPv4 uint32

// Addr builds an IPv4 from dotted-quad components.
func Addr(a, b, c, d byte) IPv4 {
	return IPv4(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// String formats the address as a dotted quad.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// FiveTuple identifies a transport flow; Maglev hashes it to pick a
// backend and the firewall classifies on its fields.
type FiveTuple struct {
	SrcIP   IPv4
	DstIP   IPv4
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Hash mixes the tuple into a 64-bit value (FNV-1a over the packed
// fields), stable across runs for reproducible experiments.
func (t FiveTuple) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	for i := 0; i < 4; i++ {
		mix(byte(t.SrcIP >> (24 - 8*i)))
	}
	for i := 0; i < 4; i++ {
		mix(byte(t.DstIP >> (24 - 8*i)))
	}
	mix(byte(t.SrcPort >> 8))
	mix(byte(t.SrcPort))
	mix(byte(t.DstPort >> 8))
	mix(byte(t.DstPort))
	mix(t.Proto)
	return h
}

// String renders the tuple as "proto src:port>dst:port".
func (t FiveTuple) String() string {
	proto := "?"
	switch t.Proto {
	case ProtoTCP:
		proto = "tcp"
	case ProtoUDP:
		proto = "udp"
	}
	return fmt.Sprintf("%s %s:%d>%s:%d", proto, t.SrcIP, t.SrcPort, t.DstIP, t.DstPort)
}

// Packet is the unit the pipeline processes: a contiguous frame buffer
// plus cached parse state. Packets are linearly owned by exactly one
// pipeline stage at a time; the NetBricks layer enforces this with
// linear.Owned batches.
type Packet struct {
	Data []byte // full frame, Ethernet first

	// Cached parse results, valid after Parse succeeds.
	l3Off   int
	l4Off   int
	payOff  int
	tuple   FiveTuple
	parsed  bool
	RxPort  int    // ingress port index, set by the driver
	RxQueue int    // ingress RX queue index, set by the driver
	RxHash  uint32 // RSS hash deposited by the (simulated) NIC
	UserTag uint64 // scratch word for NF state (e.g. chosen backend)

	// Trace is the sampled-tracing span riding in the mbuf: a fixed-size
	// pointer-free value struct, unarmed (all zero) for all but ~1/N
	// packets. Netport ingress arms it, pipeline stages stamp it, and TX
	// completes it (any drop path aborts it instead).
	Trace trace.Span
}

// Len returns the frame length in bytes.
func (p *Packet) Len() int { return len(p.Data) }

// Parsed reports whether Parse has succeeded on the current Data.
func (p *Packet) Parsed() bool { return p.parsed }

// Tuple returns the cached 5-tuple; Parse must have succeeded.
func (p *Packet) Tuple() FiveTuple { return p.tuple }

// Reset clears parse state so the buffer can be refilled in place. A
// stale armed span (impossible when the port's complete/abort accounting
// balances, but cheap to guard) is cleared so a recycled mbuf never
// resurrects a trace; the unarmed case pays one field compare.
func (p *Packet) Reset() {
	p.parsed = false
	p.UserTag = 0
	p.RxPort = 0
	p.RxQueue = 0
	p.RxHash = 0
	if p.Trace.Armed() {
		p.Trace.Clear()
	}
}

// Parse validates Ethernet/IPv4/{TCP,UDP} framing and caches offsets and
// the 5-tuple. It performs the bounds checks a real datapath would.
func (p *Packet) Parse() error {
	p.parsed = false
	b := p.Data
	if len(b) < EthHeaderLen {
		return fmt.Errorf("ethernet: %w", ErrTruncated)
	}
	etherType := binary.BigEndian.Uint16(b[12:14])
	if etherType != EtherTypeIPv4 {
		return fmt.Errorf("ethertype %#04x: %w", etherType, ErrNotIPv4)
	}
	p.l3Off = EthHeaderLen
	ip := b[p.l3Off:]
	if len(ip) < IPv4HeaderLen {
		return fmt.Errorf("ipv4: %w", ErrTruncated)
	}
	if v := ip[0] >> 4; v != 4 {
		return fmt.Errorf("version %d: %w", v, ErrBadVersion)
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(ip) < ihl {
		return fmt.Errorf("ipv4 ihl %d: %w", ihl, ErrTruncated)
	}
	totalLen := int(binary.BigEndian.Uint16(ip[2:4]))
	if totalLen > len(ip) || totalLen < ihl {
		return fmt.Errorf("ipv4 total length %d of %d: %w", totalLen, len(ip), ErrTruncated)
	}
	proto := ip[9]
	p.l4Off = p.l3Off + ihl
	l4 := b[p.l4Off:]
	var sport, dport uint16
	switch proto {
	case ProtoTCP:
		if len(l4) < TCPHeaderLen {
			return fmt.Errorf("tcp: %w", ErrTruncated)
		}
		sport = binary.BigEndian.Uint16(l4[0:2])
		dport = binary.BigEndian.Uint16(l4[2:4])
		dataOff := int(l4[12]>>4) * 4
		if dataOff < TCPHeaderLen || len(l4) < dataOff {
			return fmt.Errorf("tcp data offset %d: %w", dataOff, ErrTruncated)
		}
		p.payOff = p.l4Off + dataOff
	case ProtoUDP:
		if len(l4) < UDPHeaderLen {
			return fmt.Errorf("udp: %w", ErrTruncated)
		}
		sport = binary.BigEndian.Uint16(l4[0:2])
		dport = binary.BigEndian.Uint16(l4[2:4])
		p.payOff = p.l4Off + UDPHeaderLen
	default:
		return fmt.Errorf("protocol %d: %w", proto, ErrUnsupported)
	}
	p.tuple = FiveTuple{
		SrcIP:   IPv4(binary.BigEndian.Uint32(ip[12:16])),
		DstIP:   IPv4(binary.BigEndian.Uint32(ip[16:20])),
		SrcPort: sport,
		DstPort: dport,
		Proto:   proto,
	}
	p.parsed = true
	return nil
}

// Payload returns the transport payload; Parse must have succeeded.
func (p *Packet) Payload() []byte {
	if !p.parsed || p.payOff > len(p.Data) {
		return nil
	}
	return p.Data[p.payOff:]
}

// SrcMAC returns the Ethernet source address.
func (p *Packet) SrcMAC() MAC {
	var m MAC
	copy(m[:], p.Data[6:12])
	return m
}

// DstMAC returns the Ethernet destination address.
func (p *Packet) DstMAC() MAC {
	var m MAC
	copy(m[:], p.Data[0:6])
	return m
}

// SetDstIP rewrites the IPv4 destination (used by load balancers when
// forwarding to a backend) and fixes the header checksum incrementally.
func (p *Packet) SetDstIP(ip IPv4) {
	if !p.parsed {
		return
	}
	hdr := p.Data[p.l3Off:p.l4Off]
	binary.BigEndian.PutUint32(hdr[16:20], uint32(ip))
	// Recompute the full checksum; incremental update is an optimization
	// the experiments do not need.
	binary.BigEndian.PutUint16(hdr[10:12], 0)
	binary.BigEndian.PutUint16(hdr[10:12], ipChecksum(hdr))
	p.tuple.DstIP = ip
}

// TTLDecrement decrements the IPv4 TTL, returning false when it expires.
// Forwarding elements (Click-style) use this.
func (p *Packet) TTLDecrement() bool {
	if !p.parsed {
		return false
	}
	hdr := p.Data[p.l3Off:p.l4Off]
	if hdr[8] == 0 {
		return false
	}
	hdr[8]--
	binary.BigEndian.PutUint16(hdr[10:12], 0)
	binary.BigEndian.PutUint16(hdr[10:12], ipChecksum(hdr))
	return hdr[8] > 0
}

// ipChecksum computes the IPv4 header checksum (RFC 1071) over hdr with
// the checksum field already zeroed.
func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	if len(hdr)%2 == 1 {
		sum += uint32(hdr[len(hdr)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// VerifyIPChecksum recomputes and checks the IPv4 header checksum.
func (p *Packet) VerifyIPChecksum() bool {
	if !p.parsed {
		return false
	}
	hdr := p.Data[p.l3Off:p.l4Off]
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return uint16(sum) == 0xffff
}

// BuildSpec describes a synthetic packet for Build.
type BuildSpec struct {
	SrcMAC, DstMAC MAC
	Tuple          FiveTuple
	TTL            uint8
	PayloadLen     int
	PayloadByte    byte
}

// Build serializes a well-formed Ethernet/IPv4/{TCP,UDP} frame into buf
// (allocating if buf is too small) and returns the frame. The traffic
// generators in internal/dpdk call this for every synthetic packet.
func Build(buf []byte, spec BuildSpec) ([]byte, error) {
	var l4len int
	switch spec.Tuple.Proto {
	case ProtoTCP:
		l4len = TCPHeaderLen
	case ProtoUDP:
		l4len = UDPHeaderLen
	default:
		return nil, fmt.Errorf("build: protocol %d: %w", spec.Tuple.Proto, ErrUnsupported)
	}
	total := EthHeaderLen + IPv4HeaderLen + l4len + spec.PayloadLen
	if cap(buf) < total {
		buf = make([]byte, total)
	}
	buf = buf[:total]

	// Ethernet.
	copy(buf[0:6], spec.DstMAC[:])
	copy(buf[6:12], spec.SrcMAC[:])
	binary.BigEndian.PutUint16(buf[12:14], EtherTypeIPv4)

	// IPv4.
	ip := buf[EthHeaderLen:]
	ip[0] = 0x45 // version 4, IHL 5
	ip[1] = 0
	binary.BigEndian.PutUint16(ip[2:4], uint16(IPv4HeaderLen+l4len+spec.PayloadLen))
	binary.BigEndian.PutUint16(ip[4:6], 0) // ident
	binary.BigEndian.PutUint16(ip[6:8], 0) // flags/frag
	ttl := spec.TTL
	if ttl == 0 {
		ttl = 64
	}
	ip[8] = ttl
	ip[9] = spec.Tuple.Proto
	binary.BigEndian.PutUint16(ip[10:12], 0)
	binary.BigEndian.PutUint32(ip[12:16], uint32(spec.Tuple.SrcIP))
	binary.BigEndian.PutUint32(ip[16:20], uint32(spec.Tuple.DstIP))
	binary.BigEndian.PutUint16(ip[10:12], ipChecksum(ip[:IPv4HeaderLen]))

	// Transport.
	l4 := ip[IPv4HeaderLen:]
	binary.BigEndian.PutUint16(l4[0:2], spec.Tuple.SrcPort)
	binary.BigEndian.PutUint16(l4[2:4], spec.Tuple.DstPort)
	switch spec.Tuple.Proto {
	case ProtoTCP:
		binary.BigEndian.PutUint32(l4[4:8], 1)  // seq
		binary.BigEndian.PutUint32(l4[8:12], 0) // ack
		l4[12] = (TCPHeaderLen / 4) << 4        // data offset
		l4[13] = 0x10                           // ACK flag
		binary.BigEndian.PutUint16(l4[14:16], 65535)
		binary.BigEndian.PutUint16(l4[16:18], 0) // checksum: generators skip it
		binary.BigEndian.PutUint16(l4[18:20], 0)
	case ProtoUDP:
		binary.BigEndian.PutUint16(l4[4:6], uint16(UDPHeaderLen+spec.PayloadLen))
		binary.BigEndian.PutUint16(l4[6:8], 0)
	}

	// Payload.
	payload := l4[l4len:]
	for i := range payload {
		payload[i] = spec.PayloadByte
	}
	return buf, nil
}
