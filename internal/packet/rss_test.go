package packet

import "testing"

// TestToeplitzVerificationVectors checks the hash against the IPv4-with-
// ports test vectors published with the Microsoft RSS specification (the
// same vectors NIC vendors validate against). Passing these means the
// simulated steering is bit-identical to hardware RSS under the default
// key.
func TestToeplitzVerificationVectors(t *testing.T) {
	cases := []struct {
		src, dst         IPv4
		srcPort, dstPort uint16
		want             uint32
	}{
		{Addr(66, 9, 149, 187), Addr(161, 142, 100, 80), 2794, 1766, 0x51ccc178},
		{Addr(199, 92, 111, 2), Addr(65, 69, 140, 83), 14230, 4739, 0xc626b0ea},
		{Addr(24, 19, 198, 95), Addr(12, 22, 207, 184), 12898, 38024, 0x5c2b394a},
		{Addr(38, 27, 205, 30), Addr(209, 142, 163, 6), 48228, 2217, 0xafc7327f},
		{Addr(153, 39, 163, 191), Addr(202, 188, 127, 2), 44251, 1303, 0x10e828a2},
	}
	for _, c := range cases {
		tuple := FiveTuple{SrcIP: c.src, DstIP: c.dst, SrcPort: c.srcPort, DstPort: c.dstPort, Proto: ProtoTCP}
		if got := tuple.RSSHash(DefaultRSSKey); got != c.want {
			t.Errorf("RSSHash(%v) = %#08x, want %#08x", tuple, got, c.want)
		}
	}
}

// TestRSSHashDeterministic: steering is a pure function of the 5-tuple,
// so one flow can never migrate between workers.
func TestRSSHashDeterministic(t *testing.T) {
	tuple := FiveTuple{SrcIP: Addr(10, 0, 0, 1), DstIP: Addr(10, 99, 0, 1), SrcPort: 40000, DstPort: 80, Proto: ProtoUDP}
	first := tuple.RSSHash(DefaultRSSKey)
	for i := 0; i < 100; i++ {
		if got := tuple.RSSHash(DefaultRSSKey); got != first {
			t.Fatalf("hash varied: %#x then %#x", first, got)
		}
	}
	reta := NewRETA(4, DefaultRETASize)
	q := reta.Queue(first)
	for i := 0; i < 100; i++ {
		if got := reta.Queue(tuple.RSSHash(DefaultRSSKey)); got != q {
			t.Fatalf("queue varied: %d then %d", q, got)
		}
	}
}

// TestRSSHashMatchesPacket: the mbuf-style cached hash agrees with the
// tuple hash, and is zero before Parse.
func TestRSSHashMatchesPacket(t *testing.T) {
	spec := BuildSpec{
		Tuple: FiveTuple{
			SrcIP: Addr(192, 168, 1, 7), DstIP: Addr(10, 0, 0, 9),
			SrcPort: 5555, DstPort: 443, Proto: ProtoTCP,
		},
		PayloadLen: 8,
	}
	frame, err := Build(nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	p := &Packet{Data: frame}
	if p.RSSHash() != 0 {
		t.Fatal("RSSHash nonzero before Parse")
	}
	if err := p.Parse(); err != nil {
		t.Fatal(err)
	}
	if p.RSSHash() != spec.Tuple.RSSHash(DefaultRSSKey) {
		t.Fatal("packet hash disagrees with tuple hash")
	}
}

// TestRSSShardingBalanced is the property test for flow steering: over a
// population of synthetic flows, the RETA spreads flows across queues
// uniformly enough to pass a chi-squared goodness-of-fit test at the
// 99.9% level. A systematic bias (bad hash, bad indirection) fails this
// loudly; statistical noise does not.
func TestRSSShardingBalanced(t *testing.T) {
	// 99.9% critical values of chi-squared with queues-1 degrees of
	// freedom.
	critical := map[int]float64{2: 10.83, 4: 16.27, 8: 24.32}
	const flows = 8192
	for queues, crit := range critical {
		reta := NewRETA(queues, DefaultRETASize)
		counts := make([]int, queues)
		for i := 0; i < flows; i++ {
			tuple := FiveTuple{
				SrcIP:   Addr(10, byte(i>>16), byte(i>>8), byte(i)),
				DstIP:   Addr(10, 99, 0, 1),
				SrcPort: uint16(40000 + i%20000),
				DstPort: 80,
				Proto:   ProtoUDP,
			}
			counts[reta.Queue(tuple.RSSHash(DefaultRSSKey))]++
		}
		expected := float64(flows) / float64(queues)
		var chi2 float64
		for q, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
			if c == 0 {
				t.Errorf("queues=%d: queue %d got no flows", queues, q)
			}
		}
		if chi2 > crit {
			t.Errorf("queues=%d: chi-squared %.2f exceeds %.2f (counts %v)", queues, chi2, crit, counts)
		}
	}
}

// TestRETAShape checks sizing and round-robin reset state.
func TestRETAShape(t *testing.T) {
	r := NewRETA(3, 100)
	if r.Size() != DefaultRETASize {
		t.Fatalf("size %d, want %d (rounded up)", r.Size(), DefaultRETASize)
	}
	if r.Queues() != 3 {
		t.Fatalf("queues = %d", r.Queues())
	}
	// Round-robin assignment: entry i serves queue i mod 3.
	for hash := uint32(0); hash < DefaultRETASize; hash++ {
		if got := r.Queue(hash); got != int(hash)%3 {
			t.Fatalf("Queue(%d) = %d, want %d", hash, got, int(hash)%3)
		}
	}
	// Hashes beyond the table wrap on the low bits.
	if r.Queue(DefaultRETASize+5) != r.Queue(5) {
		t.Fatal("indirection did not wrap on low bits")
	}
}

func TestRETARejectsZeroQueues(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewRETA(0, DefaultRETASize)
}
