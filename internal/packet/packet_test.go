package packet

import (
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"
)

func sampleSpec(proto uint8, payload int) BuildSpec {
	return BuildSpec{
		SrcMAC:      MAC{0x02, 0, 0, 0, 0, 1},
		DstMAC:      MAC{0x02, 0, 0, 0, 0, 2},
		Tuple:       FiveTuple{SrcIP: Addr(10, 0, 0, 1), DstIP: Addr(192, 168, 1, 2), SrcPort: 12345, DstPort: 80, Proto: proto},
		TTL:         64,
		PayloadLen:  payload,
		PayloadByte: 0xAB,
	}
}

func TestBuildParseRoundTripTCP(t *testing.T) {
	frame, err := Build(nil, sampleSpec(ProtoTCP, 100))
	if err != nil {
		t.Fatal(err)
	}
	p := &Packet{Data: frame}
	if err := p.Parse(); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	tup := p.Tuple()
	if tup.SrcIP != Addr(10, 0, 0, 1) || tup.DstIP != Addr(192, 168, 1, 2) {
		t.Fatalf("tuple IPs = %v", tup)
	}
	if tup.SrcPort != 12345 || tup.DstPort != 80 || tup.Proto != ProtoTCP {
		t.Fatalf("tuple = %v", tup)
	}
	if got := len(p.Payload()); got != 100 {
		t.Fatalf("payload len = %d, want 100", got)
	}
	for _, b := range p.Payload() {
		if b != 0xAB {
			t.Fatal("payload corrupted")
		}
	}
	if !p.VerifyIPChecksum() {
		t.Fatal("bad IP checksum on built packet")
	}
}

func TestBuildParseRoundTripUDP(t *testing.T) {
	frame, err := Build(nil, sampleSpec(ProtoUDP, 8))
	if err != nil {
		t.Fatal(err)
	}
	p := &Packet{Data: frame}
	if err := p.Parse(); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Tuple().Proto != ProtoUDP {
		t.Fatalf("proto = %d", p.Tuple().Proto)
	}
	if got := len(p.Payload()); got != 8 {
		t.Fatalf("payload len = %d", got)
	}
}

func TestBuildRejectsUnknownProto(t *testing.T) {
	_, err := Build(nil, sampleSpec(99, 0))
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

func TestBuildReusesBuffer(t *testing.T) {
	buf := make([]byte, 2048)
	frame, err := Build(buf, sampleSpec(ProtoUDP, 10))
	if err != nil {
		t.Fatal(err)
	}
	if &frame[0] != &buf[0] {
		t.Fatal("Build reallocated despite sufficient capacity")
	}
}

func TestParseTruncated(t *testing.T) {
	frame, _ := Build(nil, sampleSpec(ProtoTCP, 0))
	for _, cut := range []int{0, 5, EthHeaderLen - 1, EthHeaderLen + 3, EthHeaderLen + IPv4HeaderLen + 5} {
		p := &Packet{Data: frame[:cut]}
		if err := p.Parse(); err == nil {
			t.Fatalf("Parse of %d-byte prefix succeeded", cut)
		}
		if p.Parsed() {
			t.Fatal("Parsed true after failed parse")
		}
	}
}

func TestParseNonIPv4(t *testing.T) {
	frame, _ := Build(nil, sampleSpec(ProtoTCP, 0))
	binary.BigEndian.PutUint16(frame[12:14], 0x0806) // ARP
	p := &Packet{Data: frame}
	if err := p.Parse(); !errors.Is(err, ErrNotIPv4) {
		t.Fatalf("err = %v, want ErrNotIPv4", err)
	}
}

func TestParseBadVersion(t *testing.T) {
	frame, _ := Build(nil, sampleSpec(ProtoTCP, 0))
	frame[EthHeaderLen] = 0x65 // version 6
	p := &Packet{Data: frame}
	if err := p.Parse(); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestParseBadTotalLength(t *testing.T) {
	frame, _ := Build(nil, sampleSpec(ProtoUDP, 4))
	binary.BigEndian.PutUint16(frame[EthHeaderLen+2:EthHeaderLen+4], 9999)
	p := &Packet{Data: frame}
	if err := p.Parse(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestParseUnsupportedTransport(t *testing.T) {
	frame, _ := Build(nil, sampleSpec(ProtoUDP, 0))
	frame[EthHeaderLen+9] = 1 // ICMP
	// Fix checksum so only the protocol check can fail… not required for
	// Parse, which doesn't verify checksums, but keep the frame sane.
	p := &Packet{Data: frame}
	if err := p.Parse(); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

func TestMACAccessorsAndString(t *testing.T) {
	spec := sampleSpec(ProtoTCP, 0)
	frame, _ := Build(nil, spec)
	p := &Packet{Data: frame}
	if p.SrcMAC() != spec.SrcMAC || p.DstMAC() != spec.DstMAC {
		t.Fatal("MAC round trip failed")
	}
	if got := spec.SrcMAC.String(); got != "02:00:00:00:00:01" {
		t.Fatalf("MAC string = %q", got)
	}
}

func TestIPv4String(t *testing.T) {
	if got := Addr(192, 168, 0, 1).String(); got != "192.168.0.1" {
		t.Fatalf("String = %q", got)
	}
}

func TestFiveTupleString(t *testing.T) {
	tup := FiveTuple{SrcIP: Addr(1, 2, 3, 4), DstIP: Addr(5, 6, 7, 8), SrcPort: 10, DstPort: 20, Proto: ProtoTCP}
	if got := tup.String(); got != "tcp 1.2.3.4:10>5.6.7.8:20" {
		t.Fatalf("String = %q", got)
	}
	tup.Proto = ProtoUDP
	if got := tup.String(); got != "udp 1.2.3.4:10>5.6.7.8:20" {
		t.Fatalf("String = %q", got)
	}
}

func TestSetDstIPRewritesAndChecksums(t *testing.T) {
	frame, _ := Build(nil, sampleSpec(ProtoTCP, 16))
	p := &Packet{Data: frame}
	if err := p.Parse(); err != nil {
		t.Fatal(err)
	}
	p.SetDstIP(Addr(10, 10, 10, 10))
	if p.Tuple().DstIP != Addr(10, 10, 10, 10) {
		t.Fatal("cached tuple not updated")
	}
	if !p.VerifyIPChecksum() {
		t.Fatal("checksum invalid after rewrite")
	}
	// Reparse from the wire bytes: the rewrite must be on the frame.
	q := &Packet{Data: p.Data}
	if err := q.Parse(); err != nil {
		t.Fatal(err)
	}
	if q.Tuple().DstIP != Addr(10, 10, 10, 10) {
		t.Fatal("rewrite not visible on the wire")
	}
}

func TestTTLDecrement(t *testing.T) {
	spec := sampleSpec(ProtoUDP, 0)
	spec.TTL = 2
	frame, _ := Build(nil, spec)
	p := &Packet{Data: frame}
	if err := p.Parse(); err != nil {
		t.Fatal(err)
	}
	if !p.TTLDecrement() { // 2 -> 1, still alive
		t.Fatal("TTL expired early")
	}
	if !p.VerifyIPChecksum() {
		t.Fatal("checksum invalid after TTL decrement")
	}
	if p.TTLDecrement() { // 1 -> 0, expired
		t.Fatal("TTL should have expired")
	}
	if p.TTLDecrement() { // stays at 0
		t.Fatal("TTL decremented below zero")
	}
}

func TestResetClearsState(t *testing.T) {
	frame, _ := Build(nil, sampleSpec(ProtoTCP, 0))
	p := &Packet{Data: frame, RxPort: 3, UserTag: 9}
	_ = p.Parse()
	p.Reset()
	if p.Parsed() || p.RxPort != 0 || p.UserTag != 0 {
		t.Fatal("Reset incomplete")
	}
}

// Property: Build → Parse recovers the exact 5-tuple for arbitrary
// tuples and payload sizes.
func TestQuickBuildParseTuple(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, udp bool, pay uint8) bool {
		proto := uint8(ProtoTCP)
		if udp {
			proto = ProtoUDP
		}
		spec := BuildSpec{
			Tuple:      FiveTuple{SrcIP: IPv4(src), DstIP: IPv4(dst), SrcPort: sp, DstPort: dp, Proto: proto},
			PayloadLen: int(pay),
		}
		frame, err := Build(nil, spec)
		if err != nil {
			return false
		}
		p := &Packet{Data: frame}
		if err := p.Parse(); err != nil {
			return false
		}
		return p.Tuple() == spec.Tuple && p.VerifyIPChecksum() && len(p.Payload()) == int(pay)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the tuple hash is deterministic and sensitive to each field.
func TestQuickTupleHash(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16) bool {
		a := FiveTuple{SrcIP: IPv4(src), DstIP: IPv4(dst), SrcPort: sp, DstPort: dp, Proto: ProtoTCP}
		if a.Hash() != a.Hash() {
			return false
		}
		b := a
		b.SrcPort ^= 1
		return a.Hash() != b.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParseTCP(b *testing.B) {
	frame, _ := Build(nil, sampleSpec(ProtoTCP, 64))
	p := &Packet{Data: frame}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.Parse(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildUDP(b *testing.B) {
	buf := make([]byte, 2048)
	spec := sampleSpec(ProtoUDP, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(buf, spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTupleHash(b *testing.B) {
	tup := FiveTuple{SrcIP: Addr(10, 0, 0, 1), DstIP: Addr(10, 0, 0, 2), SrcPort: 1, DstPort: 2, Proto: ProtoTCP}
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += tup.Hash()
	}
	_ = sink
}
