// RSS-style flow steering: the Toeplitz hash NICs compute per received
// packet, and the redirection table (RETA) that maps hashes to receive
// queues.
//
// Receive-side scaling is what lets a multi-queue NIC spread flows across
// cores while keeping every packet of one flow on the same core — the
// property the sharded pipeline runtime depends on for its per-worker
// connection state (and, together with linear batch ownership, for being
// data-race-free by construction). The hash here is the exact Microsoft
// RSS Toeplitz construction over the IPv4 4-tuple, verified against the
// published test vectors, so the simulated NIC steers like real hardware.

package packet

import "encoding/binary"

// RSSKeyLen is the length of an RSS hash key in bytes (40 bytes covers
// the longest defined input, IPv6 with ports).
const RSSKeyLen = 40

// RSSKey is a Toeplitz hash key.
type RSSKey [RSSKeyLen]byte

// DefaultRSSKey is the well-known default key from the Microsoft RSS
// specification, used (byte for byte) by ixgbe, i40e, and the RSS
// verification suite. Deterministic across runs, so experiments that
// shard by flow are reproducible.
var DefaultRSSKey = RSSKey{
	0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2,
	0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
	0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4,
	0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
	0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
}

// Toeplitz computes the RSS Toeplitz hash of input under key: for every
// set bit i of the input (most-significant first), the 32-bit window of
// the key starting at bit i is XORed into the result.
func Toeplitz(key RSSKey, input []byte) uint32 {
	// window holds the next 64 key bits, left-aligned; the top 32 bits
	// are the window the current input bit selects.
	window := binary.BigEndian.Uint64(key[:8])
	next := 8
	var hash uint32
	for _, b := range input {
		for bit := 7; bit >= 0; bit-- {
			if b&(1<<uint(bit)) != 0 {
				hash ^= uint32(window >> 32)
			}
			window <<= 1
		}
		// Eight shifts freed the low byte; pull in the next key byte.
		if next < len(key) {
			window |= uint64(key[next])
			next++
		}
	}
	return hash
}

// RSSHash computes the flow's RSS hash with key, over the standard IPv4
// input ordering: source address, destination address, source port,
// destination port (the NdisHashIpv4TcpUdp input). The transport protocol
// is not part of the input, matching the hardware definition.
func (t FiveTuple) RSSHash(key RSSKey) uint32 {
	var in [12]byte
	binary.BigEndian.PutUint32(in[0:4], uint32(t.SrcIP))
	binary.BigEndian.PutUint32(in[4:8], uint32(t.DstIP))
	binary.BigEndian.PutUint16(in[8:10], t.SrcPort)
	binary.BigEndian.PutUint16(in[10:12], t.DstPort)
	return Toeplitz(key, in[:])
}

// RSSHash is the packet's receive-side-scaling hash under the default
// key; Parse must have succeeded. This is the value a NIC would deposit
// in the mbuf's rss field.
func (p *Packet) RSSHash() uint32 {
	if !p.parsed {
		return 0
	}
	return p.tuple.RSSHash(DefaultRSSKey)
}

// DefaultRETASize is the indirection-table size most NICs expose (ixgbe:
// 128 entries).
const DefaultRETASize = 128

// RETA is an RSS redirection table: hash → queue. Hardware looks up the
// low-order bits of the Toeplitz hash in this table rather than taking a
// modulus, so queues can be rebalanced by rewriting entries without
// touching the hash. The table is immutable after construction and safe
// for concurrent readers.
type RETA struct {
	table  []uint16
	queues int
}

// NewRETA builds a redirection table of the given size (rounded up to a
// power of two, minimum DefaultRETASize) with entries assigned to queues
// round-robin — the reset state of real NICs.
func NewRETA(queues, size int) *RETA {
	if queues <= 0 {
		panic("packet: RETA queues must be positive")
	}
	if size < DefaultRETASize {
		size = DefaultRETASize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	r := &RETA{table: make([]uint16, n), queues: queues}
	for i := range r.table {
		r.table[i] = uint16(i % queues)
	}
	return r
}

// Queues reports the number of receive queues the table spreads across.
func (r *RETA) Queues() int { return r.queues }

// Size reports the number of table entries.
func (r *RETA) Size() int { return len(r.table) }

// Queue maps an RSS hash to a receive queue via the indirection table.
func (r *RETA) Queue(hash uint32) int {
	return int(r.table[hash&uint32(len(r.table)-1)])
}
