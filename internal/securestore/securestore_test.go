package securestore

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/minirust"
	"repro/internal/verifier"
)

func TestCorrectStoreVerifies(t *testing.T) {
	rep := VerifyVariant(Correct)
	if !rep.OK() {
		t.Fatalf("correct store rejected:\n%s", rep)
	}
}

func TestCorrectStoreServesPublicData(t *testing.T) {
	rep := VerifyVariant(Correct)
	res, err := verifier.Execute(rep)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("run err = %v", res.Err)
	}
	if strings.TrimSpace(res.Output) != "[1, 2, 3]" {
		t.Fatalf("served = %q, want the visitor's data only", res.Output)
	}
	// The admin's 900-series values must never appear on the public
	// channel.
	if strings.Contains(res.Output, "900") || strings.Contains(res.Output, "901") {
		t.Fatal("confidential data leaked to output")
	}
}

func TestEverySeededBugDiscovered(t *testing.T) {
	// The paper: "we seeded a bug into checking of security access in the
	// implementation. SMACK discovered the injected bug."
	for _, v := range Variants {
		if !v.Buggy() {
			continue
		}
		t.Run(v.String(), func(t *testing.T) {
			rep := VerifyVariant(v)
			if rep.OK() {
				t.Fatalf("seeded bug %s NOT discovered:\n%s", v, Source(v))
			}
			if rep.Stage != verifier.StageIFC {
				t.Fatalf("bug %s rejected at %s, want information-flow stage (err: %v)", v, rep.Stage, rep.Err)
			}
			if len(rep.Violations) == 0 {
				t.Fatalf("bug %s: no violations reported", v)
			}
			// Every violation involves secret data breaching a public
			// bound.
			for _, viol := range rep.Violations {
				if viol.Label != "secret" || viol.Bound != "public" {
					t.Fatalf("bug %s: unexpected violation %+v", v, viol)
				}
			}
		})
	}
}

func TestSeededBugsAlsoLeakDynamically(t *testing.T) {
	// Cross-check the static verdicts against the runtime monitor: the
	// variants that actually send secret data to the output must raise a
	// dynamic leak too. (BugSwappedCheck stores public data in the secret
	// partition and vice versa, so the public read serves secret data;
	// same for the other two.)
	for _, v := range []Variant{BugSwappedCheck, BugMissingCheck, BugLeakyRead} {
		t.Run(v.String(), func(t *testing.T) {
			rep := VerifyVariant(v)
			res, err := verifier.Execute(rep)
			if err != nil {
				t.Fatal(err)
			}
			var leak *minirust.LeakError
			if v == BugMissingCheck {
				// The missing check stores secret data in the public
				// partition: the read then serves it — dynamic leak.
				if !errors.As(res.Err, &leak) {
					t.Fatalf("err = %v, want dynamic leak", res.Err)
				}
				return
			}
			if v == BugSwappedCheck {
				// Swapped: secret lands in pub_data, public in sec_data;
				// the public read serves the secret values.
				if !errors.As(res.Err, &leak) {
					t.Fatalf("err = %v, want dynamic leak", res.Err)
				}
				return
			}
			// Leaky read serves sec_data, which holds admin data.
			if !errors.As(res.Err, &leak) {
				t.Fatalf("err = %v, want dynamic leak", res.Err)
			}
		})
	}
}

func TestVariantNames(t *testing.T) {
	if Correct.String() != "correct" || Correct.Buggy() {
		t.Fatal("Correct metadata wrong")
	}
	for _, v := range Variants[1:] {
		if !v.Buggy() || v.String() == "" {
			t.Fatalf("variant %d metadata wrong", int(v))
		}
	}
	if Variant(99).String() != "Variant(99)" {
		t.Fatal("unknown variant name")
	}
}

func TestSourcesDiffer(t *testing.T) {
	seen := map[string]Variant{}
	for _, v := range Variants {
		src := Source(v)
		if prev, dup := seen[src]; dup {
			t.Fatalf("variants %s and %s have identical source", prev, v)
		}
		seen[src] = v
	}
}
