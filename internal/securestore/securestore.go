// Package securestore contains the paper's §4 case study: "a simple
// secure data store … which stores data on behalf of multiple clients,
// while preventing non-privileged clients from reading data belonging to
// privileged ones. The security-label bounds were specified in the
// example program through the use of assertions."
//
// The store is written in minirust and verified with internal/verifier.
// As in the paper's sanity check, seeded bugs in the access-check logic
// (the Variant values) must each be discovered by the verifier, while the
// correct implementation verifies clean.
package securestore

import (
	"fmt"

	"repro/internal/verifier"
)

// Variant selects the store implementation: the correct one or one with a
// seeded access-check bug.
type Variant int

// Store variants.
const (
	// Correct is the properly access-checked store.
	Correct Variant = iota
	// BugSwappedCheck inverts the privilege check in put: privileged
	// (secret) writes land in the public partition.
	BugSwappedCheck
	// BugMissingCheck drops the privilege check entirely: every write
	// lands in the public partition.
	BugMissingCheck
	// BugLeakyRead makes the non-privileged read path return the secret
	// partition.
	BugLeakyRead
)

// Variants lists all store variants.
var Variants = []Variant{Correct, BugSwappedCheck, BugMissingCheck, BugLeakyRead}

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Correct:
		return "correct"
	case BugSwappedCheck:
		return "bug-swapped-check"
	case BugMissingCheck:
		return "bug-missing-check"
	case BugLeakyRead:
		return "bug-leaky-read"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Buggy reports whether the variant contains a seeded bug.
func (v Variant) Buggy() bool { return v != Correct }

// Source renders the store program for the given variant.
func Source(v Variant) string {
	// put: route the write according to the privilege of the client.
	putBody := `
        if privileged {
            append_to(&mut self.sec_data, &v);
        } else {
            append_to(&mut self.pub_data, &v);
        }`
	switch v {
	case BugSwappedCheck:
		putBody = `
        if privileged {
            append_to(&mut self.pub_data, &v); // SEEDED BUG: swapped
        } else {
            append_to(&mut self.sec_data, &v); // SEEDED BUG: swapped
        }`
	case BugMissingCheck:
		putBody = `
        append_to(&mut self.pub_data, &v); // SEEDED BUG: check removed`
	}
	readExpr := "copy_of(&self.pub_data)"
	if v == BugLeakyRead {
		readExpr = "copy_of(&self.sec_data)" // SEEDED BUG: wrong partition
	}

	return fmt.Sprintf(`
labels public < secret;

struct Store {
    pub_data: Vec<i64>,
    sec_data: Vec<i64>,
}

// append_to copies src's elements onto the end of dst.
fn append_to(dst: &mut Vec<i64>, src: &Vec<i64>) {
    let n = vec_len(src);
    let mut i = 0;
    while i < n {
        vec_push(dst, vec_get(src, i));
        i = i + 1;
    }
}

// copy_of returns a fresh vector with src's contents.
fn copy_of(src: &Vec<i64>) -> Vec<i64> {
    let mut out = vec![];
    append_to(&mut out, src);
    return out;
}

impl Store {
    fn new() -> Store {
        return Store { pub_data: vec![], sec_data: vec![] };
    }
    // put stores v on behalf of a client; privileged clients' data is
    // confidential.
    fn put(&mut self, privileged: bool, v: Vec<i64>) {%s
    }
    // read_public serves non-privileged clients: it must only ever
    // return public-partition data.
    fn read_public(&self) -> Vec<i64> {
        return %s;
    }
}

fn main() {
    let mut store = Store::new();

    // A non-privileged client stores public data.
    #[label(public)]
    let visitor_data = vec![1, 2, 3];
    store.put(false, visitor_data);

    // A privileged client stores confidential data.
    #[label(secret)]
    let admin_data = vec![900, 901];
    store.put(true, admin_data);

    // A non-privileged client reads back. The security bound is stated
    // as an assertion, as in the paper, and the result goes to the
    // public terminal.
    let served = store.read_public();
    assert_label_max(served, "public");
    println(served);
}
`, putBody, readExpr)
}

// VerifyVariant runs the full verification pipeline on a variant.
func VerifyVariant(v Variant) *verifier.Report {
	return verifier.Verify(Source(v))
}
