package firewall

// durable.go implements the domain runtime's TokenCodec for the
// stateful firewall: a checkpoint token (engine snapshot of the rule
// DB) serializes as the distinct shared rules plus, per trie prefix,
// the indices of the handles attached there — so Figure 3a's aliasing
// (one rule under many prefixes) survives the byte round trip exactly.
// Decoding rebuilds the DB through AttachRule clones and re-checkpoints
// it, yielding the *checkpoint.Snapshot Restore already accepts.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/packet"
)

const firewallTokenVersion = 1

// walkedPrefix is one trie leaf: a prefix and the distinct-rule indices
// of its handle list, in evaluation order.
type walkedPrefix struct {
	ip      packet.IPv4
	length  uint8
	handles []uint32
}

// flattenDB walks a DB into distinct rules (aliased handles counted
// once, identity by shared box) and per-prefix index lists. The O(n²)
// identity scan matches RuleCount; rule sets are configuration-sized.
func flattenDB(db *DB) (rules []Rule, prefixes []walkedPrefix) {
	var boxes []SharedRule
	indexOf := func(h SharedRule) uint32 {
		for i, b := range boxes {
			if h.SameBox(b) {
				return uint32(i)
			}
		}
		boxes = append(boxes, h)
		rules = append(rules, h.Get())
		return uint32(len(boxes) - 1)
	}
	db.Rules.Walk(func(ip packet.IPv4, length int, v *[]SharedRule) bool {
		p := walkedPrefix{ip: ip, length: uint8(length)}
		for _, h := range *v {
			p.handles = append(p.handles, indexOf(h))
		}
		prefixes = append(prefixes, p)
		return true
	})
	return rules, prefixes
}

// EncodeToken implements domain.TokenCodec.
func (s *Stateful) EncodeToken(token any) ([]byte, error) {
	snap, ok := token.(*checkpoint.Snapshot)
	if !ok {
		return nil, fmt.Errorf("firewall: encode token is %T, want *checkpoint.Snapshot", token)
	}
	db, err := RestoreDB(snap)
	if err != nil {
		return nil, fmt.Errorf("firewall: encode: %w", err)
	}
	rules, prefixes := flattenDB(db)
	buf := []byte{firewallTokenVersion, byte(db.Default)}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rules)))
	for _, r := range rules {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(r.ID)))
		buf = append(buf, byte(r.Action), r.Proto)
		buf = binary.LittleEndian.AppendUint16(buf, r.DstPort)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Comment)))
		buf = append(buf, r.Comment...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(prefixes)))
	for _, p := range prefixes {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.ip))
		buf = append(buf, p.length)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.handles)))
		for _, idx := range p.handles {
			buf = binary.LittleEndian.AppendUint32(buf, idx)
		}
	}
	return buf, nil
}

// DecodeToken implements domain.TokenCodec.
func (s *Stateful) DecodeToken(data []byte) (any, error) {
	if len(data) < 6 || data[0] != firewallTokenVersion {
		return nil, fmt.Errorf("firewall: bad token header")
	}
	db := NewDB(Action(data[1]))
	nRules := int(binary.LittleEndian.Uint32(data[2:]))
	data = data[6:]
	handles := make([]SharedRule, nRules)
	for i := 0; i < nRules; i++ {
		if len(data) < 14 {
			return nil, fmt.Errorf("firewall: token truncated at rule %d", i)
		}
		r := Rule{
			ID:      int(int64(binary.LittleEndian.Uint64(data))),
			Action:  Action(data[8]),
			Proto:   data[9],
			DstPort: binary.LittleEndian.Uint16(data[10:]),
		}
		commentLen := int(binary.LittleEndian.Uint16(data[12:]))
		data = data[14:]
		if len(data) < commentLen {
			return nil, fmt.Errorf("firewall: token truncated at rule %d comment", i)
		}
		r.Comment = string(data[:commentLen])
		data = data[commentLen:]
		handles[i] = checkpoint.NewRc(r)
	}
	if len(data) < 4 {
		return nil, fmt.Errorf("firewall: token truncated at prefix count")
	}
	nPrefixes := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	for i := 0; i < nPrefixes; i++ {
		if len(data) < 7 {
			return nil, fmt.Errorf("firewall: token truncated at prefix %d", i)
		}
		ip := packet.IPv4(binary.LittleEndian.Uint32(data))
		length := int(data[4])
		nHandles := int(binary.LittleEndian.Uint16(data[5:]))
		data = data[7:]
		if len(data) < nHandles*4 {
			return nil, fmt.Errorf("firewall: token truncated at prefix %d handles", i)
		}
		for j := 0; j < nHandles; j++ {
			idx := binary.LittleEndian.Uint32(data[j*4:])
			if int(idx) >= nRules {
				return nil, fmt.Errorf("firewall: prefix %d references rule %d of %d", i, idx, nRules)
			}
			if err := db.AttachRule(ip, length, handles[idx]); err != nil {
				return nil, fmt.Errorf("firewall: decode: %w", err)
			}
		}
		data = data[nHandles*4:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("firewall: token has %d trailing bytes", len(data))
	}
	snap, err := db.Checkpoint(checkpoint.NewEngine(checkpoint.RcAware))
	if err != nil {
		return nil, fmt.Errorf("firewall: decode: re-checkpoint: %w", err)
	}
	return snap, nil
}
