package firewall

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/packet"
)

func TestFirewallTokenRoundTrip(t *testing.T) {
	db := NewDB(Deny)
	// One rule attached under three prefixes (Figure 3a aliasing), plus
	// a prefix-local rule with transport constraints.
	shared, err := db.AddRule(0x0a000000, 8, Rule{ID: 1, Action: Allow, Comment: "allow 10/8"})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachRule(0xac100000, 12, shared); err != nil {
		t.Fatal(err)
	}
	// The DNS deny goes first in the /16 leaf (leaf rules evaluate in
	// order), the shared allow-all after it.
	if _, err := db.AddRule(0xc0a80000, 16, Rule{ID: 2, Action: Deny, Proto: 17, DstPort: 53, Comment: "no dns"}); err != nil {
		t.Fatal(err)
	}
	if err := db.AttachRule(0xc0a80000, 16, shared); err != nil {
		t.Fatal(err)
	}
	src, err := NewStateful(db)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := src.Checkpoint(checkpoint.NewEngine(checkpoint.RcAware))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := src.EncodeToken(snap)
	if err != nil {
		t.Fatal(err)
	}

	dst, err := NewStateful(NewDB(Allow))
	if err != nil {
		t.Fatal(err)
	}
	token, err := dst.DecodeToken(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Restore(token); err != nil {
		t.Fatal(err)
	}
	got := dst.DB()
	if got.Default != Deny {
		t.Fatalf("default = %v, want Deny", got.Default)
	}
	// Aliasing preserved exactly: 2 distinct rules, 4 handles.
	distinct, handles := got.RuleCount()
	if distinct != 2 || handles != 4 {
		t.Fatalf("restored %d distinct/%d handles, want 2/4", distinct, handles)
	}
	// Semantics preserved.
	cases := []struct {
		tu   packet.FiveTuple
		want Action
	}{
		{packet.FiveTuple{DstIP: 0x0a010203, Proto: 6, DstPort: 80}, Allow},
		{packet.FiveTuple{DstIP: 0xac1f0001, Proto: 6, DstPort: 80}, Allow},
		{packet.FiveTuple{DstIP: 0xc0a80101, Proto: 17, DstPort: 53}, Deny},
		{packet.FiveTuple{DstIP: 0xc0a80101, Proto: 6, DstPort: 80}, Allow},
		{packet.FiveTuple{DstIP: 0x7f000001, Proto: 6, DstPort: 80}, Deny},
	}
	for i, tc := range cases {
		if act, _ := got.Match(tc.tu); act != tc.want {
			t.Fatalf("case %d: %v, want %v", i, act, tc.want)
		}
	}
}

func TestFirewallDecodeRejectsGarbage(t *testing.T) {
	s, err := NewStateful(NewDB(Allow))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.DecodeToken(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := s.DecodeToken([]byte{0xee, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("bad version accepted")
	}
	snap, err := s.Checkpoint(checkpoint.NewEngine(checkpoint.RcAware))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := s.EncodeToken(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(payload) - 1, 3, 7} {
		if cut >= len(payload) {
			continue
		}
		if _, err := s.DecodeToken(payload[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	if _, err := s.EncodeToken("nope"); err == nil {
		t.Fatal("bad encode token accepted")
	}
}
