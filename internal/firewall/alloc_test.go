package firewall

import (
	"testing"

	"repro/internal/packet"
)

// TestAllocsMatch pins the per-packet classification cost at zero
// allocations. Match used to return a pointer to a stack copy of the
// matched rule, heap-escaping one Rule per packet — 75% of the
// pipeline's allocation churn; it now returns a pointer into the shared
// Rc box.
func TestAllocsMatch(t *testing.T) {
	db := NewDB(Deny)
	if _, err := db.AddRule(packet.Addr(10, 0, 0, 0), 8, Rule{ID: 1, Action: Allow, DstPort: 80}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddRule(packet.Addr(10, 0, 0, 0), 8, Rule{ID: 2, Action: Deny}); err != nil {
		t.Fatal(err)
	}
	hit := packet.FiveTuple{DstIP: packet.Addr(10, 1, 2, 3), DstPort: 80, Proto: packet.ProtoTCP}
	miss := packet.FiveTuple{DstIP: packet.Addr(172, 16, 0, 1), DstPort: 80, Proto: packet.ProtoTCP}
	if allocs := testing.AllocsPerRun(1000, func() {
		if act, r := db.Match(hit); act != Allow || r == nil {
			t.Fatal("unexpected verdict on rule hit")
		}
		if act, r := db.Match(miss); act != Deny || r != nil {
			t.Fatal("unexpected verdict on default fallback")
		}
	}); allocs != 0 {
		t.Fatalf("Match allocates %.1f objects per call pair, want 0", allocs)
	}
}
