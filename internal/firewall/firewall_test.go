package firewall

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/dpdk"
	"repro/internal/netbricks"
	"repro/internal/packet"
)

func tupleTo(ip packet.IPv4, port uint16, proto uint8) packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP: packet.Addr(1, 1, 1, 1), DstIP: ip,
		SrcPort: 9999, DstPort: port, Proto: proto,
	}
}

// figure3DB builds the paper's Figure 3a database: rule 1 shared by two
// prefixes, rule 2 under one.
func figure3DB(t *testing.T) (*DB, SharedRule, SharedRule) {
	t.Helper()
	db := NewDB(Deny)
	rule1, err := db.AddRule(packet.Addr(10, 0, 0, 0), 16, Rule{ID: 1, Action: Allow, Comment: "rule 1"})
	if err != nil {
		t.Fatal(err)
	}
	// Second leaf pointing to the SAME rule 1.
	if err := db.AttachRule(packet.Addr(10, 5, 0, 0), 24, rule1); err != nil {
		t.Fatal(err)
	}
	rule2, err := db.AddRule(packet.Addr(192, 168, 0, 0), 16, Rule{ID: 2, Action: Allow, Comment: "rule 2"})
	if err != nil {
		t.Fatal(err)
	}
	return db, rule1, rule2
}

func TestMatchLongestPrefixAndDefault(t *testing.T) {
	db, _, _ := figure3DB(t)
	if act, r := db.Match(tupleTo(packet.Addr(10, 0, 9, 9), 80, packet.ProtoTCP)); act != Allow || r == nil || r.ID != 1 {
		t.Fatalf("10.0/16 match = %v %v", act, r)
	}
	if act, r := db.Match(tupleTo(packet.Addr(10, 5, 0, 7), 80, packet.ProtoTCP)); act != Allow || r.ID != 1 {
		t.Fatalf("10.5.0/24 match = %v %v", act, r)
	}
	if act, r := db.Match(tupleTo(packet.Addr(172, 16, 0, 1), 80, packet.ProtoTCP)); act != Deny || r != nil {
		t.Fatalf("default = %v %v", act, r)
	}
}

func TestRuleTransportConstraints(t *testing.T) {
	db := NewDB(Deny)
	if _, err := db.AddRule(packet.Addr(10, 0, 0, 0), 8, Rule{ID: 1, Action: Allow, Proto: packet.ProtoTCP, DstPort: 443}); err != nil {
		t.Fatal(err)
	}
	if act, _ := db.Match(tupleTo(packet.Addr(10, 1, 1, 1), 443, packet.ProtoTCP)); act != Allow {
		t.Fatal("matching tuple denied")
	}
	if act, _ := db.Match(tupleTo(packet.Addr(10, 1, 1, 1), 80, packet.ProtoTCP)); act != Deny {
		t.Fatal("wrong port allowed")
	}
	if act, _ := db.Match(tupleTo(packet.Addr(10, 1, 1, 1), 443, packet.ProtoUDP)); act != Deny {
		t.Fatal("wrong proto allowed")
	}
}

func TestRuleOrderInLeaf(t *testing.T) {
	db := NewDB(Deny)
	_, _ = db.AddRule(packet.Addr(10, 0, 0, 0), 8, Rule{ID: 1, Action: Deny, DstPort: 22})
	_, _ = db.AddRule(packet.Addr(10, 0, 0, 0), 8, Rule{ID: 2, Action: Allow})
	act, r := db.Match(tupleTo(packet.Addr(10, 1, 1, 1), 22, packet.ProtoTCP))
	if act != Deny || r.ID != 1 {
		t.Fatalf("first rule not preferred: %v %v", act, r)
	}
	act, r = db.Match(tupleTo(packet.Addr(10, 1, 1, 1), 80, packet.ProtoTCP))
	if act != Allow || r.ID != 2 {
		t.Fatalf("fallthrough wrong: %v %v", act, r)
	}
}

func TestAttachRejectsZeroHandle(t *testing.T) {
	db := NewDB(Deny)
	if err := db.AttachRule(0, 0, SharedRule{}); err == nil {
		t.Fatal("zero handle accepted")
	}
}

func TestRuleCountSharing(t *testing.T) {
	db, _, _ := figure3DB(t)
	distinct, handles := db.RuleCount()
	if distinct != 2 || handles != 3 {
		t.Fatalf("RuleCount = (%d, %d), want (2, 3)", distinct, handles)
	}
}

func TestFigure3RcAwareCheckpointSharesRule(t *testing.T) {
	// Figure 3 reproduced: Rc-aware checkpoint copies rule 1 exactly once
	// even though two leaves reach it.
	db, _, _ := figure3DB(t)
	snap, err := db.Checkpoint(checkpoint.NewEngine(checkpoint.RcAware))
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Stats().RcFirst; got != 2 { // rule 1 + rule 2
		t.Fatalf("rules copied = %d, want 2", got)
	}
	if got := snap.Stats().RcReused; got != 1 { // second alias of rule 1
		t.Fatalf("aliases reused = %d, want 1", got)
	}
	restored, err := RestoreDB(snap)
	if err != nil {
		t.Fatal(err)
	}
	distinct, handles := restored.RuleCount()
	if distinct != 2 || handles != 3 {
		t.Fatalf("restored RuleCount = (%d, %d), want (2, 3) — sharing lost", distinct, handles)
	}
	// Semantics preserved.
	if act, r := restored.Match(tupleTo(packet.Addr(10, 5, 0, 1), 80, packet.ProtoTCP)); act != Allow || r.ID != 1 {
		t.Fatalf("restored match = %v %v", act, r)
	}
}

func TestFigure3bNaiveCheckpointDuplicatesRule(t *testing.T) {
	// Figure 3b reproduced: naive traversal yields rule 1' and rule 1.
	db, _, _ := figure3DB(t)
	snap, err := db.Checkpoint(checkpoint.NewEngine(checkpoint.Naive))
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Stats().RcFirst; got != 3 { // rule 1 twice + rule 2
		t.Fatalf("rules copied = %d, want 3 (duplication)", got)
	}
	restored, err := RestoreDB(snap)
	if err != nil {
		t.Fatal(err)
	}
	distinct, handles := restored.RuleCount()
	if distinct != 3 || handles != 3 {
		t.Fatalf("restored RuleCount = (%d, %d), want (3, 3) — duplicates expected", distinct, handles)
	}
}

func TestCheckpointIsolatesFromLiveMutation(t *testing.T) {
	db, rule1, _ := figure3DB(t)
	snap, err := db.Checkpoint(checkpoint.NewEngine(checkpoint.RcAware))
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the live rule through its shared handle after checkpointing.
	rule1.Set(Rule{ID: 1, Action: Deny, Comment: "flipped"})
	restored, err := RestoreDB(snap)
	if err != nil {
		t.Fatal(err)
	}
	if act, _ := restored.Match(tupleTo(packet.Addr(10, 0, 1, 1), 80, packet.ProtoTCP)); act != Allow {
		t.Fatal("snapshot observed post-checkpoint mutation")
	}
	if act, _ := db.Match(tupleTo(packet.Addr(10, 0, 1, 1), 80, packet.ProtoTCP)); act != Deny {
		t.Fatal("live db lost mutation")
	}
}

func TestRestoredSharedRuleUpdatesAtomically(t *testing.T) {
	// In the restored DB, updating the shared rule through one leaf is
	// visible through the other — alias structure is behaviourally real.
	db, _, _ := figure3DB(t)
	snap, err := db.Checkpoint(checkpoint.NewEngine(checkpoint.RcAware))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreDB(snap)
	if err != nil {
		t.Fatal(err)
	}
	var handles []SharedRule
	restored.Rules.Walk(func(_ packet.IPv4, _ int, v *[]SharedRule) bool {
		handles = append(handles, *v...)
		return true
	})
	for _, h := range handles {
		if h.Get().ID == 1 {
			h.Set(Rule{ID: 1, Action: Deny})
			break
		}
	}
	if act, _ := restored.Match(tupleTo(packet.Addr(10, 5, 0, 1), 80, packet.ProtoTCP)); act != Deny {
		t.Fatal("update through one alias not visible through the other leaf")
	}
}

func TestOperatorDropsDenied(t *testing.T) {
	db := NewDB(Deny)
	_, _ = db.AddRule(packet.Addr(10, 99, 0, 0), 16, Rule{ID: 1, Action: Allow})
	gen := &dpdk.UniformFlows{Base: dpdk.DefaultSpec(), Flows: 8}
	port := dpdk.NewPort(dpdk.Config{PoolSize: 32, Gen: gen})
	pkts := make([]*packet.Packet, 16)
	n := port.RxBurst(pkts)
	batch := &netbricks.Batch{Pkts: pkts[:n]}
	if err := (Operator{DB: db}).ProcessBatch(batch); err != nil {
		t.Fatal(err)
	}
	// DefaultSpec dst is 10.99.0.1 → allowed; all pass.
	if batch.Len() != n {
		t.Fatalf("allowed batch len = %d, want %d", batch.Len(), n)
	}
	// Now a deny-by-default DB with no rules drops everything.
	deny := NewDB(Deny)
	if err := (Operator{DB: deny}).ProcessBatch(batch); err != nil {
		t.Fatal(err)
	}
	if batch.Len() != 0 {
		t.Fatalf("deny batch len = %d, want 0", batch.Len())
	}
	port.Free(pkts[:n])
}

func TestOperatorDropsGarbage(t *testing.T) {
	db := NewDB(Allow)
	batch := &netbricks.Batch{Pkts: []*packet.Packet{{Data: []byte{1}}}}
	if err := (Operator{DB: db}).ProcessBatch(batch); err != nil {
		t.Fatal(err)
	}
	if batch.Len() != 0 || len(batch.Dropped) != 1 {
		t.Fatal("unparseable packet not dropped")
	}
}

func TestActionString(t *testing.T) {
	if Allow.String() != "allow" || Deny.String() != "deny" {
		t.Fatal("action names")
	}
}
