// Package firewall implements the paper's §5 case study: a network
// firewall whose rules are indexed by a trie for fast lookup based on
// packet headers, with multiple trie leaves pointing to the same rule
// (Figure 3a).
//
// Rules are held through checkpoint.Rc, making the sharing explicit in
// the type — which is exactly what lets the checkpoint engine snapshot
// the database without duplicating shared rules (Figure 3b is reproduced
// by checkpointing the same database with a Naive engine).
package firewall

import (
	"errors"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/netbricks"
	"repro/internal/packet"
	"repro/internal/trie"
)

// Action is a rule verdict.
type Action int

const (
	// Deny drops the packet.
	Deny Action = iota
	// Allow forwards the packet.
	Allow
)

// String names the action.
func (a Action) String() string {
	if a == Allow {
		return "allow"
	}
	return "deny"
}

// Rule is one firewall rule. Port 0 and Proto 0 are wildcards.
type Rule struct {
	ID      int
	Action  Action
	Proto   uint8
	DstPort uint16
	Comment string
}

// Matches reports whether the rule's transport constraints admit t.
func (r Rule) Matches(t packet.FiveTuple) bool {
	if r.Proto != 0 && r.Proto != t.Proto {
		return false
	}
	if r.DstPort != 0 && r.DstPort != t.DstPort {
		return false
	}
	return true
}

// SharedRule is a reference-counted rule handle; cloning it and inserting
// under several prefixes creates the Figure 3a sharing.
type SharedRule = checkpoint.Rc[Rule]

// DB is the rule database: a destination-prefix trie whose leaves hold
// lists of shared rule handles, evaluated in order. All fields are
// exported so the checkpoint engine can derive traversal.
type DB struct {
	Rules   *trie.Trie[[]SharedRule]
	Default Action
}

// NewDB creates an empty database with the given default action.
func NewDB(def Action) *DB {
	return &DB{Rules: trie.New[[]SharedRule](), Default: def}
}

// AddRule inserts a fresh rule under the destination prefix and returns
// the shared handle so callers can attach the same rule elsewhere.
func (db *DB) AddRule(dst packet.IPv4, length int, r Rule) (SharedRule, error) {
	h := checkpoint.NewRc(r)
	if err := db.AttachRule(dst, length, h); err != nil {
		return SharedRule{}, err
	}
	return h, nil
}

// AttachRule attaches an existing shared rule under an additional prefix —
// this is how "multiple leaves of the trie point to the same rule".
func (db *DB) AttachRule(dst packet.IPv4, length int, h SharedRule) error {
	if h.IsZero() {
		return errors.New("firewall: zero rule handle")
	}
	existing, _ := db.Rules.Exact(dst, length)
	return db.Rules.Insert(dst, length, append(existing, h.Clone()))
}

// Match classifies a tuple: longest-prefix match on the destination
// address, then first rule in the leaf whose transport constraints match.
// Falls back to the default action. The returned rule pointer aims into
// the shared Rc box (rules are immutable once attached), so the per-packet
// path stays allocation-free; callers must not write through it.
func (db *DB) Match(t packet.FiveTuple) (Action, *Rule) {
	rules, ok := db.Rules.Lookup(t.DstIP)
	if ok {
		for _, h := range rules {
			r := h.Peek()
			if r.Matches(t) {
				return r.Action, r
			}
		}
	}
	return db.Default, nil
}

// RuleCount reports the number of distinct shared rules reachable from
// the trie (counting aliased rules once), and the total number of handles.
func (db *DB) RuleCount() (distinct, handles int) {
	var all []SharedRule
	db.Rules.Walk(func(_ packet.IPv4, _ int, v *[]SharedRule) bool {
		all = append(all, *v...)
		return true
	})
	handles = len(all)
	for i, h := range all {
		dup := false
		for j := 0; j < i; j++ {
			if h.SameBox(all[j]) {
				dup = true
				break
			}
		}
		if !dup {
			distinct++
		}
	}
	return distinct, handles
}

// Checkpoint snapshots the database with the given engine.
func (db *DB) Checkpoint(e *checkpoint.Engine) (*checkpoint.Snapshot, error) {
	return e.Checkpoint(db)
}

// RestoreDB materializes a database from a snapshot taken of a *DB.
func RestoreDB(s *checkpoint.Snapshot) (*DB, error) {
	var out *DB
	if err := s.Restore(&out); err != nil {
		return nil, fmt.Errorf("firewall: %w", err)
	}
	return out, nil
}

// Operator adapts the firewall into a NetBricks stage that drops denied
// packets.
type Operator struct {
	DB *DB
}

// Name implements netbricks.Operator.
func (Operator) Name() string { return "firewall" }

// ProcessBatch implements netbricks.Operator.
func (o Operator) ProcessBatch(b *netbricks.Batch) error {
	for i := 0; i < len(b.Pkts); {
		p := b.Pkts[i]
		if !p.Parsed() {
			if err := p.Parse(); err != nil {
				b.Drop(i)
				continue
			}
		}
		if act, _ := o.DB.Match(p.Tuple()); act == Deny {
			b.Drop(i)
			continue
		}
		i++
	}
	return nil
}

var _ netbricks.Operator = Operator{}
