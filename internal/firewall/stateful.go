package firewall

import (
	"fmt"
	"sync/atomic"

	"repro/internal/checkpoint"
	"repro/internal/netbricks"
)

// Stateful adapts a rule database into the domain runtime's checkpointed
// recovery contract. The live DB sits behind an atomic pointer so a
// restore's swap is visible to a pipeline already rebuilt by the user
// Recover hook (state recovery runs after plumbing recovery); a boot-time
// snapshot backs Reset, since a firewall's cold start is its configured
// rules, not an empty trie.
type Stateful struct {
	db   atomic.Pointer[DB]
	boot *checkpoint.Snapshot
}

// NewStateful wraps db, snapshotting it once as the cold-start image.
func NewStateful(db *DB) (*Stateful, error) {
	boot, err := db.Checkpoint(checkpoint.NewEngine(checkpoint.RcAware))
	if err != nil {
		return nil, fmt.Errorf("firewall: boot snapshot: %w", err)
	}
	s := &Stateful{boot: boot}
	s.db.Store(db)
	return s, nil
}

// DB returns the live database.
func (s *Stateful) DB() *DB { return s.db.Load() }

// Checkpoint implements the Stateful contract: snapshot the live DB. The
// DB is updated by pointer swap only (rule installation builds a new
// trie), so the traversal races no mutator.
func (s *Stateful) Checkpoint(e *checkpoint.Engine) (any, error) {
	return s.db.Load().Checkpoint(e)
}

// Restore swaps in a fresh materialization of a Checkpoint token.
func (s *Stateful) Restore(token any) error {
	snap, ok := token.(*checkpoint.Snapshot)
	if !ok {
		return fmt.Errorf("firewall: restore token is %T, want *checkpoint.Snapshot", token)
	}
	db, err := RestoreDB(snap)
	if err != nil {
		return err
	}
	s.db.Store(db)
	return nil
}

// Reset swaps in a fresh materialization of the boot-time rules.
func (s *Stateful) Reset() {
	db, err := RestoreDB(s.boot)
	if err != nil {
		// The boot snapshot restored cleanly at least once (NewStateful
		// checkpointed a live DB); a failure here means memory corruption
		// the runtime cannot recover from.
		panic(fmt.Sprintf("firewall: reset from boot snapshot: %v", err))
	}
	s.db.Store(db)
}

// StatefulOperator is Operator reading the database through a Stateful
// adapter on every batch, so restores and resets take effect without
// rebuilding the pipeline.
type StatefulOperator struct {
	S *Stateful
}

// Name implements netbricks.Operator.
func (StatefulOperator) Name() string { return "firewall" }

// ProcessBatch implements netbricks.Operator.
func (o StatefulOperator) ProcessBatch(b *netbricks.Batch) error {
	return Operator{DB: o.S.DB()}.ProcessBatch(b)
}

var _ netbricks.Operator = StatefulOperator{}
