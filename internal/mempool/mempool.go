// Package mempool provides DPDK-style fixed-size object pools and
// single-producer/single-consumer descriptor rings.
//
// DPDK's datapath allocates packet buffers (mbufs) from per-port mempools
// and moves descriptors through lockless rings; the simulated NIC in
// internal/dpdk is built on the same primitives so that the benchmarked
// code path has the same structure (pool get → fill → ring enqueue →
// pipeline → ring dequeue → pool put) as the paper's testbed.
package mempool

import (
	"errors"
	"sync"

	"repro/internal/telemetry"
)

// Errors returned by pool and ring operations.
var (
	ErrExhausted = errors.New("mempool: pool exhausted")
	ErrRingFull  = errors.New("mempool: ring full")
	ErrRingEmpty = errors.New("mempool: ring empty")
)

// Pool is a fixed-capacity free list of preallocated objects. Get/Put are
// safe for concurrent use.
type Pool[T any] struct {
	mu    sync.Mutex
	free  []*T
	alloc func() *T
	cap   int

	gets   telemetry.Counter
	puts   telemetry.Counter
	misses telemetry.Counter
}

// NewPool preallocates capacity objects using alloc.
func NewPool[T any](capacity int, alloc func() *T) *Pool[T] {
	if capacity <= 0 {
		panic("mempool: capacity must be positive")
	}
	p := &Pool[T]{alloc: alloc, cap: capacity}
	p.free = make([]*T, 0, capacity)
	for i := 0; i < capacity; i++ {
		p.free = append(p.free, alloc())
	}
	return p
}

// Get removes an object from the pool. It fails with ErrExhausted when the
// pool is empty — like a real mempool, it never over-allocates, which is
// what gives NF frameworks their bounded memory footprint.
func (p *Pool[T]) Get() (*T, error) {
	p.mu.Lock()
	n := len(p.free)
	if n == 0 {
		p.mu.Unlock()
		p.misses.Add(1)
		return nil, ErrExhausted
	}
	obj := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	p.mu.Unlock()
	p.gets.Add(1)
	return obj, nil
}

// Put returns an object to the pool. Returning more objects than capacity
// indicates a double-free and panics.
func (p *Pool[T]) Put(obj *T) {
	if obj == nil {
		panic("mempool: Put(nil)")
	}
	p.mu.Lock()
	if len(p.free) >= p.cap {
		p.mu.Unlock()
		panic("mempool: Put beyond capacity (double free?)")
	}
	p.free = append(p.free, obj)
	p.mu.Unlock()
	p.puts.Add(1)
}

// GetBurst fills out with up to len(out) objects under a single lock
// acquisition (rte_mempool_get_bulk-style, except partial fills are
// allowed like the burst ring ops). It returns the number obtained; a
// short return counts one miss.
func (p *Pool[T]) GetBurst(out []*T) int {
	p.mu.Lock()
	n := len(out)
	if avail := len(p.free); n > avail {
		n = avail
	}
	split := len(p.free) - n
	for i := 0; i < n; i++ {
		out[i] = p.free[split+i]
		p.free[split+i] = nil
	}
	p.free = p.free[:split]
	p.mu.Unlock()
	p.gets.Add(uint64(n))
	if n < len(out) {
		p.misses.Add(1)
	}
	return n
}

// PutBurst returns all objects in objs under a single lock acquisition.
// Like Put, overflowing capacity or returning nil panics.
func (p *Pool[T]) PutBurst(objs []*T) {
	if len(objs) == 0 {
		return
	}
	p.mu.Lock()
	if len(p.free)+len(objs) > p.cap {
		p.mu.Unlock()
		panic("mempool: PutBurst beyond capacity (double free?)")
	}
	for _, obj := range objs {
		if obj == nil {
			p.mu.Unlock()
			panic("mempool: PutBurst(nil)")
		}
		p.free = append(p.free, obj)
	}
	p.mu.Unlock()
	p.puts.Add(uint64(len(objs)))
}

// Available reports how many objects are currently free.
func (p *Pool[T]) Available() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Capacity reports the pool's fixed capacity.
func (p *Pool[T]) Capacity() int { return p.cap }

// Stats reports cumulative gets, puts, and allocation misses.
func (p *Pool[T]) Stats() (gets, puts, misses uint64) {
	return p.gets.Load(), p.puts.Load(), p.misses.Load()
}

// RegisterMetrics exports the pool's counters and occupancy on reg
// under the given labels: pool_{gets,puts,misses}_total counters plus
// pool_available/pool_capacity gauges. The occupancy gauge takes the
// pool lock at scrape time only; the hot path is untouched.
func (p *Pool[T]) RegisterMetrics(reg *telemetry.Registry, labels telemetry.Labels) {
	reg.RegisterCounter("pool_gets_total", labels, &p.gets)
	reg.RegisterCounter("pool_puts_total", labels, &p.puts)
	reg.RegisterCounter("pool_misses_total", labels, &p.misses)
	reg.RegisterGaugeFunc("pool_available", labels, func() float64 { return float64(p.Available()) })
	reg.RegisterGaugeFunc("pool_capacity", labels, func() float64 { return float64(p.Capacity()) })
}

// Ring is a bounded FIFO of descriptors, modeled on rte_ring. This
// implementation uses a mutex rather than the lockless compare-and-swap
// scheme — the simulation measures pipeline CPU cost, not ring
// scalability — but keeps DPDK's power-of-two sizing and burst API.
type Ring[T any] struct {
	mu    sync.Mutex
	buf   []T
	head  int // dequeue position
	tail  int // enqueue position
	count int
}

// NewRing creates a ring with the given capacity, rounded up to a power of
// two (as rte_ring requires).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic("mempool: ring capacity must be positive")
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Ring[T]{buf: make([]T, size)}
}

// Capacity reports the usable capacity of the ring.
func (r *Ring[T]) Capacity() int { return len(r.buf) }

// Len reports the number of queued descriptors.
func (r *Ring[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Enqueue adds one descriptor.
func (r *Ring[T]) Enqueue(v T) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == len(r.buf) {
		return ErrRingFull
	}
	r.buf[r.tail] = v
	r.tail = (r.tail + 1) & (len(r.buf) - 1)
	r.count++
	return nil
}

// Dequeue removes one descriptor.
func (r *Ring[T]) Dequeue() (T, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var zero T
	if r.count == 0 {
		return zero, ErrRingEmpty
	}
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.count--
	return v, nil
}

// EnqueueBurst adds up to len(vs) descriptors, returning how many fit
// (DPDK's rte_ring_enqueue_burst semantics).
func (r *Ring[T]) EnqueueBurst(vs []T) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, v := range vs {
		if r.count == len(r.buf) {
			break
		}
		r.buf[r.tail] = v
		r.tail = (r.tail + 1) & (len(r.buf) - 1)
		r.count++
		n++
	}
	return n
}

// DequeueBurst removes up to len(out) descriptors into out, returning the
// count (rte_ring_dequeue_burst semantics — this is the batch fetch the
// paper's pipeline performs each iteration).
func (r *Ring[T]) DequeueBurst(out []T) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	var zero T
	for n < len(out) && r.count > 0 {
		out[n] = r.buf[r.head]
		r.buf[r.head] = zero
		r.head = (r.head + 1) & (len(r.buf) - 1)
		r.count--
		n++
	}
	return n
}
