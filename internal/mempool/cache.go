package mempool

import "repro/internal/telemetry"

// Cache is a per-worker front for a shared Pool, modeled on DPDK's
// per-lcore mempool cache: a local free list that absorbs Get/Put
// traffic and only touches the shared pool in bursts (refilling when
// empty, spilling when overfull). On the hot path a worker allocates and
// frees without taking the pool lock at all, which is what keeps the
// sharded pipeline runtime contention-free per packet.
//
// The free list is deliberately unsynchronized — it belongs to exactly
// one worker, the same single-owner discipline as sfi.Context. Sharing
// one across goroutines is a bug the race detector will flag. The
// counters, by contrast, are telemetry cells (uncontended atomics) so a
// metrics scrape can read refill/spill behavior while the owner runs.
type Cache[T any] struct {
	pool  *Pool[T]
	local []*T
	size  int // high-water mark; refills and spills move size/2 at a time

	gets    telemetry.Counter
	puts    telemetry.Counter
	refills telemetry.Counter
	spills  telemetry.Counter
}

// DefaultCacheSize mirrors DPDK's customary per-lcore cache of 256
// objects.
const DefaultCacheSize = 256

// NewCache creates a cache over pool holding at most size objects
// locally (DefaultCacheSize if size <= 0). The cache starts empty; the
// first Get triggers a refill.
func NewCache[T any](pool *Pool[T], size int) *Cache[T] {
	if size <= 0 {
		size = DefaultCacheSize
	}
	if size > pool.Capacity() {
		size = pool.Capacity()
	}
	if size < 2 {
		size = 2
	}
	return &Cache[T]{pool: pool, local: make([]*T, 0, size), size: size}
}

// Get takes an object from the local free list, refilling half the cache
// from the shared pool when the list is empty. It fails with ErrExhausted
// only when the shared pool is also empty.
func (c *Cache[T]) Get() (*T, error) {
	if len(c.local) == 0 {
		want := c.size / 2
		if want == 0 {
			want = 1
		}
		c.local = c.local[:want]
		n := c.pool.GetBurst(c.local)
		c.local = c.local[:n]
		c.refills.Inc()
		if n == 0 {
			return nil, ErrExhausted
		}
	}
	n := len(c.local) - 1
	obj := c.local[n]
	c.local[n] = nil
	c.local = c.local[:n]
	c.gets.Inc()
	return obj, nil
}

// Put returns an object to the local free list, spilling half the cache
// back to the shared pool when the list is full.
func (c *Cache[T]) Put(obj *T) {
	if obj == nil {
		panic("mempool: Cache.Put(nil)")
	}
	if len(c.local) >= c.size {
		keep := c.size / 2
		c.pool.PutBurst(c.local[keep:])
		for i := keep; i < len(c.local); i++ {
			c.local[i] = nil
		}
		c.local = c.local[:keep]
		c.spills.Inc()
	}
	c.local = append(c.local, obj)
	c.puts.Inc()
}

// Flush returns every locally cached object to the shared pool. Call on
// worker teardown so pool-leak accounting balances.
func (c *Cache[T]) Flush() {
	c.pool.PutBurst(c.local)
	for i := range c.local {
		c.local[i] = nil
	}
	c.local = c.local[:0]
}

// Len reports how many objects the cache currently holds locally.
func (c *Cache[T]) Len() int { return len(c.local) }

// Size reports the cache's high-water mark.
func (c *Cache[T]) Size() int { return c.size }

// Stats reports cumulative local gets and puts and the number of
// refill/spill bursts against the shared pool; (gets+puts) much greater
// than (refills+spills) is the contention-avoidance working.
func (c *Cache[T]) Stats() (gets, puts, refills, spills uint64) {
	return c.gets.Load(), c.puts.Load(), c.refills.Load(), c.spills.Load()
}

// RegisterMetrics exports the cache's counters and occupancy on reg
// under the given labels. The occupancy gauge reads the single-owner
// free list; callers whose cache is guarded by a queue lock (dpdk's
// rxQueue) should pass a depth func that takes it.
func (c *Cache[T]) RegisterMetrics(reg *telemetry.Registry, labels telemetry.Labels, depth func() float64) {
	reg.RegisterCounter("cache_gets_total", labels, &c.gets)
	reg.RegisterCounter("cache_puts_total", labels, &c.puts)
	reg.RegisterCounter("cache_refills_total", labels, &c.refills)
	reg.RegisterCounter("cache_spills_total", labels, &c.spills)
	if depth != nil {
		reg.RegisterGaugeFunc("cache_len", labels, depth)
	}
}
