package mempool

import (
	"sync"
	"testing"
)

func TestCacheGetPutRoundTrip(t *testing.T) {
	next := 0
	pool := NewPool(64, func() *int { v := next; next++; return &v })
	c := NewCache(pool, 8)
	objs := make([]*int, 0, 64)
	for i := 0; i < 64; i++ {
		obj, err := c.Get()
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		objs = append(objs, obj)
	}
	if _, err := c.Get(); err != ErrExhausted {
		t.Fatalf("err = %v, want ErrExhausted past capacity", err)
	}
	for _, obj := range objs {
		c.Put(obj)
	}
	c.Flush()
	if pool.Available() != 64 {
		t.Fatalf("pool available = %d after flush, want 64", pool.Available())
	}
}

func TestCacheAmortizesPoolTraffic(t *testing.T) {
	pool := NewPool(1024, func() *int { return new(int) })
	c := NewCache(pool, 64)
	// A steady get/put workload should touch the shared pool far less
	// often than once per operation.
	for i := 0; i < 10000; i++ {
		obj, err := c.Get()
		if err != nil {
			t.Fatal(err)
		}
		c.Put(obj)
	}
	gets, puts, refills, spills := c.Stats()
	if gets != 10000 || puts != 10000 {
		t.Fatalf("gets=%d puts=%d", gets, puts)
	}
	poolGets, poolPuts, _ := pool.Stats()
	if poolOps := poolGets + poolPuts; poolOps > 100 {
		t.Fatalf("pool saw %d ops for 20000 cache ops (refills=%d spills=%d); cache not absorbing traffic",
			poolOps, refills, spills)
	}
}

func TestCacheSpillsWhenOverfull(t *testing.T) {
	pool := NewPool(64, func() *int { return new(int) })
	c := NewCache(pool, 4)
	// Drain the pool through the cache, then return everything: the cache
	// must spill the excess rather than grow without bound.
	objs := make([]*int, 0, 64)
	for i := 0; i < 64; i++ {
		obj, err := c.Get()
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj)
	}
	for _, obj := range objs {
		c.Put(obj)
	}
	if c.Len() > c.Size() {
		t.Fatalf("cache holds %d > size %d", c.Len(), c.Size())
	}
	if got := pool.Available() + c.Len(); got != 64 {
		t.Fatalf("pool+cache = %d, want 64", got)
	}
	_, _, _, spills := c.Stats()
	if spills == 0 {
		t.Fatal("no spills recorded")
	}
}

func TestCacheSizeClampedToPool(t *testing.T) {
	pool := NewPool(4, func() *int { return new(int) })
	c := NewCache(pool, 1024)
	if c.Size() > 4 {
		t.Fatalf("cache size %d exceeds pool capacity", c.Size())
	}
	if d := NewCache(pool, 0); d.Size() != 4 {
		t.Fatalf("default size = %d, want clamped to pool capacity 4", d.Size())
	}
}

func TestCachePutNilPanics(t *testing.T) {
	pool := NewPool(4, func() *int { return new(int) })
	c := NewCache(pool, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.Put(nil)
}

// TestPoolBurstOps checks GetBurst/PutBurst semantics directly.
func TestPoolBurstOps(t *testing.T) {
	pool := NewPool(8, func() *int { return new(int) })
	out := make([]*int, 6)
	if n := pool.GetBurst(out); n != 6 {
		t.Fatalf("GetBurst = %d, want 6", n)
	}
	if pool.Available() != 2 {
		t.Fatalf("available = %d", pool.Available())
	}
	// Short fill: only 2 left.
	rest := make([]*int, 4)
	if n := pool.GetBurst(rest); n != 2 {
		t.Fatalf("short GetBurst = %d, want 2", n)
	}
	_, _, misses := pool.Stats()
	if misses != 1 {
		t.Fatalf("misses = %d, want 1 for the short burst", misses)
	}
	pool.PutBurst(out)
	pool.PutBurst(rest[:2])
	if pool.Available() != 8 {
		t.Fatalf("available = %d after returns", pool.Available())
	}
}

func TestPoolPutBurstOverflowPanics(t *testing.T) {
	pool := NewPool(2, func() *int { return new(int) })
	extra := []*int{new(int), new(int), new(int)}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	pool.PutBurst(extra)
}

// TestConcurrentCachesOverSharedPool is the race-tier stress: many
// worker-owned caches hammering one shared pool concurrently. Under
// -race this proves the burst refill/spill paths are properly
// synchronized at the pool while each cache stays single-owner.
func TestConcurrentCachesOverSharedPool(t *testing.T) {
	const (
		workers = 8
		iters   = 5000
	)
	pool := NewPool(workers*64, func() *int { return new(int) })
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewCache(pool, 32)
			held := make([]*int, 0, 16)
			for i := 0; i < iters; i++ {
				if obj, err := c.Get(); err == nil {
					held = append(held, obj)
				}
				if len(held) >= 16 || (i%3 == 0 && len(held) > 0) {
					c.Put(held[len(held)-1])
					held = held[:len(held)-1]
				}
			}
			for _, obj := range held {
				c.Put(obj)
			}
			c.Flush()
		}()
	}
	wg.Wait()
	if pool.Available() != workers*64 {
		t.Fatalf("pool leak: %d available, want %d", pool.Available(), workers*64)
	}
}

// TestConcurrentPoolGetPutBurst races burst and single ops against each
// other on the shared pool.
func TestConcurrentPoolGetPutBurst(t *testing.T) {
	pool := NewPool(256, func() *int { return new(int) })
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]*int, 8)
			for i := 0; i < 2000; i++ {
				if w%2 == 0 {
					n := pool.GetBurst(buf)
					pool.PutBurst(buf[:n])
				} else {
					if obj, err := pool.Get(); err == nil {
						pool.Put(obj)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if pool.Available() != 256 {
		t.Fatalf("pool leak: %d available", pool.Available())
	}
}
