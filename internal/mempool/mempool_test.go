package mempool

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestPoolGetPut(t *testing.T) {
	p := NewPool(4, func() *int { v := 0; return &v })
	if p.Available() != 4 || p.Capacity() != 4 {
		t.Fatalf("avail=%d cap=%d", p.Available(), p.Capacity())
	}
	objs := make([]*int, 0, 4)
	for i := 0; i < 4; i++ {
		o, err := p.Get()
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, o)
	}
	if _, err := p.Get(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	for _, o := range objs {
		p.Put(o)
	}
	if p.Available() != 4 {
		t.Fatalf("avail = %d after puts", p.Available())
	}
	gets, puts, misses := p.Stats()
	if gets != 4 || puts != 4 || misses != 1 {
		t.Fatalf("stats = %d/%d/%d", gets, puts, misses)
	}
}

func TestPoolPutBeyondCapacityPanics(t *testing.T) {
	p := NewPool(1, func() *int { v := 0; return &v })
	extra := new(int)
	defer func() {
		if recover() == nil {
			t.Fatal("over-Put did not panic")
		}
	}()
	p.Put(extra)
}

func TestPoolPutNilPanics(t *testing.T) {
	p := NewPool(1, func() *int { v := 0; return &v })
	defer func() {
		if recover() == nil {
			t.Fatal("Put(nil) did not panic")
		}
	}()
	p.Put(nil)
}

func TestPoolConcurrent(t *testing.T) {
	p := NewPool(64, func() *int { v := 0; return &v })
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				o, err := p.Get()
				if err != nil {
					continue
				}
				p.Put(o)
			}
		}()
	}
	wg.Wait()
	if p.Available() != 64 {
		t.Fatalf("leaked objects: avail = %d", p.Available())
	}
}

func TestRingFIFO(t *testing.T) {
	r := NewRing[int](4)
	for i := 1; i <= 4; i++ {
		if err := r.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Enqueue(5); !errors.Is(err, ErrRingFull) {
		t.Fatalf("err = %v, want ErrRingFull", err)
	}
	for i := 1; i <= 4; i++ {
		v, err := r.Dequeue()
		if err != nil || v != i {
			t.Fatalf("Dequeue = (%d, %v), want (%d, nil)", v, err, i)
		}
	}
	if _, err := r.Dequeue(); !errors.Is(err, ErrRingEmpty) {
		t.Fatalf("err = %v, want ErrRingEmpty", err)
	}
}

func TestRingRoundsUpToPowerOfTwo(t *testing.T) {
	r := NewRing[int](5)
	if r.Capacity() != 8 {
		t.Fatalf("capacity = %d, want 8", r.Capacity())
	}
}

func TestRingBurst(t *testing.T) {
	r := NewRing[int](8)
	in := []int{1, 2, 3, 4, 5, 6}
	if n := r.EnqueueBurst(in); n != 6 {
		t.Fatalf("EnqueueBurst = %d", n)
	}
	if n := r.EnqueueBurst([]int{7, 8, 9}); n != 2 {
		t.Fatalf("partial EnqueueBurst = %d, want 2", n)
	}
	out := make([]int, 16)
	if n := r.DequeueBurst(out); n != 8 {
		t.Fatalf("DequeueBurst = %d, want 8", n)
	}
	want := []int{1, 2, 3, 4, 5, 6, 7, 8}
	for i, v := range want {
		if out[i] != v {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], v)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d", r.Len())
	}
}

// Property: any interleaving of enqueues and dequeues preserves FIFO order
// and never loses or duplicates items.
func TestQuickRingFIFOOrder(t *testing.T) {
	f := func(ops []bool) bool {
		r := NewRing[int](16)
		next := 0
		expect := 0
		for _, enq := range ops {
			if enq {
				if err := r.Enqueue(next); err == nil {
					next++
				}
			} else {
				v, err := r.Dequeue()
				if err == nil {
					if v != expect {
						return false
					}
					expect++
				}
			}
		}
		// Drain.
		for {
			v, err := r.Dequeue()
			if err != nil {
				break
			}
			if v != expect {
				return false
			}
			expect++
		}
		return expect == next
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: burst and single-op paths agree on the wrap-around ring.
func TestQuickRingBurstConsistency(t *testing.T) {
	f := func(sizes []uint8) bool {
		r := NewRing[int](32)
		next, expect := 0, 0
		for _, s := range sizes {
			n := int(s % 40)
			batch := make([]int, n)
			for i := range batch {
				batch[i] = next + i
			}
			accepted := r.EnqueueBurst(batch)
			next += accepted
			out := make([]int, n)
			got := r.DequeueBurst(out)
			for i := 0; i < got; i++ {
				if out[i] != expect {
					return false
				}
				expect++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPoolGetPut(b *testing.B) {
	p := NewPool(1024, func() *int { v := 0; return &v })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o, _ := p.Get()
		p.Put(o)
	}
}

func BenchmarkRingEnqueueDequeue(b *testing.B) {
	r := NewRing[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Enqueue(i)
		_, _ = r.Dequeue()
	}
}
