// Package maglev implements Google's Maglev consistent-hashing load
// balancer (Eisenbud et al., NSDI '16), the "realistic, but light-weight,
// network function" whose per-batch processing cost the paper's Figure 2
// compares isolation overhead against.
//
// The implementation follows the paper's NetBricks port: lookup-table
// construction with per-backend permutations, 5-tuple flow hashing, and a
// connection table providing per-flow stickiness across backend set
// changes.
package maglev

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/netbricks"
	"repro/internal/packet"
)

// DefaultTableSize is a prime sized for good distribution with tens of
// backends (Maglev's small table size; the paper's deployment uses 65537).
const DefaultTableSize = 65537

// Errors returned by the balancer.
var (
	ErrNoBackends  = errors.New("maglev: no backends")
	ErrNotPrime    = errors.New("maglev: table size must be prime")
	ErrDupBackend  = errors.New("maglev: duplicate backend name")
	ErrUnparsed    = errors.New("maglev: packet not parsed")
	ErrNoneHealthy = errors.New("maglev: all backends unhealthy")
)

// Backend is a service endpoint packets are steered to.
type Backend struct {
	Name string
	IP   packet.IPv4
}

// hash1/hash2 are independent FNV-1a-style hashes over a string, used for
// the offset and skip of each backend's permutation.
func hash1(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func hash2(s string) uint64 {
	var h uint64 = 2166136261
	for i := 0; i < len(s); i++ {
		h = h*16777619 + uint64(s[i])
	}
	// Finalize to decorrelate from hash1 on short keys.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// Table is an immutable Maglev lookup table over a backend set.
type Table struct {
	backends []Backend
	entries  []int32 // slot -> backend index
}

// NewTable builds the lookup table using Maglev's permutation-population
// algorithm. size must be prime and larger than the number of backends.
func NewTable(backends []Backend, size int) (*Table, error) {
	if len(backends) == 0 {
		return nil, ErrNoBackends
	}
	if !isPrime(size) {
		return nil, fmt.Errorf("size %d: %w", size, ErrNotPrime)
	}
	if size <= len(backends) {
		return nil, fmt.Errorf("maglev: table size %d must exceed backend count %d", size, len(backends))
	}
	names := make(map[string]bool, len(backends))
	for _, b := range backends {
		if names[b.Name] {
			return nil, fmt.Errorf("%q: %w", b.Name, ErrDupBackend)
		}
		names[b.Name] = true
	}

	m := uint64(size)
	n := len(backends)
	offset := make([]uint64, n)
	skip := make([]uint64, n)
	nextIdx := make([]uint64, n)
	for i, b := range backends {
		offset[i] = hash1(b.Name) % m
		skip[i] = hash2(b.Name)%(m-1) + 1
	}

	entries := make([]int32, size)
	for i := range entries {
		entries[i] = -1
	}
	filled := 0
	// Round-robin: each backend claims the next unclaimed slot of its
	// permutation until the table is full. Terminates because size is
	// prime, so every permutation visits every slot.
	for filled < size {
		for i := 0; i < n && filled < size; i++ {
			var slot uint64
			for {
				slot = (offset[i] + nextIdx[i]*skip[i]) % m
				nextIdx[i]++
				if entries[slot] == -1 {
					break
				}
			}
			entries[slot] = int32(i)
			filled++
		}
	}
	return &Table{backends: append([]Backend(nil), backends...), entries: entries}, nil
}

// Size returns the number of table slots.
func (t *Table) Size() int { return len(t.entries) }

// Backends returns the backend set the table was built over.
func (t *Table) Backends() []Backend { return t.backends }

// Lookup maps a flow hash to a backend.
func (t *Table) Lookup(flowHash uint64) Backend {
	return t.backends[t.entries[flowHash%uint64(len(t.entries))]]
}

// Distribution counts slots per backend, for balance assertions.
func (t *Table) Distribution() map[string]int {
	d := make(map[string]int, len(t.backends))
	for _, e := range t.entries {
		d[t.backends[e].Name]++
	}
	return d
}

// Balancer is the full load balancer: a lookup table plus a connection
// table giving established flows affinity to their original backend even
// after the backend set changes.
type Balancer struct {
	mu    sync.RWMutex
	table *Table
	conns map[uint64]Backend

	// Stats.
	hits   uint64 // connection-table hits
	misses uint64 // new flows steered by the lookup table
}

// NewBalancer creates a balancer over the given backends.
func NewBalancer(backends []Backend, tableSize int) (*Balancer, error) {
	t, err := NewTable(backends, tableSize)
	if err != nil {
		return nil, err
	}
	return &Balancer{table: t, conns: make(map[uint64]Backend)}, nil
}

// Pick returns the backend for the flow, consulting the connection table
// first (Maglev's connection tracking) and falling back to the consistent
// hash for new flows.
func (b *Balancer) Pick(t packet.FiveTuple) Backend {
	h := t.Hash()
	b.mu.RLock()
	be, ok := b.conns[h]
	b.mu.RUnlock()
	if ok {
		b.mu.Lock()
		b.hits++
		b.mu.Unlock()
		return be
	}
	be = b.table.Lookup(h)
	b.mu.Lock()
	b.conns[h] = be
	b.misses++
	b.mu.Unlock()
	return be
}

// UpdateBackends swaps in a new backend set, rebuilding the lookup table.
// Established flows keep flowing to their recorded backend (connection
// stickiness); only new flows see the new table.
func (b *Balancer) UpdateBackends(backends []Backend) error {
	nt, err := NewTable(backends, b.table.Size())
	if err != nil {
		return err
	}
	b.mu.Lock()
	b.table = nt
	b.mu.Unlock()
	return nil
}

// ConnCount reports tracked connections.
func (b *Balancer) ConnCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.conns)
}

// Stats reports connection-table hits and misses.
func (b *Balancer) Stats() (hits, misses uint64) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.hits, b.misses
}

// BalancerState is the exported checkpoint shape of a Balancer: the
// connection table plus its hit/miss counters. The lookup table itself
// is configuration (rebuilt from the backend set at boot), not state, so
// it stays out of the snapshot.
type BalancerState struct {
	Conns  map[uint64]Backend
	Hits   uint64
	Misses uint64
}

// Checkpoint implements the domain runtime's Stateful contract: a deep
// snapshot of the connection table under the balancer's read lock (Pick
// takes the write lock even on hits, so the traversal races no mutator).
func (b *Balancer) Checkpoint(e *checkpoint.Engine) (any, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return e.Checkpoint(&BalancerState{Conns: b.conns, Hits: b.hits, Misses: b.misses})
}

// Restore replaces the connection table with a fresh materialization of
// a Checkpoint token. The lookup table is untouched: config survives the
// fault, state is restored.
func (b *Balancer) Restore(token any) error {
	snap, ok := token.(*checkpoint.Snapshot)
	if !ok {
		return fmt.Errorf("maglev: restore token is %T, want *checkpoint.Snapshot", token)
	}
	v, err := snap.Materialize()
	if err != nil {
		return fmt.Errorf("maglev: materialize: %w", err)
	}
	st, ok := v.(*BalancerState)
	if !ok {
		return fmt.Errorf("maglev: snapshot holds %T, want *BalancerState", v)
	}
	if st.Conns == nil {
		st.Conns = make(map[uint64]Backend)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.conns = st.Conns
	b.hits, b.misses = st.Hits, st.Misses
	return nil
}

// Reset cold-starts the connection table: established-flow stickiness is
// lost, new flows fall back to the consistent hash.
func (b *Balancer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.conns = make(map[uint64]Backend)
	b.hits, b.misses = 0, 0
}

// Operator adapts the balancer into a NetBricks pipeline stage: for each
// parsed packet it picks a backend, rewrites the destination IP, and tags
// the packet with the backend index — the per-batch work measured as
// "maglev" in Figure 2.
type Operator struct {
	LB *Balancer
}

// Name implements netbricks.Operator.
func (Operator) Name() string { return "maglev" }

// ProcessBatch implements netbricks.Operator.
func (o Operator) ProcessBatch(batch *netbricks.Batch) error {
	for _, p := range batch.Pkts {
		if !p.Parsed() {
			if err := p.Parse(); err != nil {
				return fmt.Errorf("%w: %v", ErrUnparsed, err)
			}
		}
		be := o.LB.Pick(p.Tuple())
		p.SetDstIP(be.IP)
		p.UserTag = uint64(be.IP)
	}
	return nil
}

var _ netbricks.Operator = Operator{}
