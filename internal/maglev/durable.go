package maglev

// durable.go implements the domain runtime's TokenCodec for the
// balancer: the checkpointed connection table (flow hash → backend
// stickiness) and hit/miss counters serialize to a flat little-endian
// image. The lookup table is config, not state — it is rebuilt from the
// backend set at boot, exactly as Restore leaves it untouched.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/packet"
)

const balancerTokenVersion = 1

// EncodeToken implements domain.TokenCodec.
func (b *Balancer) EncodeToken(token any) ([]byte, error) {
	snap, ok := token.(*checkpoint.Snapshot)
	if !ok {
		return nil, fmt.Errorf("maglev: encode token is %T, want *checkpoint.Snapshot", token)
	}
	v, err := snap.Materialize()
	if err != nil {
		return nil, fmt.Errorf("maglev: encode: materialize: %w", err)
	}
	st, ok := v.(*BalancerState)
	if !ok {
		return nil, fmt.Errorf("maglev: snapshot holds %T, want *BalancerState", v)
	}
	buf := make([]byte, 0, 1+8+8+4+len(st.Conns)*24)
	buf = append(buf, balancerTokenVersion)
	buf = binary.LittleEndian.AppendUint64(buf, st.Hits)
	buf = binary.LittleEndian.AppendUint64(buf, st.Misses)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.Conns)))
	for h, be := range st.Conns {
		buf = binary.LittleEndian.AppendUint64(buf, h)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(be.IP))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(be.Name)))
		buf = append(buf, be.Name...)
	}
	return buf, nil
}

// DecodeToken implements domain.TokenCodec: rebuild the state and
// re-checkpoint it, yielding the *checkpoint.Snapshot Restore expects.
func (b *Balancer) DecodeToken(data []byte) (any, error) {
	if len(data) < 1+8+8+4 || data[0] != balancerTokenVersion {
		return nil, fmt.Errorf("maglev: bad token header")
	}
	st := &BalancerState{
		Hits:   binary.LittleEndian.Uint64(data[1:]),
		Misses: binary.LittleEndian.Uint64(data[9:]),
	}
	n := int(binary.LittleEndian.Uint32(data[17:]))
	data = data[21:]
	st.Conns = make(map[uint64]Backend, n)
	for i := 0; i < n; i++ {
		if len(data) < 14 {
			return nil, fmt.Errorf("maglev: token truncated at conn %d", i)
		}
		h := binary.LittleEndian.Uint64(data)
		ip := packet.IPv4(binary.LittleEndian.Uint32(data[8:]))
		nameLen := int(binary.LittleEndian.Uint16(data[12:]))
		data = data[14:]
		if len(data) < nameLen {
			return nil, fmt.Errorf("maglev: token truncated at conn %d name", i)
		}
		st.Conns[h] = Backend{Name: string(data[:nameLen]), IP: ip}
		data = data[nameLen:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("maglev: token has %d trailing bytes", len(data))
	}
	snap, err := checkpoint.NewEngine(checkpoint.RcAware).Checkpoint(st)
	if err != nil {
		return nil, fmt.Errorf("maglev: decode: re-checkpoint: %w", err)
	}
	return snap, nil
}
