package maglev

import (
	"testing"

	"repro/internal/packet"
)

// TestAllocsPick pins the per-packet balancing cost: picking a backend
// for a flow already in the connection table (steady state) must not
// allocate. Only a flow's first packet pays the conns-map insert.
func TestAllocsPick(t *testing.T) {
	backends := []Backend{
		{Name: "be-0", IP: packet.Addr(10, 1, 0, 1)},
		{Name: "be-1", IP: packet.Addr(10, 1, 0, 2)},
	}
	lb, err := NewBalancer(backends, DefaultTableSize)
	if err != nil {
		t.Fatal(err)
	}
	tu := packet.FiveTuple{
		SrcIP: packet.Addr(192, 168, 0, 1), DstIP: packet.Addr(10, 0, 0, 1),
		SrcPort: 40000, DstPort: 80, Proto: packet.ProtoTCP,
	}
	first := lb.Pick(tu) // miss path: inserts into the connection table
	if allocs := testing.AllocsPerRun(1000, func() {
		if be := lb.Pick(tu); be != first {
			t.Fatal("connection table lost affinity")
		}
	}); allocs != 0 {
		t.Fatalf("Pick hit allocates %.1f objects per call, want 0", allocs)
	}
}
