package maglev

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/packet"
)

func TestBalancerTokenRoundTrip(t *testing.T) {
	backends := []Backend{
		{Name: "be-a", IP: 0x0a630001},
		{Name: "be-b", IP: 0x0a630002},
		{Name: "be-c", IP: 0x0a630003},
	}
	src, err := NewBalancer(backends, 127)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		src.Pick(packet.FiveTuple{
			SrcIP: packet.IPv4(0x0a000000 + uint32(i)), DstIP: 0x0a630000,
			SrcPort: uint16(1000 + i), DstPort: 80, Proto: 17,
		})
	}
	snap, err := src.Checkpoint(checkpoint.NewEngine(checkpoint.RcAware))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := src.EncodeToken(snap)
	if err != nil {
		t.Fatal(err)
	}

	dst, err := NewBalancer(backends, 127)
	if err != nil {
		t.Fatal(err)
	}
	token, err := dst.DecodeToken(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Restore(token); err != nil {
		t.Fatal(err)
	}
	if dst.ConnCount() != src.ConnCount() {
		t.Fatalf("restored %d conns, want %d", dst.ConnCount(), src.ConnCount())
	}
	sh, sm := src.Stats()
	dh, dm := dst.Stats()
	if sh != dh || sm != dm {
		t.Fatalf("stats %d/%d, want %d/%d", dh, dm, sh, sm)
	}
	// Stickiness survives: every flow picks the same backend it had.
	src.mu.Lock()
	conns := make(map[uint64]Backend, len(src.conns))
	for h, be := range src.conns {
		conns[h] = be
	}
	src.mu.Unlock()
	dst.mu.Lock()
	for h, want := range conns {
		if got := dst.conns[h]; got != want {
			dst.mu.Unlock()
			t.Fatalf("conn %x → %+v, want %+v", h, got, want)
		}
	}
	dst.mu.Unlock()
}

func TestBalancerDecodeRejectsGarbage(t *testing.T) {
	b, err := NewBalancer([]Backend{{Name: "x", IP: 1}}, 13)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.DecodeToken(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := b.DecodeToken(make([]byte, 21)); err == nil {
		t.Fatal("bad version accepted")
	}
	// Truncated conn list.
	good, _ := b.Checkpoint(checkpoint.NewEngine(checkpoint.RcAware))
	b.Pick(packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17})
	snap, _ := b.Checkpoint(checkpoint.NewEngine(checkpoint.RcAware))
	payload, err := b.EncodeToken(snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.DecodeToken(payload[:len(payload)-2]); err == nil {
		t.Fatal("truncated accepted")
	}
	if _, err := b.EncodeToken(42); err == nil {
		t.Fatal("bad encode token accepted")
	}
	_ = good
}
