package maglev

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/dpdk"
	"repro/internal/netbricks"
	"repro/internal/packet"
)

func backends(n int) []Backend {
	out := make([]Backend, n)
	for i := range out {
		out[i] = Backend{Name: fmt.Sprintf("be-%d", i), IP: packet.Addr(10, 1, 0, byte(i+1))}
	}
	return out
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(nil, 7); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("nil backends: %v", err)
	}
	if _, err := NewTable(backends(2), 8); !errors.Is(err, ErrNotPrime) {
		t.Fatalf("non-prime: %v", err)
	}
	if _, err := NewTable(backends(7), 7); err == nil {
		t.Fatal("size <= backends accepted")
	}
	dup := []Backend{{Name: "a"}, {Name: "a"}}
	if _, err := NewTable(dup, 7); !errors.Is(err, ErrDupBackend) {
		t.Fatalf("duplicate: %v", err)
	}
}

func TestTableFullAndBalanced(t *testing.T) {
	bs := backends(5)
	tbl, err := NewTable(bs, 1009)
	if err != nil {
		t.Fatal(err)
	}
	dist := tbl.Distribution()
	total := 0
	for _, b := range bs {
		c := dist[b.Name]
		total += c
		// Maglev guarantees near-perfect balance: each backend within a
		// small factor of M/N.
		want := 1009 / 5
		if c < want*8/10 || c > want*12/10 {
			t.Fatalf("backend %s has %d slots, want ~%d", b.Name, c, want)
		}
	}
	if total != 1009 {
		t.Fatalf("table not fully populated: %d", total)
	}
}

func TestLookupDeterministic(t *testing.T) {
	tbl, err := NewTable(backends(3), 101)
	if err != nil {
		t.Fatal(err)
	}
	for h := uint64(0); h < 1000; h++ {
		if tbl.Lookup(h) != tbl.Lookup(h) {
			t.Fatal("lookup not deterministic")
		}
	}
}

func TestConsistency(t *testing.T) {
	// Maglev's core property: removing one backend remaps only the flows
	// that pointed at it (plus a small disruption fraction).
	bs := backends(10)
	t1, err := NewTable(bs, 1009)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := NewTable(bs[:9], 1009) // drop backend 9
	if err != nil {
		t.Fatal(err)
	}
	moved, shouldMove := 0, 0
	const flows = 20000
	for h := uint64(0); h < flows; h++ {
		a := t1.Lookup(h)
		b := t2.Lookup(h)
		if a.Name == "be-9" {
			shouldMove++
			continue
		}
		if a.Name != b.Name {
			moved++
		}
	}
	// Eisenbud et al. report small disruption; allow up to 15% of the
	// remaining flows to move.
	if float64(moved) > 0.15*float64(flows-shouldMove) {
		t.Fatalf("disruption too high: %d of %d flows moved", moved, flows-shouldMove)
	}
	if shouldMove == 0 {
		t.Fatal("no flows mapped to removed backend — test vacuous")
	}
}

func TestBalancerConnectionStickiness(t *testing.T) {
	bs := backends(4)
	lb, err := NewBalancer(bs, 1009)
	if err != nil {
		t.Fatal(err)
	}
	flow := packet.FiveTuple{SrcIP: packet.Addr(1, 1, 1, 1), DstIP: packet.Addr(2, 2, 2, 2), SrcPort: 1234, DstPort: 80, Proto: packet.ProtoTCP}
	first := lb.Pick(flow)
	// Change the backend set entirely except the flow's backend may even
	// disappear — the connection table still pins it.
	if err := lb.UpdateBackends(backends(2)); err != nil {
		t.Fatal(err)
	}
	second := lb.Pick(flow)
	if first != second {
		t.Fatalf("flow moved: %v -> %v", first, second)
	}
	hits, misses := lb.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	if lb.ConnCount() != 1 {
		t.Fatalf("ConnCount = %d", lb.ConnCount())
	}
}

func TestBalancerNewFlowsUseNewTable(t *testing.T) {
	lb, err := NewBalancer(backends(2), 101)
	if err != nil {
		t.Fatal(err)
	}
	if err := lb.UpdateBackends(backends(1)); err != nil {
		t.Fatal(err)
	}
	flow := packet.FiveTuple{SrcIP: packet.Addr(9, 9, 9, 9), SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}
	got := lb.Pick(flow)
	if got.Name != "be-0" {
		t.Fatalf("new flow went to %s, want be-0 (only backend)", got.Name)
	}
}

func TestOperatorRewritesBatch(t *testing.T) {
	lb, err := NewBalancer(backends(3), 101)
	if err != nil {
		t.Fatal(err)
	}
	port := dpdk.NewPort(dpdk.Config{PoolSize: 32, Gen: &dpdk.UniformFlows{Base: dpdk.DefaultSpec(), Flows: 16}})
	pkts := make([]*packet.Packet, 16)
	n := port.RxBurst(pkts)
	batch := &netbricks.Batch{Pkts: pkts[:n]}
	op := Operator{LB: lb}
	if err := op.ProcessBatch(batch); err != nil {
		t.Fatal(err)
	}
	valid := map[packet.IPv4]bool{}
	for _, b := range backends(3) {
		valid[b.IP] = true
	}
	for _, p := range batch.Pkts {
		if !valid[p.Tuple().DstIP] {
			t.Fatalf("packet steered to non-backend %v", p.Tuple().DstIP)
		}
		if p.UserTag != uint64(p.Tuple().DstIP) {
			t.Fatal("UserTag mismatch")
		}
		if !p.VerifyIPChecksum() {
			t.Fatal("checksum broken by rewrite")
		}
	}
	port.Free(pkts[:n])
}

func TestOperatorParsesUnparsed(t *testing.T) {
	lb, err := NewBalancer(backends(2), 101)
	if err != nil {
		t.Fatal(err)
	}
	frame, _ := packet.Build(nil, dpdk.DefaultSpec())
	batch := &netbricks.Batch{Pkts: []*packet.Packet{{Data: frame}}}
	if err := (Operator{LB: lb}).ProcessBatch(batch); err != nil {
		t.Fatal(err)
	}
}

func TestOperatorRejectsGarbage(t *testing.T) {
	lb, err := NewBalancer(backends(2), 101)
	if err != nil {
		t.Fatal(err)
	}
	batch := &netbricks.Batch{Pkts: []*packet.Packet{{Data: []byte{1, 2, 3}}}}
	if err := (Operator{LB: lb}).ProcessBatch(batch); !errors.Is(err, ErrUnparsed) {
		t.Fatalf("err = %v, want ErrUnparsed", err)
	}
}

// Property: every flow hash maps to some backend in the set, and the
// mapping is stable under table rebuild with identical inputs.
func TestQuickLookupTotalAndStable(t *testing.T) {
	tbl, err := NewTable(backends(7), 1009)
	if err != nil {
		t.Fatal(err)
	}
	tbl2, err := NewTable(backends(7), 1009)
	if err != nil {
		t.Fatal(err)
	}
	f := func(h uint64) bool {
		b := tbl.Lookup(h)
		if b.Name == "" {
			return false
		}
		return tbl2.Lookup(h) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsPrime(t *testing.T) {
	primes := []int{2, 3, 5, 7, 101, 1009, 65537}
	for _, p := range primes {
		if !isPrime(p) {
			t.Errorf("isPrime(%d) = false", p)
		}
	}
	comps := []int{-1, 0, 1, 4, 9, 100, 65536}
	for _, c := range comps {
		if isPrime(c) {
			t.Errorf("isPrime(%d) = true", c)
		}
	}
}

func BenchmarkPick(b *testing.B) {
	lb, err := NewBalancer(backends(16), DefaultTableSize)
	if err != nil {
		b.Fatal(err)
	}
	flow := packet.FiveTuple{SrcIP: packet.Addr(1, 2, 3, 4), SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		flow.SrcPort = uint16(i)
		lb.Pick(flow)
	}
}

func BenchmarkTableBuild(b *testing.B) {
	bs := backends(16)
	for i := 0; i < b.N; i++ {
		if _, err := NewTable(bs, DefaultTableSize); err != nil {
			b.Fatal(err)
		}
	}
}
