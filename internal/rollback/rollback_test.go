package rollback

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/dpdk"
	"repro/internal/netbricks"
	"repro/internal/packet"
	"repro/internal/sfi"
)

// flowCounter is a stateful monitoring NF: per-flow packet counts plus a
// shared global total (through Rc, to exercise alias-preserving
// restores).
type flowCounter struct {
	Counts map[packet.FiveTuple]int
	Total  checkpoint.Rc[int]

	panicOn int // batch number to panic on (0 = never)
	seen    int
}

// counterState is the externalized state graph.
type counterState struct {
	Counts map[packet.FiveTuple]int
	Total  checkpoint.Rc[int]
}

func newFlowCounter() *flowCounter {
	return &flowCounter{
		Counts: make(map[packet.FiveTuple]int),
		Total:  checkpoint.NewRc(0),
	}
}

func (f *flowCounter) Name() string { return "flow-counter" }

func (f *flowCounter) ProcessBatch(b *netbricks.Batch) error {
	f.seen++
	if f.panicOn != 0 && f.seen == f.panicOn {
		panic(fmt.Sprintf("injected fault on batch %d", f.seen))
	}
	for _, p := range b.Pkts {
		if !p.Parsed() {
			if err := p.Parse(); err != nil {
				continue
			}
		}
		f.Counts[p.Tuple()]++
		f.Total.Set(f.Total.Get() + 1)
	}
	return nil
}

func (f *flowCounter) ExportState() any {
	return &counterState{Counts: f.Counts, Total: f.Total}
}

func (f *flowCounter) ImportState(state any) error {
	st, ok := state.(*counterState)
	if !ok {
		return fmt.Errorf("bad state type %T", state)
	}
	f.Counts = st.Counts
	f.Total = st.Total
	return nil
}

func (f *flowCounter) total() int { return f.Total.Get() }

func TestGuardCheckpointCadence(t *testing.T) {
	g, err := NewGuard(func() StatefulOperator { return newFlowCounter() }, 3)
	if err != nil {
		t.Fatal(err)
	}
	port := dpdk.NewPort(dpdk.Config{PoolSize: 64, Gen: &dpdk.UniformFlows{Base: dpdk.DefaultSpec(), Flows: 8}})
	pkts := make([]*packet.Packet, 4)
	for i := 0; i < 7; i++ {
		n := port.RxBurst(pkts)
		if err := g.ProcessBatch(&netbricks.Batch{Pkts: pkts[:n]}); err != nil {
			t.Fatal(err)
		}
		port.Free(pkts[:n])
	}
	processed, ckpts, restores := g.Stats()
	if processed != 7 {
		t.Fatalf("processed = %d", processed)
	}
	// Initial snapshot + after batches 3 and 6.
	if ckpts != 3 {
		t.Fatalf("checkpoints = %d, want 3", ckpts)
	}
	if restores != 0 {
		t.Fatalf("restores = %d", restores)
	}
	if g.BatchesAtRisk() != 1 {
		t.Fatalf("at risk = %d, want 1 (batch 7)", g.BatchesAtRisk())
	}
}

func TestRecoverOperatorRestoresState(t *testing.T) {
	made := 0
	g2, err := NewGuard(func() StatefulOperator { made++; return newFlowCounter() }, 2)
	if err != nil {
		t.Fatal(err)
	}
	port := dpdk.NewPort(dpdk.Config{PoolSize: 64})
	pkts := make([]*packet.Packet, 4)
	// Process 4 batches => checkpoints after 2 and 4, Total = 16.
	for i := 0; i < 4; i++ {
		n := port.RxBurst(pkts)
		if err := g2.ProcessBatch(&netbricks.Batch{Pkts: pkts[:n]}); err != nil {
			t.Fatal(err)
		}
		port.Free(pkts[:n])
	}
	// Process one more (at risk), then "fault" and recover.
	n := port.RxBurst(pkts)
	if err := g2.ProcessBatch(&netbricks.Batch{Pkts: pkts[:n]}); err != nil {
		t.Fatal(err)
	}
	port.Free(pkts[:n])
	op, err := g2.RecoverOperator()
	if err != nil {
		t.Fatal(err)
	}
	if op != netbricks.Operator(g2) {
		t.Fatal("RecoverOperator should return the guard itself")
	}
	recovered := g2.currentOp().(*flowCounter)
	// State rolled back to the last checkpoint (after batch 4): 16
	// packets, not 20.
	if got := recovered.total(); got != 16 {
		t.Fatalf("recovered total = %d, want 16 (bounded loss)", got)
	}
	processed, _, restores := g2.Stats()
	if processed != 4 || restores != 1 {
		t.Fatalf("processed=%d restores=%d", processed, restores)
	}
	if made < 2 {
		t.Fatalf("factory calls = %d, want fresh operator on recovery", made)
	}
}

func TestGuardPreservesStateSharing(t *testing.T) {
	g, err := NewGuard(func() StatefulOperator { return newFlowCounter() }, 1)
	if err != nil {
		t.Fatal(err)
	}
	port := dpdk.NewPort(dpdk.Config{PoolSize: 16})
	pkts := make([]*packet.Packet, 2)
	n := port.RxBurst(pkts)
	if err := g.ProcessBatch(&netbricks.Batch{Pkts: pkts[:n]}); err != nil {
		t.Fatal(err)
	}
	port.Free(pkts[:n])
	if _, err := g.RecoverOperator(); err != nil {
		t.Fatal(err)
	}
	fc := g.currentOp().(*flowCounter)
	// Rc state must be functional after restore: further processing
	// updates the restored Total.
	before := fc.total()
	n = port.RxBurst(pkts)
	if err := g.ProcessBatch(&netbricks.Batch{Pkts: pkts[:n]}); err != nil {
		t.Fatal(err)
	}
	port.Free(pkts[:n])
	if fc.total() != before+n {
		t.Fatalf("restored Rc state not live: %d -> %d", before, fc.total())
	}
}

func TestEndToEndMiddleboxRollback(t *testing.T) {
	// The full loop: guard in a protection domain, fault injected in the
	// operator, §3 recovery restores §5 state.
	mgr := sfi.NewManager()
	var injected *flowCounter
	factory := func() StatefulOperator {
		fc := newFlowCounter()
		if injected == nil {
			fc.panicOn = 5 // the first operator crashes on its 5th batch
			injected = fc
		}
		return fc
	}
	g, err := NewGuard(factory, 2)
	if err != nil {
		t.Fatal(err)
	}
	stage, err := NewGuardedStage(mgr, "monitor", g)
	if err != nil {
		t.Fatal(err)
	}
	port := dpdk.NewPort(dpdk.Config{PoolSize: 128, Gen: &dpdk.UniformFlows{Base: dpdk.DefaultSpec(), Flows: 4}})
	ctx := sfi.NewContext()
	pkts := make([]*packet.Packet, 4)
	faults := 0
	for i := 0; i < 10; i++ {
		n := port.RxBurst(pkts)
		batch := &netbricks.Batch{Pkts: pkts[:n]}
		err := stage.RRef.Call(ctx, "process", func(op netbricks.Operator) error {
			return op.ProcessBatch(batch)
		})
		if err != nil {
			if !errors.Is(err, sfi.ErrDomainFailed) {
				t.Fatal(err)
			}
			faults++
			if rerr := mgr.Recover(stage.Domain); rerr != nil {
				t.Fatal(rerr)
			}
		}
		port.Free(pkts[:n])
	}
	if faults != 1 {
		t.Fatalf("faults = %d, want 1", faults)
	}
	fc := g.currentOp().(*flowCounter)
	// 10 batches attempted; one crashed mid-flight (its packets lost) and
	// rollback discarded any batches after the last checkpoint. With
	// interval 2, the loss is bounded by 2 batches (8 packets) plus the
	// crashed batch.
	total := fc.total()
	if total < 4*(10-3) || total > 4*9 {
		t.Fatalf("recovered total = %d packets, want bounded loss in [28, 36]", total)
	}
	_, ckpts, restores := g.Stats()
	if restores != 1 {
		t.Fatalf("restores = %d", restores)
	}
	if ckpts < 3 {
		t.Fatalf("checkpoints = %d", ckpts)
	}
}

func TestRecoverWithoutSnapshotImpossible(t *testing.T) {
	// NewGuard always takes an initial snapshot, so ErrNoSnapshot is
	// unreachable through the public API — verify the guard is protected
	// anyway by clearing the field.
	g, err := NewGuard(func() StatefulOperator { return newFlowCounter() }, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.mu.Lock()
	g.snap = nil
	g.mu.Unlock()
	if _, err := g.RecoverOperator(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v", err)
	}
}

func TestGuardName(t *testing.T) {
	g, err := NewGuard(func() StatefulOperator { return newFlowCounter() }, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "flow-counter+rollback" {
		t.Fatalf("Name = %q", g.Name())
	}
}

func TestGuardRejectsNonCheckpointableState(t *testing.T) {
	_, err := NewGuard(func() StatefulOperator { return &badOp{} }, 1)
	if err == nil {
		t.Fatal("non-checkpointable state accepted")
	}
}

type badOp struct{}

func (badOp) Name() string                        { return "bad" }
func (badOp) ProcessBatch(*netbricks.Batch) error { return nil }
func (badOp) ExportState() any                    { return func() {} } // not checkpointable
func (badOp) ImportState(any) error               { return nil }
