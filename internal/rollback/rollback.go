// Package rollback implements rollback-recovery for stateful network
// functions — the §5 application the paper cites from Sherry et al. [37]
// ("Rollback-recovery for middleboxes") — by composing the two mechanisms
// this repository builds: §3 fault isolation (a crashing NF stage is
// contained in its protection domain) and §5 automatic checkpointing
// (the stage's state graph is snapshotted without hand-written
// serialization code).
//
// A Guard wraps a stateful operator. Every checkpoint interval it
// snapshots the operator's state with the Rc-aware engine; when the
// operator's domain faults, the recovery function installs a fresh
// operator and restores the last snapshot into it, so the NF resumes with
// bounded state loss (at most the batches processed since the last
// checkpoint) instead of the clean-slate recovery of plain §3.
package rollback

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/netbricks"
	"repro/internal/sfi"
)

// StatefulOperator is a pipeline stage with externalizable NF state. The
// state graph must be checkpointable (exported fields; sharing through
// checkpoint.Rc).
type StatefulOperator interface {
	netbricks.Operator
	// ExportState returns the operator's current state graph. The guard
	// checkpoints it; the operator retains ownership.
	ExportState() any
	// ImportState installs a restored state graph (of the same dynamic
	// type ExportState returns).
	ImportState(state any) error
}

// ErrNoSnapshot reports a restore attempt before any checkpoint was
// taken.
var ErrNoSnapshot = errors.New("rollback: no snapshot taken yet")

// Guard manages checkpointing and restore for one stateful stage. It is
// the management-plane side: it lives outside the protection domain, so
// it survives the domain's faults.
type Guard struct {
	mu       sync.Mutex
	eng      *checkpoint.Engine
	factory  func() StatefulOperator
	interval int // checkpoint every N batches; min 1

	current     StatefulOperator
	sinceCkpt   int
	snap        *checkpoint.Snapshot
	snapBatches uint64 // batches processed when the snapshot was taken
	processed   uint64 // batches processed in total
	restores    uint64
	checkpoints uint64
}

// NewGuard wraps the operator produced by factory, checkpointing its
// state every interval batches (interval < 1 is treated as 1).
func NewGuard(factory func() StatefulOperator, interval int) (*Guard, error) {
	if interval < 1 {
		interval = 1
	}
	g := &Guard{
		eng:      checkpoint.NewEngine(checkpoint.RcAware),
		factory:  factory,
		interval: interval,
		current:  factory(),
	}
	// Take the initial snapshot so a fault before the first interval
	// still restores to a defined state.
	if err := g.checkpointLocked(); err != nil {
		return nil, err
	}
	return g, nil
}

// Name implements netbricks.Operator.
func (g *Guard) Name() string { return g.currentOp().Name() + "+rollback" }

func (g *Guard) currentOp() StatefulOperator {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.current
}

// ProcessBatch implements netbricks.Operator: it delegates to the wrapped
// operator and takes a checkpoint at the configured cadence.
func (g *Guard) ProcessBatch(b *netbricks.Batch) error {
	g.mu.Lock()
	op := g.current
	g.mu.Unlock()
	if err := op.ProcessBatch(b); err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.processed++
	g.sinceCkpt++
	if g.sinceCkpt >= g.interval {
		if err := g.checkpointLocked(); err != nil {
			return fmt.Errorf("rollback: checkpoint: %w", err)
		}
	}
	return nil
}

func (g *Guard) checkpointLocked() error {
	snap, err := g.eng.Checkpoint(g.current.ExportState())
	if err != nil {
		return err
	}
	g.snap = snap
	g.snapBatches = g.processed
	g.sinceCkpt = 0
	g.checkpoints++
	return nil
}

// RecoverOperator builds the replacement operator for the stage's
// recovery function: a fresh operator with the last snapshot's state
// installed. The §3 recovery protocol (clear table, re-export) stays
// unchanged; only the operator it re-exports differs.
func (g *Guard) RecoverOperator() (netbricks.Operator, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.snap == nil {
		return nil, ErrNoSnapshot
	}
	fresh := g.factory()
	// Materialize a mutable copy of the snapshot; ImportState installs it
	// (asserting its own state type).
	restored, err := g.snap.Materialize()
	if err != nil {
		return nil, fmt.Errorf("rollback: restore: %w", err)
	}
	if err := fresh.ImportState(restored); err != nil {
		return nil, fmt.Errorf("rollback: import: %w", err)
	}
	g.current = fresh
	g.restores++
	// The batches between the snapshot and the fault are lost.
	g.processed = g.snapBatches
	g.sinceCkpt = 0
	return g, nil
}

// State returns the wrapped operator's live state graph, for replication
// or inspection. Callers must treat it as read-only; use the checkpoint
// machinery (txn.Store, Snapshot) for mutable copies.
func (g *Guard) State() any {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.current.ExportState()
}

// Stats reports processed batches (post-rollback), checkpoints taken, and
// restores performed.
func (g *Guard) Stats() (processed, checkpoints, restores uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.processed, g.checkpoints, g.restores
}

// BatchesAtRisk reports how many processed batches would be lost if the
// stage faulted right now.
func (g *Guard) BatchesAtRisk() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sinceCkpt
}

// NewGuardedStage exports the guard into a fresh protection domain under
// mgr and wires its recovery function to restore-from-snapshot: the full
// middlebox rollback-recovery loop.
func NewGuardedStage(mgr *sfi.Manager, name string, g *Guard) (*netbricks.IsolatedStage, error) {
	d := mgr.NewDomain(name)
	rref, err := sfi.Export[netbricks.Operator](d, netbricks.Operator(g))
	if err != nil {
		return nil, err
	}
	slot := rref.Slot()
	d.SetRecovery(func(d *sfi.Domain) error {
		op, err := g.RecoverOperator()
		if err != nil {
			return err
		}
		return sfi.ExportAt[netbricks.Operator](d, slot, op)
	})
	return &netbricks.IsolatedStage{Domain: d, RRef: rref}, nil
}
