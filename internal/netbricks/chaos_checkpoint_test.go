// Checkpointed chaos tier: the stateful-recovery acceptance run for the
// §5→§3 integration. A supervised 4-worker parse → firewall → maglev →
// session pipeline runs over live loopback traffic while the injector
// crashes it thousands of times, with per-worker NF state (maglev
// connection tables + session tables) checkpointed every few
// milliseconds and restored on every restart.
//
// The discriminating structure is phased traffic. Flow set A is offered
// only at the start: it enters the session tables, gets checkpointed,
// and then its traffic stops. Flow set B keeps flowing while the
// injector crashes the workers hundreds more times. A restart that
// cold-started (the pre-checkpoint behavior) would wipe set A with no
// traffic left to re-learn it from — so the final assertion, session
// tables == fault-free oracle over A ∪ B, passes only if every restart
// genuinely restored the last checkpoint.
package netbricks_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/domain"
	"repro/internal/domain/faultinject"
	"repro/internal/dpdk"
	"repro/internal/firewall"
	"repro/internal/leakcheck"
	"repro/internal/maglev"
	"repro/internal/netbricks"
	"repro/internal/netport"
	"repro/internal/packet"
	"repro/internal/session"
	"repro/internal/sfi"
	"repro/internal/statestore"
)

// ckptChaosBackends is the balancer config shared by every worker and
// the oracle, so backend choice is a pure function of the flow tuple.
func ckptChaosBackends() []maglev.Backend {
	return []maglev.Backend{
		{Name: "be-0", IP: packet.Addr(10, 1, 0, 1)},
		{Name: "be-1", IP: packet.Addr(10, 1, 0, 2)},
	}
}

// flowWalk enumerates the frames a Pktgen with this base/count emits:
// flow i adds i to SrcIP and i%50000 to SrcPort.
func flowWalk(t testing.TB, base packet.BuildSpec, flows int) [][]byte {
	t.Helper()
	frames := make([][]byte, flows)
	for i := 0; i < flows; i++ {
		spec := base
		spec.Tuple.SrcIP += packet.IPv4(i)
		spec.Tuple.SrcPort += uint16(i % 50000)
		frame, err := packet.Build(nil, spec)
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = frame
	}
	return frames
}

// oracleEntries replays one packet per flow through a fresh, fault-free
// pipeline (same rule DB and balancer config, no injector, no faults)
// and returns the resulting session identity — the ground truth the
// chaos run's tables must converge to.
func oracleEntries(t *testing.T, db *firewall.DB, frameSets ...[][]byte) map[uint64]packet.IPv4 {
	t.Helper()
	lb, err := maglev.NewBalancer(ckptChaosBackends(), maglev.DefaultTableSize)
	if err != nil {
		t.Fatal(err)
	}
	table := session.NewTable()
	var pkts []*packet.Packet
	for _, frames := range frameSets {
		for _, frame := range frames {
			pkts = append(pkts, &packet.Packet{Data: frame})
		}
	}
	batch := &netbricks.Batch{Pkts: pkts}
	for _, op := range []netbricks.Operator{
		netbricks.Parse{}, firewall.Operator{DB: db},
		maglev.Operator{LB: lb}, session.Operator{T: table},
	} {
		if err := op.ProcessBatch(batch); err != nil {
			t.Fatalf("oracle %s: %v", op.Name(), err)
		}
	}
	if len(batch.Dropped) != 0 {
		t.Fatalf("oracle replay dropped %d packets; the flow sets must all pass the firewall", len(batch.Dropped))
	}
	return table.Entries()
}

// unionEntries merges the per-worker session tables, failing on a
// conflict (the same flow claiming two backends would mean RSS affinity
// or restore isolation broke).
func unionEntries(t *testing.T, tables []*session.Table) map[uint64]packet.IPv4 {
	t.Helper()
	out := make(map[uint64]packet.IPv4)
	for w, tbl := range tables {
		for h, ip := range tbl.Entries() {
			if prev, ok := out[h]; ok && prev != ip {
				t.Fatalf("flow %#x tracked with backend %v on one worker and %v on worker %d", h, prev, ip, w)
			}
			out[h] = ip
		}
	}
	return out
}

// entriesEqual reports whether got matches want, with a diff summary.
func entriesEqual(got, want map[uint64]packet.IPv4) (bool, string) {
	missing, extra, wrong := 0, 0, 0
	for h, ip := range want {
		g, ok := got[h]
		switch {
		case !ok:
			missing++
		case g != ip:
			wrong++
		}
	}
	for h := range got {
		if _, ok := want[h]; !ok {
			extra++
		}
	}
	if missing == 0 && extra == 0 && wrong == 0 {
		return true, ""
	}
	return false, fmt.Sprintf("%d/%d flows missing, %d extra, %d wrong backend", missing, len(want), extra, wrong)
}

// ckptChaosResult is what a checkpointed chaos run hands back for
// variant-specific assertions.
type ckptChaosResult struct {
	sup    domain.Snapshot   // final merged supervisor ledger
	doms   []domain.Snapshot // per-worker snapshots after phase-2 convergence
	oracle map[uint64]packet.IPv4
}

// runCheckpointedChaos is the shared body of the checkpointed chaos
// tiers: a supervised 4-worker pipeline under phased traffic and fault
// injection, with per-worker NF state checkpointed every few
// milliseconds — and, when persist is non-nil, every completed epoch
// made durable through it.
func runCheckpointedChaos(t *testing.T, minFaults, phase2Min uint64, persist domain.Persister) ckptChaosResult {
	const (
		workers   = 4
		batchSize = 8
		flowsPer  = 64
	)

	port, err := netport.Open(netport.Config{
		Listen:   "127.0.0.1:0",
		Queues:   workers,
		RingSize: 256,
		PollWait: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	leakcheck.Pool(t, "ckpt chaos netport", port.PoolAvailable)
	t.Cleanup(func() { port.Close() })

	// Disjoint flow sets: A is offered only before phase 2.
	specA := dpdk.DefaultSpec()
	specB := dpdk.DefaultSpec()
	specB.Tuple.SrcIP += 4096

	db := firewall.NewDB(firewall.Deny)
	if _, err := db.AddRule(packet.Addr(10, 99, 0, 0), 16, firewall.Rule{ID: 1, Action: firewall.Allow}); err != nil {
		t.Fatal(err)
	}
	oracle := oracleEntries(t, db,
		flowWalk(t, specA, flowsPer), flowWalk(t, specB, flowsPer))

	tables := make([]*session.Table, workers)
	balancers := make([]*maglev.Balancer, workers)
	for w := 0; w < workers; w++ {
		tables[w] = session.NewTable()
		balancers[w], err = maglev.NewBalancer(ckptChaosBackends(), maglev.DefaultTableSize)
		if err != nil {
			t.Fatal(err)
		}
	}

	inj := faultinject.New(11) // probabilities start at zero: calm warm-up
	inj.StallFor = 3 * time.Millisecond
	var violations atomic.Uint64
	r := &netbricks.ShardedRunner{
		Port: port, Workers: workers, BatchSize: batchSize,
		Supervise:    true,
		MailboxDepth: 2,
		NewIsolated: func(w int) (*netbricks.IsolatedPipeline, error) {
			cur := &chaosStage{inj: inj, violations: &violations}
			stages := []netbricks.Operator{
				netbricks.Parse{},
				firewall.Operator{DB: db},
				cur,
				maglev.Operator{LB: balancers[w]},
				session.Operator{T: tables[w]},
			}
			factories := []func() netbricks.Operator{
				nil, nil,
				func() netbricks.Operator {
					cur.retired.Store(true)
					cur = &chaosStage{inj: inj, violations: &violations}
					return cur
				},
				nil, nil,
			}
			return netbricks.NewIsolatedPipeline(sfi.NewManager(), stages, factories)
		},
		NewState: func(w int) domain.Stateful {
			return domain.NewStateSet().
				Add("maglev", balancers[w]).
				Add("session", tables[w])
		},
		Policy: domain.Policy{
			Backoff:         20 * time.Microsecond,
			MaxBackoff:      time.Millisecond,
			MaxRestarts:     -1,
			HangAfter:       2 * time.Millisecond,
			Tick:            time.Millisecond,
			CheckpointEvery: 5 * time.Millisecond,
			Persist:         persist,
		},
	}

	// One continuous supervised run; the driver below phases traffic and
	// injection around it while it is live. Segmenting into multiple Run
	// calls would not work: each Run boots fresh domains with no
	// checkpoint history, so a fault early in a later segment would
	// legally cold-start and wipe the tables.
	runDone := make(chan error, 1)
	go func() {
		_, err := r.Run(1 << 30)
		runDone <- err
	}()

	startGen := func(spec packet.BuildSpec) (chan<- struct{}, <-chan error) {
		stop := make(chan struct{})
		done := make(chan error, 1)
		gen := &netport.Pktgen{
			Target: port.Addr().String(),
			Base:   spec,
			Flows:  flowsPer,
			PPS:    50000,
		}
		go func() {
			_, err := gen.Run(stop)
			done <- err
		}()
		return stop, done
	}
	stopA, doneA := startGen(specA)
	stopB, doneB := startGen(specB)

	waitUntil := func(what string, timeout time.Duration, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(timeout)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out (%v) waiting for %s", timeout, what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	mergedFaults := func() uint64 {
		sn, ok := r.SupervisorSnapshot()
		if !ok {
			return 0
		}
		return sn.Errors + sn.Crashes + sn.Hangs
	}
	// faultsSettled waits for the in-flight tail after injection turns
	// off: batches already past the injector can still fault for a
	// moment.
	faultsSettled := func() {
		t.Helper()
		waitUntil("faults to settle", 10*time.Second, func() bool {
			before := mergedFaults()
			time.Sleep(100 * time.Millisecond)
			return mergedFaults() == before
		})
	}
	perWorkerCkpts := func() []uint64 {
		sns := r.DomainSnapshots()
		out := make([]uint64, len(sns))
		for i, sn := range sns {
			out[i] = sn.Checkpoints
		}
		return out
	}

	// Warm-up (calm): every worker domain must complete at least one
	// checkpoint epoch before the first fault — that is what entitles the
	// run to assert zero cold starts.
	waitUntil("a first checkpoint epoch on every worker", 10*time.Second, func() bool {
		ckpts := perWorkerCkpts()
		if len(ckpts) < workers {
			return false
		}
		for _, c := range ckpts {
			if c == 0 {
				return false
			}
		}
		return true
	})

	// Phase 1: faults over A ∪ B until the total-fault floor.
	inj.Set(0.30, 0.001)
	waitUntil(fmt.Sprintf("%d injected faults", minFaults), 120*time.Second, func() bool {
		return mergedFaults() >= minFaults
	})
	inj.Set(0, 0)
	faultsSettled()

	// Interlude (calm, both sets flowing): tables re-converge to the full
	// oracle, then every worker takes two more epochs — the second one
	// must have started after convergence, so the last published
	// checkpoint on every worker contains its complete A-share.
	waitUntil("tables to converge on the oracle", 30*time.Second, func() bool {
		ok, _ := entriesEqual(unionEntries(t, tables), oracle)
		return ok
	})
	base := perWorkerCkpts()
	waitUntil("two post-convergence epochs per worker", 10*time.Second, func() bool {
		for i, c := range perWorkerCkpts() {
			if c < base[i]+2 {
				return false
			}
		}
		return true
	})

	// Phase 2: set A's traffic stops for good; faults continue over
	// B-only traffic. From here on, set A exists nowhere but in the
	// checkpoints — every restart must restore it or the final equality
	// fails.
	snBefore, _ := r.SupervisorSnapshot()
	close(stopA)
	if err := <-doneA; err != nil {
		t.Fatal(err)
	}
	inj.Set(0.30, 0.001)
	waitUntil(fmt.Sprintf("%d phase-2 faults", phase2Min), 120*time.Second, func() bool {
		return mergedFaults() >= snBefore.Errors+snBefore.Crashes+snBefore.Hangs+phase2Min
	})
	inj.Set(0, 0)
	faultsSettled()

	// Calm tail: B re-learns its own losses; A must already be back.
	waitUntil("tables to match the oracle after phase 2", 30*time.Second, func() bool {
		ok, _ := entriesEqual(unionEntries(t, tables), oracle)
		return ok
	})
	// With persistence on, every worker must take (and persist) one more
	// epoch after final convergence, so the newest durable epoch holds
	// each worker's complete converged share.
	if persist != nil {
		base := perWorkerCkpts()
		waitUntil("two post-convergence epochs per worker", 10*time.Second, func() bool {
			for i, c := range perWorkerCkpts() {
				if c < base[i]+2 {
					return false
				}
			}
			return true
		})
	}
	doms := r.DomainSnapshots()

	// Wind down: stop the last generator, let the workers idle out.
	close(stopB)
	if err := <-doneB; err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("supervised run did not end after traffic stopped")
	}

	// Final ledger.
	sn, ok := r.SupervisorSnapshot()
	if !ok {
		t.Fatal("no supervisor snapshot")
	}
	got := unionEntries(t, tables)
	if ok, diff := entriesEqual(got, oracle); !ok {
		t.Fatalf("final session tables diverge from the fault-free oracle: %s", diff)
	}
	faults := sn.Errors + sn.Crashes + sn.Hangs
	t.Logf("checkpointed chaos: faults=%d (errors=%d crashes=%d hangs=%d) restarts=%d checkpoints=%d (failed=%d) restores=%d coldstarts=%d persisted=%d flows=%d",
		faults, sn.Errors, sn.Crashes, sn.Hangs, sn.Restarts,
		sn.Checkpoints, sn.CheckpointFailures, sn.Restores, sn.ColdStarts, sn.Persisted, len(got))
	if faults < minFaults {
		t.Fatalf("run produced %d faults, want >= %d", faults, minFaults)
	}
	if sn.Restores < 1 {
		t.Fatal("no checkpoint restores recorded")
	}
	if sn.Restores <= snBefore.Restores {
		t.Fatalf("no phase-2 restores (%d before, %d after): set A's survival was never actually tested",
			snBefore.Restores, sn.Restores)
	}
	if sn.ColdStarts != 0 {
		t.Fatalf("%d cold starts after the warm-up epoch gate; restarts must restore, not reset", sn.ColdStarts)
	}
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d invocations reached retired operator instances (stale-generation sfi refusal missing)", v)
	}
	return ckptChaosResult{sup: sn, doms: doms, oracle: oracle}
}

// TestChaosSupervisedPipelineCheckpointed is the stateful-recovery
// chaos acceptance run (name keeps it inside the test-e2e tier's
// TestChaosSupervisedPipeline regex).
func TestChaosSupervisedPipelineCheckpointed(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback chaos tier skipped in -short")
	}
	// 5000-fault floor: the ISSUE acceptance for the RAM-only tier.
	runCheckpointedChaos(t, 5000, 300, nil)
}

// TestChaosSupervisedPipelineCheckpointedDurable is the same run with
// every checkpoint epoch persisted to an on-disk statestore, plus a
// post-mortem: reopen the store cold and prove each worker's newest
// durable epoch decodes and restores to its exact converged share.
func TestChaosSupervisedPipelineCheckpointedDurable(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback chaos tier skipped in -short")
	}
	dir := t.TempDir()
	store, err := statestore.Open(statestore.Config{Dir: dir, Fsync: statestore.FsyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	res := runCheckpointedChaos(t, 1500, 150, store)
	if res.sup.Persisted == 0 {
		t.Fatal("no epochs persisted")
	}
	if res.sup.PersistFailures != 0 {
		t.Fatalf("%d persist failures during the chaos run", res.sup.PersistFailures)
	}
	for _, sn := range res.doms {
		if sn.Persisted == 0 {
			t.Fatalf("%s persisted no epochs", sn.Name)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Post-mortem rehydration: a cold reopen of the state directory must
	// hold, for every worker, a decodable newest epoch whose session
	// share matches the oracle — the on-disk artifact alone reconstructs
	// the fleet's converged state.
	store2, err := statestore.Open(statestore.Config{Dir: dir, Fsync: statestore.FsyncGroup})
	if err != nil {
		t.Fatalf("cold reopen: %v", err)
	}
	defer store2.Close()
	restored := make(map[uint64]packet.IPv4)
	for _, sn := range res.doms {
		payload, seq, ok, err := store2.LastEpoch(sn.Name)
		if err != nil || !ok {
			t.Fatalf("%s: no durable epoch after run (seq=%d, err=%v)", sn.Name, seq, err)
		}
		lb, err := maglev.NewBalancer(ckptChaosBackends(), maglev.DefaultTableSize)
		if err != nil {
			t.Fatal(err)
		}
		tbl := session.NewTable()
		set := domain.NewStateSet().Add("maglev", lb).Add("session", tbl)
		token, err := set.DecodeToken(payload)
		if err != nil {
			t.Fatalf("%s: decode durable epoch seq %d: %v", sn.Name, seq, err)
		}
		if err := set.Restore(token); err != nil {
			t.Fatalf("%s: restore durable epoch: %v", sn.Name, err)
		}
		for h, ip := range tbl.Entries() {
			if prev, ok := restored[h]; ok && prev != ip {
				t.Fatalf("flow %#x restored with backend %v and %v", h, prev, ip)
			}
			restored[h] = ip
		}
	}
	if ok, diff := entriesEqual(restored, res.oracle); !ok {
		t.Fatalf("rehydrated durable epochs diverge from the oracle: %s", diff)
	}
	t.Logf("durable chaos: %d epochs persisted, rehydrated %d flows exactly from disk", res.sup.Persisted, len(restored))
}
