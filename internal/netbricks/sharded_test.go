package netbricks

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/dpdk"
	"repro/internal/leakcheck"
	"repro/internal/packet"
	"repro/internal/sfi"
)

// newShardedPort builds a multi-queue port in RSS-partitioned mode with
// plenty of flows so every queue gets traffic.
func newShardedPort(t *testing.T, queues, poolSize int) *dpdk.Port {
	t.Helper()
	port := dpdk.NewPort(dpdk.Config{
		PoolSize: poolSize,
		RxQueues: queues,
		QueueGen: dpdk.NewRSSPartition(dpdk.DefaultSpec(), 1024, queues),
	})
	leakcheck.Pool(t, "sharded port", port.PoolAvailable)
	return port
}

func TestShardedRunnerDirect(t *testing.T) {
	const workers = 4
	port := newShardedPort(t, workers, 1024)
	r := &ShardedRunner{
		Port: port, Workers: workers, BatchSize: 16,
		NewDirect: func(int) *Pipeline { return NewPipeline(Parse{}, NullFilter{}) },
	}
	stats, err := r.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Batches != workers*20 {
		t.Fatalf("batches = %d, want %d", stats.Batches, workers*20)
	}
	if stats.Packets != uint64(workers*20*16) {
		t.Fatalf("packets = %d, want %d", stats.Packets, workers*20*16)
	}
	// Per-worker stats must sum to the aggregate.
	var sum uint64
	for _, ws := range r.WorkerSnapshots() {
		sum += ws.Packets
	}
	if sum != stats.Packets {
		t.Fatalf("per-worker sum %d != aggregate %d", sum, stats.Packets)
	}
}

func TestShardedRunnerIsolated(t *testing.T) {
	const workers = 2
	port := newShardedPort(t, workers, 512)
	r := &ShardedRunner{
		Port: port, Workers: workers, BatchSize: 8,
		NewIsolated: func(int) (*IsolatedPipeline, error) {
			return NewIsolatedPipeline(sfi.NewManager(), []Operator{Parse{}, NullFilter{}, NullFilter{}}, nil)
		},
	}
	stats, err := r.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Batches != workers*10 || stats.Packets != uint64(workers*10*8) {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestShardedRunnerFlowAffinity is the steering guarantee end to end:
// across every worker, no flow is ever seen by two workers, and each
// packet arrives on the queue its RSS hash selects.
func TestShardedRunnerFlowAffinity(t *testing.T) {
	const workers = 4
	port := newShardedPort(t, workers, 1024)
	var mu sync.Mutex
	flowWorker := map[packet.FiveTuple]int{}
	r := &ShardedRunner{
		Port: port, Workers: workers, BatchSize: 16,
		NewDirect: func(w int) *Pipeline {
			spy := Transform{Label: "spy", Fn: func(p *packet.Packet) error {
				if got := port.RSSQueue(p.Tuple()); got != w {
					return errors.New("packet steered to wrong queue")
				}
				if p.RxQueue != w {
					return errors.New("RxQueue stamp disagrees with worker")
				}
				if p.RxHash != p.RSSHash() {
					return errors.New("deposited RSS hash disagrees with computed hash")
				}
				mu.Lock()
				defer mu.Unlock()
				if prev, ok := flowWorker[p.Tuple()]; ok && prev != w {
					return errors.New("flow migrated between workers")
				}
				flowWorker[p.Tuple()] = w
				return nil
			}}
			return NewPipeline(Parse{}, spy)
		},
	}
	if _, err := r.Run(30); err != nil {
		t.Fatal(err)
	}
	if len(flowWorker) < workers {
		t.Fatalf("only %d flows observed", len(flowWorker))
	}
}

// TestShardedRunnerSteeredMode drives the software-RSS distributor: one
// shared zipf generator fanned out to per-queue rings. Flow affinity
// must hold there too, and dropped-at-ring packets must not leak.
func TestShardedRunnerSteeredMode(t *testing.T) {
	const workers = 4
	port := dpdk.NewPort(dpdk.Config{
		PoolSize: 2048,
		RxQueues: workers,
		Gen:      dpdk.NewZipfFlows(dpdk.DefaultSpec(), 512, 1.2, 7),
	})
	leakcheck.Pool(t, "steered port", port.PoolAvailable)
	var mu sync.Mutex
	flowWorker := map[packet.FiveTuple]int{}
	r := &ShardedRunner{
		Port: port, Workers: workers, BatchSize: 16,
		NewDirect: func(w int) *Pipeline {
			spy := Transform{Label: "spy", Fn: func(p *packet.Packet) error {
				mu.Lock()
				defer mu.Unlock()
				if prev, ok := flowWorker[p.Tuple()]; ok && prev != w {
					return errors.New("flow migrated between workers")
				}
				flowWorker[p.Tuple()] = w
				return nil
			}}
			return NewPipeline(Parse{}, spy)
		},
	}
	stats, err := r.Run(25)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Packets == 0 {
		t.Fatal("no packets processed")
	}
	if len(flowWorker) < 2 {
		t.Fatalf("flows all landed on one worker: %d flows", len(flowWorker))
	}
}

// TestShardedRunnerRace is the concurrency stress for the race tier: the
// maximum worker count over a small shared pool (so refill/spill, ring,
// and distributor paths all interleave), isolated pipelines whose
// domains live in per-worker managers, and a shared-state spy guarded
// only by linear ownership of the batch. Run with -race; an ownership
// violation or unsynchronized access fails loudly.
func TestShardedRunnerRace(t *testing.T) {
	const workers = 8
	port := newShardedPort(t, workers, 1024)
	r := &ShardedRunner{
		Port: port, Workers: workers, BatchSize: 8,
		NewIsolated: func(int) (*IsolatedPipeline, error) {
			// Mutating every packet in every stage would race instantly if
			// two workers ever shared a batch; linear moves make it safe.
			bump := Transform{Label: "bump", Fn: func(p *packet.Packet) error {
				p.UserTag++
				return nil
			}}
			return NewIsolatedPipeline(sfi.NewManager(), []Operator{Parse{}, bump, bump, bump}, nil)
		},
	}
	for round := 0; round < 3; round++ {
		stats, err := r.Run(50)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Packets == 0 {
			t.Fatal("no packets processed")
		}
	}
}

// TestShardedRunnerFaultRecovery injects a panic in one worker's private
// pipeline; that worker recovers and continues while the others never
// notice. Lost-batch buffers must still balance.
func TestShardedRunnerFaultRecovery(t *testing.T) {
	const workers = 4
	port := newShardedPort(t, workers, 1024)
	r := &ShardedRunner{
		Port: port, Workers: workers, BatchSize: 8, AutoRecover: true,
		NewIsolated: func(w int) (*IsolatedPipeline, error) {
			inj := &FaultInjector{}
			if w == 1 {
				inj.PanicOn = 5
			}
			return NewIsolatedPipeline(sfi.NewManager(),
				[]Operator{Parse{}, inj},
				[]func() Operator{nil, func() Operator { return &FaultInjector{} }})
		},
	}
	stats, err := r.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Faults != 1 || stats.Recovered != 1 {
		t.Fatalf("stats = %+v, want exactly one fault and recovery", stats)
	}
	per := r.WorkerSnapshots()
	if per[1].Faults != 1 {
		t.Fatalf("fault not attributed to worker 1: %+v", per)
	}
	for w, ws := range per {
		if w != 1 && ws.Faults != 0 {
			t.Fatalf("worker %d saw a fault: %+v", w, ws)
		}
	}
}

// TestShardedRunnerFaultWithoutRecoveryStopsWorker: without AutoRecover
// the faulting worker stops with an error; others run to completion.
func TestShardedRunnerFaultWithoutRecoveryStopsWorker(t *testing.T) {
	const workers = 2
	port := newShardedPort(t, workers, 512)
	r := &ShardedRunner{
		Port: port, Workers: workers, BatchSize: 8,
		NewIsolated: func(w int) (*IsolatedPipeline, error) {
			inj := &FaultInjector{}
			if w == 0 {
				inj.PanicOn = 3
			}
			return NewIsolatedPipeline(sfi.NewManager(), []Operator{inj}, nil)
		},
	}
	stats, err := r.Run(10)
	if !errors.Is(err, ErrStageFailed) {
		t.Fatalf("err = %v, want ErrStageFailed", err)
	}
	per := r.WorkerSnapshots()
	if per[0].Batches != 2 {
		t.Fatalf("worker 0 batches = %d, want 2 before the fault", per[0].Batches)
	}
	if per[1].Batches != 10 {
		t.Fatalf("worker 1 batches = %d, want 10", per[1].Batches)
	}
	_ = stats
}

// TestShardedRunnerEmptyPartition: with more queues than flows some
// queues get nothing; their workers must terminate cleanly rather than
// spin.
func TestShardedRunnerEmptyPartition(t *testing.T) {
	const workers = 4
	port := dpdk.NewPort(dpdk.Config{
		PoolSize: 256,
		RxQueues: workers,
		QueueGen: dpdk.NewRSSPartition(dpdk.DefaultSpec(), 2, workers),
	})
	leakcheck.Pool(t, "sparse port", port.PoolAvailable)
	r := &ShardedRunner{
		Port: port, Workers: workers, BatchSize: 4,
		NewDirect: func(int) *Pipeline { return NewPipeline(NullFilter{}) },
	}
	stats, err := r.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Packets == 0 {
		t.Fatal("the non-empty partitions produced nothing")
	}
}

func TestShardedRunnerValidation(t *testing.T) {
	port := dpdk.NewPort(dpdk.Config{PoolSize: 64, RxQueues: 2})
	direct := func(int) *Pipeline { return NewPipeline(NullFilter{}) }
	// ShardedRunner holds atomics and must not be copied (go vet
	// copylocks), hence pointers here.
	cases := []struct {
		name string
		r    *ShardedRunner
	}{
		{"zero workers", &ShardedRunner{Port: port, BatchSize: 4, NewDirect: direct}},
		{"zero batch", &ShardedRunner{Port: port, Workers: 2, NewDirect: direct}},
		{"no pipeline", &ShardedRunner{Port: port, Workers: 2, BatchSize: 4}},
		{"both pipelines", &ShardedRunner{Port: port, Workers: 2, BatchSize: 4,
			NewDirect: direct,
			NewIsolated: func(int) (*IsolatedPipeline, error) {
				return NewIsolatedPipeline(sfi.NewManager(), []Operator{NullFilter{}}, nil)
			}}},
		{"nil port", &ShardedRunner{Workers: 2, BatchSize: 4, NewDirect: direct}},
		{"too few queues", &ShardedRunner{Port: port, Workers: 4, BatchSize: 4, NewDirect: direct}},
	}
	for _, c := range cases {
		if _, err := c.r.Run(1); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestShardedRunnerIsolatedFactoryError: a factory failure on one worker
// surfaces as the run error.
func TestShardedRunnerIsolatedFactoryError(t *testing.T) {
	port := newShardedPort(t, 2, 256)
	boom := errors.New("factory failed")
	r := &ShardedRunner{
		Port: port, Workers: 2, BatchSize: 4,
		NewIsolated: func(w int) (*IsolatedPipeline, error) {
			if w == 1 {
				return nil, boom
			}
			return NewIsolatedPipeline(sfi.NewManager(), []Operator{NullFilter{}}, nil)
		},
	}
	if _, err := r.Run(2); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want factory error", err)
	}
}
