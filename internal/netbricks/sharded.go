// Sharded multi-worker pipeline runtime.
//
// The paper's §3 evaluation drives one pipeline from one thread; real NF
// deployments scale out by giving each core its own receive queue and
// running an independent pipeline instance per core, with the NIC's RSS
// hash keeping every packet of one flow on the same core. This file adds
// that runtime. It is safe by the same argument the paper makes for the
// single pipeline: a batch is linearly owned by exactly one stage of one
// worker at any time, so workers cannot race on packet data no matter
// how many run — ownership, not locking, is the synchronization.
//
// Everything per-worker is genuinely per-worker: the pipeline instance
// (operators and their state), the sfi.Context (the paper's thread-local
// current-domain store), the receive queue with its mempool cache, and
// the stats cell. The only shared structures on the hot path are the
// port's mempool (touched in amortized bursts through the per-queue
// caches) and, in steered mode, the distributor.
package netbricks

import (
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/domain"
	"repro/internal/packet"
	"repro/internal/sfi"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// WorkerStats holds one worker's counters — telemetry cells, so
// harnesses and metric scrapes can read them while the run is live; each
// cell is written by exactly one worker.
type WorkerStats struct {
	Batches   telemetry.Counter
	Packets   telemetry.Counter
	Drops     telemetry.Counter
	Faults    telemetry.Counter
	Recovered telemetry.Counter
	// IdlePolls counts receive polls that returned no packets (steered
	// mode back-pressure, or an empty RSS partition).
	IdlePolls telemetry.Counter
	// Latency is the per-batch pipeline latency histogram: the time one
	// Process invocation took, faulted or not, measured at the worker.
	Latency telemetry.Histogram
}

// register exports the worker's counters and latency histogram on reg —
// a Registrar, so Run can batch every worker's group into one atomic
// install instead of letting a live scrape observe the re-registration
// half done.
func (w *WorkerStats) register(reg telemetry.Registrar, labels telemetry.Labels) {
	reg.RegisterCounter("worker_batches_total", labels, &w.Batches)
	reg.RegisterCounter("worker_packets_total", labels, &w.Packets)
	reg.RegisterCounter("worker_drops_total", labels, &w.Drops)
	reg.RegisterCounter("worker_faults_total", labels, &w.Faults)
	reg.RegisterCounter("worker_recovered_total", labels, &w.Recovered)
	reg.RegisterCounter("worker_idle_polls_total", labels, &w.IdlePolls)
	reg.RegisterHistogram("worker_batch_latency_seconds", labels, &w.Latency)
}

// Snapshot converts the counters into a RunStats.
func (w *WorkerStats) Snapshot() RunStats {
	return RunStats{
		Batches:   int(w.Batches.Load()),
		Packets:   w.Packets.Load(),
		Drops:     w.Drops.Load(),
		Faults:    int(w.Faults.Load()),
		Recovered: int(w.Recovered.Load()),
	}
}

// maxIdlePolls is how many consecutive empty receive polls a worker
// tolerates before concluding its queue has no more traffic.
const maxIdlePolls = 8

// ShardedRunner drives one multi-queue port with one worker goroutine
// per receive queue. Each worker owns a private pipeline instance (built
// by the factory, so per-stage NF state is sharded, never shared) and a
// private sfi.Context, and processes batches run-to-completion exactly
// like Runner. RSS steering in the port guarantees flow affinity:
// per-flow state such as a load balancer's connection table is correct
// without any cross-worker coordination.
type ShardedRunner struct {
	Port      BurstPort // must expose at least Workers receive queues
	Workers   int
	BatchSize int
	// NewDirect and NewIsolated are alternatives; exactly one must be
	// set. The factory runs once per worker, before traffic starts.
	NewDirect   func(worker int) *Pipeline
	NewIsolated func(worker int) (*IsolatedPipeline, error)
	// AutoRecover makes workers recover failed stages and continue.
	AutoRecover bool

	// Supervise runs every worker as a supervised protection domain (see
	// supervised.go): a feeder goroutine per queue sends batches into the
	// worker domain's mailbox, and a domain.Supervisor absorbs worker
	// faults — panics, pipeline errors, stalls — under Policy, restarting
	// workers while the rest keep forwarding. Supervised mode always
	// recovers (AutoRecover is implied).
	Supervise bool
	// Policy parameterizes the supervisor in supervised mode; the zero
	// value gets the domain package defaults.
	Policy domain.Policy
	// MailboxDepth is the per-worker inbox capacity in batches for
	// supervised mode (default 4).
	MailboxDepth int
	// NewState, when non-nil in supervised mode, gives each worker
	// domain its NF state for checkpointed recovery (§5): with
	// Policy.CheckpointEvery set, the worker's serving goroutine
	// snapshots the state periodically and a restart restores the last
	// good snapshot after the pipeline rebuild. The factory runs once
	// per worker, before traffic starts.
	NewState func(worker int) domain.Stateful

	// Registry, when non-nil, receives every worker's counters and batch
	// latency histogram at Run time (labels {worker=<n>}); in supervised
	// mode it also becomes the supervisor's registry (unless Policy
	// already names one), so domain, mailbox, and sfi metrics land on the
	// same registry. Re-running replaces the previous run's series.
	Registry *telemetry.Registry

	// Tracer, when non-nil, is attached to every worker's pipeline at
	// Run: sampled spans armed by the port are stamped at each
	// recognized stage, and in supervised mode the worker mailboxes
	// stamp the send/recv hops across the protection-domain boundary.
	Tracer *trace.Tracer

	stats []*WorkerStats
	sup   atomic.Pointer[domain.Supervisor]
}

// WorkerSnapshots reports per-worker stats for the most recent Run (live
// values while a run is in progress).
func (r *ShardedRunner) WorkerSnapshots() []RunStats {
	out := make([]RunStats, len(r.stats))
	for i, ws := range r.stats {
		out[i] = ws.Snapshot()
	}
	return out
}

// Snapshot aggregates the per-worker counters into one RunStats via
// RunStats.Merge, with the same semantics as domain.Supervisor.Snapshot
// (see domain.MergeSnapshots): a point-in-time copy of monotonically
// increasing atomics, safe to take while a run is live, never blocking
// the hot path.
func (r *ShardedRunner) Snapshot() RunStats {
	var agg RunStats
	for _, s := range r.WorkerSnapshots() {
		agg.Merge(s)
	}
	return agg
}

// Run processes up to n batches on every worker and returns the
// aggregated stats and the first worker error. On return the port has
// been drained: every buffer is back in the pool (or a queue cache), so
// pool-leak accounting balances.
func (r *ShardedRunner) Run(n int) (RunStats, error) {
	if r.Workers <= 0 {
		return RunStats{}, errors.New("netbricks: workers must be positive")
	}
	if r.BatchSize <= 0 {
		return RunStats{}, errors.New("netbricks: BatchSize must be positive")
	}
	if (r.NewDirect == nil) == (r.NewIsolated == nil) {
		return RunStats{}, errors.New("netbricks: set exactly one of NewDirect or NewIsolated")
	}
	if r.Port == nil {
		return RunStats{}, errors.New("netbricks: Port must be set")
	}
	if r.Port.Queues() < r.Workers {
		return RunStats{}, errors.New("netbricks: port has fewer RX queues than workers")
	}
	r.stats = make([]*WorkerStats, r.Workers)
	// Register every worker's series in one transaction: Run may be
	// re-registering over a previous run's series while the metrics
	// endpoint serves, and a scrape must never see the generations mixed.
	txn := r.Registry.Begin()
	for w := range r.stats {
		r.stats[w] = &WorkerStats{}
		r.stats[w].register(txn, telemetry.Labels{"worker": strconv.Itoa(w)})
	}
	txn.Commit()
	if r.Supervise {
		return r.runSupervised(n)
	}
	errs := make([]error, r.Workers)
	var wg sync.WaitGroup
	for w := 0; w < r.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = r.runWorker(w, n)
		}(w)
	}
	wg.Wait()
	r.Port.Drain()
	var agg RunStats
	for _, ws := range r.stats {
		agg.Merge(ws.Snapshot())
	}
	return agg, errors.Join(errs...)
}

// runWorker is one worker's run-to-completion loop over its own queue.
func (r *ShardedRunner) runWorker(w, n int) error {
	var direct *Pipeline
	var isolated *IsolatedPipeline
	if r.NewDirect != nil {
		direct = r.NewDirect(w)
	} else {
		var err error
		isolated, err = r.NewIsolated(w)
		if err != nil {
			return err
		}
	}
	if r.Tracer != nil {
		if direct != nil {
			direct.SetTracer(r.Tracer)
		} else {
			isolated.SetTracer(r.Tracer)
		}
	}
	ctx := sfi.NewContext()
	ws := r.stats[w]
	var car batchCarrier
	buf := make([]*packet.Packet, r.BatchSize)
	idle := 0
	for i := 0; i < n; {
		got := r.Port.RxBurstQueue(w, buf)
		if got == 0 {
			ws.IdlePolls.Add(1)
			idle++
			if idle >= maxIdlePolls {
				return nil
			}
			continue
		}
		idle = 0
		i++
		owned := car.load(buf[:got], r.Tracer != nil)
		var err error
		start := time.Now()
		if direct != nil {
			owned, err = direct.Process(owned)
		} else {
			owned, err = isolated.Process(ctx, owned)
		}
		ws.Latency.ObserveNanos(int64(time.Since(start)))
		if err != nil {
			ws.Faults.Add(1)
			r.Port.FreeQueue(w, buf[:got])
			car.lost()
			if r.AutoRecover && isolated != nil {
				if rerr := isolated.Recover(); rerr != nil {
					return rerr
				}
				ws.Recovered.Add(1)
				continue
			}
			return err
		}
		final, err := owned.Into()
		if err != nil {
			return err
		}
		ws.Batches.Add(1)
		ws.Packets.Add(uint64(len(final.Pkts)))
		ws.Drops.Add(uint64(len(final.Dropped)))
		r.Port.TxBurstQueue(w, final.Pkts)
		r.Port.FreeQueue(w, final.Dropped)
		car.recycle(owned, final)
	}
	return nil
}
