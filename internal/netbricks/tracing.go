// Stage-clock plumbing for the sampled packet tracer: the hooks that
// stamp trace spans as batches move through pipelines, runners, and
// domain mailboxes (see internal/telemetry/trace).
//
// The cost discipline mirrors the tracer's: when no tracer is attached
// every hook is a nil check; when one is attached but a batch carries no
// armed span, the per-batch cost is one scan at batch build plus a
// length check per stage. Only batches with sampled packets take a Mark
// and store stamps.
package netbricks

import (
	"repro/internal/telemetry/trace"
)

// scanTraced collects the batch's armed packets into the traced subset,
// so per-stage stamping iterates the (usually empty) subset instead of
// the whole batch. Runners call it once at batch build, after ingress
// arming and before the first stage.
func (b *Batch) scanTraced() {
	b.traced = b.traced[:0]
	for _, p := range b.Pkts {
		if p != nil && p.Trace.Armed() {
			b.traced = append(b.traced, p)
		}
	}
}

// stampTraced stamps every armed span in the batch at st with one
// coherent Mark — the per-stage clock tick. Dropped packets stay in the
// traced subset until the runner frees them (their spans then abort), so
// a packet an NF drops still shows how far it got.
func stampTraced(t *trace.Tracer, b *Batch, st trace.Stage) {
	if t == nil || st >= trace.NumStages || len(b.traced) == 0 {
		return
	}
	m := t.Now()
	for _, p := range b.traced {
		p.Trace.StampAt(st, m)
	}
}

// stageIDsFor maps each operator's Name onto its stamp position.
// Operators outside the known NF set map to the NumStages sentinel and
// are never stamped.
func stageIDsFor(stages []Operator) []trace.Stage {
	ids := make([]trace.Stage, len(stages))
	for i, st := range stages {
		id, ok := trace.StageForName(st.Name())
		if !ok {
			id = trace.NumStages
		}
		ids[i] = id
	}
	return ids
}

// mailboxStageClock wires the tracer into a supervised worker's mailbox:
// the send hook stamps StageMailboxSend while the feeder still owns the
// payload, the recv hook stamps StageMailboxRecv as the domain dequeues
// it — so the segment between them is exactly the batch's queueing delay
// across the protection-domain boundary.
func mailboxStageClock(t *trace.Tracer) (onSend, onRecv func(*Batch)) {
	if t == nil {
		return nil, nil
	}
	return func(b *Batch) { stampTraced(t, b, trace.StageMailboxSend) },
		func(b *Batch) { stampTraced(t, b, trace.StageMailboxRecv) }
}
