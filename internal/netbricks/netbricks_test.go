package netbricks

import (
	"errors"
	"testing"

	"repro/internal/dpdk"
	"repro/internal/leakcheck"
	"repro/internal/linear"
	"repro/internal/packet"
	"repro/internal/sfi"
)

// newPort builds a port and registers the pool-leak invariant: every
// buffer must be back by test end.
func newPort(t *testing.T, pool int) *dpdk.Port {
	t.Helper()
	port := dpdk.NewPort(dpdk.Config{PoolSize: pool})
	leakcheck.Pool(t, "port", port.PoolAvailable)
	return port
}

func TestDirectPipelineNullFilters(t *testing.T) {
	port := newPort(t, 128)
	pl := NewPipeline(NullFilter{}, NullFilter{}, NullFilter{})
	r := &Runner{Port: port, BatchSize: 32, Direct: pl}
	stats, err := r.Run(sfi.NewContext(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Batches != 10 || stats.Packets != 320 {
		t.Fatalf("stats = %+v", stats)
	}
	if port.PoolAvailable() != 128 {
		t.Fatalf("pool leak: %d", port.PoolAvailable())
	}
}

func TestPipelineMoveSemantics(t *testing.T) {
	// After Process, the caller's original handle must be dead: the
	// pipeline took ownership.
	pl := NewPipeline(NullFilter{})
	b := linear.New(&Batch{})
	orig := b
	out, err := pl.Process(b)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Valid() {
		t.Fatal("original handle still valid after pipeline took ownership")
	}
	if !out.Valid() {
		t.Fatal("returned handle invalid")
	}
}

func TestParseAndFilterDropping(t *testing.T) {
	port := newPort(t, 64)
	evenPort := Filter{Label: "even-src", Pred: func(p *packet.Packet) bool {
		return p.Tuple().SrcPort%2 == 0
	}}
	pl := NewPipeline(Parse{}, evenPort)
	r := &Runner{Port: port, BatchSize: 16, Direct: pl}
	stats, err := r.Run(sfi.NewContext(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Packets+stats.Drops != 64 {
		t.Fatalf("packets %d + drops %d != 64", stats.Packets, stats.Drops)
	}
	if port.PoolAvailable() != 64 {
		t.Fatalf("pool leak after drops: %d", port.PoolAvailable())
	}
}

func TestTransformError(t *testing.T) {
	pl := NewPipeline(Transform{Fn: func(*packet.Packet) error {
		return errors.New("bad packet")
	}})
	b := linear.New(&Batch{Pkts: []*packet.Packet{{}}})
	_, err := pl.Process(b)
	if err == nil {
		t.Fatal("transform error not surfaced")
	}
}

func TestIsolatedPipelineProcesses(t *testing.T) {
	mgr := sfi.NewManager()
	ip, err := NewIsolatedPipeline(mgr, []Operator{NullFilter{}, NullFilter{}, NullFilter{}, NullFilter{}, NullFilter{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ip.Len() != 5 {
		t.Fatalf("Len = %d", ip.Len())
	}
	port := newPort(t, 64)
	r := &Runner{Port: port, BatchSize: 8, Isolated: ip}
	stats, err := r.Run(sfi.NewContext(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Batches != 5 || stats.Packets != 40 {
		t.Fatalf("stats = %+v", stats)
	}
	// Every stage domain saw every batch.
	for _, st := range ip.Stages() {
		calls, _, _, _, _ := st.Domain.Stats.Snapshot()
		if calls != 5 {
			t.Fatalf("stage %s calls = %d, want 5", st.Domain.Name(), calls)
		}
	}
}

func TestIsolatedPipelineZeroCopy(t *testing.T) {
	// The same underlying packet buffers flow through all domains: no
	// copies are made crossing protection boundaries.
	mgr := sfi.NewManager()
	var seen []*packet.Packet
	spy := Transform{Label: "spy", Fn: func(p *packet.Packet) error {
		seen = append(seen, p)
		return nil
	}}
	ip, err := NewIsolatedPipeline(mgr, []Operator{spy}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pkt := &packet.Packet{Data: []byte{1, 2, 3}}
	b := linear.New(&Batch{Pkts: []*packet.Packet{pkt}})
	out, err := ip.Process(sfi.NewContext(), b)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != pkt {
		t.Fatal("stage saw a copy, not the original packet")
	}
	final, err := out.Into()
	if err != nil {
		t.Fatal(err)
	}
	if final.Pkts[0] != pkt {
		t.Fatal("caller got back a copy, not the original packet")
	}
}

func TestIsolatedPipelineFaultContainmentAndRecovery(t *testing.T) {
	mgr := sfi.NewManager()
	inj := &FaultInjector{PanicOn: 3}
	ops := []Operator{NullFilter{}, inj, NullFilter{}}
	factories := []func() Operator{
		nil,
		func() Operator { return &FaultInjector{} }, // recovered stage never panics again
		nil,
	}
	ip, err := NewIsolatedPipeline(mgr, ops, factories)
	if err != nil {
		t.Fatal(err)
	}
	port := newPort(t, 64)
	r := &Runner{Port: port, BatchSize: 4, Isolated: ip, AutoRecover: true}
	stats, err := r.Run(sfi.NewContext(), 10)
	if err != nil {
		t.Fatalf("run with auto-recover: %v", err)
	}
	if stats.Faults != 1 || stats.Recovered != 1 {
		t.Fatalf("stats = %+v, want 1 fault + 1 recovery", stats)
	}
	if stats.Batches != 9 { // one batch lost to the fault
		t.Fatalf("batches = %d, want 9", stats.Batches)
	}
	if port.PoolAvailable() != 64 {
		t.Fatalf("pool leak after fault: %d", port.PoolAvailable())
	}
	for _, st := range ip.Stages() {
		if st.Domain.Failed() {
			t.Fatalf("stage %s still failed", st.Domain.Name())
		}
	}
}

func TestIsolatedPipelineFaultWithoutRecoveryStops(t *testing.T) {
	mgr := sfi.NewManager()
	ip, err := NewIsolatedPipeline(mgr, []Operator{&FaultInjector{PanicOn: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	port := newPort(t, 16)
	r := &Runner{Port: port, BatchSize: 4, Isolated: ip}
	_, err = r.Run(sfi.NewContext(), 5)
	if !errors.Is(err, ErrStageFailed) || !errors.Is(err, sfi.ErrDomainFailed) {
		t.Fatalf("err = %v, want ErrStageFailed wrapping ErrDomainFailed", err)
	}
	if port.PoolAvailable() != 16 {
		t.Fatalf("pool leak: %d", port.PoolAvailable())
	}
}

func TestRunParallelAggregates(t *testing.T) {
	mgr := sfi.NewManager()
	ip, err := NewIsolatedPipeline(mgr, []Operator{Parse{}, NullFilter{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{BatchSize: 8, Isolated: ip}
	stats, err := r.RunParallel(4, 25, func(int) BurstPort {
		return dpdk.NewPort(dpdk.Config{PoolSize: 64})
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Batches != 100 || stats.Packets != 800 {
		t.Fatalf("stats = %+v", stats)
	}
	// Both shared stage domains saw all workers' calls.
	for _, st := range ip.Stages() {
		calls, _, _, _, _ := st.Domain.Stats.Snapshot()
		if calls != 100 {
			t.Fatalf("stage %s calls = %d", st.Domain.Name(), calls)
		}
	}
}

func TestRunParallelFaultsContainedPerWorker(t *testing.T) {
	mgr := sfi.NewManager()
	// One injector shared by all workers panics once; with AutoRecover
	// every worker continues.
	ip, err := NewIsolatedPipeline(mgr,
		[]Operator{&FaultInjector{PanicOn: 10}},
		[]func() Operator{func() Operator { return &FaultInjector{} }})
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{BatchSize: 4, Isolated: ip, AutoRecover: true}
	stats, err := r.RunParallel(4, 20, func(int) BurstPort {
		return dpdk.NewPort(dpdk.Config{PoolSize: 32})
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Faults < 1 {
		t.Fatalf("no faults recorded: %+v", stats)
	}
	if stats.Batches+stats.Faults != 80 {
		t.Fatalf("batches %d + faults %d != 80", stats.Batches, stats.Faults)
	}
}

func TestRunParallelValidation(t *testing.T) {
	r := &Runner{BatchSize: 4, Direct: NewPipeline()}
	if _, err := r.RunParallel(0, 1, func(int) BurstPort { return newPort(t, 4) }); err == nil {
		t.Fatal("zero workers accepted")
	}
}

func TestRunnerValidation(t *testing.T) {
	port := newPort(t, 8)
	r := &Runner{Port: port, BatchSize: 4}
	if _, err := r.Run(sfi.NewContext(), 1); err == nil {
		t.Fatal("runner with no pipeline accepted")
	}
	r2 := &Runner{Port: port, BatchSize: 0, Direct: NewPipeline()}
	if _, err := r2.Run(sfi.NewContext(), 1); err == nil {
		t.Fatal("runner with zero batch size accepted")
	}
	both := &Runner{Port: port, BatchSize: 4, Direct: NewPipeline(), Isolated: &IsolatedPipeline{}}
	if _, err := both.Run(sfi.NewContext(), 1); err == nil {
		t.Fatal("runner with both pipelines accepted")
	}
}

func TestBatchDrop(t *testing.T) {
	pkts := []*packet.Packet{{UserTag: 1}, {UserTag: 2}, {UserTag: 3}}
	b := &Batch{Pkts: append([]*packet.Packet(nil), pkts...)}
	b.Drop(0)
	if b.Len() != 2 || len(b.Dropped) != 1 {
		t.Fatalf("len=%d dropped=%d", b.Len(), len(b.Dropped))
	}
	if b.Dropped[0].UserTag != 1 {
		t.Fatal("wrong packet dropped")
	}
	// Remaining packets are 3 and 2 (swap-remove).
	tags := map[uint64]bool{}
	for _, p := range b.Pkts {
		tags[p.UserTag] = true
	}
	if !tags[2] || !tags[3] {
		t.Fatalf("remaining tags = %v", tags)
	}
}

func TestFaultInjectorCountsBatches(t *testing.T) {
	inj := &FaultInjector{PanicOn: 2}
	if err := inj.ProcessBatch(nil); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on second batch")
		}
	}()
	_ = inj.ProcessBatch(nil)
}

func TestOperatorNames(t *testing.T) {
	cases := []struct {
		op   Operator
		want string
	}{
		{NullFilter{}, "null-filter"},
		{Parse{}, "parse"},
		{Filter{}, "filter"},
		{Filter{Label: "x"}, "x"},
		{Transform{}, "transform"},
		{Transform{Label: "y"}, "y"},
		{&FaultInjector{}, "fault-injector"},
	}
	for _, c := range cases {
		if got := c.op.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

// Sanity for Figure 2 prerequisites: overhead of the isolated pipeline is
// per-stage, so doubling stages roughly doubles total overhead; measured
// per-call it should be roughly constant. Tested loosely here; precise
// numbers come from the bench harness.
func TestIsolationOverheadScalesWithStages(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	mk := func(n int) (*IsolatedPipeline, *Pipeline) {
		var ops []Operator
		for i := 0; i < n; i++ {
			ops = append(ops, NullFilter{})
		}
		mgr := sfi.NewManager()
		ip, err := NewIsolatedPipeline(mgr, ops, nil)
		if err != nil {
			t.Fatal(err)
		}
		return ip, NewPipeline(ops...)
	}
	run := func(ip *IsolatedPipeline, pl *Pipeline, batches int) (int, int) {
		ctx := sfi.NewContext()
		isoCalls := 0
		for i := 0; i < batches; i++ {
			b := linear.New(&Batch{})
			out, err := ip.Process(ctx, b)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := out.Into(); err != nil {
				t.Fatal(err)
			}
			isoCalls++
			b2 := linear.New(&Batch{})
			out2, err := pl.Process(b2)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := out2.Into(); err != nil {
				t.Fatal(err)
			}
		}
		return isoCalls, batches
	}
	ip5, pl5 := mk(5)
	run(ip5, pl5, 100)
	for _, st := range ip5.Stages() {
		calls, _, _, _, _ := st.Domain.Stats.Snapshot()
		if calls != 100 {
			t.Fatalf("stage saw %d calls, want 100", calls)
		}
	}

}
