// Package netbricks reimplements the slice of the NetBricks NF framework
// that the paper's §3 evaluation runs on: batches of packets retrieved
// from a (simulated) DPDK port and processed to completion through a
// pipeline of operators, where linear types ensure only one pipeline stage
// can access a batch at any time.
//
// Two pipeline drivers are provided:
//
//   - Pipeline passes batches between stages via plain function calls —
//     the baseline NetBricks architecture, which (as the paper notes) has
//     no fault containment or recovery; and
//   - IsolatedPipeline places every stage in its own sfi.Domain and
//     replaces the function calls with remote invocations that move the
//     batch across the protection boundary — the paper's experiment.
//
// The overhead difference between the two, divided by pipeline length, is
// the per-remote-invocation cost plotted in Figure 2.
package netbricks

import (
	"errors"
	"fmt"

	"repro/internal/linear"
	"repro/internal/packet"
	"repro/internal/sfi"
	"repro/internal/telemetry/trace"
)

// BurstPort is the driver contract the runners consume: a multi-queue
// packet port polled and fed in bursts, DPDK PMD style. Two
// implementations exist — dpdk.Port (synthetic in-process traffic, the
// paper's measured code path) and netport.Port (a real UDP socket, so
// the bytes crossing the protection-domain boundary arrived from outside
// the process). The runners are written against this interface only;
// swapping the wire for the simulator changes no pipeline code.
//
// Semantics every implementation must provide:
//
//   - RxBurstQueue fills out with up to len(out) packets from queue q and
//     returns the count. A short (even zero) return is not end-of-stream;
//     callers poll again, exactly like a PMD. Flow affinity holds: every
//     packet of one flow surfaces on the same queue.
//   - TxBurstQueue transmits pkts from the worker owning queue q and
//     recycles their buffers; FreeQueue recycles without transmitting
//     (drops). Both tolerate nil entries.
//   - Queues reports the receive-queue count; each queue is safe to poll
//     concurrently with other queues.
//   - Drain consolidates undelivered descriptors and queue caches back
//     into the buffer pool once the workers have stopped, so pool-leak
//     accounting balances at end of run.
type BurstPort interface {
	Queues() int
	RxBurstQueue(q int, out []*packet.Packet) int
	TxBurstQueue(q int, pkts []*packet.Packet) int
	FreeQueue(q int, pkts []*packet.Packet)
	Drain()
}

// Batch is the unit of work: a burst of packets fetched from a port.
// Exactly one stage owns a batch at a time; the drivers enforce this by
// moving linear.Owned[*Batch] handles between stages.
type Batch struct {
	Pkts    []*packet.Packet
	Dropped []*packet.Packet // packets removed by filters, freed by the runner

	// traced is the subset of Pkts carrying an armed trace span,
	// collected once at batch build (scanTraced) so stage stamping never
	// rescans the batch. Empty on all but ~1/N batches.
	traced []*packet.Packet
}

// Len reports the number of live packets in the batch.
func (b *Batch) Len() int { return len(b.Pkts) }

// reset empties the batch for reuse, keeping the slice capacity. Packet
// pointers left in the capacity tail are pool-owned and permanently live,
// so truncation is enough.
func (b *Batch) reset() {
	b.Pkts = b.Pkts[:0]
	b.Dropped = b.Dropped[:0]
	b.traced = b.traced[:0]
}

// Drop removes the packet at index i (order not preserved) and records it
// for the runner to free.
func (b *Batch) Drop(i int) {
	b.Dropped = append(b.Dropped, b.Pkts[i])
	last := len(b.Pkts) - 1
	b.Pkts[i] = b.Pkts[last]
	b.Pkts[last] = nil
	b.Pkts = b.Pkts[:last]
}

// batchCarrier reuses one *Batch object and its linear cell across a
// synchronous run-to-completion loop, so the steady-state per-batch cost
// is a slice copy into retained capacity plus a generation bump (Renew)
// instead of two heap allocations. Fault paths call lost() — the batch
// may be trapped inside a failed stage domain, so the next load starts
// fresh and the old storage falls to the GC.
type batchCarrier struct {
	b    *Batch
	cell linear.Owned[*Batch]
	ok   bool // cell is a consumed handle Renew can revive
}

// load fills the carrier's batch from pkts and wraps it in a live handle.
func (bc *batchCarrier) load(pkts []*packet.Packet, traced bool) linear.Owned[*Batch] {
	if bc.b == nil {
		bc.b = &Batch{}
	}
	bc.b.Pkts = append(bc.b.Pkts[:0], pkts...)
	bc.b.Dropped = bc.b.Dropped[:0]
	bc.b.traced = bc.b.traced[:0]
	if traced {
		bc.b.scanTraced()
	}
	if bc.ok {
		bc.ok = false
		if o, err := bc.cell.Renew(bc.b); err == nil {
			return o
		}
	}
	return linear.New(bc.b)
}

// recycle stores a consumed handle and its (now transmitted) batch for
// the next load.
func (bc *batchCarrier) recycle(cell linear.Owned[*Batch], b *Batch) {
	b.reset()
	bc.b = b
	bc.cell = cell
	bc.ok = true
}

// lost abandons the current storage after a fault.
func (bc *batchCarrier) lost() {
	bc.b = nil
	bc.ok = false
}

// Operator is one pipeline stage. ProcessBatch mutates the batch in place
// and must not retain references to it after returning — ownership moves
// on to the next stage (the drivers enforce this for the isolated case and
// the direct case alike via the linear layer).
type Operator interface {
	// Name identifies the stage in errors and stats.
	Name() string
	// ProcessBatch processes every packet in the batch.
	ProcessBatch(b *Batch) error
}

// NullFilter forwards batches without touching them — the Figure 2
// measurement operator ("null-filters, which forward batches of packets
// without doing any work on them").
type NullFilter struct{}

// Name implements Operator.
func (NullFilter) Name() string { return "null-filter" }

// ProcessBatch implements Operator: it does no work.
func (NullFilter) ProcessBatch(*Batch) error { return nil }

// Parse parses every packet, dropping ones that fail.
type Parse struct{}

// Name implements Operator.
func (Parse) Name() string { return "parse" }

// ProcessBatch implements Operator.
func (Parse) ProcessBatch(b *Batch) error {
	for i := 0; i < len(b.Pkts); {
		if err := b.Pkts[i].Parse(); err != nil {
			b.Drop(i)
			continue
		}
		i++
	}
	return nil
}

// Filter drops packets failing a predicate.
type Filter struct {
	Label string
	Pred  func(*packet.Packet) bool
}

// Name implements Operator.
func (f Filter) Name() string {
	if f.Label != "" {
		return f.Label
	}
	return "filter"
}

// ProcessBatch implements Operator.
func (f Filter) ProcessBatch(b *Batch) error {
	for i := 0; i < len(b.Pkts); {
		if !f.Pred(b.Pkts[i]) {
			b.Drop(i)
			continue
		}
		i++
	}
	return nil
}

// Transform applies fn to every packet.
type Transform struct {
	Label string
	Fn    func(*packet.Packet) error
}

// Name implements Operator.
func (t Transform) Name() string {
	if t.Label != "" {
		return t.Label
	}
	return "transform"
}

// ProcessBatch implements Operator.
func (t Transform) ProcessBatch(b *Batch) error {
	for _, p := range b.Pkts {
		if err := t.Fn(p); err != nil {
			return err
		}
	}
	return nil
}

// FaultInjector panics on the Nth batch it sees — the §3 recovery
// experiment "simulating a panic in the null-filter".
type FaultInjector struct {
	PanicOn int // 1-based batch index to panic on; 0 = never
	seen    int
}

// Name implements Operator.
func (f *FaultInjector) Name() string { return "fault-injector" }

// ProcessBatch implements Operator.
func (f *FaultInjector) ProcessBatch(*Batch) error {
	f.seen++
	if f.PanicOn != 0 && f.seen == f.PanicOn {
		panic(fmt.Sprintf("injected fault on batch %d", f.seen))
	}
	return nil
}

// Pipeline is the baseline NetBricks driver: stages invoked by direct
// function calls, batch handed off by moving the linear handle.
type Pipeline struct {
	stages []Operator

	// tracer, when set via SetTracer, stamps sampled trace spans after
	// each recognized stage; stageIDs caches the Name()→Stage mapping.
	tracer   *trace.Tracer
	stageIDs []trace.Stage
}

// SetTracer attaches the sampled packet tracer: after each stage whose
// name maps to a trace stage, the armed spans in the batch are stamped.
// Call before traffic; a nil tracer detaches.
func (p *Pipeline) SetTracer(t *trace.Tracer) {
	p.tracer = t
	p.stageIDs = stageIDsFor(p.stages)
}

// NewPipeline builds a direct-call pipeline.
func NewPipeline(stages ...Operator) *Pipeline {
	return &Pipeline{stages: stages}
}

// Len reports the number of stages.
func (p *Pipeline) Len() int { return len(p.stages) }

// Process runs the batch through every stage. Ownership of the batch moves
// into Process and back out through the return value.
func (p *Pipeline) Process(b linear.Owned[*Batch]) (linear.Owned[*Batch], error) {
	for i, st := range p.stages {
		// Hand-off between stages is a move: the previous holder's handle
		// dies, exactly as NetBricks' linear types guarantee that "only
		// one pipeline stage can access the batch at any time".
		next, err := b.Move()
		if err != nil {
			return b, fmt.Errorf("pipeline stage %s: %w", st.Name(), err)
		}
		b = next
		var perr error
		if err := b.With(func(batch *Batch) {
			perr = st.ProcessBatch(batch)
			if perr == nil && p.tracer != nil {
				stampTraced(p.tracer, batch, p.stageIDs[i])
			}
		}); err != nil {
			return b, fmt.Errorf("pipeline stage %s: %w", st.Name(), err)
		}
		if perr != nil {
			return b, fmt.Errorf("pipeline stage %s: %w", st.Name(), perr)
		}
	}
	return b, nil
}

// IsolatedStage is one pipeline stage wrapped in its own protection
// domain.
type IsolatedStage struct {
	Domain *sfi.Domain
	RRef   *sfi.RRef[Operator]
}

// IsolatedPipeline runs every stage in a separate protection domain,
// replacing function calls with remote invocations (§3: "we use our SFI
// library to isolate every pipeline component in a separate protection
// domain").
type IsolatedPipeline struct {
	mgr    *sfi.Manager
	stages []*IsolatedStage

	// tracer/stageIDs mirror Pipeline's: stamps happen inside the stage
	// domain, right after a successful ProcessBatch, while the batch is
	// borrowed across the protection boundary.
	tracer   *trace.Tracer
	stageIDs []trace.Stage
	names    []string
}

// ErrStageFailed wraps a stage fault with its index.
var ErrStageFailed = errors.New("netbricks: stage failed")

// NewIsolatedPipeline exports each operator into a fresh domain under mgr.
// Each domain's recovery function re-exports a fresh operator produced by
// the corresponding factory (falling back to reusing the operator when no
// factory is given).
func NewIsolatedPipeline(mgr *sfi.Manager, stages []Operator, factories []func() Operator) (*IsolatedPipeline, error) {
	ip := &IsolatedPipeline{mgr: mgr}
	for i, op := range stages {
		d := mgr.NewDomain(fmt.Sprintf("stage-%d-%s", i, op.Name()))
		rref, err := sfi.Export[Operator](d, op)
		if err != nil {
			return nil, fmt.Errorf("export stage %d: %w", i, err)
		}
		slot := rref.Slot()
		var factory func() Operator
		if factories != nil && i < len(factories) && factories[i] != nil {
			factory = factories[i]
		} else {
			opCopy := op
			factory = func() Operator { return opCopy }
		}
		d.SetRecovery(func(d *sfi.Domain) error {
			return sfi.ExportAt[Operator](d, slot, factory())
		})
		ip.stages = append(ip.stages, &IsolatedStage{Domain: d, RRef: rref})
		ip.names = append(ip.names, op.Name())
	}
	return ip, nil
}

// SetTracer attaches the sampled packet tracer (see Pipeline.SetTracer).
func (p *IsolatedPipeline) SetTracer(t *trace.Tracer) {
	p.tracer = t
	p.stageIDs = make([]trace.Stage, len(p.names))
	for i, name := range p.names {
		id, ok := trace.StageForName(name)
		if !ok {
			id = trace.NumStages
		}
		p.stageIDs[i] = id
	}
}

// Len reports the number of stages.
func (p *IsolatedPipeline) Len() int { return len(p.stages) }

// Stages exposes the isolated stages (for fault-injection tests and the
// recovery benchmark).
func (p *IsolatedPipeline) Stages() []*IsolatedStage { return p.stages }

// Process runs the batch through every stage via remote invocation. The
// batch crosses each protection boundary by move — zero copies — and
// comes back the same way. If a stage panics, the batch is lost with the
// failed domain and an error wrapping ErrStageFailed and
// sfi.ErrDomainFailed is returned.
func (p *IsolatedPipeline) Process(ctx *sfi.Context, b linear.Owned[*Batch]) (linear.Owned[*Batch], error) {
	for i, st := range p.stages {
		out, err := sfi.CallMove(ctx, st.RRef, "process", b,
			func(op Operator, batch linear.Owned[*Batch]) (linear.Owned[*Batch], error) {
				var perr error
				if err := batch.With(func(bb *Batch) {
					perr = op.ProcessBatch(bb)
					if perr == nil && p.tracer != nil {
						stampTraced(p.tracer, bb, p.stageIDs[i])
					}
				}); err != nil {
					return batch, err
				}
				return batch, perr
			})
		if err != nil {
			return linear.Owned[*Batch]{}, fmt.Errorf("stage %d (%s): %w: %w",
				i, st.Domain.Name(), ErrStageFailed, err)
		}
		b = out
	}
	return b, nil
}

// Recover recovers every failed stage domain.
func (p *IsolatedPipeline) Recover() error {
	for _, st := range p.stages {
		if st.Domain.Failed() {
			if err := p.mgr.Recover(st.Domain); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunStats summarizes a runner session.
type RunStats struct {
	Batches   int
	Packets   uint64
	Drops     uint64
	Faults    int
	Recovered int
}

// Merge adds o's counters into s. This is the shared aggregation helper
// behind every multi-worker stats view (ShardedRunner.Snapshot and Run,
// Runner.RunParallel), the RunStats counterpart of
// domain.MergeSnapshots: each input is a point-in-time copy of monotonic
// per-worker counters, so the merged total is safe to take during a live
// run but not atomic across workers or fields.
func (s *RunStats) Merge(o RunStats) {
	s.Batches += o.Batches
	s.Packets += o.Packets
	s.Drops += o.Drops
	s.Faults += o.Faults
	s.Recovered += o.Recovered
}

// Runner drives a port through a pipeline run-to-completion: fetch a
// batch, process it fully, transmit, repeat — the paper's execution model
// ("processes the batch to completion before starting the next batch").
type Runner struct {
	Port      BurstPort // single-queue use: the runner polls queue 0
	BatchSize int
	// Direct and Isolated are alternatives; exactly one must be set.
	Direct   *Pipeline
	Isolated *IsolatedPipeline
	// AutoRecover makes the runner recover failed stages and continue.
	AutoRecover bool
	// Tracer, when non-nil, is attached to the pipeline at Run: sampled
	// spans armed by the port are stamped at every recognized stage.
	Tracer *trace.Tracer
}

// RunParallel drives the pipeline from workers goroutines, each with its
// own port (traffic source) and its own sfi.Context — the explicit
// per-worker stand-in for the paper's thread-local current-domain store.
// Domains are shared across workers; their counters are atomic. Each
// worker processes n batches; aggregated stats and the first error are
// returned.
func (r *Runner) RunParallel(workers, n int, mkPort func(worker int) BurstPort) (RunStats, error) {
	if workers <= 0 {
		return RunStats{}, errors.New("netbricks: workers must be positive")
	}
	type result struct {
		stats RunStats
		err   error
	}
	results := make(chan result, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			worker := *r // copy the config; swap in the worker's port
			worker.Port = mkPort(w)
			stats, err := worker.Run(sfi.NewContext(), n)
			results <- result{stats: stats, err: err}
		}(w)
	}
	var agg RunStats
	var firstErr error
	for w := 0; w < workers; w++ {
		res := <-results
		agg.Merge(res.stats)
		if res.err != nil && firstErr == nil {
			firstErr = res.err
		}
	}
	return agg, firstErr
}

// Run processes n batches and reports stats. Packets dropped by filters
// and batches lost to faults are freed back to the port pool.
func (r *Runner) Run(ctx *sfi.Context, n int) (RunStats, error) {
	if (r.Direct == nil) == (r.Isolated == nil) {
		return RunStats{}, errors.New("netbricks: set exactly one of Direct or Isolated")
	}
	if r.BatchSize <= 0 {
		return RunStats{}, errors.New("netbricks: BatchSize must be positive")
	}
	if r.Tracer != nil {
		if r.Direct != nil {
			r.Direct.SetTracer(r.Tracer)
		} else {
			r.Isolated.SetTracer(r.Tracer)
		}
	}
	var stats RunStats
	var car batchCarrier
	buf := make([]*packet.Packet, r.BatchSize)
	for i := 0; i < n; i++ {
		got := r.Port.RxBurstQueue(0, buf)
		if got == 0 {
			break
		}
		owned := car.load(buf[:got], r.Tracer != nil)
		var err error
		if r.Direct != nil {
			owned, err = r.Direct.Process(owned)
		} else {
			owned, err = r.Isolated.Process(ctx, owned)
		}
		if err != nil {
			stats.Faults++
			// The batch went down with the domain; its buffers are
			// unreachable through the linear layer, but the simulation
			// must return them to the pool (real DPDK would leak them
			// until pool destruction; the manager reclaims domain memory
			// by clearing the reference table, which the GC then frees).
			r.Port.FreeQueue(0, buf[:got])
			car.lost()
			if r.AutoRecover && r.Isolated != nil {
				if rerr := r.Isolated.Recover(); rerr != nil {
					return stats, rerr
				}
				stats.Recovered++
				continue
			}
			return stats, err
		}
		final, err := owned.Into()
		if err != nil {
			return stats, err
		}
		stats.Batches++
		stats.Packets += uint64(len(final.Pkts))
		stats.Drops += uint64(len(final.Dropped))
		r.Port.TxBurstQueue(0, final.Pkts)
		r.Port.FreeQueue(0, final.Dropped)
		car.recycle(owned, final)
	}
	return stats, nil
}
