// Chaos test for the supervised sharded runtime: the full parse →
// firewall → maglev pipeline, per-worker protection domains, and a
// seeded fault injector panicking (and occasionally stalling) the hot
// path thousands of times. External test package so it can use the real
// NF operators, which import netbricks.
//
// The test runs the same chaos body over both port implementations: the
// simulated NIC (dpdk) at a brutal 30% panic rate, and the socket-backed
// port (netport) fed real loopback datagrams with the injector crashing
// the pipeline at 2% — proving worker restarts strand neither rx-ring
// slots nor socket-side buffers.
package netbricks_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/domain"
	"repro/internal/domain/faultinject"
	"repro/internal/dpdk"
	"repro/internal/firewall"
	"repro/internal/leakcheck"
	"repro/internal/maglev"
	"repro/internal/netbricks"
	"repro/internal/netport"
	"repro/internal/packet"
	"repro/internal/sfi"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// chaosStage is the injection site and the retired-instance witness: a
// recovery re-exports a *fresh* instance into the stage's reference-table
// slot, so if a remote invocation ever reaches an instance whose
// replacement already exists, an rref served a cleared slot — the exact
// §3 violation the runtime must make impossible.
type chaosStage struct {
	inj        *faultinject.Injector
	retired    atomic.Bool
	violations *atomic.Uint64
}

func (c *chaosStage) Name() string { return "chaos" }

func (c *chaosStage) ProcessBatch(*netbricks.Batch) error {
	if c.retired.Load() {
		c.violations.Add(1)
	}
	c.inj.Point("chaos")
	return nil
}

// chaosPipeline builds the per-worker isolated pipeline factory plus the
// shared violation counter.
func chaosPipeline(t *testing.T, inj *faultinject.Injector, violations *atomic.Uint64) func(w int) (*netbricks.IsolatedPipeline, error) {
	t.Helper()
	db := firewall.NewDB(firewall.Deny)
	if _, err := db.AddRule(packet.Addr(10, 99, 0, 0), 16, firewall.Rule{ID: 1, Action: firewall.Allow}); err != nil {
		t.Fatal(err)
	}
	backends := []maglev.Backend{
		{Name: "be-0", IP: packet.Addr(10, 1, 0, 1)},
		{Name: "be-1", IP: packet.Addr(10, 1, 0, 2)},
	}
	return func(w int) (*netbricks.IsolatedPipeline, error) {
		lb, err := maglev.NewBalancer(backends, maglev.DefaultTableSize)
		if err != nil {
			return nil, err
		}
		cur := &chaosStage{inj: inj, violations: violations}
		stages := []netbricks.Operator{
			netbricks.Parse{},
			firewall.Operator{DB: db},
			cur,
			maglev.Operator{LB: lb},
		}
		factories := []func() netbricks.Operator{
			nil, nil,
			func() netbricks.Operator {
				// Recovery: retire the crashed instance, export a fresh
				// one. Any later call landing on the old instance is a
				// cleared-slot access and trips the witness.
				cur.retired.Store(true)
				cur = &chaosStage{inj: inj, violations: violations}
				return cur
			},
			nil,
		}
		return netbricks.NewIsolatedPipeline(sfi.NewManager(), stages, factories)
	}
}

// chaosRun drives the supervised 4-worker chaos pipeline over the given
// port and asserts the invariants common to every port implementation:
// faults were absorbed, zero retired-instance accesses, workers
// recovered, and an aftermath run with faults off forwards cleanly.
// calmBatches is the expected aftermath batch count per worker (0 skips
// the exact-count assertion for ports whose traffic is externally
// paced).
func chaosRun(t *testing.T, port netbricks.BurstPort, workers, batchSize, perWorker int,
	inj *faultinject.Injector, tracer *trace.Tracer, minFaults int, calmBatches int) {
	t.Helper()
	var violations atomic.Uint64
	r := &netbricks.ShardedRunner{
		Port: port, Workers: workers, BatchSize: batchSize,
		NewIsolated:  chaosPipeline(t, inj, &violations),
		Supervise:    true,
		Tracer:       tracer,
		MailboxDepth: 2, // keeps the inbox under pressure through restarts
		Policy: domain.Policy{
			Backoff:     20 * time.Microsecond,
			MaxBackoff:  time.Millisecond,
			MaxRestarts: -1,
			HangAfter:   2 * time.Millisecond,
			Tick:        time.Millisecond,
		},
	}
	stats, err := r.Run(perWorker)
	if err != nil {
		t.Fatal(err)
	}
	sn, ok := r.SupervisorSnapshot()
	if !ok {
		t.Fatal("no supervisor snapshot after supervised run")
	}
	faults := sn.Errors + sn.Crashes + sn.Hangs
	t.Logf("chaos: batches=%d packets=%d faults=%d (errors=%d crashes=%d hangs=%d) restarts=%d injected panics=%d stalls=%d",
		stats.Batches, stats.Packets, faults, sn.Errors, sn.Crashes, sn.Hangs,
		sn.Restarts, inj.Stats.Panics.Load(), inj.Stats.Stalls.Load())

	if faults < uint64(minFaults) {
		t.Fatalf("chaos run produced %d faults, want >= %d", faults, minFaults)
	}
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d invocations reached retired operator instances (cleared-slot rref access)", v)
	}
	if stats.Batches == 0 {
		t.Fatal("pipeline forwarded nothing through the chaos run")
	}
	if stats.Recovered == 0 {
		t.Fatal("no worker recoveries recorded")
	}
	if sn.Restarts == 0 {
		t.Fatal("supervisor restarted no workers")
	}

	// Aftermath: faults off, same runner — the pipeline must forward
	// cleanly, proving the chaos run left no corrupted state behind.
	inj.PanicProb, inj.StallProb = 0, 0
	calm, err := r.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if calmBatches > 0 && calm.Batches != workers*calmBatches {
		t.Fatalf("post-chaos run: %d batches, want %d", calm.Batches, workers*calmBatches)
	}
	if calm.Batches == 0 {
		t.Fatal("post-chaos run forwarded nothing")
	}
	if calm.Faults != 0 {
		t.Fatalf("post-chaos run faulted %d times", calm.Faults)
	}
	// Pool-leak accounting is settled by leakcheck at cleanup.
}

// TestChaosSupervisedPipeline is the acceptance chaos run, once per port
// implementation.
//
// dpdk: >= 5000 injected faults at 30% panic probability across a
// supervised 4-worker firewall+maglev pipeline, zero pool leaks
// (leakcheck), zero accesses to retired (cleared-slot) operator
// instances, and the pipeline still forwarding afterwards.
//
// netport: the same supervised pipeline fed by a continuous pktgen over
// the kernel's UDP loopback, with the injector crashing the pipeline at
// 2%. Restarted workers must strand neither rx-ring slots nor
// socket-side mbufs: after Close, the port pool balances exactly.
func TestChaosSupervisedPipeline(t *testing.T) {
	const (
		workers   = 4
		batchSize = 8
	)
	t.Run("dpdk", func(t *testing.T) {
		const perWorker = 5000
		ring := 4 * batchSize
		if ring < 128 {
			ring = 128
		}
		port := dpdk.NewPort(dpdk.Config{
			PoolSize:   workers*(ring+batchSize+batchSize) + 256,
			RxQueues:   workers,
			RxRingSize: ring,
			CacheSize:  batchSize,
			Gen:        dpdk.NewZipfFlows(dpdk.DefaultSpec(), 1024, 1.3, 42),
		})
		leakcheck.Pool(t, "chaos port", port.PoolAvailable)

		inj := faultinject.New(1)
		inj.PanicProb = 0.30
		inj.StallProb = 0.001
		inj.StallFor = 3 * time.Millisecond

		chaosRun(t, port, workers, batchSize, perWorker, inj, nil, 5000, 100)

		if inj.Stats.Panics.Load() == 0 || inj.Stats.Stalls.Load() == 0 {
			t.Fatalf("injector coverage: panics=%d stalls=%d, want both > 0",
				inj.Stats.Panics.Load(), inj.Stats.Stalls.Load())
		}
	})

	t.Run("netport", func(t *testing.T) {
		if testing.Short() {
			t.Skip("loopback chaos tier skipped in -short")
		}
		const perWorker = 400

		// Trace the chaos: sampled spans armed at ingress must be
		// conservation-accounted no matter how the packet dies — TX
		// completes, and every shed/fault/drain path aborts. The assert is
		// registered FIRST so the LIFO cleanup stack runs it LAST, after
		// port.Close has drained (and aborted) any spans still in flight.
		rec := telemetry.NewRecorder(1024)
		tracer := trace.New(trace.Config{SampleEvery: 4, Ring: 64, Recorder: rec})
		t.Cleanup(func() {
			armed, completed, aborted := tracer.Counts()
			t.Logf("trace conservation: armed=%d completed=%d aborted=%d", armed, completed, aborted)
			if armed != completed+aborted {
				t.Errorf("trace span leak: armed %d != completed %d + aborted %d",
					armed, completed, aborted)
			}
			if armed == 0 {
				t.Error("chaos run armed no traces (sampler never fired)")
			}
			if aborted == 0 {
				t.Error("chaos run aborted no traces: domain crashes must truncate in-flight spans")
			}
			abortEvents := 0
			for _, ev := range rec.Dump() {
				if ev.Kind == telemetry.EvTraceAbort {
					abortEvents++
				}
			}
			if abortEvents == 0 {
				t.Error("no EvTraceAbort events in the flight recorder")
			}
		})

		port, err := netport.Open(netport.Config{
			Listen:    "127.0.0.1:0",
			Queues:    workers,
			RingSize:  256,
			BatchSize: batchSize,
			ReusePort: true, // kernel fan-out under chaos; distributor fallback off Linux
			PollWait:  20 * time.Millisecond,
			Tracer:    tracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		leakcheck.Pool(t, "chaos netport", port.PoolAvailable)
		t.Cleanup(func() { port.Close() }) // LIFO: Close settles the pool before leakcheck reads it

		// Continuous paced loopback sender; stopped after the aftermath
		// run so both phases have live traffic.
		stop := make(chan struct{})
		genDone := make(chan error, 1)
		t.Cleanup(func() {
			close(stop)
			if err := <-genDone; err != nil {
				t.Error(err)
			}
		})
		gen := &netport.Pktgen{
			Target:  port.Addr().String(),
			Base:    dpdk.DefaultSpec(),
			Flows:   64,
			Sockets: 64, // source-port entropy so the REUSEPORT group fans out
			PPS:     50000,
		}
		go func() {
			_, err := gen.Run(stop)
			genDone <- err
		}()

		inj := faultinject.New(7)
		inj.PanicProb = 0.02 // the satellite's 2% crash rate
		inj.StallProb = 0.001
		inj.StallFor = 3 * time.Millisecond

		// Externally paced traffic: workers give up after an idle grace,
		// so the aftermath batch count is >0 but not exact.
		chaosRun(t, port, workers, batchSize, perWorker, inj, tracer, 10, 0)

		// Restarts must not have stranded buffers: with the sender still
		// live the pool cannot be asserted yet (datagrams are in flight),
		// but leakcheck runs after Close, which settles rings and caches.
	})
}
