// Supervised sharded execution: each worker runs as a protection domain
// under a domain.Supervisor instead of a bare goroutine.
//
// The plain ShardedRunner treats a worker fault as the end of the run
// (or, with AutoRecover, retries inline). Supervised mode upgrades each
// worker to a long-lived service: a feeder goroutine pumps batches from
// the worker's receive queue into the worker domain's mailbox (a
// blocking send, so a worker sitting in restart backoff exerts
// backpressure on its queue instead of losing batches), and the
// supervisor absorbs worker faults — operator panics, pipeline errors,
// handler stalls — restarting workers under the configured policy while
// the other workers keep forwarding.
//
// Buffer conservation holds across every fault path: the handler
// snapshots the batch's packet slice before ownership moves into the
// pipeline, so whichever way an invocation dies — error return, panic
// unwinding mid-pipeline, payload reclaimed at the domain entry point,
// mailbox drop — the packets go back to the worker's queue cache.
package netbricks

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/domain"
	"repro/internal/linear"
	"repro/internal/packet"
)

// batchRecycler is one worker's free-list of batch-carrier storage: the
// *Batch object with its packet slices, the linear cell that carried it
// (revived with Renew, so stale handles still fail the generation
// check), and the handler's conservation-snapshot scratch. The feeder
// goroutine and the domain's serving goroutine exchange entries through
// it, making steady-state forwarding allocation-free per batch. Fault
// paths simply don't recycle — the next batch pays one fresh allocation.
// The mutex also serializes access across handler generations: a hung
// generation the supervisor abandoned may still be running while its
// successor serves.
type batchRecycler struct {
	mu    sync.Mutex
	cells []recycledCell
	snaps [][]*packet.Packet
}

type recycledCell struct {
	cell  linear.Owned[*Batch]
	batch *Batch
}

func newBatchRecycler(depth int) *batchRecycler {
	return &batchRecycler{
		cells: make([]recycledCell, 0, depth),
		snaps: make([][]*packet.Packet, 0, depth),
	}
}

func (rc *batchRecycler) put(cell linear.Owned[*Batch], b *Batch) {
	b.reset()
	rc.mu.Lock()
	if len(rc.cells) < cap(rc.cells) {
		rc.cells = append(rc.cells, recycledCell{cell: cell, batch: b})
	}
	rc.mu.Unlock()
}

func (rc *batchRecycler) get() (linear.Owned[*Batch], *Batch, bool) {
	rc.mu.Lock()
	n := len(rc.cells)
	if n == 0 {
		rc.mu.Unlock()
		return linear.Owned[*Batch]{}, nil, false
	}
	e := rc.cells[n-1]
	rc.cells[n-1] = recycledCell{}
	rc.cells = rc.cells[:n-1]
	rc.mu.Unlock()
	return e.cell, e.batch, true
}

func (rc *batchRecycler) getSnap() []*packet.Packet {
	rc.mu.Lock()
	n := len(rc.snaps)
	if n == 0 {
		rc.mu.Unlock()
		return nil
	}
	s := rc.snaps[n-1]
	rc.snaps[n-1] = nil
	rc.snaps = rc.snaps[:n-1]
	rc.mu.Unlock()
	return s
}

func (rc *batchRecycler) putSnap(s []*packet.Packet) {
	if cap(s) == 0 {
		return
	}
	rc.mu.Lock()
	if len(rc.snaps) < cap(rc.snaps) {
		rc.snaps = append(rc.snaps, s[:0])
	}
	rc.mu.Unlock()
}

// runSupervised is Run's supervised-mode body: spawn one supervised
// domain plus one feeder per worker, wait for the feeders to exhaust
// their batch budget and the domains to drain, then settle the pool.
func (r *ShardedRunner) runSupervised(n int) (RunStats, error) {
	pol := r.Policy
	if pol.Registry == nil {
		pol.Registry = r.Registry
	}
	sup := domain.NewSupervisor(pol)
	defer sup.Close()
	r.sup.Store(sup)

	depth := r.MailboxDepth
	if depth <= 0 {
		depth = 4
	}
	doms := make([]*domain.Domain[*Batch], r.Workers)
	recs := make([]*batchRecycler, r.Workers)
	for w := 0; w < r.Workers; w++ {
		recs[w] = newBatchRecycler(depth + 2)
		d, err := r.spawnWorker(sup, w, recs[w])
		if err != nil {
			return RunStats{}, err
		}
		doms[w] = d
	}
	var wg sync.WaitGroup
	for w := range doms {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.feedWorker(doms[w], w, n, recs[w])
		}(w)
	}
	wg.Wait()
	for _, d := range doms {
		<-d.Done()
	}
	sup.Close()
	r.Port.Drain()
	return r.Snapshot(), nil
}

// spawnWorker builds worker w's pipeline and spawns its supervised
// domain. The handler mirrors runWorker's per-batch body; recovery
// mirrors its AutoRecover path (rebuild the direct pipeline, or recover
// the isolated pipeline's failed stage domains).
func (r *ShardedRunner) spawnWorker(sup *domain.Supervisor, w int, rec *batchRecycler) (*domain.Domain[*Batch], error) {
	ws := r.stats[w]
	newDirect := func() *Pipeline {
		p := r.NewDirect(w)
		if r.Tracer != nil {
			p.SetTracer(r.Tracer)
		}
		return p
	}
	var direct atomic.Pointer[Pipeline]
	var isolated *IsolatedPipeline
	if r.NewDirect != nil {
		direct.Store(newDirect())
	} else {
		ip, err := r.NewIsolated(w)
		if err != nil {
			return nil, err
		}
		if r.Tracer != nil {
			ip.SetTracer(r.Tracer)
		}
		isolated = ip
	}

	free := func(pkts []*packet.Packet) { r.Port.FreeQueue(w, pkts) }

	handler := func(c *domain.Ctx, msg linear.Owned[*Batch]) error {
		// Snapshot the packet slice while we still own the batch: once
		// ownership moves into the pipeline, this copy is the only route
		// the packets have back to the pool if the invocation faults.
		// The scratch slice comes from (and returns to) the worker's
		// recycler, so the steady state copies into retained capacity.
		pkts := rec.getSnap()
		defer func() { rec.putSnap(pkts) }()
		if err := msg.With(func(b *Batch) {
			pkts = append(pkts[:0], b.Pkts...)
		}); err != nil {
			return err
		}
		defer func() {
			// A panic unwinding mid-pipeline (direct mode; isolated mode
			// converts stage panics to errors at the sfi boundary) took
			// the batch down with it: free the snapshot on the way to the
			// domain guard. If the payload is still owned the entry-point
			// reclaim handles it instead — never both.
			if p := recover(); p != nil {
				ws.Faults.Add(1)
				if !msg.Valid() {
					free(pkts)
				}
				panic(p)
			}
		}()
		var out linear.Owned[*Batch]
		var err error
		start := time.Now()
		if isolated != nil {
			out, err = isolated.Process(c.SFI, msg)
		} else {
			out, err = direct.Load().Process(msg)
		}
		ws.Latency.ObserveNanos(int64(time.Since(start)))
		if err != nil {
			ws.Faults.Add(1)
			if out.Valid() {
				// The pipeline handed the (faulted) batch back; destroy it
				// and recycle its storage.
				if b, ierr := out.Into(); ierr == nil {
					free(b.Pkts)
					free(b.Dropped)
					rec.put(out, b)
				}
			} else if !msg.Valid() {
				// The batch was lost inside a failed stage domain; the
				// snapshot settles the pool, as in runWorker's fault path.
				free(pkts)
			}
			return err
		}
		final, ferr := out.Into()
		if ferr != nil {
			return ferr
		}
		ws.Batches.Add(1)
		ws.Packets.Add(uint64(len(final.Pkts)))
		ws.Drops.Add(uint64(len(final.Dropped)))
		r.Port.TxBurstQueue(w, final.Pkts)
		r.Port.FreeQueue(w, final.Dropped)
		rec.put(out, final)
		return nil
	}

	recoverFn := func() error {
		if isolated != nil {
			if err := isolated.Recover(); err != nil {
				return err
			}
		} else {
			// A fresh pipeline instance: operator state reinitializes from
			// clean, exactly like a re-exported stage after §3 recovery.
			direct.Store(newDirect())
		}
		ws.Recovered.Add(1)
		return nil
	}

	depth := r.MailboxDepth
	if depth <= 0 {
		depth = 4
	}
	var state domain.Stateful
	if r.NewState != nil {
		state = r.NewState(w)
	}
	d, err := domain.Spawn(sup, domain.Config[*Batch]{
		Name:    fmt.Sprintf("worker-%d", w),
		Mailbox: depth,
		Handler: handler,
		Release: func(b *Batch) {
			// Payloads destroyed by the runtime — mailbox drops, backlog
			// drained at stop, batches reclaimed at the entry point.
			free(b.Pkts)
			free(b.Dropped)
		},
		Recover: recoverFn,
		State:   state,
	})
	if err != nil {
		return nil, err
	}
	if r.Tracer != nil {
		// The mailbox's stage clock stamps the send/recv hops, so each
		// trace shows the queueing delay across the domain boundary.
		d.Inbox().SetStageClock(mailboxStageClock(r.Tracer))
	}
	return d, nil
}

// feedWorker pumps up to n batches from worker w's receive queue into
// its domain's mailbox. Send blocks while the mailbox is full (a worker
// in restart backoff backpressures its queue rather than dropping), and
// fails only when the domain has stopped for good — at which point the
// mailbox has already released the payload.
func (r *ShardedRunner) feedWorker(d *domain.Domain[*Batch], w, n int, rec *batchRecycler) {
	ws := r.stats[w]
	buf := make([]*packet.Packet, r.BatchSize)
	idle := 0
	for i := 0; i < n; {
		got := r.Port.RxBurstQueue(w, buf)
		if got == 0 {
			ws.IdlePolls.Add(1)
			idle++
			if idle >= maxIdlePolls {
				break
			}
			continue
		}
		idle = 0
		i++
		cell, b, recycled := rec.get()
		if !recycled {
			b = &Batch{}
		}
		b.Pkts = append(b.Pkts[:0], buf[:got]...)
		if r.Tracer != nil {
			b.scanTraced()
		}
		var msg linear.Owned[*Batch]
		if recycled {
			m, rerr := cell.Renew(b)
			if rerr != nil {
				m = linear.New(b)
			}
			msg = m
		} else {
			msg = linear.New(b)
		}
		if err := d.Inbox().Send(msg); err != nil {
			break
		}
	}
	d.Inbox().Close()
}

// SupervisorSnapshot returns the domain-level aggregate for the current
// (or most recent) supervised run — crash/hang/restart detail the
// RunStats view folds into Faults/Recovered. ok is false when the runner
// has not run in supervised mode.
func (r *ShardedRunner) SupervisorSnapshot() (domain.Snapshot, bool) {
	sup := r.sup.Load()
	if sup == nil {
		return domain.Snapshot{}, false
	}
	return sup.Snapshot(), true
}

// DomainSnapshots returns per-worker domain snapshots for the current
// (or most recent) supervised run, in worker order.
func (r *ShardedRunner) DomainSnapshots() []domain.Snapshot {
	sup := r.sup.Load()
	if sup == nil {
		return nil
	}
	return sup.Snapshots()
}
