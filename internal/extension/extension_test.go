package extension

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dpdk"
	"repro/internal/netbricks"
	"repro/internal/packet"
	"repro/internal/sfi"
	"repro/internal/verifier"
)

// goodFilter keeps TCP traffic to ports below 1024.
const goodFilter = `
labels public < secret;
fn filter(src: i64, dst: i64, sport: i64, dport: i64, proto: i64) -> bool {
    if proto == 6 {
        return dport < 1024;
    }
    return false;
}
`

// leakyFilter tries to exfiltrate header data to the terminal.
const leakyFilter = `
labels public < secret;
fn filter(src: i64, dst: i64, sport: i64, dport: i64, proto: i64) -> bool {
    println(src, dport);   // exfiltration attempt
    return true;
}
`

// crashyFilter divides by the source port: port 0 crashes it.
const crashyFilter = `
labels public < secret;
fn filter(src: i64, dst: i64, sport: i64, dport: i64, proto: i64) -> bool {
    let ratio = dport / sport;
    return ratio > 0;
}
`

// ownershipBugFilter misuses a vector after moving it.
const ownershipBugFilter = `
labels public < secret;
fn consume(v: Vec<i64>) -> i64 { return 0; }
fn filter(src: i64, dst: i64, sport: i64, dport: i64, proto: i64) -> bool {
    let v = vec![src, dst];
    let a = consume(v);
    let b = consume(v);
    return a == b;
}
`

func tupleFor(dport uint16, proto uint8, sport uint16) packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP: packet.Addr(1, 2, 3, 4), DstIP: packet.Addr(5, 6, 7, 8),
		SrcPort: sport, DstPort: dport, Proto: proto,
	}
}

func TestLoadAndFilter(t *testing.T) {
	ext, rep, err := Load("web-only", goodFilter)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("report: %s", rep)
	}
	cases := []struct {
		t    packet.FiveTuple
		keep bool
	}{
		{tupleFor(80, packet.ProtoTCP, 40000), true},
		{tupleFor(443, packet.ProtoTCP, 40000), true},
		{tupleFor(8080, packet.ProtoTCP, 40000), false},
		{tupleFor(80, packet.ProtoUDP, 40000), false},
	}
	for _, c := range cases {
		keep, err := ext.Filter(c.t)
		if err != nil {
			t.Fatalf("filter(%v): %v", c.t, err)
		}
		if keep != c.keep {
			t.Fatalf("filter(%v) = %v, want %v", c.t, keep, c.keep)
		}
	}
	if ext.Evaluated != 4 || ext.Kept != 2 {
		t.Fatalf("stats = %d/%d", ext.Evaluated, ext.Kept)
	}
}

func TestLeakyExtensionRejectedAtLoad(t *testing.T) {
	_, rep, err := Load("exfil", leakyFilter)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	if rep == nil || rep.Stage != verifier.StageIFC {
		t.Fatalf("report = %v", rep)
	}
	if len(rep.Violations) == 0 || rep.Violations[0].Label != "secret" {
		t.Fatalf("violations = %v", rep.Violations)
	}
}

func TestOwnershipBugRejectedAtLoad(t *testing.T) {
	_, rep, err := Load("double-use", ownershipBugFilter)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
	if rep.Stage != verifier.StageBorrowCheck {
		t.Fatalf("stage = %s", rep.Stage)
	}
}

func TestStructuralChecks(t *testing.T) {
	if _, _, err := Load("x", `fn not_filter() { }`); !errors.Is(err, ErrNoFilter) {
		t.Fatalf("no filter: %v", err)
	}
	if _, _, err := Load("x", `fn filter(a: i64) -> bool { return true; }`); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("bad arity: %v", err)
	}
	if _, _, err := Load("x", `fn filter(a: i64, b: i64, c: i64, d: i64, e: bool) -> bool { return true; }`); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("bad param type: %v", err)
	}
	if _, _, err := Load("x", `fn filter(a: i64, b: i64, c: i64, d: i64, e: i64) -> i64 { return 0; }`); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("bad return: %v", err)
	}
	if _, _, err := Load("x", `
fn filter(a: i64, b: i64, c: i64, d: i64, e: i64) -> bool { return true; }
fn main() { }
`); !errors.Is(err, ErrHasMain) {
		t.Fatalf("own main: %v", err)
	}
	if _, _, err := Load("x", `fn filter(`); err == nil {
		t.Fatal("parse error swallowed")
	}
}

func TestCrashyExtensionReturnsRuntimeError(t *testing.T) {
	ext, _, err := Load("crashy", crashyFilter)
	if err != nil {
		t.Fatal(err) // statically clean: the crash is value-dependent
	}
	if keep, err := ext.Filter(tupleFor(80, packet.ProtoTCP, 8)); err != nil || !keep {
		t.Fatalf("normal packet: %v %v", keep, err)
	}
	if _, err := ext.Filter(tupleFor(80, packet.ProtoTCP, 0)); err == nil {
		t.Fatal("division by zero not surfaced")
	}
}

func TestOperatorFiltersBatch(t *testing.T) {
	ext, _, err := Load("web-only", goodFilter)
	if err != nil {
		t.Fatal(err)
	}
	spec := dpdk.DefaultSpec()
	spec.Tuple.Proto = packet.ProtoTCP
	spec.Tuple.DstPort = 80
	frameKeep, _ := packet.Build(nil, spec)
	spec.Tuple.DstPort = 9999
	frameDrop, _ := packet.Build(nil, spec)
	b := &netbricks.Batch{Pkts: []*packet.Packet{
		{Data: frameKeep}, {Data: frameDrop}, {Data: []byte{1, 2}},
	}}
	op := Operator{Ext: ext}
	if err := op.ProcessBatch(b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 || len(b.Dropped) != 2 {
		t.Fatalf("kept %d dropped %d", b.Len(), len(b.Dropped))
	}
	if op.Name() != "ext:web-only" {
		t.Fatalf("Name = %q", op.Name())
	}
}

func TestCrashContainedByDomainAndRecovered(t *testing.T) {
	// The §6 story end to end: the verified-but-crashy extension faults
	// on a poisoned packet; the protection domain contains it and
	// recovery reloads the extension.
	ext, _, err := Load("crashy", crashyFilter)
	if err != nil {
		t.Fatal(err)
	}
	mgr := sfi.NewManager()
	d := mgr.NewDomain("extension")
	rref, err := sfi.Export[netbricks.Operator](d, Operator{Ext: ext})
	if err != nil {
		t.Fatal(err)
	}
	slot := rref.Slot()
	d.SetRecovery(func(d *sfi.Domain) error {
		fresh, _, err := Load("crashy", crashyFilter)
		if err != nil {
			return err
		}
		return sfi.ExportAt[netbricks.Operator](d, slot, Operator{Ext: fresh})
	})
	ctx := sfi.NewContext()

	mkBatch := func(sport uint16) *netbricks.Batch {
		spec := dpdk.DefaultSpec()
		spec.Tuple.Proto = packet.ProtoTCP
		spec.Tuple.SrcPort = sport
		spec.Tuple.DstPort = 80
		frame, _ := packet.Build(nil, spec)
		return &netbricks.Batch{Pkts: []*packet.Packet{{Data: frame}}}
	}

	// Normal packet: fine.
	if err := rref.Call(ctx, "process", func(op netbricks.Operator) error {
		return op.ProcessBatch(mkBatch(40000))
	}); err != nil {
		t.Fatal(err)
	}
	// Poisoned packet (sport 0): the extension crashes; the domain
	// contains it.
	err = rref.Call(ctx, "process", func(op netbricks.Operator) error {
		return op.ProcessBatch(mkBatch(0))
	})
	if !errors.Is(err, sfi.ErrDomainFailed) {
		t.Fatalf("err = %v, want ErrDomainFailed", err)
	}
	if !strings.Contains(err.Error(), "crashed") {
		t.Fatalf("err = %v, want crash detail", err)
	}
	// Recover and keep filtering.
	if err := mgr.Recover(d); err != nil {
		t.Fatal(err)
	}
	if err := rref.Call(ctx, "process", func(op netbricks.Operator) error {
		return op.ProcessBatch(mkBatch(40000))
	}); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
}

func TestManyInvocationsResetStepBudget(t *testing.T) {
	ext, _, err := Load("web-only", goodFilter)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50_000; i++ {
		if _, err := ext.Filter(tupleFor(80, packet.ProtoTCP, 1)); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

func BenchmarkExtensionFilter(b *testing.B) {
	ext, _, err := Load("web-only", goodFilter)
	if err != nil {
		b.Fatal(err)
	}
	t := tupleFor(80, packet.ProtoTCP, 40000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ext.Filter(t); err != nil {
			b.Fatal(err)
		}
	}
}
