// Package extension realizes the paper's §6 vision of verified kernel
// extensions: untrusted packet-processing programs, written in minirust,
// are statically verified before loading and run inside a protection
// domain afterwards — all three of the paper's pillars composed.
//
//   - Analysis (§4): the extension is pushed through the full verifier
//     with the packet's header fields labeled secret, proving it cannot
//     exfiltrate traffic data through its output channel, and through
//     the borrow checker, proving ownership discipline.
//   - Isolation (§3): the loaded extension is exported into its own
//     sfi.Domain; a runtime fault (assertion failure, division by zero,
//     bounds error — the kernel-crash class) is contained at the domain
//     boundary and the extension is re-initialized by domain recovery.
//   - The static verification is what makes the runtime cheap: no taint
//     monitor runs in the packet path.
//
// An extension is a program defining
//
//	fn filter(src: i64, dst: i64, sport: i64, dport: i64, proto: i64) -> bool
//
// returning true to keep the packet. Load appends a driver main that
// binds secret-labeled header fields and calls filter, so the IFC
// analysis judges the extension against exactly the deployment
// environment.
package extension

import (
	"errors"
	"fmt"

	"repro/internal/minirust"
	"repro/internal/netbricks"
	"repro/internal/packet"
	"repro/internal/verifier"
)

// EntryPoint is the function every extension must define.
const EntryPoint = "filter"

// Errors reported by loading.
var (
	// ErrNoFilter reports a program without the filter entry point.
	ErrNoFilter = errors.New("extension: no filter function")
	// ErrBadSignature reports a filter with the wrong signature.
	ErrBadSignature = errors.New("extension: filter has wrong signature")
	// ErrRejected reports a program that failed verification; inspect
	// the wrapped report.
	ErrRejected = errors.New("extension: verification rejected")
	// ErrHasMain reports a program that supplies its own main (the
	// driver is synthesized; a user main would bypass the secret-input
	// binding).
	ErrHasMain = errors.New("extension: programs must not define main")
)

// driverMain is appended to every extension so the analysis sees the
// deployment environment: header fields are secret inputs; the verdict
// (and nothing else) flows back to the kernel.
const driverMain = `
fn main() {
    #[label(secret)] let src = 0;
    #[label(secret)] let dst = 0;
    #[label(secret)] let sport = 0;
    #[label(secret)] let dport = 0;
    #[label(secret)] let proto = 0;
    let keep = filter(src, dst, sport, dport, proto);
    assert_label_max(keep, "secret");
}
`

// Extension is a loaded, verified packet filter.
type Extension struct {
	Name   string
	Report *verifier.Report
	interp *minirust.Interp

	// Stats.
	Evaluated uint64
	Kept      uint64
}

// Load verifies and instantiates an extension from source. The returned
// extension is ready to filter; rejected programs return ErrRejected
// with the report attached for diagnostics.
func Load(name, src string) (*Extension, *verifier.Report, error) {
	// Structural pre-checks need a parse; reuse the verifier's parse via
	// a cheap standalone pass for precise errors.
	prog, err := minirust.Parse(src)
	if err != nil {
		return nil, nil, fmt.Errorf("extension %s: %w", name, err)
	}
	if _, has := prog.Funcs["main"]; has {
		return nil, nil, fmt.Errorf("extension %s: %w", name, ErrHasMain)
	}
	f, ok := prog.Funcs[EntryPoint]
	if !ok {
		return nil, nil, fmt.Errorf("extension %s: %w", name, ErrNoFilter)
	}
	if err := checkSignature(f); err != nil {
		return nil, nil, fmt.Errorf("extension %s: %w", name, err)
	}
	full := src + driverMain
	rep := verifier.Verify(full)
	if !rep.OK() {
		return nil, rep, fmt.Errorf("extension %s: %w:\n%s", name, ErrRejected, rep)
	}
	in := minirust.NewInterp(rep.Checked, minirust.WithMaxSteps(100_000))
	return &Extension{Name: name, Report: rep, interp: in}, rep, nil
}

func checkSignature(f *minirust.FuncDef) error {
	if len(f.Params) != 5 {
		return fmt.Errorf("%w: want 5 i64 parameters, have %d", ErrBadSignature, len(f.Params))
	}
	for _, p := range f.Params {
		if !p.Type.Equal(minirust.TypeI64) {
			return fmt.Errorf("%w: parameter %s is %s, want i64", ErrBadSignature, p.Name, p.Type)
		}
	}
	if !f.Ret.Equal(minirust.TypeBool) {
		return fmt.Errorf("%w: returns %s, want bool", ErrBadSignature, f.Ret)
	}
	return nil
}

// Filter evaluates the extension on a 5-tuple. A runtime error in the
// extension (assertion failure, division by zero, exhausted step budget)
// is returned as-is — hosts running the extension inside a protection
// domain convert it into a domain fault (see Operator).
func (e *Extension) Filter(t packet.FiveTuple) (bool, error) {
	e.interp.ResetSteps()
	args := []minirust.Value{
		minirust.NewInt(int64(t.SrcIP), ""),
		minirust.NewInt(int64(t.DstIP), ""),
		minirust.NewInt(int64(t.SrcPort), ""),
		minirust.NewInt(int64(t.DstPort), ""),
		minirust.NewInt(int64(t.Proto), ""),
	}
	v, err := e.interp.CallFunction(EntryPoint, args)
	if err != nil {
		return false, err
	}
	e.Evaluated++
	if v.Kind != minirust.VBool {
		return false, fmt.Errorf("extension %s: filter returned non-bool", e.Name)
	}
	if v.B {
		e.Kept++
	}
	return v.B, nil
}

// Operator adapts the extension into a NetBricks stage. A runtime fault
// inside the extension panics, so that — exported into an sfi.Domain —
// the fault is contained and recovered exactly like any §3 domain fault.
type Operator struct {
	Ext *Extension
}

// Name implements netbricks.Operator.
func (o Operator) Name() string { return "ext:" + o.Ext.Name }

// ProcessBatch implements netbricks.Operator.
func (o Operator) ProcessBatch(b *netbricks.Batch) error {
	for i := 0; i < len(b.Pkts); {
		p := b.Pkts[i]
		if !p.Parsed() {
			if err := p.Parse(); err != nil {
				b.Drop(i)
				continue
			}
		}
		keep, err := o.Ext.Filter(p.Tuple())
		if err != nil {
			// The extension crashed: surface it as a panic so the SFI
			// boundary treats it as a domain fault.
			panic(fmt.Sprintf("extension %s crashed: %v", o.Ext.Name, err))
		}
		if !keep {
			b.Drop(i)
			continue
		}
		i++
	}
	return nil
}

var _ netbricks.Operator = Operator{}
