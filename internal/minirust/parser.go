package minirust

import (
	"fmt"
	"strconv"
)

// ParseError is a syntax error with position.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("%s: parse error: %s", e.Pos, e.Msg) }

// Parse lexes and parses a program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.program()
}

type parser struct {
	toks []Token
	pos  int
	// noStructLit suppresses struct-literal parsing inside if/while
	// conditions (the same restriction rustc applies).
	noStructLit bool
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) peek() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k Kind) (Token, bool) {
	if p.at(k) {
		return p.advance(), true
	}
	return Token{}, false
}

func (p *parser) expect(k Kind) (Token, error) {
	if p.at(k) {
		return p.advance(), nil
	}
	return Token{}, &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf("expected %s, found %s", k, p.cur())}
}

func (p *parser) errf(pos Pos, format string, args ...any) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) program() (*Program, error) {
	prog := &Program{
		Structs: make(map[string]*StructDef),
		Funcs:   make(map[string]*FuncDef),
	}
	if p.at(KwLabels) {
		if err := p.labelsDecl(prog); err != nil {
			return nil, err
		}
	}
	for !p.at(EOF) {
		switch p.cur().Kind {
		case KwStruct:
			s, err := p.structDef()
			if err != nil {
				return nil, err
			}
			if _, dup := prog.Structs[s.Name]; dup {
				return nil, p.errf(s.Pos, "duplicate struct %s", s.Name)
			}
			prog.Structs[s.Name] = s
		case KwImpl:
			if err := p.implBlock(prog); err != nil {
				return nil, err
			}
		case KwFn:
			f, err := p.fnDef("")
			if err != nil {
				return nil, err
			}
			if err := addFunc(prog, f); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf(p.cur().Pos, "expected struct, impl, or fn, found %s", p.cur())
		}
	}
	return prog, nil
}

func addFunc(prog *Program, f *FuncDef) error {
	if _, dup := prog.Funcs[f.Name]; dup {
		return &ParseError{Pos: f.Pos, Msg: fmt.Sprintf("duplicate function %s", f.Name)}
	}
	prog.Funcs[f.Name] = f
	prog.Order = append(prog.Order, f.Name)
	return nil
}

// labelsDecl := "labels" IDENT ("<" IDENT)* ";"
func (p *parser) labelsDecl(prog *Program) error {
	p.advance() // labels
	first, err := p.expect(IDENT)
	if err != nil {
		return err
	}
	prog.LabelOrder = []string{first.Text}
	for p.at(Lt) {
		p.advance()
		next, err := p.expect(IDENT)
		if err != nil {
			return err
		}
		prog.LabelOrder = append(prog.LabelOrder, next.Text)
	}
	_, err = p.expect(Semi)
	return err
}

func (p *parser) structDef() (*StructDef, error) {
	start := p.advance() // struct
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	s := &StructDef{Name: name.Text, Pos: start.Pos}
	for !p.at(RBrace) {
		fname, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Colon); err != nil {
			return nil, err
		}
		ft, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		for _, existing := range s.Fields {
			if existing.Name == fname.Text {
				return nil, p.errf(fname.Pos, "duplicate field %s", fname.Text)
			}
		}
		s.Fields = append(s.Fields, Field{Name: fname.Text, Type: ft})
		if _, ok := p.accept(Comma); !ok {
			break
		}
	}
	if _, err := p.expect(RBrace); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) implBlock(prog *Program) error {
	p.advance() // impl
	name, err := p.expect(IDENT)
	if err != nil {
		return err
	}
	if _, ok := prog.Structs[name.Text]; !ok {
		return p.errf(name.Pos, "impl for unknown struct %s", name.Text)
	}
	if _, err := p.expect(LBrace); err != nil {
		return err
	}
	for !p.at(RBrace) {
		f, err := p.fnDef(name.Text)
		if err != nil {
			return err
		}
		if err := addFunc(prog, f); err != nil {
			return err
		}
	}
	_, err = p.expect(RBrace)
	return err
}

// fnDef parses a function. Inside an impl block (recv != ""), `&self`,
// `&mut self`, and `self` receiver sugar is accepted as the first
// parameter.
func (p *parser) fnDef(recv string) (*FuncDef, error) {
	start, err := p.expect(KwFn)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	f := &FuncDef{Pos: start.Pos, Recv: recv, Ret: TypeUnit}
	if recv != "" {
		f.Name = QualifiedName(recv, name.Text)
	} else {
		f.Name = name.Text
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	f.IsAssoc = true
	first := true
	for !p.at(RParen) {
		if !first {
			if _, err := p.expect(Comma); err != nil {
				return nil, err
			}
		}
		first = false
		// Receiver sugar.
		if recv != "" && len(f.Params) == 0 {
			if param, ok, err := p.recvParam(recv); err != nil {
				return nil, err
			} else if ok {
				f.Params = append(f.Params, param)
				f.IsAssoc = false
				continue
			}
		}
		pname, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Colon); err != nil {
			return nil, err
		}
		pt, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		if pname.Text == "self" {
			f.IsAssoc = false
		}
		f.Params = append(f.Params, Param{Name: pname.Text, Type: pt})
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	if _, ok := p.accept(Arrow); ok {
		rt, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		f.Ret = rt
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// recvParam tries to parse `self`, `&self`, or `&mut self`, returning the
// desugared parameter.
func (p *parser) recvParam(recv string) (Param, bool, error) {
	recvType := Type{Name: recv}
	if p.at(IDENT) && p.cur().Text == "self" && p.peek().Kind != Colon {
		p.advance()
		return Param{Name: "self", Type: recvType}, true, nil
	}
	if p.at(Amp) {
		// Lookahead: & [mut] self
		save := p.pos
		p.advance()
		mut := false
		if _, ok := p.accept(KwMut); ok {
			mut = true
		}
		if p.at(IDENT) && p.cur().Text == "self" {
			p.advance()
			return Param{Name: "self", Type: RefTo(recvType, mut)}, true, nil
		}
		p.pos = save
	}
	return Param{}, false, nil
}

// typeExpr := "&" "mut"? typeExpr | "Vec" "<" typeExpr ">" | "(" ")" | IDENT
func (p *parser) typeExpr() (Type, error) {
	if _, ok := p.accept(Amp); ok {
		mut := false
		if _, ok := p.accept(KwMut); ok {
			mut = true
		}
		inner, err := p.typeExpr()
		if err != nil {
			return Type{}, err
		}
		return RefTo(inner, mut), nil
	}
	if _, ok := p.accept(LParen); ok {
		if _, err := p.expect(RParen); err != nil {
			return Type{}, err
		}
		return TypeUnit, nil
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return Type{}, err
	}
	if name.Text == "Vec" {
		if _, err := p.expect(Lt); err != nil {
			return Type{}, err
		}
		elem, err := p.typeExpr()
		if err != nil {
			return Type{}, err
		}
		if _, err := p.expect(Gt); err != nil {
			return Type{}, err
		}
		return VecOf(elem), nil
	}
	return Type{Name: name.Text}, nil
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.at(RBrace) {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	if _, err := p.expect(RBrace); err != nil {
		return nil, err
	}
	return stmts, nil
}

// annotation := "#" "[" IDENT "(" IDENT ")" "]"; only label(...) is known.
func (p *parser) annotation() (string, error) {
	p.advance() // #
	if _, err := p.expect(LBracket); err != nil {
		return "", err
	}
	kind, err := p.expect(IDENT)
	if err != nil {
		return "", err
	}
	if kind.Text != "label" {
		return "", p.errf(kind.Pos, "unknown annotation %q (only label is supported)", kind.Text)
	}
	if _, err := p.expect(LParen); err != nil {
		return "", err
	}
	val, err := p.expect(IDENT)
	if err != nil {
		return "", err
	}
	if _, err := p.expect(RParen); err != nil {
		return "", err
	}
	if _, err := p.expect(RBracket); err != nil {
		return "", err
	}
	return val.Text, nil
}

func (p *parser) stmt() (Stmt, error) {
	label := ""
	for p.at(Hash) {
		l, err := p.annotation()
		if err != nil {
			return nil, err
		}
		label = l
	}
	if label != "" && !p.at(KwLet) {
		return nil, p.errf(p.cur().Pos, "#[label] must annotate a let statement")
	}
	switch p.cur().Kind {
	case KwLet:
		return p.letStmt(label)
	case KwIf:
		return p.ifStmt()
	case KwWhile:
		return p.whileStmt()
	case KwReturn:
		start := p.advance()
		if _, ok := p.accept(Semi); ok {
			return &ReturnStmt{Pos: start.Pos}, nil
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ReturnStmt{Value: e, Pos: start.Pos}, nil
	default:
		return p.exprOrAssign()
	}
}

func (p *parser) letStmt(label string) (Stmt, error) {
	start := p.advance() // let
	mut := false
	if _, ok := p.accept(KwMut); ok {
		mut = true
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	var decl *Type
	if _, ok := p.accept(Colon); ok {
		t, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		decl = &t
	}
	if _, err := p.expect(Assign); err != nil {
		return nil, err
	}
	init, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return &LetStmt{Name: name.Text, Mut: mut, Decl: decl, Init: init, Label: label, Pos: start.Pos}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	start := p.advance() // if
	cond, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	node := &IfStmt{Cond: cond, Then: then, Pos: start.Pos}
	if _, ok := p.accept(KwElse); ok {
		if p.at(KwIf) {
			elif, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			node.Else = []Stmt{elif}
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			node.Else = els
		}
	}
	return node, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	start := p.advance() // while
	cond, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Pos: start.Pos}, nil
}

// condExpr parses an expression with struct literals disabled.
func (p *parser) condExpr() (Expr, error) {
	saved := p.noStructLit
	p.noStructLit = true
	e, err := p.expr()
	p.noStructLit = saved
	return e, err
}

func (p *parser) exprOrAssign() (Stmt, error) {
	start := p.cur().Pos
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, ok := p.accept(Assign); ok {
		lv, err := toLValue(e)
		if err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &AssignStmt{Target: lv, Value: val, Pos: start}, nil
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return &ExprStmt{X: e, Pos: start}, nil
}

// toLValue converts an expression to an assignable path.
func toLValue(e Expr) (LValue, error) {
	switch v := e.(type) {
	case *VarRef:
		return LValue{Root: v.Name, Pos: v.Pos}, nil
	case *FieldAccess:
		inner, err := toLValue(v.X)
		if err != nil {
			return LValue{}, err
		}
		inner.Path = append(inner.Path, v.Field)
		return inner, nil
	default:
		return LValue{}, &ParseError{Pos: e.Position(), Msg: "invalid assignment target"}
	}
}

// Expression grammar, precedence climbing.

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(Pipe2) {
		op := p.advance()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: Pipe2, L: l, R: r, Pos: op.Pos}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.at(AmpAmp) {
		op := p.advance()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: AmpAmp, L: l, R: r, Pos: op.Pos}
	}
	return l, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case Eq, Ne, Lt, Gt, Le, Ge:
		op := p.advance()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op.Kind, L: l, R: r, Pos: op.Pos}, nil
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(Plus) || p.at(Minus) {
		op := p.advance()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op.Kind, L: l, R: r, Pos: op.Pos}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(Star) || p.at(Slash) || p.at(Percent) {
		op := p.advance()
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op.Kind, L: l, R: r, Pos: op.Pos}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	switch p.cur().Kind {
	case Bang, Minus:
		op := p.advance()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: op.Kind, X: x, Pos: op.Pos}, nil
	case Amp:
		op := p.advance()
		mut := false
		if _, ok := p.accept(KwMut); ok {
			mut = true
		}
		x, err := p.postfixExpr()
		if err != nil {
			return nil, err
		}
		switch x.(type) {
		case *VarRef, *FieldAccess:
		default:
			return nil, p.errf(op.Pos, "can only borrow variables and fields")
		}
		return &BorrowExpr{X: x, Mut: mut, Pos: op.Pos}, nil
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (Expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(Dot) {
		p.advance()
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if p.at(LParen) {
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			e = &MethodCall{Recv: e, Method: name.Text, Args: args, Pos: name.Pos}
		} else {
			e = &FieldAccess{X: e, Field: name.Text, Pos: name.Pos}
		}
	}
	return e, nil
}

func (p *parser) callArgs() ([]Expr, error) {
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	var args []Expr
	// Struct literals are legal again inside parentheses.
	saved := p.noStructLit
	p.noStructLit = false
	defer func() { p.noStructLit = saved }()
	for !p.at(RParen) {
		if len(args) > 0 {
			if _, err := p.expect(Comma); err != nil {
				return nil, err
			}
		}
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *parser) primaryExpr() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case INT:
		p.advance()
		v, err := strconv.ParseInt(tok.Text, 10, 64)
		if err != nil {
			return nil, p.errf(tok.Pos, "integer out of range: %s", tok.Text)
		}
		return &IntLit{Value: v, Pos: tok.Pos}, nil
	case STRING:
		p.advance()
		return &StrLit{Value: tok.Text, Pos: tok.Pos}, nil
	case KwTrue:
		p.advance()
		return &BoolLit{Value: true, Pos: tok.Pos}, nil
	case KwFalse:
		p.advance()
		return &BoolLit{Value: false, Pos: tok.Pos}, nil
	case KwVec:
		p.advance()
		if _, err := p.expect(Bang); err != nil {
			return nil, err
		}
		if _, err := p.expect(LBracket); err != nil {
			return nil, err
		}
		var elems []Expr
		saved := p.noStructLit
		p.noStructLit = false
		for !p.at(RBracket) {
			if len(elems) > 0 {
				if _, err := p.expect(Comma); err != nil {
					return nil, err
				}
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
		}
		p.noStructLit = saved
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
		return &VecLit{Elems: elems, Pos: tok.Pos}, nil
	case LParen:
		p.advance()
		saved := p.noStructLit
		p.noStructLit = false
		e, err := p.expr()
		p.noStructLit = saved
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return e, nil
	case IDENT:
		p.advance()
		name := tok.Text
		// Qualified call: Struct::assoc(args).
		if p.at(ColonColon) {
			p.advance()
			meth, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Name: QualifiedName(name, meth.Text), Args: args, Pos: tok.Pos}, nil
		}
		// Call: name(args).
		if p.at(LParen) {
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Name: name, Args: args, Pos: tok.Pos}, nil
		}
		// Struct literal: Name { field: expr, ... }.
		if p.at(LBrace) && !p.noStructLit {
			p.advance()
			fields := make(map[string]Expr)
			for !p.at(RBrace) {
				if len(fields) > 0 {
					if _, err := p.expect(Comma); err != nil {
						return nil, err
					}
					if p.at(RBrace) {
						break
					}
				}
				fname, err := p.expect(IDENT)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(Colon); err != nil {
					return nil, err
				}
				fe, err := p.expr()
				if err != nil {
					return nil, err
				}
				if _, dup := fields[fname.Text]; dup {
					return nil, p.errf(fname.Pos, "duplicate field %s in literal", fname.Text)
				}
				fields[fname.Text] = fe
			}
			if _, err := p.expect(RBrace); err != nil {
				return nil, err
			}
			return &StructLit{Name: name, Fields: fields, Pos: tok.Pos}, nil
		}
		return &VarRef{Name: name, Pos: tok.Pos}, nil
	}
	return nil, p.errf(tok.Pos, "expected expression, found %s", tok)
}
