package minirust

import (
	"errors"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicProgram(t *testing.T) {
	toks, err := Lex(`fn main() { let x = 42; }`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwFn, IDENT, LParen, RParen, LBrace, KwLet, IDENT, Assign, INT, Semi, RBrace, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex(`:: -> && || == != <= >= < > = & # ! + - * / %`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{ColonColon, Arrow, AmpAmp, Pipe2, Eq, Ne, Le, Ge, Lt, Gt, Assign, Amp, Hash, Bang, Plus, Minus, Star, Slash, Percent, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("// a comment\nlet // trailing\nx")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwLet, IDENT, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("let\n  x")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Fatalf("let pos = %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Fatalf("x pos = %v", toks[1].Pos)
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex(`"a\nb\t\"\\"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "a\nb\t\"\\" {
		t.Fatalf("text = %q", toks[0].Text)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		`"unterminated`,
		`"bad \q escape"`,
		`@`,
		`123abc`,
	}
	for _, src := range cases {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded", src)
		} else {
			var le *LexError
			if !errors.As(err, &le) {
				t.Errorf("Lex(%q) error is %T", src, err)
			}
		}
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := Lex("struct structx vec vecs mut mutable")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwStruct, IDENT, KwVec, IDENT, KwMut, IDENT, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v want %v", got, want)
		}
	}
}

func TestTokenString(t *testing.T) {
	if (Token{Kind: IDENT, Text: "x"}).String() == "" {
		t.Fatal("empty token string")
	}
	if (Token{Kind: STRING, Text: "s"}).String() == "" {
		t.Fatal("empty string-token string")
	}
	if (Token{Kind: Arrow}).String() != "->" {
		t.Fatal("arrow token string")
	}
	if Kind(999).String() == "" {
		t.Fatal("unknown kind string")
	}
}
